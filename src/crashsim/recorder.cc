#include "crashsim/recorder.h"

#include <algorithm>

namespace nvmecr::crashsim {

sim::Task<Status> RecordingDevice::write(uint64_t offset,
                                         std::span<const std::byte> data) {
  Status s = co_await inner_.write(offset, data);
  if (s.ok()) {
    journal_bytes(offset, data);
    mark_write_boundary();
  }
  co_return s;
}

sim::Task<Status> RecordingDevice::read(uint64_t offset,
                                        std::span<std::byte> out) {
  co_return co_await inner_.read(offset, out);
}

sim::Task<Status> RecordingDevice::write_tagged(uint64_t offset, uint64_t len,
                                                uint64_t seed) {
  Status s = co_await inner_.write_tagged(offset, len, seed);
  if (s.ok()) {
    journal_pattern(offset, len, seed);
    mark_write_boundary();
  }
  co_return s;
}

sim::Task<StatusOr<uint64_t>> RecordingDevice::read_tagged(uint64_t offset,
                                                           uint64_t len) {
  co_return co_await inner_.read_tagged(offset, len);
}

sim::Task<Status> RecordingDevice::write_tagged_batch(uint64_t offset,
                                                      uint64_t len,
                                                      uint64_t seed,
                                                      uint32_t subcmds) {
  Status s = co_await inner_.write_tagged_batch(offset, len, seed, subcmds);
  if (s.ok()) {
    // One simulated completion -> one boundary (the batch is a single
    // event; there is no instant at which only part of it is
    // acknowledged — partial states are covered by the torn variants).
    journal_pattern(offset, len, seed);
    mark_write_boundary();
  }
  co_return s;
}

sim::Task<StatusOr<uint64_t>> RecordingDevice::read_tagged_batch(
    uint64_t offset, uint64_t len, uint32_t subcmds) {
  co_return co_await inner_.read_tagged_batch(offset, len, subcmds);
}

sim::Task<Status> RecordingDevice::flush() {
  Status s = co_await inner_.flush();
  if (s.ok()) boundaries_.push_back({BoundaryKind::kFlush, journal_.size()});
  co_return s;
}

void RecordingDevice::journal_bytes(uint64_t offset,
                                    std::span<const std::byte> data) {
  Mutation m;
  m.offset = offset;
  m.len = data.size();
  m.bytes.assign(data.begin(), data.end());
  journal_.push_back(std::move(m));
}

void RecordingDevice::journal_pattern(uint64_t offset, uint64_t len,
                                      uint64_t seed) {
  Mutation m;
  m.offset = offset;
  m.len = len;
  m.is_pattern = true;
  m.seed = seed;
  journal_.push_back(std::move(m));
}

uint64_t RecordingDevice::last_mutation_sectors(const Boundary& b) const {
  if (b.mutations == 0) return 0;
  const Mutation& m = journal_[b.mutations - 1];
  const uint64_t bs = hw_block_size();
  const uint64_t first = m.offset / bs;
  const uint64_t last = (m.offset + m.len - 1) / bs;
  return last - first + 1;
}

std::unique_ptr<ImageDevice> RecordingDevice::materialize(
    const Boundary& boundary, uint64_t torn_sectors) const {
  auto img = std::make_unique<ImageDevice>(capacity(), hw_block_size(),
                                           tag_origin());
  const size_t full = (torn_sectors > 0 && boundary.mutations > 0)
                          ? boundary.mutations - 1
                          : boundary.mutations;
  auto apply = [&img](const Mutation& m, uint64_t len) {
    if (len == 0) return;
    if (m.is_pattern) {
      // Pattern extents are block-aligned by construction; a torn
      // prefix is re-aligned down by the caller.
      (void)img->write_pattern_raw(m.offset, len, m.seed);
    } else {
      img->write_bytes_raw(
          m.offset, std::span<const std::byte>(m.bytes.data(), len));
    }
  };
  for (size_t i = 0; i < full; ++i) apply(journal_[i], journal_[i].len);
  if (torn_sectors > 0 && boundary.mutations > 0) {
    const Mutation& m = journal_[boundary.mutations - 1];
    const uint64_t bs = hw_block_size();
    // The first `torn_sectors` hardware sectors the command touches made
    // it to the medium. For a command starting mid-sector the first
    // "sector" is the sub-sector head fragment.
    const uint64_t head = std::min<uint64_t>(
        m.len, bs - (m.offset % bs) + (torn_sectors - 1) * bs);
    uint64_t durable = head;
    if (m.is_pattern) {
      // Pattern writes are block-aligned; keep the torn prefix aligned
      // too (a half-written pattern sector reads as garbage either way,
      // and the store cannot represent partial pattern blocks).
      durable = (durable / bs) * bs;
    }
    apply(m, durable);
  }
  return img;
}

}  // namespace nvmecr::crashsim
