// Persistence-boundary recorder: a BlockDevice interposer that journals
// every successful mutation and marks every point where the hardware
// state could be frozen by a crash.
//
// A *boundary* is a moment at which power loss yields a well-defined
// device state: the completion of a write command (all content of that
// command durable — the simulated SSD's RAM is capacitor-backed, so
// acknowledged means durable), the completion of a flush, and queue
// teardown. Between two boundaries the only additional states are the
// *torn* variants of the in-flight write: an arbitrary prefix of its
// hardware sectors made it to the medium, the rest did not. The recorder
// captures enough to reconstruct every one of those states:
//
//   journal:   ordered list of successful mutations (bytes or pattern)
//   boundaries: (kind, #mutations durable at that point)
//
// materialize(b, torn) replays mutations [0, b.mutations) into a fresh
// ImageDevice; a nonzero `torn` instead replays [0, b.mutations-1) fully
// plus only the first `torn` hardware sectors of the last one — the
// state "the crash hit mid-command". The explorer (explore.h) walks all
// of these and runs recovery + fsck on each.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "crashsim/image_device.h"
#include "hw/block_device.h"

namespace nvmecr::crashsim {

enum class BoundaryKind : uint8_t {
  kWrite = 1,     // a write command completed
  kFlush = 2,     // a durability barrier completed
  kTeardown = 3,  // the queue was torn down cleanly (end of recording)
};

struct Boundary {
  BoundaryKind kind = BoundaryKind::kWrite;
  /// Number of journal mutations durable at this point.
  size_t mutations = 0;
};

class RecordingDevice final : public hw::BlockDevice {
 public:
  explicit RecordingDevice(hw::BlockDevice& inner) : inner_(inner) {}

  uint64_t capacity() const override { return inner_.capacity(); }
  uint32_t hw_block_size() const override { return inner_.hw_block_size(); }
  uint64_t tag_origin() const override { return inner_.tag_origin(); }

  sim::Task<Status> write(uint64_t offset,
                          std::span<const std::byte> data) override;
  sim::Task<Status> read(uint64_t offset, std::span<std::byte> out) override;
  sim::Task<Status> write_tagged(uint64_t offset, uint64_t len,
                                 uint64_t seed) override;
  sim::Task<StatusOr<uint64_t>> read_tagged(uint64_t offset,
                                            uint64_t len) override;
  sim::Task<Status> write_tagged_batch(uint64_t offset, uint64_t len,
                                       uint64_t seed,
                                       uint32_t subcmds) override;
  sim::Task<StatusOr<uint64_t>> read_tagged_batch(uint64_t offset,
                                                  uint64_t len,
                                                  uint32_t subcmds) override;
  sim::Task<Status> flush() override;

  /// Marks the clean end of the recorded run (close of the workload).
  void record_teardown() {
    boundaries_.push_back({BoundaryKind::kTeardown, journal_.size()});
  }

  const std::vector<Boundary>& boundaries() const { return boundaries_; }
  size_t journal_size() const { return journal_.size(); }

  /// Hardware sectors the boundary's last mutation spans; tearing is
  /// only meaningful for boundaries whose final write covers > 1 sector.
  uint64_t last_mutation_sectors(const Boundary& b) const;

  /// Device state at `boundary`, optionally torn: `torn_sectors` > 0
  /// replays only the first `torn_sectors` hardware sectors of the
  /// boundary's final mutation (must be < last_mutation_sectors).
  std::unique_ptr<ImageDevice> materialize(const Boundary& boundary,
                                           uint64_t torn_sectors = 0) const;

 private:
  struct Mutation {
    uint64_t offset = 0;  // device-local offset
    uint64_t len = 0;
    bool is_pattern = false;
    uint64_t seed = 0;                // pattern mutations
    std::vector<std::byte> bytes;     // byte mutations (bytes.size() == len)
  };

  void journal_bytes(uint64_t offset, std::span<const std::byte> data);
  void journal_pattern(uint64_t offset, uint64_t len, uint64_t seed);
  void mark_write_boundary() {
    boundaries_.push_back({BoundaryKind::kWrite, journal_.size()});
  }

  hw::BlockDevice& inner_;
  std::vector<Mutation> journal_;
  std::vector<Boundary> boundaries_;
};

}  // namespace nvmecr::crashsim
