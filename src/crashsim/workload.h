// Seeded property-based microfs workload generator.
//
// Drives a MicroFs instance through a deterministic pseudo-random mix of
// namespace and data operations (create/write/extend/fsync/close/
// unlink/rename/mkdir/explicit checkpoint). The same (spec, seed) always
// produces the same operation sequence, so a failing crash state is
// reproduced by re-running the explorer with the printed seed.
//
// The generator keeps its own shadow model (directories, files, open
// fds) so it only issues calls that are *supposed* to succeed; any
// error bubbling out of the filesystem is therefore a real finding, not
// generator noise.
#pragma once

#include <cstdint>
#include <string>

#include "microfs/microfs.h"

namespace nvmecr::crashsim {

struct WorkloadSpec {
  uint64_t seed = 1;
  /// Number of generated operations (not counting the final closes).
  uint32_t ops = 64;
  uint32_t max_files = 24;
  uint32_t max_dirs = 6;
  /// Per-write length is uniform in [1, max_write].
  uint64_t max_write = 96 * 1024;
  /// Path prefix for everything this run creates ("" = filesystem
  /// root); lets churn tests run many rounds in one namespace.
  std::string prefix;

  // Relative operation weights (zero disables the op).
  uint32_t w_create = 5;
  uint32_t w_write = 10;
  uint32_t w_fsync = 2;
  uint32_t w_close = 3;
  uint32_t w_unlink = 2;
  uint32_t w_rename = 2;
  uint32_t w_mkdir = 1;
  uint32_t w_checkpoint = 1;
};

/// Runs the workload to completion (all fds closed at the end). Returns
/// the number of operations actually issued.
sim::Task<StatusOr<uint32_t>> run_workload(microfs::MicroFs& fs,
                                           const WorkloadSpec& spec);

}  // namespace nvmecr::crashsim
