#include "crashsim/explore.h"

#include <algorithm>
#include <set>

namespace nvmecr::crashsim {

namespace {

using microfs::FileStat;
using microfs::MicroFs;

/// What happened to one crash state. Exactly one of the flags is set on
/// success paths; `detail` is non-empty iff the state violated the
/// recovery contract.
struct StateOutcome {
  bool recovered = false;
  bool typed_error = false;
  std::string detail;
};

bool typed_recovery_error(ErrorCode code) {
  return code == ErrorCode::kCorruption || code == ErrorCode::kIoError ||
         code == ErrorCode::kNoSpace;
}

/// Recursively verifies every tagged file reachable from `dir`.
sim::Task<Status> verify_tree(MicroFs& fs, std::string dir) {
  auto names = fs.readdir(dir);
  NVMECR_CO_RETURN_IF_ERROR(names.status());
  for (const std::string& name : *names) {
    const std::string path = dir == "/" ? "/" + name : dir + "/" + name;
    auto st = fs.stat(path);
    NVMECR_CO_RETURN_IF_ERROR(st.status());
    if (st->type == microfs::InodeType::kDirectory) {
      NVMECR_CO_RETURN_IF_ERROR(co_await verify_tree(fs, path));
    } else if (st->content == microfs::ContentKind::kTagged) {
      NVMECR_CO_RETURN_IF_ERROR(co_await fs.verify_tagged(path));
    }
  }
  co_return OkStatus();
}

sim::Task<StateOutcome> check_state(sim::Engine& engine, hw::BlockDevice& dev,
                                    const ExploreOptions& opts,
                                    bool recovery_required) {
  StateOutcome out;
  auto fs = co_await MicroFs::recover(engine, dev, opts.fs);
  if (!fs.ok()) {
    const Status& s = fs.status();
    if (!typed_recovery_error(s.code())) {
      out.detail = "recover() returned an untyped error: " + s.to_string();
    } else if (recovery_required) {
      out.detail = "recovery required but failed: " + s.to_string();
    } else {
      out.typed_error = true;
    }
    co_return out;
  }
  auto report = co_await (*fs)->fsck();
  if (!report.ok()) {
    out.detail = "fsck() errored: " + report.status().to_string();
    co_return out;
  }
  if (!report->clean()) {
    out.detail = report->to_string();
    co_return out;
  }
  if (opts.verify_files) {
    if (Status s = co_await verify_tree(**fs, "/"); !s.ok()) {
      out.detail = "content verification failed: " + s.to_string();
      co_return out;
    }
  }
  out.recovered = true;
  co_return out;
}

}  // namespace

std::string ExploreResult::summary() const {
  std::string s = "crash-explore: " + std::to_string(boundaries) +
                  " boundaries, " + std::to_string(states) + " states (" +
                  std::to_string(recovered) + " recovered, " +
                  std::to_string(typed_errors) + " typed pre-format errors)";
  if (ok()) return s + ", all clean";
  s += ", " + std::to_string(failures.size()) + " FAILURE(S):";
  for (const CrashFailure& f : failures) {
    s += "\n  boundary " + std::to_string(f.boundary);
    if (f.torn_sectors > 0) {
      s += " torn@" + std::to_string(f.torn_sectors);
    }
    s += ": " + f.detail;
  }
  return s;
}

ExploreResult explore(const RecordingDevice& rec, const ExploreOptions& opts) {
  ExploreResult result;
  const auto& boundaries = rec.boundaries();
  result.boundaries = boundaries.size();

  auto run_state = [&](size_t idx, uint64_t torn, bool required) {
    auto img = rec.materialize(boundaries[idx], torn);
    sim::Engine engine;
    auto outcome =
        engine.try_run_task(check_state(engine, *img, opts, required));
    ++result.states;
    if (!outcome.has_value()) {
      result.failures.push_back(
          {idx, torn, "recovery deadlocked (engine ran dry mid-await)"});
      return;
    }
    if (!outcome->detail.empty()) {
      result.failures.push_back({idx, torn, std::move(outcome->detail)});
    } else if (outcome->recovered) {
      ++result.recovered;
    } else {
      ++result.typed_errors;
    }
  };

  for (size_t idx = 0; idx < boundaries.size(); ++idx) {
    if (opts.max_states > 0 && result.states >= opts.max_states) break;
    run_state(idx, 0, idx >= opts.require_recovery_from);

    if (opts.torn == ExploreOptions::Torn::kNone) continue;
    if (boundaries[idx].kind != BoundaryKind::kWrite) continue;
    const uint64_t n = rec.last_mutation_sectors(boundaries[idx]);
    if (n <= 1) continue;
    std::set<uint64_t> cuts;
    if (opts.torn == ExploreOptions::Torn::kExhaustive) {
      for (uint64_t t = 1; t < n; ++t) cuts.insert(t);
    } else {
      cuts.insert(1);
      cuts.insert(n / 2);
      cuts.insert(n - 1);
      cuts.erase(0);
      cuts.erase(n);
    }
    const bool torn_required = idx > opts.require_recovery_from;
    for (uint64_t t : cuts) {
      if (opts.max_states > 0 && result.states >= opts.max_states) break;
      run_state(idx, t, torn_required);
    }
  }
  return result;
}

}  // namespace nvmecr::crashsim
