// Zero-latency block device materialized from a crash snapshot.
//
// The crash explorer replays a prefix of the recorded mutation journal
// into one of these and hands it to MicroFs::recover(). It is a
// RamDevice with one extra twist: an origin shift. The recorded device
// is usually a PartitionView (tag_origin() != 0) or an SSD queue, and
// pattern tags are a function of the *absolute* block index, so the
// image must report the same tag_origin and store its content at the
// same absolute offsets — otherwise every tagged read of the recovered
// state would fail verification for the wrong reason.
#pragma once

#include "hw/block_device.h"
#include "hw/payload_store.h"

namespace nvmecr::crashsim {

class ImageDevice final : public hw::BlockDevice {
 public:
  /// An empty image with the same geometry as the recorded device.
  ImageDevice(uint64_t capacity, uint32_t block_size, uint64_t tag_origin)
      : capacity_(capacity), origin_(tag_origin), store_(block_size) {}

  uint64_t capacity() const override { return capacity_; }
  uint32_t hw_block_size() const override { return store_.block_size(); }
  uint64_t tag_origin() const override { return origin_; }

  sim::Task<Status> write(uint64_t offset,
                          std::span<const std::byte> data) override {
    if (offset + data.size() > capacity_) {
      co_return InvalidArgumentError("image write beyond device end");
    }
    store_.write_bytes(origin_ + offset, data);
    co_return OkStatus();
  }

  sim::Task<Status> read(uint64_t offset, std::span<std::byte> out) override {
    if (offset + out.size() > capacity_) {
      co_return InvalidArgumentError("image read beyond device end");
    }
    co_return store_.read_bytes(origin_ + offset, out);
  }

  sim::Task<Status> write_tagged(uint64_t offset, uint64_t len,
                                 uint64_t seed) override {
    if (offset + len > capacity_) {
      co_return InvalidArgumentError("image write beyond device end");
    }
    co_return store_.write_pattern(origin_ + offset, len, seed);
  }

  sim::Task<StatusOr<uint64_t>> read_tagged(uint64_t offset,
                                            uint64_t len) override {
    if (offset + len > capacity_) {
      co_return StatusOr<uint64_t>(
          InvalidArgumentError("image read beyond device end"));
    }
    co_return store_.read_combined_tag(origin_ + offset, len);
  }

  sim::Task<Status> flush() override { co_return OkStatus(); }

  /// Synchronous journal-replay hooks: crash materialization happens
  /// outside the simulation, so the recorder writes the snapshot content
  /// directly instead of spinning up an engine per crash state.
  void write_bytes_raw(uint64_t offset, std::span<const std::byte> data) {
    store_.write_bytes(origin_ + offset, data);
  }
  Status write_pattern_raw(uint64_t offset, uint64_t len, uint64_t seed) {
    return store_.write_pattern(origin_ + offset, len, seed);
  }

  const hw::PayloadStore& payload() const { return store_; }

 private:
  uint64_t capacity_;
  uint64_t origin_;
  hw::PayloadStore store_;
};

}  // namespace nvmecr::crashsim
