// Exhaustive crash-point exploration over a recorded run.
//
// Given a RecordingDevice that witnessed a workload (format + namespace
// + data ops), explore() enumerates every persistence boundary —
// optionally including torn variants of multi-sector writes — and for
// each one materializes the frozen device state, runs
// MicroFs::recover() against it under a fresh simulation engine, and
// asserts the recovery contract:
//
//   * recover() either succeeds or returns a *typed* error
//     (kCorruption / kIoError / kNoSpace) — a deadlocked recovery or an
//     untyped error code is a contract violation;
//   * typed errors are only acceptable for states frozen before
//     `require_recovery_from` (boundaries inside format(), before the
//     superblock commit makes the partition mountable);
//   * a successful recovery must pass MicroFs::fsck() with zero issues
//     and (optionally) verify every tagged file's content end to end.
//
// Everything is deterministic: the workload is seeded, the simulation
// is a DES, and boundaries are indexed — a failure report (seed,
// boundary index, torn sectors) replays exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crashsim/recorder.h"
#include "microfs/microfs.h"

namespace nvmecr::crashsim {

struct ExploreOptions {
  enum class Torn : uint8_t {
    kNone = 0,       // only completed-command states
    kSampled = 1,    // torn at sector 1, n/2, n-1 per multi-sector write
    kExhaustive = 2  // torn at every sector split 1..n-1
  };
  Torn torn = Torn::kSampled;

  /// Options to recover() with — must match how the recorded instance
  /// was formatted.
  microfs::Options fs;

  /// Boundary index (into RecordingDevice::boundaries()) from which
  /// recovery is *required* to succeed. States frozen earlier (mid-
  /// format) may fail with a typed error instead. Torn variants of
  /// boundary i sit logically before it, so they are required to
  /// recover only when i > require_recovery_from.
  size_t require_recovery_from = 0;

  /// Run verify_tagged() on every tagged file of each recovered state.
  bool verify_files = true;

  /// Safety valve for CI: stop after this many states (0 = unlimited).
  size_t max_states = 0;
};

struct CrashFailure {
  size_t boundary = 0;
  uint64_t torn_sectors = 0;  // 0 = the completed-command state
  std::string detail;
};

struct ExploreResult {
  size_t boundaries = 0;    // boundaries enumerated
  size_t states = 0;        // states checked (incl. torn variants)
  size_t recovered = 0;     // recover() ok + fsck clean (+ files verified)
  size_t typed_errors = 0;  // acceptable typed recovery errors
  std::vector<CrashFailure> failures;

  bool ok() const { return failures.empty(); }
  std::string summary() const;
};

/// Walks every boundary (and torn variant per `opts.torn`) of the
/// recorded run. Purely CPU-bound: each state gets its own engine and
/// image, nothing touches the recorded device.
ExploreResult explore(const RecordingDevice& rec, const ExploreOptions& opts);

}  // namespace nvmecr::crashsim
