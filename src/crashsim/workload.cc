#include "crashsim/workload.h"

#include <vector>

#include "common/rng.h"

namespace nvmecr::crashsim {

namespace {

using microfs::MicroFs;
using microfs::OpenFlags;

struct ModelFile {
  std::string path;
  bool tagged = false;  // tagged (pattern) content vs real bytes
  int fd = -1;          // open descriptor, -1 when closed
};

struct Model {
  std::vector<std::string> dirs;   // candidate parents ("" = root)
  std::vector<ModelFile> files;
  uint32_t next_id = 0;

  size_t open_count() const {
    size_t n = 0;
    for (const auto& f : files) n += f.fd >= 0 ? 1 : 0;
    return n;
  }
};

std::string join(const std::string& dir, const std::string& name) {
  return dir.empty() ? "/" + name : dir + "/" + name;
}

}  // namespace

sim::Task<StatusOr<uint32_t>> run_workload(MicroFs& fs,
                                           const WorkloadSpec& spec) {
  using Result = StatusOr<uint32_t>;
  Rng rng(spec.seed);
  Model model;
  model.dirs.push_back(spec.prefix);  // root (or the prefix directory)

  if (!spec.prefix.empty()) {
    NVMECR_CO_RETURN_IF_ERROR(co_await fs.mkdir(spec.prefix));
  }

  // The op table is rebuilt each iteration because eligibility depends
  // on model state (e.g. no unlink while nothing exists).
  enum class Op {
    kCreate,
    kWrite,
    kFsync,
    kClose,
    kUnlink,
    kRename,
    kMkdir,
    kCheckpoint
  };

  uint32_t issued = 0;
  for (uint32_t i = 0; i < spec.ops; ++i) {
    std::vector<std::pair<Op, uint32_t>> table;
    if (model.files.size() < spec.max_files && spec.w_create > 0) {
      table.emplace_back(Op::kCreate, spec.w_create);
    }
    if (model.open_count() > 0) {
      if (spec.w_write > 0) table.emplace_back(Op::kWrite, spec.w_write);
      if (spec.w_fsync > 0) table.emplace_back(Op::kFsync, spec.w_fsync);
      if (spec.w_close > 0) table.emplace_back(Op::kClose, spec.w_close);
    }
    if (!model.files.empty()) {
      if (spec.w_unlink > 0) table.emplace_back(Op::kUnlink, spec.w_unlink);
      if (spec.w_rename > 0) table.emplace_back(Op::kRename, spec.w_rename);
    }
    if (model.dirs.size() < spec.max_dirs + 1 && spec.w_mkdir > 0) {
      table.emplace_back(Op::kMkdir, spec.w_mkdir);
    }
    if (spec.w_checkpoint > 0) {
      table.emplace_back(Op::kCheckpoint, spec.w_checkpoint);
    }
    if (table.empty()) break;

    uint32_t total = 0;
    for (const auto& [op, w] : table) total += w;
    uint64_t pick = rng.uniform(total);
    Op op = table.front().first;
    for (const auto& [o, w] : table) {
      if (pick < w) {
        op = o;
        break;
      }
      pick -= w;
    }

    switch (op) {
      case Op::kCreate: {
        const std::string& dir =
            model.dirs[rng.uniform(model.dirs.size())];
        ModelFile f;
        f.path = join(dir, "f" + std::to_string(model.next_id++));
        f.tagged = rng.uniform(2) == 0;
        auto fd = co_await fs.creat(f.path);
        NVMECR_CO_RETURN_IF_ERROR(fd.status());
        f.fd = *fd;
        model.files.push_back(std::move(f));
        break;
      }
      case Op::kWrite: {
        // Pick among open files only.
        std::vector<size_t> open;
        for (size_t k = 0; k < model.files.size(); ++k) {
          if (model.files[k].fd >= 0) open.push_back(k);
        }
        ModelFile& f = model.files[open[rng.uniform(open.size())]];
        const uint64_t len = rng.uniform(1, spec.max_write);
        if (f.tagged) {
          NVMECR_CO_RETURN_IF_ERROR(co_await fs.write_tagged(f.fd, len));
        } else {
          std::vector<std::byte> buf(len);
          for (uint64_t b = 0; b < len; ++b) {
            buf[b] = static_cast<std::byte>((spec.seed + i + b) & 0xff);
          }
          auto n = co_await fs.write(f.fd, buf);
          NVMECR_CO_RETURN_IF_ERROR(n.status());
        }
        break;
      }
      case Op::kFsync: {
        std::vector<size_t> open;
        for (size_t k = 0; k < model.files.size(); ++k) {
          if (model.files[k].fd >= 0) open.push_back(k);
        }
        ModelFile& f = model.files[open[rng.uniform(open.size())]];
        NVMECR_CO_RETURN_IF_ERROR(co_await fs.fsync(f.fd));
        break;
      }
      case Op::kClose: {
        std::vector<size_t> open;
        for (size_t k = 0; k < model.files.size(); ++k) {
          if (model.files[k].fd >= 0) open.push_back(k);
        }
        ModelFile& f = model.files[open[rng.uniform(open.size())]];
        NVMECR_CO_RETURN_IF_ERROR(co_await fs.close(f.fd));
        f.fd = -1;
        break;
      }
      case Op::kUnlink: {
        const size_t k = rng.uniform(model.files.size());
        ModelFile& f = model.files[k];
        if (f.fd >= 0) {
          NVMECR_CO_RETURN_IF_ERROR(co_await fs.close(f.fd));
        }
        NVMECR_CO_RETURN_IF_ERROR(co_await fs.unlink(f.path));
        model.files.erase(model.files.begin() + static_cast<long>(k));
        break;
      }
      case Op::kRename: {
        ModelFile& f = model.files[rng.uniform(model.files.size())];
        const std::string& dir =
            model.dirs[rng.uniform(model.dirs.size())];
        const std::string to =
            join(dir, "f" + std::to_string(model.next_id++));
        NVMECR_CO_RETURN_IF_ERROR(co_await fs.rename(f.path, to));
        f.path = to;
        break;
      }
      case Op::kMkdir: {
        const std::string& parent =
            model.dirs[rng.uniform(model.dirs.size())];
        const std::string dir =
            join(parent, "d" + std::to_string(model.next_id++));
        NVMECR_CO_RETURN_IF_ERROR(co_await fs.mkdir(dir));
        model.dirs.push_back(dir);
        break;
      }
      case Op::kCheckpoint: {
        NVMECR_CO_RETURN_IF_ERROR(co_await fs.checkpoint_state());
        break;
      }
    }
    ++issued;
  }

  for (ModelFile& f : model.files) {
    if (f.fd >= 0) {
      NVMECR_CO_RETURN_IF_ERROR(co_await fs.close(f.fd));
      f.fd = -1;
    }
  }
  co_return Result(issued);
}

}  // namespace nvmecr::crashsim
