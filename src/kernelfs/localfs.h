// Kernel filesystem cost models (ext4-like and XFS-like).
//
// These are behavioural models, not reimplementations: they keep just
// enough state (open files, sizes, dirty bytes, a shared directory lock)
// to charge realistic costs for the operations checkpoint workloads
// issue — create/open, buffered write, fsync, read, unlink — through the
// kernel path: syscall trap, VFS, page-cache copy, block-allocation per
// fs block, a journaled writeback pipeline, the block layer, and
// interrupt-driven completion on a shared kernel hardware queue.
//
// The per-filesystem `writeback_bw` expresses the serialization real
// journaling filesystems exhibit under concurrent fsync storms (jbd2's
// single commit thread for ext4; XFS's delayed allocation doing much
// better) — calibrated so ext4/XFS land at the efficiencies the paper
// measures in Figure 7(c). All time spent inside these calls counts as
// kernel time (§IV-D's 76.5%/79% measurements).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "hw/nvme_ssd.h"
#include "kernelfs/kernel_costs.h"
#include "simcore/sync.h"

namespace nvmecr::kernelfs {

struct LocalFsParams {
  enum class Kind { kExt4, kXfs };
  Kind kind = Kind::kExt4;

  /// Filesystem block size (kernel filesystems top out at 4 KiB —
  /// the contrast with NVMe-CR hugeblocks, §III-E).
  uint32_t fs_block = 4096;

  /// Block-allocation CPU per new block. ext4's bitmap allocator pays
  /// per block; XFS's extent trees amortize heavily.
  SimDuration alloc_per_block = 400;  // ns

  /// Journal commit on fsync: a small serialized write plus a bounded
  /// cache-flush latency (REQ_PREFLUSH against the device's volatile
  /// cache — not a full backlog drain).
  uint64_t journal_commit_bytes = 16_KiB;
  SimDuration journal_flush_latency = 800 * kMicrosecond;

  /// Effective writeback pipeline bandwidth (journal + allocator
  /// serialization ceiling), shared by all writers of this filesystem.
  uint64_t writeback_bw = 1250_MBps;

  /// Directory-operation service time under the shared VFS dentry lock.
  SimDuration dir_op_cost = 12_us;

  static LocalFsParams ext4() { return LocalFsParams{}; }
  static LocalFsParams xfs() {
    LocalFsParams p;
    p.kind = Kind::kXfs;
    p.alloc_per_block = 40;  // delayed extent allocation
    p.journal_commit_bytes = 8_KiB;
    p.journal_flush_latency = 400 * kMicrosecond;
    p.writeback_bw = 1900_MBps;
    p.dir_op_cost = 10_us;
    return p;
  }
};

class LocalFs {
 public:
  /// Creates the filesystem over namespace `nsid` of `ssd`, holding one
  /// kernel hardware queue (the in-kernel nvme driver's submission path).
  LocalFs(sim::Engine& engine, hw::NvmeSsd& ssd, uint32_t nsid,
          LocalFsParams params = {}, KernelCosts costs = {});
  ~LocalFs();

  LocalFs(const LocalFs&) = delete;
  LocalFs& operator=(const LocalFs&) = delete;

  // All operations model blocking POSIX syscalls and charge their whole
  // duration as kernel time.

  /// open(2) with O_CREAT when `create`; directory ops serialize on the
  /// shared dentry lock.
  sim::Task<StatusOr<int>> open(const std::string& path, bool create);

  /// write(2): page-cache copy + allocation for newly touched blocks.
  /// Appends at the current file offset (checkpoint streams are
  /// sequential).
  sim::Task<Status> write(int fd, uint64_t len);

  /// fsync(2): write back this file's dirty bytes through the journaled
  /// pipeline and the kernel block layer, then commit the journal.
  sim::Task<Status> fsync(int fd);

  /// read(2): cold read from the device + copy to user.
  sim::Task<Status> read(int fd, uint64_t len);

  sim::Task<Status> close(int fd);
  sim::Task<Status> unlink(const std::string& path);

  /// Cumulative simulated time spent inside these syscalls.
  SimDuration kernel_time() const { return kernel_time_; }
  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t create_count() const { return create_count_; }

 private:
  struct File {
    uint64_t size = 0;
    uint64_t dirty = 0;       // buffered, not yet written back
    uint64_t read_pos = 0;
    uint64_t seed = 0;        // content identity on the device
    uint64_t device_base = 0; // where this file's data lives
  };
  struct OpenFile {
    std::string path;
  };

  /// Flushes `bytes` of a file through writeback pipeline + block layer
  /// + device (chunked at the kernel max request size).
  sim::Task<Status> writeback(File& file, uint64_t bytes);

  sim::Engine& engine_;
  hw::NvmeSsd& ssd_;
  uint32_t nsid_;
  uint32_t queue_id_;
  std::unique_ptr<hw::BlockDevice> dev_;
  LocalFsParams params_;
  KernelCosts costs_;

  sim::FifoMutex dir_lock_;
  sim::BandwidthResource writeback_pipe_;
  sim::FifoMutex journal_lock_;

  std::map<std::string, File> files_;
  std::map<int, OpenFile> open_files_;
  int next_fd_ = 3;
  uint64_t alloc_cursor_ = 0;  // simple bump space allocation

  SimDuration kernel_time_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t create_count_ = 0;
};

}  // namespace nvmecr::kernelfs
