#include "kernelfs/localfs.h"

#include <algorithm>

#include "common/rng.h"

namespace nvmecr::kernelfs {

namespace {

/// Maps a logical (file base + offset) position to an aligned device
/// offset that fits a request of `aligned_len` bytes. The cost model only
/// needs placement to be deterministic and in-range, not extent-exact.
uint64_t place(const hw::BlockDevice& dev, uint64_t logical,
               uint64_t aligned_len) {
  const uint64_t bs = dev.hw_block_size();
  const uint64_t cap_blocks = dev.capacity() / bs;
  const uint64_t need_blocks = aligned_len / bs;
  NVMECR_CHECK(cap_blocks > need_blocks);
  return ((logical / bs) % (cap_blocks - need_blocks)) * bs;
}

/// RAII-style kernel-time attribution for one syscall.
class SyscallScope {
 public:
  SyscallScope(sim::Engine& engine, SimDuration& accum)
      : engine_(engine), accum_(accum), start_(engine.now()) {}
  ~SyscallScope() { accum_ += engine_.now() - start_; }

 private:
  sim::Engine& engine_;
  SimDuration& accum_;
  SimTime start_;
};
}  // namespace

LocalFs::LocalFs(sim::Engine& engine, hw::NvmeSsd& ssd, uint32_t nsid,
                 LocalFsParams params, KernelCosts costs)
    : engine_(engine),
      ssd_(ssd),
      nsid_(nsid),
      queue_id_(ssd.alloc_queue().value()),
      dev_(ssd.open_queue(nsid, queue_id_)),
      params_(params),
      costs_(costs),
      dir_lock_(engine),
      writeback_pipe_(engine, params.writeback_bw),
      journal_lock_(engine) {}

LocalFs::~LocalFs() { ssd_.free_queue(queue_id_); }

sim::Task<StatusOr<int>> LocalFs::open(const std::string& path, bool create) {
  SyscallScope scope(engine_, kernel_time_);
  co_await engine_.delay(costs_.syscall_trap + costs_.vfs_per_op);

  auto it = files_.find(path);
  if (it == files_.end()) {
    if (!create) co_return NotFoundError(path);
    // Creation serializes on the shared dentry lock and journals the
    // new inode + directory entry.
    co_await dir_lock_.lock();
    co_await engine_.delay(params_.dir_op_cost);
    File f;
    f.seed = mix64(fnv1a(path.data(), path.size()));
    f.device_base = alloc_cursor_;
    // Reserve a generous window per file; a bump allocator mirrors how
    // little the cost model cares about exact extents.
    alloc_cursor_ += 1_GiB;
    it = files_.emplace(path, f).first;
    ++create_count_;
    dir_lock_.unlock();
  } else {
    it->second.read_pos = 0;
  }

  const int fd = next_fd_++;
  open_files_.emplace(fd, OpenFile{path});
  co_return fd;
}

sim::Task<Status> LocalFs::write(int fd, uint64_t len) {
  SyscallScope scope(engine_, kernel_time_);
  auto of = open_files_.find(fd);
  if (of == open_files_.end()) co_return BadFdError();
  File& file = files_.at(of->second.path);

  co_await engine_.delay(costs_.syscall_trap + costs_.vfs_per_op);
  // copy_from_user into the page cache.
  co_await engine_.delay(transfer_time(len, costs_.page_cache_bw));
  // Allocation for the newly touched fs blocks.
  const uint64_t new_blocks = ceil_div(len, params_.fs_block);
  co_await engine_.delay(
      static_cast<SimDuration>(new_blocks) * params_.alloc_per_block);

  file.size += len;
  file.dirty += len;
  bytes_written_ += len;
  co_return OkStatus();
}

sim::Task<Status> LocalFs::writeback(File& file, uint64_t bytes) {
  uint64_t remaining = bytes;
  uint64_t offset = file.size - file.dirty;
  while (remaining > 0) {
    const uint64_t req = std::min(remaining, costs_.max_request_bytes);
    // Journal/allocator pipeline ceiling, shared across all writers.
    co_await writeback_pipe_.transfer(req);
    // Block layer + device + interrupt completion.
    co_await engine_.delay(costs_.block_layer_per_req);
    const uint64_t aligned = round_up(req, dev_->hw_block_size());
    Status s = co_await dev_->write_tagged(
        place(*dev_, file.device_base + offset, aligned), aligned, file.seed);
    if (!s.ok()) co_return s;
    co_await engine_.delay(costs_.interrupt_per_req);
    offset += req;
    remaining -= req;
  }
  co_return OkStatus();
}

sim::Task<Status> LocalFs::fsync(int fd) {
  SyscallScope scope(engine_, kernel_time_);
  auto of = open_files_.find(fd);
  if (of == open_files_.end()) co_return BadFdError();
  File& file = files_.at(of->second.path);

  co_await engine_.delay(costs_.syscall_trap);
  if (file.dirty > 0) {
    Status s = co_await writeback(file, file.dirty);
    if (!s.ok()) co_return s;
    file.dirty = 0;
  }
  // Journal commit: serialized (single commit thread), small write +
  // device flush.
  co_await journal_lock_.lock();
  co_await engine_.delay(costs_.block_layer_per_req);
  const uint64_t commit_len =
      round_up(params_.journal_commit_bytes, dev_->hw_block_size());
  Status s = co_await dev_->write_tagged(
      dev_->capacity() / dev_->hw_block_size() * dev_->hw_block_size() -
          commit_len,
      commit_len, /*seed=*/1);
  // REQ_PREFLUSH: the device's volatile cache settles within a bounded
  // latency; it does not wait for the entire flash backlog.
  co_await engine_.delay(params_.journal_flush_latency);
  co_await engine_.delay(costs_.interrupt_per_req);
  journal_lock_.unlock();
  co_return s;
}

sim::Task<Status> LocalFs::read(int fd, uint64_t len) {
  SyscallScope scope(engine_, kernel_time_);
  auto of = open_files_.find(fd);
  if (of == open_files_.end()) co_return BadFdError();
  File& file = files_.at(of->second.path);

  co_await engine_.delay(costs_.syscall_trap + costs_.vfs_per_op);
  uint64_t remaining = std::min(len, file.size - std::min(file.size, file.read_pos));
  while (remaining > 0) {
    const uint64_t req = std::min(remaining, costs_.max_request_bytes);
    co_await engine_.delay(costs_.block_layer_per_req);
    const uint64_t aligned = round_up(req, dev_->hw_block_size());
    auto tag = co_await dev_->read_tagged(
        place(*dev_, file.device_base + file.read_pos, aligned), aligned);
    if (!tag.ok()) co_return tag.status();
    co_await engine_.delay(costs_.interrupt_per_req);
    // copy_to_user.
    co_await engine_.delay(transfer_time(req, costs_.page_cache_bw));
    file.read_pos += req;
    remaining -= req;
  }
  co_return OkStatus();
}

sim::Task<Status> LocalFs::close(int fd) {
  SyscallScope scope(engine_, kernel_time_);
  co_await engine_.delay(costs_.syscall_trap);
  if (open_files_.erase(fd) == 0) co_return BadFdError();
  co_return OkStatus();
}

sim::Task<Status> LocalFs::unlink(const std::string& path) {
  SyscallScope scope(engine_, kernel_time_);
  co_await engine_.delay(costs_.syscall_trap + costs_.vfs_per_op);
  co_await dir_lock_.lock();
  co_await engine_.delay(params_.dir_op_cost);
  const bool existed = files_.erase(path) > 0;
  dir_lock_.unlock();
  co_return existed ? OkStatus() : NotFoundError(path);
}

}  // namespace nvmecr::kernelfs
