// Cost constants for the kernel IO path (Figure 2's stack).
//
// Calibration sources: syscall entry/exit on Skylake-era CPUs is ~1.3 us
// with mitigations; copy_{from,to}_user runs near memcpy speed; the block
// layer + interrupt completion path costs a few microseconds per request
// and splits IO at the device's max transfer size. The *filesystem*
// writeback pipeline (journaling, allocation serialization) is what
// separates ext4 from XFS — see LocalFsParams.
#pragma once

#include "common/units.h"

namespace nvmecr::kernelfs {

using namespace nvmecr::literals;

struct KernelCosts {
  /// User->kernel->user transition per syscall.
  SimDuration syscall_trap = 1300;  // ns
  /// VFS work per operation: fd lookup, dentry walk, permission checks.
  SimDuration vfs_per_op = 700;  // ns
  /// copy_from_user / copy_to_user bandwidth through the page cache.
  uint64_t page_cache_bw = 5_GBps;
  /// Block-layer request setup (bio alloc, tagging, doorbell).
  SimDuration block_layer_per_req = 3_us;
  /// Interrupt + softirq completion handling per request.
  SimDuration interrupt_per_req = 3_us;
  /// Kernel splits large IO into requests of at most this size.
  uint64_t max_request_bytes = 512_KiB;
};

}  // namespace nvmecr::kernelfs
