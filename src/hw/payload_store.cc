#include "hw/payload_store.h"

#include <algorithm>
#include <cstring>

#include "common/rng.h"
#include "common/units.h"

namespace nvmecr::hw {

namespace {

/// Slice [from, from+n) out of an extent's byte payload.
std::vector<std::byte> slice(const std::vector<std::byte>& v, uint64_t from,
                             uint64_t n) {
  return std::vector<std::byte>(v.begin() + static_cast<ptrdiff_t>(from),
                                v.begin() + static_cast<ptrdiff_t>(from + n));
}

}  // namespace

uint64_t PayloadStore::block_tag(uint64_t seed, uint64_t block_index) {
  return mix64(seed ^ (block_index * 0x9e3779b97f4a7c15ull));
}

uint64_t PayloadStore::expected_tag(uint64_t seed, uint64_t offset,
                                    uint64_t len, uint32_t block_size) {
  uint64_t tag = 0;
  const uint64_t first = offset / block_size;
  const uint64_t count = len / block_size;
  for (uint64_t i = 0; i < count; ++i) tag += block_tag(seed, first + i);
  return tag;
}

void PayloadStore::carve(uint64_t start, uint64_t len) {
  if (len == 0) return;
  const uint64_t end = start + len;

  // Split a predecessor that overlaps the carve region.
  auto it = extents_.lower_bound(start);
  if (it != extents_.begin()) {
    auto prev = std::prev(it);
    const uint64_t prev_end = prev->first + prev->second.len;
    if (prev_end > start) {
      Extent& pe = prev->second;
      // Tail beyond the carve region survives as a new extent.
      if (prev_end > end) {
        Extent tail;
        tail.len = prev_end - end;
        tail.is_pattern = pe.is_pattern;
        tail.seed = pe.seed;
        if (!pe.is_pattern) tail.bytes = slice(pe.bytes, end - prev->first, tail.len);
        extents_.emplace(end, std::move(tail));
      }
      // Head before the carve region survives, trimmed.
      pe.len = start - prev->first;
      if (!pe.is_pattern) pe.bytes.resize(pe.len);
    }
  }

  // Remove/trim extents starting inside the carve region.
  it = extents_.lower_bound(start);
  while (it != extents_.end() && it->first < end) {
    const uint64_t e_end = it->first + it->second.len;
    if (e_end <= end) {
      it = extents_.erase(it);
    } else {
      // Keep the tail that sticks out.
      Extent tail;
      tail.len = e_end - end;
      tail.is_pattern = it->second.is_pattern;
      tail.seed = it->second.seed;
      if (!tail.is_pattern) {
        tail.bytes = slice(it->second.bytes, end - it->first, tail.len);
      }
      extents_.erase(it);
      extents_.emplace(end, std::move(tail));
      break;
    }
  }
}

bool PayloadStore::mergeable(uint64_t a_start, const Extent& a,
                             uint64_t b_start, const Extent& b) {
  // Only pattern extents merge (byte extents would need a copy; metadata
  // writes are small and non-adjacent in practice).
  return a.is_pattern && b.is_pattern && a.seed == b.seed &&
         a_start + a.len == b_start;
}

void PayloadStore::insert_extent(uint64_t start, Extent e) {
  auto [it, inserted] = extents_.emplace(start, std::move(e));
  NVMECR_CHECK(inserted);
  // Merge with successor.
  auto next = std::next(it);
  if (next != extents_.end() &&
      mergeable(it->first, it->second, next->first, next->second)) {
    it->second.len += next->second.len;
    extents_.erase(next);
  }
  // Merge with predecessor.
  if (it != extents_.begin()) {
    auto prev = std::prev(it);
    if (mergeable(prev->first, prev->second, it->first, it->second)) {
      prev->second.len += it->second.len;
      extents_.erase(it);
    }
  }
}

void PayloadStore::write_bytes(uint64_t offset,
                               std::span<const std::byte> data) {
  if (data.empty()) return;
  carve(offset, data.size());
  Extent e;
  e.len = data.size();
  e.is_pattern = false;
  e.bytes.assign(data.begin(), data.end());
  insert_extent(offset, std::move(e));
}

Status PayloadStore::read_bytes(uint64_t offset,
                                std::span<std::byte> out) const {
  if (out.empty()) return OkStatus();
  const uint64_t end = offset + out.size();
  std::memset(out.data(), 0, out.size());

  auto it = extents_.lower_bound(offset);
  if (it != extents_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.len > offset) it = prev;
  }
  for (; it != extents_.end() && it->first < end; ++it) {
    const uint64_t e_start = it->first;
    const uint64_t e_end = e_start + it->second.len;
    const uint64_t copy_start = std::max(e_start, offset);
    const uint64_t copy_end = std::min(e_end, end);
    if (copy_start >= copy_end) continue;
    if (it->second.is_pattern) {
      return CorruptionError(
          "read_bytes over pattern extent (tagged payload read as bytes)");
    }
    std::memcpy(out.data() + (copy_start - offset),
                it->second.bytes.data() + (copy_start - e_start),
                copy_end - copy_start);
  }
  return OkStatus();
}

Status PayloadStore::write_pattern(uint64_t offset, uint64_t len,
                                   uint64_t seed) {
  if (len == 0) return OkStatus();
  if (offset % block_size_ != 0 || len % block_size_ != 0) {
    return InvalidArgumentError("pattern IO must be block-aligned");
  }
  carve(offset, len);
  Extent e;
  e.len = len;
  e.is_pattern = true;
  e.seed = seed;
  insert_extent(offset, std::move(e));
  return OkStatus();
}

StatusOr<uint64_t> PayloadStore::read_combined_tag(uint64_t offset,
                                                   uint64_t len) const {
  if (offset % block_size_ != 0 || len % block_size_ != 0) {
    return InvalidArgumentError("tagged read must be block-aligned");
  }
  uint64_t tag = 0;
  const uint64_t end = offset + len;

  auto it = extents_.lower_bound(offset);
  if (it != extents_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.len > offset) it = prev;
  }
  for (; it != extents_.end() && it->first < end; ++it) {
    const uint64_t e_start = it->first;
    const uint64_t e_end = e_start + it->second.len;
    const uint64_t ov_start = std::max(e_start, offset);
    const uint64_t ov_end = std::min(e_end, end);
    if (ov_start >= ov_end) continue;
    if (it->second.is_pattern) {
      // Pattern blocks fully covered by the overlap contribute their tag.
      const uint64_t first_block = ceil_div(ov_start, block_size_);
      const uint64_t last_block = ov_end / block_size_;  // exclusive
      for (uint64_t b = first_block; b < last_block; ++b) {
        tag += block_tag(it->second.seed, b);
      }
    } else {
      // Real-byte blocks contribute a content hash per fully covered
      // block (partial blocks hash the covered slice).
      uint64_t pos = ov_start;
      while (pos < ov_end) {
        const uint64_t block_end =
            std::min<uint64_t>((pos / block_size_ + 1) * block_size_, ov_end);
        tag += fnv1a(it->second.bytes.data() + (pos - e_start),
                     block_end - pos);
        pos = block_end;
      }
    }
  }
  return tag;
}

uint64_t PayloadStore::bytes_stored() const {
  uint64_t total = 0;
  for (const auto& [start, e] : extents_) total += e.len;
  return total;
}

}  // namespace nvmecr::hw
