#include "hw/payload_store.h"

#include <algorithm>
#include <cstring>

#include "common/rng.h"
#include "common/units.h"

namespace nvmecr::hw {

namespace {

/// Slice [from, from+n) out of an extent's byte payload.
std::vector<std::byte> slice(const std::vector<std::byte>& v, uint64_t from,
                             uint64_t n) {
  return std::vector<std::byte>(v.begin() + static_cast<ptrdiff_t>(from),
                                v.begin() + static_cast<ptrdiff_t>(from + n));
}

}  // namespace

uint64_t PayloadStore::block_tag(uint64_t seed, uint64_t block_index) {
  return mix64(seed ^ (block_index * 0x9e3779b97f4a7c15ull));
}

uint64_t PayloadStore::expected_tag(uint64_t seed, uint64_t offset,
                                    uint64_t len, uint32_t block_size) {
  uint64_t tag = 0;
  const uint64_t first = offset / block_size;
  const uint64_t count = len / block_size;
  for (uint64_t i = 0; i < count; ++i) tag += block_tag(seed, first + i);
  return tag;
}

PayloadStore::ExtentMap::iterator PayloadStore::carve(uint64_t start,
                                                      uint64_t len) {
  if (len == 0) return extents_.lower_bound(start);
  const uint64_t end = start + len;

  // Split a predecessor that overlaps the carve region.
  auto it = extents_.lower_bound(start);
  if (it != extents_.begin()) {
    auto prev = std::prev(it);
    const uint64_t prev_end = prev->first + prev->second.len;
    if (prev_end > start) {
      Extent& pe = prev->second;
      // Tail beyond the carve region survives as a new extent.
      if (prev_end > end) {
        Extent tail;
        tail.len = prev_end - end;
        tail.is_pattern = pe.is_pattern;
        tail.seed = pe.seed;
        if (!pe.is_pattern) tail.bytes = slice(pe.bytes, end - prev->first, tail.len);
        it = extents_.emplace_hint(it, end, std::move(tail));
      }
      // Head before the carve region survives, trimmed.
      total_bytes_ -= std::min(prev_end, end) - start;
      pe.len = start - prev->first;
      pe.tag_valid = false;
      if (!pe.is_pattern) pe.bytes.resize(pe.len);
    }
  }

  // Remove/trim extents starting inside the carve region.
  while (it != extents_.end() && it->first < end) {
    const uint64_t e_end = it->first + it->second.len;
    if (e_end <= end) {
      total_bytes_ -= it->second.len;
      it = extents_.erase(it);
    } else {
      // Keep the tail that sticks out.
      Extent tail;
      tail.len = e_end - end;
      tail.is_pattern = it->second.is_pattern;
      tail.seed = it->second.seed;
      if (!tail.is_pattern) {
        tail.bytes = slice(it->second.bytes, end - it->first, tail.len);
      }
      total_bytes_ -= end - it->first;
      it = extents_.erase(it);
      it = extents_.emplace_hint(it, end, std::move(tail));
      break;
    }
  }
  // `it` is the first extent at or past `end` — nothing remains in
  // [start, end), so it doubles as the hint for inserting at `start`.
  return it;
}

bool PayloadStore::mergeable(uint64_t a_start, const Extent& a,
                             uint64_t b_start, const Extent& b) {
  // Only pattern extents merge (byte extents would need a copy; metadata
  // writes are small and non-adjacent in practice).
  return a.is_pattern && b.is_pattern && a.seed == b.seed &&
         a_start + a.len == b_start;
}

void PayloadStore::insert_extent(ExtentMap::iterator hint, uint64_t start,
                                 Extent e) {
  const size_t before = extents_.size();
  total_bytes_ += e.len;
  auto it = extents_.emplace_hint(hint, start, std::move(e));
  NVMECR_CHECK(extents_.size() == before + 1);
  // Merge with successor.
  auto next = std::next(it);
  if (next != extents_.end() &&
      mergeable(it->first, it->second, next->first, next->second)) {
    it->second.len += next->second.len;
    it->second.tag_valid = false;
    extents_.erase(next);
  }
  // Merge with predecessor.
  if (it != extents_.begin()) {
    auto prev = std::prev(it);
    if (mergeable(prev->first, prev->second, it->first, it->second)) {
      prev->second.len += it->second.len;
      prev->second.tag_valid = false;
      extents_.erase(it);
    }
  }
}

void PayloadStore::write_bytes(uint64_t offset,
                               std::span<const std::byte> data) {
  if (data.empty()) return;
  // Appends past the last extent cannot overlap anything: skip the carve
  // and hand the map an end() hint (amortized O(1) insertion).
  auto hint = append_past_end(offset) ? extents_.end()
                                      : carve(offset, data.size());
  Extent e;
  e.len = data.size();
  e.is_pattern = false;
  e.bytes.assign(data.begin(), data.end());
  insert_extent(hint, offset, std::move(e));
}

Status PayloadStore::read_bytes(uint64_t offset,
                                std::span<std::byte> out) const {
  if (out.empty()) return OkStatus();
  const uint64_t end = offset + out.size();
  std::memset(out.data(), 0, out.size());

  auto it = extents_.lower_bound(offset);
  if (it != extents_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.len > offset) it = prev;
  }
  for (; it != extents_.end() && it->first < end; ++it) {
    const uint64_t e_start = it->first;
    const uint64_t e_end = e_start + it->second.len;
    const uint64_t copy_start = std::max(e_start, offset);
    const uint64_t copy_end = std::min(e_end, end);
    if (copy_start >= copy_end) continue;
    if (it->second.is_pattern) {
      return CorruptionError(
          "read_bytes over pattern extent (tagged payload read as bytes)");
    }
    std::memcpy(out.data() + (copy_start - offset),
                it->second.bytes.data() + (copy_start - e_start),
                copy_end - copy_start);
  }
  return OkStatus();
}

Status PayloadStore::write_pattern(uint64_t offset, uint64_t len,
                                   uint64_t seed) {
  if (len == 0) return OkStatus();
  if (offset % block_size_ != 0 || len % block_size_ != 0) {
    return InvalidArgumentError("pattern IO must be block-aligned");
  }
  if (append_past_end(offset)) {
    // Sequential checkpoint streaming: extend the last extent in place
    // when it is the same pattern, else append with an end() hint. No
    // carve either way.
    if (!extents_.empty()) {
      auto& [last_start, last] = *extents_.rbegin();
      if (last.is_pattern && last.seed == seed &&
          last_start + last.len == offset) {
        last.len += len;
        last.tag_valid = false;
        total_bytes_ += len;
        return OkStatus();
      }
    }
    Extent e;
    e.len = len;
    e.is_pattern = true;
    e.seed = seed;
    insert_extent(extents_.end(), offset, std::move(e));
    return OkStatus();
  }
  auto hint = carve(offset, len);
  Extent e;
  e.len = len;
  e.is_pattern = true;
  e.seed = seed;
  insert_extent(hint, offset, std::move(e));
  return OkStatus();
}

uint64_t PayloadStore::tag_of_range(uint64_t e_start, const Extent& e,
                                    uint64_t ov_start, uint64_t ov_end) const {
  uint64_t tag = 0;
  if (e.is_pattern) {
    // Pattern blocks fully covered by the overlap contribute their tag.
    const uint64_t first_block = ceil_div(ov_start, block_size_);
    const uint64_t last_block = ov_end / block_size_;  // exclusive
    for (uint64_t b = first_block; b < last_block; ++b) {
      tag += block_tag(e.seed, b);
    }
  } else {
    // Real-byte blocks contribute a content hash per fully covered
    // block (partial blocks hash the covered slice).
    uint64_t pos = ov_start;
    while (pos < ov_end) {
      const uint64_t block_end =
          std::min<uint64_t>((pos / block_size_ + 1) * block_size_, ov_end);
      tag += fnv1a(e.bytes.data() + (pos - e_start), block_end - pos);
      pos = block_end;
    }
  }
  return tag;
}

StatusOr<uint64_t> PayloadStore::read_combined_tag(uint64_t offset,
                                                   uint64_t len) const {
  if (offset % block_size_ != 0 || len % block_size_ != 0) {
    return InvalidArgumentError("tagged read must be block-aligned");
  }
  ++tag_reads_;
  uint64_t tag = 0;
  const uint64_t end = offset + len;

  auto it = extents_.lower_bound(offset);
  if (it != extents_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.len > offset) it = prev;
  }
  for (; it != extents_.end() && it->first < end; ++it) {
    const uint64_t e_start = it->first;
    const Extent& e = it->second;
    const uint64_t e_end = e_start + e.len;
    const uint64_t ov_start = std::max(e_start, offset);
    const uint64_t ov_end = std::min(e_end, end);
    if (ov_start >= ov_end) continue;
    if (ov_start == e_start && ov_end == e_end) {
      // Whole-extent read: serve from (or fill) the per-extent cache so
      // restart-verification over unmodified data is O(1) per extent.
      if (e.tag_valid) {
        ++tag_cache_hits_;
      } else {
        e.cached_tag = tag_of_range(e_start, e, e_start, e_end);
        e.tag_valid = true;
        ++tag_cache_fills_;
      }
      tag += e.cached_tag;
    } else {
      tag += tag_of_range(e_start, e, ov_start, ov_end);
    }
  }
  return tag;
}

}  // namespace nvmecr::hw
