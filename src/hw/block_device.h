// Abstract awaitable block device.
//
// Everything that stores bytes in the system — the simulated NVMe SSD seen
// through one hardware queue, a RAM device for tests/examples, the NVMf
// remote device, a partition view — implements this interface. Two IO
// flavors are provided:
//
//  * byte IO (write/read): moves real bytes; used for all metadata
//    (directory files, operation log, state checkpoints) and by tests
//    that verify byte-exact persistence.
//  * tagged IO (write_tagged/read_tagged): timing-identical to byte IO
//    but the content is a deterministic pattern identified by a seed, so
//    simulating a 700 GB checkpoint costs O(extents) host memory. The
//    device derives a per-block tag from (seed, absolute block index);
//    readers verify by recomputing the same combination (see
//    PayloadStore::combine_tags).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/status.h"
#include "simcore/task.h"

namespace nvmecr::hw {

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  /// Usable capacity in bytes of this view.
  virtual uint64_t capacity() const = 0;

  /// Hardware block size (tagged IO must be aligned to it).
  virtual uint32_t hw_block_size() const = 0;

  /// Absolute byte offset of this view's origin on the physical medium.
  /// Pattern tags are a function of the *absolute* block index (see
  /// PayloadStore::block_tag), so verifiers above a translated view add
  /// this to their local offsets when computing expected tags.
  virtual uint64_t tag_origin() const { return 0; }

  /// Writes real bytes at `offset`.
  virtual sim::Task<Status> write(uint64_t offset,
                                  std::span<const std::byte> data) = 0;

  /// Reads real bytes previously written with write().
  virtual sim::Task<Status> read(uint64_t offset,
                                 std::span<std::byte> out) = 0;

  /// Writes `len` pattern bytes identified by `seed` (hw-block aligned).
  virtual sim::Task<Status> write_tagged(uint64_t offset, uint64_t len,
                                         uint64_t seed) = 0;

  /// Reads back the combined tag over [offset, offset+len).
  virtual sim::Task<StatusOr<uint64_t>> read_tagged(uint64_t offset,
                                                    uint64_t len) = 0;

  /// Durability barrier: completes when previously acknowledged writes
  /// are on stable media (device RAM counts — capacitor-backed, §III-D).
  virtual sim::Task<Status> flush() = 0;

  /// Batched tagged IO: semantically identical to `subcmds` back-to-back
  /// equal-share commands over [offset, offset+len) issued to the same
  /// queue, but simulated as one event (per-command costs are still
  /// charged `subcmds` times by devices that model them). Lets the data
  /// plane submit hugeblock-granular IO without one simulation event per
  /// hugeblock. Default forwards to the unbatched op (cost models that
  /// don't charge per command need nothing more).
  virtual sim::Task<Status> write_tagged_batch(uint64_t offset, uint64_t len,
                                               uint64_t seed,
                                               uint32_t subcmds) {
    (void)subcmds;
    co_return co_await write_tagged(offset, len, seed);
  }
  virtual sim::Task<StatusOr<uint64_t>> read_tagged_batch(uint64_t offset,
                                                          uint64_t len,
                                                          uint32_t subcmds) {
    (void)subcmds;
    co_return co_await read_tagged(offset, len);
  }
};

/// Bounded window [base, base+length) onto another device. Used to hand
/// each microfs instance its private partition of a shared SSD
/// (microfs Principle 2: integrity by partitioning).
class PartitionView final : public BlockDevice {
 public:
  PartitionView(BlockDevice& parent, uint64_t base, uint64_t length)
      : parent_(parent), base_(base), length_(length) {}

  uint64_t capacity() const override { return length_; }
  uint32_t hw_block_size() const override { return parent_.hw_block_size(); }
  uint64_t tag_origin() const override {
    return parent_.tag_origin() + base_;
  }

  sim::Task<Status> write(uint64_t offset,
                          std::span<const std::byte> data) override {
    if (offset + data.size() > length_) co_return out_of_range(offset);
    co_return co_await parent_.write(base_ + offset, data);
  }

  sim::Task<Status> read(uint64_t offset, std::span<std::byte> out) override {
    if (offset + out.size() > length_) co_return out_of_range(offset);
    co_return co_await parent_.read(base_ + offset, out);
  }

  sim::Task<Status> write_tagged(uint64_t offset, uint64_t len,
                                 uint64_t seed) override {
    if (offset + len > length_) co_return out_of_range(offset);
    co_return co_await parent_.write_tagged(base_ + offset, len, seed);
  }

  sim::Task<StatusOr<uint64_t>> read_tagged(uint64_t offset,
                                            uint64_t len) override {
    if (offset + len > length_) co_return StatusOr<uint64_t>(out_of_range(offset));
    co_return co_await parent_.read_tagged(base_ + offset, len);
  }

  sim::Task<Status> flush() override { co_return co_await parent_.flush(); }

  sim::Task<Status> write_tagged_batch(uint64_t offset, uint64_t len,
                                       uint64_t seed,
                                       uint32_t subcmds) override {
    if (offset + len > length_) co_return out_of_range(offset);
    co_return co_await parent_.write_tagged_batch(base_ + offset, len, seed,
                                                  subcmds);
  }
  sim::Task<StatusOr<uint64_t>> read_tagged_batch(uint64_t offset,
                                                  uint64_t len,
                                                  uint32_t subcmds) override {
    if (offset + len > length_) {
      co_return StatusOr<uint64_t>(out_of_range(offset));
    }
    co_return co_await parent_.read_tagged_batch(base_ + offset, len, subcmds);
  }

  uint64_t base() const { return base_; }

 private:
  Status out_of_range(uint64_t offset) const {
    return InvalidArgumentError("partition IO out of range at offset " +
                                std::to_string(offset));
  }

  BlockDevice& parent_;
  uint64_t base_;
  uint64_t length_;
};

}  // namespace nvmecr::hw
