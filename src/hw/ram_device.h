// Instant (zero simulated latency) block device backed by a PayloadStore.
//
// Used by microfs unit tests, the quickstart example, and anywhere real
// byte-exact storage without a timing model is wanted. All awaitables
// complete without suspending, so a coroutine chain over a RamDevice runs
// to completion the moment it is resumed.
#pragma once

#include "hw/block_device.h"
#include "hw/payload_store.h"

namespace nvmecr::hw {

class RamDevice final : public BlockDevice {
 public:
  explicit RamDevice(uint64_t capacity, uint32_t block_size = 4096)
      : capacity_(capacity), store_(block_size) {}

  uint64_t capacity() const override { return capacity_; }
  uint32_t hw_block_size() const override { return store_.block_size(); }

  sim::Task<Status> write(uint64_t offset,
                          std::span<const std::byte> data) override {
    if (offset + data.size() > capacity_) {
      co_return InvalidArgumentError("write beyond device end");
    }
    store_.write_bytes(offset, data);
    bytes_written_ += data.size();
    co_return OkStatus();
  }

  sim::Task<Status> read(uint64_t offset, std::span<std::byte> out) override {
    if (offset + out.size() > capacity_) {
      co_return InvalidArgumentError("read beyond device end");
    }
    co_return store_.read_bytes(offset, out);
  }

  sim::Task<Status> write_tagged(uint64_t offset, uint64_t len,
                                 uint64_t seed) override {
    if (offset + len > capacity_) {
      co_return InvalidArgumentError("write beyond device end");
    }
    Status s = store_.write_pattern(offset, len, seed);
    if (s.ok()) bytes_written_ += len;
    co_return s;
  }

  sim::Task<StatusOr<uint64_t>> read_tagged(uint64_t offset,
                                            uint64_t len) override {
    if (offset + len > capacity_) {
      co_return StatusOr<uint64_t>(
          InvalidArgumentError("read beyond device end"));
    }
    co_return store_.read_combined_tag(offset, len);
  }

  sim::Task<Status> flush() override { co_return OkStatus(); }

  uint64_t bytes_written() const { return bytes_written_; }
  const PayloadStore& payload() const { return store_; }

 private:
  uint64_t capacity_;
  PayloadStore store_;
  uint64_t bytes_written_ = 0;
};

}  // namespace nvmecr::hw
