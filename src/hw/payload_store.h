// Sparse content store backing simulated devices.
//
// Stores an ordered interval map of extents. An extent is either real
// bytes (metadata, small test data) or a pattern seed (bulk checkpoint
// payload). Overlapping writes split/trim older extents exactly like a
// physical medium would overwrite sectors; adjacent same-seed extents
// merge so a sequentially written checkpoint file costs one map entry.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "common/status.h"

namespace nvmecr::hw {

class PayloadStore {
 public:
  explicit PayloadStore(uint32_t block_size) : block_size_(block_size) {}

  /// Stores real bytes at [offset, offset+data.size()).
  void write_bytes(uint64_t offset, std::span<const std::byte> data);

  /// Reads real bytes. Unwritten gaps read as zero. Reading a region held
  /// by a pattern extent is a usage error and returns kCorruption.
  Status read_bytes(uint64_t offset, std::span<std::byte> out) const;

  /// Stores a pattern extent: conceptual content of each covered hardware
  /// block i is pattern(seed, i). Offset and len must be block-aligned.
  Status write_pattern(uint64_t offset, uint64_t len, uint64_t seed);

  /// Combined tag over [offset, offset+len): the wrapping sum of each
  /// covered block's tag. Pattern blocks contribute block_tag(seed, idx);
  /// real-byte blocks contribute the FNV-1a of their contents; unwritten
  /// blocks contribute 0. Offset/len must be block-aligned.
  StatusOr<uint64_t> read_combined_tag(uint64_t offset, uint64_t len) const;

  /// The per-block tag a pattern write produces; exposed so workloads can
  /// precompute the tag they expect to read back.
  static uint64_t block_tag(uint64_t seed, uint64_t block_index);

  /// Expected combined tag for a pattern extent (what read_combined_tag
  /// returns if [offset, offset+len) is covered by `seed` pattern data).
  static uint64_t expected_tag(uint64_t seed, uint64_t offset, uint64_t len,
                               uint32_t block_size);

  /// Total bytes currently represented (real + pattern).
  uint64_t bytes_stored() const;

  /// Number of extents (memory-footprint observability; merging keeps
  /// this small for sequential workloads).
  size_t extent_count() const { return extents_.size(); }

  /// Drops all content (device reformat).
  void clear() { extents_.clear(); }

  uint32_t block_size() const { return block_size_; }

 private:
  struct Extent {
    uint64_t len = 0;
    // Exactly one of: pattern extent (is_pattern) with `seed`, or real
    // bytes in `bytes` (bytes.size() == len).
    bool is_pattern = false;
    uint64_t seed = 0;
    std::vector<std::byte> bytes;
  };

  /// Removes/overwrite-trims everything intersecting [start, start+len).
  void carve(uint64_t start, uint64_t len);

  /// Inserts and merges with neighbors when possible.
  void insert_extent(uint64_t start, Extent e);

  static bool mergeable(uint64_t a_start, const Extent& a, uint64_t b_start,
                        const Extent& b);

  uint32_t block_size_;
  std::map<uint64_t, Extent> extents_;  // key: start offset
};

}  // namespace nvmecr::hw
