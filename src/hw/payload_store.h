// Sparse content store backing simulated devices.
//
// Stores an ordered interval map of extents. An extent is either real
// bytes (metadata, small test data) or a pattern seed (bulk checkpoint
// payload). Overlapping writes split/trim older extents exactly like a
// physical medium would overwrite sectors; adjacent same-seed extents
// merge so a sequentially written checkpoint file costs one map entry.
//
// Host-performance fast paths (DESIGN.md §11): each extent caches its
// whole-extent combined tag so re-reading an unmodified extent is O(1)
// instead of re-hashing every block; writes that land past the last
// extent (the dominant sequential-checkpoint case) skip the overlap
// carve and use hinted map insertion; bytes_stored() is maintained
// incrementally instead of walking the map.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "common/status.h"

namespace nvmecr::hw {

class PayloadStore {
 public:
  explicit PayloadStore(uint32_t block_size) : block_size_(block_size) {}

  /// Stores real bytes at [offset, offset+data.size()).
  void write_bytes(uint64_t offset, std::span<const std::byte> data);

  /// Reads real bytes. Unwritten gaps read as zero. Reading a region held
  /// by a pattern extent is a usage error and returns kCorruption.
  Status read_bytes(uint64_t offset, std::span<std::byte> out) const;

  /// Stores a pattern extent: conceptual content of each covered hardware
  /// block i is pattern(seed, i). Offset and len must be block-aligned.
  Status write_pattern(uint64_t offset, uint64_t len, uint64_t seed);

  /// Combined tag over [offset, offset+len): the wrapping sum of each
  /// covered block's tag. Pattern blocks contribute block_tag(seed, idx);
  /// real-byte blocks contribute the FNV-1a of their contents; unwritten
  /// blocks contribute 0. Offset/len must be block-aligned.
  StatusOr<uint64_t> read_combined_tag(uint64_t offset, uint64_t len) const;

  /// The per-block tag a pattern write produces; exposed so workloads can
  /// precompute the tag they expect to read back.
  static uint64_t block_tag(uint64_t seed, uint64_t block_index);

  /// Expected combined tag for a pattern extent (what read_combined_tag
  /// returns if [offset, offset+len) is covered by `seed` pattern data).
  static uint64_t expected_tag(uint64_t seed, uint64_t offset, uint64_t len,
                               uint32_t block_size);

  /// Total bytes currently represented (real + pattern). O(1).
  uint64_t bytes_stored() const { return total_bytes_; }

  /// Number of extents (memory-footprint observability; merging keeps
  /// this small for sequential workloads).
  size_t extent_count() const { return extents_.size(); }

  /// Times read_combined_tag served a whole extent from its cached tag
  /// instead of re-hashing per block (exported as payload.tag_cache_hits).
  ///
  /// Note the cache only engages on *whole-extent* reads: extent merging
  /// coalesces a sequentially written file into one big extent, so a
  /// reader that fetches it back in smaller chunks (the e2e CoMD restart
  /// path) takes the partial-overlap branch every time and hits are
  /// legitimately zero there — see tag_reads()/tag_cache_fills() to tell
  /// "never engaged" apart from "never called".
  uint64_t tag_cache_hits() const { return tag_cache_hits_; }

  /// Total read_combined_tag calls (hit-rate denominator).
  uint64_t tag_reads() const { return tag_reads_; }

  /// Whole-extent reads that computed and cached a tag (a later identical
  /// read would hit).
  uint64_t tag_cache_fills() const { return tag_cache_fills_; }

  /// Drops all content (device reformat).
  void clear() {
    extents_.clear();
    total_bytes_ = 0;
  }

  uint32_t block_size() const { return block_size_; }

 private:
  struct Extent {
    uint64_t len = 0;
    // Exactly one of: pattern extent (is_pattern) with `seed`, or real
    // bytes in `bytes` (bytes.size() == len).
    bool is_pattern = false;
    uint64_t seed = 0;
    std::vector<std::byte> bytes;
    // Whole-extent combined tag, filled lazily by read_combined_tag and
    // invalidated by every mutation (trim, merge, extend). Mutable: the
    // cache is filled from const readers.
    mutable uint64_t cached_tag = 0;
    mutable bool tag_valid = false;
  };

  using ExtentMap = std::map<uint64_t, Extent>;  // key: start offset

  /// Removes/overwrite-trims everything intersecting [start, start+len).
  /// Returns the position where a new extent at `start` belongs, usable
  /// as an insertion hint.
  ExtentMap::iterator carve(uint64_t start, uint64_t len);

  /// Inserts at `hint` (from carve() or end() for appends) and merges
  /// with neighbors when possible.
  void insert_extent(ExtentMap::iterator hint, uint64_t start, Extent e);

  /// True when [offset, ...) starts at or past the end of the last
  /// extent, i.e. the write cannot overlap anything and carve() can be
  /// skipped entirely.
  bool append_past_end(uint64_t offset) const {
    if (extents_.empty()) return true;
    const auto& [last_start, last] = *extents_.rbegin();
    return last_start + last.len <= offset;
  }

  /// Combined tag of extent `e` (starting at `e_start`) restricted to
  /// [ov_start, ov_end), which must lie within the extent.
  uint64_t tag_of_range(uint64_t e_start, const Extent& e, uint64_t ov_start,
                        uint64_t ov_end) const;

  static bool mergeable(uint64_t a_start, const Extent& a, uint64_t b_start,
                        const Extent& b);

  uint32_t block_size_;
  ExtentMap extents_;
  uint64_t total_bytes_ = 0;
  mutable uint64_t tag_cache_hits_ = 0;
  mutable uint64_t tag_cache_fills_ = 0;
  mutable uint64_t tag_reads_ = 0;
};

}  // namespace nvmecr::hw
