#include "hw/nvme_ssd.h"

#include <algorithm>

#include "common/log.h"
#include "obs/profile.h"
#include "simcore/profile.h"
#include "simcore/trace.h"

namespace nvmecr::hw {

namespace {
// The controller is modeled as a BandwidthResource at 1 byte/ns so that
// reserve(n) books exactly n nanoseconds of serial controller time.
constexpr uint64_t kOneBytePerNs = 1000ull * 1000ull * 1000ull;
}  // namespace

NvmeSsd::NvmeSsd(sim::Engine& engine, SsdSpec spec, std::string name)
    : engine_(engine),
      spec_(spec),
      name_(std::move(name)),
      controller_(engine, kOneBytePerNs),
      queues_(spec.max_queues),
      store_(spec.hw_block_size) {
  NVMECR_CHECK(spec_.channels > 0);
  write_channels_.reserve(spec_.channels);
  read_channels_.reserve(spec_.channels);
  for (uint32_t c = 0; c < spec_.channels; ++c) {
    write_channels_.emplace_back(engine, spec_.channel_write_bw());
    read_channels_.emplace_back(engine, spec_.channel_read_bw());
  }
}

StatusOr<uint32_t> NvmeSsd::create_namespace(uint64_t bytes) {
  const uint64_t size = round_up(bytes, spec_.hw_block_size);
  if (namespaces_.size() >= spec_.max_namespaces) {
    return UnavailableError("namespace budget exhausted on " + name_);
  }
  if (size > free_capacity()) {
    return NoSpaceError("not enough free capacity on " + name_);
  }
  Namespace ns;
  ns.base = allocated_;  // simple bump allocation; deletes leave holes
  ns.size = size;
  allocated_ += size;
  const uint32_t nsid = next_nsid_++;
  namespaces_.emplace(nsid, ns);
  return nsid;
}

Status NvmeSsd::delete_namespace(uint32_t nsid) {
  auto it = namespaces_.find(nsid);
  if (it == namespaces_.end()) return NotFoundError("no namespace");
  // Capacity from deleted namespaces is only reclaimed when it is the
  // most recently allocated region (bump allocator); real controllers
  // have the same external behavior via granular reclamation.
  if (it->second.base + it->second.size == allocated_) {
    allocated_ -= it->second.size;
  }
  namespaces_.erase(it);
  return OkStatus();
}

StatusOr<uint64_t> NvmeSsd::namespace_size(uint32_t nsid) const {
  auto it = namespaces_.find(nsid);
  if (it == namespaces_.end()) return NotFoundError("no namespace");
  return it->second.size;
}

StatusOr<uint64_t> NvmeSsd::namespace_base(uint32_t nsid) const {
  auto it = namespaces_.find(nsid);
  if (it == namespaces_.end()) return NotFoundError("no namespace");
  return it->second.base;
}

StatusOr<uint32_t> NvmeSsd::alloc_queue() {
  for (uint32_t q = 0; q < queues_.size(); ++q) {
    if (!queues_[q].in_use) {
      queues_[q].in_use = true;
      queues_[q].last_completion = 0;
      ++queues_in_use_;
      return q;
    }
  }
  return UnavailableError("all hardware queues in use on " + name_);
}

void NvmeSsd::free_queue(uint32_t queue_id) {
  NVMECR_CHECK(queue_id < queues_.size() && queues_[queue_id].in_use);
  queues_[queue_id].in_use = false;
  --queues_in_use_;
}

SimTime NvmeSsd::reserve_channels(
    std::vector<sim::BandwidthResource>& channels, uint64_t abs_offset,
    uint64_t len, SimTime earliest) {
  if (len == 0) return earliest;
  const uint32_t bs = spec_.hw_block_size;
  const uint32_t nch = spec_.channels;
  // Distribute hw blocks round-robin starting at the LBA-implied channel.
  const uint64_t nblocks = ceil_div(len, bs);
  const uint32_t start_ch = static_cast<uint32_t>((abs_offset / bs) % nch);
  std::vector<uint64_t> per_channel(nch, 0);
  if (nblocks >= nch) {
    const uint64_t whole_rounds = nblocks / nch;
    for (uint32_t c = 0; c < nch; ++c) per_channel[c] = whole_rounds * bs;
    for (uint64_t r = 0; r < nblocks % nch; ++r) {
      per_channel[(start_ch + r) % nch] += bs;
    }
  } else {
    for (uint64_t b = 0; b < nblocks; ++b) {
      per_channel[(start_ch + b) % nch] += bs;
    }
  }
  // The final partial block transfers only its real bytes.
  const uint64_t slack = nblocks * bs - len;
  per_channel[(start_ch + nblocks - 1) % nch] -= slack;

  SimTime finish = earliest;
  for (uint32_t c = 0; c < nch; ++c) {
    if (per_channel[c] == 0) continue;
    finish = std::max(finish, channels[c].reserve_after(earliest, per_channel[c]));
  }
  return finish;
}

void NvmeSsd::set_observer(const obs::Observer& o) {
  obs_ = o;
  trace_track_ = "ssd/" + name_;
  m_cmds_ = nullptr;
  m_bytes_written_ = nullptr;
  m_bytes_read_ = nullptr;
  m_ram_hits_ = nullptr;
  m_ram_misses_ = nullptr;
  m_chan_backlog_.clear();
  profile_tag_ = engine_.profile_tag("hw/ssd");
  if (obs_.metrics == nullptr) return;
  const std::string prefix = "ssd." + name_ + ".";
  m_cmds_ = obs_.metrics->counter(prefix + "commands");
  m_bytes_written_ = obs_.metrics->counter(prefix + "bytes_written");
  m_bytes_read_ = obs_.metrics->counter(prefix + "bytes_read");
  m_ram_hits_ = obs_.metrics->counter(prefix + "ram_hits");
  m_ram_misses_ = obs_.metrics->counter(prefix + "ram_misses");
  m_chan_backlog_.reserve(spec_.channels);
  for (uint32_t c = 0; c < spec_.channels; ++c) {
    m_chan_backlog_.push_back(obs_.metrics->gauge(
        prefix + "chan" + std::to_string(c) + ".write_backlog_ns"));
  }
}

Status NvmeSsd::corrupt_media(uint32_t nsid, uint64_t offset, uint64_t len) {
  auto it = namespaces_.find(nsid);
  if (it == namespaces_.end()) return NotFoundError("no namespace");
  if (offset + len > it->second.size) {
    return InvalidArgumentError("corruption beyond namespace");
  }
  // Overwrite with a junk pattern; byte readers see garbage, tagged
  // readers see a mismatching tag.
  std::vector<std::byte> junk(len, std::byte{0xde});
  store_.write_bytes(it->second.base + offset, junk);
  return OkStatus();
}

sim::Task<Status> NvmeSsd::submit(Command cmd, uint64_t* tag_out) {
  // Resumptions this command schedules (the completion wakeup, timeout
  // burns) dispatch under the device's cost center.
  sim::ProfileTagScope profile_scope(engine_, profile_tag_);
  if (device_failed_) {
    co_return IoError("device " + name_ + " failed");
  }
  if (crashed_at(engine_.now())) {
    // No completion will ever arrive; the host burns its IO timeout.
    co_await engine_.delay(io_timeout_);
    co_return TimedOutError("device " + name_ + " unresponsive");
  }
  // Validate addressing.
  auto ns_it = namespaces_.find(cmd.nsid);
  if (ns_it == namespaces_.end()) co_return NotFoundError("bad nsid");
  Namespace& ns = ns_it->second;
  if (cmd.op != Op::kFlush && cmd.offset + cmd.len > ns.size) {
    co_return InvalidArgumentError("IO beyond namespace end");
  }
  if (cmd.queue_id >= queues_.size() || !queues_[cmd.queue_id].in_use) {
    co_return BadFdError("invalid hardware queue");
  }
  Queue& queue = queues_[cmd.queue_id];
  const uint64_t abs_offset = ns.base + cmd.offset;

  // Controller processing (serial across all queues), once per host
  // command represented by this submission.
  const uint32_t ncmds = cmd.subcommands > 0 ? cmd.subcommands : 1;
  const SimTime ctrl_done = controller_.reserve(
      static_cast<uint64_t>(spec_.controller_per_cmd) * ncmds);

  SimTime completion = ctrl_done;
  switch (cmd.op) {
    case Op::kWrite: {
      const SimTime flash_finish =
          reserve_channels(write_channels_, abs_offset, cmd.len, ctrl_done);
      if (spec_.device_ram > 0) {
        // Complete when the data is in capacitor-backed RAM: either the
        // RAM-speed path, or — once the flash backlog exceeds one RAM's
        // worth — the flash drain time minus that headroom.
        const SimTime ram_path =
            ctrl_done + spec_.command_latency +
            transfer_time(cmd.len, spec_.device_ram_bw);
        const SimDuration headroom =
            transfer_time(spec_.device_ram, spec_.write_bw);
        completion = std::max(
            ram_path, flash_finish + spec_.command_latency - headroom);
        // RAM "hit": the capacitor-backed buffer absorbed the write (the
        // RAM-speed path set the completion); "miss": flash drain
        // dominated because the backlog exceeded the RAM's headroom.
        if (completion == ram_path) {
          if (m_ram_hits_ != nullptr) m_ram_hits_->add(ncmds);
        } else {
          if (m_ram_misses_ != nullptr) m_ram_misses_->add(ncmds);
        }
      } else {
        completion = flash_finish + spec_.command_latency;
        if (m_ram_misses_ != nullptr) m_ram_misses_->add(ncmds);
      }
      if (!m_chan_backlog_.empty()) {
        const SimTime now = engine_.now();
        for (uint32_t c = 0; c < spec_.channels; ++c) {
          m_chan_backlog_[c]->set(
              now, static_cast<double>(write_channels_[c].backlog()));
        }
      }
      // Content + accounting take effect with the acknowledgement.
      if (cmd.tagged) {
        Status s = store_.write_pattern(abs_offset, cmd.len, cmd.seed);
        if (!s.ok()) co_return s;
      } else if (!cmd.write_data.empty()) {
        store_.write_bytes(abs_offset, cmd.write_data);
      }
      counters_.write_commands += ncmds;
      counters_.bytes_written += cmd.len;
      ns.bytes_written += cmd.len;
      break;
    }
    case Op::kRead: {
      const SimTime read_finish =
          reserve_channels(read_channels_, abs_offset, cmd.len, ctrl_done);
      completion = read_finish + spec_.command_latency;
      if (cmd.tagged) {
        auto tag = store_.read_combined_tag(abs_offset, cmd.len);
        if (!tag.ok()) co_return tag.status();
        if (tag_out != nullptr) *tag_out = *tag;
      } else if (!cmd.read_out.empty()) {
        Status s = store_.read_bytes(abs_offset, cmd.read_out);
        if (!s.ok()) co_return s;
      }
      counters_.read_commands += ncmds;
      counters_.bytes_read += cmd.len;
      break;
    }
    case Op::kFlush: {
      // Durable once every booked flash write has drained.
      SimTime drain = ctrl_done;
      for (auto& ch : write_channels_) {
        drain = std::max(drain, ch.busy_until());
      }
      completion = drain + spec_.command_latency;
      ++counters_.flush_commands;
      break;
    }
  }

  // Straggler window: inflate the device service time (completion still
  // arrives — this must read as "slow", never "dead", to the detector).
  if (const double factor = straggler_factor_at(engine_.now());
      factor > 1.0) {
    const SimTime now = engine_.now();
    completion = now + static_cast<SimTime>(
                           static_cast<double>(completion - now) * factor);
  }

  // In-order completion within a hardware queue.
  completion = std::max(completion, queue.last_completion);
  queue.last_completion = completion;

  if (m_cmds_ != nullptr) m_cmds_->add(ncmds);
  if (m_bytes_written_ != nullptr && cmd.op == Op::kWrite) {
    m_bytes_written_->add(cmd.len);
  }
  if (m_bytes_read_ != nullptr && cmd.op == Op::kRead) {
    m_bytes_read_->add(cmd.len);
  }
  if (obs_.trace != nullptr) {
    // The completion time is already known, so the span can be recorded
    // up front instead of via an RAII guard across the suspension.
    const char* op_name = cmd.op == Op::kWrite   ? "write"
                          : cmd.op == Op::kRead ? "read"
                                                : "flush";
    obs_.trace->add_span(trace_track_, op_name, engine_.now(), completion,
                         {{"bytes", static_cast<double>(cmd.len)},
                          {"cmds", static_cast<double>(ncmds)}});
  }
  if (obs_.epoch != nullptr) {
    // Critical-path decomposition of the device's share of the blocking
    // time: controller queueing/processing vs channel/flash service (the
    // straggler window and in-order clamp count as flash backlog).
    const SimTime submit_now = engine_.now();
    obs_.epoch->record(engine_, obs::EpochProfiler::Phase::kTargetQueue,
                       ctrl_done - submit_now);
    obs_.epoch->record(engine_, obs::EpochProfiler::Phase::kFlash,
                       completion - std::max(ctrl_done, submit_now));
  }

  // Skip the scheduler round-trip when the completion is already due
  // (zero-length flush on an idle device and similar degenerate cases).
  if (completion > engine_.now()) co_await engine_.sleep_until(completion);
  if (inject_after_ > 0) {
    --inject_after_;
  } else if (inject_errors_ > 0) {
    --inject_errors_;
    co_return IoError("injected media error on " + name_);
  }
  co_return OkStatus();
}

uint64_t NvmeSsd::namespace_bytes_written(uint32_t nsid) const {
  auto it = namespaces_.find(nsid);
  return it == namespaces_.end() ? 0 : it->second.bytes_written;
}

namespace {

/// BlockDevice view of one namespace through one hardware queue.
class SsdQueueDevice final : public BlockDevice {
 public:
  SsdQueueDevice(NvmeSsd& ssd, uint32_t nsid, uint32_t queue_id)
      : ssd_(ssd), nsid_(nsid), queue_id_(queue_id) {
    auto size = ssd.namespace_size(nsid);
    capacity_ = size.ok() ? *size : 0;
    auto base = ssd.namespace_base(nsid);
    origin_ = base.ok() ? *base : 0;
  }

  uint64_t capacity() const override { return capacity_; }
  uint32_t hw_block_size() const override { return ssd_.spec().hw_block_size; }
  uint64_t tag_origin() const override { return origin_; }

  // The Status-shaped ops forward the submit() task directly instead of
  // awaiting it from a wrapper coroutine — one frame per IO instead of
  // two (cmd is copied into the submit frame at call time, so the local
  // is safe to drop). Only the tag-returning reads still need their own
  // frame, for the tag out-parameter.
  sim::Task<Status> write(uint64_t offset,
                          std::span<const std::byte> data) override {
    NvmeSsd::Command cmd;
    cmd.op = NvmeSsd::Op::kWrite;
    cmd.nsid = nsid_;
    cmd.queue_id = queue_id_;
    cmd.offset = offset;
    cmd.len = data.size();
    cmd.write_data = data;
    return ssd_.submit(cmd);
  }

  sim::Task<Status> read(uint64_t offset, std::span<std::byte> out) override {
    NvmeSsd::Command cmd;
    cmd.op = NvmeSsd::Op::kRead;
    cmd.nsid = nsid_;
    cmd.queue_id = queue_id_;
    cmd.offset = offset;
    cmd.len = out.size();
    cmd.read_out = out;
    return ssd_.submit(cmd);
  }

  sim::Task<Status> write_tagged(uint64_t offset, uint64_t len,
                                 uint64_t seed) override {
    NvmeSsd::Command cmd;
    cmd.op = NvmeSsd::Op::kWrite;
    cmd.nsid = nsid_;
    cmd.queue_id = queue_id_;
    cmd.offset = offset;
    cmd.len = len;
    cmd.tagged = true;
    cmd.seed = seed;
    return ssd_.submit(cmd);
  }

  sim::Task<StatusOr<uint64_t>> read_tagged(uint64_t offset,
                                            uint64_t len) override {
    NvmeSsd::Command cmd;
    cmd.op = NvmeSsd::Op::kRead;
    cmd.nsid = nsid_;
    cmd.queue_id = queue_id_;
    cmd.offset = offset;
    cmd.len = len;
    cmd.tagged = true;
    uint64_t tag = 0;
    Status s = co_await ssd_.submit(cmd, &tag);
    if (!s.ok()) co_return StatusOr<uint64_t>(s);
    co_return tag;
  }

  sim::Task<Status> flush() override {
    NvmeSsd::Command cmd;
    cmd.op = NvmeSsd::Op::kFlush;
    cmd.nsid = nsid_;
    cmd.queue_id = queue_id_;
    return ssd_.submit(cmd);
  }

  sim::Task<Status> write_tagged_batch(uint64_t offset, uint64_t len,
                                       uint64_t seed,
                                       uint32_t subcmds) override {
    NvmeSsd::Command cmd;
    cmd.op = NvmeSsd::Op::kWrite;
    cmd.nsid = nsid_;
    cmd.queue_id = queue_id_;
    cmd.offset = offset;
    cmd.len = len;
    cmd.tagged = true;
    cmd.seed = seed;
    cmd.subcommands = subcmds;
    return ssd_.submit(cmd);
  }

  sim::Task<StatusOr<uint64_t>> read_tagged_batch(uint64_t offset,
                                                  uint64_t len,
                                                  uint32_t subcmds) override {
    NvmeSsd::Command cmd;
    cmd.op = NvmeSsd::Op::kRead;
    cmd.nsid = nsid_;
    cmd.queue_id = queue_id_;
    cmd.offset = offset;
    cmd.len = len;
    cmd.tagged = true;
    cmd.subcommands = subcmds;
    uint64_t tag = 0;
    Status s = co_await ssd_.submit(cmd, &tag);
    if (!s.ok()) co_return StatusOr<uint64_t>(s);
    co_return tag;
  }

 private:
  NvmeSsd& ssd_;
  uint32_t nsid_;
  uint32_t queue_id_;
  uint64_t capacity_;
  uint64_t origin_ = 0;
};

}  // namespace

std::unique_ptr<BlockDevice> NvmeSsd::open_queue(uint32_t nsid,
                                                 uint32_t queue_id) {
  return std::make_unique<SsdQueueDevice>(*this, nsid, queue_id);
}

}  // namespace nvmecr::hw
