// SSD performance/geometry specification.
//
// Defaults are calibrated to the Intel Optane P4800X used in the paper's
// testbed (§IV-A): ~2.2 GB/s sustained write, ~2.5 GB/s read, very low
// latency, 32 hardware queues. The channel count and controller command
// rate shape the small-IO regime (Figure 7(a)'s left side); the device
// RAM models the capacitor-backed write buffer (§III-D "Data
// Durability").
#pragma once

#include <cstdint>

#include "common/units.h"

namespace nvmecr::hw {

using namespace nvmecr::literals;

struct SsdSpec {
  /// Usable capacity. P4800X ships 375 GB; tests shrink this.
  uint64_t capacity = 375_GiB;

  /// Hardware block (sector) size; IO is internally split into these and
  /// spread across channels (§III-E "Hugeblocks").
  uint32_t hw_block_size = 4096;

  /// Independent internal channels/dies the controller stripes over.
  uint32_t channels = 7;

  /// Aggregate sustained bandwidths across all channels.
  uint64_t write_bw = 2200_MBps;
  uint64_t read_bw = 2500_MBps;

  /// Fixed per-command device latency (submission doorbell to first data
  /// movement) — dominates 4 KiB IO.
  SimDuration command_latency = 10_us;

  /// Controller command-processing cost; bounds IOPS at ~1/ctrl_per_cmd.
  SimDuration controller_per_cmd = 2_us;

  /// Capacitor-backed device RAM absorbing write bursts (0 = none).
  uint64_t device_ram = 256_MiB;
  uint64_t device_ram_bw = 8_GBps;

  /// Hardware submission queues (Optane P4800X: 32). One per microfs
  /// instance (Principle 3).
  uint32_t max_queues = 32;

  /// Max NVMe namespaces the controller manages (security model, §III-F).
  uint32_t max_namespaces = 128;

  /// Per-channel rates derived from the aggregates.
  uint64_t channel_write_bw() const { return write_bw / channels; }
  uint64_t channel_read_bw() const { return read_bw / channels; }
};

/// Cumulative device counters (observability + Table I / Figure 7(b)
/// accounting).
struct SsdCounters {
  uint64_t write_commands = 0;
  uint64_t read_commands = 0;
  uint64_t flush_commands = 0;
  uint64_t bytes_written = 0;
  uint64_t bytes_read = 0;
};

}  // namespace nvmecr::hw
