// Simulated NVMe SSD.
//
// Geometry/timing model:
//  * A serial controller charges `controller_per_cmd` per command
//    (bounds IOPS; the small-block regime of Figure 7(a)).
//  * Commands split into hw_block-sized pieces striped over `channels`
//    starting at the channel implied by the LBA; each channel is a FIFO
//    BandwidthResource at write_bw/channels. A command ≥ channels ×
//    hw_block uses the full device bandwidth — the hugeblock effect the
//    paper exploits (§III-E).
//  * Writes complete to the host when absorbed by the capacitor-backed
//    device RAM: completion = max(RAM-speed path, flash drain minus the
//    RAM's worth of headroom). Flush waits for full drain.
//  * Each hardware queue completes commands in submission order
//    (Principle 3: per-instance queues make ordering free).
//
// Namespaces carve the LBA space; the job scheduler hands them to jobs
// (§III-F "Security Model"). open_queue() returns a BlockDevice view of
// one namespace through one queue, which is what a microfs instance (or
// the NVMf target on behalf of a remote initiator) holds.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hw/block_device.h"
#include "hw/payload_store.h"
#include "hw/ssd_spec.h"
#include "obs/observer.h"
#include "simcore/engine.h"
#include "simcore/resource.h"

namespace nvmecr::hw {

class NvmeSsd {
 public:
  NvmeSsd(sim::Engine& engine, SsdSpec spec, std::string name = "nvme0");

  const SsdSpec& spec() const { return spec_; }
  const std::string& name() const { return name_; }
  sim::Engine& engine() { return engine_; }

  // --- Namespace management -------------------------------------------
  /// Creates a namespace of `bytes` (rounded up to hw blocks). Returns
  /// its id (>= 1, NVMe convention).
  StatusOr<uint32_t> create_namespace(uint64_t bytes);
  Status delete_namespace(uint32_t nsid);
  StatusOr<uint64_t> namespace_size(uint32_t nsid) const;
  StatusOr<uint64_t> namespace_base(uint32_t nsid) const;
  uint32_t namespace_count() const { return static_cast<uint32_t>(namespaces_.size()); }
  /// Unallocated capacity (new namespaces are carved from it).
  uint64_t free_capacity() const { return spec_.capacity - allocated_; }

  // --- Queue management -----------------------------------------------
  /// Allocates a dedicated hardware queue; kUnavailable when the
  /// controller's queue budget (spec.max_queues) is exhausted.
  StatusOr<uint32_t> alloc_queue();
  void free_queue(uint32_t queue_id);
  uint32_t queues_in_use() const { return queues_in_use_; }

  /// Opens a BlockDevice view of namespace `nsid` through `queue_id`.
  /// The view's offset 0 is the namespace start.
  std::unique_ptr<BlockDevice> open_queue(uint32_t nsid, uint32_t queue_id);

  // --- Raw command path (used by queue views and the kernel driver) ----
  enum class Op { kWrite, kRead, kFlush };

  struct Command {
    Op op = Op::kWrite;
    uint32_t nsid = 0;
    uint32_t queue_id = 0;
    uint64_t offset = 0;  // namespace-relative
    uint64_t len = 0;
    // Payload: exactly one is used for writes; reads fill read_out or
    // return a tag.
    std::span<const std::byte> write_data;
    std::span<std::byte> read_out;
    bool tagged = false;
    uint64_t seed = 0;
    /// Number of host commands this submission stands for (batched
    /// tagged IO); per-command controller cost and command counters are
    /// charged this many times.
    uint32_t subcommands = 1;
  };

  /// Submits one command and completes when the device acknowledges it.
  /// Tagged reads return the combined tag through `tag_out`.
  sim::Task<Status> submit(Command cmd, uint64_t* tag_out = nullptr);

  // --- fault injection (tests + failure-handling benches) -------------
  /// Fails `count` commands with kIoError after letting the next `after`
  /// commands through clean (both after charging normal latency — a
  /// realistic media error). `after` lets tests aim a burst at a precise
  /// point deep inside a multi-IO operation, e.g. mid-recover().
  void inject_io_errors(uint32_t count, uint32_t after = 0) {
    inject_errors_ = count;
    inject_after_ = after;
  }
  /// Marks the whole device failed: every subsequent command errors
  /// immediately (models an SSD/node loss for fault-tolerance tests).
  void fail_device() { device_failed_ = true; }
  bool device_failed() const { return device_failed_; }
  /// Schedules a hard crash at sim-time `at`: commands submitted while
  /// crashed get no completion — the initiator burns the IO timeout and
  /// sees kTimedOut (distinct from fail_device()'s immediate kIoError,
  /// which models a device that still answers with an error status).
  /// recover_at == 0 means the device never comes back; a nonzero value
  /// revives it (power-cycled node) so healing can re-replicate onto it.
  /// Stored content survives the crash (capacitor-backed RAM + flash).
  /// Repeated calls accumulate independent crash windows (failure
  /// schedules arm many transient outages on one device).
  void schedule_crash(SimTime at, SimTime recover_at = 0) {
    crash_windows_.push_back({at, recover_at});
  }
  /// True when the device is crashed (unresponsive) at time `t`. Health
  /// probes use this as the management-plane liveness check.
  bool crashed_at(SimTime t) const {
    for (const auto& w : crash_windows_) {
      if (t >= w.at && (w.recover_at == 0 || t < w.recover_at)) return true;
    }
    return false;
  }
  /// Inflates device service time by `factor` for commands submitted in
  /// [from, until): a straggler (GC pause, thermal throttle), NOT a
  /// failure — completions still arrive and must not trip the detector.
  /// Windows accumulate; overlapping windows take the largest factor.
  void set_straggler(double factor, SimTime from, SimTime until) {
    straggler_windows_.push_back({factor, from, until});
  }
  /// Service-time inflation in effect at time `t` (1.0 = none).
  double straggler_factor_at(SimTime t) const {
    double f = 1.0;
    for (const auto& w : straggler_windows_) {
      if (w.factor > f && t >= w.from && t < w.until) f = w.factor;
    }
    return f;
  }
  /// Time a crashed device makes the initiator wait before the timeout
  /// error is reported (models the host-side IO timeout).
  SimDuration io_timeout() const { return io_timeout_; }
  void set_io_timeout(SimDuration t) { io_timeout_ = t; }
  /// Corrupts `len` stored bytes at `nsid`-relative `offset` (silent
  /// media corruption; CRC-guarded structures must detect it on read).
  Status corrupt_media(uint32_t nsid, uint64_t offset, uint64_t len);

  /// Installs trace/metrics sinks. Registers this device's counters and
  /// per-channel backlog gauges under "ssd.<name>." and emits command
  /// spans on track "ssd/<name>". Pass {} to detach.
  void set_observer(const obs::Observer& o);

  const SsdCounters& counters() const { return counters_; }
  /// Bytes ever written into a namespace (load accounting, Fig. 7(b)).
  uint64_t namespace_bytes_written(uint32_t nsid) const;
  const PayloadStore& payload() const { return store_; }

 private:
  struct Namespace {
    uint64_t base = 0;
    uint64_t size = 0;
    uint64_t bytes_written = 0;
  };

  struct Queue {
    bool in_use = false;
    SimTime last_completion = 0;  // in-order completion chaining
  };

  /// Books the striped transfer on the channel FIFOs; returns the finish
  /// time of the slowest involved channel.
  SimTime reserve_channels(std::vector<sim::BandwidthResource>& channels,
                           uint64_t abs_offset, uint64_t len,
                           SimTime earliest);

  sim::Engine& engine_;
  SsdSpec spec_;
  std::string name_;

  sim::BandwidthResource controller_;
  std::vector<sim::BandwidthResource> write_channels_;
  std::vector<sim::BandwidthResource> read_channels_;
  std::vector<Queue> queues_;
  uint32_t queues_in_use_ = 0;

  std::map<uint32_t, Namespace> namespaces_;
  uint32_t next_nsid_ = 1;
  uint64_t allocated_ = 0;

  PayloadStore store_;
  SsdCounters counters_;
  uint32_t inject_errors_ = 0;
  uint32_t inject_after_ = 0;
  bool device_failed_ = false;
  struct CrashWindow {
    SimTime at = 0;
    SimTime recover_at = 0;  // 0 = crashed forever
  };
  std::vector<CrashWindow> crash_windows_;
  struct StragglerWindow {
    double factor = 1.0;
    SimTime from = 0;
    SimTime until = 0;
  };
  std::vector<StragglerWindow> straggler_windows_;
  SimDuration io_timeout_ = 500'000;  // 500 us

  // Observability (all null/empty when detached; see obs/observer.h).
  obs::Observer obs_;
  std::string trace_track_;
  obs::Counter* m_cmds_ = nullptr;
  obs::Counter* m_bytes_written_ = nullptr;
  obs::Counter* m_bytes_read_ = nullptr;
  obs::Counter* m_ram_hits_ = nullptr;
  obs::Counter* m_ram_misses_ = nullptr;
  std::vector<obs::Gauge*> m_chan_backlog_;
  uint16_t profile_tag_ = 0;  // dispatch cost center (0 = unprofiled)
};

}  // namespace nvmecr::hw
