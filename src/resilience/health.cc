#include "resilience/health.h"

#include <algorithm>
#include <string>

#include "simcore/trace.h"

namespace nvmecr::resilience {

const char* target_state_name(TargetState s) {
  switch (s) {
    case TargetState::kHealthy:
      return "healthy";
    case TargetState::kSuspect:
      return "suspect";
    case TargetState::kDead:
      return "dead";
    case TargetState::kHealing:
      return "healing";
  }
  return "?";
}

void HealthMonitor::track(fabric::NodeId node) {
  targets_.emplace(node, Target{});
}

void HealthMonitor::transition(fabric::NodeId node, Target& t,
                               TargetState next) {
  if (t.state == next) return;
  if (next == TargetState::kDead) {
    t.dead_since = engine_.now();
    if (m_deaths_ != nullptr) m_deaths_->add();
  }
  if (t.state == TargetState::kSuspect && next == TargetState::kHealthy &&
      m_false_alarms_ != nullptr) {
    m_false_alarms_->add();
  }
  t.state = next;
  ++transitions_;
  if (obs_.trace != nullptr) {
    obs_.trace->add_instant(
        "resilience/health",
        "node" + std::to_string(node) + ":" + target_state_name(next),
        engine_.now());
  }
}

void HealthMonitor::note_ok(fabric::NodeId node) {
  auto it = targets_.find(node);
  if (it == targets_.end()) return;
  Target& t = it->second;
  t.misses = 0;
  switch (t.state) {
    case TargetState::kHealthy:
      break;
    case TargetState::kSuspect:
      transition(node, t, TargetState::kHealthy);
      break;
    case TargetState::kDead:
      // Back from the dead: route-able again only once healing finishes.
      transition(node, t, TargetState::kHealing);
      break;
    case TargetState::kHealing:
      break;
  }
}

void HealthMonitor::note_miss(fabric::NodeId node) {
  auto it = targets_.find(node);
  if (it == targets_.end()) return;
  Target& t = it->second;
  if (t.state == TargetState::kDead) return;
  if (t.state == TargetState::kHealing) {
    // Relapsed during healing: straight back to dead, no fresh hysteresis
    // — we already know this target is flaky.
    transition(node, t, TargetState::kDead);
    return;
  }
  ++t.misses;
  if (t.misses >= params_.dead_after_misses) {
    transition(node, t, TargetState::kDead);
  } else if (t.state == TargetState::kHealthy) {
    transition(node, t, TargetState::kSuspect);
  }
}

void HealthMonitor::note_exhausted(fabric::NodeId node) {
  auto it = targets_.find(node);
  if (it == targets_.end()) return;
  Target& t = it->second;
  if (t.state == TargetState::kDead) return;
  t.misses = params_.dead_after_misses;
  transition(node, t, TargetState::kDead);
}

void HealthMonitor::note_healed(fabric::NodeId node) {
  auto it = targets_.find(node);
  if (it == targets_.end()) return;
  Target& t = it->second;
  if (t.state != TargetState::kHealing) return;
  t.misses = 0;
  transition(node, t, TargetState::kHealthy);
}

TargetState HealthMonitor::state(fabric::NodeId node) const {
  auto it = targets_.find(node);
  return it == targets_.end() ? TargetState::kHealthy : it->second.state;
}

SimTime HealthMonitor::dead_since(fabric::NodeId node) const {
  auto it = targets_.find(node);
  return it == targets_.end() ? 0 : it->second.dead_since;
}

std::vector<fabric::RackId> HealthMonitor::dead_domains() const {
  std::vector<fabric::RackId> out;
  for (const auto& [node, t] : targets_) {
    if (t.state != TargetState::kDead) continue;
    const fabric::RackId d = topology_.failure_domain(node);
    if (std::find(out.begin(), out.end(), d) == out.end()) out.push_back(d);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<fabric::NodeId> HealthMonitor::nodes_in_state(
    TargetState s) const {
  std::vector<fabric::NodeId> out;
  for (const auto& [node, t] : targets_) {
    if (t.state == s) out.push_back(node);
  }
  return out;
}

void HealthMonitor::set_observer(const obs::Observer& o) {
  obs_ = o;
  if (obs_.metrics != nullptr) {
    m_deaths_ = obs_.metrics->counter("resilience.deaths");
    m_false_alarms_ = obs_.metrics->counter("resilience.false_alarms");
  } else {
    m_deaths_ = nullptr;
    m_false_alarms_ = nullptr;
  }
}

sim::Task<void> HealthMonitor::heartbeat(
    std::function<bool(fabric::NodeId, SimTime)> alive_probe, SimTime until) {
  while (engine_.now() + params_.heartbeat_period <= until) {
    co_await engine_.delay(params_.heartbeat_period);
    // std::map iteration: probes fire in node order, deterministically.
    for (auto& [node, t] : targets_) {
      (void)t;
      if (alive_probe(node, engine_.now())) {
        note_ok(node);
      } else {
        note_miss(node);
      }
    }
  }
}

}  // namespace nvmecr::resilience
