// Failure detection for the NVMe-oF data path (DESIGN.md §13).
//
// One HealthMonitor per job tracks the liveness of every storage target
// the job writes to, fed from two sides:
//
//   * data plane — the retrying device wrapper (retry.h) reports each IO
//     outcome: a completed IO (however slow) is proof of life, a
//     transport timeout is one miss;
//   * management plane — a lightweight sim-time heartbeat probes every
//     tracked target each period and reports the same way.
//
// Hysteresis: a target is only declared dead after `dead_after_misses`
// CONSECUTIVE misses (or an explicit retry-budget exhaustion from the
// data plane). A single slow IO — a straggler SSD at 10x latency still
// completes — therefore never trips the detector; the false-positive
// tests pin this behavior.
//
// State machine (ISSUE 5 / DESIGN.md §13):
//
//   healthy --miss--> suspect --misses >= dead_after--> dead
//      ^                 |ok                              |probe ok
//      |                 v                                v
//      +-------------- healthy <----heal complete---- healing
//
// A probe success on a dead target moves it to `healing` (the node is
// back, but data written elsewhere during the outage is still degraded);
// the healer (failover.cc) re-replicates that data and then reports
// note_healed(), closing the loop. Everything is deterministic: state
// lives in a std::map (sorted iteration) and transitions depend only on
// the DES event order.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/units.h"
#include "fabric/topology.h"
#include "obs/observer.h"
#include "simcore/engine.h"

namespace nvmecr::resilience {

enum class TargetState { kHealthy, kSuspect, kDead, kHealing };

const char* target_state_name(TargetState s);

struct HealthParams {
  /// Consecutive misses (IO timeouts or heartbeat probe failures) before
  /// a suspect target is declared dead. 1 would defeat the hysteresis.
  uint32_t dead_after_misses = 3;
  /// Heartbeat probe period (sim time).
  SimDuration heartbeat_period = 250'000;  // 250 us
};

class HealthMonitor {
 public:
  HealthMonitor(sim::Engine& engine, const fabric::Topology& topology,
                HealthParams params = {})
      : engine_(engine), topology_(topology), params_(params) {}

  const HealthParams& params() const { return params_; }

  /// Registers a storage node for tracking (idempotent).
  void track(fabric::NodeId node);
  bool tracked(fabric::NodeId node) const {
    return targets_.find(node) != targets_.end();
  }

  /// Data/management plane reports. note_ok on a dead target means the
  /// node answered a probe again: it moves to kHealing, not kHealthy —
  /// data lost to the outage is still degraded until the healer is done.
  void note_ok(fabric::NodeId node);
  void note_miss(fabric::NodeId node);
  /// Data plane escalation: the retry budget for one IO was exhausted on
  /// retryable errors — the target is dead regardless of the miss count.
  void note_exhausted(fabric::NodeId node);
  /// Healer report: all degraded data for `node` is re-replicated.
  void note_healed(fabric::NodeId node);

  TargetState state(fabric::NodeId node) const;
  bool dead(fabric::NodeId node) const {
    return state(node) == TargetState::kDead;
  }
  /// Sim time the target was declared dead (0 = never died).
  SimTime dead_since(fabric::NodeId node) const;

  /// Failure domains containing at least one currently-dead target,
  /// sorted ascending — the exclude_domains input for failover placement.
  std::vector<fabric::RackId> dead_domains() const;

  /// Tracked nodes currently in `s`, sorted ascending (the healer scans
  /// this for kHealing targets).
  std::vector<fabric::NodeId> nodes_in_state(TargetState s) const;

  /// Total state transitions (a cheap determinism fingerprint).
  uint64_t transitions() const { return transitions_; }

  /// Caches metric instruments ("resilience.*"). Pass {} to detach.
  void set_observer(const obs::Observer& o);

  /// Bounded heartbeat daemon: every heartbeat_period until sim-time
  /// `until`, probes each tracked target with `alive_probe(node, now)`
  /// and feeds the result in as note_ok / note_miss. Bounded so that the
  /// engine still reaches quiescence (Engine::run() runs until no events
  /// remain — a free-running periodic task would never let it return).
  sim::Task<void> heartbeat(
      std::function<bool(fabric::NodeId, SimTime)> alive_probe,
      SimTime until);

 private:
  struct Target {
    TargetState state = TargetState::kHealthy;
    uint32_t misses = 0;
    SimTime dead_since = 0;
  };

  void transition(fabric::NodeId node, Target& t, TargetState next);

  sim::Engine& engine_;
  const fabric::Topology& topology_;
  HealthParams params_;
  std::map<fabric::NodeId, Target> targets_;  // sorted: deterministic scans
  uint64_t transitions_ = 0;

  obs::Counter* m_deaths_ = nullptr;
  obs::Counter* m_false_alarms_ = nullptr;  // suspect -> healthy recoveries
  obs::Observer obs_;
};

}  // namespace nvmecr::resilience
