#include "resilience/retry.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace nvmecr::resilience {

RetryDevice::RetryDevice(sim::Engine& engine,
                         std::unique_ptr<hw::BlockDevice> inner,
                         HealthMonitor& monitor, fabric::NodeId storage_node,
                         RetryPolicy policy, uint64_t jitter_seed)
    : engine_(engine),
      inner_(std::move(inner)),
      monitor_(monitor),
      node_(storage_node),
      policy_(policy),
      rng_(jitter_seed) {
  monitor_.track(node_);
}

void RetryDevice::set_observer(const obs::Observer& o) {
  m_retries_ =
      o.metrics != nullptr ? o.metrics->counter("resilience.retries") : nullptr;
}

SimDuration RetryDevice::backoff_for(uint32_t attempt) {
  double b = static_cast<double>(policy_.base_backoff);
  for (uint32_t i = 1; i < attempt; ++i) b *= policy_.multiplier;
  b = std::min(b, static_cast<double>(policy_.max_backoff));
  b *= rng_.jitter(policy_.jitter);
  return static_cast<SimDuration>(b);
}

sim::Task<Status> RetryDevice::with_retries(
    std::function<sim::Task<Status>()> op) {
  const SimTime deadline = engine_.now() + policy_.op_deadline;
  for (uint32_t attempt = 1;; ++attempt) {
    if (monitor_.dead(node_)) {
      // Already declared dead (by us on an earlier op, the heartbeat, or
      // a sibling rank): don't burn the IO timeout again — fail fast so
      // the failover layer pivots immediately.
      co_return UnreachableError("target node " + std::to_string(node_) +
                                 " is dead (failing fast)");
    }
    Status s = co_await op();
    if (s.ok()) {
      monitor_.note_ok(node_);
      co_return s;
    }
    if (!is_retryable(s.code())) co_return s;  // fatal: surface immediately
    monitor_.note_miss(node_);
    const bool attempts_left = attempt < policy_.max_attempts;
    const SimDuration backoff = backoff_for(attempt);
    const bool deadline_left = engine_.now() + backoff < deadline;
    if (!attempts_left || !deadline_left || monitor_.dead(node_)) {
      monitor_.note_exhausted(node_);
      co_return s;
    }
    ++retries_;
    if (m_retries_ != nullptr) m_retries_->add();
    co_await engine_.delay(backoff);
  }
}

sim::Task<Status> RetryDevice::write(uint64_t offset,
                                     std::span<const std::byte> data) {
  co_return co_await with_retries(
      [this, offset, data]() { return inner_->write(offset, data); });
}

sim::Task<Status> RetryDevice::read(uint64_t offset, std::span<std::byte> out) {
  co_return co_await with_retries(
      [this, offset, out]() { return inner_->read(offset, out); });
}

sim::Task<Status> RetryDevice::write_tagged(uint64_t offset, uint64_t len,
                                            uint64_t seed) {
  co_return co_await with_retries([this, offset, len, seed]() {
    return inner_->write_tagged(offset, len, seed);
  });
}

sim::Task<Status> RetryDevice::read_tagged_into(uint64_t offset, uint64_t len,
                                                uint64_t* out) {
  StatusOr<uint64_t> r = co_await inner_->read_tagged(offset, len);
  if (r.ok()) *out = r.value();
  co_return r.status();
}

sim::Task<Status> RetryDevice::read_tagged_batch_into(uint64_t offset,
                                                      uint64_t len,
                                                      uint32_t subcmds,
                                                      uint64_t* out) {
  StatusOr<uint64_t> r = co_await inner_->read_tagged_batch(offset, len, subcmds);
  if (r.ok()) *out = r.value();
  co_return r.status();
}

sim::Task<StatusOr<uint64_t>> RetryDevice::read_tagged(uint64_t offset,
                                                       uint64_t len) {
  uint64_t tag = 0;
  Status s = co_await with_retries([this, offset, len, &tag]() {
    return read_tagged_into(offset, len, &tag);
  });
  if (!s.ok()) co_return StatusOr<uint64_t>(s);
  co_return tag;
}

sim::Task<Status> RetryDevice::flush() {
  co_return co_await with_retries([this]() { return inner_->flush(); });
}

sim::Task<Status> RetryDevice::write_tagged_batch(uint64_t offset, uint64_t len,
                                                  uint64_t seed,
                                                  uint32_t subcmds) {
  co_return co_await with_retries([this, offset, len, seed, subcmds]() {
    return inner_->write_tagged_batch(offset, len, seed, subcmds);
  });
}

sim::Task<StatusOr<uint64_t>> RetryDevice::read_tagged_batch(uint64_t offset,
                                                             uint64_t len,
                                                             uint32_t subcmds) {
  uint64_t tag = 0;
  Status s = co_await with_retries([this, offset, len, subcmds, &tag]() {
    return read_tagged_batch_into(offset, len, subcmds, &tag);
  });
  if (!s.ok()) co_return StatusOr<uint64_t>(s);
  co_return tag;
}

std::function<std::unique_ptr<hw::BlockDevice>(
    std::unique_ptr<hw::BlockDevice>, fabric::NodeId, uint32_t)>
make_retry_wrapper(sim::Engine& engine, HealthMonitor& monitor,
                   RetryPolicy policy, uint64_t seed, obs::Observer observer) {
  return [&engine, &monitor, policy, seed, observer](
             std::unique_ptr<hw::BlockDevice> dev, fabric::NodeId node,
             uint32_t rank) -> std::unique_ptr<hw::BlockDevice> {
    // Per-device stream keyed by (seed, node, rank): jitter draws of one
    // device never shift another's regardless of connect order.
    const uint64_t dev_seed =
        mix64(seed ^ mix64((static_cast<uint64_t>(node) << 32) | rank));
    auto wrapped = std::make_unique<RetryDevice>(
        engine, std::move(dev), monitor, node, policy, dev_seed);
    wrapped->set_observer(observer);
    return wrapped;
  };
}

}  // namespace nvmecr::resilience
