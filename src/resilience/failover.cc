#include "resilience/failover.h"

#include <cstdio>
#include <utility>

#include "simcore/trace.h"

namespace nvmecr::resilience {

// ---------------------------------------------------------------------
// ResilientSystem
// ---------------------------------------------------------------------

ResilientSystem::ResilientSystem(nvmecr_rt::Cluster& cluster,
                                 nvmecr_rt::Scheduler& scheduler,
                                 baselines::StorageSystem& inner,
                                 HealthMonitor& monitor,
                                 const nvmecr_rt::JobAllocation& primary_job,
                                 nvmecr_rt::RuntimeConfig spare_config,
                                 ResilienceOptions options)
    : cluster_(cluster),
      scheduler_(scheduler),
      inner_(inner),
      monitor_(monitor),
      primary_job_(primary_job),
      spare_config_(std::move(spare_config)),
      options_(options) {
  // Track every primary target up front so the heartbeat covers targets
  // a rank has not touched yet.
  for (fabric::NodeId n : primary_job_.assignment.ssd_nodes) {
    monitor_.track(n);
  }
}

ResilientSystem::~ResilientSystem() = default;

void ResilientSystem::set_observer(const obs::Observer& o) {
  obs_ = o;
  if (obs_.metrics != nullptr) {
    m_failovers_ = obs_.metrics->counter("resilience.failovers");
    m_heal_bytes_ = obs_.metrics->counter("resilience.heal_bytes");
    m_degraded_ckpts_ = obs_.metrics->counter("resilience.degraded_ckpts");
  } else {
    m_failovers_ = nullptr;
    m_heal_bytes_ = nullptr;
    m_degraded_ckpts_ = nullptr;
  }
}

fabric::NodeId ResilientSystem::primary_node_of(uint32_t rank) const {
  const auto& a = primary_job_.assignment;
  return a.ssd_nodes[a.ssd_of_rank[rank]];
}

ResilientSystem::RankState& ResilientSystem::rank_state(uint32_t rank) {
  auto it = ranks_.find(rank);
  if (it == ranks_.end()) {
    it = ranks_
             .emplace(rank,
                      std::make_unique<RankState>(cluster_.engine()))
             .first;
  }
  return *it->second;
}

sim::Task<StatusOr<std::unique_ptr<baselines::StorageClient>>>
ResilientSystem::connect(int rank) {
  auto inner = co_await inner_.connect(rank);
  std::unique_ptr<baselines::StorageClient> inner_client;
  if (inner.ok()) {
    inner_client = std::move(*inner);
  } else if (is_retryable(inner.status().code())) {
    // The rank's primary target is already unreachable at connect time.
    // Hand out a client with no inner session: every write goes straight
    // to a partner-domain spare (degraded from the first byte) instead
    // of failing the job before it starts.
    monitor_.note_exhausted(primary_node_of(static_cast<uint32_t>(rank)));
  } else {
    co_return inner;
  }
  std::unique_ptr<baselines::StorageClient> client =
      std::make_unique<ResilientClient>(*this, static_cast<uint32_t>(rank),
                                        std::move(inner_client));
  co_return client;
}

ResilientClient* ResilientSystem::client_of(uint32_t rank) {
  auto it = ranks_.find(rank);
  return it == ranks_.end() ? nullptr : it->second->client;
}

const DegradedEntry* ResilientSystem::degraded_entry(
    uint32_t rank, const std::string& path) const {
  auto it = ranks_.find(rank);
  if (it == ranks_.end()) return nullptr;
  auto jt = it->second->degraded.find(path);
  return jt == it->second->degraded.end() ? nullptr : &jt->second;
}

std::vector<uint32_t> ResilientSystem::degraded_ranks() const {
  std::vector<uint32_t> out;
  for (const auto& [rank, rs] : ranks_) {
    for (const auto& [path, e] : rs->degraded) {
      (void)path;
      if (e.state == DegradedState::kDegraded) {
        out.push_back(rank);
        break;
      }
    }
  }
  return out;
}

sim::Task<Status> ResilientSystem::ensure_spare(uint32_t rank) {
  RankState& rs = rank_state(rank);
  if (rs.spare_allocated) co_return OkStatus();

  nvmecr_rt::BalancerRequest req;
  req.rank_nodes = {primary_job_.rank_nodes[rank]};
  req.storage_nodes = cluster_.storage_nodes();
  req.num_ssds = 1;
  req.min_procs_per_ssd = 1;
  req.exclude_domains = monitor_.dead_domains();
  auto assign = nvmecr_rt::StorageBalancer::assign(
      cluster_.topology(), req, options_.allow_same_domain_spare);
  // Typed exhaustion (kUnavailable) when every partner domain is dead:
  // the caller surfaces it; no retry loop can help here.
  if (!assign.ok()) co_return assign.status();

  auto job = scheduler_.allocate_with_assignment(
      std::move(*assign), req.rank_nodes, 1, primary_job_.partition_bytes);
  if (!job.ok()) co_return job.status();
  rs.spare_job = std::move(*job);

  rs.spare_system = std::make_unique<nvmecr_rt::NvmecrSystem>(
      cluster_, rs.spare_job, spare_config_);
  auto client = co_await rs.spare_system->connect(0);
  if (!client.ok()) co_return client.status();
  rs.spare_client = std::move(*client);
  rs.spare_allocated = true;
  co_return OkStatus();
}

sim::Task<Status> ResilientSystem::heal_file(uint32_t rank, std::string path) {
  RankState& rs = rank_state(rank);
  auto it = rs.degraded.find(path);
  if (it == rs.degraded.end()) co_return OkStatus();
  baselines::StorageClient* inner_ptr =
      rs.client != nullptr ? rs.client->inner_.get() : rs.retained_inner.get();
  if (inner_ptr == nullptr) {
    co_return UnavailableError("rank has no live session to heal with");
  }
  // Rewrite through the rank's inner chain: the redundancy engine
  // re-replicates behind these writes, restoring full redundancy on the
  // recovered primary. (A fresh connect would reformat the partition, so
  // healing reuses the live — or retained — session.)
  baselines::StorageClient& inner = *inner_ptr;
  sim::TraceSpan span(obs_.trace, "resilience", "heal:" + path,
                      cluster_.engine());
  auto fd = co_await inner.create(path);
  if (!fd.ok()) co_return fd.status();
  for (uint64_t len : it->second.writes) {
    Status s = co_await inner.write(*fd, len);
    if (!s.ok()) co_return s;
  }
  NVMECR_CO_RETURN_IF_ERROR(co_await inner.fsync(*fd));
  NVMECR_CO_RETURN_IF_ERROR(co_await inner.close(*fd));
  co_return OkStatus();
}

sim::Task<void> ResilientSystem::heal_node(fabric::NodeId node) {
  // Heal every complete degraded file whose primary target is `node`.
  // Snapshot paths first: fd-table / manifest mutation can happen while
  // we are suspended inside heal_file.
  for (auto& [rank, rs] : ranks_) {
    if (primary_node_of(rank) != node) continue;
    std::vector<std::string> paths;
    for (const auto& [path, e] : rs->degraded) {
      if (e.state == DegradedState::kDegraded && e.complete) {
        paths.push_back(path);
      }
    }
    for (const std::string& path : paths) {
      co_await rs->io_mutex.lock();
      auto it = rs->degraded.find(path);
      if (it != rs->degraded.end() &&
          it->second.state == DegradedState::kDegraded &&
          it->second.complete) {
        Status s = co_await heal_file(rank, path);
        if (s.ok()) {
          it->second.state = DegradedState::kHealed;
          healed_bytes_ += it->second.bytes;
          if (m_heal_bytes_ != nullptr) m_heal_bytes_->add(it->second.bytes);
        }
      }
      rs->io_mutex.unlock();
    }
  }
}

sim::Task<void> ResilientSystem::healer(SimTime until, SimDuration period) {
  while (cluster_.engine().now() + period <= until) {
    co_await cluster_.engine().delay(period);
    // Heal files whose primary answers again (kHealing), and also any
    // stragglers that closed degraded after their node already recovered.
    for (fabric::NodeId node : monitor_.nodes_in_state(TargetState::kHealing)) {
      co_await heal_node(node);
    }
    for (fabric::NodeId node : monitor_.nodes_in_state(TargetState::kHealthy)) {
      co_await heal_node(node);
    }
    // A healing node with no complete degraded files left is done.
    for (fabric::NodeId node : monitor_.nodes_in_state(TargetState::kHealing)) {
      bool remaining = false;
      for (const auto& [rank, rs] : ranks_) {
        if (primary_node_of(rank) != node) continue;
        for (const auto& [path, e] : rs->degraded) {
          (void)path;
          if (e.state == DegradedState::kDegraded && e.complete) {
            remaining = true;
            break;
          }
        }
        if (remaining) break;
      }
      if (!remaining) monitor_.note_healed(node);
    }
  }
}

sim::Task<StatusOr<std::vector<std::string>>> ResilientSystem::fsck_spares() {
  std::vector<std::string> issues;
  for (auto& [rank, rs] : ranks_) {
    if (rs->spare_system == nullptr) continue;
    auto spare = co_await rs->spare_system->fsck_all();
    if (!spare.ok()) {
      co_return StatusOr<std::vector<std::string>>(spare.status());
    }
    for (const std::string& issue : *spare) {
      issues.push_back("spare of rank " + std::to_string(rank) + ": " + issue);
    }
  }
  co_return issues;
}

// ---------------------------------------------------------------------
// ResilientClient
// ---------------------------------------------------------------------

ResilientClient::ResilientClient(
    ResilientSystem& sys, uint32_t rank,
    std::unique_ptr<baselines::StorageClient> inner)
    : sys_(sys),
      rank_(rank),
      primary_node_(sys.primary_node_of(rank)),
      inner_(std::move(inner)) {
  ResilientSystem::RankState& rs = sys_.rank_state(rank_);
  rs.client = this;
  rs.retained_inner.reset();  // a reconnect supersedes the old session
}

ResilientClient::~ResilientClient() {
  ResilientSystem::RankState& rs = sys_.rank_state(rank_);
  rs.client = nullptr;
  // Keep the inner session alive for the healer: its mounted fs (and the
  // redundancy engine's replica streams behind it) are the only way to
  // rewrite degraded files without reformatting the partition.
  rs.retained_inner = std::move(inner_);
}

bool ResilientClient::should_failover(const Status& s) const {
  return !s.ok() && is_retryable(s.code());
}

sim::Task<Status> ResilientClient::failover_file(OpenFile& f) {
  // A surfaced retryable error means the retry budget is spent; make
  // sure the monitor agrees before asking the balancer for dead domains.
  sys_.monitor_.note_exhausted(primary_node_);
  if (sys_.obs_.trace != nullptr) {
    // Pivot marker: lines the failover up against health instants and
    // device spans in the exported trace.
    sys_.obs_.trace->add_instant("resilience",
                                 "failover_start:rank" + std::to_string(rank_),
                                 sys_.cluster_.engine().now());
    if (sys_.obs_.trace->is_ring()) {
      // Flight-recorder mode: the events leading up to the pivot are
      // exactly what a postmortem needs — dump them while they are hot.
      std::fprintf(stderr,
                   "resilience: rank %u failing over %s; "
                   "flight recorder tail:\n",
                   rank_, f.path.c_str());
      sys_.obs_.trace->dump_tail(stderr, 16);
    }
  }
  sim::TraceSpan span(sys_.obs_.trace, "resilience", "failover:" + f.path,
                      sys_.cluster_.engine());
  NVMECR_CO_RETURN_IF_ERROR(co_await sys_.ensure_spare(rank_));
  ResilientSystem::RankState& rs = sys_.rank_state(rank_);
  auto fd = co_await rs.spare_client->create(f.path);
  if (!fd.ok()) co_return fd.status();
  f.spare_fd = *fd;
  f.on_spare = true;
  // Replay the journaled appends: content is deterministic in
  // (rank, path), so this regenerates the byte-identical stream.
  for (uint64_t len : f.journal) {
    Status s = co_await rs.spare_client->write(f.spare_fd, len);
    if (!s.ok()) co_return s;
  }
  DegradedEntry& e = rs.degraded[f.path];
  e.state = DegradedState::kDegraded;
  e.bytes = f.bytes;
  e.writes = f.journal;
  e.complete = false;
  ++sys_.failovers_;
  if (sys_.m_failovers_ != nullptr) sys_.m_failovers_->add();
  // The inner fd (if any) stays open on the dead target: closing it
  // would just burn another IO timeout. The leak is recorded nowhere the
  // driver can trip over, and healing rewrites the file from scratch.
  co_return OkStatus();
}

sim::Task<StatusOr<int>> ResilientClient::create(const std::string& path) {
  ResilientSystem::RankState& rs = sys_.rank_state(rank_);
  co_await rs.io_mutex.lock();
  OpenFile f;
  f.path = path;
  f.writing = true;
  if (inner_ != nullptr && !sys_.monitor_.dead(primary_node_)) {
    auto fd = co_await inner_->create(path);
    if (fd.ok()) {
      f.inner_fd = *fd;
    } else if (!should_failover(fd.status())) {
      rs.io_mutex.unlock();
      co_return fd;
    }
  }
  if (f.inner_fd < 0) {
    // Primary already known dead, or the create itself timed out: the
    // stream starts life on the spare (degraded from the first byte).
    Status s = co_await failover_file(f);
    if (!s.ok()) {
      rs.io_mutex.unlock();
      co_return StatusOr<int>(s);
    }
  }
  const int fd = next_fd_++;
  open_[fd] = std::move(f);
  rs.io_mutex.unlock();
  co_return fd;
}

sim::Task<StatusOr<int>> ResilientClient::open_read(const std::string& path) {
  ResilientSystem::RankState& rs = sys_.rank_state(rank_);
  co_await rs.io_mutex.lock();
  OpenFile f;
  f.path = path;
  auto it = rs.degraded.find(path);
  StatusOr<int> r = InvalidArgumentError("unopened");
  if (it != rs.degraded.end() &&
      it->second.state == DegradedState::kDegraded) {
    // Degraded checkpoints live on the spare only.
    r = co_await rs.spare_client->open_read(path);
    if (r.ok()) {
      f.spare_fd = *r;
      f.on_spare = true;
    }
  } else if (inner_ != nullptr) {
    r = co_await inner_->open_read(path);
    if (r.ok()) f.inner_fd = *r;
  } else {
    r = UnavailableError("no inner session (primary dead since connect)");
  }
  if (!r.ok()) {
    rs.io_mutex.unlock();
    co_return r;
  }
  const int fd = next_fd_++;
  open_[fd] = std::move(f);
  rs.io_mutex.unlock();
  co_return fd;
}

sim::Task<Status> ResilientClient::write(int fd, uint64_t len) {
  ResilientSystem::RankState& rs = sys_.rank_state(rank_);
  co_await rs.io_mutex.lock();
  auto it = open_.find(fd);
  if (it == open_.end()) {
    rs.io_mutex.unlock();
    co_return InvalidArgumentError("bad fd");
  }
  OpenFile& f = it->second;
  Status s;
  if (!f.on_spare) {
    s = co_await inner_->write(f.inner_fd, len);
    if (should_failover(s)) {
      s = co_await failover_file(f);
      if (s.ok()) s = co_await rs.spare_client->write(f.spare_fd, len);
    }
  } else {
    s = co_await rs.spare_client->write(f.spare_fd, len);
  }
  if (s.ok() && f.writing) {
    f.bytes += len;
    f.journal.push_back(len);
  }
  rs.io_mutex.unlock();
  co_return s;
}

sim::Task<Status> ResilientClient::read(int fd, uint64_t len) {
  ResilientSystem::RankState& rs = sys_.rank_state(rank_);
  co_await rs.io_mutex.lock();
  auto it = open_.find(fd);
  if (it == open_.end()) {
    rs.io_mutex.unlock();
    co_return InvalidArgumentError("bad fd");
  }
  OpenFile& f = it->second;
  Status s;
  if (f.on_spare) {
    s = co_await rs.spare_client->read(f.spare_fd, len);
  } else {
    s = co_await inner_->read(f.inner_fd, len);
  }
  rs.io_mutex.unlock();
  co_return s;
}

sim::Task<Status> ResilientClient::fsync(int fd) {
  ResilientSystem::RankState& rs = sys_.rank_state(rank_);
  co_await rs.io_mutex.lock();
  auto it = open_.find(fd);
  if (it == open_.end()) {
    rs.io_mutex.unlock();
    co_return InvalidArgumentError("bad fd");
  }
  OpenFile& f = it->second;
  Status s;
  if (!f.on_spare) {
    s = co_await inner_->fsync(f.inner_fd);
    if (should_failover(s)) {
      s = co_await failover_file(f);
      if (s.ok()) s = co_await rs.spare_client->fsync(f.spare_fd);
    }
  } else {
    s = co_await rs.spare_client->fsync(f.spare_fd);
  }
  rs.io_mutex.unlock();
  co_return s;
}

sim::Task<Status> ResilientClient::close(int fd) {
  ResilientSystem::RankState& rs = sys_.rank_state(rank_);
  co_await rs.io_mutex.lock();
  auto it = open_.find(fd);
  if (it == open_.end()) {
    rs.io_mutex.unlock();
    co_return InvalidArgumentError("bad fd");
  }
  OpenFile f = std::move(it->second);
  open_.erase(it);
  Status s;
  if (!f.on_spare) {
    s = co_await inner_->close(f.inner_fd);
    if (should_failover(s)) {
      s = co_await failover_file(f);
      if (s.ok()) s = co_await rs.spare_client->fsync(f.spare_fd);
      if (s.ok()) s = co_await rs.spare_client->close(f.spare_fd);
    }
  } else {
    s = co_await rs.spare_client->close(f.spare_fd);
  }
  if (s.ok() && f.writing && f.on_spare) {
    DegradedEntry& e = rs.degraded[f.path];
    e.state = DegradedState::kDegraded;
    e.bytes = f.bytes;
    e.writes = std::move(f.journal);
    e.complete = true;
    if (sys_.m_degraded_ckpts_ != nullptr) sys_.m_degraded_ckpts_->add();
  }
  rs.io_mutex.unlock();
  co_return s;
}

sim::Task<Status> ResilientClient::unlink(const std::string& path) {
  ResilientSystem::RankState& rs = sys_.rank_state(rank_);
  co_await rs.io_mutex.lock();
  Status result = OkStatus();
  auto it = rs.degraded.find(path);
  if (it != rs.degraded.end()) {
    if (rs.spare_client != nullptr) {
      Status s = co_await rs.spare_client->unlink(path);
      if (!s.ok() && s.code() != ErrorCode::kNotFound) result = s;
    }
    rs.degraded.erase(it);
  }
  // The inner copy: absent for files that went straight to the spare
  // (tolerate kNotFound), unreachable when the primary is dead (the
  // retention unlink must not stall the run — the namespace dies with
  // the job anyway, §I).
  if (inner_ != nullptr && !sys_.monitor_.dead(primary_node_)) {
    Status s = co_await inner_->unlink(path);
    if (!s.ok() && s.code() != ErrorCode::kNotFound &&
        !is_retryable(s.code()) && result.ok()) {
      result = s;
    }
  }
  rs.io_mutex.unlock();
  co_return result;
}

// ---------------------------------------------------------------------
// FailoverView
// ---------------------------------------------------------------------

namespace {

/// Read-only client over one rank's degraded/healed checkpoints, for the
/// MultiLevelRouter restart chain. Routes exactly like the rank's
/// ResilientClient reads: degraded -> spare session, healed -> inner.
class FailoverViewClient final : public baselines::StorageClient {
 public:
  FailoverViewClient(ResilientSystem& sys, uint32_t rank)
      : sys_(sys), rank_(rank) {}

  sim::Task<StatusOr<int>> create(const std::string& path) override {
    (void)path;
    co_return StatusOr<int>(
        PermissionError("failover view is read-only"));
  }
  sim::Task<Status> write(int fd, uint64_t len) override {
    (void)fd;
    (void)len;
    co_return PermissionError("failover view is read-only");
  }
  sim::Task<Status> fsync(int fd) override {
    (void)fd;
    co_return PermissionError("failover view is read-only");
  }
  sim::Task<Status> unlink(const std::string& path) override {
    (void)path;
    co_return PermissionError("failover view is read-only");
  }

  sim::Task<StatusOr<int>> open_read(const std::string& path) override {
    const DegradedEntry* e = sys_.degraded_entry(rank_, path);
    if (e == nullptr || !e->complete) {
      co_return StatusOr<int>(
          NotFoundError("no degraded/healed copy of " + path));
    }
    ResilientClient* client = sys_.client_of(rank_);
    if (client == nullptr) {
      co_return StatusOr<int>(
          UnavailableError("rank session is gone"));
    }
    auto fd = co_await client->open_read(path);
    if (!fd.ok()) co_return fd;
    const int vfd = next_fd_++;
    routed_[vfd] = *fd;
    co_return vfd;
  }

  sim::Task<Status> read(int fd, uint64_t len) override {
    auto it = routed_.find(fd);
    if (it == routed_.end()) co_return InvalidArgumentError("bad fd");
    ResilientClient* client = sys_.client_of(rank_);
    if (client == nullptr) {
      co_return UnavailableError("rank session is gone");
    }
    co_return co_await client->read(it->second, len);
  }

  sim::Task<Status> close(int fd) override {
    auto it = routed_.find(fd);
    if (it == routed_.end()) co_return InvalidArgumentError("bad fd");
    const int real = it->second;
    routed_.erase(it);
    ResilientClient* client = sys_.client_of(rank_);
    if (client == nullptr) {
      co_return UnavailableError("rank session is gone");
    }
    co_return co_await client->close(real);
  }

 private:
  ResilientSystem& sys_;
  uint32_t rank_;
  std::map<int, int> routed_;  // view fd -> ResilientClient fd
  int next_fd_ = 5000;
};

}  // namespace

std::unique_ptr<baselines::StorageClient> ResilientSystem::failover_view(
    uint32_t rank) {
  return std::make_unique<FailoverViewClient>(*this, rank);
}

}  // namespace nvmecr::resilience
