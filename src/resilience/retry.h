// Retry with exponential backoff for the remote data path (DESIGN.md §13).
//
// RetryDevice wraps the per-rank NVMf qpair BlockDevice (installed via
// RuntimeConfig::device_wrapper) and retries RETRYABLE errors — transport
// timeouts, unreachable targets, typed-unavailable — with exponential
// backoff plus deterministic seeded jitter, under a per-operation
// deadline. Fatal errors (corruption, invalid argument, plain IO errors
// from fail_device-style injection) pass through on the first attempt:
// retrying those would only mask bugs.
//
// Every outcome feeds the HealthMonitor: success is proof of life
// (note_ok), a retryable failure is one miss (note_miss), and an
// exhausted retry budget escalates to note_exhausted — declaring the
// target dead so the failover layer (failover.h) can re-place the rank's
// extents in a partner domain instead of burning the checkpoint deadline
// on a corpse. Once the monitor says the target is dead, RetryDevice
// fails fast without sleeping: the first IO pays the detection cost, the
// rest of the checkpoint pivots immediately.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/rng.h"
#include "common/units.h"
#include "hw/block_device.h"
#include "obs/observer.h"
#include "resilience/health.h"
#include "simcore/engine.h"

namespace nvmecr::resilience {

struct RetryPolicy {
  /// Total attempts per operation (first try + retries).
  uint32_t max_attempts = 4;
  /// Backoff before retry k (1-based): base * multiplier^(k-1), capped at
  /// max_backoff, then jittered by +/- jitter fraction.
  SimDuration base_backoff = 50'000;  // 50 us
  double multiplier = 2.0;
  SimDuration max_backoff = 1'000'000;  // 1 ms
  double jitter = 0.25;
  /// Per-operation deadline: once an operation has spent this much sim
  /// time across attempts and backoffs, the budget is exhausted even if
  /// attempts remain. Keeps worst-case stall bounded against the
  /// checkpoint interval.
  SimDuration op_deadline = 10'000'000;  // 10 ms
};

/// BlockDevice decorator: retry/backoff + health reporting.
class RetryDevice final : public hw::BlockDevice {
 public:
  RetryDevice(sim::Engine& engine, std::unique_ptr<hw::BlockDevice> inner,
              HealthMonitor& monitor, fabric::NodeId storage_node,
              RetryPolicy policy, uint64_t jitter_seed);

  uint64_t capacity() const override { return inner_->capacity(); }
  uint32_t hw_block_size() const override { return inner_->hw_block_size(); }
  uint64_t tag_origin() const override { return inner_->tag_origin(); }

  sim::Task<Status> write(uint64_t offset,
                          std::span<const std::byte> data) override;
  sim::Task<Status> read(uint64_t offset, std::span<std::byte> out) override;
  sim::Task<Status> write_tagged(uint64_t offset, uint64_t len,
                                 uint64_t seed) override;
  sim::Task<StatusOr<uint64_t>> read_tagged(uint64_t offset,
                                            uint64_t len) override;
  sim::Task<Status> flush() override;
  sim::Task<Status> write_tagged_batch(uint64_t offset, uint64_t len,
                                       uint64_t seed,
                                       uint32_t subcmds) override;
  sim::Task<StatusOr<uint64_t>> read_tagged_batch(uint64_t offset,
                                                  uint64_t len,
                                                  uint32_t subcmds) override;

  fabric::NodeId storage_node() const { return node_; }
  uint64_t retries() const { return retries_; }

  void set_observer(const obs::Observer& o);

 private:
  /// Backoff before retry `attempt` (1-based retry index), jittered.
  SimDuration backoff_for(uint32_t attempt);

  /// Retry driver shared by all ops. `op` is re-invoked per attempt and
  /// must be safe to repeat (all our ops are idempotent writes/reads at
  /// fixed offsets).
  sim::Task<Status> with_retries(std::function<sim::Task<Status>()> op);

  /// StatusOr adapters: thread the value out through `out` so the
  /// Status-typed retry driver can be shared.
  sim::Task<Status> read_tagged_into(uint64_t offset, uint64_t len,
                                     uint64_t* out);
  sim::Task<Status> read_tagged_batch_into(uint64_t offset, uint64_t len,
                                           uint32_t subcmds, uint64_t* out);

  sim::Engine& engine_;
  std::unique_ptr<hw::BlockDevice> inner_;
  HealthMonitor& monitor_;
  fabric::NodeId node_;
  RetryPolicy policy_;
  Rng rng_;
  uint64_t retries_ = 0;
  obs::Counter* m_retries_ = nullptr;
};

/// Factory for RuntimeConfig::device_wrapper: wraps every remote qpair
/// device of a job in a RetryDevice reporting into `monitor`. Tracks each
/// storage node on first sight. Seeds the per-device jitter stream from
/// (seed, node, rank) so runs are reproducible regardless of connect
/// order.
std::function<std::unique_ptr<hw::BlockDevice>(
    std::unique_ptr<hw::BlockDevice>, fabric::NodeId, uint32_t)>
make_retry_wrapper(sim::Engine& engine, HealthMonitor& monitor,
                   RetryPolicy policy, uint64_t seed,
                   obs::Observer observer = {});

}  // namespace nvmecr::resilience
