// Mid-checkpoint failover and background healing (DESIGN.md §13).
//
// ResilientSystem wraps a deployed storage system (typically the
// redundancy engine over the NVMe-CR runtime) and absorbs storage-target
// death while a checkpoint is in flight:
//
//        application rank
//              |
//        ResilientClient ------------------.
//              | healthy path              | after target death
//        inner client                 spare client (NvmecrSystem on a
//        (RedundantClient ->          partner domain EXCLUDING every
//         NvmecrClient)               dead domain, via the balancer's
//              |                      exclude_domains)
//        primary + replica NS         spare namespace
//
// Failover protocol, per file: every successful append is journaled
// (length only — content is the deterministic (rank, path) stream, so a
// replay regenerates identical bytes, exactly like a checkpoint library
// re-emitting from application memory). When an op fails with a
// RETRYABLE error and the HealthMonitor has declared the rank's primary
// target dead, the client (1) provisions a one-rank spare session placed
// by the StorageBalancer with exclude_domains = monitor.dead_domains(),
// (2) re-creates the file there and replays the journal, (3) redoes the
// failed op and continues. The checkpoint completes in DEGRADED mode —
// it lives on the spare only, without partner/parity redundancy — and is
// recorded as such in the degraded manifest.
//
// Healing: once the dead target answers probes again (monitor state
// kHealing), the bounded healer daemon rewrites each degraded file
// through the rank's inner client — which re-runs the redundancy
// engine's replication — marks it kHealed, counts resilience.heal_bytes,
// and reports note_healed() when the node's last degraded file is done.
//
// Restart: ResilientClient::open_read serves degraded files from the
// spare and everything else from the inner chain, so the driver's
// restart read works unchanged. failover_view(rank) exposes the same
// routing as a read-only client for MultiLevelRouter::set_failover
// (restart chain: fast > failover > reconstructed > PFS).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/storage_api.h"
#include "nvmecr/cluster.h"
#include "nvmecr/runtime.h"
#include "resilience/health.h"
#include "resilience/retry.h"
#include "simcore/sync.h"

namespace nvmecr::resilience {

class ResilientClient;

struct ResilienceOptions {
  RetryPolicy retry;
  HealthParams health;
  /// Seed for the per-device jitter streams (see make_retry_wrapper).
  uint64_t seed = 42;
  /// Allow the spare in the rank's own failure domain when every partner
  /// domain is dead (off: typed kUnavailable exhaustion instead).
  bool allow_same_domain_spare = false;
};

enum class DegradedState {
  kDegraded,  // lives on the spare only, no redundancy
  kHealed,    // rewritten through the inner chain, fully redundant again
};

/// One checkpoint file that finished in degraded mode.
struct DegradedEntry {
  DegradedState state = DegradedState::kDegraded;
  uint64_t bytes = 0;
  std::vector<uint64_t> writes;  // append lengths, replay order
  bool complete = false;         // closed on the spare
};

class ResilientSystem final : public baselines::StorageSystem {
 public:
  /// `inner` must outlive this system; `primary_job` is the inner
  /// deployment's allocation (maps each rank to its primary target).
  /// `spare_config` configures spare runtimes provisioned at failover —
  /// pass the same RuntimeConfig as the primary deployment (its
  /// device_wrapper included, so spares are themselves retried and
  /// health-tracked).
  ResilientSystem(nvmecr_rt::Cluster& cluster, nvmecr_rt::Scheduler& scheduler,
                  baselines::StorageSystem& inner, HealthMonitor& monitor,
                  const nvmecr_rt::JobAllocation& primary_job,
                  nvmecr_rt::RuntimeConfig spare_config,
                  ResilienceOptions options = {});
  ~ResilientSystem() override;

  std::string name() const override { return inner_.name() + "+resilience"; }
  sim::Task<StatusOr<std::unique_ptr<baselines::StorageClient>>> connect(
      int rank) override;

  uint64_t hardware_peak_write_bw() const override {
    return inner_.hardware_peak_write_bw();
  }
  uint64_t hardware_peak_read_bw() const override {
    return inner_.hardware_peak_read_bw();
  }
  std::vector<uint64_t> bytes_per_server() const override {
    return inner_.bytes_per_server();
  }
  uint64_t metadata_bytes() const override { return inner_.metadata_bytes(); }
  SimDuration kernel_time() const override { return inner_.kernel_time(); }

  HealthMonitor& monitor() { return monitor_; }
  const ResilienceOptions& options() const { return options_; }

  /// Primary storage target of `rank` under the inner deployment.
  fabric::NodeId primary_node_of(uint32_t rank) const;

  /// Failovers performed (spare sessions provisioned).
  uint64_t failovers() const { return failovers_; }
  /// Device bytes rewritten by the healer.
  uint64_t healed_bytes() const { return healed_bytes_; }

  /// Degraded-manifest lookup; nullptr when the file never degraded.
  const DegradedEntry* degraded_entry(uint32_t rank,
                                      const std::string& path) const;
  /// Ranks with at least one degraded (not yet healed) file.
  std::vector<uint32_t> degraded_ranks() const;

  /// Read-only client serving rank's degraded/healed checkpoints, for
  /// MultiLevelRouter::set_failover. Valid while the rank's
  /// ResilientClient is alive; writes are rejected.
  std::unique_ptr<baselines::StorageClient> failover_view(uint32_t rank);

  /// Rank's live session, nullptr after the client is torn down.
  ResilientClient* client_of(uint32_t rank);

  /// Bounded healer daemon: every `period` until sim-time `until`, scans
  /// for kHealing targets and rewrites their ranks' degraded files
  /// through the inner chain (restoring full redundancy), then reports
  /// note_healed(). Spawn on the cluster engine alongside the workload.
  sim::Task<void> healer(SimTime until, SimDuration period = 500'000);

  /// fsck over every provisioned spare's runtime instances (chaos
  /// campaigns' corruption gate covers failover spares too). Returns the
  /// concatenated, rank-prefixed issue list; empty = clean.
  sim::Task<StatusOr<std::vector<std::string>>> fsck_spares();

  void set_observer(const obs::Observer& o);

 private:
  friend class ResilientClient;
  friend class FailoverView;

  struct RankState {
    explicit RankState(sim::Engine& e) : io_mutex(e) {}
    /// Serializes foreground client ops against the healer: the inner
    /// client is a single session and (like the redundancy engine's
    /// repl_mutex) does not tolerate concurrent operations.
    sim::FifoMutex io_mutex;
    ResilientClient* client = nullptr;  // live session registry
    /// The inner session, retained when the ResilientClient is torn
    /// down (a workload driver destroys its clients when the run ends).
    /// Healing must reuse a live session — a fresh connect would
    /// reformat the partition — so the healer falls back to this.
    std::unique_ptr<baselines::StorageClient> retained_inner;
    /// Spare session, provisioned on first failover of this rank.
    std::unique_ptr<nvmecr_rt::NvmecrSystem> spare_system;
    std::unique_ptr<baselines::StorageClient> spare_client;
    nvmecr_rt::JobAllocation spare_job;
    bool spare_allocated = false;
    std::map<std::string, DegradedEntry> degraded;
  };

  RankState& rank_state(uint32_t rank);

  /// Provisions rank's spare session (idempotent): balancer placement
  /// with exclude_domains = monitor.dead_domains(), one SSD, one rank.
  sim::Task<Status> ensure_spare(uint32_t rank);

  /// Rewrites one degraded file through the rank's inner client.
  sim::Task<Status> heal_file(uint32_t rank, std::string path);
  sim::Task<void> heal_node(fabric::NodeId node);

  nvmecr_rt::Cluster& cluster_;
  nvmecr_rt::Scheduler& scheduler_;
  baselines::StorageSystem& inner_;
  HealthMonitor& monitor_;
  nvmecr_rt::JobAllocation primary_job_;
  nvmecr_rt::RuntimeConfig spare_config_;
  ResilienceOptions options_;

  std::map<uint32_t, std::unique_ptr<RankState>> ranks_;

  uint64_t failovers_ = 0;
  uint64_t healed_bytes_ = 0;

  obs::Observer obs_;
  obs::Counter* m_failovers_ = nullptr;
  obs::Counter* m_heal_bytes_ = nullptr;
  obs::Counter* m_degraded_ckpts_ = nullptr;
};

/// Per-rank client: journals appends, absorbs primary-target death by
/// pivoting the stream to the spare session mid-checkpoint.
class ResilientClient final : public baselines::StorageClient {
 public:
  ResilientClient(ResilientSystem& sys, uint32_t rank,
                  std::unique_ptr<baselines::StorageClient> inner);
  ~ResilientClient() override;

  sim::Task<StatusOr<int>> create(const std::string& path) override;
  sim::Task<StatusOr<int>> open_read(const std::string& path) override;
  sim::Task<Status> write(int fd, uint64_t len) override;
  sim::Task<Status> read(int fd, uint64_t len) override;
  sim::Task<Status> fsync(int fd) override;
  sim::Task<Status> close(int fd) override;
  sim::Task<Status> unlink(const std::string& path) override;

  uint32_t rank() const { return rank_; }
  baselines::StorageClient& inner() { return *inner_; }

 private:
  friend class ResilientSystem;
  friend class FailoverView;

  struct OpenFile {
    std::string path;
    bool writing = false;
    int inner_fd = -1;  // fd on the inner chain (healthy path)
    int spare_fd = -1;  // fd on the spare session (after failover)
    bool on_spare = false;
    uint64_t bytes = 0;
    std::vector<uint64_t> journal;  // append lengths (writing only)
  };

  /// True when `s` should trigger failover: retryable error and the
  /// monitor has declared this rank's primary target dead.
  bool should_failover(const Status& s) const;

  /// Pivots `f` to the spare: provisions the session if needed, creates
  /// the file there and replays the journal. The failed op is then
  /// redone on the spare by the caller.
  sim::Task<Status> failover_file(OpenFile& f);

  ResilientSystem& sys_;
  uint32_t rank_;
  fabric::NodeId primary_node_;
  std::unique_ptr<baselines::StorageClient> inner_;
  std::map<int, OpenFile> open_;
  int next_fd_ = 1000;  // private fd space (maps onto inner/spare fds)
};

}  // namespace nvmecr::resilience
