// NVMe-over-Fabrics target and initiator (SPDK-style, Figure 4).
//
// An NvmfTarget is the userspace server daemon on a storage node: it
// accepts qpair connections and forwards commands to its local SSD
// through a dedicated hardware queue per connection. Its poll groups are
// a shared CPU pool, so command processing scales with target cores but
// saturates under extreme metadata storms (it is multi-tenant, unlike
// the single-threaded metadata services of the comparator systems).
//
// connect() returns the initiator-side BlockDevice: every operation pays
//   initiator CPU -> command capsule over RDMA -> target poll group ->
//   local SSD command -> completion back over RDMA.
// For writes the data travels with the command (RDMA write); for reads
// it returns with the completion (RDMA read semantics are folded into
// the response transfer).
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fabric/network.h"
#include "hw/block_device.h"
#include "hw/nvme_ssd.h"
#include "obs/observer.h"
#include "simcore/resource.h"
#include "simcore/trace.h"

namespace nvmecr::nvmf {

using namespace nvmecr::literals;

/// Offload capability bits (DESIGN.md "Offload pipeline"): what compute
/// stages a target is willing to run storage-side. Advertised per target
/// in NvmfParams::offload_caps and granted per session by
/// negotiate_offload() — the storage-side analogue of an NVMe
/// Identify-Controller capability field.
enum OffloadCap : uint32_t {
  kOffloadDigest = 1u << 0,    // CRC64 over landed extents
  kOffloadCompress = 1u << 1,  // store compressed, decompress on read
  kOffloadCompact = 1u << 2,   // fold incremental delta chains
  kOffloadParity = 1u << 3,    // XOR parity from landed data
  kOffloadAll = kOffloadDigest | kOffloadCompress | kOffloadCompact |
                kOffloadParity,
};

struct NvmfParams {
  /// NVMe command capsule size on the wire.
  uint64_t command_bytes = 64;
  /// Completion queue entry size on the wire.
  uint64_t completion_bytes = 16;
  /// Initiator-side userspace CPU per command (SPDK submit + poll).
  SimDuration initiator_per_cmd = 500;  // ns
  /// Target-side poll-group CPU per command.
  SimDuration target_per_cmd = 2_us;
  /// Poll-group cores on the target (multi-tenant scaling).
  uint32_t target_cores = 4;
  /// Offload stages this target advertises (OffloadCap bits). All on by
  /// default — whether any stage actually runs is the session's choice
  /// (negotiate_offload), so advertising is free.
  uint32_t offload_caps = kOffloadAll;
  /// Cores dedicated to offloaded compute, separate from the poll-group
  /// pool so data-path command processing is never starved by a
  /// background compaction or parity fold.
  uint32_t offload_cores = 2;
};

class NvmfTarget {
 public:
  NvmfTarget(sim::Engine& engine, fabric::Network& network,
             fabric::NodeId node, hw::NvmeSsd& ssd, NvmfParams params = {});

  fabric::NodeId node() const { return node_; }
  hw::NvmeSsd& ssd() { return ssd_; }
  sim::Engine& engine() { return engine_; }
  fabric::Network& network() { return network_; }
  const NvmfParams& params() const { return params_; }

  /// Establishes a qpair from `client_node` to namespace `nsid`:
  /// allocates a dedicated hardware queue on the SSD (Principle 3) and
  /// returns the remote BlockDevice the client IOs through. Fails with
  /// kUnavailable when the SSD's queue budget is exhausted.
  StatusOr<std::unique_ptr<hw::BlockDevice>> connect(fabric::NodeId client_node,
                                                     uint32_t nsid);

  /// Books `count` commands on the poll-group CPU pool starting no
  /// earlier than `arrival`; returns when their processing would finish.
  SimTime reserve_poll_group(SimTime arrival, uint32_t count = 1);

  /// Books `work_ns` of single-core offload compute (digest, decompress,
  /// compaction fold, parity XOR) on the target's dedicated offload-core
  /// pool, starting no earlier than `arrival`; returns when the work
  /// would finish. Non-suspending (fluid FIFO model, like the poll
  /// groups): callers sleep_until the returned time when the result is
  /// on their critical path, or just record it for background stages.
  SimTime reserve_compute(SimTime arrival, SimDuration work_ns);

  /// Admin-command exchange negotiating the session's offload stages:
  /// the client requests a capability mask and the target grants
  /// `requested & offload_caps`. Pays one command round trip (initiator
  /// CPU, capsule, poll group, completion); a dead target daemon
  /// surfaces as kUnreachable after the transport timeout so callers
  /// can fall back to host-side compute.
  sim::Task<StatusOr<uint32_t>> negotiate_offload(fabric::NodeId client_node,
                                                  uint32_t requested);

  uint64_t commands_processed() const { return commands_processed_; }
  /// Total offloaded compute booked on this target (busy ns, all cores).
  uint64_t compute_busy_ns() const { return compute_busy_ns_; }

  /// Qpair-to-hardware-queue mapping: each connection gets a dedicated
  /// hardware queue while the controller has them (Principle 3); beyond
  /// the device's queue budget, connections share queues round-robin —
  /// what SPDK's target does when initiator qpairs outnumber HW queues.
  StatusOr<uint32_t> acquire_queue();
  void release_queue(uint32_t queue_id);

  /// Installs trace/metrics sinks: a command counter and inflight/
  /// poll-backlog gauges under "nvmf.node<N>.", plus per-operation spans
  /// on track "nvmf/node<N>". Pass {} to detach.
  void set_observer(const obs::Observer& o);

  /// Inflight (qpair depth) accounting, called by the initiator-side
  /// device around each command exchange.
  void command_begin(uint32_t count);
  void command_end(uint32_t count);

  /// Records one initiator-visible operation span (no-op untraced).
  void record_op_span(const char* name, SimTime start, uint64_t bytes);

  /// Observer handed out by set_observer (epoch phase recording by the
  /// initiator-side device).
  const obs::Observer& observer() const { return obs_; }
  /// Cost-center tag for this target's dispatches (0 when unprofiled).
  uint16_t profile_tag() const { return profile_tag_; }
  /// Cost-center tag for offloaded compute (0 when unprofiled).
  uint16_t offload_tag() const { return offload_tag_; }

  // --- fault injection (resilience tests) ------------------------------
  /// Declares the target daemon crashed from sim-time `at` (until
  /// `recover_at`; 0 = forever): commands in the window get no response
  /// and initiators see kUnreachable after the transport timeout. The
  /// SSD behind it is untouched — this models a userspace daemon / node
  /// OS loss, distinct from NvmeSsd::schedule_crash. Repeated calls
  /// accumulate independent crash windows (failure schedules arm many
  /// transient outages on one daemon).
  void schedule_crash(SimTime at, SimTime recover_at = 0) {
    crash_windows_.push_back({at, recover_at});
  }
  /// True when the target daemon is responsive at time `t` (the
  /// management-plane liveness check heartbeat probes use).
  bool alive(SimTime t) const {
    for (const auto& w : crash_windows_) {
      if (t >= w.at && (w.recover_at == 0 || t < w.recover_at)) return false;
    }
    return true;
  }

 private:
  sim::Engine& engine_;
  fabric::Network& network_;
  fabric::NodeId node_;
  hw::NvmeSsd& ssd_;
  NvmfParams params_;
  /// Poll groups as an op-granular pool: one "byte" == one command, rate
  /// == cores / target_per_cmd commands per second.
  sim::BandwidthResource poll_groups_;
  /// Offload compute as a ns-granular pool: one "byte" == one ns of
  /// single-core work, rate == offload_cores ns of work per second.
  sim::BandwidthResource compute_;
  uint64_t commands_processed_ = 0;
  uint64_t compute_busy_ns_ = 0;
  /// (queue id, connections using it); shared once the budget runs out.
  std::vector<std::pair<uint32_t, uint32_t>> queue_refs_;
  uint32_t next_shared_ = 0;
  struct CrashWindow {
    SimTime at = 0;
    SimTime recover_at = 0;  // 0 = crashed forever
  };
  std::vector<CrashWindow> crash_windows_;

  // Observability (null/empty when detached).
  obs::Observer obs_;
  std::string trace_track_;
  obs::Counter* m_cmds_ = nullptr;
  obs::Counter* m_offload_busy_ = nullptr;
  obs::Gauge* m_inflight_ = nullptr;
  obs::Gauge* m_poll_backlog_ = nullptr;
  uint16_t profile_tag_ = 0;
  uint16_t offload_tag_ = 0;
  uint32_t inflight_ = 0;
};

}  // namespace nvmecr::nvmf
