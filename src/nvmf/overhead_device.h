// Per-operation software-cost wrapper around a BlockDevice.
//
// The same wrapper expresses both ends of Figure 2 vs Figure 4:
//  * SPDK userspace path: sub-microsecond submit cost, polling completion
//    (no interrupt), time attributed to userspace.
//  * kernel path: syscall trap + VFS + block layer + interrupt costs,
//    with the op's full duration attributed to a kernel-time accumulator
//    (reproduces the §IV-D kernel-time percentages).
#pragma once

#include "common/units.h"
#include "hw/block_device.h"
#include "simcore/engine.h"

namespace nvmecr::nvmf {

struct OverheadCosts {
  /// CPU charged before the inner op starts (submission path).
  SimDuration per_op_submit = 0;
  /// CPU charged after the inner op completes (completion path,
  /// e.g. interrupt handling + context switch back).
  SimDuration per_op_complete = 0;
};

class OverheadDevice final : public hw::BlockDevice {
 public:
  /// If `kernel_time` is non-null, the entire duration of every op
  /// (submit cost + inner op + completion cost) is added to it.
  OverheadDevice(sim::Engine& engine, hw::BlockDevice& inner,
                 OverheadCosts costs, SimDuration* kernel_time = nullptr)
      : engine_(engine), inner_(inner), costs_(costs),
        kernel_time_(kernel_time) {}

  uint64_t capacity() const override { return inner_.capacity(); }
  uint32_t hw_block_size() const override { return inner_.hw_block_size(); }
  uint64_t tag_origin() const override { return inner_.tag_origin(); }

  sim::Task<Status> write(uint64_t offset,
                          std::span<const std::byte> data) override {
    const SimTime start = engine_.now();
    co_await engine_.delay(costs_.per_op_submit);
    Status s = co_await inner_.write(offset, data);
    co_await engine_.delay(costs_.per_op_complete);
    attribute(start);
    co_return s;
  }

  sim::Task<Status> read(uint64_t offset, std::span<std::byte> out) override {
    const SimTime start = engine_.now();
    co_await engine_.delay(costs_.per_op_submit);
    Status s = co_await inner_.read(offset, out);
    co_await engine_.delay(costs_.per_op_complete);
    attribute(start);
    co_return s;
  }

  sim::Task<Status> write_tagged(uint64_t offset, uint64_t len,
                                 uint64_t seed) override {
    const SimTime start = engine_.now();
    co_await engine_.delay(costs_.per_op_submit);
    Status s = co_await inner_.write_tagged(offset, len, seed);
    co_await engine_.delay(costs_.per_op_complete);
    attribute(start);
    co_return s;
  }

  sim::Task<StatusOr<uint64_t>> read_tagged(uint64_t offset,
                                            uint64_t len) override {
    const SimTime start = engine_.now();
    co_await engine_.delay(costs_.per_op_submit);
    auto r = co_await inner_.read_tagged(offset, len);
    co_await engine_.delay(costs_.per_op_complete);
    attribute(start);
    co_return r;
  }

  sim::Task<Status> flush() override {
    const SimTime start = engine_.now();
    co_await engine_.delay(costs_.per_op_submit);
    Status s = co_await inner_.flush();
    co_await engine_.delay(costs_.per_op_complete);
    attribute(start);
    co_return s;
  }

  // Batched tagged IO still pays the per-command software cost once per
  // represented command (the kernel path cannot amortize syscalls).
  sim::Task<Status> write_tagged_batch(uint64_t offset, uint64_t len,
                                       uint64_t seed,
                                       uint32_t subcmds) override {
    const SimTime start = engine_.now();
    co_await engine_.delay(costs_.per_op_submit * subcmds);
    Status s = co_await inner_.write_tagged_batch(offset, len, seed, subcmds);
    co_await engine_.delay(costs_.per_op_complete * subcmds);
    attribute(start);
    co_return s;
  }
  sim::Task<StatusOr<uint64_t>> read_tagged_batch(uint64_t offset,
                                                  uint64_t len,
                                                  uint32_t subcmds) override {
    const SimTime start = engine_.now();
    co_await engine_.delay(costs_.per_op_submit * subcmds);
    auto r = co_await inner_.read_tagged_batch(offset, len, subcmds);
    co_await engine_.delay(costs_.per_op_complete * subcmds);
    attribute(start);
    co_return r;
  }

 private:
  void attribute(SimTime start) {
    if (kernel_time_ != nullptr) *kernel_time_ += engine_.now() - start;
  }

  sim::Engine& engine_;
  hw::BlockDevice& inner_;
  OverheadCosts costs_;
  SimDuration* kernel_time_;
};

}  // namespace nvmecr::nvmf
