// SPDK-style local userspace NVMe driver (the "SPDK" series of Figure
// 7(c)): unprivileged direct device access via vfio-like mapping. In the
// model this is a thin ownership wrapper — a dedicated hardware queue,
// run-to-completion polling (no interrupt cost), and a sub-microsecond
// submit cost per command.
#pragma once

#include <memory>

#include "hw/nvme_ssd.h"
#include "nvmf/overhead_device.h"

namespace nvmecr::nvmf {

/// Owns a hardware queue on a local SSD and exposes it as a BlockDevice
/// with SPDK-calibre per-command software cost.
class SpdkLocalDevice final : public hw::BlockDevice {
 public:
  static StatusOr<std::unique_ptr<SpdkLocalDevice>> open(
      hw::NvmeSsd& ssd, uint32_t nsid, SimDuration per_cmd_cpu = 300 /*ns*/) {
    auto queue = ssd.alloc_queue();
    if (!queue.ok()) return queue.status();
    return std::unique_ptr<SpdkLocalDevice>(
        new SpdkLocalDevice(ssd, nsid, *queue, per_cmd_cpu));
  }

  ~SpdkLocalDevice() override { ssd_.free_queue(queue_id_); }

  uint64_t capacity() const override { return wrapped_->capacity(); }
  uint32_t hw_block_size() const override { return wrapped_->hw_block_size(); }
  uint64_t tag_origin() const override { return wrapped_->tag_origin(); }

  sim::Task<Status> write(uint64_t offset,
                          std::span<const std::byte> data) override {
    co_return co_await wrapped_->write(offset, data);
  }
  sim::Task<Status> read(uint64_t offset, std::span<std::byte> out) override {
    co_return co_await wrapped_->read(offset, out);
  }
  sim::Task<Status> write_tagged(uint64_t offset, uint64_t len,
                                 uint64_t seed) override {
    co_return co_await wrapped_->write_tagged(offset, len, seed);
  }
  sim::Task<StatusOr<uint64_t>> read_tagged(uint64_t offset,
                                            uint64_t len) override {
    co_return co_await wrapped_->read_tagged(offset, len);
  }
  sim::Task<Status> flush() override { co_return co_await wrapped_->flush(); }

  uint32_t queue_id() const { return queue_id_; }

 private:
  SpdkLocalDevice(hw::NvmeSsd& ssd, uint32_t nsid, uint32_t queue_id,
                  SimDuration per_cmd_cpu)
      : ssd_(ssd),
        queue_id_(queue_id),
        raw_(ssd.open_queue(nsid, queue_id)),
        wrapped_(std::make_unique<OverheadDevice>(
            ssd.engine(), *raw_,
            OverheadCosts{.per_op_submit = per_cmd_cpu,
                          .per_op_complete = 0})) {}

  hw::NvmeSsd& ssd_;
  uint32_t queue_id_;
  std::unique_ptr<hw::BlockDevice> raw_;
  std::unique_ptr<OverheadDevice> wrapped_;
};

}  // namespace nvmecr::nvmf
