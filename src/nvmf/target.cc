#include "nvmf/target.h"

namespace nvmecr::nvmf {

namespace {

/// Initiator-side view of a remote namespace through one qpair.
class RemoteDevice final : public hw::BlockDevice {
 public:
  RemoteDevice(NvmfTarget& target, fabric::NodeId client,
               std::unique_ptr<hw::BlockDevice> ssd_view, uint32_t queue_id)
      : target_(target),
        client_(client),
        ssd_view_(std::move(ssd_view)),
        queue_id_(queue_id) {}

  ~RemoteDevice() override { target_.release_queue(queue_id_); }

  uint64_t capacity() const override { return ssd_view_->capacity(); }
  uint32_t hw_block_size() const override {
    return ssd_view_->hw_block_size();
  }
  uint64_t tag_origin() const override { return ssd_view_->tag_origin(); }

  sim::Task<Status> write(uint64_t offset,
                          std::span<const std::byte> data) override {
    const SimTime t0 = target_.engine().now();
    co_await request(target_.params().command_bytes + data.size());
    Status s = co_await ssd_view_->write(offset, data);
    co_await response(target_.params().completion_bytes);
    target_.record_op_span("write", t0, data.size());
    co_return s;
  }

  sim::Task<Status> read(uint64_t offset, std::span<std::byte> out) override {
    const SimTime t0 = target_.engine().now();
    co_await request(target_.params().command_bytes);
    Status s = co_await ssd_view_->read(offset, out);
    co_await response(target_.params().completion_bytes + out.size());
    target_.record_op_span("read", t0, out.size());
    co_return s;
  }

  sim::Task<Status> write_tagged(uint64_t offset, uint64_t len,
                                 uint64_t seed) override {
    const SimTime t0 = target_.engine().now();
    co_await request(target_.params().command_bytes + len);
    Status s = co_await ssd_view_->write_tagged(offset, len, seed);
    co_await response(target_.params().completion_bytes);
    target_.record_op_span("write", t0, len);
    co_return s;
  }

  sim::Task<StatusOr<uint64_t>> read_tagged(uint64_t offset,
                                            uint64_t len) override {
    const SimTime t0 = target_.engine().now();
    co_await request(target_.params().command_bytes);
    auto r = co_await ssd_view_->read_tagged(offset, len);
    co_await response(target_.params().completion_bytes + len);
    target_.record_op_span("read", t0, len);
    co_return r;
  }

  sim::Task<Status> flush() override {
    const SimTime t0 = target_.engine().now();
    co_await request(target_.params().command_bytes);
    Status s = co_await ssd_view_->flush();
    co_await response(target_.params().completion_bytes);
    target_.record_op_span("flush", t0, 0);
    co_return s;
  }

  sim::Task<Status> write_tagged_batch(uint64_t offset, uint64_t len,
                                       uint64_t seed,
                                       uint32_t subcmds) override {
    const SimTime t0 = target_.engine().now();
    co_await request(target_.params().command_bytes * subcmds + len, subcmds);
    Status s = co_await ssd_view_->write_tagged_batch(offset, len, seed,
                                                      subcmds);
    co_await response(target_.params().completion_bytes * subcmds, subcmds);
    target_.record_op_span("write_batch", t0, len);
    co_return s;
  }

  sim::Task<StatusOr<uint64_t>> read_tagged_batch(uint64_t offset,
                                                  uint64_t len,
                                                  uint32_t subcmds) override {
    const SimTime t0 = target_.engine().now();
    co_await request(target_.params().command_bytes * subcmds, subcmds);
    auto r = co_await ssd_view_->read_tagged_batch(offset, len, subcmds);
    co_await response(target_.params().completion_bytes * subcmds + len,
                      subcmds);
    target_.record_op_span("read_batch", t0, len);
    co_return r;
  }

 private:
  /// Initiator CPU, capsule (+ inline data) to the target, poll group;
  /// `count` commands' worth for batched submissions. Inflight (qpair
  /// depth) accounting opens here and closes in response().
  sim::Task<void> request(uint64_t wire_bytes, uint32_t count = 1) {
    sim::Engine& eng = target_.engine();
    target_.command_begin(count);
    co_await eng.delay(target_.params().initiator_per_cmd * count);
    co_await target_.network().transfer(client_, target_.node(), wire_bytes);
    const SimTime cpu_done = target_.reserve_poll_group(eng.now(), count);
    co_await eng.sleep_until(cpu_done);
  }

  /// Completion (+ read data) back to the initiator.
  sim::Task<void> response(uint64_t wire_bytes, uint32_t count = 1) {
    co_await target_.network().transfer(target_.node(), client_, wire_bytes);
    target_.command_end(count);
  }

  NvmfTarget& target_;
  fabric::NodeId client_;
  std::unique_ptr<hw::BlockDevice> ssd_view_;
  uint32_t queue_id_;
};

}  // namespace

NvmfTarget::NvmfTarget(sim::Engine& engine, fabric::Network& network,
                       fabric::NodeId node, hw::NvmeSsd& ssd,
                       NvmfParams params)
    : engine_(engine),
      network_(network),
      node_(node),
      ssd_(ssd),
      params_(params),
      poll_groups_(engine,
                   params.target_per_cmd > 0
                       ? params.target_cores * kSecond /
                             static_cast<uint64_t>(params.target_per_cmd)
                       : 0) {}

SimTime NvmfTarget::reserve_poll_group(SimTime arrival, uint32_t count) {
  commands_processed_ += count;
  const SimTime done = poll_groups_.reserve_after(arrival, count);
  if (m_cmds_ != nullptr) m_cmds_->add(count);
  if (m_poll_backlog_ != nullptr) {
    m_poll_backlog_->set(engine_.now(),
                         static_cast<double>(poll_groups_.backlog()));
  }
  return done;
}

void NvmfTarget::set_observer(const obs::Observer& o) {
  obs_ = o;
  trace_track_ = "nvmf/node" + std::to_string(node_);
  m_cmds_ = nullptr;
  m_inflight_ = nullptr;
  m_poll_backlog_ = nullptr;
  if (obs_.metrics == nullptr) return;
  const std::string prefix = "nvmf.node" + std::to_string(node_) + ".";
  m_cmds_ = obs_.metrics->counter(prefix + "commands");
  m_inflight_ = obs_.metrics->gauge(prefix + "qpair_depth");
  m_poll_backlog_ = obs_.metrics->gauge(prefix + "poll_backlog_ns");
}

void NvmfTarget::command_begin(uint32_t count) {
  inflight_ += count;
  if (m_inflight_ != nullptr) {
    m_inflight_->set(engine_.now(), static_cast<double>(inflight_));
  }
}

void NvmfTarget::command_end(uint32_t count) {
  inflight_ = inflight_ >= count ? inflight_ - count : 0;
  if (m_inflight_ != nullptr) {
    m_inflight_->set(engine_.now(), static_cast<double>(inflight_));
  }
}

void NvmfTarget::record_op_span(const char* name, SimTime start,
                                uint64_t bytes) {
  if (obs_.trace == nullptr) return;
  obs_.trace->add_span(trace_track_, name, start, engine_.now(),
                       {{"bytes", static_cast<double>(bytes)}});
}

StatusOr<uint32_t> NvmfTarget::acquire_queue() {
  auto queue = ssd_.alloc_queue();
  if (queue.ok()) {
    queue_refs_.emplace_back(*queue, 1);
    return *queue;
  }
  if (queue_refs_.empty()) return queue.status();
  // Budget exhausted: share an existing queue round-robin.
  auto& [qid, refs] = queue_refs_[next_shared_ % queue_refs_.size()];
  ++next_shared_;
  ++refs;
  return qid;
}

void NvmfTarget::release_queue(uint32_t queue_id) {
  for (auto it = queue_refs_.begin(); it != queue_refs_.end(); ++it) {
    if (it->first == queue_id) {
      if (--it->second == 0) {
        ssd_.free_queue(queue_id);
        queue_refs_.erase(it);
      }
      return;
    }
  }
}

StatusOr<std::unique_ptr<hw::BlockDevice>> NvmfTarget::connect(
    fabric::NodeId client_node, uint32_t nsid) {
  auto queue = acquire_queue();
  if (!queue.ok()) return queue.status();
  auto view = ssd_.open_queue(nsid, *queue);
  return std::unique_ptr<hw::BlockDevice>(
      new RemoteDevice(*this, client_node, std::move(view), *queue));
}

}  // namespace nvmecr::nvmf
