#include "nvmf/target.h"

#include "obs/profile.h"
#include "simcore/profile.h"

namespace nvmecr::nvmf {

namespace {

using obs::EpochProfiler;

/// Initiator-side view of a remote namespace through one qpair.
class RemoteDevice final : public hw::BlockDevice {
 public:
  RemoteDevice(NvmfTarget& target, fabric::NodeId client,
               std::unique_ptr<hw::BlockDevice> ssd_view, uint32_t queue_id)
      : target_(target),
        client_(client),
        ssd_view_(std::move(ssd_view)),
        queue_id_(queue_id) {}

  ~RemoteDevice() override { target_.release_queue(queue_id_); }

  uint64_t capacity() const override { return ssd_view_->capacity(); }
  uint32_t hw_block_size() const override {
    return ssd_view_->hw_block_size();
  }
  uint64_t tag_origin() const override { return ssd_view_->tag_origin(); }

  sim::Task<Status> write(uint64_t offset,
                          std::span<const std::byte> data) override {
    const SimTime t0 = target_.engine().now();
    Status rq = co_await request(target_.params().command_bytes + data.size());
    if (!rq.ok()) co_return rq;
    Status s = co_await ssd_view_->write(offset, data);
    Status rs = co_await response(target_.params().completion_bytes);
    target_.record_op_span("write", t0, data.size());
    if (!s.ok()) co_return s;
    co_return rs;
  }

  sim::Task<Status> read(uint64_t offset, std::span<std::byte> out) override {
    const SimTime t0 = target_.engine().now();
    Status rq = co_await request(target_.params().command_bytes);
    if (!rq.ok()) co_return rq;
    Status s = co_await ssd_view_->read(offset, out);
    Status rs = co_await response(target_.params().completion_bytes +
                                  out.size());
    target_.record_op_span("read", t0, out.size());
    if (!s.ok()) co_return s;
    co_return rs;
  }

  sim::Task<Status> write_tagged(uint64_t offset, uint64_t len,
                                 uint64_t seed) override {
    const SimTime t0 = target_.engine().now();
    Status rq = co_await request(target_.params().command_bytes + len);
    if (!rq.ok()) co_return rq;
    Status s = co_await ssd_view_->write_tagged(offset, len, seed);
    Status rs = co_await response(target_.params().completion_bytes);
    target_.record_op_span("write", t0, len);
    if (!s.ok()) co_return s;
    co_return rs;
  }

  sim::Task<StatusOr<uint64_t>> read_tagged(uint64_t offset,
                                            uint64_t len) override {
    const SimTime t0 = target_.engine().now();
    Status rq = co_await request(target_.params().command_bytes);
    if (!rq.ok()) co_return StatusOr<uint64_t>(rq);
    auto r = co_await ssd_view_->read_tagged(offset, len);
    Status rs = co_await response(target_.params().completion_bytes + len);
    target_.record_op_span("read", t0, len);
    if (r.ok() && !rs.ok()) co_return StatusOr<uint64_t>(rs);
    co_return r;
  }

  sim::Task<Status> flush() override {
    const SimTime t0 = target_.engine().now();
    Status rq = co_await request(target_.params().command_bytes);
    if (!rq.ok()) co_return rq;
    Status s = co_await ssd_view_->flush();
    Status rs = co_await response(target_.params().completion_bytes);
    target_.record_op_span("flush", t0, 0);
    if (!s.ok()) co_return s;
    co_return rs;
  }

  sim::Task<Status> write_tagged_batch(uint64_t offset, uint64_t len,
                                       uint64_t seed,
                                       uint32_t subcmds) override {
    const SimTime t0 = target_.engine().now();
    Status rq = co_await request(
        target_.params().command_bytes * subcmds + len, subcmds);
    if (!rq.ok()) co_return rq;
    Status s = co_await ssd_view_->write_tagged_batch(offset, len, seed,
                                                      subcmds);
    Status rs = co_await response(target_.params().completion_bytes * subcmds,
                                  subcmds);
    target_.record_op_span("write_batch", t0, len);
    if (!s.ok()) co_return s;
    co_return rs;
  }

  sim::Task<StatusOr<uint64_t>> read_tagged_batch(uint64_t offset,
                                                  uint64_t len,
                                                  uint32_t subcmds) override {
    const SimTime t0 = target_.engine().now();
    Status rq = co_await request(target_.params().command_bytes * subcmds,
                                 subcmds);
    if (!rq.ok()) co_return StatusOr<uint64_t>(rq);
    auto r = co_await ssd_view_->read_tagged_batch(offset, len, subcmds);
    Status rs = co_await response(
        target_.params().completion_bytes * subcmds + len, subcmds);
    target_.record_op_span("read_batch", t0, len);
    if (r.ok() && !rs.ok()) co_return StatusOr<uint64_t>(rs);
    co_return r;
  }

 private:
  /// Initiator CPU, capsule (+ inline data) to the target, poll group;
  /// `count` commands' worth for batched submissions. Inflight (qpair
  /// depth) accounting opens here; on failure it closes here too (the
  /// command is dead), otherwise response() closes it. A crashed target
  /// daemon or a down link surfaces as kUnreachable / kTimedOut after
  /// the transport timeout — never as a hang.
  sim::Task<Status> request(uint64_t wire_bytes, uint32_t count = 1) {
    sim::Engine& eng = target_.engine();
    // Everything this exchange schedules dispatches under the "nvmf"
    // cost center; phase time goes to the rank stamped by the caller.
    sim::ProfileTagScope tag_scope(eng, target_.profile_tag());
    const obs::Observer& obs = target_.observer();
    target_.command_begin(count);
    const SimDuration cpu = target_.params().initiator_per_cmd * count;
    co_await eng.delay(cpu);
    if (obs.epoch != nullptr) {
      obs.epoch->record(eng, EpochProfiler::Phase::kSerialize, cpu);
    }
    if (!target_.alive(eng.now())) {
      co_await eng.delay(target_.network().params().transport_timeout);
      target_.command_end(count);
      co_return UnreachableError("nvmf target on node " +
                                 std::to_string(target_.node()) + " down");
    }
    const SimTime xfer0 = eng.now();
    Status s = co_await target_.network().try_transfer(client_, target_.node(),
                                                       wire_bytes);
    if (obs.epoch != nullptr) {
      obs.epoch->record(eng, EpochProfiler::Phase::kFabric,
                        eng.now() - xfer0);
    }
    if (!s.ok()) {
      target_.command_end(count);
      co_return s;
    }
    const SimTime cpu_done = target_.reserve_poll_group(eng.now(), count);
    if (obs.epoch != nullptr) {
      obs.epoch->record(eng, EpochProfiler::Phase::kTargetQueue,
                        cpu_done - eng.now());
    }
    co_await eng.sleep_until(cpu_done);
    if (!target_.alive(eng.now())) {
      // The daemon died while the command sat in the poll group.
      co_await eng.delay(target_.network().params().transport_timeout);
      target_.command_end(count);
      co_return UnreachableError("nvmf target on node " +
                                 std::to_string(target_.node()) +
                                 " died processing command");
    }
    co_return OkStatus();
  }

  /// Completion (+ read data) back to the initiator. Always closes the
  /// inflight window opened by request().
  sim::Task<Status> response(uint64_t wire_bytes, uint32_t count = 1) {
    sim::Engine& eng = target_.engine();
    sim::ProfileTagScope tag_scope(eng, target_.profile_tag());
    const obs::Observer& obs = target_.observer();
    if (!target_.alive(eng.now())) {
      co_await eng.delay(target_.network().params().transport_timeout);
      target_.command_end(count);
      co_return UnreachableError("nvmf target on node " +
                                 std::to_string(target_.node()) +
                                 " died before completing");
    }
    const SimTime xfer0 = eng.now();
    Status s = co_await target_.network().try_transfer(target_.node(), client_,
                                                       wire_bytes);
    if (obs.epoch != nullptr) {
      obs.epoch->record(eng, EpochProfiler::Phase::kFabric,
                        eng.now() - xfer0);
    }
    target_.command_end(count);
    co_return s;
  }

  NvmfTarget& target_;
  fabric::NodeId client_;
  std::unique_ptr<hw::BlockDevice> ssd_view_;
  uint32_t queue_id_;
};

}  // namespace

NvmfTarget::NvmfTarget(sim::Engine& engine, fabric::Network& network,
                       fabric::NodeId node, hw::NvmeSsd& ssd,
                       NvmfParams params)
    : engine_(engine),
      network_(network),
      node_(node),
      ssd_(ssd),
      params_(params),
      poll_groups_(engine,
                   params.target_per_cmd > 0
                       ? params.target_cores * kSecond /
                             static_cast<uint64_t>(params.target_per_cmd)
                       : 0),
      compute_(engine, static_cast<uint64_t>(params.offload_cores) * kSecond) {}

SimTime NvmfTarget::reserve_compute(SimTime arrival, SimDuration work_ns) {
  if (work_ns <= 0) return arrival;
  compute_busy_ns_ += static_cast<uint64_t>(work_ns);
  const SimTime done =
      compute_.reserve_after(arrival, static_cast<uint64_t>(work_ns));
  if (m_offload_busy_ != nullptr) {
    m_offload_busy_->add(static_cast<uint64_t>(work_ns));
  }
  return done;
}

sim::Task<StatusOr<uint32_t>> NvmfTarget::negotiate_offload(
    fabric::NodeId client_node, uint32_t requested) {
  sim::ProfileTagScope tag_scope(engine_, profile_tag_);
  co_await engine_.delay(params_.initiator_per_cmd);
  if (!alive(engine_.now())) {
    co_await engine_.delay(network_.params().transport_timeout);
    co_return UnreachableError("nvmf target on node " + std::to_string(node_) +
                               " down (offload negotiation)");
  }
  Status s =
      co_await network_.try_transfer(client_node, node_, params_.command_bytes);
  if (!s.ok()) co_return s;
  co_await engine_.sleep_until(reserve_poll_group(engine_.now()));
  if (!alive(engine_.now())) {
    co_await engine_.delay(network_.params().transport_timeout);
    co_return UnreachableError("nvmf target on node " + std::to_string(node_) +
                               " died negotiating offload");
  }
  s = co_await network_.try_transfer(node_, client_node,
                                     params_.completion_bytes);
  if (!s.ok()) co_return s;
  co_return requested & params_.offload_caps;
}

SimTime NvmfTarget::reserve_poll_group(SimTime arrival, uint32_t count) {
  commands_processed_ += count;
  const SimTime done = poll_groups_.reserve_after(arrival, count);
  if (m_cmds_ != nullptr) m_cmds_->add(count);
  if (m_poll_backlog_ != nullptr) {
    m_poll_backlog_->set(engine_.now(),
                         static_cast<double>(poll_groups_.backlog()));
  }
  return done;
}

void NvmfTarget::set_observer(const obs::Observer& o) {
  obs_ = o;
  trace_track_ = "nvmf/node" + std::to_string(node_);
  m_cmds_ = nullptr;
  m_offload_busy_ = nullptr;
  m_inflight_ = nullptr;
  m_poll_backlog_ = nullptr;
  profile_tag_ = engine_.profile_tag("nvmf");
  offload_tag_ = engine_.profile_tag("nvmf/offload");
  if (obs_.metrics == nullptr) return;
  const std::string prefix = "nvmf.node" + std::to_string(node_) + ".";
  m_cmds_ = obs_.metrics->counter(prefix + "commands");
  m_offload_busy_ = obs_.metrics->counter(prefix + "offload_busy_ns");
  m_inflight_ = obs_.metrics->gauge(prefix + "qpair_depth");
  m_poll_backlog_ = obs_.metrics->gauge(prefix + "poll_backlog_ns");
}

void NvmfTarget::command_begin(uint32_t count) {
  inflight_ += count;
  if (m_inflight_ != nullptr) {
    m_inflight_->set(engine_.now(), static_cast<double>(inflight_));
  }
}

void NvmfTarget::command_end(uint32_t count) {
  inflight_ = inflight_ >= count ? inflight_ - count : 0;
  if (m_inflight_ != nullptr) {
    m_inflight_->set(engine_.now(), static_cast<double>(inflight_));
  }
}

void NvmfTarget::record_op_span(const char* name, SimTime start,
                                uint64_t bytes) {
  if (obs_.trace == nullptr) return;
  obs_.trace->add_span(trace_track_, name, start, engine_.now(),
                       {{"bytes", static_cast<double>(bytes)}});
}

StatusOr<uint32_t> NvmfTarget::acquire_queue() {
  auto queue = ssd_.alloc_queue();
  if (queue.ok()) {
    queue_refs_.emplace_back(*queue, 1);
    return *queue;
  }
  if (queue_refs_.empty()) return queue.status();
  // Budget exhausted: share an existing queue round-robin.
  auto& [qid, refs] = queue_refs_[next_shared_ % queue_refs_.size()];
  ++next_shared_;
  ++refs;
  return qid;
}

void NvmfTarget::release_queue(uint32_t queue_id) {
  for (auto it = queue_refs_.begin(); it != queue_refs_.end(); ++it) {
    if (it->first == queue_id) {
      if (--it->second == 0) {
        ssd_.free_queue(queue_id);
        queue_refs_.erase(it);
      }
      return;
    }
  }
}

StatusOr<std::unique_ptr<hw::BlockDevice>> NvmfTarget::connect(
    fabric::NodeId client_node, uint32_t nsid) {
  auto queue = acquire_queue();
  if (!queue.ok()) return queue.status();
  auto view = ssd_.open_queue(nsid, *queue);
  return std::unique_ptr<hw::BlockDevice>(
      new RemoteDevice(*this, client_node, std::move(view), *queue));
}

}  // namespace nvmecr::nvmf
