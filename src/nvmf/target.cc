#include "nvmf/target.h"

#include <type_traits>

#include "obs/profile.h"
#include "simcore/profile.h"

namespace nvmecr::nvmf {

namespace {

using obs::EpochProfiler;

/// Initiator-side view of a remote namespace through one qpair.
///
/// Fast path (DESIGN.md §11): each IO used to suspend through three
/// separately awaited sub-tasks (request → ssd_view op → response),
/// costing three coroutine frames per op on the hottest path in the
/// whole simulation (the nvmf cost center is ~88% of e2e wall time).
/// The public ops are now plain functions that build ONE io_run frame
/// covering the entire exchange; the request/response halves are inlined
/// into it. The awaited timing sequence — and therefore the simulated
/// schedule — is identical; only host-side frame churn drops. The frame
/// pool (simcore/task.h) recycles that one frame per session, which is
/// what makes an explicit per-session scratch task unnecessary.
class RemoteDevice final : public hw::BlockDevice {
 public:
  RemoteDevice(NvmfTarget& target, fabric::NodeId client,
               std::unique_ptr<hw::BlockDevice> ssd_view, uint32_t queue_id)
      : target_(target),
        client_(client),
        ssd_view_(std::move(ssd_view)),
        queue_id_(queue_id) {}

  ~RemoteDevice() override { target_.release_queue(queue_id_); }

  uint64_t capacity() const override { return ssd_view_->capacity(); }
  uint32_t hw_block_size() const override {
    return ssd_view_->hw_block_size();
  }
  uint64_t tag_origin() const override { return ssd_view_->tag_origin(); }

  sim::Task<Status> write(uint64_t offset,
                          std::span<const std::byte> data) override {
    return io_run<Status>(Kind::kWrite, offset, data.size(), 0, 1, data, {});
  }

  sim::Task<Status> read(uint64_t offset, std::span<std::byte> out) override {
    return io_run<Status>(Kind::kRead, offset, out.size(), 0, 1, {}, out);
  }

  sim::Task<Status> write_tagged(uint64_t offset, uint64_t len,
                                 uint64_t seed) override {
    return io_run<Status>(Kind::kWriteTagged, offset, len, seed, 1, {}, {});
  }

  sim::Task<StatusOr<uint64_t>> read_tagged(uint64_t offset,
                                            uint64_t len) override {
    return io_run<StatusOr<uint64_t>>(Kind::kReadTagged, offset, len, 0, 1,
                                      {}, {});
  }

  sim::Task<Status> flush() override {
    return io_run<Status>(Kind::kFlush, 0, 0, 0, 1, {}, {});
  }

  sim::Task<Status> write_tagged_batch(uint64_t offset, uint64_t len,
                                       uint64_t seed,
                                       uint32_t subcmds) override {
    return io_run<Status>(Kind::kWriteTaggedBatch, offset, len, seed, subcmds,
                          {}, {});
  }

  sim::Task<StatusOr<uint64_t>> read_tagged_batch(uint64_t offset,
                                                  uint64_t len,
                                                  uint32_t subcmds) override {
    return io_run<StatusOr<uint64_t>>(Kind::kReadTaggedBatch, offset, len, 0,
                                      subcmds, {}, {});
  }

 private:
  enum class Kind : uint8_t {
    kWrite,
    kRead,
    kWriteTagged,
    kFlush,
    kWriteTaggedBatch,
    kReadTagged,      // tag-returning shape
    kReadTaggedBatch  // tag-returning shape
  };

  static const char* op_name(Kind kind) {
    switch (kind) {
      case Kind::kWrite:
      case Kind::kWriteTagged:
        return "write";
      case Kind::kRead:
      case Kind::kReadTagged:
        return "read";
      case Kind::kFlush:
        return "flush";
      case Kind::kWriteTaggedBatch:
        return "write_batch";
      case Kind::kReadTaggedBatch:
        return "read_batch";
    }
    return "?";
  }

  /// The whole NVMf exchange in one coroutine frame. R is Status for
  /// write/flush-shaped ops and StatusOr<uint64_t> for tag-returning
  /// reads; the error-combination rules per shape are unchanged from the
  /// old three-task version:
  ///   - request failure wins outright (the command never reached the
  ///     device);
  ///   - otherwise the response leg always runs (it closes the inflight
  ///     window), and a device error beats a response error for the
  ///     Status shape while a tag result is only displaced by a response
  ///     error when the device op itself succeeded.
  ///
  /// Inflight (qpair depth) accounting opens at the top; on a request
  /// failure it closes there too (the command is dead), otherwise the
  /// response half closes it. A crashed target daemon or a down link
  /// surfaces as kUnreachable / kTimedOut after the transport timeout —
  /// never as a hang.
  template <typename R>
  sim::Task<R> io_run(Kind kind, uint64_t offset, uint64_t len, uint64_t seed,
                      uint32_t count, std::span<const std::byte> wdata,
                      std::span<std::byte> rdata) {
    sim::Engine& eng = target_.engine();
    const NvmfParams& p = target_.params();
    const obs::Observer& obs = target_.observer();
    const SimTime t0 = eng.now();
    const bool is_read = kind == Kind::kRead || kind == Kind::kReadTagged ||
                         kind == Kind::kReadTaggedBatch;
    // Payload rides the request capsule for writes, the completion for
    // reads; batches pay per-subcommand wire overhead.
    const uint64_t req_bytes = p.command_bytes * count + (is_read ? 0 : len);
    const uint64_t resp_bytes =
        p.completion_bytes * count + (is_read ? len : 0);

    // --- request half: initiator CPU, capsule (+ inline data) to the
    // target, poll group. Resumptions scheduled inside the block dispatch
    // under the "nvmf" cost center; phase time goes to the rank stamped
    // by the caller.
    {
      sim::ProfileTagScope tag_scope(eng, target_.profile_tag());
      target_.command_begin(count);
      const SimDuration cpu = p.initiator_per_cmd * count;
      if (cpu > 0) co_await eng.delay(cpu);
      if (obs.epoch != nullptr) {
        obs.epoch->record(eng, EpochProfiler::Phase::kSerialize, cpu);
      }
      if (!target_.alive(eng.now())) {
        co_await eng.delay(target_.network().params().transport_timeout);
        target_.command_end(count);
        co_return UnreachableError("nvmf target on node " +
                                   std::to_string(target_.node()) + " down");
      }
      const SimTime xfer0 = eng.now();
      Status rq = co_await target_.network().try_transfer(
          client_, target_.node(), req_bytes);
      if (obs.epoch != nullptr) {
        obs.epoch->record(eng, EpochProfiler::Phase::kFabric,
                          eng.now() - xfer0);
      }
      if (!rq.ok()) {
        target_.command_end(count);
        co_return rq;
      }
      const SimTime cpu_done = target_.reserve_poll_group(eng.now(), count);
      if (obs.epoch != nullptr) {
        obs.epoch->record(eng, EpochProfiler::Phase::kTargetQueue,
                          cpu_done - eng.now());
      }
      // Inline the arbitration wait when the poll group is already free
      // (no backlog and no per-command cost): no reason to bounce through
      // the scheduler for a zero-length sleep.
      if (cpu_done > eng.now()) co_await eng.sleep_until(cpu_done);
      if (!target_.alive(eng.now())) {
        // The daemon died while the command sat in the poll group.
        co_await eng.delay(target_.network().params().transport_timeout);
        target_.command_end(count);
        co_return UnreachableError("nvmf target on node " +
                                   std::to_string(target_.node()) +
                                   " died processing command");
      }
    }

    // --- device op, under the SSD's own cost center ---
    Status dev = OkStatus();
    StatusOr<uint64_t> tag{uint64_t{0}};
    if constexpr (std::is_same_v<R, Status>) {
      switch (kind) {
        case Kind::kWrite:
          dev = co_await ssd_view_->write(offset, wdata);
          break;
        case Kind::kRead:
          dev = co_await ssd_view_->read(offset, rdata);
          break;
        case Kind::kWriteTagged:
          dev = co_await ssd_view_->write_tagged(offset, len, seed);
          break;
        case Kind::kFlush:
          dev = co_await ssd_view_->flush();
          break;
        default:
          dev = co_await ssd_view_->write_tagged_batch(offset, len, seed,
                                                       count);
          break;
      }
    } else if (kind == Kind::kReadTagged) {
      // Statement-level awaits on purpose: a co_await inside a ?: operand
      // puts the sub-task temporary inside a conditional full-expression,
      // which GCC 12 mishandles (the result copy aliases the dead frame).
      tag = co_await ssd_view_->read_tagged(offset, len);
    } else {
      tag = co_await ssd_view_->read_tagged_batch(offset, len, count);
    }

    // --- response half: completion (+ read data) back to the initiator.
    // Always closes the inflight window opened above.
    Status rs;
    {
      sim::ProfileTagScope tag_scope(eng, target_.profile_tag());
      if (!target_.alive(eng.now())) {
        co_await eng.delay(target_.network().params().transport_timeout);
        target_.command_end(count);
        rs = UnreachableError("nvmf target on node " +
                              std::to_string(target_.node()) +
                              " died before completing");
      } else {
        const SimTime xfer0 = eng.now();
        rs = co_await target_.network().try_transfer(target_.node(), client_,
                                                     resp_bytes);
        if (obs.epoch != nullptr) {
          obs.epoch->record(eng, EpochProfiler::Phase::kFabric,
                            eng.now() - xfer0);
        }
        target_.command_end(count);
      }
    }
    target_.record_op_span(op_name(kind), t0, len);
    if constexpr (std::is_same_v<R, Status>) {
      if (!dev.ok()) co_return dev;
      co_return rs;
    } else {
      if (tag.ok() && !rs.ok()) co_return rs;
      co_return tag;
    }
  }

  NvmfTarget& target_;
  fabric::NodeId client_;
  std::unique_ptr<hw::BlockDevice> ssd_view_;
  uint32_t queue_id_;
};

}  // namespace

NvmfTarget::NvmfTarget(sim::Engine& engine, fabric::Network& network,
                       fabric::NodeId node, hw::NvmeSsd& ssd,
                       NvmfParams params)
    : engine_(engine),
      network_(network),
      node_(node),
      ssd_(ssd),
      params_(params),
      poll_groups_(engine,
                   params.target_per_cmd > 0
                       ? params.target_cores * kSecond /
                             static_cast<uint64_t>(params.target_per_cmd)
                       : 0),
      compute_(engine, static_cast<uint64_t>(params.offload_cores) * kSecond) {}

SimTime NvmfTarget::reserve_compute(SimTime arrival, SimDuration work_ns) {
  if (work_ns <= 0) return arrival;
  compute_busy_ns_ += static_cast<uint64_t>(work_ns);
  const SimTime done =
      compute_.reserve_after(arrival, static_cast<uint64_t>(work_ns));
  if (m_offload_busy_ != nullptr) {
    m_offload_busy_->add(static_cast<uint64_t>(work_ns));
  }
  return done;
}

sim::Task<StatusOr<uint32_t>> NvmfTarget::negotiate_offload(
    fabric::NodeId client_node, uint32_t requested) {
  sim::ProfileTagScope tag_scope(engine_, profile_tag_);
  co_await engine_.delay(params_.initiator_per_cmd);
  if (!alive(engine_.now())) {
    co_await engine_.delay(network_.params().transport_timeout);
    co_return UnreachableError("nvmf target on node " + std::to_string(node_) +
                               " down (offload negotiation)");
  }
  Status s =
      co_await network_.try_transfer(client_node, node_, params_.command_bytes);
  if (!s.ok()) co_return s;
  co_await engine_.sleep_until(reserve_poll_group(engine_.now()));
  if (!alive(engine_.now())) {
    co_await engine_.delay(network_.params().transport_timeout);
    co_return UnreachableError("nvmf target on node " + std::to_string(node_) +
                               " died negotiating offload");
  }
  s = co_await network_.try_transfer(node_, client_node,
                                     params_.completion_bytes);
  if (!s.ok()) co_return s;
  co_return requested & params_.offload_caps;
}

SimTime NvmfTarget::reserve_poll_group(SimTime arrival, uint32_t count) {
  commands_processed_ += count;
  const SimTime done = poll_groups_.reserve_after(arrival, count);
  if (m_cmds_ != nullptr) m_cmds_->add(count);
  if (m_poll_backlog_ != nullptr) {
    m_poll_backlog_->set(engine_.now(),
                         static_cast<double>(poll_groups_.backlog()));
  }
  return done;
}

void NvmfTarget::set_observer(const obs::Observer& o) {
  obs_ = o;
  trace_track_ = "nvmf/node" + std::to_string(node_);
  m_cmds_ = nullptr;
  m_offload_busy_ = nullptr;
  m_inflight_ = nullptr;
  m_poll_backlog_ = nullptr;
  profile_tag_ = engine_.profile_tag("nvmf");
  offload_tag_ = engine_.profile_tag("nvmf/offload");
  if (obs_.metrics == nullptr) return;
  const std::string prefix = "nvmf.node" + std::to_string(node_) + ".";
  m_cmds_ = obs_.metrics->counter(prefix + "commands");
  m_offload_busy_ = obs_.metrics->counter(prefix + "offload_busy_ns");
  m_inflight_ = obs_.metrics->gauge(prefix + "qpair_depth");
  m_poll_backlog_ = obs_.metrics->gauge(prefix + "poll_backlog_ns");
}

void NvmfTarget::command_begin(uint32_t count) {
  inflight_ += count;
  if (m_inflight_ != nullptr) {
    m_inflight_->set(engine_.now(), static_cast<double>(inflight_));
  }
}

void NvmfTarget::command_end(uint32_t count) {
  inflight_ = inflight_ >= count ? inflight_ - count : 0;
  if (m_inflight_ != nullptr) {
    m_inflight_->set(engine_.now(), static_cast<double>(inflight_));
  }
}

void NvmfTarget::record_op_span(const char* name, SimTime start,
                                uint64_t bytes) {
  if (obs_.trace == nullptr) return;
  obs_.trace->add_span(trace_track_, name, start, engine_.now(),
                       {{"bytes", static_cast<double>(bytes)}});
}

StatusOr<uint32_t> NvmfTarget::acquire_queue() {
  auto queue = ssd_.alloc_queue();
  if (queue.ok()) {
    queue_refs_.emplace_back(*queue, 1);
    return *queue;
  }
  if (queue_refs_.empty()) return queue.status();
  // Budget exhausted: share an existing queue round-robin.
  auto& [qid, refs] = queue_refs_[next_shared_ % queue_refs_.size()];
  ++next_shared_;
  ++refs;
  return qid;
}

void NvmfTarget::release_queue(uint32_t queue_id) {
  for (auto it = queue_refs_.begin(); it != queue_refs_.end(); ++it) {
    if (it->first == queue_id) {
      if (--it->second == 0) {
        ssd_.free_queue(queue_id);
        queue_refs_.erase(it);
      }
      return;
    }
  }
}

StatusOr<std::unique_ptr<hw::BlockDevice>> NvmfTarget::connect(
    fabric::NodeId client_node, uint32_t nsid) {
  auto queue = acquire_queue();
  if (!queue.ok()) return queue.status();
  auto view = ssd_.open_queue(nsid, *queue);
  return std::unique_ptr<hw::BlockDevice>(
      new RemoteDevice(*this, client_node, std::move(view), *queue));
}

}  // namespace nvmecr::nvmf
