// Minimal leveled diagnostic logging. Off by default so bench output stays
// clean; enable with NVMECR_LOG=debug|info|warn in the environment.
//
// When a simulation is running, the owning Cluster installs a time source
// (log_set_time_source) so every line is prefixed with the sim clock, e.g.
//   [12.345ms] [WARN] [oplog] ring full, forcing hugeblock flush
// which lets log lines be correlated with trace spans. The tagged macros
// NVMECR_SLOG_* additionally name the emitting subsystem.
#pragma once

#include <cstdarg>
#include <cstdint>
#include <cstdio>

namespace nvmecr {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kOff = 3 };

/// Current threshold, parsed once from $NVMECR_LOG.
LogLevel log_threshold();

/// Clock callback returning the current sim time in nanoseconds. A plain
/// C function pointer (not std::function) so common/ stays free of any
/// dependency on simcore; the installer passes an opaque context.
using LogTimeSourceFn = uint64_t (*)(const void* ctx);

/// Installs (or with fn == nullptr, removes) the timestamp source used to
/// prefix log lines. `ctx` is handed back to `fn` verbatim.
void log_set_time_source(LogTimeSourceFn fn, const void* ctx);

/// The context currently installed (nullptr if none). Lets an owner clear
/// the source only if it is still its own (nested clusters).
const void* log_time_source_ctx();

/// printf-style log statement; no-op below the threshold. `subsystem` is
/// an optional tag printed after the level (nullptr to omit).
void log_message_tagged(LogLevel level, const char* subsystem, const char* fmt,
                        ...) __attribute__((format(printf, 3, 4)));

#define NVMECR_LOG_DEBUG(...) \
  ::nvmecr::log_message_tagged(::nvmecr::LogLevel::kDebug, nullptr, __VA_ARGS__)
#define NVMECR_LOG_INFO(...) \
  ::nvmecr::log_message_tagged(::nvmecr::LogLevel::kInfo, nullptr, __VA_ARGS__)
#define NVMECR_LOG_WARN(...) \
  ::nvmecr::log_message_tagged(::nvmecr::LogLevel::kWarn, nullptr, __VA_ARGS__)

// Subsystem-tagged variants: NVMECR_SLOG_WARN("oplog", "ring full ...").
#define NVMECR_SLOG_DEBUG(subsystem, ...) \
  ::nvmecr::log_message_tagged(::nvmecr::LogLevel::kDebug, subsystem, __VA_ARGS__)
#define NVMECR_SLOG_INFO(subsystem, ...) \
  ::nvmecr::log_message_tagged(::nvmecr::LogLevel::kInfo, subsystem, __VA_ARGS__)
#define NVMECR_SLOG_WARN(subsystem, ...) \
  ::nvmecr::log_message_tagged(::nvmecr::LogLevel::kWarn, subsystem, __VA_ARGS__)

}  // namespace nvmecr
