// Minimal leveled diagnostic logging. Off by default so bench output stays
// clean; enable with NVMECR_LOG=debug|info|warn in the environment.
#pragma once

#include <cstdarg>
#include <cstdio>

namespace nvmecr {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kOff = 3 };

/// Current threshold, parsed once from $NVMECR_LOG.
LogLevel log_threshold();

/// printf-style log statement; no-op below the threshold.
void log_message(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

#define NVMECR_LOG_DEBUG(...) \
  ::nvmecr::log_message(::nvmecr::LogLevel::kDebug, __VA_ARGS__)
#define NVMECR_LOG_INFO(...) \
  ::nvmecr::log_message(::nvmecr::LogLevel::kInfo, __VA_ARGS__)
#define NVMECR_LOG_WARN(...) \
  ::nvmecr::log_message(::nvmecr::LogLevel::kWarn, __VA_ARGS__)

}  // namespace nvmecr
