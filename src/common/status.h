// Lightweight Status / StatusOr error-handling kit.
//
// The runtime avoids exceptions on IO paths (run-to-completion pipelines,
// see microfs Principle 1); fallible operations return Status or
// StatusOr<T>. Fatal programming errors abort via NVMECR_CHECK.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace nvmecr {

/// Error categories, deliberately close to errno names so the POSIX shim
/// can map them 1:1 onto errno values.
enum class ErrorCode : int {
  kOk = 0,
  kNotFound,       // ENOENT
  kExists,         // EEXIST
  kInvalidArgument,// EINVAL
  kNoSpace,        // ENOSPC
  kNotDirectory,   // ENOTDIR
  kIsDirectory,    // EISDIR
  kBadFd,          // EBADF
  kPermission,     // EACCES
  kNotEmpty,       // ENOTEMPTY
  kNameTooLong,    // ENAMETOOLONG
  kIoError,        // EIO
  kCorruption,     // data integrity check failed
  kUnavailable,    // resource (queue/namespace) exhausted
  kTimedOut,       // ETIMEDOUT: IO or transport deadline elapsed
  kUnreachable,    // EHOSTUNREACH: remote target not responding
  kDeadlineExceeded, // run exceeded its wall deadline (hang detector)
  kInternal,       // invariant violation
};

/// True for transient transport-class failures the initiator may retry
/// (timeout, unreachable target, exhausted-but-recoverable resource);
/// false for fatal classes (corruption, IO error, bad arguments) where a
/// retry would repeat the failure or mask data loss.
inline bool is_retryable(ErrorCode code) {
  return code == ErrorCode::kTimedOut || code == ErrorCode::kUnreachable ||
         code == ErrorCode::kUnavailable;
}

/// Returns the canonical string for an ErrorCode (e.g. "NOT_FOUND").
std::string_view error_code_name(ErrorCode code);

/// Value-semantic status: an ErrorCode plus an optional message.
/// The OK status carries no allocation.
class Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string.
  std::string to_string() const {
    if (ok()) return "OK";
    std::string s(error_code_name(code_));
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }

#define NVMECR_DEFINE_ERROR_FACTORY(Name, Code)              \
  inline Status Name(std::string message = {}) {             \
    return Status(ErrorCode::Code, std::move(message));      \
  }

NVMECR_DEFINE_ERROR_FACTORY(NotFoundError, kNotFound)
NVMECR_DEFINE_ERROR_FACTORY(ExistsError, kExists)
NVMECR_DEFINE_ERROR_FACTORY(InvalidArgumentError, kInvalidArgument)
NVMECR_DEFINE_ERROR_FACTORY(NoSpaceError, kNoSpace)
NVMECR_DEFINE_ERROR_FACTORY(NotDirectoryError, kNotDirectory)
NVMECR_DEFINE_ERROR_FACTORY(IsDirectoryError, kIsDirectory)
NVMECR_DEFINE_ERROR_FACTORY(BadFdError, kBadFd)
NVMECR_DEFINE_ERROR_FACTORY(PermissionError, kPermission)
NVMECR_DEFINE_ERROR_FACTORY(NotEmptyError, kNotEmpty)
NVMECR_DEFINE_ERROR_FACTORY(NameTooLongError, kNameTooLong)
NVMECR_DEFINE_ERROR_FACTORY(IoError, kIoError)
NVMECR_DEFINE_ERROR_FACTORY(CorruptionError, kCorruption)
NVMECR_DEFINE_ERROR_FACTORY(UnavailableError, kUnavailable)
NVMECR_DEFINE_ERROR_FACTORY(TimedOutError, kTimedOut)
NVMECR_DEFINE_ERROR_FACTORY(UnreachableError, kUnreachable)
NVMECR_DEFINE_ERROR_FACTORY(DeadlineExceededError, kDeadlineExceeded)
NVMECR_DEFINE_ERROR_FACTORY(InternalError, kInternal)

#undef NVMECR_DEFINE_ERROR_FACTORY

/// Either a T or a non-OK Status. Access to value() on error aborts.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : repr_(std::move(status)) {}  // NOLINT
  StatusOr(T value) : repr_(std::move(value)) {}         // NOLINT

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(repr_);
  }

  T& value() & {
    check_ok();
    return std::get<T>(repr_);
  }
  const T& value() const& {
    check_ok();
    return std::get<T>(repr_);
  }
  T&& value() && {
    check_ok();
    return std::get<T>(std::move(repr_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  void check_ok() const {
    if (!ok()) {
      std::fprintf(stderr, "StatusOr::value() on error: %s\n",
                   std::get<Status>(repr_).to_string().c_str());
      std::abort();
    }
  }

  std::variant<Status, T> repr_;
};

/// Fatal invariant check; always on (cheap compared to simulated IO).
#define NVMECR_CHECK(cond)                                                  \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,         \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

/// Propagate a non-OK Status from an expression returning Status.
#define NVMECR_RETURN_IF_ERROR(expr)              \
  do {                                            \
    ::nvmecr::Status _st = (expr);                \
    if (!_st.ok()) return _st;                    \
  } while (0)

/// Coroutine variant: co_returns the Status (a plain `return` is illegal
/// inside a coroutine body).
#define NVMECR_CO_RETURN_IF_ERROR(expr)           \
  do {                                            \
    ::nvmecr::Status _st = (expr);                \
    if (!_st.ok()) co_return _st;                 \
  } while (0)

/// Assign the value of a StatusOr expression or propagate its Status.
#define NVMECR_ASSIGN_OR_RETURN(lhs, expr)        \
  auto NVMECR_CONCAT_(_sor, __LINE__) = (expr);   \
  if (!NVMECR_CONCAT_(_sor, __LINE__).ok())       \
    return NVMECR_CONCAT_(_sor, __LINE__).status(); \
  lhs = std::move(NVMECR_CONCAT_(_sor, __LINE__)).value()

#define NVMECR_CONCAT_IMPL_(a, b) a##b
#define NVMECR_CONCAT_(a, b) NVMECR_CONCAT_IMPL_(a, b)

}  // namespace nvmecr
