// Fixed-width ASCII table printer for bench binaries: every figure/table
// reproduction prints its rows through this so output stays uniform.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace nvmecr {

/// Collects rows of string cells and prints an aligned table with a
/// header rule. Cells are right-aligned except the first column.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Convenience: formats a double with the given precision.
  static std::string num(double v, int precision = 2) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
  }
  static std::string num(uint64_t v) { return std::to_string(v); }
  static std::string num(uint32_t v) { return std::to_string(v); }
  static std::string num(int64_t v) { return std::to_string(v); }
  static std::string num(int v) { return std::to_string(v); }

  void print(FILE* out = stdout) const {
    std::vector<size_t> width(header_.size());
    for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = row[c].size() > width[c] ? row[c].size() : width[c];
      }
    }
    print_row(out, header_, width);
    std::string rule;
    for (size_t c = 0; c < width.size(); ++c) {
      rule += std::string(width[c] + 2, '-');
      if (c + 1 < width.size()) rule += "+";
    }
    std::fprintf(out, "%s\n", rule.c_str());
    for (const auto& row : rows_) print_row(out, row, width);
  }

 private:
  static void print_row(FILE* out, const std::vector<std::string>& row,
                        const std::vector<size_t>& width) {
    for (size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : empty_();
      if (c == 0) {
        std::fprintf(out, " %-*s ", static_cast<int>(width[c]), cell.c_str());
      } else {
        std::fprintf(out, " %*s ", static_cast<int>(width[c]), cell.c_str());
      }
      if (c + 1 < width.size()) std::fputc('|', out);
    }
    std::fputc('\n', out);
  }
  static const std::string& empty_() {
    static const std::string kEmpty;
    return kEmpty;
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a bench section banner (figure/table id + description).
inline void print_banner(const char* id, const char* description) {
  std::printf("\n=== %s — %s ===\n", id, description);
}

}  // namespace nvmecr
