// Streaming and batch statistics used by the metrics layer:
// mean, stdev, coefficient of variation (Figure 7(b)), percentiles.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace nvmecr {

/// Welford streaming accumulator: numerically stable mean/variance without
/// storing samples. Used for per-server load and latency aggregation.
class StreamingStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
    sum_ += x;
  }

  uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Population variance (the paper reports CoV over the fixed set of
  /// storage servers, a population, not a sample).
  double variance() const { return n_ ? m2_ / static_cast<double>(n_) : 0.0; }
  double stdev() const { return std::sqrt(variance()); }

  /// Coefficient of variation = stdev / mean; 0 when mean is 0.
  double cov() const {
    const double m = mean();
    return m != 0.0 ? stdev() / m : 0.0;
  }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Batch sample set with percentile queries (sorts lazily on demand).
class Samples {
 public:
  void add(double x) {
    xs_.push_back(x);
    sorted_ = false;
  }
  size_t size() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }

  double mean() const {
    if (xs_.empty()) return 0.0;
    double s = 0.0;
    for (double x : xs_) s += x;
    return s / static_cast<double>(xs_.size());
  }

  double stdev() const {
    if (xs_.size() < 2) return 0.0;
    const double m = mean();
    double s = 0.0;
    for (double x : xs_) s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(xs_.size()));
  }

  double cov() const {
    const double m = mean();
    return m != 0.0 ? stdev() / m : 0.0;
  }

  /// Percentile in [0, 100] by nearest-rank on the sorted samples.
  /// Const: the lazy sort is an internal caching detail (mutable), so
  /// read-only snapshots can query percentiles.
  double percentile(double p) const {
    if (xs_.empty()) return 0.0;
    ensure_sorted();
    const double rank = p / 100.0 * static_cast<double>(xs_.size() - 1);
    const auto lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, xs_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return xs_[lo] * (1.0 - frac) + xs_[hi] * frac;
  }

  double min() const {
    ensure_sorted();
    return xs_.empty() ? 0.0 : xs_.front();
  }
  double max() const {
    ensure_sorted();
    return xs_.empty() ? 0.0 : xs_.back();
  }

  const std::vector<double>& values() const { return xs_; }

 private:
  void ensure_sorted() const {
    if (!sorted_) {
      std::sort(xs_.begin(), xs_.end());
      sorted_ = true;
    }
  }
  /// Mutable: sorting reorders but never changes the sample multiset, so
  /// the observable state of a const Samples is unchanged.
  mutable std::vector<double> xs_;
  mutable bool sorted_ = true;
};

}  // namespace nvmecr
