// Size and time units used throughout the runtime and the simulation.
//
// Simulated time is kept in integer nanoseconds (SimTime). Bandwidths are
// bytes/second. Helper literals keep device specs readable:
//   32_KiB, 2_GiB, 10_us, 2500_MBps ...
#pragma once

#include <cstdint>

namespace nvmecr {

/// Simulated time in nanoseconds since engine start.
using SimTime = int64_t;
/// Simulated duration in nanoseconds.
using SimDuration = int64_t;

inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1000;
inline constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;

namespace literals {

constexpr uint64_t operator""_KiB(unsigned long long v) { return v << 10; }
constexpr uint64_t operator""_MiB(unsigned long long v) { return v << 20; }
constexpr uint64_t operator""_GiB(unsigned long long v) { return v << 30; }

constexpr SimDuration operator""_ns(unsigned long long v) { return static_cast<SimDuration>(v); }
constexpr SimDuration operator""_us(unsigned long long v) { return static_cast<SimDuration>(v) * kMicrosecond; }
constexpr SimDuration operator""_ms(unsigned long long v) { return static_cast<SimDuration>(v) * kMillisecond; }
constexpr SimDuration operator""_s(unsigned long long v) { return static_cast<SimDuration>(v) * kSecond; }

/// Bandwidth literals in bytes per second (decimal, as vendors quote).
constexpr uint64_t operator""_MBps(unsigned long long v) { return v * 1000ull * 1000ull; }
constexpr uint64_t operator""_GBps(unsigned long long v) { return v * 1000ull * 1000ull * 1000ull; }

}  // namespace literals

/// Duration of transferring `bytes` at `bytes_per_sec`, rounded up to 1 ns.
/// A zero rate is treated as infinitely fast (0 ns), used by instant
/// (non-simulated) devices.
constexpr SimDuration transfer_time(uint64_t bytes, uint64_t bytes_per_sec) {
  if (bytes_per_sec == 0 || bytes == 0) return 0;
  // ns = bytes * 1e9 / rate, computed in 128-bit to avoid overflow for
  // multi-TiB transfers.
  const auto ns = static_cast<__int128>(bytes) * kSecond / bytes_per_sec;
  return ns > 0 ? static_cast<SimDuration>(ns) : 1;
}

/// Seconds as double, for reporting.
constexpr double to_seconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Bandwidth in bytes/sec given bytes moved over a simulated duration.
constexpr double bandwidth_bps(uint64_t bytes, SimDuration d) {
  if (d <= 0) return 0.0;
  return static_cast<double>(bytes) / to_seconds(d);
}

constexpr double to_gib(uint64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0);
}
constexpr double to_mib(uint64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

/// Integer ceiling division.
constexpr uint64_t ceil_div(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

/// Round `v` up to a multiple of `align` (align must be nonzero).
constexpr uint64_t round_up(uint64_t v, uint64_t align) {
  return ceil_div(v, align) * align;
}

}  // namespace nvmecr
