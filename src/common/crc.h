// CRC64 (ECMA-182, reflected — the CRC-64/XZ parameterization) used by
// the payload store to summarize block contents so multi-hundred-GB
// simulated checkpoints fit in host memory while reads remain
// verifiable, and by the oplog/state-checkpoint codecs for corruption
// detection.
//
// Hot path: sliced table lookups — sixteen compile-time 256-entry
// tables let the loop consume 16 bytes per iteration ("slice-by-16",
// the same scheme xz/zlib-ng use) instead of one table lookup per byte
// (~5-10x on typical hosts; see bench/perf_suite "crc64"). The tables
// are constexpr so they live in .rodata and cost nothing at startup.
// Results are bit-identical to the byte-at-a-time reference, which is
// kept for tests and benchmarking.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace nvmecr {

namespace detail {

inline constexpr uint64_t kCrc64Poly = 0xC96C5795D7870F42ull;  // reflected

using Crc64Tables = std::array<std::array<uint64_t, 256>, 16>;

consteval Crc64Tables make_crc64_tables() {
  Crc64Tables t{};
  for (uint64_t i = 0; i < 256; ++i) {
    uint64_t crc = i;
    for (int b = 0; b < 8; ++b) {
      crc = (crc >> 1) ^ ((crc & 1) ? kCrc64Poly : 0);
    }
    t[0][i] = crc;
  }
  // t[k][i]: CRC of byte i followed by k zero bytes — byte j of a
  // 16-byte group is looked up in t[15-j], so one lookup per input byte
  // covers the whole group.
  for (size_t k = 1; k < t.size(); ++k) {
    for (int i = 0; i < 256; ++i) {
      t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xff];
    }
  }
  return t;
}

/// Endian-independent little-endian 8-byte load (a single MOV on LE
/// targets).
inline uint64_t load_le64(const unsigned char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  if constexpr (std::endian::native == std::endian::big) {
    v = __builtin_bswap64(v);
  }
  return v;
}

inline constexpr Crc64Tables kCrc64Tables = make_crc64_tables();

/// Byte-at-a-time reference implementation. Kept as the ground truth for
/// the slice-by-8 equivalence test and as the perf_suite baseline; use
/// crc64() everywhere else.
inline uint64_t crc64_reference(const void* data, size_t len,
                                uint64_t seed = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  const auto& table = kCrc64Tables[0];
  uint64_t crc = ~seed;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace detail

/// One-shot CRC64 of a buffer (slice-by-16).
inline uint64_t crc64(const void* data, size_t len, uint64_t seed = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  const auto& t = detail::kCrc64Tables;
  uint64_t crc = ~seed;
  while (len >= 16) {
    // The running CRC folds into the first word; the second word's
    // lookups are independent of it, which doubles the bytes retired per
    // step of the serial dependency chain.
    const uint64_t a = crc ^ detail::load_le64(p);
    const uint64_t b = detail::load_le64(p + 8);
    crc = t[15][a & 0xff] ^ t[14][(a >> 8) & 0xff] ^
          t[13][(a >> 16) & 0xff] ^ t[12][(a >> 24) & 0xff] ^
          t[11][(a >> 32) & 0xff] ^ t[10][(a >> 40) & 0xff] ^
          t[9][(a >> 48) & 0xff] ^ t[8][a >> 56] ^
          t[7][b & 0xff] ^ t[6][(b >> 8) & 0xff] ^
          t[5][(b >> 16) & 0xff] ^ t[4][(b >> 24) & 0xff] ^
          t[3][(b >> 32) & 0xff] ^ t[2][(b >> 40) & 0xff] ^
          t[1][(b >> 48) & 0xff] ^ t[0][b >> 56];
    p += 16;
    len -= 16;
  }
  if (len >= 8) {
    const uint64_t a = crc ^ detail::load_le64(p);
    crc = t[7][a & 0xff] ^ t[6][(a >> 8) & 0xff] ^
          t[5][(a >> 16) & 0xff] ^ t[4][(a >> 24) & 0xff] ^
          t[3][(a >> 32) & 0xff] ^ t[2][(a >> 40) & 0xff] ^
          t[1][(a >> 48) & 0xff] ^ t[0][a >> 56];
    p += 8;
    len -= 8;
  }
  while (len-- > 0) {
    crc = t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace nvmecr
