// CRC64 (ECMA-182, reflected) used by the payload store to summarize block
// contents so multi-hundred-GB simulated checkpoints fit in host memory
// while reads remain verifiable.
#pragma once

#include <cstddef>
#include <cstdint>

namespace nvmecr {

namespace detail {
// Table generated at first use from the reflected ECMA-182 polynomial.
inline const uint64_t* crc64_table() {
  static uint64_t table[256];
  static bool init = [] {
    constexpr uint64_t poly = 0xC96C5795D7870F42ull;  // reflected ECMA-182
    for (uint64_t i = 0; i < 256; ++i) {
      uint64_t crc = i;
      for (int b = 0; b < 8; ++b) {
        crc = (crc >> 1) ^ ((crc & 1) ? poly : 0);
      }
      table[i] = crc;
    }
    return true;
  }();
  (void)init;
  return table;
}
}  // namespace detail

/// One-shot CRC64 of a buffer.
inline uint64_t crc64(const void* data, size_t len, uint64_t seed = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  const uint64_t* table = detail::crc64_table();
  uint64_t crc = ~seed;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace nvmecr
