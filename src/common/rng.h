// Deterministic random number generation.
//
// Every stochastic choice in the simulation draws from a SplitMix64-seeded
// xoshiro256** stream so that runs are bit-reproducible for a given seed.
#pragma once

#include <cstdint>

namespace nvmecr {

/// SplitMix64: used to expand a single seed into stream state.
inline uint64_t splitmix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Small, fast, and good enough for workload jitter and
/// placement hashing; not for cryptography.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9d2c5680u) {
    uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  uint64_t next() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be nonzero.
  uint64_t uniform(uint64_t n) { return next() % n; }

  /// Uniform in [lo, hi].
  uint64_t uniform(uint64_t lo, uint64_t hi) {
    return lo + uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Multiplicative jitter in [1-frac, 1+frac].
  double jitter(double frac) { return 1.0 + frac * (2.0 * uniform01() - 1.0); }

 private:
  static constexpr uint64_t rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t s_[4];
};

/// 64-bit avalanche hash (Murmur3 finalizer); used for consistent hashing
/// in the GlusterFS-like placement model.
inline uint64_t mix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdull;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ull;
  k ^= k >> 33;
  return k;
}

/// FNV-1a over a byte string; stable across runs/platforms.
inline uint64_t fnv1a(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace nvmecr
