#include "common/status.h"

namespace nvmecr {

std::string_view error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kExists: return "EXISTS";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kNoSpace: return "NO_SPACE";
    case ErrorCode::kNotDirectory: return "NOT_DIRECTORY";
    case ErrorCode::kIsDirectory: return "IS_DIRECTORY";
    case ErrorCode::kBadFd: return "BAD_FD";
    case ErrorCode::kPermission: return "PERMISSION";
    case ErrorCode::kNotEmpty: return "NOT_EMPTY";
    case ErrorCode::kNameTooLong: return "NAME_TOO_LONG";
    case ErrorCode::kIoError: return "IO_ERROR";
    case ErrorCode::kCorruption: return "CORRUPTION";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kTimedOut: return "TIMED_OUT";
    case ErrorCode::kUnreachable: return "UNREACHABLE";
    case ErrorCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case ErrorCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

}  // namespace nvmecr
