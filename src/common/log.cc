#include "common/log.h"

#include <cstdlib>
#include <cstring>

namespace nvmecr {

LogLevel log_threshold() {
  static const LogLevel level = [] {
    const char* env = std::getenv("NVMECR_LOG");
    if (env == nullptr) return LogLevel::kOff;
    if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
    if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
    if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
    return LogLevel::kOff;
  }();
  return level;
}

void log_message(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < static_cast<int>(log_threshold())) return;
  static const char* names[] = {"DEBUG", "INFO", "WARN"};
  std::fprintf(stderr, "[%s] ", names[static_cast<int>(level)]);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace nvmecr
