#include "common/log.h"

#include <cstdlib>
#include <cstring>

namespace nvmecr {

LogLevel log_threshold() {
  static const LogLevel level = [] {
    const char* env = std::getenv("NVMECR_LOG");
    if (env == nullptr) return LogLevel::kOff;
    if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
    if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
    if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
    return LogLevel::kOff;
  }();
  return level;
}

namespace {
LogTimeSourceFn g_time_fn = nullptr;
const void* g_time_ctx = nullptr;
}  // namespace

void log_set_time_source(LogTimeSourceFn fn, const void* ctx) {
  g_time_fn = fn;
  g_time_ctx = fn != nullptr ? ctx : nullptr;
}

const void* log_time_source_ctx() { return g_time_ctx; }

void log_message_tagged(LogLevel level, const char* subsystem, const char* fmt,
                        ...) {
  if (static_cast<int>(level) < static_cast<int>(log_threshold())) return;
  static const char* names[] = {"DEBUG", "INFO", "WARN"};
  if (g_time_fn != nullptr) {
    const double ms = static_cast<double>(g_time_fn(g_time_ctx)) / 1e6;
    std::fprintf(stderr, "[%.3fms] ", ms);
  }
  std::fprintf(stderr, "[%s] ", names[static_cast<int>(level)]);
  if (subsystem != nullptr) std::fprintf(stderr, "[%s] ", subsystem);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace nvmecr
