// Little-endian binary encoder/decoder for microfs on-device structures
// (operation log records, directory entries, internal state checkpoints).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace nvmecr::microfs {

class Encoder {
 public:
  explicit Encoder(std::vector<std::byte>& out) : out_(out) {}

  void u8(uint8_t v) { raw(&v, 1); }
  void u32(uint32_t v) { raw(&v, 4); }
  void u64(uint64_t v) { raw(&v, 8); }
  void str(std::string_view s) {
    u32(static_cast<uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
  void bytes(std::span<const std::byte> b) {
    u64(b.size());
    out_.insert(out_.end(), b.begin(), b.end());
  }
  size_t size() const { return out_.size(); }

 private:
  void raw(const void* p, size_t n) {
    const auto* b = static_cast<const std::byte*>(p);
    out_.insert(out_.end(), b, b + n);
  }
  std::vector<std::byte>& out_;
};

class Decoder {
 public:
  explicit Decoder(std::span<const std::byte> in) : in_(in) {}

  Status u8(uint8_t& v) { return raw(&v, 1); }
  Status u32(uint32_t& v) { return raw(&v, 4); }
  Status u64(uint64_t& v) { return raw(&v, 8); }
  Status str(std::string& s) {
    uint32_t n = 0;
    NVMECR_RETURN_IF_ERROR(u32(n));
    if (pos_ + n > in_.size()) return CorruptionError("string overruns buffer");
    s.assign(reinterpret_cast<const char*>(in_.data() + pos_), n);
    pos_ += n;
    return OkStatus();
  }
  size_t consumed() const { return pos_; }
  size_t remaining() const { return in_.size() - pos_; }

 private:
  Status raw(void* p, size_t n) {
    if (pos_ + n > in_.size()) return CorruptionError("decode overruns buffer");
    std::memcpy(p, in_.data() + pos_, n);
    pos_ += n;
    return OkStatus();
  }
  std::span<const std::byte> in_;
  size_t pos_ = 0;
};

}  // namespace nvmecr::microfs
