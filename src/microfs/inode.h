// Inodes and the DRAM inode table (§III-E "POSIX Semantics", "Metadata
// Provenance": metadata lives entirely in compute-node DRAM; durability
// comes from the operation log, not from writing inodes to the device).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "microfs/codec.h"

namespace nvmecr::microfs {

using Ino = uint64_t;
inline constexpr Ino kRootIno = 1;
inline constexpr Ino kInvalidIno = 0;

enum class InodeType : uint8_t { kFile = 0, kDirectory = 1 };

/// What kind of payload a file holds; byte and tagged IO cannot mix
/// within one file (tagged content is pattern-defined, see PayloadStore).
enum class ContentKind : uint8_t { kNone = 0, kBytes = 1, kTagged = 2 };

struct Inode {
  Ino ino = kInvalidIno;
  InodeType type = InodeType::kFile;
  uint32_t mode = 0644;
  uint32_t uid = 0;
  uint64_t size = 0;
  /// Pattern seed for tagged content (whole-file identity).
  uint64_t seed = 0;
  ContentKind content = ContentKind::kNone;
  /// Hugeblock indexes, one per hugeblock_size of file extent.
  std::vector<uint64_t> blocks;

  void serialize(Encoder& enc) const {
    enc.u64(ino);
    enc.u8(static_cast<uint8_t>(type));
    enc.u32(mode);
    enc.u32(uid);
    enc.u64(size);
    enc.u64(seed);
    enc.u8(static_cast<uint8_t>(content));
    enc.u64(blocks.size());
    for (uint64_t b : blocks) enc.u64(b);
  }

  Status deserialize(Decoder& dec) {
    uint8_t t = 0, c = 0;
    uint64_t nblocks = 0;
    NVMECR_RETURN_IF_ERROR(dec.u64(ino));
    NVMECR_RETURN_IF_ERROR(dec.u8(t));
    NVMECR_RETURN_IF_ERROR(dec.u32(mode));
    NVMECR_RETURN_IF_ERROR(dec.u32(uid));
    NVMECR_RETURN_IF_ERROR(dec.u64(size));
    NVMECR_RETURN_IF_ERROR(dec.u64(seed));
    NVMECR_RETURN_IF_ERROR(dec.u8(c));
    NVMECR_RETURN_IF_ERROR(dec.u64(nblocks));
    if (t > 1 || c > 2) return CorruptionError("bad inode enums");
    type = static_cast<InodeType>(t);
    content = static_cast<ContentKind>(c);
    blocks.resize(nblocks);
    for (auto& b : blocks) NVMECR_RETURN_IF_ERROR(dec.u64(b));
    return OkStatus();
  }
};

/// DRAM inode table with deterministic id assignment (replay-stable).
class InodeTable {
 public:
  /// Allocates the next inode number and default-initializes the inode.
  Inode& alloc(InodeType type) {
    const Ino ino = next_ino_++;
    Inode& inode = inodes_[ino];
    inode.ino = ino;
    inode.type = type;
    return inode;
  }

  /// Inserts an inode with a specific id (log replay path). The id must
  /// be unused; next_ino advances past it.
  StatusOr<Inode*> insert_with_ino(Ino ino, InodeType type) {
    auto [it, inserted] = inodes_.try_emplace(ino);
    if (!inserted) return CorruptionError("duplicate ino in replay");
    it->second.ino = ino;
    it->second.type = type;
    if (ino >= next_ino_) next_ino_ = ino + 1;
    return &it->second;
  }

  Inode* get(Ino ino) {
    auto it = inodes_.find(ino);
    return it == inodes_.end() ? nullptr : &it->second;
  }
  const Inode* get(Ino ino) const {
    auto it = inodes_.find(ino);
    return it == inodes_.end() ? nullptr : &it->second;
  }

  Status free(Ino ino) {
    return inodes_.erase(ino) > 0 ? OkStatus()
                                  : NotFoundError("no such inode");
  }

  size_t count() const { return inodes_.size(); }
  Ino next_ino() const { return next_ino_; }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [ino, inode] : inodes_) fn(inode);
  }

  size_t memory_footprint() const {
    size_t bytes = inodes_.size() * (sizeof(Inode) + 48 /* map node */);
    for (const auto& [ino, inode] : inodes_) {
      bytes += inode.blocks.capacity() * sizeof(uint64_t);
    }
    return bytes;
  }

  void serialize(std::vector<std::byte>& out) const {
    Encoder enc(out);
    enc.u64(next_ino_);
    enc.u64(inodes_.size());
    for (const auto& [ino, inode] : inodes_) inode.serialize(enc);
  }

  StatusOr<size_t> deserialize(std::span<const std::byte> in) {
    Decoder dec(in);
    uint64_t next = 0, count = 0;
    NVMECR_RETURN_IF_ERROR(dec.u64(next));
    NVMECR_RETURN_IF_ERROR(dec.u64(count));
    inodes_.clear();
    for (uint64_t i = 0; i < count; ++i) {
      Inode inode;
      NVMECR_RETURN_IF_ERROR(inode.deserialize(dec));
      inodes_.emplace(inode.ino, std::move(inode));
    }
    next_ino_ = next;
    return dec.consumed();
  }

  void clear() {
    inodes_.clear();
    next_ino_ = kRootIno;
  }

 private:
  std::map<Ino, Inode> inodes_;
  Ino next_ino_ = kRootIno;
};

}  // namespace nvmecr::microfs
