// MicroFs — a private-namespace micro filesystem instance (§III-A).
//
// One MicroFs instance is the storage runtime of exactly one application
// process, mounted on that process's private partition of a (possibly
// remote) NVMe namespace. It embodies the four microfs principles:
//
//  1. Direct userspace device access: all IO goes through the supplied
//     BlockDevice (an SPDK-like local queue or an NVMf remote device) —
//     no kernel path, no VFS.
//  2. Device integrity by partitioning: the instance only sees its
//     PartitionView; no coordination with other instances is ever
//     needed after setup.
//  3. Synchronization-free control and data planes: metadata lives in
//     this instance's DRAM (inode table, block pool, path B+Tree); the
//     device view wraps a dedicated hardware queue.
//  4. Durability without buffering: data writes go straight to the
//     device (capacitor-backed RAM); metadata mutations append compact
//     records to the write-ahead operation log before the next
//     operation proceeds; DRAM state is periodically checkpointed to a
//     reserved device region so the log stays bounded.
//
// The public API mirrors the POSIX calls NVMe-CR intercepts (§III-C):
// mkdir/creat/open/read/write/fsync/close/unlink/stat/readdir, plus the
// tagged-payload variants used for bulk checkpoint data (content
// identified by a per-file pattern seed; see hw::PayloadStore).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hw/block_device.h"
#include "microfs/block_pool.h"
#include "microfs/bptree.h"
#include "microfs/dirfile.h"
#include "microfs/fsck.h"
#include "microfs/inode.h"
#include "microfs/oplog.h"
#include "obs/observer.h"
#include "simcore/engine.h"

namespace nvmecr::microfs {

using namespace nvmecr::literals;

struct Options {
  /// Hugeblock size (§III-E; Figure 7(a) sweeps this; 32 KiB optimal).
  uint64_t hugeblock_size = 32_KiB;

  /// Operation-log ring capacity.
  uint32_t log_slots = 4096;

  /// Sliding window for log record coalescing; 0 disables (ablation /
  /// drilldown baseline).
  uint32_t coalesce_window = 64;

  /// Metadata provenance (§III-E): true logs compact operation records;
  /// false writes full inode images through the device on every
  /// metadata-mutating op (the "+userspace & private namespace" drilldown
  /// configuration without provenance). Recovery requires provenance.
  bool metadata_provenance = true;

  /// Data-plane submission batching: device commands are still accounted
  /// per hugeblock, but up to this many contiguous hugeblocks are
  /// simulated as one event. 1 = fully faithful arbitration.
  uint32_t io_batch_hugeblocks = 1;

  /// Auto state-checkpoint trigger: when no files are open and free log
  /// slots drop below this fraction of capacity, a background checkpoint
  /// starts (§III-E "Metadata Provenance", background thread).
  double checkpoint_free_threshold = 0.25;
  bool auto_checkpoint = true;

  /// Bytes reserved for EACH of the two internal-state checkpoint
  /// regions; 0 = sized automatically from the partition geometry.
  uint64_t ckpt_region_bytes = 0;

  /// Per-operation and per-hugeblock software costs (the userspace
  /// control-plane CPU; what hugeblocks amortize). The per-block cost
  /// covers allocation, tracking, request building, and DMA mapping per
  /// hugeblock-unit request (§IV-B: small blocks raise metadata overhead
  /// and IO request count).
  SimDuration cpu_per_op = 250;         // ns
  SimDuration cpu_per_block = 500;      // ns

  /// fsync semantics: when true (default) fsync completes once the
  /// device's write pipeline has settled (cheap — data is already in
  /// capacitor-backed RAM, but it bounds checkpoint-time measurements to
  /// physical bandwidth). When false fsync is a pure no-op, exposing the
  /// burst-absorption effect of the device RAM.
  bool fsync_settles_device = true;

  /// Identity for POSIX permission checks (§III-F security model).
  uint32_t uid = 0;
};

/// Open-flags subset the intercepted calls need.
struct OpenFlags {
  bool read = true;
  bool write = false;
  bool create = false;
  bool truncate = false;
  static OpenFlags ReadOnly() { return {true, false, false, false}; }
  static OpenFlags WriteCreate() { return {false, true, true, false}; }
  static OpenFlags ReadWrite() { return {true, true, false, false}; }
};

struct FileStat {
  Ino ino = kInvalidIno;
  InodeType type = InodeType::kFile;
  ContentKind content = ContentKind::kNone;
  uint64_t size = 0;
  uint32_t mode = 0;
  uint32_t uid = 0;
};

struct MicroFsStats {
  uint64_t creates = 0;
  uint64_t opens = 0;
  uint64_t writes = 0;
  uint64_t reads = 0;
  uint64_t unlinks = 0;
  uint64_t renames = 0;
  uint64_t data_bytes_written = 0;   // includes hugeblock padding
  uint64_t payload_bytes_written = 0;  // bytes the app asked to write
  uint64_t data_bytes_read = 0;
  uint64_t dirent_bytes_written = 0;
  uint64_t ckpt_bytes_written = 0;
  uint64_t inode_writeback_bytes = 0;  // provenance-off mode only
  uint64_t state_checkpoints = 0;
  uint64_t replayed_records = 0;  // set by recover()

  /// Device bytes attributable to metadata (Table I's per-runtime
  /// overhead = log + dirents + state checkpoints + inode writeback).
  uint64_t metadata_device_bytes(const OpLog::Counters& log) const {
    return log.bytes_written + dirent_bytes_written + ckpt_bytes_written +
           inode_writeback_bytes;
  }
};

class MicroFs {
 public:
  /// Formats the partition and mounts a fresh instance. The device must
  /// outlive the filesystem.
  static sim::Task<StatusOr<std::unique_ptr<MicroFs>>> format(
      sim::Engine& engine, hw::BlockDevice& dev, Options options = {});

  /// Mounts an existing partition by loading the newest valid internal
  /// state checkpoint and replaying the operation log (§III-E recovery).
  static sim::Task<StatusOr<std::unique_ptr<MicroFs>>> recover(
      sim::Engine& engine, hw::BlockDevice& dev, Options options = {});

  ~MicroFs() = default;
  MicroFs(const MicroFs&) = delete;
  MicroFs& operator=(const MicroFs&) = delete;

  // --- namespace operations (control plane) ----------------------------
  sim::Task<Status> mkdir(const std::string& path, uint32_t mode = 0755);
  sim::Task<StatusOr<int>> open(const std::string& path, OpenFlags flags,
                                uint32_t mode = 0644);
  /// creat(2): open(path, O_WRONLY|O_CREAT|O_TRUNC, mode).
  sim::Task<StatusOr<int>> creat(const std::string& path,
                                 uint32_t mode = 0644) {
    OpenFlags f;
    f.read = false;
    f.write = true;
    f.create = true;
    f.truncate = true;
    co_return co_await open(path, f, mode);
  }
  sim::Task<Status> unlink(const std::string& path);
  /// rename(2) for files (directory renames would re-key every
  /// descendant path and are rejected with kIsDirectory). `to` must not
  /// exist; open descriptors stay valid (they hold inode numbers).
  sim::Task<Status> rename(const std::string& from, const std::string& to);
  sim::Task<Status> close(int fd);
  StatusOr<FileStat> stat(const std::string& path) const;
  /// Names of the live entries directly under `path`.
  StatusOr<std::vector<std::string>> readdir(const std::string& path) const;

  // --- data plane -------------------------------------------------------
  /// Appends real bytes at the fd's cursor.
  sim::Task<StatusOr<uint64_t>> write(int fd, std::span<const std::byte> data);
  /// Appends `len` pattern bytes (bulk checkpoint payload); IO is issued
  /// in hugeblock units (§III-E).
  sim::Task<Status> write_tagged(int fd, uint64_t len);
  /// Reads real bytes at the fd's read cursor.
  sim::Task<StatusOr<uint64_t>> read(int fd, std::span<std::byte> out);
  /// Reads `len` tagged bytes at the read cursor, verifying the device
  /// content matches the file's pattern; kCorruption on mismatch.
  sim::Task<Status> read_tagged(int fd, uint64_t len);
  /// Repositions the fd's read cursor (lseek(2) for reads).
  Status seek(int fd, uint64_t pos);
  /// Verifies the entire file's tagged content against its seed.
  sim::Task<Status> verify_tagged(const std::string& path);
  /// Durability barrier. Data and log records are already durable when
  /// the calls return (stronger than POSIX, §III-E), so this only
  /// settles the device write pipeline.
  sim::Task<Status> fsync(int fd);

  // --- state checkpointing ---------------------------------------------
  /// Serializes DRAM state (inodes + block pool + B+Tree) to the
  /// reserved device region, then truncates the log (atomic: the log is
  /// only truncated after the checkpoint is durable).
  sim::Task<Status> checkpoint_state();
  int open_file_count() const { return static_cast<int>(open_files_.size()); }

  /// Crash-consistency invariant checker (see microfs/fsck.h for the
  /// invariant list). Read-only: issues device reads for the directory
  /// files but never mutates state. A clean report means the DRAM
  /// metadata, the device-resident directory streams, and the operation
  /// log agree; the crash-exploration harness runs it on every recovered
  /// state.
  sim::Task<StatusOr<FsckReport>> fsck();

  // --- observability ----------------------------------------------------
  /// Installs trace/metrics sinks on this instance and its operation
  /// log. `label` distinguishes instances in gauge names and trace
  /// tracks (e.g. "rank3" -> "microfs.rank3.*", track "microfs/rank3").
  /// Pass ({}, "") to detach.
  void set_observer(const obs::Observer& o, const std::string& label);

  const MicroFsStats& stats() const { return stats_; }
  const OpLog::Counters& log_counters() const { return log_->counters(); }
  uint32_t log_free_slots() const { return log_->free_slots(); }
  uint32_t log_capacity() const { return log_->capacity(); }
  /// Log slots with a deferred (group-committed) rewrite still pending.
  size_t log_dirty_slots() const { return log_->dirty_slots(); }
  const Options& options() const { return options_; }
  uint64_t data_region_blocks() const { return pool_.total(); }
  uint64_t free_blocks() const { return pool_.free_count(); }

  /// DRAM footprint of the metadata structures (Table I).
  size_t dram_footprint() const {
    return inodes_.memory_footprint() + pool_.memory_footprint() +
           paths_.memory_footprint();
  }
  /// Device bytes reserved for metadata (log ring + both checkpoint
  /// regions) — the fixed part of Table I's per-runtime storage overhead.
  uint64_t metadata_region_bytes() const {
    return geo_.log_bytes + 2 * geo_.ckpt_bytes;
  }
  uint64_t metadata_device_bytes() const {
    return stats_.metadata_device_bytes(log_->counters());
  }

  /// Device-resident directory stream for `path` (decoded); lets tests
  /// and audits confirm the on-SSD directory file matches the namespace.
  sim::Task<StatusOr<std::vector<Dirent>>> read_dirfile(
      const std::string& path);

 private:
  struct Geometry {
    uint64_t log_base = 0;
    uint64_t log_bytes = 0;
    uint64_t ckpt_base_a = 0;
    uint64_t ckpt_base_b = 0;
    uint64_t ckpt_bytes = 0;
    uint64_t data_base = 0;
    uint64_t data_blocks = 0;
  };

  struct OpenFile {
    Ino ino = kInvalidIno;
    bool writable = false;
    uint64_t write_pos = 0;
    uint64_t read_pos = 0;
  };

  MicroFs(sim::Engine& engine, hw::BlockDevice& dev, Options options,
          Geometry geo);

  static StatusOr<Geometry> compute_geometry(const hw::BlockDevice& dev,
                                             const Options& options);
  sim::Task<Status> write_superblock();
  static sim::Task<StatusOr<std::pair<Options, Geometry>>> read_superblock(
      hw::BlockDevice& dev, const Options& requested);

  /// Path helpers (normalized absolute paths; components <= kMaxName).
  static Status validate_path(const std::string& path);
  static std::string parent_of(const std::string& path);
  static std::string basename_of(const std::string& path);

  /// Ensures hugeblocks cover file bytes [0, end); allocates from the
  /// circular pool in hugeblock-index order (replay-deterministic).
  Status ensure_blocks(Inode& inode, uint64_t end);
  uint64_t device_offset(const Inode& inode, uint64_t file_off) const;

  /// Issues tagged device IO in hugeblock units over the file range
  /// [off, off+len) (whole hugeblocks — the §III-E submission rule),
  /// batching contiguous device runs. `is_write` selects the direction;
  /// reads verify content.
  sim::Task<Status> hugeblock_io(Inode& inode, uint64_t off, uint64_t len,
                                 bool is_write);

  /// Appends a dirent to the parent directory's device-resident file.
  sim::Task<Status> append_dirent(Inode& dir, const Dirent& entry);

  /// Logs a metadata op (or writes back the full inode when provenance
  /// is off); retries once after a forced state checkpoint if the log is
  /// full.
  sim::Task<Status> log_op(LogRecord rec, const Inode& touched);

  /// Auto-checkpoint trigger (close-time, §III-E background thread).
  void maybe_spawn_checkpoint();

  /// Recovery replay of one scanned record.
  Status replay_record(const LogRecord& rec,
                       std::map<Ino, std::string>& ino_paths);
  /// Grows `parent_ino`'s dirfile bookkeeping to the record's post-op
  /// size (no-op when the loaded checkpoint already covers it).
  Status replay_dirent_growth(Ino parent_ino, uint64_t psize);

  sim::Engine& engine_;
  hw::BlockDevice& dev_;
  Options options_;
  Geometry geo_;

  InodeTable inodes_;
  BlockPool pool_;
  BpTree<std::string, Ino> paths_;
  std::unique_ptr<OpLog> log_;

  /// Coalescing-determinism guard: a WRITE record may only be extended
  /// if no *other* block-pool mutation happened since it was last
  /// touched — otherwise log replay would interleave allocations in a
  /// different order than the original execution did.
  struct CoalesceCandidate {
    uint64_t next_off = 0;
    uint64_t pool_version = 0;
  };
  std::map<Ino, CoalesceCandidate> coalesce_candidates_;
  uint64_t pool_version_ = 0;
  uint64_t pool_version_before_op_ = 0;

  std::map<int, OpenFile> open_files_;
  int next_fd_ = 3;
  bool checkpoint_in_flight_ = false;

  MicroFsStats stats_;

  // Observability (null/empty when detached).
  obs::Observer obs_;
  std::string trace_track_;
  obs::Counter* m_pool_allocs_ = nullptr;
  obs::Counter* m_pool_frees_ = nullptr;
  obs::Gauge* m_pool_occupancy_ = nullptr;
  obs::Counter* m_bptree_ops_ = nullptr;
  uint16_t profile_tag_data_ = 0;  // "microfs/data" cost center

  /// Books FS-side CPU into the epoch critical path (no-op unprofiled).
  void record_serialize(SimDuration d);
};

}  // namespace nvmecr::microfs
