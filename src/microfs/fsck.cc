// MicroFs::fsck() — cross-validates the DRAM metadata structures, the
// device-resident directory files, and the operation log. See
// microfs/fsck.h for the invariant list.
#include <map>
#include <set>

#include "microfs/microfs.h"

namespace nvmecr::microfs {

namespace {
constexpr uint64_t kInvalidBlock = UINT64_MAX;
}  // namespace

sim::Task<StatusOr<FsckReport>> MicroFs::fsck() {
  using Result = StatusOr<FsckReport>;
  FsckReport report;
  auto flag = [&report](std::string msg) {
    report.issues.push_back(std::move(msg));
  };

  // --- B+Tree structure ------------------------------------------------
  if (Status s = paths_.validate(); !s.ok()) {
    flag(std::string(s.message()));
  }

  // --- namespace <-> inode table cross-references -----------------------
  const Ino* root = paths_.find("/");
  if (root == nullptr) {
    flag("namespace: no root path");
  } else if (*root != kRootIno) {
    flag("namespace: '/' is not the root inode");
  }
  std::map<Ino, std::string> ino_to_path;
  std::vector<std::pair<std::string, Ino>> all_paths;
  paths_.for_each([&](const std::string& path, const Ino& ino) {
    all_paths.emplace_back(path, ino);
    auto [it, inserted] = ino_to_path.emplace(ino, path);
    if (!inserted) {
      flag("namespace: inode " + std::to_string(ino) + " reachable as '" +
           it->second + "' and '" + path + "'");
    }
  });
  for (const auto& [path, ino] : all_paths) {
    const Inode* inode = inodes_.get(ino);
    if (inode == nullptr) {
      flag("namespace: '" + path + "' maps to missing inode " +
           std::to_string(ino));
      continue;
    }
    if (path == "/") continue;
    const std::string parent = parent_of(path);
    const Ino* parent_ino = paths_.find(parent);
    if (parent_ino == nullptr) {
      flag("namespace: '" + path + "' has no parent entry '" + parent + "'");
      continue;
    }
    const Inode* pnode = inodes_.get(*parent_ino);
    if (pnode == nullptr || pnode->type != InodeType::kDirectory) {
      flag("namespace: parent of '" + path + "' is not a directory");
    }
  }

  // --- extents vs the block pool ----------------------------------------
  const uint64_t B = options_.hugeblock_size;
  std::set<uint64_t> referenced;
  inodes_.for_each([&](const Inode& inode) {
    if (inode.type == InodeType::kDirectory) {
      ++report.directories;
    } else {
      ++report.files;
    }
    if (ino_to_path.find(inode.ino) == ino_to_path.end()) {
      flag("inode " + std::to_string(inode.ino) + " has no path");
    }
    if (inode.blocks.size() != ceil_div(inode.size, B)) {
      flag("inode " + std::to_string(inode.ino) + ": " +
           std::to_string(inode.blocks.size()) + " blocks cover size " +
           std::to_string(inode.size));
    }
    for (uint64_t b : inode.blocks) {
      if (b == kInvalidBlock) {
        flag("inode " + std::to_string(inode.ino) + ": unmapped extent");
        continue;
      }
      if (b >= pool_.total()) {
        flag("inode " + std::to_string(inode.ino) + ": block " +
             std::to_string(b) + " out of range");
        continue;
      }
      if (!pool_.is_allocated(b)) {
        flag("inode " + std::to_string(inode.ino) + ": block " +
             std::to_string(b) + " referenced but free in the pool");
      }
      if (!referenced.insert(b).second) {
        flag("block " + std::to_string(b) + " referenced by two extents");
      }
    }
  });
  report.blocks_referenced = referenced.size();
  if (pool_.allocated_count() != referenced.size()) {
    flag("pool: " + std::to_string(pool_.allocated_count()) +
         " blocks allocated but " + std::to_string(referenced.size()) +
         " referenced (leak or lost block)");
  }

  // --- directory files vs the namespace ---------------------------------
  for (const auto& [path, ino] : all_paths) {
    const Inode* inode = inodes_.get(ino);
    if (inode == nullptr || inode->type != InodeType::kDirectory) continue;
    auto stream = co_await read_dirfile(path);
    if (!stream.ok()) {
      flag("dirfile '" + path + "': " + std::string(stream.status().message()));
      continue;
    }
    std::map<std::string, Ino> live;
    for (const Dirent& d : live_view(*stream)) live[d.name] = d.ino;
    auto children = readdir(path);
    if (!children.ok()) {
      flag("readdir '" + path + "' failed during fsck");
      continue;
    }
    if (children->size() != live.size()) {
      flag("dirfile '" + path + "': " + std::to_string(live.size()) +
           " live dirents vs " + std::to_string(children->size()) +
           " namespace children");
    }
    for (const std::string& name : *children) {
      auto it = live.find(name);
      const std::string child_path =
          path == "/" ? "/" + name : path + "/" + name;
      const Ino* child_ino = paths_.find(child_path);
      if (it == live.end()) {
        flag("dirfile '" + path + "': missing dirent for '" + name + "'");
      } else if (child_ino != nullptr && it->second != *child_ino) {
        flag("dirfile '" + path + "': dirent '" + name + "' points at ino " +
             std::to_string(it->second) + ", namespace says " +
             std::to_string(*child_ino));
      }
    }
  }

  // --- operation log monotonicity ----------------------------------------
  const std::vector<LogRecord> live_log = log_->live_snapshot();
  report.log_records = live_log.size();
  uint64_t prev_lsn = 0;
  uint32_t prev_epoch = 0;
  for (const LogRecord& rec : live_log) {
    if (prev_lsn != 0 && rec.lsn != prev_lsn + 1) {
      flag("oplog: live LSNs not consecutive at " + std::to_string(rec.lsn));
    }
    if (rec.epoch < prev_epoch) {
      flag("oplog: epoch regression at lsn " + std::to_string(rec.lsn));
    }
    if (rec.epoch > log_->epoch()) {
      flag("oplog: record epoch beyond current epoch at lsn " +
           std::to_string(rec.lsn));
    }
    if (rec.lsn >= log_->next_lsn()) {
      flag("oplog: live lsn " + std::to_string(rec.lsn) +
           " not below next_lsn " + std::to_string(log_->next_lsn()));
    }
    prev_lsn = rec.lsn;
    prev_epoch = rec.epoch;
  }

  // --- open descriptors ---------------------------------------------------
  for (const auto& [fd, of] : open_files_) {
    if (inodes_.get(of.ino) == nullptr) {
      flag("fd " + std::to_string(fd) + " references missing inode " +
           std::to_string(of.ino));
    }
  }

  co_return Result(std::move(report));
}

}  // namespace nvmecr::microfs
