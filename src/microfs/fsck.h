// fsck report for MicroFs::fsck() (crash-consistency invariant checker).
//
// fsck() walks every DRAM metadata structure and the device-resident
// directory files of a mounted (usually just-recovered) instance and
// cross-validates them:
//
//  * B+Tree structure: key ordering, separator bounds, occupancy, leaf
//    chain (BpTree::validate).
//  * Namespace: "/" maps to the root inode; every path resolves to an
//    existing inode of a plausible type; every inode is reachable by
//    exactly one path; every non-root path's parent exists and is a
//    directory.
//  * Extents: per inode, blocks.size() covers [0, size); every block is
//    in range, marked allocated in the pool, and referenced exactly once
//    across the filesystem; the pool's allocated count equals the number
//    of referenced blocks.
//  * Directory files: the live view of each directory's on-device dirent
//    stream matches readdir() (same names, same inode numbers); decode
//    errors inside the [0, size) window are violations.
//  * Operation log: live records have strictly increasing LSNs below
//    next_lsn and non-decreasing epochs bounded by the current epoch.
//  * Open files reference existing inodes.
//
// Every violation is recorded as a human-readable issue string rather
// than aborting at the first one, so one crash state yields a complete
// diagnosis.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nvmecr::microfs {

struct FsckReport {
  uint64_t files = 0;
  uint64_t directories = 0;
  uint64_t blocks_referenced = 0;
  uint64_t log_records = 0;
  std::vector<std::string> issues;

  bool clean() const { return issues.empty(); }

  std::string to_string() const {
    std::string out = "fsck: " + std::to_string(files) + " files, " +
                      std::to_string(directories) + " dirs, " +
                      std::to_string(blocks_referenced) + " blocks, " +
                      std::to_string(log_records) + " log records";
    if (clean()) return out + ", clean";
    out += ", " + std::to_string(issues.size()) + " issue(s):";
    for (const std::string& i : issues) out += "\n  - " + i;
    return out;
  }
};

}  // namespace nvmecr::microfs
