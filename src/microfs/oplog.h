// Write-ahead operation log with log record coalescing (§III-E
// "Metadata Provenance" + Figure 5).
//
// Every metadata-mutating syscall (mkdir, creat, write, unlink) appends a
// compact fixed-size record to a ring of slots on the remote SSD; the
// record is durable before the next operation proceeds. Only the syscall
// type and parameters are logged — never inodes or physical state — so
// recovery replays the operations against the last internal state
// checkpoint.
//
// Coalescing: consecutive writes to the same file update the previous
// WRITE record in place (extending its length) instead of consuming a
// new slot, exploiting the sequential nature of checkpoint IO. This
// keeps the log fill rate low (fewer forced state checkpoints) and makes
// replay near-instant (§IV-I: recovery 3.6 s with coalescing vs 4 s
// without).
//
// Group commit (DESIGN.md §11): a coalesced extension only updates the
// DRAM copy and marks the slot dirty; the device rewrite is deferred to
// the next flush point — a new-slot append, fsync, close, or state
// checkpoint — where all dirty slots are written as contiguous ranges in
// single submissions. N same-file extensions therefore cost one device
// IO instead of N. The durability contract weakens only for coalesced
// *extensions* (jbd2-style: they become durable at the next sync point);
// every record that takes a new slot — all namespace ops and first
// writes — is still durable before append() returns.
//
// Epochs mark state-checkpoint boundaries: begin_epoch() is called when
// a snapshot is taken; records after the snapshot carry the new epoch;
// truncate_before(E) discards older records once the checkpoint of epoch
// E is durable. Recovery replays every record with epoch >= the loaded
// checkpoint's epoch, in LSN order.
#pragma once

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "hw/block_device.h"
#include "microfs/inode.h"
#include "obs/observer.h"
#include "simcore/task.h"

namespace nvmecr::sim {
class Engine;
}  // namespace nvmecr::sim

namespace nvmecr::microfs {

enum class OpType : uint8_t {
  kMkdir = 1,
  kCreate = 2,
  kWrite = 3,
  kUnlink = 4,
  kRename = 5,
};

struct LogRecord {
  uint64_t lsn = 0;
  uint32_t epoch = 0;
  OpType type = OpType::kWrite;
  Ino ino = kInvalidIno;
  Ino parent = kInvalidIno;
  /// Type-specific: kWrite -> (offset, length); kCreate/kMkdir ->
  /// (mode, content seed); kUnlink -> unused; kRename -> (old parent
  /// ino, unused) with `parent` the new parent and `name` the new
  /// basename.
  uint64_t a = 0;
  uint64_t b = 0;
  /// Parent dirfile size immediately after this op's dirent append became
  /// durable (0 for kWrite and truncation records). Replay uses it as an
  /// idempotence guard: a state checkpoint forced *inside* the op (log
  /// ring full) already contains the dirent bookkeeping, and the record
  /// must not apply it twice. For kRename, `b` carries the same quantity
  /// for the old parent.
  uint64_t psize = 0;
  /// Bit 0 on kWrite: the payload was tagged (pattern) content; recovery
  /// restores the file's content kind from it.
  uint8_t flags = 0;
  /// Path component for namespace ops (empty for kWrite).
  std::string name;
};

inline constexpr uint8_t kLogFlagTagged = 1;

class OpLog {
 public:
  /// On-device bytes per slot (compact — contrast with 4 KiB+ physical
  /// journal blocks in kernel filesystems).
  static constexpr uint32_t kRecordBytes = 192;
  static constexpr size_t kMaxName = 80;

  struct Counters {
    uint64_t appended = 0;        // records that took a new slot
    uint64_t coalesced = 0;       // in-place extensions of a prior record
    uint64_t bytes_written = 0;   // device bytes for log maintenance
    uint64_t forced_full = 0;     // appends rejected because the ring was full
    uint64_t group_commits = 0;   // drains that committed deferred updates
  };

  /// `region_base` is the byte offset of the slot ring within `dev`;
  /// `slots` its capacity. `coalesce_window` bounds the backward search
  /// for a coalescible record (0 disables coalescing — the ablation and
  /// drilldown baselines).
  OpLog(hw::BlockDevice& dev, uint64_t region_base, uint32_t slots,
        uint32_t coalesce_window);

  /// Appends (or coalesces) and waits until the record is durable on the
  /// device. `allow_coalesce` is the caller's determinism gate (see
  /// MicroFs::CoalesceCandidate); the window/contiguity/epoch conditions
  /// are checked here. Returns kUnavailable when the ring is full — the
  /// caller must checkpoint state and truncate first.
  sim::Task<Status> append(LogRecord rec, bool allow_coalesce = true,
                           bool* coalesced_out = nullptr);

  /// Writes every dirty (deferred-coalesced) slot to the device, batching
  /// contiguous slot ranges into single submissions. Called by MicroFs at
  /// sync points (fsync, close, state checkpoint); append() also drains
  /// the dirty set whenever it takes a new slot. No-op when nothing is
  /// dirty.
  sim::Task<Status> flush();

  /// Slots with a deferred device rewrite (test/observability hook).
  size_t dirty_slots() const { return dirty_.size(); }

  /// Copy of the live in-DRAM records, oldest first (fsck hook: the
  /// checker cross-validates LSN/epoch monotonicity against the
  /// filesystem state without reaching into the deque).
  std::vector<LogRecord> live_snapshot() const {
    std::vector<LogRecord> out;
    out.reserve(live_.size());
    for (const auto& lr : live_) out.push_back(lr.record);
    return out;
  }

  uint32_t capacity() const { return slots_; }
  uint32_t live_records() const { return static_cast<uint32_t>(live_.size()); }
  uint32_t free_slots() const { return slots_ - live_records(); }
  uint32_t epoch() const { return epoch_; }
  uint64_t next_lsn() const { return next_lsn_; }
  const Counters& counters() const { return counters_; }

  /// Starts a new epoch at a state-snapshot boundary; also closes the
  /// coalescing window so pre-snapshot records are never extended.
  uint32_t begin_epoch();

  /// Drops in-DRAM tracking of records older than `epoch` (their slots
  /// become reusable). Called after the checkpoint of `epoch` is durable.
  void truncate_before(uint32_t epoch);

  /// Restores in-DRAM tracking from recovered records (post-replay), so
  /// a recovered filesystem can continue appending. `records` must be
  /// LSN-sorted; their slots are re-derived from the scan.
  void restore(const std::vector<std::pair<uint32_t, LogRecord>>& slot_records,
               uint32_t epoch, uint64_t next_lsn);

  /// Recovery scan: decodes every valid slot with epoch >= min_epoch,
  /// returned as (slot index, record) sorted by LSN.
  static sim::Task<StatusOr<std::vector<std::pair<uint32_t, LogRecord>>>> scan(
      hw::BlockDevice& dev, uint64_t region_base, uint32_t slots,
      uint32_t min_epoch);

  /// On-device footprint of the ring (Table I accounting).
  uint64_t region_bytes() const {
    return static_cast<uint64_t>(slots_) * kRecordBytes;
  }

  static void encode_record(const LogRecord& rec, std::vector<std::byte>& out);
  static StatusOr<LogRecord> decode_record(std::span<const std::byte> in);

  /// Installs trace/metrics sinks. Counter names are shared aggregates
  /// ("microfs.oplog.*") across all instances; the free-slot gauge and
  /// the trace track ("oplog/<label>") are per instance. The engine is
  /// passed explicitly because the log itself is clock-free. Pass
  /// ({}, "", nullptr) to detach.
  void set_observer(const obs::Observer& o, const std::string& label,
                    sim::Engine* engine);

 private:
  struct LiveRecord {
    uint32_t slot;
    LogRecord record;
  };

  /// Device IO behind flush()/append(), without the trace span.
  sim::Task<Status> flush_dirty();

  hw::BlockDevice& dev_;
  uint64_t region_base_;
  uint32_t slots_;
  uint32_t coalesce_window_;

  std::deque<LiveRecord> live_;  // oldest first; back = newest
  /// Slot -> latest record content awaiting its deferred device write.
  /// Ordered so flush() can batch contiguous slot ranges.
  std::map<uint32_t, LogRecord> dirty_;
  /// Coalesced extensions deferred since the last drain (feeds the
  /// group_commits counter).
  uint32_t deferred_pending_ = 0;
  uint32_t next_slot_ = 0;
  uint64_t next_lsn_ = 1;
  uint32_t epoch_ = 1;
  Counters counters_;

  // Observability (null when detached).
  obs::Observer obs_;
  sim::Engine* obs_engine_ = nullptr;
  std::string trace_track_;
  obs::Counter* m_appended_ = nullptr;
  obs::Counter* m_coalesced_ = nullptr;
  obs::Counter* m_bytes_ = nullptr;
  obs::Counter* m_forced_full_ = nullptr;
  obs::Counter* m_group_commits_ = nullptr;
  obs::Gauge* m_free_slots_ = nullptr;
  uint16_t profile_tag_ = 0;  // "microfs/oplog" cost center
};

}  // namespace nvmecr::microfs
