// Directory files (§III-E "Per-process Private Namespace").
//
// Each directory's entries are also persisted as a stream of compact
// dirent records appended to the directory *file* on the remote SSD —
// the root directory is itself such a file on the process's partition.
// The DRAM B+Tree is the authoritative lookup structure; the device
// stream exists for durability accounting (every create pays one dirent
// append — the cost Figure 8(b) measures) and auditability (tests decode
// it and check it against the namespace).
//
// Removal appends a tombstone record; the live view of a stream is
// adds minus tombstones, newest-wins.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "microfs/codec.h"
#include "microfs/inode.h"

namespace nvmecr::microfs {

struct Dirent {
  bool add = true;  // false = tombstone
  std::string name;
  Ino ino = kInvalidIno;
};

/// Appends one dirent's encoding to `out`; returns encoded size.
inline size_t encode_dirent(const Dirent& d, std::vector<std::byte>& out) {
  const size_t before = out.size();
  Encoder enc(out);
  enc.u8(d.add ? 1 : 0);
  enc.u64(d.ino);
  enc.str(d.name);
  return out.size() - before;
}

/// Size the encoding of a dirent would take (for inode-size bookkeeping
/// without materializing the buffer).
inline uint64_t dirent_encoded_size(const std::string& name) {
  return 1 + 8 + 4 + name.size();
}

/// Decodes a full dirent stream (a directory file's contents).
inline StatusOr<std::vector<Dirent>> decode_dirents(
    std::span<const std::byte> in) {
  std::vector<Dirent> out;
  Decoder dec(in);
  while (dec.remaining() > 0) {
    Dirent d;
    uint8_t add = 0;
    NVMECR_RETURN_IF_ERROR(dec.u8(add));
    NVMECR_RETURN_IF_ERROR(dec.u64(d.ino));
    NVMECR_RETURN_IF_ERROR(dec.str(d.name));
    d.add = add != 0;
    out.push_back(std::move(d));
  }
  return out;
}

/// Folds a dirent stream into the live name -> ino view (newest wins).
inline std::vector<Dirent> live_view(const std::vector<Dirent>& stream) {
  std::vector<Dirent> live;
  for (const auto& d : stream) {
    auto it = std::find_if(live.begin(), live.end(), [&](const Dirent& e) {
      return e.name == d.name;
    });
    if (d.add) {
      if (it != live.end()) {
        it->ino = d.ino;
      } else {
        live.push_back(d);
      }
    } else if (it != live.end()) {
      live.erase(it);
    }
  }
  return live;
}

}  // namespace nvmecr::microfs
