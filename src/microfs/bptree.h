// In-memory B+Tree.
//
// The microfs control plane keeps the mapping of file/directory names to
// their root inodes in a DRAM-resident B+Tree (§III-E "Per-process
// Private Namespace", "Metadata Provenance"): lookups are frequent and
// ordered iteration is needed for readdir and for serializing the
// namespace into the internal state checkpoint.
//
// Classic algorithm: values live in leaves, leaves are linked for range
// scans, internal nodes hold separator keys. Erase rebalances by
// borrowing from or merging with siblings. The structure is exercised by
// randomized property tests against std::map (tests/microfs_test.cc).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"

namespace nvmecr::microfs {

template <typename Key, typename Value, int Fanout = 32>
class BpTree {
  static_assert(Fanout >= 4, "Fanout must be at least 4");

 public:
  BpTree() = default;
  BpTree(const BpTree&) = delete;
  BpTree& operator=(const BpTree&) = delete;
  BpTree(BpTree&&) = default;
  BpTree& operator=(BpTree&&) = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Inserts or overwrites. Returns true if the key was new.
  bool insert(const Key& key, Value value) {
    if (!root_) {
      auto leaf = std::make_unique<Node>(/*leaf=*/true);
      leaf->keys.push_back(key);
      leaf->values.push_back(std::move(value));
      root_ = std::move(leaf);
      height_ = 1;
      size_ = 1;
      return true;
    }
    InsertResult result = insert_into(root_.get(), key, std::move(value));
    if (result.split_right) {
      auto new_root = std::make_unique<Node>(/*leaf=*/false);
      new_root->keys.push_back(result.split_key);
      new_root->children.push_back(std::move(root_));
      new_root->children.push_back(std::move(result.split_right));
      root_ = std::move(new_root);
      ++height_;
    }
    if (result.inserted) ++size_;
    return result.inserted;
  }

  /// Returns the value for `key`, or nullptr.
  const Value* find(const Key& key) const {
    const Node* node = root_.get();
    if (!node) return nullptr;
    while (!node->leaf) {
      node = node->children[child_index(node, key)].get();
    }
    const auto it =
        std::lower_bound(node->keys.begin(), node->keys.end(), key);
    if (it == node->keys.end() || *it != key) return nullptr;
    return &node->values[static_cast<size_t>(it - node->keys.begin())];
  }
  Value* find(const Key& key) {
    return const_cast<Value*>(std::as_const(*this).find(key));
  }
  bool contains(const Key& key) const { return find(key) != nullptr; }

  /// Removes `key`; returns true if it was present.
  bool erase(const Key& key) {
    if (!root_) return false;
    const bool erased = erase_from(root_.get(), key);
    if (erased) {
      --size_;
      // Shrink the root when it has a single child (or is an empty leaf).
      while (!root_->leaf && root_->children.size() == 1) {
        root_ = std::move(root_->children[0]);
        --height_;
      }
      if (root_->leaf && root_->keys.empty()) {
        root_.reset();
        height_ = 0;
      }
    }
    return erased;
  }

  void clear() {
    root_.reset();
    size_ = 0;
    height_ = 0;
  }

  /// In-order visit of all (key, value) pairs via the leaf chain.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const Node* leaf = leftmost_leaf();
    while (leaf != nullptr) {
      for (size_t i = 0; i < leaf->keys.size(); ++i) {
        fn(leaf->keys[i], leaf->values[i]);
      }
      leaf = leaf->next;
    }
  }

  /// Visits pairs with key >= `from`, stopping when fn returns false.
  template <typename Fn>
  void scan_from(const Key& from, Fn&& fn) const {
    const Node* node = root_.get();
    if (!node) return;
    while (!node->leaf) {
      node = node->children[child_index(node, from)].get();
    }
    auto it = std::lower_bound(node->keys.begin(), node->keys.end(), from);
    size_t i = static_cast<size_t>(it - node->keys.begin());
    while (node != nullptr) {
      for (; i < node->keys.size(); ++i) {
        if (!fn(node->keys[i], node->values[i])) return;
      }
      node = node->next;
      i = 0;
    }
  }

  int height() const { return height_; }

  /// Approximate DRAM footprint (Table I accounting).
  size_t memory_footprint() const {
    return node_count_ * sizeof(Node) +
           size_ * (sizeof(Key) + sizeof(Value));
  }

  /// Structural invariant check (microfs fsck): strict key ordering,
  /// separator bounds, occupancy limits, uniform leaf depth, and a leaf
  /// chain that visits exactly size() keys in ascending order. Separator
  /// keys are validated as *bounds* on their subtrees, not equalities —
  /// erasing a leaf's smallest key legitimately leaves the old separator
  /// behind as a lower bound.
  Status validate() const {
    if (!root_) {
      if (size_ != 0) return CorruptionError("bptree: null root, size != 0");
      if (height_ != 0) {
        return CorruptionError("bptree: null root, height != 0");
      }
      return OkStatus();
    }
    size_t leaf_keys = 0;
    NVMECR_RETURN_IF_ERROR(
        validate_node(root_.get(), 1, nullptr, nullptr, leaf_keys));
    if (leaf_keys != size_) {
      return CorruptionError("bptree: size disagrees with leaf key count");
    }
    size_t chained = 0;
    const Key* prev = nullptr;
    for (const Node* leaf = leftmost_leaf(); leaf != nullptr;
         leaf = leaf->next) {
      for (const Key& k : leaf->keys) {
        if (prev != nullptr && !(*prev < k)) {
          return CorruptionError("bptree: leaf chain out of order");
        }
        prev = &k;
        ++chained;
      }
    }
    if (chained != size_) {
      return CorruptionError("bptree: leaf chain misses keys");
    }
    return OkStatus();
  }

 private:
  struct Node {
    explicit Node(bool is_leaf) : leaf(is_leaf) {}
    bool leaf;
    std::vector<Key> keys;
    // Leaves: values parallel to keys. Internal: children.size() ==
    // keys.size() + 1, keys[i] = smallest key in children[i+1]'s subtree.
    std::vector<Value> values;
    std::vector<std::unique_ptr<Node>> children;
    Node* next = nullptr;  // leaf chain
  };

  struct InsertResult {
    bool inserted = false;
    Key split_key{};
    std::unique_ptr<Node> split_right;
  };

  static size_t child_index(const Node* node, const Key& key) {
    const auto it =
        std::upper_bound(node->keys.begin(), node->keys.end(), key);
    return static_cast<size_t>(it - node->keys.begin());
  }

  InsertResult insert_into(Node* node, const Key& key, Value value) {
    InsertResult result;
    if (node->leaf) {
      auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
      const size_t pos = static_cast<size_t>(it - node->keys.begin());
      if (it != node->keys.end() && *it == key) {
        node->values[pos] = std::move(value);  // overwrite
        return result;
      }
      node->keys.insert(it, key);
      node->values.insert(node->values.begin() + static_cast<ptrdiff_t>(pos),
                          std::move(value));
      result.inserted = true;
      if (node->keys.size() >= Fanout) split_leaf(node, result);
      return result;
    }
    const size_t ci = child_index(node, key);
    InsertResult child_result =
        insert_into(node->children[ci].get(), key, std::move(value));
    result.inserted = child_result.inserted;
    if (child_result.split_right) {
      node->keys.insert(node->keys.begin() + static_cast<ptrdiff_t>(ci),
                        child_result.split_key);
      node->children.insert(
          node->children.begin() + static_cast<ptrdiff_t>(ci) + 1,
          std::move(child_result.split_right));
      if (node->children.size() > Fanout) split_internal(node, result);
    }
    return result;
  }

  void split_leaf(Node* node, InsertResult& result) {
    auto right = std::make_unique<Node>(/*leaf=*/true);
    const size_t mid = node->keys.size() / 2;
    right->keys.assign(node->keys.begin() + static_cast<ptrdiff_t>(mid),
                       node->keys.end());
    right->values.assign(
        std::make_move_iterator(node->values.begin() +
                                static_cast<ptrdiff_t>(mid)),
        std::make_move_iterator(node->values.end()));
    node->keys.resize(mid);
    node->values.resize(mid);
    right->next = node->next;
    node->next = right.get();
    ++node_count_;
    result.split_key = right->keys.front();
    result.split_right = std::move(right);
  }

  void split_internal(Node* node, InsertResult& result) {
    auto right = std::make_unique<Node>(/*leaf=*/false);
    const size_t mid = node->children.size() / 2;  // children to keep left
    // keys[mid-1] moves up as the separator.
    result.split_key = node->keys[mid - 1];
    right->keys.assign(node->keys.begin() + static_cast<ptrdiff_t>(mid),
                       node->keys.end());
    right->children.assign(
        std::make_move_iterator(node->children.begin() +
                                static_cast<ptrdiff_t>(mid)),
        std::make_move_iterator(node->children.end()));
    node->keys.resize(mid - 1);
    node->children.resize(mid);
    ++node_count_;
    result.split_right = std::move(right);
  }

  bool erase_from(Node* node, const Key& key) {
    if (node->leaf) {
      auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
      if (it == node->keys.end() || *it != key) return false;
      const size_t pos = static_cast<size_t>(it - node->keys.begin());
      node->keys.erase(it);
      node->values.erase(node->values.begin() + static_cast<ptrdiff_t>(pos));
      return true;
    }
    const size_t ci = child_index(node, key);
    Node* child = node->children[ci].get();
    if (!erase_from(child, key)) return false;
    if (underflowed(child)) rebalance(node, ci);
    return true;
  }

  static bool underflowed(const Node* node) {
    const size_t min_keys = Fanout / 2 - 1;
    return node->leaf ? node->keys.size() < min_keys
                      : node->children.size() < Fanout / 2;
  }

  void rebalance(Node* parent, size_t ci) {
    Node* child = parent->children[ci].get();
    Node* left = ci > 0 ? parent->children[ci - 1].get() : nullptr;
    Node* right = ci + 1 < parent->children.size()
                      ? parent->children[ci + 1].get()
                      : nullptr;

    if (child->leaf) {
      if (left && left->keys.size() > Fanout / 2) {
        // Borrow rightmost from the left sibling.
        child->keys.insert(child->keys.begin(), left->keys.back());
        child->values.insert(child->values.begin(),
                             std::move(left->values.back()));
        left->keys.pop_back();
        left->values.pop_back();
        parent->keys[ci - 1] = child->keys.front();
      } else if (right && right->keys.size() > Fanout / 2) {
        child->keys.push_back(right->keys.front());
        child->values.push_back(std::move(right->values.front()));
        right->keys.erase(right->keys.begin());
        right->values.erase(right->values.begin());
        parent->keys[ci] = right->keys.front();
      } else if (left) {
        merge_leaves(parent, ci - 1);
      } else if (right) {
        merge_leaves(parent, ci);
      }
    } else {
      if (left && left->children.size() > Fanout / 2) {
        child->keys.insert(child->keys.begin(), parent->keys[ci - 1]);
        parent->keys[ci - 1] = left->keys.back();
        left->keys.pop_back();
        child->children.insert(child->children.begin(),
                               std::move(left->children.back()));
        left->children.pop_back();
      } else if (right && right->children.size() > Fanout / 2) {
        child->keys.push_back(parent->keys[ci]);
        parent->keys[ci] = right->keys.front();
        right->keys.erase(right->keys.begin());
        child->children.push_back(std::move(right->children.front()));
        right->children.erase(right->children.begin());
      } else if (left) {
        merge_internals(parent, ci - 1);
      } else if (right) {
        merge_internals(parent, ci);
      }
    }
  }

  /// Merges children[i+1] into children[i] (both leaves).
  void merge_leaves(Node* parent, size_t i) {
    Node* dst = parent->children[i].get();
    Node* src = parent->children[i + 1].get();
    dst->keys.insert(dst->keys.end(), src->keys.begin(), src->keys.end());
    dst->values.insert(dst->values.end(),
                       std::make_move_iterator(src->values.begin()),
                       std::make_move_iterator(src->values.end()));
    dst->next = src->next;
    parent->keys.erase(parent->keys.begin() + static_cast<ptrdiff_t>(i));
    parent->children.erase(parent->children.begin() +
                           static_cast<ptrdiff_t>(i) + 1);
    --node_count_;
  }

  /// Merges children[i+1] into children[i] (both internal).
  void merge_internals(Node* parent, size_t i) {
    Node* dst = parent->children[i].get();
    Node* src = parent->children[i + 1].get();
    dst->keys.push_back(parent->keys[i]);
    dst->keys.insert(dst->keys.end(), src->keys.begin(), src->keys.end());
    dst->children.insert(dst->children.end(),
                         std::make_move_iterator(src->children.begin()),
                         std::make_move_iterator(src->children.end()));
    parent->keys.erase(parent->keys.begin() + static_cast<ptrdiff_t>(i));
    parent->children.erase(parent->children.begin() +
                           static_cast<ptrdiff_t>(i) + 1);
    --node_count_;
  }

  Status validate_node(const Node* node, int depth, const Key* lower,
                       const Key* upper, size_t& leaf_keys) const {
    const bool is_root = node == root_.get();
    for (size_t i = 0; i + 1 < node->keys.size(); ++i) {
      if (!(node->keys[i] < node->keys[i + 1])) {
        return CorruptionError("bptree: keys not strictly ascending");
      }
    }
    for (const Key& k : node->keys) {
      if (lower != nullptr && k < *lower) {
        return CorruptionError("bptree: key below subtree bound");
      }
      if (upper != nullptr && !(k < *upper)) {
        return CorruptionError("bptree: key above subtree bound");
      }
    }
    if (node->leaf) {
      if (depth != height_) return CorruptionError("bptree: uneven depth");
      if (!node->children.empty()) {
        return CorruptionError("bptree: leaf with children");
      }
      if (node->values.size() != node->keys.size()) {
        return CorruptionError("bptree: leaf key/value arity");
      }
      if (node->keys.size() >= Fanout) {
        return CorruptionError("bptree: overfull leaf");
      }
      const size_t min_keys = is_root ? 1 : Fanout / 2 - 1;
      if (node->keys.size() < min_keys) {
        return CorruptionError("bptree: underfull leaf");
      }
      leaf_keys += node->keys.size();
      return OkStatus();
    }
    if (!node->values.empty()) {
      return CorruptionError("bptree: internal node with values");
    }
    if (node->children.size() != node->keys.size() + 1) {
      return CorruptionError("bptree: internal key/child arity");
    }
    if (node->children.size() > Fanout) {
      return CorruptionError("bptree: overfull internal node");
    }
    const size_t min_children = is_root ? 2 : Fanout / 2;
    if (node->children.size() < min_children) {
      return CorruptionError("bptree: underfull internal node");
    }
    for (size_t i = 0; i < node->children.size(); ++i) {
      const Key* lo = i == 0 ? lower : &node->keys[i - 1];
      const Key* hi = i == node->keys.size() ? upper : &node->keys[i];
      NVMECR_RETURN_IF_ERROR(
          validate_node(node->children[i].get(), depth + 1, lo, hi,
                        leaf_keys));
    }
    return OkStatus();
  }

  const Node* leftmost_leaf() const {
    const Node* node = root_.get();
    if (!node) return nullptr;
    while (!node->leaf) node = node->children.front().get();
    return node;
  }

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
  size_t node_count_ = 1;
  int height_ = 0;
};

}  // namespace nvmecr::microfs
