#include "microfs/microfs.h"

#include <algorithm>

#include "common/crc.h"
#include "common/log.h"
#include "common/rng.h"
#include "hw/payload_store.h"
#include "microfs/codec.h"
#include "obs/profile.h"
#include "simcore/profile.h"
#include "simcore/trace.h"

namespace nvmecr::microfs {

namespace {

constexpr uint32_t kSuperblockMagic = 0x7546534d;  // "MSFu"
constexpr uint32_t kCkptMagic = 0x74704b43;        // "CKpt"
constexpr uint64_t kSuperblockBytes = 4096;
constexpr uint64_t kInvalidBlock = UINT64_MAX;

}  // namespace

// ---------------------------------------------------------------------
// Construction / geometry
// ---------------------------------------------------------------------

MicroFs::MicroFs(sim::Engine& engine, hw::BlockDevice& dev, Options options,
                 Geometry geo)
    : engine_(engine), dev_(dev), options_(options), geo_(geo) {
  pool_.reset(geo.data_blocks);
  log_ = std::make_unique<OpLog>(dev, geo.log_base,
                                 options.log_slots, options.coalesce_window);
}

StatusOr<MicroFs::Geometry> MicroFs::compute_geometry(
    const hw::BlockDevice& dev, const Options& options) {
  if (options.hugeblock_size == 0 ||
      options.hugeblock_size % dev.hw_block_size() != 0) {
    return InvalidArgumentError(
        "hugeblock size must be a multiple of the hardware block");
  }
  Geometry geo;
  geo.log_base = kSuperblockBytes;
  geo.log_bytes = round_up(
      static_cast<uint64_t>(options.log_slots) * OpLog::kRecordBytes, 4096);

  uint64_t ckpt = options.ckpt_region_bytes;
  if (ckpt == 0) {
    // Sized for the serialized pool (~9.2 B/block) plus inode/B+Tree
    // headroom; the state checkpoint fails cleanly if it ever outgrows
    // this.
    const uint64_t upper_blocks = dev.capacity() / options.hugeblock_size;
    ckpt = std::max<uint64_t>(256_KiB, 64_KiB + 16 * upper_blocks);
  }
  geo.ckpt_bytes = round_up(ckpt, 4096);
  geo.ckpt_base_a = geo.log_base + geo.log_bytes;
  geo.ckpt_base_b = geo.ckpt_base_a + geo.ckpt_bytes;
  geo.data_base = round_up(geo.ckpt_base_b + geo.ckpt_bytes,
                           options.hugeblock_size);
  if (geo.data_base >= dev.capacity()) {
    return NoSpaceError("partition too small for metadata regions");
  }
  geo.data_blocks = (dev.capacity() - geo.data_base) / options.hugeblock_size;
  if (geo.data_blocks == 0) {
    return NoSpaceError("partition too small for any hugeblock");
  }
  return geo;
}

sim::Task<Status> MicroFs::write_superblock() {
  std::vector<std::byte> buf;
  Encoder enc(buf);
  enc.u32(kSuperblockMagic);
  enc.u32(1);  // version
  enc.u64(options_.hugeblock_size);
  enc.u32(options_.log_slots);
  enc.u64(geo_.ckpt_bytes);
  enc.u32(static_cast<uint32_t>(crc64(buf.data(), buf.size())));
  co_return co_await dev_.write(0, buf);
}

sim::Task<StatusOr<std::pair<Options, MicroFs::Geometry>>>
MicroFs::read_superblock(hw::BlockDevice& dev, const Options& requested) {
  using Result = StatusOr<std::pair<Options, Geometry>>;
  std::vector<std::byte> buf(32);
  Status s = co_await dev.read(0, buf);
  if (!s.ok()) co_return Result(s);
  Decoder dec(buf);
  uint32_t magic = 0, version = 0, log_slots = 0, stored_crc = 0;
  uint64_t hugeblock = 0, ckpt_bytes = 0;
  if (!dec.u32(magic).ok() || magic != kSuperblockMagic) {
    co_return Result(CorruptionError("bad superblock magic"));
  }
  (void)dec.u32(version);
  (void)dec.u64(hugeblock);
  (void)dec.u32(log_slots);
  (void)dec.u64(ckpt_bytes);
  const size_t body = dec.consumed();
  (void)dec.u32(stored_crc);
  if (stored_crc != static_cast<uint32_t>(crc64(buf.data(), body))) {
    co_return Result(CorruptionError("superblock crc mismatch"));
  }
  Options options = requested;  // runtime knobs from the caller...
  options.hugeblock_size = hugeblock;  // ...geometry from the device
  options.log_slots = log_slots;
  options.ckpt_region_bytes = ckpt_bytes;
  auto geo = compute_geometry(dev, options);
  if (!geo.ok()) co_return Result(geo.status());
  co_return Result(std::make_pair(options, *geo));
}

sim::Task<StatusOr<std::unique_ptr<MicroFs>>> MicroFs::format(
    sim::Engine& engine, hw::BlockDevice& dev, Options options) {
  using Result = StatusOr<std::unique_ptr<MicroFs>>;
  auto geo = compute_geometry(dev, options);
  if (!geo.ok()) co_return Result(geo.status());
  options.ckpt_region_bytes = geo->ckpt_bytes;

  std::unique_ptr<MicroFs> fs(new MicroFs(engine, dev, options, *geo));
  Status s = co_await fs->write_superblock();
  if (!s.ok()) co_return Result(s);

  // Root directory (a file on the partition, §III-E).
  Inode& root = fs->inodes_.alloc(InodeType::kDirectory);
  NVMECR_CHECK(root.ino == kRootIno);
  root.mode = 0755;
  root.uid = options.uid;
  fs->paths_.insert("/", root.ino);

  // Initial state checkpoint so a crash before the first user op
  // recovers an empty-but-valid filesystem.
  s = co_await fs->checkpoint_state();
  if (!s.ok()) co_return Result(s);
  co_return Result(std::move(fs));
}

// ---------------------------------------------------------------------
// Path helpers
// ---------------------------------------------------------------------

Status MicroFs::validate_path(const std::string& path) {
  if (path.empty() || path[0] != '/') {
    return InvalidArgumentError("path must be absolute: " + path);
  }
  if (path == "/") return OkStatus();
  if (path.back() == '/') {
    return InvalidArgumentError("trailing slash: " + path);
  }
  size_t start = 1;
  for (size_t i = 1; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      const size_t len = i - start;
      if (len == 0) return InvalidArgumentError("empty component: " + path);
      if (len > OpLog::kMaxName) return NameTooLongError(path);
      start = i + 1;
    }
  }
  return OkStatus();
}

std::string MicroFs::parent_of(const std::string& path) {
  const size_t pos = path.find_last_of('/');
  return pos == 0 ? "/" : path.substr(0, pos);
}

std::string MicroFs::basename_of(const std::string& path) {
  return path.substr(path.find_last_of('/') + 1);
}

// ---------------------------------------------------------------------
// Observability
// ---------------------------------------------------------------------

void MicroFs::set_observer(const obs::Observer& o, const std::string& label) {
  obs_ = o;
  trace_track_ = "microfs/" + label;
  m_pool_allocs_ = nullptr;
  m_pool_frees_ = nullptr;
  m_pool_occupancy_ = nullptr;
  m_bptree_ops_ = nullptr;
  profile_tag_data_ = engine_.profile_tag("microfs/data");
  log_->set_observer(o, label, &engine_);
  if (obs_.metrics == nullptr) return;
  // Counters aggregate across instances; the occupancy gauge is per
  // instance so per-rank imbalance stays visible.
  m_pool_allocs_ = obs_.metrics->counter("microfs.pool.allocs");
  m_pool_frees_ = obs_.metrics->counter("microfs.pool.frees");
  m_bptree_ops_ = obs_.metrics->counter("microfs.bptree.ops");
  m_pool_occupancy_ =
      obs_.metrics->gauge("microfs." + label + ".pool_allocated_blocks");
}

void MicroFs::record_serialize(SimDuration d) {
  if (obs_.epoch != nullptr) {
    obs_.epoch->record(engine_, obs::EpochProfiler::Phase::kSerialize, d);
  }
}

// ---------------------------------------------------------------------
// Block mapping and data-plane IO
// ---------------------------------------------------------------------

Status MicroFs::ensure_blocks(Inode& inode, uint64_t end) {
  const uint64_t B = options_.hugeblock_size;
  const uint64_t needed = ceil_div(end, B);
  if (needed > inode.blocks.size()) {
    inode.blocks.resize(needed, kInvalidBlock);
  }
  uint64_t new_blocks = 0;
  for (uint64_t i = 0; i < needed; ++i) {
    if (inode.blocks[i] == kInvalidBlock) {
      auto block = pool_.alloc();
      if (!block.ok()) return block.status();
      inode.blocks[i] = *block;
      ++pool_version_;
      ++new_blocks;
    }
  }
  if (new_blocks > 0 && m_pool_allocs_ != nullptr) {
    m_pool_allocs_->add(new_blocks);
    m_pool_occupancy_->set(engine_.now(),
                           static_cast<double>(pool_.allocated_count()));
  }
  return OkStatus();
}

uint64_t MicroFs::device_offset(const Inode& inode, uint64_t file_off) const {
  const uint64_t B = options_.hugeblock_size;
  const uint64_t hb = file_off / B;
  NVMECR_CHECK(hb < inode.blocks.size() &&
               inode.blocks[hb] != kInvalidBlock);
  return geo_.data_base + inode.blocks[hb] * B + file_off % B;
}

sim::Task<Status> MicroFs::hugeblock_io(Inode& inode, uint64_t off,
                                        uint64_t len, bool is_write) {
  if (len == 0) co_return OkStatus();
  // Data-plane dispatches (device batches, their completions) bill to
  // the "microfs/data" cost center unless a deeper layer re-tags them.
  sim::ProfileTagScope profile_scope(engine_, profile_tag_data_);
  const SimTime io_t0 = engine_.now();
  const uint64_t B = options_.hugeblock_size;
  const uint64_t first_hb = off / B;
  const uint64_t last_hb = (off + len - 1) / B;

  // Walk contiguous device-block runs and issue batched commands: one
  // host command per hugeblock, up to io_batch_hugeblocks per event.
  uint64_t run_start_hb = first_hb;
  while (run_start_hb <= last_hb) {
    uint64_t run_len_hb = 1;
    while (run_start_hb + run_len_hb <= last_hb &&
           run_len_hb < options_.io_batch_hugeblocks &&
           inode.blocks[run_start_hb + run_len_hb] ==
               inode.blocks[run_start_hb + run_len_hb - 1] + 1) {
      ++run_len_hb;
    }
    const uint64_t dev_off =
        geo_.data_base + inode.blocks[run_start_hb] * B;
    const uint64_t bytes = run_len_hb * B;
    const auto subcmds = static_cast<uint32_t>(run_len_hb);
    if (is_write) {
      Status s = co_await dev_.write_tagged_batch(dev_off, bytes,
                                                  inode.seed, subcmds);
      if (!s.ok()) co_return s;
    } else {
      auto tag = co_await dev_.read_tagged_batch(dev_off, bytes, subcmds);
      if (!tag.ok()) co_return tag.status();
      const uint64_t expect = hw::PayloadStore::expected_tag(
          inode.seed, dev_.tag_origin() + dev_off, bytes,
          dev_.hw_block_size());
      if (*tag != expect) {
        co_return CorruptionError("tagged content mismatch in " +
                                  std::to_string(inode.ino));
      }
    }
    run_start_hb += run_len_hb;
  }
  if (obs_.trace != nullptr) {
    obs_.trace->add_span(trace_track_,
                         is_write ? "hugeblock_write" : "hugeblock_read",
                         io_t0, engine_.now(),
                         {{"bytes", static_cast<double>(len)}});
  }
  co_return OkStatus();
}

// ---------------------------------------------------------------------
// Directory files
// ---------------------------------------------------------------------

sim::Task<Status> MicroFs::append_dirent(Inode& dir, const Dirent& entry) {
  std::vector<std::byte> buf;
  encode_dirent(entry, buf);
  const uint64_t off = dir.size;
  NVMECR_CO_RETURN_IF_ERROR(ensure_blocks(dir, off + buf.size()));

  // The dirent may straddle a hugeblock boundary; write each piece at
  // its mapped device offset.
  uint64_t pos = 0;
  const uint64_t B = options_.hugeblock_size;
  while (pos < buf.size()) {
    const uint64_t file_off = off + pos;
    const uint64_t in_block = std::min<uint64_t>(buf.size() - pos,
                                                 B - file_off % B);
    Status s = co_await dev_.write(
        device_offset(dir, file_off),
        std::span<const std::byte>(buf.data() + pos, in_block));
    if (!s.ok()) co_return s;
    pos += in_block;
  }
  // The directory grows only once the bytes are durable: a state
  // checkpoint snapshotted during the writes above must not include a
  // window over content that a crash could lose.
  dir.size += buf.size();
  dir.content = ContentKind::kBytes;
  stats_.dirent_bytes_written += buf.size();
  co_return OkStatus();
}

sim::Task<StatusOr<std::vector<Dirent>>> MicroFs::read_dirfile(
    const std::string& path) {
  using Result = StatusOr<std::vector<Dirent>>;
  const Ino* ino = paths_.find(path);
  if (ino == nullptr) co_return Result(NotFoundError(path));
  Inode* dir = inodes_.get(*ino);
  NVMECR_CHECK(dir != nullptr);
  if (dir->type != InodeType::kDirectory) {
    co_return Result(NotDirectoryError(path));
  }
  std::vector<std::byte> buf(dir->size);
  uint64_t pos = 0;
  const uint64_t B = options_.hugeblock_size;
  while (pos < dir->size) {
    const uint64_t in_block = std::min<uint64_t>(dir->size - pos,
                                                 B - pos % B);
    Status s = co_await dev_.read(
        device_offset(*dir, pos),
        std::span<std::byte>(buf.data() + pos, in_block));
    if (!s.ok()) co_return Result(s);
    pos += in_block;
  }
  co_return decode_dirents(buf);
}

// ---------------------------------------------------------------------
// Logging (metadata provenance on/off)
// ---------------------------------------------------------------------

sim::Task<Status> MicroFs::log_op(LogRecord rec, const Inode& touched) {
  if (!options_.metadata_provenance) {
    // Drilldown baseline: write the full inode image (and pay a device
    // round trip) on every metadata-mutating op — what conventional
    // filesystems effectively do with physical journaling.
    std::vector<std::byte> buf;
    Encoder enc(buf);
    touched.serialize(enc);
    buf.resize(round_up(std::max<size_t>(buf.size(), 1), 4096));
    if (buf.size() > geo_.ckpt_bytes) buf.resize(geo_.ckpt_bytes);
    const uint64_t window = geo_.ckpt_bytes - buf.size() + 4096;
    const uint64_t slot_off =
        geo_.ckpt_base_a + (touched.ino * 4096) % window / 4096 * 4096;
    stats_.inode_writeback_bytes += buf.size();
    Status ws = co_await dev_.write(slot_off, buf);
    if (!ws.ok()) co_return ws;
    // Ordered-journaling semantics: the metadata image must be stable
    // before the operation retires (what jbd2-style journaling pays and
    // metadata provenance avoids, §III-E).
    co_return co_await dev_.flush();
  }

  // Decide whether this WRITE may coalesce with its predecessor: only if
  // no *other* pool mutation happened since that record was last
  // extended — the condition that keeps log replay's block allocation
  // byte-identical to the original execution.
  bool allow_coalesce = false;
  if (rec.type == OpType::kWrite) {
    auto it = coalesce_candidates_.find(rec.ino);
    allow_coalesce = it != coalesce_candidates_.end() &&
                     it->second.next_off == rec.a &&
                     it->second.pool_version == pool_version_before_op_;
  } else {
    coalesce_candidates_.clear();  // namespace ops end all runs
  }

  Status s = co_await log_->append(rec, allow_coalesce);
  if (!s.ok() && s.code() == ErrorCode::kUnavailable) {
    // Ring full: force a state checkpoint (frees every slot) and retry.
    Status cs = co_await checkpoint_state();
    if (!cs.ok()) co_return cs;
    s = co_await log_->append(rec, /*allow_coalesce=*/false);
  }
  if (s.ok() && rec.type == OpType::kWrite) {
    coalesce_candidates_[rec.ino] =
        CoalesceCandidate{rec.a + rec.b, pool_version_};
  }
  co_return s;
}

// ... (continued in this file below)

// ---------------------------------------------------------------------
// Namespace operations
// ---------------------------------------------------------------------

sim::Task<Status> MicroFs::mkdir(const std::string& path, uint32_t mode) {
  co_await engine_.delay(options_.cpu_per_op);
  NVMECR_CO_RETURN_IF_ERROR(validate_path(path));
  if (path == "/") co_return ExistsError(path);
  if (paths_.contains(path)) co_return ExistsError(path);
  const std::string parent = parent_of(path);
  const Ino* parent_ptr = paths_.find(parent);
  if (parent_ptr == nullptr) co_return NotFoundError(parent);
  // Copy before mutating the tree: inserts can split nodes and move
  // values.
  const Ino parent_ino = *parent_ptr;
  Inode* dir = inodes_.get(parent_ino);
  if (dir->type != InodeType::kDirectory) co_return NotDirectoryError(parent);

  pool_version_before_op_ = pool_version_;
  Inode& inode = inodes_.alloc(InodeType::kDirectory);
  inode.mode = mode;
  inode.uid = options_.uid;
  paths_.insert(path, inode.ino);
  if (m_bptree_ops_ != nullptr) m_bptree_ops_->add();

  LogRecord rec;
  rec.type = OpType::kMkdir;
  rec.ino = inode.ino;
  rec.parent = parent_ino;
  rec.a = mode | (static_cast<uint64_t>(options_.uid) << 32);
  rec.name = basename_of(path);
  // WAL discipline: the dirent bytes (data) reach the device before the
  // log record (commit). A crash in between leaves the bytes outside the
  // parent's recovered [0, size) window — invisible, not garbage.
  // Named (not temporary) dirent: GCC 12 miscompiles temporary aggregate
  // arguments to coroutine calls inside co_await expressions.
  const Dirent entry{true, rec.name, inode.ino};
  NVMECR_CO_RETURN_IF_ERROR(
      co_await append_dirent(*inodes_.get(parent_ino), entry));
  rec.psize = inodes_.get(parent_ino)->size;
  NVMECR_CO_RETURN_IF_ERROR(co_await log_op(rec, inode));
  co_return OkStatus();
}

sim::Task<StatusOr<int>> MicroFs::open(const std::string& path,
                                       OpenFlags flags, uint32_t mode) {
  using Result = StatusOr<int>;
  co_await engine_.delay(options_.cpu_per_op);
  NVMECR_CO_RETURN_IF_ERROR(validate_path(path));
  pool_version_before_op_ = pool_version_;

  Ino ino = kInvalidIno;
  const Ino* existing = paths_.find(path);
  if (m_bptree_ops_ != nullptr) m_bptree_ops_->add();
  if (existing == nullptr) {
    if (!flags.create) co_return Result(NotFoundError(path));
    const std::string parent = parent_of(path);
    const Ino* parent_ptr = paths_.find(parent);
    if (parent_ptr == nullptr) co_return Result(NotFoundError(parent));
    const Ino parent_ino = *parent_ptr;  // copy before the tree mutates
    if (inodes_.get(parent_ino)->type != InodeType::kDirectory) {
      co_return Result(NotDirectoryError(parent));
    }

    Inode& inode = inodes_.alloc(InodeType::kFile);
    inode.mode = mode;
    inode.uid = options_.uid;
    inode.seed = mix64(fnv1a(path.data(), path.size()) ^ inode.ino);
    paths_.insert(path, inode.ino);
    if (m_bptree_ops_ != nullptr) m_bptree_ops_->add();
    ino = inode.ino;
    ++stats_.creates;

    LogRecord rec;
    rec.type = OpType::kCreate;
    rec.ino = ino;
    rec.parent = parent_ino;
    rec.a = mode | (static_cast<uint64_t>(options_.uid) << 32);
    rec.b = inode.seed;
    rec.name = basename_of(path);
    // Dirent (data) before record (commit) — see mkdir.
    const Dirent entry{true, rec.name, ino};
    NVMECR_CO_RETURN_IF_ERROR(
        co_await append_dirent(*inodes_.get(parent_ino), entry));
    rec.psize = inodes_.get(parent_ino)->size;
    NVMECR_CO_RETURN_IF_ERROR(co_await log_op(rec, inode));
  } else {
    ino = *existing;
    Inode* inode = inodes_.get(ino);
    if (inode->type == InodeType::kDirectory && (flags.write || flags.truncate)) {
      co_return Result(IsDirectoryError(path));
    }
    // POSIX permission checks (§III-F: the control plane is the trusted
    // intermediary).
    if (inode->uid != options_.uid) {
      if (flags.write && !(inode->mode & 0022)) {
        co_return Result(PermissionError(path));
      }
      if (flags.read && !(inode->mode & 0044)) {
        co_return Result(PermissionError(path));
      }
    }
    if (flags.truncate && inode->size > 0) {
      // Truncation is logged as a CREATE of the same ino (replay resets
      // the file), and frees the data blocks in deterministic order.
      uint64_t freed = 0;
      for (uint64_t b : inode->blocks) {
        if (b != kInvalidBlock) {
          NVMECR_CO_RETURN_IF_ERROR(pool_.free(b));
          ++pool_version_;
          ++freed;
        }
      }
      if (freed > 0 && m_pool_frees_ != nullptr) {
        m_pool_frees_->add(freed);
        m_pool_occupancy_->set(engine_.now(),
                               static_cast<double>(pool_.allocated_count()));
      }
      inode->blocks.clear();
      inode->size = 0;
      inode->content = ContentKind::kNone;
      coalesce_candidates_.erase(ino);
      LogRecord rec;
      rec.type = OpType::kCreate;
      rec.ino = ino;
      rec.parent = *paths_.find(parent_of(path));
      rec.a = inode->mode | (static_cast<uint64_t>(inode->uid) << 32);
      rec.b = inode->seed;
      rec.name = basename_of(path);
      NVMECR_CO_RETURN_IF_ERROR(co_await log_op(rec, *inode));
    }
  }

  const int fd = next_fd_++;
  OpenFile of;
  of.ino = ino;
  of.writable = flags.write;
  of.write_pos = inodes_.get(ino)->size;
  open_files_.emplace(fd, of);
  ++stats_.opens;
  co_return Result(fd);
}

sim::Task<Status> MicroFs::unlink(const std::string& path) {
  co_await engine_.delay(options_.cpu_per_op);
  NVMECR_CO_RETURN_IF_ERROR(validate_path(path));
  if (path == "/") co_return InvalidArgumentError("cannot unlink root");
  const Ino* ino_ptr = paths_.find(path);
  if (ino_ptr == nullptr) co_return NotFoundError(path);
  const Ino ino = *ino_ptr;
  for (const auto& [fd, of] : open_files_) {
    if (of.ino == ino) {
      co_return InvalidArgumentError("unlink of open file: " + path);
    }
  }
  Inode* inode = inodes_.get(ino);
  if (inode->type == InodeType::kDirectory) {
    auto children = readdir(path);
    if (!children.ok()) co_return children.status();
    if (!children->empty()) co_return NotEmptyError(path);
  }

  pool_version_before_op_ = pool_version_;
  const std::string parent = parent_of(path);
  const Ino parent_ino = *paths_.find(parent);

  LogRecord rec;
  rec.type = OpType::kUnlink;
  rec.ino = ino;
  rec.parent = parent_ino;
  rec.name = basename_of(path);
  // Tombstone dirent (data) before record (commit) — see mkdir. A crash
  // in between leaves the tombstone outside the parent's recovered
  // window, so the directory still lists the file — matching the tree,
  // which also still holds the path (the unlink never committed).
  const Dirent entry{false, rec.name, ino};
  NVMECR_CO_RETURN_IF_ERROR(
      co_await append_dirent(*inodes_.get(parent_ino), entry));
  rec.psize = inodes_.get(parent_ino)->size;
  NVMECR_CO_RETURN_IF_ERROR(co_await log_op(rec, *inode));

  uint64_t freed = 0;
  for (uint64_t b : inode->blocks) {
    if (b != kInvalidBlock) {
      NVMECR_CO_RETURN_IF_ERROR(pool_.free(b));
      ++pool_version_;
      ++freed;
    }
  }
  if (freed > 0 && m_pool_frees_ != nullptr) {
    m_pool_frees_->add(freed);
    m_pool_occupancy_->set(engine_.now(),
                           static_cast<double>(pool_.allocated_count()));
  }
  coalesce_candidates_.erase(ino);
  paths_.erase(path);
  if (m_bptree_ops_ != nullptr) m_bptree_ops_->add();
  NVMECR_CO_RETURN_IF_ERROR(inodes_.free(ino));
  ++stats_.unlinks;
  co_return OkStatus();
}

sim::Task<Status> MicroFs::rename(const std::string& from,
                                  const std::string& to) {
  co_await engine_.delay(options_.cpu_per_op);
  NVMECR_CO_RETURN_IF_ERROR(validate_path(from));
  NVMECR_CO_RETURN_IF_ERROR(validate_path(to));
  if (from == "/" || to == "/") {
    co_return InvalidArgumentError("cannot rename root");
  }
  const Ino* ino_ptr = paths_.find(from);
  if (ino_ptr == nullptr) co_return NotFoundError(from);
  const Ino ino = *ino_ptr;
  Inode* inode = inodes_.get(ino);
  if (inode->type == InodeType::kDirectory) {
    // A directory rename would re-key every descendant path in the
    // B+Tree; the checkpoint workloads only ever move files.
    co_return IsDirectoryError(from);
  }
  if (paths_.contains(to)) co_return ExistsError(to);
  const std::string new_parent = parent_of(to);
  const Ino* new_parent_ptr = paths_.find(new_parent);
  if (new_parent_ptr == nullptr) co_return NotFoundError(new_parent);
  const Ino new_parent_ino = *new_parent_ptr;
  if (inodes_.get(new_parent_ino)->type != InodeType::kDirectory) {
    co_return NotDirectoryError(new_parent);
  }
  const Ino old_parent_ino = *paths_.find(parent_of(from));

  pool_version_before_op_ = pool_version_;
  LogRecord rec;
  rec.type = OpType::kRename;
  rec.ino = ino;
  rec.parent = new_parent_ino;
  rec.a = old_parent_ino;
  rec.name = basename_of(to);
  // Both dirent mutations (data) precede the record (commit) — see
  // mkdir. Old parent's tombstone first, then the new entry: replay
  // mirrors this order so pool allocations stay deterministic.
  const Dirent tomb{false, basename_of(from), ino};
  NVMECR_CO_RETURN_IF_ERROR(
      co_await append_dirent(*inodes_.get(old_parent_ino), tomb));
  const Dirent entry{true, rec.name, ino};
  NVMECR_CO_RETURN_IF_ERROR(
      co_await append_dirent(*inodes_.get(new_parent_ino), entry));
  rec.b = inodes_.get(old_parent_ino)->size;
  rec.psize = inodes_.get(new_parent_ino)->size;
  NVMECR_CO_RETURN_IF_ERROR(co_await log_op(rec, *inode));

  paths_.erase(from);
  paths_.insert(to, ino);
  if (m_bptree_ops_ != nullptr) m_bptree_ops_->add();
  ++stats_.renames;
  co_return OkStatus();
}

sim::Task<Status> MicroFs::close(int fd) {
  co_await engine_.delay(options_.cpu_per_op);
  if (open_files_.erase(fd) == 0) co_return BadFdError();
  // Sync point: deferred (group-committed) log rewrites become durable.
  NVMECR_CO_RETURN_IF_ERROR(co_await log_->flush());
  maybe_spawn_checkpoint();
  co_return OkStatus();
}

StatusOr<FileStat> MicroFs::stat(const std::string& path) const {
  NVMECR_RETURN_IF_ERROR(validate_path(path));
  const Ino* ino = paths_.find(path);
  if (ino == nullptr) return NotFoundError(path);
  const Inode* inode = inodes_.get(*ino);
  FileStat st;
  st.ino = inode->ino;
  st.type = inode->type;
  st.content = inode->content;
  st.size = inode->size;
  st.mode = inode->mode;
  st.uid = inode->uid;
  return st;
}

StatusOr<std::vector<std::string>> MicroFs::readdir(
    const std::string& path) const {
  NVMECR_RETURN_IF_ERROR(validate_path(path));
  const Ino* ino = paths_.find(path);
  if (ino == nullptr) return NotFoundError(path);
  if (inodes_.get(*ino)->type != InodeType::kDirectory) {
    return NotDirectoryError(path);
  }
  const std::string prefix = path == "/" ? "/" : path + "/";
  std::vector<std::string> names;
  paths_.scan_from(prefix, [&](const std::string& key, const Ino&) {
    if (key.compare(0, prefix.size(), prefix) != 0) {
      return false;  // sorted past the subtree
    }
    if (key.size() == prefix.size()) return true;  // the root itself ("/")
    const std::string rest = key.substr(prefix.size());
    if (rest.find('/') == std::string::npos) names.push_back(rest);
    return true;
  });
  return names;
}

// ---------------------------------------------------------------------
// Data plane
// ---------------------------------------------------------------------

sim::Task<StatusOr<uint64_t>> MicroFs::write(int fd,
                                             std::span<const std::byte> data) {
  using Result = StatusOr<uint64_t>;
  auto it = open_files_.find(fd);
  if (it == open_files_.end()) co_return Result(BadFdError());
  if (!it->second.writable) co_return Result(PermissionError("fd read-only"));
  Inode* inode = inodes_.get(it->second.ino);
  if (inode->content == ContentKind::kTagged) {
    co_return Result(InvalidArgumentError("byte write into tagged file"));
  }
  const uint64_t off = it->second.write_pos;
  const uint64_t len = data.size();
  if (len == 0) co_return Result(uint64_t{0});
  pool_version_before_op_ = pool_version_;

  NVMECR_CO_RETURN_IF_ERROR(ensure_blocks(*inode, off + len));
  const uint64_t blocks_touched =
      (off + len - 1) / options_.hugeblock_size - off / options_.hugeblock_size + 1;
  const SimDuration write_cpu =
      options_.cpu_per_op +
      options_.cpu_per_block * static_cast<SimDuration>(blocks_touched);
  {
    sim::ProfileTagScope serialize_scope(engine_, profile_tag_data_);
    co_await engine_.delay(write_cpu);
  }
  record_serialize(write_cpu);

  // Byte content: write each piece at its mapped device offset.
  uint64_t pos = 0;
  const uint64_t B = options_.hugeblock_size;
  while (pos < len) {
    const uint64_t file_off = off + pos;
    const uint64_t in_block = std::min<uint64_t>(len - pos, B - file_off % B);
    Status s = co_await dev_.write(
        device_offset(*inode, file_off),
        std::span<const std::byte>(data.data() + pos, in_block));
    if (!s.ok()) co_return Result(s);
    pos += in_block;
  }

  inode->content = ContentKind::kBytes;
  inode->size = std::max(inode->size, off + len);
  it->second.write_pos = off + len;
  stats_.data_bytes_written += len;
  stats_.payload_bytes_written += len;
  ++stats_.writes;

  LogRecord rec;
  rec.type = OpType::kWrite;
  rec.ino = inode->ino;
  rec.a = off;
  rec.b = len;
  NVMECR_CO_RETURN_IF_ERROR(co_await log_op(rec, *inode));
  co_return Result(len);
}

sim::Task<Status> MicroFs::write_tagged(int fd, uint64_t len) {
  auto it = open_files_.find(fd);
  if (it == open_files_.end()) co_return BadFdError();
  if (!it->second.writable) co_return PermissionError("fd read-only");
  if (len == 0) co_return OkStatus();
  Inode* inode = inodes_.get(it->second.ino);
  if (inode->content == ContentKind::kBytes) {
    co_return InvalidArgumentError("tagged write into byte file");
  }
  const uint64_t off = it->second.write_pos;
  const uint64_t B = options_.hugeblock_size;
  pool_version_before_op_ = pool_version_;

  // IO in hugeblock units (§III-E): the device span covers every
  // hugeblock the byte range touches, so unaligned streams pay padding
  // amplification (the right side of Figure 7(a)'s U-shape).
  const uint64_t aligned_start = off / B * B;
  const uint64_t aligned_end = ceil_div(off + len, B) * B;
  NVMECR_CO_RETURN_IF_ERROR(ensure_blocks(*inode, aligned_end));
  const uint64_t blocks_touched = (aligned_end - aligned_start) / B;
  const SimDuration wt_cpu =
      options_.cpu_per_op +
      options_.cpu_per_block * static_cast<SimDuration>(blocks_touched);
  {
    sim::ProfileTagScope serialize_scope(engine_, profile_tag_data_);
    co_await engine_.delay(wt_cpu);
  }
  record_serialize(wt_cpu);

  inode->content = ContentKind::kTagged;
  NVMECR_CO_RETURN_IF_ERROR(co_await hugeblock_io(
      *inode, aligned_start, aligned_end - aligned_start, /*is_write=*/true));

  inode->size = std::max(inode->size, off + len);
  it->second.write_pos = off + len;
  stats_.data_bytes_written += aligned_end - aligned_start;
  stats_.payload_bytes_written += len;
  ++stats_.writes;

  LogRecord rec;
  rec.type = OpType::kWrite;
  rec.ino = inode->ino;
  rec.a = off;
  rec.b = len;
  rec.flags = kLogFlagTagged;
  co_return co_await log_op(rec, *inode);
}

sim::Task<StatusOr<uint64_t>> MicroFs::read(int fd,
                                            std::span<std::byte> out) {
  using Result = StatusOr<uint64_t>;
  auto it = open_files_.find(fd);
  if (it == open_files_.end()) co_return Result(BadFdError());
  Inode* inode = inodes_.get(it->second.ino);
  if (inode->content == ContentKind::kTagged) {
    co_return Result(InvalidArgumentError("byte read of tagged file"));
  }
  const uint64_t off = it->second.read_pos;
  const uint64_t len =
      std::min<uint64_t>(out.size(), inode->size - std::min(inode->size, off));
  {
    sim::ProfileTagScope serialize_scope(engine_, profile_tag_data_);
    co_await engine_.delay(options_.cpu_per_op);
  }
  record_serialize(options_.cpu_per_op);

  uint64_t pos = 0;
  const uint64_t B = options_.hugeblock_size;
  while (pos < len) {
    const uint64_t file_off = off + pos;
    const uint64_t in_block = std::min<uint64_t>(len - pos, B - file_off % B);
    Status s = co_await dev_.read(
        device_offset(*inode, file_off),
        std::span<std::byte>(out.data() + pos, in_block));
    if (!s.ok()) co_return Result(s);
    pos += in_block;
  }
  it->second.read_pos = off + len;
  stats_.data_bytes_read += len;
  ++stats_.reads;
  co_return Result(len);
}

sim::Task<Status> MicroFs::read_tagged(int fd, uint64_t len) {
  auto it = open_files_.find(fd);
  if (it == open_files_.end()) co_return BadFdError();
  Inode* inode = inodes_.get(it->second.ino);
  if (inode->content != ContentKind::kTagged) {
    co_return InvalidArgumentError("tagged read of non-tagged file");
  }
  const uint64_t off = it->second.read_pos;
  const uint64_t clamped =
      std::min<uint64_t>(len, inode->size - std::min(inode->size, off));
  if (clamped == 0) co_return OkStatus();
  const uint64_t B = options_.hugeblock_size;
  const uint64_t aligned_start = off / B * B;
  const uint64_t aligned_end = ceil_div(off + clamped, B) * B;
  const uint64_t blocks_touched = (aligned_end - aligned_start) / B;
  const SimDuration rt_cpu =
      options_.cpu_per_op +
      options_.cpu_per_block * static_cast<SimDuration>(blocks_touched);
  {
    sim::ProfileTagScope serialize_scope(engine_, profile_tag_data_);
    co_await engine_.delay(rt_cpu);
  }
  record_serialize(rt_cpu);
  NVMECR_CO_RETURN_IF_ERROR(co_await hugeblock_io(
      *inode, aligned_start, aligned_end - aligned_start, /*is_write=*/false));
  it->second.read_pos = off + clamped;
  stats_.data_bytes_read += aligned_end - aligned_start;
  ++stats_.reads;
  co_return OkStatus();
}

Status MicroFs::seek(int fd, uint64_t pos) {
  auto it = open_files_.find(fd);
  if (it == open_files_.end()) return BadFdError();
  const Inode* inode = inodes_.get(it->second.ino);
  if (pos > inode->size) return InvalidArgumentError("seek beyond EOF");
  it->second.read_pos = pos;
  return OkStatus();
}

sim::Task<Status> MicroFs::verify_tagged(const std::string& path) {
  OpenFlags flags = OpenFlags::ReadOnly();
  auto fd = co_await open(path, flags);
  if (!fd.ok()) co_return fd.status();
  Inode* inode = inodes_.get(open_files_.at(*fd).ino);
  Status s = co_await read_tagged(*fd, inode->size);
  Status c = co_await close(*fd);
  co_return s.ok() ? c : s;
}

sim::Task<Status> MicroFs::fsync(int fd) {
  // Data and log records are durable at op completion (no buffering,
  // §III-D); fsync exists for POSIX compatibility and, by default,
  // settles the device write pipeline so measurements see sustained
  // bandwidth rather than the capacitor-RAM burst.
  if (open_files_.find(fd) == open_files_.end()) co_return BadFdError();
  {
    sim::ProfileTagScope serialize_scope(engine_, profile_tag_data_);
    co_await engine_.delay(options_.cpu_per_op);
  }
  record_serialize(options_.cpu_per_op);
  // Sync point: deferred (group-committed) log rewrites become durable.
  NVMECR_CO_RETURN_IF_ERROR(co_await log_->flush());
  if (options_.fsync_settles_device) {
    co_return co_await dev_.flush();
  }
  co_return OkStatus();
}

// ---------------------------------------------------------------------
// State checkpointing + recovery
// ---------------------------------------------------------------------

sim::Task<Status> MicroFs::checkpoint_state() {
  if (checkpoint_in_flight_) co_return OkStatus();
  checkpoint_in_flight_ = true;
  const SimTime ckpt_t0 = engine_.now();

  // Make deferred log rewrites durable before the snapshot boundary so a
  // crash mid-checkpoint recovers from a log consistent with the
  // about-to-be-serialized state.
  {
    Status fs_ = co_await log_->flush();
    if (!fs_.ok()) {
      checkpoint_in_flight_ = false;
      co_return fs_;
    }
  }

  // Snapshot boundary: records after this instant carry the new epoch
  // and survive the truncation below.
  const uint32_t epoch = log_->begin_epoch();
  coalesce_candidates_.clear();

  // Serialize synchronously (consistent snapshot under cooperative
  // scheduling), then write asynchronously overlapping the application.
  std::vector<std::byte> payload;
  {
    Encoder enc(payload);
    enc.u32(epoch);
    enc.u64(log_->next_lsn());
    std::vector<std::byte> tables;
    inodes_.serialize(tables);
    pool_.serialize(tables);
    enc.bytes(tables);
    enc.u64(paths_.size());
  }
  {
    Encoder enc(payload);
    paths_.for_each([&](const std::string& path, const Ino& ino) {
      enc.str(path);
      enc.u64(ino);
    });
  }

  std::vector<std::byte> buf;
  Encoder header(buf);
  header.u32(kCkptMagic);
  header.u32(epoch);
  header.u64(payload.size());
  header.u64(crc64(payload.data(), payload.size()));
  buf.insert(buf.end(), payload.begin(), payload.end());

  if (buf.size() > geo_.ckpt_bytes) {
    checkpoint_in_flight_ = false;
    co_return NoSpaceError("state checkpoint exceeds reserved region");
  }
  const uint64_t base = (epoch % 2 == 0) ? geo_.ckpt_base_a : geo_.ckpt_base_b;
  Status s = co_await dev_.write(base, buf);
  if (s.ok()) {
    // Atomic cutover: only now may pre-snapshot records be discarded.
    log_->truncate_before(epoch);
    ++stats_.state_checkpoints;
    stats_.ckpt_bytes_written += buf.size();
  }
  if (obs_.trace != nullptr) {
    obs_.trace->add_span(trace_track_, "state_checkpoint", ckpt_t0,
                         engine_.now(),
                         {{"bytes", static_cast<double>(buf.size())},
                          {"epoch", static_cast<double>(epoch)}});
  }
  checkpoint_in_flight_ = false;
  co_return s;
}

void MicroFs::maybe_spawn_checkpoint() {
  if (!options_.auto_checkpoint || !options_.metadata_provenance ||
      checkpoint_in_flight_) {
    return;
  }
  if (!open_files_.empty()) return;
  const double free_frac = static_cast<double>(log_->free_slots()) /
                           static_cast<double>(log_->capacity());
  if (free_frac >= options_.checkpoint_free_threshold) return;
  // Background thread semantics (§III-E): overlapped with application
  // compute; the engine runs it concurrently with subsequent user ops.
  engine_.spawn([](MicroFs* fs) -> sim::Task<void> {
    Status s = co_await fs->checkpoint_state();
    if (!s.ok()) {
      NVMECR_SLOG_WARN("microfs", "background state checkpoint failed: %s",
                       s.to_string().c_str());
    }
  }(this));
}

Status MicroFs::replay_record(const LogRecord& rec,
                              std::map<Ino, std::string>& ino_paths) {
  switch (rec.type) {
    case OpType::kMkdir: {
      auto parent_it = ino_paths.find(rec.parent);
      if (parent_it == ino_paths.end()) {
        return CorruptionError("mkdir replay: unknown parent");
      }
      // An existing inode means the loaded checkpoint was forced *inside*
      // this mkdir (log ring full): its DRAM mutations are already in the
      // checkpoint and must not apply twice.
      if (inodes_.get(rec.ino) == nullptr) {
        auto inode = inodes_.insert_with_ino(rec.ino, InodeType::kDirectory);
        if (!inode.ok()) return inode.status();
        (*inode)->mode = static_cast<uint32_t>(rec.a & 0xffffffffu);
        (*inode)->uid = static_cast<uint32_t>(rec.a >> 32);
        const std::string path = parent_it->second == "/"
                                     ? "/" + rec.name
                                     : parent_it->second + "/" + rec.name;
        paths_.insert(path, rec.ino);
        ino_paths[rec.ino] = path;
      }
      return replay_dirent_growth(rec.parent, rec.psize);
    }
    case OpType::kCreate: {
      auto parent_it = ino_paths.find(rec.parent);
      if (parent_it == ino_paths.end()) {
        return CorruptionError("create replay: unknown parent");
      }
      Inode* existing = inodes_.get(rec.ino);
      if (existing != nullptr) {
        if (rec.psize == 0) {
          // Truncation record: reset the file, freeing blocks in order.
          for (uint64_t b : existing->blocks) {
            if (b != kInvalidBlock) NVMECR_RETURN_IF_ERROR(pool_.free(b));
          }
          existing->blocks.clear();
          existing->size = 0;
          existing->content = ContentKind::kNone;
          existing->seed = rec.b;
          return OkStatus();
        }
        // Creation already captured by a mid-op forced checkpoint — only
        // the parent growth guard below may still apply.
        return replay_dirent_growth(rec.parent, rec.psize);
      }
      auto inode = inodes_.insert_with_ino(rec.ino, InodeType::kFile);
      if (!inode.ok()) return inode.status();
      (*inode)->mode = static_cast<uint32_t>(rec.a & 0xffffffffu);
      (*inode)->seed = rec.b;
      (*inode)->uid = static_cast<uint32_t>(rec.a >> 32);
      const std::string path = parent_it->second == "/"
                                   ? "/" + rec.name
                                   : parent_it->second + "/" + rec.name;
      paths_.insert(path, rec.ino);
      ino_paths[rec.ino] = path;
      return replay_dirent_growth(rec.parent, rec.psize);
    }
    case OpType::kWrite: {
      Inode* inode = inodes_.get(rec.ino);
      if (inode == nullptr) return CorruptionError("write replay: no inode");
      const uint64_t off = rec.a;
      const uint64_t len = rec.b;
      const uint64_t B = options_.hugeblock_size;
      // Tagged writes allocated whole hugeblocks; byte writes only the
      // touched span — both round to the same hugeblock count.
      NVMECR_RETURN_IF_ERROR(ensure_blocks(*inode, ceil_div(off + len, B) * B));
      if (inode->content == ContentKind::kNone) {
        inode->content = (rec.flags & kLogFlagTagged) ? ContentKind::kTagged
                                                      : ContentKind::kBytes;
      }
      inode->size = std::max(inode->size, off + len);
      return OkStatus();
    }
    case OpType::kUnlink: {
      Inode* inode = inodes_.get(rec.ino);
      if (inode == nullptr) return CorruptionError("unlink replay: no inode");
      // Mirror the live order: tombstone growth (possible parent block
      // allocation) happened before the file's blocks were freed.
      NVMECR_RETURN_IF_ERROR(replay_dirent_growth(rec.parent, rec.psize));
      for (uint64_t b : inode->blocks) {
        if (b != kInvalidBlock) NVMECR_RETURN_IF_ERROR(pool_.free(b));
      }
      auto it = ino_paths.find(rec.ino);
      if (it != ino_paths.end()) {
        paths_.erase(it->second);
        ino_paths.erase(it);
      }
      return inodes_.free(rec.ino);
    }
    case OpType::kRename: {
      Inode* inode = inodes_.get(rec.ino);
      if (inode == nullptr) return CorruptionError("rename replay: no inode");
      auto it = ino_paths.find(rec.ino);
      if (it == ino_paths.end()) {
        return CorruptionError("rename replay: no path for inode");
      }
      auto parent_it = ino_paths.find(rec.parent);
      if (parent_it == ino_paths.end()) {
        return CorruptionError("rename replay: unknown new parent");
      }
      // Old parent's tombstone growth first, then the new entry — the
      // live allocation order.
      NVMECR_RETURN_IF_ERROR(replay_dirent_growth(rec.a, rec.b));
      NVMECR_RETURN_IF_ERROR(replay_dirent_growth(rec.parent, rec.psize));
      const std::string old_path = it->second;
      const std::string new_path = parent_it->second == "/"
                                       ? "/" + rec.name
                                       : parent_it->second + "/" + rec.name;
      if (old_path != new_path) {
        paths_.erase(old_path);
        paths_.insert(new_path, rec.ino);
        ino_paths[rec.ino] = new_path;
      }
      return OkStatus();
    }
  }
  return CorruptionError("unknown record type");
}

Status MicroFs::replay_dirent_growth(Ino parent_ino, uint64_t psize) {
  if (psize == 0) return OkStatus();
  Inode* parent = inodes_.get(parent_ino);
  if (parent == nullptr) {
    return CorruptionError("dirent replay: unknown parent inode");
  }
  // `psize` is the dirfile size right after the op's dirent append became
  // durable. If the loaded checkpoint already covers it (it was taken
  // mid-op or later), this is a no-op — the idempotence guard that makes
  // forced-checkpoint-inside-an-op recoverable.
  if (parent->size >= psize) return OkStatus();
  NVMECR_RETURN_IF_ERROR(ensure_blocks(*parent, psize));
  parent->size = psize;
  parent->content = ContentKind::kBytes;
  return OkStatus();
}

sim::Task<StatusOr<std::unique_ptr<MicroFs>>> MicroFs::recover(
    sim::Engine& engine, hw::BlockDevice& dev, Options options) {
  using Result = StatusOr<std::unique_ptr<MicroFs>>;
  auto sb = co_await read_superblock(dev, options);
  if (!sb.ok()) co_return Result(sb.status());
  auto [opts, geo] = *sb;

  std::unique_ptr<MicroFs> fs(new MicroFs(engine, dev, opts, geo));

  // Load the newest valid internal state checkpoint (A/B regions).
  uint32_t best_epoch = 0;
  std::vector<std::byte> best_payload;
  for (const uint64_t base : {geo.ckpt_base_a, geo.ckpt_base_b}) {
    std::vector<std::byte> header(24);
    if (!(co_await dev.read(base, header)).ok()) continue;
    Decoder dec(header);
    uint32_t magic = 0, epoch = 0;
    uint64_t length = 0, crc = 0;
    if (!dec.u32(magic).ok() || magic != kCkptMagic) continue;
    (void)dec.u32(epoch);
    (void)dec.u64(length);
    (void)dec.u64(crc);
    if (length == 0 || length > geo.ckpt_bytes - 24) continue;
    std::vector<std::byte> payload(length);
    if (!(co_await dev.read(base + 24, payload)).ok()) continue;
    if (crc64(payload.data(), payload.size()) != crc) continue;
    if (epoch > best_epoch) {
      best_epoch = epoch;
      best_payload = std::move(payload);
    }
  }
  if (best_epoch == 0) {
    co_return Result(CorruptionError("no valid state checkpoint found"));
  }

  // Deserialize DRAM state.
  uint64_t next_lsn_ckpt = 0;
  {
    Decoder dec(best_payload);
    uint32_t epoch = 0;
    NVMECR_CO_RETURN_IF_ERROR(dec.u32(epoch));
    NVMECR_CO_RETURN_IF_ERROR(dec.u64(next_lsn_ckpt));
    uint64_t tables_len = 0;
    NVMECR_CO_RETURN_IF_ERROR(dec.u64(tables_len));
    if (dec.remaining() < tables_len) {
      co_return Result(CorruptionError("checkpoint tables truncated"));
    }
    std::span<const std::byte> tables(
        best_payload.data() + dec.consumed(), tables_len);
    auto used = fs->inodes_.deserialize(tables);
    if (!used.ok()) co_return Result(used.status());
    auto used2 = fs->pool_.deserialize(tables.subspan(*used));
    if (!used2.ok()) co_return Result(used2.status());
    Decoder rest(std::span<const std::byte>(
        best_payload.data() + dec.consumed() + tables_len,
        best_payload.size() - dec.consumed() - tables_len));
    uint64_t path_count = 0;
    NVMECR_CO_RETURN_IF_ERROR(rest.u64(path_count));
    for (uint64_t i = 0; i < path_count; ++i) {
      std::string path;
      uint64_t ino = 0;
      NVMECR_CO_RETURN_IF_ERROR(rest.str(path));
      NVMECR_CO_RETURN_IF_ERROR(rest.u64(ino));
      fs->paths_.insert(path, ino);
    }
  }

  // Replay the operation log (LSN order, records since the checkpoint).
  auto scanned = co_await OpLog::scan(dev, geo.log_base, opts.log_slots,
                                      best_epoch);
  if (!scanned.ok()) co_return Result(scanned.status());
  std::map<Ino, std::string> ino_paths;
  fs->paths_.for_each([&](const std::string& path, const Ino& ino) {
    ino_paths[ino] = path;
  });
  // Replay in LSN order, stopping at the first hole: a missing LSN means
  // a corrupt/torn slot, and records beyond it have broken causality
  // (their effects may depend on the lost operation). Everything before
  // the hole is consistent — the §III-E guarantee.
  uint64_t max_lsn = next_lsn_ckpt > 0 ? next_lsn_ckpt - 1 : 0;
  uint32_t max_epoch = best_epoch;
  std::vector<std::pair<uint32_t, LogRecord>> applied;
  // Seed the hole check with the checkpoint's LSN horizon: every scanned
  // record was appended after the snapshot was serialized, so the first
  // one must be exactly next_lsn_ckpt. Starting from 0 would silently
  // accept a sequence whose *first* post-checkpoint record is missing
  // (torn slot) — replaying later records with broken causality.
  uint64_t prev_lsn = next_lsn_ckpt > 0 ? next_lsn_ckpt - 1 : 0;
  for (const auto& [slot, rec] : *scanned) {
    if (rec.lsn != prev_lsn + 1) {
      NVMECR_SLOG_WARN(
          "oplog",
          "operation log hole after lsn %llu; discarding %zu later records",
          static_cast<unsigned long long>(prev_lsn),
          scanned->size() - applied.size());
      break;
    }
    Status s = fs->replay_record(rec, ino_paths);
    if (!s.ok()) co_return Result(s);
    applied.emplace_back(slot, rec);
    prev_lsn = rec.lsn;
    max_lsn = std::max(max_lsn, rec.lsn);
    max_epoch = std::max(max_epoch, rec.epoch);
  }
  fs->log_->restore(applied, max_epoch, max_lsn + 1);
  fs->stats_.replayed_records = applied.size();
  co_return Result(std::move(fs));
}

}  // namespace nvmecr::microfs
