// Circular hugeblock pool (§III-E "Hugeblocks").
//
// The SSD partition's data region is divided into hugeblocks (32 KiB by
// default, vs the 4 KiB ceiling of kernel filesystems). A circular free
// ring gives O(1) allocation and free, and — critically for recovery —
// *deterministic* allocation order: replaying the operation log re-issues
// the same allocations in the same order and reconstructs the identical
// block assignment (§III-E "Metadata Provenance").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace nvmecr::microfs {

class BlockPool {
 public:
  BlockPool() = default;
  explicit BlockPool(uint64_t block_count) { reset(block_count); }

  /// Re-initializes with all `block_count` blocks free, in index order.
  void reset(uint64_t block_count) {
    ring_.resize(block_count);
    for (uint64_t i = 0; i < block_count; ++i) ring_[i] = i;
    head_ = 0;
    live_ = block_count;
    total_ = block_count;
    allocated_.assign(block_count, false);
  }

  /// O(1) allocation from the ring head.
  StatusOr<uint64_t> alloc() {
    if (live_ == 0) return NoSpaceError("hugeblock pool exhausted");
    const uint64_t block = ring_[head_];
    head_ = (head_ + 1) % ring_.size();
    --live_;
    NVMECR_CHECK(!allocated_[block]);
    allocated_[block] = true;
    return block;
  }

  /// O(1) free to the ring tail.
  Status free(uint64_t block) {
    if (block >= total_) return InvalidArgumentError("block out of range");
    if (!allocated_[block]) return InternalError("double free of hugeblock");
    allocated_[block] = false;
    ring_[(head_ + live_) % ring_.size()] = block;
    ++live_;
    return OkStatus();
  }

  uint64_t free_count() const { return live_; }
  uint64_t total() const { return total_; }
  uint64_t allocated_count() const { return total_ - live_; }
  bool is_allocated(uint64_t block) const {
    return block < total_ && allocated_[block];
  }

  /// Approximate DRAM footprint (Table I accounting).
  size_t memory_footprint() const {
    return ring_.size() * sizeof(uint64_t) + allocated_.size() / 8;
  }

  // --- serialization into the internal state checkpoint ---------------
  void serialize(std::vector<std::byte>& out) const;
  /// Restores from `in`; returns bytes consumed or kCorruption.
  StatusOr<size_t> deserialize(std::span<const std::byte> in);

 private:
  std::vector<uint64_t> ring_;  // [head_, head_+live_) mod size = free
  uint64_t head_ = 0;
  uint64_t live_ = 0;
  uint64_t total_ = 0;
  std::vector<bool> allocated_;
};

}  // namespace nvmecr::microfs
