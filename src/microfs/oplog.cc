#include "microfs/oplog.h"

#include <algorithm>
#include <optional>

#include "common/crc.h"
#include "microfs/codec.h"
#include "simcore/engine.h"
#include "simcore/profile.h"
#include "simcore/trace.h"

namespace nvmecr::microfs {

namespace {
constexpr uint32_t kRecordMagic = 0x4c524543;  // "LREC"
}

OpLog::OpLog(hw::BlockDevice& dev, uint64_t region_base, uint32_t slots,
             uint32_t coalesce_window)
    : dev_(dev),
      region_base_(region_base),
      slots_(slots),
      coalesce_window_(coalesce_window) {
  NVMECR_CHECK(slots_ > 0);
}

void OpLog::encode_record(const LogRecord& rec, std::vector<std::byte>& out) {
  out.clear();
  out.reserve(kRecordBytes);
  Encoder enc(out);
  enc.u32(kRecordMagic);
  enc.u64(rec.lsn);
  enc.u32(rec.epoch);
  enc.u8(static_cast<uint8_t>(rec.type));
  enc.u64(rec.ino);
  enc.u64(rec.parent);
  enc.u64(rec.a);
  enc.u64(rec.b);
  enc.u64(rec.psize);
  enc.u8(rec.flags);
  NVMECR_CHECK(rec.name.size() <= kMaxName);
  enc.str(rec.name);
  const uint32_t crc =
      static_cast<uint32_t>(crc64(out.data(), out.size()));
  enc.u32(crc);
  NVMECR_CHECK(out.size() <= kRecordBytes);
  out.resize(kRecordBytes);  // zero-pad the slot
}

StatusOr<LogRecord> OpLog::decode_record(std::span<const std::byte> in) {
  Decoder dec(in);
  uint32_t magic = 0;
  NVMECR_RETURN_IF_ERROR(dec.u32(magic));
  if (magic != kRecordMagic) return CorruptionError("bad record magic");
  LogRecord rec;
  uint8_t type = 0;
  NVMECR_RETURN_IF_ERROR(dec.u64(rec.lsn));
  NVMECR_RETURN_IF_ERROR(dec.u32(rec.epoch));
  NVMECR_RETURN_IF_ERROR(dec.u8(type));
  NVMECR_RETURN_IF_ERROR(dec.u64(rec.ino));
  NVMECR_RETURN_IF_ERROR(dec.u64(rec.parent));
  NVMECR_RETURN_IF_ERROR(dec.u64(rec.a));
  NVMECR_RETURN_IF_ERROR(dec.u64(rec.b));
  NVMECR_RETURN_IF_ERROR(dec.u64(rec.psize));
  NVMECR_RETURN_IF_ERROR(dec.u8(rec.flags));
  NVMECR_RETURN_IF_ERROR(dec.str(rec.name));
  const size_t body = dec.consumed();
  uint32_t stored_crc = 0;
  NVMECR_RETURN_IF_ERROR(dec.u32(stored_crc));
  const uint32_t actual =
      static_cast<uint32_t>(crc64(in.data(), body));
  if (stored_crc != actual) return CorruptionError("record crc mismatch");
  if (type < 1 || type > 5) return CorruptionError("bad record type");
  rec.type = static_cast<OpType>(type);
  return rec;
}

void OpLog::set_observer(const obs::Observer& o, const std::string& label,
                         sim::Engine* engine) {
  obs_ = o;
  obs_engine_ = engine;
  trace_track_ = "oplog/" + label;
  profile_tag_ =
      engine != nullptr ? engine->profile_tag("microfs/oplog") : 0;
  m_appended_ = nullptr;
  m_coalesced_ = nullptr;
  m_bytes_ = nullptr;
  m_forced_full_ = nullptr;
  m_group_commits_ = nullptr;
  m_free_slots_ = nullptr;
  if (obs_.metrics == nullptr) return;
  // Counters aggregate across every microfs instance of the run; the
  // free-slot gauge stays per instance so imbalance is visible.
  m_appended_ = obs_.metrics->counter("microfs.oplog.appended");
  m_coalesced_ = obs_.metrics->counter("microfs.oplog.coalesced");
  m_bytes_ = obs_.metrics->counter("microfs.oplog.bytes_written");
  m_forced_full_ = obs_.metrics->counter("microfs.oplog.forced_full");
  m_group_commits_ = obs_.metrics->counter("microfs.oplog.group_commits");
  m_free_slots_ =
      obs_.metrics->gauge("microfs." + label + ".oplog_free_slots");
}

sim::Task<Status> OpLog::flush_dirty() {
  // The drain below is log maintenance: the tag scope charges its
  // dispatches to "microfs/oplog", and the meta bit folds the nested
  // device/fabric phase time into the epoch profiler's oplog phase
  // instead of double-counting it as fabric/flash.
  std::optional<sim::ProfileTagScope> tag_scope;
  std::optional<sim::ProfileMetaScope> meta_scope;
  if (obs_engine_ != nullptr) {
    tag_scope.emplace(*obs_engine_, profile_tag_);
    meta_scope.emplace(*obs_engine_);
  }
  // One group commit = one drain that makes deferred coalesced updates
  // durable (N in-place extensions -> one batched write-out).
  if (deferred_pending_ > 0) {
    ++counters_.group_commits;
    if (m_group_commits_ != nullptr) m_group_commits_->add();
    deferred_pending_ = 0;
  }
  // Drain in ascending LSN order, not slot order: once the ring wraps,
  // a newer record can occupy a *lower* slot than a pending deferred
  // rewrite. The deferred extension carries block allocations that the
  // newer record's replay depends on, so a crash between the two device
  // writes must always leave a durable LSN prefix — never the newer
  // record without the older one. Runs contiguous in both slot and LSN
  // still share one submission (the common sequential-append case), and
  // a torn prefix of such a batch is itself an LSN prefix.
  while (!dirty_.empty()) {
    auto run_begin = dirty_.begin();
    for (auto it = std::next(dirty_.begin()); it != dirty_.end(); ++it) {
      if (it->second.lsn < run_begin->second.lsn) run_begin = it;
    }
    std::vector<std::pair<uint32_t, LogRecord>> run;
    run.emplace_back(run_begin->first, run_begin->second);
    std::vector<std::byte> buf;
    std::vector<std::byte> one;
    encode_record(run_begin->second, one);
    buf.insert(buf.end(), one.begin(), one.end());
    for (auto it = dirty_.find(run.back().first + 1);
         it != dirty_.end() && it->second.lsn > run.back().second.lsn;
         it = dirty_.find(run.back().first + 1)) {
      encode_record(it->second, one);
      buf.insert(buf.end(), one.begin(), one.end());
      run.emplace_back(it->first, it->second);
    }
    const uint32_t first = run.front().first;
    NVMECR_CO_RETURN_IF_ERROR(co_await dev_.write(
        region_base_ + static_cast<uint64_t>(first) * kRecordBytes, buf));
    counters_.bytes_written += buf.size();
    if (m_bytes_ != nullptr) m_bytes_->add(buf.size());
    // Erase only after the write is durable, and only if the slot wasn't
    // re-dirtied (coalesced again) while the submission was in flight. A
    // failed write keeps the slots dirty so the next flush retries them.
    for (const auto& [slot, rec] : run) {
      auto it = dirty_.find(slot);
      if (it != dirty_.end() && it->second.lsn == rec.lsn &&
          it->second.b == rec.b) {
        dirty_.erase(it);
      }
    }
  }
  co_return OkStatus();
}

sim::Task<Status> OpLog::flush() {
  if (dirty_.empty()) co_return OkStatus();
  const SimTime t0 = obs_engine_ != nullptr ? obs_engine_->now() : 0;
  Status s = co_await flush_dirty();
  if (obs_.trace != nullptr && obs_engine_ != nullptr) {
    obs_.trace->add_span(trace_track_, "group_flush", t0, obs_engine_->now());
  }
  co_return s;
}

sim::Task<Status> OpLog::append(LogRecord rec, bool allow_coalesce,
                                bool* coalesced_out) {
  if (coalesced_out != nullptr) *coalesced_out = false;

  // Coalescing: look back through the window for a WRITE record on the
  // same file whose range ends where this write begins (Figure 5).
  if (allow_coalesce && rec.type == OpType::kWrite && coalesce_window_ > 0) {
    const size_t window =
        std::min<size_t>(coalesce_window_, live_.size());
    for (size_t back = 0; back < window; ++back) {
      LiveRecord& cand = live_[live_.size() - 1 - back];
      if (cand.record.type == OpType::kWrite &&
          cand.record.ino == rec.ino &&
          cand.record.epoch == epoch_ &&  // never extend across a snapshot
          cand.record.a + cand.record.b == rec.a) {
        cand.record.b += rec.b;
        ++counters_.coalesced;
        if (coalesced_out != nullptr) *coalesced_out = true;
        if (m_coalesced_ != nullptr) m_coalesced_->add();
        // Group commit: defer the slot rewrite to the next flush point.
        // The DRAM copy is authoritative; dirty_ holds the content to
        // write, replaced wholesale if this record coalesces again.
        dirty_[cand.slot] = cand.record;
        ++deferred_pending_;
        if (obs_.trace != nullptr && obs_engine_ != nullptr) {
          obs_.trace->add_instant(trace_track_, "coalesce_defer",
                                  obs_engine_->now());
        }
        co_return OkStatus();
      }
    }
  }

  if (live_.size() >= slots_) {
    ++counters_.forced_full;
    if (m_forced_full_ != nullptr) m_forced_full_->add();
    co_return UnavailableError("operation log full");
  }

  rec.lsn = next_lsn_++;
  rec.epoch = epoch_;
  const uint32_t slot = next_slot_;
  next_slot_ = (next_slot_ + 1) % slots_;
  live_.push_back(LiveRecord{slot, rec});
  ++counters_.appended;
  if (m_appended_ != nullptr) m_appended_->add();
  const SimTime t0 = obs_engine_ != nullptr ? obs_engine_->now() : 0;
  // The new slot rides the same drain as any pending deferred rewrites —
  // contiguous slots share one device submission.
  dirty_[slot] = live_.back().record;
  Status s = co_await flush_dirty();
  if (obs_engine_ != nullptr) {
    if (obs_.trace != nullptr) {
      obs_.trace->add_span(trace_track_, "append", t0, obs_engine_->now());
    }
    if (m_free_slots_ != nullptr) {
      m_free_slots_->set(obs_engine_->now(),
                         static_cast<double>(free_slots()));
    }
  }
  co_return s;
}

uint32_t OpLog::begin_epoch() { return ++epoch_; }

void OpLog::truncate_before(uint32_t epoch) {
  while (!live_.empty() && live_.front().record.epoch < epoch) {
    live_.pop_front();
  }
  // Deferred rewrites of truncated records are moot — their slots are
  // free for reuse and must not be clobbered by a later flush.
  for (auto it = dirty_.begin(); it != dirty_.end();) {
    if (it->second.epoch < epoch) {
      it = dirty_.erase(it);
    } else {
      ++it;
    }
  }
  if (dirty_.empty()) deferred_pending_ = 0;
  if (m_free_slots_ != nullptr && obs_engine_ != nullptr) {
    m_free_slots_->set(obs_engine_->now(), static_cast<double>(free_slots()));
  }
}

void OpLog::restore(
    const std::vector<std::pair<uint32_t, LogRecord>>& slot_records,
    uint32_t epoch, uint64_t next_lsn) {
  live_.clear();
  dirty_.clear();
  deferred_pending_ = 0;
  for (const auto& [slot, rec] : slot_records) {
    live_.push_back(LiveRecord{slot, rec});
  }
  epoch_ = epoch;
  next_lsn_ = next_lsn;
  // Continue allocating after the newest live slot (or 0 on empty).
  next_slot_ = live_.empty() ? 0 : (live_.back().slot + 1) % slots_;
}

sim::Task<StatusOr<std::vector<std::pair<uint32_t, LogRecord>>>> OpLog::scan(
    hw::BlockDevice& dev, uint64_t region_base, uint32_t slots,
    uint32_t min_epoch) {
  std::vector<std::byte> buf(static_cast<size_t>(slots) * kRecordBytes);
  Status s = co_await dev.read(region_base, buf);
  if (!s.ok()) {
    co_return StatusOr<std::vector<std::pair<uint32_t, LogRecord>>>(s);
  }
  std::vector<std::pair<uint32_t, LogRecord>> out;
  for (uint32_t slot = 0; slot < slots; ++slot) {
    auto rec = decode_record(std::span<const std::byte>(
        buf.data() + static_cast<size_t>(slot) * kRecordBytes, kRecordBytes));
    if (!rec.ok()) continue;  // empty or stale slot
    if (rec->epoch < min_epoch) continue;
    out.emplace_back(slot, std::move(*rec));
  }
  std::sort(out.begin(), out.end(), [](const auto& x, const auto& y) {
    return x.second.lsn < y.second.lsn;
  });
  co_return out;
}

}  // namespace nvmecr::microfs
