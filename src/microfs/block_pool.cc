#include "microfs/block_pool.h"

#include "microfs/codec.h"

namespace nvmecr::microfs {

void BlockPool::serialize(std::vector<std::byte>& out) const {
  Encoder enc(out);
  enc.u64(total_);
  enc.u64(head_);
  enc.u64(live_);
  for (uint64_t v : ring_) enc.u64(v);
  // `allocated_` is implied by the ring's free window but serialized for
  // cheap validation on restore.
  for (uint64_t i = 0; i < total_; i += 64) {
    uint64_t word = 0;
    for (uint64_t b = 0; b < 64 && i + b < total_; ++b) {
      if (allocated_[i + b]) word |= (1ull << b);
    }
    enc.u64(word);
  }
}

StatusOr<size_t> BlockPool::deserialize(std::span<const std::byte> in) {
  Decoder dec(in);
  uint64_t total = 0, head = 0, live = 0;
  NVMECR_RETURN_IF_ERROR(dec.u64(total));
  NVMECR_RETURN_IF_ERROR(dec.u64(head));
  NVMECR_RETURN_IF_ERROR(dec.u64(live));
  if (live > total || (total > 0 && head >= total)) {
    return CorruptionError("block pool header inconsistent");
  }
  ring_.resize(total);
  for (uint64_t i = 0; i < total; ++i) {
    NVMECR_RETURN_IF_ERROR(dec.u64(ring_[i]));
    if (ring_[i] >= total) return CorruptionError("ring entry out of range");
  }
  allocated_.assign(total, false);
  for (uint64_t i = 0; i < total; i += 64) {
    uint64_t word = 0;
    NVMECR_RETURN_IF_ERROR(dec.u64(word));
    for (uint64_t b = 0; b < 64 && i + b < total; ++b) {
      allocated_[i + b] = (word >> b) & 1;
    }
  }
  total_ = total;
  head_ = head;
  live_ = live;
  // Cross-check: allocated bitmap must agree with the free window.
  uint64_t free_bits = 0;
  for (uint64_t i = 0; i < total; ++i) free_bits += allocated_[i] ? 0 : 1;
  if (free_bits != live_) return CorruptionError("pool bitmap disagrees");
  return dec.consumed();
}

}  // namespace nvmecr::microfs
