// Multi-level checkpointing (§III-F "Handling Cascading Failures",
// evaluated in §IV-I / Table II).
//
// Most checkpoints go to the fast ephemeral tier (NVMe-CR); every
// `interval`-th checkpoint is written to the slower but redundant
// parallel filesystem so checkpoint data survives cascading failures
// that take out both a process and its partner failure domain.
#pragma once

#include <cstdint>
#include <vector>

#include "baselines/storage_api.h"

namespace nvmecr::nvmecr_rt {

class MultiLevelPolicy {
 public:
  /// `interval` = N means checkpoint indexes 0, N, 2N, ... (1-in-N, the
  /// paper uses one in ten) go to the PFS level — so the newest
  /// checkpoint, the one restart reads, normally lives on the fast tier.
  explicit MultiLevelPolicy(uint32_t interval) : interval_(interval) {}

  bool is_pfs_checkpoint(uint32_t checkpoint_index) const {
    return interval_ > 0 && checkpoint_index % interval_ == 0;
  }
  uint32_t interval() const { return interval_; }

 private:
  uint32_t interval_;
};

/// One candidate restart source for a rank, tagged with the tier class
/// it serves. Fast-tier-class sources (the live session, a failover
/// view, a reconstruction client) can only serve checkpoints whose
/// ledger entry is on the fast tier; PFS sources only PFS-routed ones.
struct RestoreSource {
  baselines::StorageClient* client = nullptr;
  bool pfs_tier = false;
  const char* label = "fast";
};

/// Routes checkpoint IO between the tiers per the policy. All clients
/// belong to the same rank; the caller owns them.
class MultiLevelRouter {
 public:
  MultiLevelRouter(baselines::StorageClient& fast,
                   baselines::StorageClient& pfs, MultiLevelPolicy policy)
      : fast_(fast), pfs_(pfs), policy_(policy) {}

  baselines::StorageClient& level_for(uint32_t checkpoint_index) {
    return policy_.is_pfs_checkpoint(checkpoint_index) ? pfs_ : fast_;
  }
  const MultiLevelPolicy& policy() const { return policy_; }

  /// Installs the redundancy engine's reconstruction view (a client whose
  /// reads rebuild lost fast-tier files from partner replicas or XOR
  /// survivors; see redundancy::Reconstructor). With it installed the
  /// restart fallback chain becomes fast -> reconstructed -> PFS.
  void set_reconstructed(baselines::StorageClient* reconstructed) {
    reconstructed_ = reconstructed;
  }
  bool has_reconstructed() const { return reconstructed_ != nullptr; }

  /// Installs the resilience layer's failover view: a client serving
  /// checkpoints that finished in degraded mode (written to a spare
  /// partner domain after a mid-checkpoint target loss) or were healed
  /// back to full redundancy. It sits right after the fast tier in the
  /// restart chain: healed/degraded data is newer than anything a
  /// reconstruction could rebuild and far newer than the PFS copy.
  void set_failover(baselines::StorageClient* failover) {
    failover_ = failover;
  }
  bool has_failover() const { return failover_ != nullptr; }

  /// Recovery always prefers the fast tier (it holds the newest
  /// checkpoint unless the failure destroyed it). When the fast tier is
  /// lost, reconstruction — if a redundancy scheme provisioned it — comes
  /// before the PFS copy (which is older and slower to read).
  baselines::StorageClient& recovery_level(bool fast_tier_lost) {
    if (!fast_tier_lost) return fast_;
    return reconstructed_ != nullptr ? *reconstructed_ : pfs_;
  }

  /// The full restart fallback chain, newest-first: fast, then the
  /// failover (healed > degraded) view, then reconstruction, then the
  /// PFS tier. Restart walks it until one source serves the checkpoint.
  std::vector<baselines::StorageClient*> recovery_chain() {
    std::vector<baselines::StorageClient*> chain{&fast_};
    if (failover_ != nullptr) chain.push_back(failover_);
    if (reconstructed_ != nullptr) chain.push_back(reconstructed_);
    chain.push_back(&pfs_);
    return chain;
  }

  /// Tier-tagged variant for ledger-driven restart (workloads'
  /// AppDriver). `pfs_tier` must match the checkpoint's recorded
  /// placement before a source may be probed: the PFS model's
  /// open_read cannot report ENOENT (it performs an MDS op and hands
  /// out a fresh fd regardless of the path), so a blind probe against
  /// the wrong tier would "succeed" on a checkpoint that was never
  /// written there.
  std::vector<RestoreSource> restore_chain() {
    std::vector<RestoreSource> chain{{&fast_, false, "fast"}};
    if (failover_ != nullptr) chain.push_back({failover_, false, "failover"});
    if (reconstructed_ != nullptr)
      chain.push_back({reconstructed_, false, "reconstructed"});
    chain.push_back({&pfs_, true, "pfs"});
    return chain;
  }

 private:
  baselines::StorageClient& fast_;
  baselines::StorageClient& pfs_;
  baselines::StorageClient* reconstructed_ = nullptr;
  baselines::StorageClient* failover_ = nullptr;
  MultiLevelPolicy policy_;
};

}  // namespace nvmecr::nvmecr_rt
