// DRAM cache layer over an NVMe-CR client — the paper's future work
// ("we plan to study the impact of a cache layer over NVMe-CR", §V).
//
// Write-through, whole-file granularity: writes go to the runtime (the
// durability story is unchanged — the cache is never the only copy) and
// populate the cache; reads of a fully cached file are served at DRAM
// speed, which is exactly the restart-after-checkpoint pattern (the
// newest checkpoint is still warm when the job restarts in place).
// Least-recently-used eviction by bytes.
#pragma once

#include <list>
#include <map>
#include <memory>
#include <string>

#include "baselines/storage_api.h"
#include "obs/observer.h"
#include "simcore/engine.h"

namespace nvmecr::nvmecr_rt {

using namespace nvmecr::literals;

struct CacheStats {
  uint64_t hit_bytes = 0;
  uint64_t miss_bytes = 0;
  uint64_t evictions = 0;
  uint64_t resident_bytes = 0;
  double hit_rate() const {
    const uint64_t total = hit_bytes + miss_bytes;
    return total ? static_cast<double>(hit_bytes) / total : 0.0;
  }
};

class CachedClient final : public baselines::StorageClient {
 public:
  CachedClient(sim::Engine& engine,
               std::unique_ptr<baselines::StorageClient> inner,
               uint64_t capacity_bytes, uint64_t dram_bw = 8_GBps)
      : engine_(engine),
        inner_(std::move(inner)),
        capacity_(capacity_bytes),
        dram_bw_(dram_bw) {}

  sim::Task<StatusOr<int>> create(const std::string& path) override {
    invalidate(path);
    auto fd = co_await inner_->create(path);
    if (fd.ok()) {
      open_[*fd] = OpenFile{path, /*writing=*/true, 0};
    }
    co_return fd;
  }

  sim::Task<StatusOr<int>> open_read(const std::string& path) override {
    auto fd = co_await inner_->open_read(path);
    if (fd.ok()) {
      open_[*fd] = OpenFile{path, /*writing=*/false, 0};
    }
    co_return fd;
  }

  sim::Task<Status> write(int fd, uint64_t len) override {
    // Write-through: device first (durability), then populate.
    Status s = co_await inner_->write(fd, len);
    if (s.ok()) {
      auto it = open_.find(fd);
      if (it != open_.end()) {
        // The DRAM copy costs a memcpy.
        co_await engine_.delay(transfer_time(len, dram_bw_));
        extend_resident(it->second.path, len);
        it->second.bytes += len;
      }
    }
    co_return s;
  }

  sim::Task<Status> read(int fd, uint64_t len) override {
    auto it = open_.find(fd);
    if (it == open_.end()) co_return co_await inner_->read(fd, len);
    auto entry = entries_.find(it->second.path);
    if (entry != entries_.end() && entry->second.complete) {
      // Cache hit: DRAM copy instead of device + fabric.
      touch(entry->first, entry->second);
      stats_.hit_bytes += len;
      if (hit_bytes_ctr_ != nullptr) hit_bytes_ctr_->add(len);
      co_await engine_.delay(transfer_time(len, dram_bw_));
      co_return OkStatus();
    }
    stats_.miss_bytes += len;
    if (miss_bytes_ctr_ != nullptr) miss_bytes_ctr_->add(len);
    Status s = co_await inner_->read(fd, len);
    if (s.ok()) {
      co_await engine_.delay(transfer_time(len, dram_bw_));
      extend_resident(it->second.path, len);
    }
    co_return s;
  }

  sim::Task<Status> fsync(int fd) override {
    co_return co_await inner_->fsync(fd);
  }

  sim::Task<Status> close(int fd) override {
    auto it = open_.find(fd);
    if (it != open_.end()) {
      auto entry = entries_.find(it->second.path);
      if (entry != entries_.end()) {
        if (it->second.writing) {
          // The writer knows the file's full size; the entry is a usable
          // whole-file copy only if every byte is resident and fits.
          entry->second.expected = it->second.bytes;
        }
        if (entry->second.expected > 0 &&
            entry->second.bytes == entry->second.expected &&
            entry->second.expected <= capacity_) {
          entry->second.complete = true;
        } else if (it->second.writing) {
          invalidate(it->second.path);
        }
      }
      open_.erase(it);
    }
    co_return co_await inner_->close(fd);
  }

  sim::Task<Status> unlink(const std::string& path) override {
    invalidate(path);
    co_return co_await inner_->unlink(path);
  }

  const CacheStats& stats() const { return stats_; }
  uint64_t capacity() const { return capacity_; }

  /// Publishes cache activity into the metrics registry (counters
  /// cache.hit_bytes / cache.miss_bytes / cache.evictions, gauge
  /// cache.resident_bytes). Instruments are cached here per the
  /// observer contract; pass {} to detach.
  void set_observer(const obs::Observer& o) {
    if (o.metrics != nullptr) {
      hit_bytes_ctr_ = o.metrics->counter("cache.hit_bytes");
      miss_bytes_ctr_ = o.metrics->counter("cache.miss_bytes");
      evictions_ctr_ = o.metrics->counter("cache.evictions");
      resident_gauge_ = o.metrics->gauge("cache.resident_bytes");
      resident_gauge_->set(engine_.now(),
                           static_cast<double>(stats_.resident_bytes));
    } else {
      hit_bytes_ctr_ = nullptr;
      miss_bytes_ctr_ = nullptr;
      evictions_ctr_ = nullptr;
      resident_gauge_ = nullptr;
    }
  }

 private:
  struct OpenFile {
    std::string path;
    bool writing = false;
    uint64_t bytes = 0;
  };
  struct Entry {
    uint64_t bytes = 0;
    uint64_t expected = 0;  // full file size (set by the writer's close)
    bool complete = false;
    std::list<std::string>::iterator lru_pos;
  };

  void touch(const std::string& path, Entry& entry) {
    lru_.erase(entry.lru_pos);
    lru_.push_front(path);
    entry.lru_pos = lru_.begin();
  }

  void extend_resident(const std::string& path, uint64_t len) {
    auto [it, inserted] = entries_.try_emplace(path);
    if (inserted) {
      lru_.push_front(path);
      it->second.lru_pos = lru_.begin();
    } else {
      lru_.erase(it->second.lru_pos);
      lru_.push_front(path);
      it->second.lru_pos = lru_.begin();
    }
    it->second.bytes += len;
    stats_.resident_bytes += len;
    // A file larger than the whole cache is uncacheable.
    if (it->second.bytes > capacity_) {
      invalidate(path);
      return;
    }
    // Evict LRU entries until within capacity (never the one just used).
    while (stats_.resident_bytes > capacity_ && lru_.size() > 1) {
      const std::string victim = lru_.back();
      lru_.pop_back();
      auto v = entries_.find(victim);
      NVMECR_CHECK(v != entries_.end());
      stats_.resident_bytes -= v->second.bytes;
      entries_.erase(v);
      ++stats_.evictions;
      if (evictions_ctr_ != nullptr) evictions_ctr_->add();
    }
    sync_resident_gauge();
  }

  void invalidate(const std::string& path) {
    auto it = entries_.find(path);
    if (it == entries_.end()) return;
    stats_.resident_bytes -= it->second.bytes;
    lru_.erase(it->second.lru_pos);
    entries_.erase(it);
    sync_resident_gauge();
  }

  void sync_resident_gauge() {
    if (resident_gauge_ != nullptr) {
      resident_gauge_->set(engine_.now(),
                           static_cast<double>(stats_.resident_bytes));
    }
  }

  sim::Engine& engine_;
  std::unique_ptr<baselines::StorageClient> inner_;
  uint64_t capacity_;
  uint64_t dram_bw_;
  std::map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recent
  std::map<int, OpenFile> open_;
  CacheStats stats_;

  // Cached metric instruments (null when observability is off).
  obs::Counter* hit_bytes_ctr_ = nullptr;
  obs::Counter* miss_bytes_ctr_ = nullptr;
  obs::Counter* evictions_ctr_ = nullptr;
  obs::Gauge* resident_gauge_ = nullptr;
};

}  // namespace nvmecr::nvmecr_rt
