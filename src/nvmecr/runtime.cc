#include "nvmecr/runtime.h"

#include "common/log.h"
#include "hw/block_device.h"
#include "simcore/trace.h"

namespace nvmecr::nvmecr_rt {

using namespace nvmecr::literals;

namespace {

/// Kernel-path per-command costs for the Figure-2 configuration: trap +
/// VFS + block layer on submission; interrupt + context switch on
/// completion (the nvme_rdma/nvmet_rdma path's host share).
nvmf::OverheadCosts kernel_path_costs(const kernelfs::KernelCosts& k) {
  using namespace nvmecr::literals;
  return nvmf::OverheadCosts{
      // Trap + VFS + block layer + nvme_rdma request setup.
      .per_op_submit = k.syscall_trap + k.vfs_per_op +
                       k.block_layer_per_req + 2_us,
      // Interrupt + softirq completion + context switch back.
      .per_op_complete = k.interrupt_per_req + 2_us,
  };
}

}  // namespace

/// One process's runtime instance: owns the device chain (qpair or local
/// queue -> optional kernel-cost wrapper -> partition view) and the
/// microfs mounted on it.
class NvmecrClient final : public baselines::StorageClient {
 public:
  NvmecrClient(NvmecrSystem& system, int rank) : system_(system), rank_(rank) {}

  ~NvmecrClient() override {
    if (auto it = system_.live_clients_.find(rank_);
        it != system_.live_clients_.end() && it->second == this) {
      system_.live_clients_.erase(it);
    }
    if (fs_ == nullptr) return;
    // Flush per-instance statistics into the system aggregates.
    const auto& st = fs_->stats();
    auto& agg = system_.agg_stats_;
    agg.creates += st.creates;
    agg.writes += st.writes;
    agg.reads += st.reads;
    agg.unlinks += st.unlinks;
    agg.data_bytes_written += st.data_bytes_written;
    agg.payload_bytes_written += st.payload_bytes_written;
    agg.data_bytes_read += st.data_bytes_read;
    agg.dirent_bytes_written += st.dirent_bytes_written;
    agg.ckpt_bytes_written += st.ckpt_bytes_written;
    agg.inode_writeback_bytes += st.inode_writeback_bytes;
    agg.state_checkpoints += st.state_checkpoints;
    system_.agg_log_appended_ += fs_->log_counters().appended;
    system_.agg_log_coalesced_ += fs_->log_counters().coalesced;
    system_.metadata_bytes_ += fs_->metadata_device_bytes();
    system_.peak_client_dram_ =
        std::max(system_.peak_client_dram_, fs_->dram_footprint());
    system_.kernel_time_ += kernel_time_;
  }

  /// Builds the device chain and formats the private partition. Mirrors
  /// §III-C: barrier, MPI_COMM_CR split, then uncoordinated forever.
  sim::Task<Status> init() {
    const auto rank = static_cast<uint32_t>(rank_);
    // Pick up the cluster-wide observability hookup; per-rank latency
    // histograms are shared aggregates, trace tracks are per rank.
    obs_ = system_.cluster_.observer();
    if (obs_.any()) {
      trace_track_ = "runtime/rank" + std::to_string(rank_);
    }
    if (obs_.metrics != nullptr) {
      h_create_ = obs_.metrics->histogram("runtime.create_ns");
      h_write_ = obs_.metrics->histogram("runtime.write_ns");
      h_read_ = obs_.metrics->histogram("runtime.read_ns");
      h_fsync_ = obs_.metrics->histogram("runtime.fsync_ns");
      h_close_ = obs_.metrics->histogram("runtime.close_ns");
    }
    const SimTime t0 = op_now();
    const JobAllocation& job = system_.job_;
    const uint32_t ssd_index = job.assignment.ssd_of_rank[rank];
    const uint32_t slot = job.assignment.slot_of_rank[rank];
    const fabric::NodeId my_node = job.rank_nodes[rank];

    if (system_.comm_ != nullptr) {
      // The only coordination in the runtime's lifetime (§III-C): agree
      // on setup completion and form the per-SSD communicator.
      auto sub = co_await system_.comm_->split(rank_, static_cast<int>(ssd_index));
      NVMECR_CHECK(sub.comm->size() ==
                   static_cast<int>(job.assignment.ranks_per_ssd[ssd_index]));
      NVMECR_CHECK(sub.rank == static_cast<int>(slot));
      co_await system_.comm_->barrier(rank_);
    }

    // Device chain.
    if (system_.config_.remote) {
      nvmf::NvmfTarget& target = system_.cluster_.target(
          system_.cluster_.storage_ssd_index(
              job.assignment.ssd_nodes[ssd_index]));
      auto dev = target.connect(my_node, job.nsid_per_ssd[ssd_index]);
      if (!dev.ok()) co_return dev.status();
      base_dev_ = std::move(dev).value();
      if (system_.config_.device_wrapper) {
        base_dev_ = system_.config_.device_wrapper(
            std::move(base_dev_), job.assignment.ssd_nodes[ssd_index], rank);
      }
    } else {
      // Local SSD on the process's own compute node: one namespace per
      // node's rank group, created lazily by slot 0 convention — here we
      // simply create a per-rank namespace (the local experiments use
      // few ranks).
      hw::NvmeSsd& ssd = system_.cluster_.local_ssd(my_node);
      auto nsid = ssd.create_namespace(job.partition_bytes);
      if (!nsid.ok()) co_return nsid.status();
      local_nsid_ = *nsid;
      local_ssd_ = &ssd;
      auto dev = nvmf::SpdkLocalDevice::open(ssd, *nsid);
      if (!dev.ok()) co_return dev.status();
      base_dev_ = std::move(dev).value();
    }

    hw::BlockDevice* chain = base_dev_.get();
    if (!system_.config_.userspace) {
      kernel_wrap_ = std::make_unique<nvmf::OverheadDevice>(
          system_.cluster_.engine(), *chain,
          kernel_path_costs(system_.config_.kernel_costs), &kernel_time_);
      chain = kernel_wrap_.get();
    }

    // Private partition of the shared namespace (Figure 6) — remote mode
    // slices by slot; local mode owns the whole namespace.
    const uint64_t base =
        system_.config_.remote ? slot * job.partition_bytes : 0;
    partition_ = std::make_unique<hw::PartitionView>(*chain, base,
                                                     job.partition_bytes);

    auto fs = co_await microfs::MicroFs::format(
        system_.cluster_.engine(), *partition_, system_.config_.fs);
    if (!fs.ok()) co_return fs.status();
    fs_ = std::move(fs).value();
    if (obs_.any()) {
      fs_->set_observer(obs_, "rank" + std::to_string(rank_));
      op_done("connect", t0, nullptr);
    }
    system_.live_clients_[rank_] = this;
    co_return OkStatus();
  }

  sim::Task<StatusOr<int>> create(const std::string& path) override {
    const SimTime t0 = op_now();
    if (!system_.config_.private_namespace) {
      NVMECR_CO_RETURN_IF_ERROR(co_await global_namespace_create());
    }
    auto r = co_await fs_->creat(path);
    op_done("create", t0, h_create_);
    co_return r;
  }

  sim::Task<StatusOr<int>> open_read(const std::string& path) override {
    const SimTime t0 = op_now();
    auto r = co_await fs_->open(path, microfs::OpenFlags::ReadOnly());
    op_done("open_read", t0, nullptr);
    co_return r;
  }

  sim::Task<Status> write(int fd, uint64_t len) override {
    const SimTime t0 = op_now();
    Status s = co_await fs_->write_tagged(fd, len);
    op_done("write", t0, h_write_);
    co_return s;
  }

  sim::Task<Status> read(int fd, uint64_t len) override {
    const SimTime t0 = op_now();
    Status s = co_await fs_->read_tagged(fd, len);
    op_done("read", t0, h_read_);
    co_return s;
  }

  sim::Task<Status> fsync(int fd) override {
    const SimTime t0 = op_now();
    Status s = co_await fs_->fsync(fd);
    op_done("fsync", t0, h_fsync_);
    co_return s;
  }

  sim::Task<Status> close(int fd) override {
    const SimTime t0 = op_now();
    Status s = co_await fs_->close(fd);
    op_done("close", t0, h_close_);
    co_return s;
  }

  sim::Task<Status> unlink(const std::string& path) override {
    const SimTime t0 = op_now();
    if (!system_.config_.private_namespace) {
      NVMECR_CO_RETURN_IF_ERROR(co_await global_namespace_create());
    }
    Status s = co_await fs_->unlink(path);
    op_done("unlink", t0, nullptr);
    co_return s;
  }

  microfs::MicroFs& fs() { return *fs_; }

 private:
  /// Drilldown baseline: a namespace-mutating op must take the global
  /// namespace lock on its home node — an RPC plus serialized critical
  /// section, the distributed-synchronization cost §I describes.
  sim::Task<Status> global_namespace_create() {
    NvmecrSystem::GlobalNamespace& ns = *system_.global_ns_;
    const fabric::NodeId my_node =
        system_.job_.rank_nodes[static_cast<uint32_t>(rank_)];
    co_await system_.cluster_.network().rpc(my_node, ns.home, 128, 64);
    co_await ns.lock.lock();
    co_await system_.cluster_.engine().delay(ns.op_cost);
    ns.lock.unlock();
    co_await system_.cluster_.network().rpc(my_node, ns.home, 64, 64);
    co_return OkStatus();
  }

  SimTime op_now() const { return system_.cluster_.engine().now(); }

  /// Records a per-rank trace span and (optionally) an aggregate latency
  /// sample for one completed runtime API call. No-op when detached.
  void op_done(const char* name, SimTime t0, obs::Histogram* h) {
    if (!obs_.any()) return;
    const SimTime end = op_now();
    if (obs_.trace != nullptr) {
      obs_.trace->add_span(trace_track_, name, t0, end);
    }
    if (h != nullptr) h->add(static_cast<double>(end - t0));
  }

  NvmecrSystem& system_;
  int rank_;
  std::unique_ptr<hw::BlockDevice> base_dev_;
  std::unique_ptr<nvmf::OverheadDevice> kernel_wrap_;
  std::unique_ptr<hw::PartitionView> partition_;
  std::unique_ptr<microfs::MicroFs> fs_;
  hw::NvmeSsd* local_ssd_ = nullptr;
  uint32_t local_nsid_ = 0;
  SimDuration kernel_time_ = 0;

  // Observability (copied from the cluster at init; null when off).
  obs::Observer obs_;
  std::string trace_track_;
  obs::Histogram* h_create_ = nullptr;
  obs::Histogram* h_write_ = nullptr;
  obs::Histogram* h_read_ = nullptr;
  obs::Histogram* h_fsync_ = nullptr;
  obs::Histogram* h_close_ = nullptr;
};

NvmecrSystem::NvmecrSystem(Cluster& cluster, JobAllocation job,
                           RuntimeConfig config, minimpi::Comm* comm)
    : cluster_(cluster),
      job_(std::move(job)),
      config_(config),
      comm_(comm) {
  if (!config_.private_namespace) {
    global_ns_ = std::make_unique<GlobalNamespace>(cluster_.engine());
    global_ns_->home = job_.assignment.ssd_nodes.empty()
                           ? cluster_.storage_nodes().front()
                           : job_.assignment.ssd_nodes.front();
    global_ns_->op_cost = 25_us;  // dentry + lock-manager critical section
  }
}

NvmecrSystem::~NvmecrSystem() = default;

sim::Task<StatusOr<std::vector<std::string>>> NvmecrSystem::fsck_all() {
  std::vector<std::string> issues;
  for (auto& [rank, client] : live_clients_) {
    auto report = co_await client->fs().fsck();
    if (!report.ok()) {
      co_return StatusOr<std::vector<std::string>>(report.status());
    }
    for (const std::string& issue : report->issues) {
      issues.push_back("rank " + std::to_string(rank) + ": " + issue);
    }
  }
  co_return issues;
}

sim::Task<StatusOr<std::unique_ptr<baselines::StorageClient>>>
NvmecrSystem::connect(int rank) {
  using Result = StatusOr<std::unique_ptr<baselines::StorageClient>>;
  auto client = std::make_unique<NvmecrClient>(*this, rank);
  Status s = co_await client->init();
  if (!s.ok()) co_return Result(s);
  co_return Result(std::unique_ptr<baselines::StorageClient>(
      std::move(client)));
}

uint64_t NvmecrSystem::hardware_peak_write_bw() const {
  const auto n = static_cast<uint32_t>(job_.assignment.ssd_nodes.size());
  return cluster_.peak_write_bw(config_.remote ? n : 1);
}

uint64_t NvmecrSystem::hardware_peak_read_bw() const {
  const auto n = static_cast<uint32_t>(job_.assignment.ssd_nodes.size());
  return cluster_.peak_read_bw(config_.remote ? n : 1);
}

std::vector<uint64_t> NvmecrSystem::bytes_per_server() const {
  std::vector<uint64_t> out;
  for (uint32_t s = 0; s < job_.assignment.ssd_nodes.size(); ++s) {
    const hw::NvmeSsd& ssd = const_cast<Cluster&>(cluster_).storage_ssd(
        cluster_.storage_ssd_index(job_.assignment.ssd_nodes[s]));
    out.push_back(ssd.namespace_bytes_written(job_.nsid_per_ssd[s]));
  }
  return out;
}

}  // namespace nvmecr::nvmecr_rt
