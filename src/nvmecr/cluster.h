// Simulated testbed cluster (§IV-A) and the job scheduler that hands
// NVMe namespaces to jobs (§III-F "Security Model", Slurm-GRES-style).
//
// A Cluster owns the engine, topology, network, the storage nodes' SSDs
// with their NVMf target daemons, and (optionally) per-compute-node
// local SSDs for the local-access experiments (Figures 7(c), 8(a)).
#pragma once

#include <memory>
#include <vector>

#include "fabric/network.h"
#include "fabric/topology.h"
#include "hw/nvme_ssd.h"
#include "nvmecr/balancer.h"
#include "nvmf/target.h"
#include "obs/observer.h"
#include "simcore/engine.h"

namespace nvmecr::nvmecr_rt {

using namespace nvmecr::literals;

struct ClusterSpec {
  uint32_t compute_nodes = 16;
  uint32_t storage_nodes = 8;
  /// Racks the storage nodes are spread over (round-robin remainder to
  /// the front racks). 1 reproduces the paper's single storage rack;
  /// redundancy schemes need >= 2 distinct storage failure domains.
  uint32_t storage_racks = 1;
  uint32_t cores_per_node = 28;
  hw::SsdSpec ssd;                 // per storage node
  fabric::NetworkParams network;
  nvmf::NvmfParams nvmf;
  /// Equip compute nodes with a local SSD too (local experiments).
  bool local_ssds = false;

  /// Lustre-like PFS for the second checkpoint level (§IV-A: 4 storage
  /// servers, one 12 Gb/s RAID controller each).
  uint32_t pfs_servers = 4;
  uint64_t pfs_server_bw = 1500_MBps;

  static ClusterSpec paper_testbed() { return ClusterSpec{}; }
};

class Cluster {
 public:
  explicit Cluster(ClusterSpec spec = {});
  ~Cluster();

  sim::Engine& engine() { return engine_; }
  const fabric::Topology& topology() const { return topo_; }
  fabric::Network& network() { return net_; }
  const ClusterSpec& spec() const { return spec_; }

  const std::vector<fabric::NodeId>& compute_nodes() const {
    return compute_nodes_;
  }
  const std::vector<fabric::NodeId>& storage_nodes() const {
    return storage_nodes_;
  }

  /// Compute node hosting `rank` when ranks fill nodes in blocks of
  /// `procs_per_node`.
  fabric::NodeId node_of_rank(uint32_t rank, uint32_t procs_per_node) const {
    return compute_nodes_[(rank / procs_per_node) % compute_nodes_.size()];
  }

  /// SSD + NVMf target of storage node `index` (0-based).
  hw::NvmeSsd& storage_ssd(uint32_t index) { return *storage_ssds_[index]; }
  nvmf::NvmfTarget& target(uint32_t index) { return *targets_[index]; }
  uint32_t storage_ssd_index(fabric::NodeId node) const;

  /// Local SSD of a compute node (requires spec.local_ssds).
  hw::NvmeSsd& local_ssd(fabric::NodeId node);

  /// Aggregate hardware peak over `num_ssds` storage SSDs.
  uint64_t peak_write_bw(uint32_t num_ssds) const {
    return static_cast<uint64_t>(num_ssds) * spec_.ssd.write_bw;
  }
  uint64_t peak_read_bw(uint32_t num_ssds) const {
    return static_cast<uint64_t>(num_ssds) * spec_.ssd.read_bw;
  }

  /// Installs trace/metrics sinks on the whole testbed — network, every
  /// SSD, every NVMf target — and keeps a copy that runtime systems
  /// built on this cluster (NvmecrSystem) pick up for per-rank
  /// instrumentation. Also points the logging timestamp prefix at this
  /// cluster's sim clock. Pass {} to detach.
  void install_observer(const obs::Observer& o);
  const obs::Observer& observer() const { return observer_; }

  /// Copies the host-performance counters that live outside the obs layer
  /// — the engine's dispatch/now-ring counts (simcore cannot depend on
  /// obs) and the payload stores' tag-cache hits — into the installed
  /// metrics registry (`engine.*`, `payload.*`). Drivers call this after
  /// a run; per-counter deltas make repeated calls safe. No-op without an
  /// installed metrics sink.
  void export_run_metrics();

 private:
  ClusterSpec spec_;
  sim::Engine engine_;
  fabric::Topology topo_;
  fabric::Network net_;
  std::vector<fabric::NodeId> compute_nodes_;
  std::vector<fabric::NodeId> storage_nodes_;
  std::vector<std::unique_ptr<hw::NvmeSsd>> storage_ssds_;
  std::vector<std::unique_ptr<nvmf::NvmfTarget>> targets_;
  std::vector<std::unique_ptr<hw::NvmeSsd>> local_ssds_;  // per compute node
  obs::Observer observer_;
  // Last values pushed by export_run_metrics().
  uint64_t exported_events_dispatched_ = 0;
  uint64_t exported_now_ring_hits_ = 0;
  uint64_t exported_calendar_hits_ = 0;
  uint64_t exported_frames_allocated_ = 0;
  uint64_t exported_frames_recycled_ = 0;
  uint64_t exported_tag_cache_hits_ = 0;
  uint64_t exported_tag_cache_fills_ = 0;
  uint64_t exported_tag_reads_ = 0;
  uint64_t exported_fabric_sent_ = 0;
  uint64_t exported_fabric_received_ = 0;
  uint64_t exported_compute_busy_ns_ = 0;
};

/// A job's storage allocation: the balancer result plus the NVMe
/// namespace created on each allocated SSD (the isolation granularity
/// the scheduler enforces, §III-F).
struct JobAllocation {
  BalancerAssignment assignment;
  std::vector<uint32_t> nsid_per_ssd;     // parallel to assignment.ssd_nodes
  std::vector<fabric::NodeId> rank_nodes; // compute node per rank
  uint64_t partition_bytes = 0;           // per-rank slice of a namespace
  uint32_t procs_per_node = 0;
};

class Scheduler {
 public:
  explicit Scheduler(Cluster& cluster) : cluster_(cluster) {}

  /// Allocates storage for a job of `nranks` ranks at `procs_per_node`,
  /// creating one namespace per chosen SSD sized for the job's
  /// partitions. `num_ssds` 0 = paper guidance (>= 56 procs per SSD).
  StatusOr<JobAllocation> allocate(uint32_t nranks, uint32_t procs_per_node,
                                   uint64_t partition_bytes,
                                   uint32_t num_ssds = 0);

  /// Allocates namespaces for an externally computed placement (the
  /// redundancy engine plans replica/parity placement itself and only
  /// needs the scheduler to carve the namespaces).
  StatusOr<JobAllocation> allocate_with_assignment(
      BalancerAssignment assignment, std::vector<fabric::NodeId> rank_nodes,
      uint32_t procs_per_node, uint64_t partition_bytes);

  /// Deletes the job's namespaces (the runtime is ephemeral — it
  /// terminates with the job, §I).
  void release(const JobAllocation& job);

 private:
  Status create_namespaces(JobAllocation& job);

  Cluster& cluster_;
};

}  // namespace nvmecr::nvmecr_rt
