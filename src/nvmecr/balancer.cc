#include "nvmecr/balancer.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/units.h"

namespace nvmecr::nvmecr_rt {

std::vector<fabric::RackId> StorageBalancer::partner_domains(
    const fabric::Topology& topo, fabric::RackId domain,
    const std::vector<fabric::NodeId>& storage_nodes) {
  std::set<fabric::RackId> domains;
  for (fabric::NodeId n : storage_nodes) {
    const fabric::RackId d = topo.failure_domain(n);
    if (d != domain) domains.insert(d);
  }
  std::vector<fabric::RackId> sorted(domains.begin(), domains.end());
  std::sort(sorted.begin(), sorted.end(),
            [&](fabric::RackId a, fabric::RackId b) {
              const uint32_t da = topo.rack_distance(domain, a);
              const uint32_t db = topo.rack_distance(domain, b);
              if (da != db) return da < db;
              return a < b;
            });
  return sorted;
}

StatusOr<BalancerAssignment> StorageBalancer::assign(
    const fabric::Topology& topo, const BalancerRequest& request,
    bool allow_same_domain) {
  if (request.rank_nodes.empty()) {
    return InvalidArgumentError("BalancerRequest.rank_nodes is empty");
  }
  if (request.storage_nodes.empty()) {
    return InvalidArgumentError("BalancerRequest.storage_nodes is empty");
  }
  if (request.num_ssds == 0 && request.min_procs_per_ssd == 0) {
    return InvalidArgumentError(
        "BalancerRequest.min_procs_per_ssd must be > 0 when num_ssds is "
        "derived from it");
  }
  for (fabric::NodeId n : request.rank_nodes) {
    if (n >= topo.node_count()) {
      return InvalidArgumentError("rank node out of topology range");
    }
  }
  for (fabric::NodeId n : request.storage_nodes) {
    if (n >= topo.node_count()) {
      return InvalidArgumentError("storage node out of topology range");
    }
  }
  for (fabric::RackId d : request.exclude_domains) {
    if (d >= topo.rack_count()) {
      return InvalidArgumentError("excluded domain out of topology range");
    }
  }
  const auto nranks = static_cast<uint32_t>(request.rank_nodes.size());

  // SSD count: explicit, or sized so each SSD serves at least
  // min_procs_per_ssd processes (§III-F), capped by availability.
  uint32_t num_ssds = request.num_ssds;
  if (num_ssds == 0) {
    num_ssds = std::max<uint32_t>(
        1, ceil_div(nranks, request.min_procs_per_ssd));
  }
  num_ssds = std::min<uint32_t>(
      num_ssds, static_cast<uint32_t>(request.storage_nodes.size()));

  // Allocate SSDs greedily on the partner domains closest to the job.
  // The job's "home" domains are those of its compute nodes.
  std::set<fabric::RackId> compute_domains;
  for (fabric::NodeId n : request.rank_nodes) {
    compute_domains.insert(topo.failure_domain(n));
  }
  // Drop candidates in excluded (dead/suspect) failure domains first; a
  // fully excluded candidate set is a typed exhaustion, not a retry.
  std::vector<fabric::NodeId> eligible;
  eligible.reserve(request.storage_nodes.size());
  for (fabric::NodeId n : request.storage_nodes) {
    const fabric::RackId d = topo.failure_domain(n);
    bool excluded = false;
    for (fabric::RackId x : request.exclude_domains) {
      if (x == d) {
        excluded = true;
        break;
      }
    }
    if (!excluded) eligible.push_back(n);
  }
  if (eligible.empty()) {
    return UnavailableError(
        "all candidate storage domains excluded (dead partner domains "
        "exhausted)");
  }

  // Order candidate storage nodes: partner-domain nodes first (by hop
  // distance to the nearest compute domain), same-domain nodes last.
  std::vector<fabric::NodeId> candidates = std::move(eligible);
  auto domain_rank = [&](fabric::NodeId n) {
    const fabric::RackId d = topo.failure_domain(n);
    uint32_t best = UINT32_MAX;
    bool same = false;
    for (fabric::RackId cd : compute_domains) {
      if (cd == d) same = true;
      best = std::min(best, topo.rack_distance(cd, d));
    }
    // Same-domain placements sort after every partner placement.
    return same ? 1000u + best : best;
  };
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](fabric::NodeId a, fabric::NodeId b) {
                     return domain_rank(a) < domain_rank(b);
                   });

  BalancerAssignment out;
  for (fabric::NodeId n : candidates) {
    if (out.ssd_nodes.size() >= num_ssds) break;
    out.ssd_nodes.push_back(n);
  }

  // Map each rank to the least-loaded SSD in a partner domain of its own
  // node (round-robin among equals keeps the load exactly even).
  out.ssd_of_rank.resize(nranks);
  out.slot_of_rank.resize(nranks);
  out.ranks_per_ssd.assign(out.ssd_nodes.size(), 0);
  for (uint32_t r = 0; r < nranks; ++r) {
    const fabric::RackId my_domain =
        topo.failure_domain(request.rank_nodes[r]);
    // Pick the least-loaded eligible SSD; partner-domain SSDs are always
    // preferred over same-domain ones (which are eligible only when
    // allow_same_domain is set).
    int best = -1;
    bool best_partner = false;
    for (uint32_t s = 0; s < out.ssd_nodes.size(); ++s) {
      const bool partner =
          topo.failure_domain(out.ssd_nodes[s]) != my_domain;
      if (!partner && !allow_same_domain) continue;
      const bool better =
          best < 0 || (partner && !best_partner) ||
          (partner == best_partner &&
           out.ranks_per_ssd[s] <
               out.ranks_per_ssd[static_cast<uint32_t>(best)]);
      if (better) {
        best = static_cast<int>(s);
        best_partner = partner;
      }
    }
    if (best < 0) {
      return InvalidArgumentError(
          "no storage outside rank's failure domain; pass "
          "allow_same_domain for single-domain testbeds");
    }
    const auto s = static_cast<uint32_t>(best);
    out.ssd_of_rank[r] = s;
    out.slot_of_rank[r] = out.ranks_per_ssd[s]++;
  }
  return out;
}

}  // namespace nvmecr::nvmecr_rt
