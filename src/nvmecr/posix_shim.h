// Application obliviousness (§III-C): POSIX call interception.
//
// On the real system this is GNU ld symbol interposition: the runtime
// exports open/write/close/... and the dynamic linker binds unmodified
// application binaries to them; MPI_Init/MPI_Finalize wrappers bracket
// the runtime's lifetime. Inside the simulation there is no dynamic
// linker, so PosixShim reproduces the *mechanism* one level up: a
// dispatch table keyed by symbol name whose entries forward to the
// NVMe-CR client, returning errno-style results. The lifecycle hooks
// (mpi_init establishing the client, mpi_finalize tearing it down) are
// the same code the interposed wrappers would run.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "baselines/storage_api.h"

namespace nvmecr::nvmecr_rt {

/// errno subset the shim reports (POSIX ABI surface).
enum class ShimErrno : int {
  kOk = 0,
  kENOENT = 2,
  kEACCES = 13,
  kEEXIST = 17,
  kEISDIR = 21,
  kEINVAL = 22,
  kENOSPC = 28,
  kEBADF = 9,
  kEIO = 5,
  kTimedOut = 110,    // ETIMEDOUT
  kHostUnreach = 113, // EHOSTUNREACH
};

ShimErrno to_errno(const Status& status);

class PosixShim {
 public:
  /// The set of symbols the runtime interposes (§III-C lists "all the
  /// standard POSIX IO library calls" plus the MPI lifecycle pair).
  static const std::vector<std::string>& intercepted_symbols();

  /// True when `symbol` would be redirected into the runtime.
  static bool intercepts(const std::string& symbol);

  /// MPI_Init wrapper: runs the runtime's init (the factory performs the
  /// §III-C coordination) and installs the client.
  sim::Task<Status> mpi_init(
      std::function<sim::Task<
          StatusOr<std::unique_ptr<baselines::StorageClient>>>()>
          connect);

  /// MPI_Finalize wrapper: tears the runtime down with the job.
  sim::Task<Status> mpi_finalize();

  bool initialized() const { return client_ != nullptr; }

  // Intercepted calls: negative return = -errno, like raw syscalls.
  sim::Task<int> open(const std::string& path, bool create);
  sim::Task<int64_t> write(int fd, uint64_t len);
  sim::Task<int64_t> read(int fd, uint64_t len);
  sim::Task<int> fsync(int fd);
  sim::Task<int> close(int fd);
  sim::Task<int> unlink(const std::string& path);

  baselines::StorageClient* client() { return client_.get(); }

 private:
  std::unique_ptr<baselines::StorageClient> client_;
};

}  // namespace nvmecr::nvmecr_rt
