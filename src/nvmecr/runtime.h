// The NVMe-CR runtime (§III-B, Figure 3): one storage-runtime instance
// per application process, each mounted on a private partition of a
// (remote) NVMe namespace and built on microfs.
//
// NvmecrSystem deploys the runtime for one job: it consumes the
// scheduler's JobAllocation, and connect(rank) performs exactly the
// paper's initialization sequence — MPI_COMM_CR split by shared SSD
// (Figure 6), NVMf qpair establishment, partitioning by rank slot, and
// microfs format — after which no instance ever coordinates with
// another.
//
// RuntimeConfig's toggles expose the drilldown axes of Figure 7(d):
//   userspace          off -> the Figure-2 kernel NVMf path (per-command
//                             kernel costs, time attributed as kernel)
//   private_namespace  off -> creates serialize through a global
//                             namespace service (distributed locking)
//   fs.metadata_provenance / fs.hugeblock_size / fs.coalesce_window as
//   in microfs::Options.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/storage_api.h"
#include "kernelfs/kernel_costs.h"
#include "microfs/microfs.h"
#include "minimpi/comm.h"
#include "nvmecr/cluster.h"
#include "nvmf/overhead_device.h"
#include "nvmf/spdk.h"
#include "simcore/sync.h"

namespace nvmecr::nvmecr_rt {

struct RuntimeConfig {
  microfs::Options fs;

  /// Figure 4 (true) vs Figure 2 (false): userspace SPDK path or the
  /// in-kernel nvme(-rdma) path with syscall/interrupt costs.
  bool userspace = true;

  /// Private per-process namespaces (§III-E). When false, every create
  /// first acquires a cluster-global namespace lock over the network —
  /// the conventional-filesystem behaviour the drilldown starts from.
  bool private_namespace = true;

  /// Remote SSDs over NVMf (deployment mode) vs the compute node's local
  /// SSD (Figures 7(c)/8(a) local runs; requires ClusterSpec.local_ssds).
  bool remote = true;

  kernelfs::KernelCosts kernel_costs;

  /// Optional hook applied to the qpair device right after connect()
  /// (remote mode only): receives the raw remote BlockDevice plus the
  /// storage node and rank it serves, and returns the device the rest of
  /// the chain is built on. The resilience layer installs its retrying /
  /// health-reporting wrapper here — keeping src/resilience out of the
  /// runtime's dependency set.
  std::function<std::unique_ptr<hw::BlockDevice>(
      std::unique_ptr<hw::BlockDevice>, fabric::NodeId storage_node,
      uint32_t rank)>
      device_wrapper;
};

class NvmecrClient;

class NvmecrSystem final : public baselines::StorageSystem {
 public:
  /// `comm`, when given, is used for the init-time collectives
  /// (MPI_COMM_CR split + setup barrier) exactly as §III-C describes;
  /// data/control plane operation never touches it afterwards.
  NvmecrSystem(Cluster& cluster, JobAllocation job, RuntimeConfig config,
               minimpi::Comm* comm = nullptr);
  ~NvmecrSystem() override;

  std::string name() const override { return "NVMe-CR"; }
  sim::Task<StatusOr<std::unique_ptr<baselines::StorageClient>>> connect(
      int rank) override;

  uint64_t hardware_peak_write_bw() const override;
  uint64_t hardware_peak_read_bw() const override;
  std::vector<uint64_t> bytes_per_server() const override;
  uint64_t metadata_bytes() const override { return metadata_bytes_; }
  SimDuration kernel_time() const override { return kernel_time_; }

  const JobAllocation& job() const { return job_; }
  const RuntimeConfig& config() const { return config_; }

  /// Aggregated microfs statistics across all clients that have closed
  /// (clients report their stats into the system on destruction).
  const microfs::MicroFsStats& aggregated_stats() const { return agg_stats_; }
  uint64_t log_records_appended() const { return agg_log_appended_; }
  uint64_t log_records_coalesced() const { return agg_log_coalesced_; }
  size_t peak_client_dram() const { return peak_client_dram_; }

  /// Runs the microfs fsck invariant checker over every live client's
  /// mounted filesystem (chaos campaigns' post-run corruption gate).
  /// Returns the concatenated, rank-prefixed issue list — empty means
  /// every instance is clean. Only clients still alive (connected and
  /// not yet destroyed) are checked.
  sim::Task<StatusOr<std::vector<std::string>>> fsck_all();
  size_t live_clients() const { return live_clients_.size(); }

 private:
  friend class NvmecrClient;

  /// Global-namespace emulation for the drilldown baseline: one lock on
  /// a "namespace home" storage node; creates RPC there and serialize.
  struct GlobalNamespace {
    explicit GlobalNamespace(sim::Engine& engine) : lock(engine) {}
    sim::FifoMutex lock;
    fabric::NodeId home = 0;
    SimDuration op_cost = 0;
  };

  Cluster& cluster_;
  JobAllocation job_;
  RuntimeConfig config_;
  minimpi::Comm* comm_;
  std::unique_ptr<GlobalNamespace> global_ns_;

  // Aggregation sinks (clients flush into these on destruction).
  microfs::MicroFsStats agg_stats_;
  uint64_t agg_log_appended_ = 0;
  uint64_t agg_log_coalesced_ = 0;
  uint64_t metadata_bytes_ = 0;
  SimDuration kernel_time_ = 0;
  size_t peak_client_dram_ = 0;

  /// Live-instance registry (rank -> client), maintained by the client's
  /// init/teardown so fsck_all can reach every mounted filesystem.
  std::map<int, NvmecrClient*> live_clients_;
};

}  // namespace nvmecr::nvmecr_rt
