#include "nvmecr/n1_adapter.h"

#include "common/crc.h"
#include "microfs/codec.h"

namespace nvmecr::nvmecr_rt {

namespace {
constexpr uint32_t kIndexMagic = 0x31784e49;  // "INx1"
std::string seg_name(const std::string& name) { return name + ".seg"; }
std::string idx_name(const std::string& name) { return name + ".idx"; }
}  // namespace

void encode_n1_index(const std::vector<N1Extent>& index,
                     std::vector<std::byte>& out) {
  microfs::Encoder enc(out);
  enc.u32(kIndexMagic);
  enc.u64(index.size());
  for (const N1Extent& e : index) {
    enc.u64(e.logical_off);
    enc.u64(e.length);
    enc.u64(e.segment_off);
  }
  const size_t body = out.size();
  enc.u64(crc64(out.data(), body));
}

StatusOr<std::vector<N1Extent>> decode_n1_index(
    std::span<const std::byte> in) {
  microfs::Decoder dec(in);
  uint32_t magic = 0;
  uint64_t count = 0;
  NVMECR_RETURN_IF_ERROR(dec.u32(magic));
  if (magic != kIndexMagic) return CorruptionError("bad N-1 index magic");
  NVMECR_RETURN_IF_ERROR(dec.u64(count));
  if (count > dec.remaining() / 24) {
    return CorruptionError("N-1 index count exceeds buffer");
  }
  std::vector<N1Extent> index(count);
  for (auto& e : index) {
    NVMECR_RETURN_IF_ERROR(dec.u64(e.logical_off));
    NVMECR_RETURN_IF_ERROR(dec.u64(e.length));
    NVMECR_RETURN_IF_ERROR(dec.u64(e.segment_off));
  }
  const size_t body = dec.consumed();
  uint64_t stored = 0;
  NVMECR_RETURN_IF_ERROR(dec.u64(stored));
  if (stored != crc64(in.data(), body)) {
    return CorruptionError("N-1 index crc mismatch");
  }
  return index;
}

sim::Task<StatusOr<std::unique_ptr<N1Writer>>> N1Writer::create(
    microfs::MicroFs& fs, const std::string& name) {
  using Result = StatusOr<std::unique_ptr<N1Writer>>;
  auto fd = co_await fs.creat(seg_name(name));
  if (!fd.ok()) co_return Result(fd.status());
  co_return Result(std::unique_ptr<N1Writer>(new N1Writer(fs, name, *fd)));
}

sim::Task<Status> N1Writer::write_at(uint64_t logical_off, uint64_t len) {
  if (closed_) co_return InvalidArgumentError("write after close");
  NVMECR_CO_RETURN_IF_ERROR(co_await fs_.write_tagged(seg_fd_, len));
  // Coalesce with the previous extent when both the logical range and
  // the segment are contiguous (the common strided-loop case writes each
  // stride in one or more sequential pieces).
  if (!index_.empty()) {
    N1Extent& last = index_.back();
    if (last.logical_off + last.length == logical_off &&
        last.segment_off + last.length == segment_bytes_) {
      last.length += len;
      segment_bytes_ += len;
      co_return OkStatus();
    }
  }
  index_.push_back(N1Extent{logical_off, len, segment_bytes_});
  segment_bytes_ += len;
  co_return OkStatus();
}

sim::Task<Status> N1Writer::close() {
  if (closed_) co_return OkStatus();
  NVMECR_CO_RETURN_IF_ERROR(co_await fs_.fsync(seg_fd_));
  NVMECR_CO_RETURN_IF_ERROR(co_await fs_.close(seg_fd_));
  // Persist the index; its existence marks the share complete.
  std::vector<std::byte> buf;
  encode_n1_index(index_, buf);
  auto fd = co_await fs_.creat(idx_name(name_));
  if (!fd.ok()) co_return fd.status();
  NVMECR_CO_RETURN_IF_ERROR((co_await fs_.write(*fd, buf)).status());
  NVMECR_CO_RETURN_IF_ERROR(co_await fs_.fsync(*fd));
  NVMECR_CO_RETURN_IF_ERROR(co_await fs_.close(*fd));
  closed_ = true;
  co_return OkStatus();
}

sim::Task<StatusOr<std::unique_ptr<N1Reader>>> N1Reader::open(
    microfs::MicroFs& fs, const std::string& name) {
  using Result = StatusOr<std::unique_ptr<N1Reader>>;
  auto st = fs.stat(idx_name(name));
  if (!st.ok()) co_return Result(st.status());  // no index: incomplete
  auto fd = co_await fs.open(idx_name(name), microfs::OpenFlags::ReadOnly());
  if (!fd.ok()) co_return Result(fd.status());
  std::vector<std::byte> buf(st->size);
  auto got = co_await fs.read(*fd, buf);
  if (!got.ok()) co_return Result(got.status());
  NVMECR_CO_RETURN_IF_ERROR(co_await fs.close(*fd));
  auto index = decode_n1_index(buf);
  if (!index.ok()) co_return Result(index.status());
  std::unique_ptr<N1Reader> reader(new N1Reader(fs, name));
  reader->index_ = std::move(*index);
  co_return Result(std::move(reader));
}

uint64_t N1Reader::covered_bytes() const {
  uint64_t total = 0;
  for (const N1Extent& e : index_) total += e.length;
  return total;
}

sim::Task<Status> N1Reader::read_at(uint64_t logical_off, uint64_t len) {
  // Map the logical range through this share's extents; every byte must
  // be covered (restart uses the writer's decomposition).
  auto fd = co_await fs_.open(seg_name(name_), microfs::OpenFlags::ReadOnly());
  if (!fd.ok()) co_return fd.status();
  uint64_t pos = logical_off;
  const uint64_t end = logical_off + len;
  Status result = OkStatus();
  while (pos < end) {
    const N1Extent* hit = nullptr;
    for (const N1Extent& e : index_) {
      if (pos >= e.logical_off && pos < e.logical_off + e.length) {
        hit = &e;
        break;
      }
    }
    if (hit == nullptr) {
      result = NotFoundError("logical range not covered by this share");
      break;
    }
    const uint64_t in_extent =
        std::min(end, hit->logical_off + hit->length) - pos;
    // Position the segment cursor at the extent's mapped offset.
    result = fs_.seek(*fd, hit->segment_off + (pos - hit->logical_off));
    if (!result.ok()) break;
    Status s = co_await fs_.read_tagged(*fd, in_extent);
    if (!s.ok()) {
      result = s;
      break;
    }
    pos += in_extent;
  }
  Status c = co_await fs_.close(*fd);
  co_return result.ok() ? c : result;
}

}  // namespace nvmecr::nvmecr_rt
