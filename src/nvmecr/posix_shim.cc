#include "nvmecr/posix_shim.h"

#include <algorithm>

namespace nvmecr::nvmecr_rt {

ShimErrno to_errno(const Status& status) {
  switch (status.code()) {
    case ErrorCode::kOk: return ShimErrno::kOk;
    case ErrorCode::kNotFound: return ShimErrno::kENOENT;
    case ErrorCode::kExists: return ShimErrno::kEEXIST;
    case ErrorCode::kPermission: return ShimErrno::kEACCES;
    case ErrorCode::kIsDirectory: return ShimErrno::kEISDIR;
    case ErrorCode::kNoSpace: return ShimErrno::kENOSPC;
    case ErrorCode::kBadFd: return ShimErrno::kEBADF;
    case ErrorCode::kInvalidArgument: return ShimErrno::kEINVAL;
    case ErrorCode::kTimedOut: return ShimErrno::kTimedOut;
    case ErrorCode::kUnreachable: return ShimErrno::kHostUnreach;
    case ErrorCode::kDeadlineExceeded: return ShimErrno::kTimedOut;
    default: return ShimErrno::kEIO;
  }
}

const std::vector<std::string>& PosixShim::intercepted_symbols() {
  static const std::vector<std::string> kSymbols = {
      "open",  "open64", "creat", "close",  "read",   "write",
      "pread", "pwrite", "fsync", "fdatasync", "unlink", "mkdir",
      "rmdir", "lseek",  "stat",  "fstat",  "access", "MPI_Init",
      "MPI_Finalize",
  };
  return kSymbols;
}

bool PosixShim::intercepts(const std::string& symbol) {
  const auto& symbols = intercepted_symbols();
  return std::find(symbols.begin(), symbols.end(), symbol) != symbols.end();
}

sim::Task<Status> PosixShim::mpi_init(
    std::function<
        sim::Task<StatusOr<std::unique_ptr<baselines::StorageClient>>>()>
        connect) {
  if (client_ != nullptr) co_return InternalError("double MPI_Init");
  auto client = co_await connect();
  if (!client.ok()) co_return client.status();
  client_ = std::move(client).value();
  co_return OkStatus();
}

sim::Task<Status> PosixShim::mpi_finalize() {
  if (client_ == nullptr) co_return InternalError("MPI_Finalize before Init");
  client_.reset();  // the runtime's lifetime mirrors the job's (§I)
  co_return OkStatus();
}

sim::Task<int> PosixShim::open(const std::string& path, bool create) {
  if (client_ == nullptr) co_return -static_cast<int>(ShimErrno::kEIO);
  // Plain if/else rather than `cond ? co_await a : co_await b` — GCC 12
  // double-destroys the result temporary of co_await inside the
  // conditional operator (see DESIGN.md's toolchain notes).
  if (create) {
    auto fd = co_await client_->create(path);
    if (!fd.ok()) co_return -static_cast<int>(to_errno(fd.status()));
    co_return *fd;
  }
  auto fd = co_await client_->open_read(path);
  if (!fd.ok()) co_return -static_cast<int>(to_errno(fd.status()));
  co_return *fd;
}

sim::Task<int64_t> PosixShim::write(int fd, uint64_t len) {
  if (client_ == nullptr) co_return -static_cast<int>(ShimErrno::kEIO);
  Status s = co_await client_->write(fd, len);
  if (!s.ok()) co_return -static_cast<int64_t>(to_errno(s));
  co_return static_cast<int64_t>(len);
}

sim::Task<int64_t> PosixShim::read(int fd, uint64_t len) {
  if (client_ == nullptr) co_return -static_cast<int>(ShimErrno::kEIO);
  Status s = co_await client_->read(fd, len);
  if (!s.ok()) co_return -static_cast<int64_t>(to_errno(s));
  co_return static_cast<int64_t>(len);
}

sim::Task<int> PosixShim::fsync(int fd) {
  if (client_ == nullptr) co_return -static_cast<int>(ShimErrno::kEIO);
  Status s = co_await client_->fsync(fd);
  co_return s.ok() ? 0 : -static_cast<int>(to_errno(s));
}

sim::Task<int> PosixShim::close(int fd) {
  if (client_ == nullptr) co_return -static_cast<int>(ShimErrno::kEIO);
  Status s = co_await client_->close(fd);
  co_return s.ok() ? 0 : -static_cast<int>(to_errno(s));
}

sim::Task<int> PosixShim::unlink(const std::string& path) {
  if (client_ == nullptr) co_return -static_cast<int>(ShimErrno::kEIO);
  Status s = co_await client_->unlink(path);
  co_return s.ok() ? 0 : -static_cast<int>(to_errno(s));
}

}  // namespace nvmecr::nvmecr_rt
