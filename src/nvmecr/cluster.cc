#include "nvmecr/cluster.h"

#include "common/log.h"
#include "simcore/profile.h"
#include "simcore/trace.h"

namespace nvmecr::nvmecr_rt {

namespace {
/// Logging time source: a captureless bridge from the C callback in
/// common/log to this cluster's engine.
uint64_t cluster_log_now(const void* ctx) {
  const auto* engine = static_cast<const sim::Engine*>(ctx);
  const SimTime now = engine->now();
  return now > 0 ? static_cast<uint64_t>(now) : 0;
}
}  // namespace

Cluster::Cluster(ClusterSpec spec)
    : spec_(spec),
      topo_([&] {
        fabric::Topology t;
        t.add_rack(spec.compute_nodes, fabric::NodeRole::kCompute, "compute");
        const uint32_t racks = std::max<uint32_t>(1, spec.storage_racks);
        for (uint32_t r = 0; r < racks; ++r) {
          // Spread storage nodes over the racks; remainder to the front.
          const uint32_t count =
              spec.storage_nodes / racks + (r < spec.storage_nodes % racks);
          if (count > 0) t.add_rack(count, fabric::NodeRole::kStorage, "storage");
        }
        return t;
      }()),
      net_(engine_, topo_, spec.network) {
  compute_nodes_ = topo_.nodes_with_role(fabric::NodeRole::kCompute);
  storage_nodes_ = topo_.nodes_with_role(fabric::NodeRole::kStorage);
  for (uint32_t i = 0; i < storage_nodes_.size(); ++i) {
    storage_ssds_.push_back(std::make_unique<hw::NvmeSsd>(
        engine_, spec.ssd, "storage-nvme" + std::to_string(i)));
    targets_.push_back(std::make_unique<nvmf::NvmfTarget>(
        engine_, net_, storage_nodes_[i], *storage_ssds_.back(), spec.nvmf));
  }
  if (spec.local_ssds) {
    for (uint32_t i = 0; i < compute_nodes_.size(); ++i) {
      local_ssds_.push_back(std::make_unique<hw::NvmeSsd>(
          engine_, spec.ssd, "local-nvme" + std::to_string(i)));
    }
  }
  // Frame-pool counters are process-wide and monotone; baseline them at
  // construction so the first export_run_metrics() push counts only
  // this cluster's frames, not prior runs in the same process.
  exported_frames_allocated_ = sim::frame_allocations();
  exported_frames_recycled_ = sim::frames_recycled();
  // Prefix log lines with this cluster's sim clock so they correlate
  // with trace spans.
  log_set_time_source(&cluster_log_now, &engine_);
}

Cluster::~Cluster() {
  // Detach the logging clock, but only if it is still ours (a nested or
  // later-built cluster may have replaced it).
  if (log_time_source_ctx() == &engine_) {
    log_set_time_source(nullptr, nullptr);
  }
}

void Cluster::install_observer(const obs::Observer& o) {
  observer_ = o;
  // Arm the engine-side profiling layer: the dispatch profiler buckets
  // host wall time per cost center, the trace collector doubles as the
  // deadlock flight recorder, and the context-stamping hooks are enabled
  // only when some profiler will consume the contexts.
  engine_.set_profiler(o.dispatch);
  engine_.set_flight_recorder(o.trace);
  engine_.set_profile_hooks(o.dispatch != nullptr || o.epoch != nullptr);
  net_.set_observer(o);
  for (auto& ssd : storage_ssds_) ssd->set_observer(o);
  for (auto& ssd : local_ssds_) ssd->set_observer(o);
  for (auto& target : targets_) target->set_observer(o);
}

void Cluster::export_run_metrics() {
  if (observer_.metrics == nullptr) return;
  const auto push = [this](const char* name, uint64_t now, uint64_t& last) {
    observer_.metrics->counter(name)->add(now - last);
    last = now;
  };
  push("engine.events_dispatched", engine_.events_dispatched(),
       exported_events_dispatched_);
  push("engine.now_ring_hits", engine_.now_ring_hits(),
       exported_now_ring_hits_);
  push("engine.calendar_hits", engine_.calendar_hits(),
       exported_calendar_hits_);
  // Frame-pool counters are process-wide (simcore/task.h), not per
  // engine; the delta push still scopes them to this run.
  push("engine.frames_allocated", sim::frame_allocations(),
       exported_frames_allocated_);
  push("engine.frames_recycled", sim::frames_recycled(),
       exported_frames_recycled_);
  uint64_t tag_hits = 0;
  uint64_t tag_fills = 0;
  uint64_t tag_reads = 0;
  const auto sum_payload = [&](const hw::NvmeSsd& ssd) {
    tag_hits += ssd.payload().tag_cache_hits();
    tag_fills += ssd.payload().tag_cache_fills();
    tag_reads += ssd.payload().tag_reads();
  };
  for (const auto& ssd : storage_ssds_) sum_payload(*ssd);
  for (const auto& ssd : local_ssds_) sum_payload(*ssd);
  push("payload.tag_cache_hits", tag_hits, exported_tag_cache_hits_);
  push("payload.tag_cache_fills", tag_fills, exported_tag_cache_fills_);
  push("payload.tag_reads", tag_reads, exported_tag_reads_);
  push("fabric.bytes_sent", net_.total_bytes_sent(), exported_fabric_sent_);
  push("fabric.bytes_received", net_.total_bytes_received(),
       exported_fabric_received_);
  uint64_t compute_busy = 0;
  for (const auto& target : targets_) compute_busy += target->compute_busy_ns();
  push("target.compute_busy_ns", compute_busy, exported_compute_busy_ns_);
}

uint32_t Cluster::storage_ssd_index(fabric::NodeId node) const {
  for (uint32_t i = 0; i < storage_nodes_.size(); ++i) {
    if (storage_nodes_[i] == node) return i;
  }
  NVMECR_CHECK(false && "not a storage node");
  return 0;
}

hw::NvmeSsd& Cluster::local_ssd(fabric::NodeId node) {
  NVMECR_CHECK(spec_.local_ssds);
  for (uint32_t i = 0; i < compute_nodes_.size(); ++i) {
    if (compute_nodes_[i] == node) return *local_ssds_[i];
  }
  NVMECR_CHECK(false && "not a compute node");
  return *local_ssds_[0];
}

StatusOr<JobAllocation> Scheduler::allocate(uint32_t nranks,
                                            uint32_t procs_per_node,
                                            uint64_t partition_bytes,
                                            uint32_t num_ssds) {
  JobAllocation job;
  job.procs_per_node = procs_per_node;
  job.partition_bytes = partition_bytes;
  job.rank_nodes.reserve(nranks);
  for (uint32_t r = 0; r < nranks; ++r) {
    job.rank_nodes.push_back(cluster_.node_of_rank(r, procs_per_node));
  }

  BalancerRequest request;
  request.rank_nodes = job.rank_nodes;
  request.storage_nodes = cluster_.storage_nodes();
  request.num_ssds = num_ssds;
  NVMECR_ASSIGN_OR_RETURN(job.assignment,
                          StorageBalancer::assign(cluster_.topology(),
                                                  request));
  NVMECR_RETURN_IF_ERROR(create_namespaces(job));
  return job;
}

StatusOr<JobAllocation> Scheduler::allocate_with_assignment(
    BalancerAssignment assignment, std::vector<fabric::NodeId> rank_nodes,
    uint32_t procs_per_node, uint64_t partition_bytes) {
  JobAllocation job;
  job.assignment = std::move(assignment);
  job.rank_nodes = std::move(rank_nodes);
  job.procs_per_node = procs_per_node;
  job.partition_bytes = partition_bytes;
  NVMECR_RETURN_IF_ERROR(create_namespaces(job));
  return job;
}

Status Scheduler::create_namespaces(JobAllocation& job) {
  // One namespace per allocated SSD, sized for its share of ranks. If an
  // SSD lacks free namespaces or space the whole allocation is rolled
  // back (jobs are all-or-nothing).
  for (uint32_t s = 0; s < job.assignment.ssd_nodes.size(); ++s) {
    hw::NvmeSsd& ssd =
        cluster_.storage_ssd(cluster_.storage_ssd_index(
            job.assignment.ssd_nodes[s]));
    const uint64_t bytes =
        job.partition_bytes *
        std::max<uint32_t>(1, job.assignment.ranks_per_ssd[s]);
    auto nsid = ssd.create_namespace(bytes);
    if (!nsid.ok()) {
      release(job);
      return nsid.status();
    }
    job.nsid_per_ssd.push_back(*nsid);
  }
  return OkStatus();
}

void Scheduler::release(const JobAllocation& job) {
  for (uint32_t s = 0; s < job.nsid_per_ssd.size(); ++s) {
    hw::NvmeSsd& ssd =
        cluster_.storage_ssd(cluster_.storage_ssd_index(
            job.assignment.ssd_nodes[s]));
    (void)ssd.delete_namespace(job.nsid_per_ssd[s]);
  }
}

}  // namespace nvmecr::nvmecr_rt
