// Load-aware, fault-tolerance-aware storage balancer (§III-F, Figure 6).
//
// Given the cluster topology, the job's compute nodes, and the set of
// candidate storage nodes, the balancer:
//   1. derives failure domains (rack = shared ToR + PDU),
//   2. builds, per compute failure domain, the list of *partner* domains
//      (distinct storage-capable domains) sorted by switch-hop distance,
//   3. greedily allocates the requested number of SSDs on the closest
//      partner domains,
//   4. assigns processes to allocated SSDs round-robin so every SSD
//      carries an equal share (the CoV ~ 0 line of Figure 7(b)), while
//      never co-locating a process with its own checkpoint data's
//      failure domain.
//
// The result is pure data: the runtime applies it at init time and needs
// no further coordination (§III-F: "once the partitioning is complete,
// the load balancer does not need to be involved").
#pragma once

#include <vector>

#include "common/status.h"
#include "fabric/topology.h"

namespace nvmecr::nvmecr_rt {

struct BalancerRequest {
  /// Compute node of each rank (rank -> node).
  std::vector<fabric::NodeId> rank_nodes;
  /// Candidate storage nodes (each hosts one SSD).
  std::vector<fabric::NodeId> storage_nodes;
  /// SSDs to allocate; 0 = derive from the process:SSD guidance below.
  uint32_t num_ssds = 0;
  /// The paper's guidance: size the allocation so each SSD serves
  /// between `min_procs_per_ssd` and 2x that (56-112, §III-F).
  uint32_t min_procs_per_ssd = 56;
  /// Failure domains the assignment must avoid entirely (dead or
  /// suspect racks during failover re-requests). Candidate storage
  /// nodes in these domains are filtered out before placement; if
  /// nothing remains the balancer returns a typed kUnavailable
  /// exhaustion error rather than looping or degrading silently.
  std::vector<fabric::RackId> exclude_domains;
};

struct BalancerAssignment {
  /// Allocated storage nodes (one SSD each), closest partners first.
  std::vector<fabric::NodeId> ssd_nodes;
  /// For each rank, index into ssd_nodes.
  std::vector<uint32_t> ssd_of_rank;
  /// For each rank, its slot among the ranks sharing that SSD
  /// (the partition index within the namespace, Figure 6).
  std::vector<uint32_t> slot_of_rank;
  /// Ranks sharing each SSD (the MPI_COMM_CR size per SSD).
  std::vector<uint32_t> ranks_per_ssd;
};

class StorageBalancer {
 public:
  /// Computes the assignment. Fails with kInvalidArgument when no
  /// storage node lies outside a rank's failure domain (fault-tolerance
  /// would be void) unless `allow_same_domain` — single-rack testbeds
  /// and the local-SSD experiments set it.
  static StatusOr<BalancerAssignment> assign(const fabric::Topology& topo,
                                             const BalancerRequest& request,
                                             bool allow_same_domain = false);

  /// Partner domains of `domain`: storage-capable failure domains other
  /// than `domain`, sorted by hop distance then id.
  static std::vector<fabric::RackId> partner_domains(
      const fabric::Topology& topo, fabric::RackId domain,
      const std::vector<fabric::NodeId>& storage_nodes);
};

}  // namespace nvmecr::nvmecr_rt
