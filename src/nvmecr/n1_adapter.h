// N-1 checkpoint pattern support (§III-E: "two patterns are prevalent —
// N-1 and N-N ... the designs proposed in this paper are specifically
// targeted towards the N-N pattern").
//
// NVMe-CR's private namespaces have no shared files, so a logical N-1
// file (every process writing strided regions of ONE checkpoint) is
// translated PLFS-style [Bent et al., SC'09 — cited as [24]]: each
// process appends its strides to a private *segment* file and records
// (logical offset, length, segment offset) triples in a private *index*
// file. The translation needs no cross-process coordination — exactly
// the property that makes N-N fast here — and restart with the same
// decomposition reads back through the rank-local index.
//
// Crash semantics: the index is persisted on close(); a logical file
// whose writer crashed mid-stream has no index and open() reports it
// missing (an incomplete N-1 checkpoint is not recoverable, matching
// application-level C/R practice of validating the newest complete set).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "microfs/microfs.h"

namespace nvmecr::nvmecr_rt {

struct N1Extent {
  uint64_t logical_off = 0;
  uint64_t length = 0;
  uint64_t segment_off = 0;
};

/// Writer for one process's share of a logical N-1 file.
class N1Writer {
 public:
  /// Creates `<name>.seg` (payload) in `fs`; the index is buffered in
  /// DRAM until close() persists `<name>.idx`.
  static sim::Task<StatusOr<std::unique_ptr<N1Writer>>> create(
      microfs::MicroFs& fs, const std::string& name);

  /// Writes `len` payload bytes of the logical file at `logical_off`.
  /// Appends to the segment; coalesces index entries for contiguous
  /// strides (sequential logical AND segment growth).
  sim::Task<Status> write_at(uint64_t logical_off, uint64_t len);

  /// Persists the index and closes both files; the logical share is
  /// complete (and recoverable) only after this returns OK.
  sim::Task<Status> close();

  size_t index_entries() const { return index_.size(); }
  uint64_t payload_bytes() const { return segment_bytes_; }

 private:
  N1Writer(microfs::MicroFs& fs, std::string name, int seg_fd)
      : fs_(fs), name_(std::move(name)), seg_fd_(seg_fd) {}

  microfs::MicroFs& fs_;
  std::string name_;
  int seg_fd_;
  uint64_t segment_bytes_ = 0;
  std::vector<N1Extent> index_;
  bool closed_ = false;
};

/// Reader for one process's share of a logical N-1 file.
class N1Reader {
 public:
  /// Loads `<name>.idx`; fails with kNotFound if the share was never
  /// completed (no index ⇒ incomplete checkpoint).
  static sim::Task<StatusOr<std::unique_ptr<N1Reader>>> open(
      microfs::MicroFs& fs, const std::string& name);

  /// Reads (and verifies) `len` logical bytes at `logical_off`. The
  /// range must be covered by this process's extents.
  sim::Task<Status> read_at(uint64_t logical_off, uint64_t len);

  const std::vector<N1Extent>& index() const { return index_; }
  /// Total logical bytes this share covers.
  uint64_t covered_bytes() const;

 private:
  N1Reader(microfs::MicroFs& fs, std::string name)
      : fs_(fs), name_(std::move(name)) {}

  microfs::MicroFs& fs_;
  std::string name_;
  std::vector<N1Extent> index_;
};

/// Serialized index codec (exposed for tests).
void encode_n1_index(const std::vector<N1Extent>& index,
                     std::vector<std::byte>& out);
StatusOr<std::vector<N1Extent>> decode_n1_index(
    std::span<const std::byte> in);

}  // namespace nvmecr::nvmecr_rt
