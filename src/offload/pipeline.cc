#include "offload/pipeline.h"

#include <algorithm>

#include "common/log.h"
#include "obs/profile.h"
#include "simcore/profile.h"

namespace nvmecr::offload {

using Phase = obs::EpochProfiler::Phase;

// ---------------------------------------------------------------------------
// OffloadSystem

OffloadSystem::OffloadSystem(nvmecr_rt::Cluster& cluster,
                             baselines::StorageSystem& inner,
                             const nvmecr_rt::JobAllocation& job,
                             OffloadOptions opts)
    : cluster_(cluster), inner_(inner), job_(job), opts_(opts) {
  NVMECR_CHECK(job_.assignment.ssd_of_rank.size() == job_.rank_nodes.size());
  ranks_.resize(job_.rank_nodes.size());
}

nvmf::NvmfTarget& OffloadSystem::target_of(uint32_t rank) {
  const fabric::NodeId node =
      job_.assignment.ssd_nodes[job_.assignment.ssd_of_rank[rank]];
  return cluster_.target(cluster_.storage_ssd_index(node));
}

uint32_t OffloadSystem::granted(uint32_t rank) const {
  return rank < ranks_.size() ? ranks_[rank].st.granted : 0;
}

uint32_t OffloadSystem::active_grant(uint32_t rank) {
  RankSlot& slot = ranks_[rank];
  if (slot.st.granted != 0 &&
      !target_of(rank).alive(cluster_.engine().now())) {
    // The target daemon is gone: revoke every stage for this session and
    // record it — the degraded manifest operators (and the resilience
    // tests) read. Data-path IO keeps going through the inner system's
    // own failover; compute just moves back to the host.
    slot.st.granted = 0;
    slot.st.image_path.clear();
    slot.st.image_bytes = 0;
    ++fallbacks_;
    fallback_log_.push_back(
        "rank " + std::to_string(rank) +
        ": target dead, offload stages fell back to host compute");
  }
  return slot.st.granted;
}

sim::Task<StatusOr<std::unique_ptr<baselines::StorageClient>>>
OffloadSystem::connect(int rank) {
  NVMECR_CHECK(rank >= 0 && static_cast<size_t>(rank) < ranks_.size());
  auto inner = co_await inner_.connect(rank);
  if (!inner.ok()) co_return inner.status();
  const auto r = static_cast<uint32_t>(rank);
  RankSlot& slot = ranks_[r];
  slot.st = RankOffloadState{};
  slot.files.clear();
  if (opts_.stages != 0) {
    auto g = co_await target_of(r).negotiate_offload(client_node(r),
                                                     opts_.stages);
    if (g.ok()) {
      slot.st.granted = *g;
    } else {
      ++fallbacks_;
      fallback_log_.push_back("rank " + std::to_string(r) +
                              ": offload negotiation failed (" +
                              g.status().to_string() +
                              "); stages run host-side");
    }
  }
  co_return std::unique_ptr<baselines::StorageClient>(
      std::make_unique<OffloadClient>(*this, r, std::move(*inner)));
}

uint64_t OffloadSystem::restart_image_bytes(int rank,
                                            const std::string& path) {
  if (rank < 0 || static_cast<size_t>(rank) >= ranks_.size()) return 0;
  const auto r = static_cast<uint32_t>(rank);
  if ((active_grant(r) & nvmf::kOffloadCompact) == 0) return 0;
  const RankSlot& slot = ranks_[r];
  if (slot.st.image_path != path || slot.st.image_bytes == 0) return 0;
  // Only worth serving when the file alone is not the full state.
  const auto it = slot.files.find(path);
  const uint64_t raw = it == slot.files.end() ? 0 : it->second.raw_bytes;
  return slot.st.image_bytes > raw ? slot.st.image_bytes : 0;
}

// ---------------------------------------------------------------------------
// OffloadClient

OffloadClient::OffloadClient(OffloadSystem& sys, uint32_t rank,
                             std::unique_ptr<baselines::StorageClient> inner)
    : sys_(sys), rank_(rank), inner_(std::move(inner)) {}

sim::Task<Status> OffloadClient::target_round_trip(uint64_t payload) {
  sim::Engine& eng = sys_.cluster_.engine();
  nvmf::NvmfTarget& tgt = sys_.target_of(rank_);
  const nvmf::NvmfParams& p = tgt.params();
  co_await eng.delay(p.initiator_per_cmd);
  if (!tgt.alive(eng.now())) {
    co_return UnreachableError("offload target dead");
  }
  const fabric::NodeId me = sys_.client_node(rank_);
  NVMECR_CO_RETURN_IF_ERROR(co_await sys_.cluster_.network().try_transfer(
      me, tgt.node(), p.command_bytes));
  sim::ProfileTagScope tag(eng, tgt.offload_tag());
  co_await eng.sleep_until(tgt.reserve_poll_group(eng.now()));
  if (payload > 0) {
    // DRAM-staged image streamout on the target before the data ships.
    co_await eng.delay(transfer_time(payload, sys_.opts_.image_dram_bw));
  }
  if (!tgt.alive(eng.now())) {
    co_return UnreachableError("offload target dead");
  }
  co_return co_await sys_.cluster_.network().try_transfer(
      tgt.node(), me, p.completion_bytes + payload);
}

sim::Task<StatusOr<int>> OffloadClient::create(const std::string& path) {
  auto fd = co_await inner_->create(path);
  if (!fd.ok()) co_return fd;
  OpenFile of;
  of.path = path;
  of.writing = true;
  open_[*fd] = of;
  // Rewriting a path obsoletes any stored record of it.
  sys_.ranks_[rank_].files.erase(path);
  co_return fd;
}

sim::Task<StatusOr<int>> OffloadClient::open_read(const std::string& path) {
  OffloadSystem::RankSlot& slot = sys_.ranks_[rank_];
  const uint32_t grant = sys_.active_grant(rank_);
  const auto fit = slot.files.find(path);
  const uint64_t file_raw =
      fit == slot.files.end() ? 0 : fit->second.raw_bytes;
  if ((grant & nvmf::kOffloadCompact) != 0 && slot.st.image_path == path &&
      slot.st.image_bytes > file_raw) {
    // Serve the materialized image straight off the target: one open
    // round trip, then wait out any still-running fold.
    sim::Engine& eng = sys_.cluster_.engine();
    NVMECR_CO_RETURN_IF_ERROR(co_await target_round_trip(0));
    if (slot.st.image_ready > eng.now()) {
      obs::EpochProfiler* const ep = sys_.cluster_.observer().epoch;
      if (ep != nullptr) {
        ep->record(eng, Phase::kTargetCompute, slot.st.image_ready - eng.now());
      }
      co_await eng.sleep_until(slot.st.image_ready);
    }
    const int fd = next_image_fd_++;
    OpenFile of;
    of.path = path;
    of.image = true;
    of.image_bytes = slot.st.image_bytes;
    open_[fd] = of;
    co_return fd;
  }
  auto fd = co_await inner_->open_read(path);
  if (!fd.ok()) co_return fd;
  OpenFile of;
  of.path = path;
  if (fit != slot.files.end() && fit->second.compressed) {
    of.raw_left = fit->second.raw_bytes;
    of.wire_left = fit->second.wire_bytes;
  }
  open_[*fd] = of;
  co_return fd;
}

sim::Task<Status> OffloadClient::write(int fd, uint64_t len) {
  auto it = open_.find(fd);
  if (it == open_.end() || !it->second.writing) {
    co_return co_await inner_->write(fd, len);
  }
  sim::Engine& eng = sys_.cluster_.engine();
  obs::EpochProfiler* const ep = sys_.cluster_.observer().epoch;
  const OffloadOptions& o = sys_.opts_;
  const uint32_t grant = sys_.active_grant(rank_);

  uint64_t wire = len;
  if (o.codec.enabled()) {
    // The host always compresses outbound (shipping fewer bytes is the
    // point); the grant only decides who decompresses on restart.
    const SimDuration c = o.codec.compress_cost(len);
    if (c > 0) {
      co_await eng.delay(c);
      sys_.charge_host(c);
      if (ep != nullptr) ep->record(eng, Phase::kSerialize, c);
    }
    wire = std::max<uint64_t>(o.codec.wire_bytes(len), 1);
  }
  if (o.digest_checks && (grant & nvmf::kOffloadDigest) == 0) {
    // Host-side CRC over the raw stream before it ships.
    const auto c = static_cast<SimDuration>(o.host_crc_ns_per_byte *
                                            static_cast<double>(len));
    if (c > 0) {
      co_await eng.delay(c);
      sys_.charge_host(c);
      if (ep != nullptr) ep->record(eng, Phase::kSerialize, c);
    }
  }
  Status s = co_await inner_->write(fd, wire);
  if (!s.ok()) co_return s;
  OpenFile& of = open_[fd];
  of.raw_bytes += len;
  of.wire_bytes += wire;
  if (o.digest_checks && (grant & nvmf::kOffloadDigest) != 0) {
    // The target CRCs the landed (compressed) extent on its offload
    // cores, off the host's critical path; fsync awaits the verify.
    nvmf::NvmfTarget& tgt = sys_.target_of(rank_);
    const auto work = static_cast<SimDuration>(
        o.target_crc_ns_per_byte * static_cast<double>(wire));
    of.digest_done =
        std::max(of.digest_done, tgt.reserve_compute(eng.now(), work));
  }
  co_return s;
}

sim::Task<Status> OffloadClient::read(int fd, uint64_t len) {
  auto it = open_.find(fd);
  if (it == open_.end()) co_return co_await inner_->read(fd, len);
  OpenFile& of = it->second;
  if (of.image) {
    // Target serves the DRAM-staged image: command out, poll group,
    // image stream + payload back with the completion.
    co_return co_await target_round_trip(len);
  }
  const OffloadOptions& o = sys_.opts_;
  if (of.wire_left == 0) co_return co_await inner_->read(fd, len);
  // Compressed stream: fetch the extent's wire bytes, then inflate.
  sim::Engine& eng = sys_.cluster_.engine();
  uint64_t wire = o.codec.wire_bytes(len);
  if (len >= of.raw_left) wire = of.wire_left;  // final extent: drain
  wire = std::min(std::max<uint64_t>(wire, 1), of.wire_left);
  Status s = co_await inner_->read(fd, wire);
  if (!s.ok()) co_return s;
  of.raw_left -= std::min(of.raw_left, len);
  of.wire_left -= wire;
  const SimDuration work = o.codec.decompress_cost(len);
  if ((sys_.active_grant(rank_) & nvmf::kOffloadCompress) != 0) {
    // Target-side inflate: the raw surplus crosses the fabric too
    // (len - wire extra bytes target -> host), but the host burns no
    // CPU and the target pays the decode on its offload cores.
    nvmf::NvmfTarget& tgt = sys_.target_of(rank_);
    if (len > wire) {
      NVMECR_CO_RETURN_IF_ERROR(co_await sys_.cluster_.network().try_transfer(
          tgt.node(), sys_.client_node(rank_), len - wire));
    }
    sim::ProfileTagScope tag(eng, tgt.offload_tag());
    const SimTime done = tgt.reserve_compute(eng.now(), work);
    obs::EpochProfiler* const ep = sys_.cluster_.observer().epoch;
    if (ep != nullptr) {
      ep->record(eng, Phase::kTargetCompute, done - eng.now());
    }
    co_await eng.sleep_until(done);
  } else if (work > 0) {
    co_await eng.delay(work);
    sys_.charge_host(work);
  }
  co_return OkStatus();
}

sim::Task<Status> OffloadClient::fsync(int fd) {
  Status s = co_await inner_->fsync(fd);
  auto it = open_.find(fd);
  if (s.ok() && it != open_.end() && it->second.writing) {
    sim::Engine& eng = sys_.cluster_.engine();
    if (it->second.digest_done > eng.now()) {
      // Durability includes integrity: wait out the target's verify.
      obs::EpochProfiler* const ep = sys_.cluster_.observer().epoch;
      if (ep != nullptr) {
        ep->record(eng, Phase::kTargetCompute,
                   it->second.digest_done - eng.now());
      }
      co_await eng.sleep_until(it->second.digest_done);
    }
  }
  co_return s;
}

sim::Task<Status> OffloadClient::close(int fd) {
  auto it = open_.find(fd);
  if (it == open_.end()) co_return co_await inner_->close(fd);
  const OpenFile of = it->second;
  open_.erase(it);
  if (of.image) co_return OkStatus();  // fabricated fd, nothing inner
  Status s = co_await inner_->close(fd);
  if (!of.writing || !s.ok()) co_return s;

  sim::Engine& eng = sys_.cluster_.engine();
  OffloadSystem::RankSlot& slot = sys_.ranks_[rank_];
  OffloadSystem::StoredFile rec;
  rec.raw_bytes = of.raw_bytes;
  rec.wire_bytes = of.wire_bytes;
  rec.compressed = sys_.opts_.codec.enabled();
  slot.files[of.path] = rec;
  if (of.digest_done > eng.now()) {
    co_await eng.sleep_until(of.digest_done);
  }
  if ((sys_.active_grant(rank_) & nvmf::kOffloadCompact) != 0) {
    // Fold this delta into the materialized restart image in background
    // target time (the fold touches the delta plus the current image;
    // the first checkpoint pays the initial copy the same way).
    nvmf::NvmfTarget& tgt = sys_.target_of(rank_);
    RankOffloadState& st = slot.st;
    const uint64_t prev = st.image_bytes;
    const auto work = static_cast<SimDuration>(
        sys_.opts_.compact_ns_per_byte *
        static_cast<double>(of.raw_bytes + prev));
    st.image_ready =
        tgt.reserve_compute(std::max(eng.now(), st.image_ready), work);
    st.image_bytes = std::max(prev, of.raw_bytes);
    st.image_path = of.path;
  }
  co_return s;
}

sim::Task<Status> OffloadClient::unlink(const std::string& path) {
  Status s = co_await inner_->unlink(path);
  OffloadSystem::RankSlot& slot = sys_.ranks_[rank_];
  slot.files.erase(path);
  if (slot.st.image_path == path) {
    // The covered checkpoint is gone; the image dies with it.
    slot.st.image_path.clear();
    slot.st.image_bytes = 0;
  }
  co_return s;
}

}  // namespace nvmecr::offload
