#include "offload/codec.h"

#include <string>

namespace nvmecr::offload {

Codec codec_none() { return Codec{"none", 1.0, 0.0, 0.0}; }
Codec codec_lz4_class() { return Codec{"lz4-class", 2.0, 0.3, 0.15}; }
Codec codec_zstd_class() { return Codec{"zstd-class", 3.0, 1.2, 0.35}; }
Codec codec_slow_deep() { return Codec{"slow/deep", 4.0, 6.0, 0.8}; }

const std::vector<Codec>& codec_presets() {
  static const std::vector<Codec> kPresets = {
      codec_none(), codec_lz4_class(), codec_zstd_class(), codec_slow_deep()};
  return kPresets;
}

std::optional<Codec> find_codec(std::string_view name) {
  for (const Codec& c : codec_presets()) {
    if (name == c.name) return c;
  }
  return std::nullopt;
}

}  // namespace nvmecr::offload
