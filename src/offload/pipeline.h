// Target-side computation offload (DESIGN.md "Offload pipeline").
//
// NVMe-oF targets have idle cores next to the data: once a checkpoint
// extent has landed, the target can digest it, keep it compressed,
// fold incremental deltas into a materialized restart image, or XOR
// parity out of it — work the host would otherwise burn its own cores
// and fabric bytes on. OffloadSystem is the host-side half: it wraps
// any StorageSystem, negotiates the stage set with each rank's target
// at connect time (NvmfTarget::negotiate_offload), and routes each
// stage to the granted side with an explicit cost model:
//
//   digest    granted: target CRCs the landed (wire) extent on its
//             offload cores; fsync awaits the verify. Else the host
//             CRCs the raw stream before shipping.
//   compress  the host always compresses when a codec is configured
//             (the wire and device carry compressed bytes); the grant
//             decides who decompresses on restart — the target (raw
//             bytes cross the fabric back, zero host CPU) or the host
//             (compressed bytes cross, host pays the inverse cost).
//   compact   granted: after each incremental checkpoint closes, the
//             target folds the delta into a materialized full image in
//             background target time; restart reads that one image
//             instead of replaying the retained delta chain.
//   parity    negotiated here, executed by the redundancy engine
//             (Scheme::kXorTarget) — see redundancy/engine.cc.
//
// A dead target revokes the session's grant: every stage falls back to
// host-side compute, the fallback is counted and recorded in a
// degraded-manifest log, and the job keeps running (the resilience
// interaction the fault tests exercise).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/storage_api.h"
#include "nvmecr/cluster.h"
#include "offload/codec.h"

namespace nvmecr::offload {

using namespace nvmecr::literals;

struct OffloadOptions {
  /// OffloadCap bits to request from each rank's target. The grant is
  /// `stages & target advertised caps`; 0 disables negotiation entirely.
  uint32_t stages = nvmf::kOffloadAll;

  /// Checkpoint codec; codec_none() disables the compression stage.
  Codec codec = codec_none();

  /// Run an integrity digest over every checkpoint stream (host- or
  /// target-side per the digest grant).
  bool digest_checks = true;
  /// Single-core CRC64 cost per byte (matches the slice-by-8 software
  /// CRC the runtime models elsewhere ~20 GB/s).
  double host_crc_ns_per_byte = 0.05;
  double target_crc_ns_per_byte = 0.05;

  /// Delta-fold cost per byte touched (delta bytes + current image).
  double compact_ns_per_byte = 0.05;
  /// Bandwidth the target serves a materialized image at (DRAM-staged).
  uint64_t image_dram_bw = 8_GBps;
};

/// Where one rank's session stands with its target.
struct RankOffloadState {
  uint32_t granted = 0;  // OffloadCap bits in force (0 after fallback)
  std::string image_path;   // newest checkpoint the image covers
  uint64_t image_bytes = 0; // materialized full-state bytes
  SimTime image_ready = 0;  // fold completion on the target clock
};

class OffloadClient;

class OffloadSystem final : public baselines::StorageSystem {
 public:
  /// `inner` persists the data (must outlive this system); `job` maps
  /// each rank to its storage target for negotiation and compute
  /// placement — pass the same allocation `inner` was deployed on.
  OffloadSystem(nvmecr_rt::Cluster& cluster, baselines::StorageSystem& inner,
                const nvmecr_rt::JobAllocation& job, OffloadOptions opts);

  std::string name() const override { return inner_.name() + "+offload"; }
  sim::Task<StatusOr<std::unique_ptr<baselines::StorageClient>>> connect(
      int rank) override;

  uint64_t hardware_peak_write_bw() const override {
    return inner_.hardware_peak_write_bw();
  }
  uint64_t hardware_peak_read_bw() const override {
    return inner_.hardware_peak_read_bw();
  }
  std::vector<uint64_t> bytes_per_server() const override {
    return inner_.bytes_per_server();
  }
  uint64_t metadata_bytes() const override { return inner_.metadata_bytes(); }
  SimDuration kernel_time() const override { return inner_.kernel_time(); }
  uint64_t restart_image_bytes(int rank, const std::string& path) override;

  const OffloadOptions& options() const { return opts_; }
  nvmecr_rt::Cluster& cluster() { return cluster_; }

  /// Stage mask in force for `rank` (0 = everything host-side).
  uint32_t granted(uint32_t rank) const;
  /// Host CPU burned on stages that ran host-side (ns).
  uint64_t host_compute_ns() const { return host_compute_ns_; }
  /// Sessions that lost their grant to a dead target.
  uint64_t fallbacks() const { return fallbacks_; }
  /// Degraded manifest: one line per fallback, for operators and tests.
  const std::vector<std::string>& fallback_log() const {
    return fallback_log_;
  }

 private:
  friend class OffloadClient;

  struct StoredFile {
    uint64_t raw_bytes = 0;
    uint64_t wire_bytes = 0;
    bool compressed = false;
  };
  struct RankSlot {
    RankOffloadState st;
    std::map<std::string, StoredFile> files;
  };

  nvmf::NvmfTarget& target_of(uint32_t rank);
  fabric::NodeId client_node(uint32_t rank) const {
    return job_.rank_nodes[rank];
  }
  /// Grant still usable? Revokes it (once, logged) when the target died.
  uint32_t active_grant(uint32_t rank);
  void charge_host(SimDuration work) {
    host_compute_ns_ += static_cast<uint64_t>(work);
  }

  nvmecr_rt::Cluster& cluster_;
  baselines::StorageSystem& inner_;
  nvmecr_rt::JobAllocation job_;
  OffloadOptions opts_;
  std::vector<RankSlot> ranks_;
  uint64_t host_compute_ns_ = 0;
  uint64_t fallbacks_ = 0;
  std::vector<std::string> fallback_log_;
};

/// Per-rank client: forwards to the inner client, running the granted
/// stages around each op per the cost model above.
class OffloadClient final : public baselines::StorageClient {
 public:
  OffloadClient(OffloadSystem& sys, uint32_t rank,
                std::unique_ptr<baselines::StorageClient> inner);

  sim::Task<StatusOr<int>> create(const std::string& path) override;
  sim::Task<StatusOr<int>> open_read(const std::string& path) override;
  sim::Task<Status> write(int fd, uint64_t len) override;
  sim::Task<Status> read(int fd, uint64_t len) override;
  sim::Task<Status> fsync(int fd) override;
  sim::Task<Status> close(int fd) override;
  sim::Task<Status> unlink(const std::string& path) override;

 private:
  struct OpenFile {
    std::string path;
    bool writing = false;
    // Write side.
    uint64_t raw_bytes = 0;
    uint64_t wire_bytes = 0;
    SimTime digest_done = 0;  // target-side verify completion
    // Read side.
    bool image = false;        // fabricated fd serving the target image
    uint64_t image_bytes = 0;  // image fds: total raw bytes served
    uint64_t raw_left = 0;     // compressed reads: raw bytes remaining
    uint64_t wire_left = 0;    // compressed reads: wire bytes remaining
  };

  /// One capsule/poll-group/completion exchange with the rank's target
  /// plus `payload` response bytes (the image-serving data path).
  sim::Task<Status> target_round_trip(uint64_t payload);

  OffloadSystem& sys_;
  uint32_t rank_;
  std::unique_ptr<baselines::StorageClient> inner_;
  std::map<int, OpenFile> open_;
  int next_image_fd_ = 1 << 20;  // disjoint from inner fds
};

}  // namespace nvmecr::offload
