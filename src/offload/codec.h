// Checkpoint compression codec models, shared by the host-side
// compression path (bench/ext_compression), the offload pipeline
// (pipeline.h) and the benches that sweep the codec space.
//
// A codec is three numbers: the compression ratio and the single-core
// cost of each direction. The simulation never touches payload bytes,
// so "compressing" a chunk means paying the CPU cost and shrinking the
// byte count that crosses the wire and lands on the device;
// "decompressing" pays the (cheaper) inverse cost and re-inflates the
// stream for the application.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "common/units.h"

namespace nvmecr::offload {

struct Codec {
  const char* name = "none";
  /// Input/output size ratio; 1.0 disables the codec.
  double ratio = 1.0;
  /// Single-core CPU per *raw* input byte, compress direction.
  double compress_ns_per_byte = 0.0;
  /// Single-core CPU per *raw* output byte, decompress direction
  /// (decompression is typically several times faster than compression).
  double decompress_ns_per_byte = 0.0;

  bool enabled() const { return ratio > 1.0; }

  /// Bytes that cross the wire / land on the device for `raw` input
  /// bytes (at least 1 for any non-empty input).
  uint64_t wire_bytes(uint64_t raw) const {
    if (!enabled() || raw == 0) return raw;
    const auto w = static_cast<uint64_t>(static_cast<double>(raw) / ratio);
    return w > 0 ? w : 1;
  }
  SimDuration compress_cost(uint64_t raw) const {
    return static_cast<SimDuration>(compress_ns_per_byte *
                                    static_cast<double>(raw));
  }
  SimDuration decompress_cost(uint64_t raw) const {
    return static_cast<SimDuration>(decompress_ns_per_byte *
                                    static_cast<double>(raw));
  }
};

/// Calibrated codec classes (single-core, order-of-magnitude honest):
/// lz4-class ~3.3 GB/s compress / ~6.7 GB/s decompress at 2x;
/// zstd-class ~0.8 GB/s / ~2.9 GB/s at 3x; slow/deep ~0.17 GB/s /
/// ~1.25 GB/s at 4x (the CPU-bound crossover point).
Codec codec_none();
Codec codec_lz4_class();
Codec codec_zstd_class();
Codec codec_slow_deep();

/// All presets, none first (the sweep order the benches print).
const std::vector<Codec>& codec_presets();

/// Preset by name ("none", "lz4-class", "zstd-class", "slow/deep").
std::optional<Codec> find_codec(std::string_view name);

}  // namespace nvmecr::offload
