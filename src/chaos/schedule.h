// Seeded failure-schedule generation (DESIGN.md §17).
//
// A FailureSchedule is a deterministic, timed list of fault events
// compiled from parametric per-failure-domain models — the chaos
// campaign's answer to hand-written fault scenarios. Every stochastic
// choice flows from ScheduleParams::seed through per-domain substreams
// (node i's arrival process is independent of how many events node i-1
// drew), so a schedule is reproducible from {seed, params} alone, and an
// event subset is addressable by stable event ids — what the shrinker
// needs to print a minimal {seed, event-subset} reproducer.
//
// Failure processes (EasyCrash's argument: resilience claims need
// realistic failure *processes*, not single injected faults):
//   * per-domain MTBF draws, exponential (memoryless) or Weibull with
//     shape < 1 (infant-mortality burstiness);
//   * transient vs. permanent outcomes (transient outages draw a repair
//     time; a permanent loss ends that domain's process);
//   * correlated rack bursts — a target crash takes its rack siblings
//     down in a short window (shared PDU / ToR failure);
//   * cascades — a failure triggers a follow-on on another domain
//     shortly after (load-shift-induced secondary failure);
//   * network partitions at rack granularity, link flaps per node,
//     straggler windows (GC pause / thermal throttle: slow, not dead);
//   * at most one process-level job kill per schedule (epoch +
//     kill point), exercising the kill-and-restart path under storage
//     faults.
//
// Schedules serialize to a line-oriented text format so a failing
// campaign run can be dumped to a file and replayed byte-identically by
// `fault_storm --schedule` or `chaos_campaign --replay`.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "workloads/app_driver.h"

namespace nvmecr::chaos {

enum class FaultKind : uint8_t {
  kTargetCrash,  // NVMe-oF target daemon crash (victim = storage index)
  kSsdCrash,     // device crash, content survives (victim = storage index)
  kLinkDown,     // fabric link down window (victim = storage index)
  kStraggler,    // SSD service-time inflation (victim = storage index)
  kPartition,    // rack-level network partition (victim = rack index)
  kJobKill,      // process kill (victim = epoch; kill_point set)
};

const char* fault_kind_name(FaultKind k);

struct FailureEvent {
  uint32_t id = 0;     // stable index within the schedule (shrinker key)
  FaultKind kind = FaultKind::kTargetCrash;
  uint32_t victim = 0;
  SimTime at = 0;
  SimTime until = 0;   // 0 = permanent (never recovers)
  double factor = 1.0; // straggler service-time inflation
  workloads::KillPoint kill_point = workloads::KillPoint::kNone;

  bool permanent() const { return until == 0; }
};

enum class MtbfDist : uint8_t { kExponential, kWeibull };

/// Failure process of one fault family across its domains (one arrival
/// stream per storage node / rack). mtbf == 0 disables the family.
struct DomainModel {
  MtbfDist dist = MtbfDist::kExponential;
  double mtbf = 0;            // mean time between failures, ns
  double weibull_shape = 0.7; // < 1 clusters failures (infant mortality)
  double transient_prob = 1.0;
  double repair_mean = 5.0 * kMillisecond;  // mean transient outage, ns
};

struct ScheduleParams {
  uint64_t seed = 1;
  SimTime horizon = 100 * kMillisecond;  // events drawn in [0, horizon)
  uint32_t storage_nodes = 8;
  uint32_t racks = 4;
  uint32_t epochs = 5;  // job-kill epoch domain

  DomainModel target;     // per-node target-daemon crashes
  DomainModel ssd;        // per-node device crashes
  DomainModel link;       // per-node link flaps (always transient)
  DomainModel straggler;  // per-node straggler windows
  DomainModel partition;  // per-rack partitions (always transient)

  /// A target/SSD crash drags the victim's rack siblings down with it.
  double rack_burst_prob = 0.0;
  /// A crash triggers a follow-on crash on the next domain shortly after.
  double cascade_prob = 0.0;
  /// Probability the schedule contains one process kill.
  double job_kill_prob = 0.0;

  double straggler_factor_min = 2.0;
  double straggler_factor_max = 8.0;

  /// Densest schedules are truncated to this many events (time order).
  uint32_t max_events = 64;
};

struct FailureSchedule {
  ScheduleParams params;
  std::vector<FailureEvent> events;  // sorted by (at, kind, victim), ids 0..n-1
};

/// Compiles the parametric models into a timed event list. Deterministic:
/// same params (incl. seed) -> byte-identical schedule.
FailureSchedule generate_schedule(const ScheduleParams& params);

/// Line-oriented text form, parseable by parse_schedule and the
/// `--schedule` flags of fault_storm / chaos_campaign.
std::string serialize_schedule(const FailureSchedule& sched);
StatusOr<FailureSchedule> parse_schedule(const std::string& text);

/// Mean time between *any* two failures of the schedule's crash families
/// (target + ssd + per-rack partitions), the M that feeds Young/Daly.
/// Falls back to the horizon when every family is disabled.
double schedule_mtbf(const ScheduleParams& params);

}  // namespace nvmecr::chaos
