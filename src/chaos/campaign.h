// Chaos campaign runner (DESIGN.md §17): sweeps many seeded failure
// schedules against an AppDriver workload on the full resilient stack
// (retry wrapper -> partner redundancy -> mid-checkpoint failover) and
// enforces the survival trichotomy on every run:
//
//   1. the run COMPLETES and a restart is verify_restart digest-identical
//      to the golden run, or
//   2. it FAILS WITH A TYPED ERROR (an explicit Status, e.g. the fast
//      tier is gone for good), but
//   3. it never HANGS (deadline-based deadlock detector on every engine
//      phase) and never CORRUPTS (post-run microfs fsck over every live
//      runtime instance and every failover spare).
//
// Outcomes 1 and 2 are acceptable; a hang, corruption, or digest
// divergence is a violation. On the first violation the runner shrinks
// the schedule ddmin-style to a minimal reproducing event subset and
// reports {seed, event-subset} — the crash_explore reproducer contract.
#pragma once

#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "chaos/inject.h"
#include "chaos/schedule.h"

namespace nvmecr::chaos {

enum class Verdict : uint8_t {
  kCompleted,     // ran (or restarted) to completion, digest-identical
  kTypedFailure,  // failed with an explicit typed Status — acceptable
  kHang,          // VIOLATION: deadline cutoff with tasks pending
  kCorruption,    // VIOLATION: fsck found invariant issues
  kDivergence,    // VIOLATION: completed but digests/residuals differ
  kInfra,         // VIOLATION: harness could not even set up the run
};

const char* verdict_name(Verdict v);

// Unified process exit codes shared by chaos_campaign, fault_storm and
// restart_verify so CI can tell the outcome classes apart.
inline constexpr int kExitOk = 0;
inline constexpr int kExitInfra = 1;
inline constexpr int kExitUsage = 2;
inline constexpr int kExitTypedFailure = 3;
inline constexpr int kExitHang = 4;
inline constexpr int kExitDivergence = 5;
inline constexpr int kExitCorruption = 6;

int verdict_exit_code(Verdict v);

struct CampaignConfig {
  std::string app = "CoMD";
  uint32_t ranks = 4;
  uint32_t epochs = 5;
  uint64_t workload_seed = 0x5EED;
  /// Per-phase hang cutoff (sim ns); must exceed the daemon horizon
  /// (schedule horizon + heal_margin) or daemons read as hung ranks.
  SimDuration deadline = 1'000 * kMillisecond;
  /// Heartbeat/healer daemons run until schedule horizon + this margin.
  SimDuration heal_margin = 50 * kMillisecond;
  /// Schedule model shared by every run; run i draws seed base.seed + i.
  ScheduleParams base;

  CampaignConfig();  // fills `base` with the default chaos mix
};

struct RunOutcome {
  Verdict verdict = Verdict::kInfra;
  uint64_t schedule_seed = 0;
  Status status;  // detail for non-completed verdicts
  InjectionStats faults;
  uint32_t restored_epoch = 0;
  bool from_initial = false;
  SimDuration run_time = 0;  // sim ns consumed by the whole trichotomy

  bool violation() const {
    return verdict != Verdict::kCompleted && verdict != Verdict::kTypedFailure;
  }
};

struct CampaignResult {
  uint32_t runs = 0;
  uint32_t completed = 0;
  uint32_t typed_failures = 0;
  uint32_t hangs = 0;
  uint32_t corruptions = 0;
  uint32_t divergences = 0;
  uint32_t infra = 0;
  /// First violating run (the campaign stops there), with its schedule
  /// and the shrunk minimal event subset reproducing the violation.
  std::optional<RunOutcome> first_violation;
  FailureSchedule violating_schedule;
  std::vector<uint32_t> minimal_subset;

  bool clean() const { return !first_violation.has_value(); }
  int exit_code() const {
    return clean() ? kExitOk : verdict_exit_code(first_violation->verdict);
  }
};

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignConfig cfg);

  /// Schedule parameters for campaign run `index` (seed = base.seed + i).
  ScheduleParams schedule_params(uint32_t index) const;

  /// One schedule through the full trichotomy check, on a fresh
  /// simulation stack. `subset` restricts injection to those event ids
  /// (the shrinker's lever).
  RunOutcome run_schedule(const FailureSchedule& sched,
                          const std::vector<uint32_t>* subset = nullptr);

  /// Sweeps `schedules` generated schedules; stops at the first
  /// violation and (when `shrink`) ddmin-shrinks it. `csv` (optional)
  /// gets one line per run; `verbose` prints one line per run.
  CampaignResult run_campaign(uint32_t schedules, bool shrink = true,
                              std::FILE* csv = nullptr, bool verbose = false);

  /// The uninterrupted golden run (computed once; reused for every
  /// verify_restart — the solver state is sim-time-independent).
  const workloads::AppRunResult& golden();

 private:
  CampaignConfig cfg_;
  std::optional<workloads::AppRunResult> golden_;
};

/// Zeller/Hildebrandt ddmin over event ids: returns a locally minimal
/// subset for which `fails` still returns true. `fails(ids)` must be
/// true on entry; `fails` is invoked O(n^2) times worst case.
std::vector<uint32_t> ddmin(
    std::vector<uint32_t> ids,
    const std::function<bool(const std::vector<uint32_t>&)>& fails);

/// One-line reproducer (crash_explore parity): how to re-run exactly
/// this violation from the command line.
std::string reproducer_line(const FailureSchedule& sched,
                            const std::vector<uint32_t>& subset);

}  // namespace nvmecr::chaos
