// Checkpoint-interval optimization under failure schedules (the
// ROADMAP's open sub-item; DESIGN.md §17).
//
// young_interval / daly_interval compute the analytic optimum from the
// failure process MTBF M and the per-epoch checkpoint overhead δ;
// interval_sweep validates them *empirically*: it calibrates δ from a
// clean run on the real storage stack, then for each interval on a
// geometric grid around the Daly point drives kill-and-restart cycles
// through AppDriver with failures drawn from a seeded exponential
// stream, measures efficiency = useful-compute / total-sim-time, and
// reports whether the empirical argmax lands within one grid step of
// the computed optimum — the acceptance gate of bench/ext_chaos.
#pragma once

#include <string>
#include <vector>

#include "common/units.h"

namespace nvmecr::chaos {

/// Young's first-order optimum: W = sqrt(2 δ M).
double young_interval(double mtbf, double ckpt_cost);

/// Daly's higher-order estimate: for δ < 2M,
///   W = sqrt(2 δ M) [1 + (1/3)√(δ/2M) + (1/9)(δ/2M)] − δ,
/// clamped to M when δ ≥ 2M (checkpointing costs more than it saves).
double daly_interval(double mtbf, double ckpt_cost);

struct SweepParams {
  std::string app = "CoMD";
  uint32_t ranks = 4;
  uint64_t seed = 0x5EED;
  /// Failure process MTBF (exponential interarrivals), ns.
  double mtbf = 25.0 * kMillisecond;
  /// Total useful compute per experiment, ns (epochs = work / interval).
  double work = 96.0 * kMillisecond;
  /// Geometric grid: `grid` points, ratio `grid_step`, centered on Daly.
  uint32_t grid = 7;
  double grid_step = 1.4142135623730951;  // sqrt(2)
  /// Independent failure streams averaged per grid point (common random
  /// numbers: rep r uses the same stream at every interval).
  uint32_t reps = 4;
  /// Kill/restart cycles bound per rep (runaway guard).
  uint32_t max_cycles = 64;
};

struct SweepPoint {
  double interval = 0;    // compute per epoch, ns
  uint32_t epochs = 0;
  double efficiency = 0;  // useful work / total sim time, rep average
  uint32_t failures = 0;  // kill/restart cycles summed over reps
};

struct SweepResult {
  double delta = 0;  // calibrated per-epoch checkpoint overhead, ns
  double mtbf = 0;
  double young = 0;
  double daly = 0;
  int computed_index = -1;  // grid point nearest the Daly interval
  int best_index = -1;      // empirical efficiency argmax
  std::vector<SweepPoint> points;

  bool within_one_step() const {
    return best_index >= 0 && computed_index >= 0 &&
           (best_index > computed_index ? best_index - computed_index
                                        : computed_index - best_index) <= 1;
  }
};

SweepResult interval_sweep(const SweepParams& params);

}  // namespace nvmecr::chaos
