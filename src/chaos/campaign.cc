#include "chaos/campaign.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "nvmecr/runtime.h"
#include "redundancy/engine.h"
#include "resilience/failover.h"
#include "resilience/health.h"
#include "resilience/retry.h"
#include "workloads/apps.h"

namespace nvmecr::chaos {

using namespace nvmecr::literals;
using workloads::AppDriver;
using workloads::AppRunParams;
using workloads::AppRunResult;
using workloads::AppSpec;
using workloads::KillSpec;
using workloads::RestorePlan;

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kCompleted: return "completed";
    case Verdict::kTypedFailure: return "typed-failure";
    case Verdict::kHang: return "hang";
    case Verdict::kCorruption: return "corruption";
    case Verdict::kDivergence: return "divergence";
    case Verdict::kInfra: return "infra";
  }
  return "?";
}

int verdict_exit_code(Verdict v) {
  switch (v) {
    case Verdict::kCompleted: return kExitOk;
    case Verdict::kTypedFailure: return kExitTypedFailure;
    case Verdict::kHang: return kExitHang;
    case Verdict::kCorruption: return kExitCorruption;
    case Verdict::kDivergence: return kExitDivergence;
    case Verdict::kInfra: return kExitInfra;
  }
  return kExitInfra;
}

CampaignConfig::CampaignConfig() {
  // Default chaos mix, tuned so a 100 ms horizon sees a couple of crash-
  // class events per schedule plus background noise (flaps, stragglers),
  // with occasional quiet schedules and occasional pile-ups.
  base.seed = 1;
  base.horizon = 100 * kMillisecond;
  base.storage_nodes = 8;
  base.racks = 4;
  base.epochs = epochs;
  base.target = {MtbfDist::kExponential, 400.0 * kMillisecond, 0.7, 0.85,
                 15.0 * kMillisecond};
  base.ssd = {MtbfDist::kWeibull, 900.0 * kMillisecond, 0.7, 0.9,
              12.0 * kMillisecond};
  base.link = {MtbfDist::kExponential, 700.0 * kMillisecond, 0.7, 1.0,
               2.0 * kMillisecond};
  base.straggler = {MtbfDist::kExponential, 400.0 * kMillisecond, 0.7, 1.0,
                    5.0 * kMillisecond};
  base.partition = {MtbfDist::kExponential, 2'000.0 * kMillisecond, 0.7, 1.0,
                    4.0 * kMillisecond};
  base.rack_burst_prob = 0.10;
  base.cascade_prob = 0.15;
  base.job_kill_prob = 0.6;
}

CampaignRunner::CampaignRunner(CampaignConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.base.epochs = cfg_.epochs;
}

ScheduleParams CampaignRunner::schedule_params(uint32_t index) const {
  ScheduleParams p = cfg_.base;
  p.seed = cfg_.base.seed + index;
  return p;
}

namespace {

AppRunParams campaign_params(const AppSpec& spec, const CampaignConfig& cfg) {
  AppRunParams p;
  p.io = workloads::io_params_for(spec, cfg.ranks);
  // Shrunk streams (restart_verify's sizing): the verified solver state
  // is independent of the simulated stream bytes.
  p.io.procs_per_node = 1;
  p.io.atoms_per_rank = 2048;
  p.io.bytes_per_atom = 512;  // 1 MiB per rank per checkpoint
  p.io.io_chunk = 1_MiB;
  p.io.checkpoints = cfg.epochs;
  p.io.compute_per_period = 2 * kMillisecond;
  p.io.keep_last = cfg.epochs + 1;  // keep everything: probe freely
  p.seed = cfg.workload_seed;
  p.pfs_interval = 0;
  p.deadline = cfg.deadline;
  return p;
}

/// The full resilient simulation stack of one campaign run, mirroring
/// examples/fault_storm: retry wrapper -> NVMe-CR runtime -> partner
/// redundancy -> mid-checkpoint failover.
struct ChaosStack {
  nvmecr_rt::Cluster cluster;
  nvmecr_rt::Scheduler sched;
  std::optional<nvmecr_rt::JobAllocation> job;
  std::optional<resilience::HealthMonitor> monitor;
  std::optional<nvmecr_rt::NvmecrSystem> primary;
  std::optional<redundancy::RedundantDeployment> dep;
  std::optional<resilience::ResilientSystem> sys;
  Status setup_error;

  static nvmecr_rt::ClusterSpec make_spec(const ScheduleParams& sp,
                                          uint32_t ranks) {
    nvmecr_rt::ClusterSpec s;
    s.compute_nodes = ranks;
    s.storage_nodes = sp.storage_nodes;
    s.storage_racks = sp.racks;
    return s;
  }

  ChaosStack(const CampaignConfig& cfg, const ScheduleParams& sp,
             uint64_t retry_seed)
      : cluster(make_spec(sp, cfg.ranks)), sched(cluster) {
    auto j = sched.allocate(cfg.ranks, /*procs_per_node=*/1, 64_MiB,
                            sp.storage_nodes);
    if (!j.ok()) {
      setup_error = j.status();
      return;
    }
    job = *j;
    monitor.emplace(cluster.engine(), cluster.topology());
    nvmecr_rt::RuntimeConfig config;
    config.device_wrapper = resilience::make_retry_wrapper(
        cluster.engine(), *monitor, resilience::RetryPolicy{}, retry_seed);
    primary.emplace(cluster, *job, config);
    redundancy::RedundancyOptions ropts;
    ropts.scheme = redundancy::Scheme::kPartner;
    auto d = redundancy::deploy_redundancy(cluster, sched, *primary, *job,
                                           ropts, config);
    if (!d.ok()) {
      setup_error = d.status();
      return;
    }
    dep.emplace(std::move(*d));
    sys.emplace(cluster, sched, *dep->system, *monitor, *job, config);
  }

  /// Arms the management-plane daemons, bounded by `horizon` (must stay
  /// below the run deadline; see AppRunParams::deadline).
  void spawn_daemons(SimTime horizon) {
    cluster.engine().spawn(monitor->heartbeat(
        [this](fabric::NodeId n, SimTime t) {
          const uint32_t idx = cluster.storage_ssd_index(n);
          return cluster.target(idx).alive(t) &&
                 !cluster.storage_ssd(idx).crashed_at(t);
        },
        horizon));
    cluster.engine().spawn(sys->healer(horizon));
  }

  /// Post-run corruption gate: fsck every live runtime instance of the
  /// primary and store deployments plus every provisioned failover
  /// spare. Devices that are (still) unreachable fail the scan with a
  /// retryable status — reported as such, not as corruption.
  sim::Task<StatusOr<std::vector<std::string>>> fsck_everything() {
    std::vector<std::string> issues;
    auto merge = [&issues](std::vector<std::string> got, const char* tag) {
      for (std::string& i : got) issues.push_back(std::string(tag) + i);
    };
    auto prim = co_await primary->fsck_all();
    if (!prim.ok()) {
      co_return StatusOr<std::vector<std::string>>(prim.status());
    }
    merge(std::move(*prim), "primary ");
    auto spares = co_await sys->fsck_spares();
    if (!spares.ok()) {
      co_return StatusOr<std::vector<std::string>>(spares.status());
    }
    merge(std::move(*spares), "");
    co_return issues;
  }
};

/// try_run_task has no Task<void> overload; give quiesce a result.
sim::Task<int> quiesce_wrap(redundancy::RedundantSystem& s) {
  co_await s.quiesce();
  co_return 0;
}

}  // namespace

const AppRunResult& CampaignRunner::golden() {
  if (!golden_.has_value()) {
    const AppSpec* spec = workloads::find_app(cfg_.app.c_str());
    NVMECR_CHECK(spec != nullptr);
    // Clean minimal stack: the golden digests/residuals depend only on
    // (spec, seed, elems, epochs), not on the storage system under it.
    nvmecr_rt::ClusterSpec cspec;
    cspec.compute_nodes = cfg_.ranks;
    cspec.storage_nodes = cfg_.base.storage_nodes;
    cspec.storage_racks = cfg_.base.racks;
    nvmecr_rt::Cluster cluster(cspec);
    nvmecr_rt::Scheduler sched(cluster);
    auto job = sched.allocate(cfg_.ranks, 1, 64_MiB, cspec.storage_nodes);
    NVMECR_CHECK(job.ok());
    nvmecr_rt::NvmecrSystem fast(cluster, *job, nvmecr_rt::RuntimeConfig{});
    AppDriver driver(cluster, fast, *spec, campaign_params(*spec, cfg_));
    auto r = driver.run();
    NVMECR_CHECK(r.ok());
    golden_ = std::move(*r);
  }
  return *golden_;
}

RunOutcome CampaignRunner::run_schedule(const FailureSchedule& sched,
                                        const std::vector<uint32_t>* subset) {
  RunOutcome out;
  out.schedule_seed = sched.params.seed;
  const AppSpec* spec = workloads::find_app(cfg_.app.c_str());
  if (spec == nullptr) {
    out.status = InvalidArgumentError("unknown app " + cfg_.app);
    return out;  // kInfra
  }
  const AppRunResult& gold = golden();

  ChaosStack stack(cfg_, sched.params, /*retry_seed=*/sched.params.seed);
  if (!stack.setup_error.ok()) {
    out.status = stack.setup_error;
    return out;  // kInfra
  }
  out.faults = apply_schedule(stack.cluster, sched, subset);
  const SimTime horizon = sched.params.horizon + cfg_.heal_margin;
  stack.spawn_daemons(horizon);

  AppDriver driver(stack.cluster, *stack.sys, *spec,
                   campaign_params(*spec, cfg_));
  const KillSpec kill = out.faults.kill.value_or(KillSpec{});
  sim::Engine& eng = stack.cluster.engine();
  const SimTime t0 = eng.now();
  auto finish = [&](Verdict v, Status st) {
    out.verdict = v;
    out.status = std::move(st);
    out.run_time = eng.now() - t0;
    return out;
  };

  auto classify = [](const Status& s) {
    return s.code() == ErrorCode::kDeadlineExceeded ? Verdict::kHang
                                                    : Verdict::kTypedFailure;
  };

  // Corruption gate, shared by every non-hang path. A hang poisons the
  // engine (stuck coroutine frames), so only non-hang paths may run it.
  auto fsck_gate = [&]() -> std::optional<RunOutcome> {
    auto quiesced = eng.try_run_task(quiesce_wrap(*stack.dep->system));
    if (!quiesced.has_value()) {
      return finish(Verdict::kHang, DeadlineExceededError("quiesce hung"));
    }
    auto report = eng.try_run_task(stack.fsck_everything());
    if (!report.has_value()) {
      return finish(Verdict::kHang, DeadlineExceededError("fsck hung"));
    }
    if (!report->ok()) {
      // Unreachable instances can't be scanned; their on-device content
      // is intact (crash windows don't mutate the payload store). Only
      // an fsck that RAN and found issues is corruption.
      if (is_retryable(report->status().code())) return std::nullopt;
      return finish(Verdict::kCorruption, report->status());
    }
    if (!(*report)->empty()) {
      std::string msg = "fsck issues:";
      for (const std::string& i : **report) msg += " [" + i + "]";
      return finish(Verdict::kCorruption, CorruptionError(msg));
    }
    return std::nullopt;
  };

  auto ran = driver.run(kill);
  if (!ran.ok()) {
    const Verdict v = classify(ran.status());
    if (v == Verdict::kHang) return finish(v, ran.status());
    if (auto bad = fsck_gate()) return *bad;
    return finish(v, ran.status());
  }

  // Restart through the failover-aware chain and verify against golden —
  // run() either completed or was killed by the schedule's job kill;
  // both must restart digest-identical.
  std::vector<std::unique_ptr<baselines::StorageClient>> views;
  for (uint32_t r = 0; r < cfg_.ranks; ++r) {
    views.push_back(stack.sys->failover_view(r));
  }
  RestorePlan plan;
  plan.chain = [&views, &driver](uint32_t rank) {
    return std::vector<nvmecr_rt::RestoreSource>{
        {views[rank].get(), false, "failover"},
        {driver.session(rank), false, "fast"}};
  };
  auto restored = driver.restart(plan);
  if (!restored.ok()) {
    const Verdict v = classify(restored.status());
    if (v == Verdict::kHang) return finish(v, restored.status());
    if (auto bad = fsck_gate()) return *bad;
    return finish(v, restored.status());
  }
  out.restored_epoch = restored->restored_epoch;
  out.from_initial = restored->from_initial;

  if (auto bad = fsck_gate()) return *bad;

  Status verdict = workloads::verify_restart(gold, *restored);
  if (!verdict.ok()) return finish(Verdict::kDivergence, verdict);
  return finish(Verdict::kCompleted, OkStatus());
}

CampaignResult CampaignRunner::run_campaign(uint32_t schedules, bool shrink,
                                            std::FILE* csv, bool verbose) {
  CampaignResult res;
  if (csv != nullptr) {
    std::fprintf(csv,
                 "run,seed,verdict,events,applied,kills,restored_epoch,"
                 "from_initial,sim_ns,detail\n");
  }
  for (uint32_t i = 0; i < schedules; ++i) {
    FailureSchedule sched = generate_schedule(schedule_params(i));
    RunOutcome out = run_schedule(sched);
    ++res.runs;
    switch (out.verdict) {
      case Verdict::kCompleted: ++res.completed; break;
      case Verdict::kTypedFailure: ++res.typed_failures; break;
      case Verdict::kHang: ++res.hangs; break;
      case Verdict::kCorruption: ++res.corruptions; break;
      case Verdict::kDivergence: ++res.divergences; break;
      case Verdict::kInfra: ++res.infra; break;
    }
    if (csv != nullptr) {
      std::fprintf(csv, "%u,0x%llx,%s,%zu,%u,%u,%d,%d,%lld,\"%s\"\n", i,
                   static_cast<unsigned long long>(out.schedule_seed),
                   verdict_name(out.verdict), sched.events.size(),
                   out.faults.applied, out.faults.kill.has_value() ? 1 : 0,
                   static_cast<int>(out.restored_epoch),
                   out.from_initial ? 1 : 0,
                   static_cast<long long>(out.run_time),
                   out.status.ok() ? "" : out.status.to_string().c_str());
    }
    if (verbose) {
      std::printf("run %4u seed 0x%llx: %-13s (%u faults%s)%s%s\n", i,
                  static_cast<unsigned long long>(out.schedule_seed),
                  verdict_name(out.verdict), out.faults.applied,
                  out.faults.kill.has_value() ? " + job kill" : "",
                  out.status.ok() ? "" : " — ",
                  out.status.ok() ? "" : out.status.to_string().c_str());
    }
    if (out.violation()) {
      res.first_violation = out;
      res.violating_schedule = sched;
      if (shrink) {
        const Verdict target = out.verdict;
        std::vector<uint32_t> ids;
        for (const FailureEvent& e : sched.events) ids.push_back(e.id);
        res.minimal_subset = ddmin(ids, [&](const std::vector<uint32_t>& s) {
          return run_schedule(sched, &s).verdict == target;
        });
      }
      break;  // the campaign is a gate: stop at the first violation
    }
  }
  return res;
}

std::vector<uint32_t> ddmin(
    std::vector<uint32_t> ids,
    const std::function<bool(const std::vector<uint32_t>&)>& fails) {
  // Does the violation even need events? (An empty-subset failure means
  // the harness itself is broken — still the minimal answer.)
  if (fails({})) return {};
  size_t n = 2;
  while (ids.size() >= 2) {
    const size_t chunk = (ids.size() + n - 1) / n;
    bool reduced = false;
    // Try each chunk alone.
    for (size_t i = 0; i < n && !reduced; ++i) {
      const size_t lo = std::min(i * chunk, ids.size());
      const size_t hi = std::min(lo + chunk, ids.size());
      if (lo >= hi || hi - lo == ids.size()) continue;
      std::vector<uint32_t> sub(ids.begin() + static_cast<long>(lo),
                                ids.begin() + static_cast<long>(hi));
      if (fails(sub)) {
        ids = std::move(sub);
        n = 2;
        reduced = true;
      }
    }
    if (reduced) continue;
    // Try each complement.
    for (size_t i = 0; i < n && !reduced; ++i) {
      const size_t lo = std::min(i * chunk, ids.size());
      const size_t hi = std::min(lo + chunk, ids.size());
      if (lo >= hi || hi - lo == 0) continue;
      std::vector<uint32_t> rest;
      rest.insert(rest.end(), ids.begin(), ids.begin() + static_cast<long>(lo));
      rest.insert(rest.end(), ids.begin() + static_cast<long>(hi), ids.end());
      if (rest.size() < ids.size() && !rest.empty() && fails(rest)) {
        ids = std::move(rest);
        n = std::max<size_t>(n - 1, 2);
        reduced = true;
      }
    }
    if (reduced) continue;
    if (n >= ids.size()) break;
    n = std::min(ids.size(), n * 2);
  }
  return ids;
}

std::string reproducer_line(const FailureSchedule& sched,
                            const std::vector<uint32_t>& subset) {
  char seed[32];
  std::snprintf(seed, sizeof(seed), "0x%llx",
                static_cast<unsigned long long>(sched.params.seed));
  std::string line = std::string("chaos_campaign --replay-seed ") + seed;
  if (!subset.empty() && subset.size() < sched.events.size()) {
    line += " --events ";
    for (size_t i = 0; i < subset.size(); ++i) {
      if (i > 0) line += ",";
      line += std::to_string(subset[i]);
    }
  }
  return line;
}

}  // namespace nvmecr::chaos
