#include "chaos/inject.h"

#include <algorithm>

#include "fabric/network.h"

namespace nvmecr::chaos {

InjectionStats apply_schedule(nvmecr_rt::Cluster& cluster,
                              const FailureSchedule& sched,
                              const std::vector<uint32_t>* subset) {
  InjectionStats stats;
  const uint32_t nodes =
      static_cast<uint32_t>(cluster.storage_nodes().size());
  const uint32_t racks = std::max(1u, cluster.topology().rack_count());
  auto in_subset = [subset](uint32_t id) {
    return subset == nullptr ||
           std::find(subset->begin(), subset->end(), id) != subset->end();
  };
  for (const FailureEvent& e : sched.events) {
    if (!in_subset(e.id)) continue;
    ++stats.applied;
    switch (e.kind) {
      case FaultKind::kTargetCrash: {
        const uint32_t idx = e.victim % nodes;
        cluster.target(idx).schedule_crash(e.at, e.until);
        ++stats.target_crashes;
        break;
      }
      case FaultKind::kSsdCrash: {
        const uint32_t idx = e.victim % nodes;
        cluster.storage_ssd(idx).schedule_crash(e.at, e.until);
        ++stats.ssd_crashes;
        break;
      }
      case FaultKind::kLinkDown: {
        const fabric::NodeId node =
            cluster.storage_nodes()[e.victim % nodes];
        cluster.network().add_link_down(
            node, e.at, e.until == 0 ? fabric::Network::kForever : e.until);
        ++stats.link_downs;
        break;
      }
      case FaultKind::kStraggler: {
        const uint32_t idx = e.victim % nodes;
        cluster.storage_ssd(idx).set_straggler(e.factor, e.at, e.until);
        ++stats.stragglers;
        break;
      }
      case FaultKind::kPartition: {
        // Rack-granular partition: every storage node in the rack loses
        // fabric connectivity for the window.
        const uint32_t rack = e.victim % racks;
        std::vector<fabric::NodeId> members;
        for (fabric::NodeId n : cluster.storage_nodes()) {
          if (cluster.topology().rack_of(n) == rack) members.push_back(n);
        }
        cluster.network().partition(
            members, e.at,
            e.until == 0 ? fabric::Network::kForever : e.until);
        ++stats.partitions;
        break;
      }
      case FaultKind::kJobKill: {
        if (!stats.kill.has_value()) {
          workloads::KillSpec k;
          k.epoch = e.victim;
          k.point = e.kill_point;
          stats.kill = k;
        }
        break;
      }
    }
  }
  return stats;
}

}  // namespace nvmecr::chaos
