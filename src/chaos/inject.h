// Schedule injection: arms a FailureSchedule's events on a live Cluster
// through the existing fault hooks (NvmeSsd::schedule_crash /
// set_straggler, NvmfTarget::schedule_crash, fabric link-down windows).
// Everything is pre-armed before the run starts — the hooks are
// time-window based, so no injector daemon runs alongside the workload
// and determinism is preserved by construction.
#pragma once

#include <optional>
#include <vector>

#include "chaos/schedule.h"
#include "nvmecr/cluster.h"

namespace nvmecr::chaos {

struct InjectionStats {
  uint32_t target_crashes = 0;
  uint32_t ssd_crashes = 0;
  uint32_t link_downs = 0;
  uint32_t stragglers = 0;
  uint32_t partitions = 0;
  uint32_t applied = 0;
  /// First kJobKill event in the applied subset (at most one is armed).
  std::optional<workloads::KillSpec> kill;
};

/// Arms `sched`'s events on `cluster`. When `subset` is non-null only
/// event ids in it are armed (the shrinker's lever); victims wrap modulo
/// the cluster's actual storage-node / rack counts.
InjectionStats apply_schedule(nvmecr_rt::Cluster& cluster,
                              const FailureSchedule& sched,
                              const std::vector<uint32_t>* subset = nullptr);

}  // namespace nvmecr::chaos
