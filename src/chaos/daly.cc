#include "chaos/daly.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/rng.h"
#include "nvmecr/runtime.h"
#include "workloads/app_driver.h"
#include "workloads/apps.h"

namespace nvmecr::chaos {

using namespace nvmecr::literals;
using workloads::AppDriver;
using workloads::AppRunParams;
using workloads::AppSpec;
using workloads::KillPoint;
using workloads::KillSpec;

double young_interval(double mtbf, double ckpt_cost) {
  if (mtbf <= 0 || ckpt_cost <= 0) return mtbf;
  return std::sqrt(2.0 * ckpt_cost * mtbf);
}

double daly_interval(double mtbf, double ckpt_cost) {
  if (mtbf <= 0 || ckpt_cost <= 0) return mtbf;
  if (ckpt_cost >= 2.0 * mtbf) return mtbf;
  const double x = std::sqrt(ckpt_cost / (2.0 * mtbf));
  return std::sqrt(2.0 * ckpt_cost * mtbf) *
             (1.0 + x / 3.0 + x * x / 9.0) -
         ckpt_cost;
}

namespace {

/// Minimal clean stack for one experiment: failures in the Daly model
/// are process losses, so the storage side stays healthy and the "kill"
/// is the driver's own job-kill path.
struct SweepStack {
  nvmecr_rt::Cluster cluster;
  nvmecr_rt::Scheduler sched;
  std::optional<nvmecr_rt::JobAllocation> job;
  std::optional<nvmecr_rt::NvmecrSystem> fast;

  static nvmecr_rt::ClusterSpec make_spec() {
    nvmecr_rt::ClusterSpec s;
    s.compute_nodes = 4;
    s.storage_nodes = 4;
    s.storage_racks = 2;
    return s;
  }

  explicit SweepStack(uint32_t ranks) : cluster(make_spec()), sched(cluster) {
    auto j = sched.allocate(ranks, /*procs_per_node=*/1, 256_MiB,
                            cluster.spec().storage_nodes);
    NVMECR_CHECK(j.ok());
    job = *j;
    fast.emplace(cluster, *job, nvmecr_rt::RuntimeConfig{});
  }
};

AppRunParams sweep_params(const AppSpec& spec, const SweepParams& p,
                          double interval, uint32_t epochs) {
  AppRunParams a;
  a.io = workloads::io_params_for(spec, p.ranks);
  a.io.procs_per_node = 1;
  a.io.atoms_per_rank = 4096;
  a.io.bytes_per_atom = 512;  // 2 MiB per rank per checkpoint
  a.io.io_chunk = 1_MiB;
  a.io.checkpoints = epochs;
  a.io.compute_per_period = static_cast<SimDuration>(interval);
  a.io.compute_jitter = 0;  // keep epoch wall time = I + delta exactly
  a.io.keep_last = epochs + 1;
  a.seed = p.seed;
  return a;
}

/// One (interval, failure-stream) experiment: run with kills drawn from
/// the exponential stream, restart, repeat until all epochs complete.
/// Returns total sim time, or nullopt when the run misbehaved.
std::optional<double> run_experiment(const AppSpec& spec,
                                     const SweepParams& p, double interval,
                                     uint32_t epochs, double delta,
                                     uint64_t stream_seed,
                                     uint32_t* failures) {
  SweepStack stack(p.ranks);
  AppDriver driver(stack.cluster, *stack.fast, spec,
                   sweep_params(spec, p, interval, epochs));
  Rng rng(mix64(stream_seed ^ 0xFA17D0A1Full));
  auto draw = [&rng, &p]() {
    return -p.mtbf * std::log(std::max(rng.uniform01(), 1e-12));
  };
  const double epoch_wall = interval + delta;  // expected epoch time

  double total = 0;
  uint32_t start_epoch = 0;
  uint32_t cycles = 0;
  bool first = true;
  while (cycles <= p.max_cycles) {
    // Map the next failure time (ns into this phase) onto the epoch in
    // progress when it lands; the exponential process is memoryless, so
    // drawing afresh at each phase start is exact.
    const double next_fail = draw();
    const uint32_t kill_epoch =
        start_epoch + static_cast<uint32_t>(next_fail / epoch_wall);
    KillSpec kill;
    if (kill_epoch < epochs) {
      kill.epoch = kill_epoch;
      // Alternate rework extremes (lose a full interval vs. almost
      // none) so the average rework matches the model's I/2.
      kill.point = (cycles % 2 == 0) ? KillPoint::kBeforeCheckpoint
                                     : KillPoint::kAfterCheckpoint;
    }
    auto r = first ? driver.run(kill)
                   : driver.restart(workloads::RestorePlan{}, kill);
    first = false;
    if (!r.ok()) return std::nullopt;
    total += static_cast<double>(r->total_time);
    if (!r->killed) return total;
    ++cycles;
    if (failures != nullptr) ++*failures;
    // Newest committed epoch after a kill at e: e with kAfterCheckpoint
    // (resume at e+1), e-1 with kBeforeCheckpoint (resume at e).
    start_epoch =
        kill.point == KillPoint::kAfterCheckpoint ? kill.epoch + 1
        : kill.epoch > 0                          ? kill.epoch
                                                  : 0;
  }
  return std::nullopt;  // max_cycles exceeded: interval far too small
}

}  // namespace

SweepResult interval_sweep(const SweepParams& p) {
  SweepResult out;
  out.mtbf = p.mtbf;
  const AppSpec* spec = workloads::find_app(p.app.c_str());
  NVMECR_CHECK(spec != nullptr);

  // Calibrate the per-epoch checkpoint overhead δ on the real stack: a
  // clean run's epoch wall time minus its compute interval (includes
  // the reductions and barrier — overhead the model charges to δ too).
  {
    const double cal_interval = 4.0 * kMillisecond;
    const uint32_t cal_epochs = 6;
    SweepStack stack(p.ranks);
    AppDriver driver(stack.cluster, *stack.fast, *spec,
                     sweep_params(*spec, p, cal_interval, cal_epochs));
    auto r = driver.run();
    NVMECR_CHECK(r.ok());
    out.delta =
        static_cast<double>(r->total_time) / cal_epochs - cal_interval;
  }
  out.young = young_interval(p.mtbf, out.delta);
  out.daly = daly_interval(p.mtbf, out.delta);

  // Geometric grid centered on the Daly interval.
  const int center = static_cast<int>(p.grid) / 2;
  double best_eff = -1;
  for (uint32_t k = 0; k < p.grid; ++k) {
    const double interval =
        out.daly * std::pow(p.grid_step, static_cast<int>(k) - center);
    const uint32_t epochs = std::max(
        2u, static_cast<uint32_t>(std::lround(p.work / interval)));
    SweepPoint pt;
    pt.interval = interval;
    pt.epochs = epochs;
    const double useful = static_cast<double>(epochs) * interval;
    double eff_sum = 0;
    uint32_t reps_ok = 0;
    for (uint32_t rep = 0; rep < p.reps; ++rep) {
      auto total = run_experiment(*spec, p, interval, epochs, out.delta,
                                  p.seed + rep, &pt.failures);
      if (!total.has_value() || *total <= 0) continue;
      eff_sum += useful / *total;
      ++reps_ok;
    }
    if (reps_ok > 0) pt.efficiency = eff_sum / reps_ok;
    if (pt.efficiency > best_eff) {
      best_eff = pt.efficiency;
      out.best_index = static_cast<int>(k);
    }
    out.points.push_back(pt);
  }
  // Grid point nearest the computed Daly interval (log distance).
  double best_dist = -1;
  for (uint32_t k = 0; k < p.grid; ++k) {
    const double d = std::fabs(std::log(out.points[k].interval / out.daly));
    if (best_dist < 0 || d < best_dist) {
      best_dist = d;
      out.computed_index = static_cast<int>(k);
    }
  }
  return out;
}

}  // namespace nvmecr::chaos
