#include "chaos/schedule.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "common/rng.h"

namespace nvmecr::chaos {

namespace {

// Substream tags: each fault family draws from its own seed-derived
// stream per domain, so adding events to one family never perturbs
// another family's arrivals (schedule stability under model tweaks).
constexpr uint64_t kTargetStream = 0x7A26E7C100AA01ull;
constexpr uint64_t kSsdStream = 0x55DC2A5900BB02ull;
constexpr uint64_t kLinkStream = 0x11AA0D0300CC03ull;
constexpr uint64_t kStragglerStream = 0x57A661E200DD04ull;
constexpr uint64_t kPartitionStream = 0x9A271710EE05ull;
constexpr uint64_t kAuxStream = 0xCA5CADE00FF06ull;

Rng domain_rng(uint64_t seed, uint64_t stream, uint32_t domain) {
  return Rng(mix64(seed ^ stream) ^ (static_cast<uint64_t>(domain) << 20));
}

/// Interarrival draw for one domain's failure process.
double draw_interval(Rng& rng, const DomainModel& m) {
  // Guard the log against u == 0.
  const double u = std::max(rng.uniform01(), 1e-12);
  if (m.dist == MtbfDist::kWeibull) {
    // Weibull with mean `mtbf`: scale = mtbf / Gamma(1 + 1/shape);
    // draw = scale * (-ln U)^(1/shape). Shape < 1 makes short gaps far
    // more likely than exponential — clustered (bursty) failures.
    const double scale = m.mtbf / std::tgamma(1.0 + 1.0 / m.weibull_shape);
    return scale * std::pow(-std::log(u), 1.0 / m.weibull_shape);
  }
  return -m.mtbf * std::log(u);
}

double draw_repair(Rng& rng, const DomainModel& m) {
  const double u = std::max(rng.uniform01(), 1e-12);
  return -m.repair_mean * std::log(u);
}

/// One domain's arrival process over [0, horizon): transient events get
/// a repair draw; a permanent event ends the process (the domain is
/// gone — nothing left to fail).
template <typename Emit>
void run_process(uint64_t seed, uint64_t stream, uint32_t domain,
                 const DomainModel& m, SimTime horizon, Emit&& emit) {
  if (m.mtbf <= 0) return;
  Rng rng = domain_rng(seed, stream, domain);
  double t = draw_interval(rng, m);
  while (t < static_cast<double>(horizon)) {
    const bool transient = rng.uniform01() < m.transient_prob;
    const SimTime at = static_cast<SimTime>(t);
    const SimTime until =
        transient ? at + std::max<SimTime>(
                             1, static_cast<SimTime>(draw_repair(rng, m)))
                  : 0;
    emit(at, until, rng);
    if (!transient) return;
    t += draw_interval(rng, m);
  }
}

workloads::KillPoint kill_point_from_index(uint64_t i) {
  switch (i % 3) {
    case 0: return workloads::KillPoint::kBeforeCheckpoint;
    case 1: return workloads::KillPoint::kMidCheckpoint;
    default: return workloads::KillPoint::kAfterCheckpoint;
  }
}

workloads::KillPoint parse_kill_point(const std::string& name) {
  using workloads::KillPoint;
  if (name == "before-checkpoint") return KillPoint::kBeforeCheckpoint;
  if (name == "mid-checkpoint") return KillPoint::kMidCheckpoint;
  if (name == "after-checkpoint") return KillPoint::kAfterCheckpoint;
  return KillPoint::kNone;
}

bool parse_fault_kind(const std::string& name, FaultKind& out) {
  for (FaultKind k :
       {FaultKind::kTargetCrash, FaultKind::kSsdCrash, FaultKind::kLinkDown,
        FaultKind::kStraggler, FaultKind::kPartition, FaultKind::kJobKill}) {
    if (name == fault_kind_name(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

}  // namespace

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kTargetCrash: return "target-crash";
    case FaultKind::kSsdCrash: return "ssd-crash";
    case FaultKind::kLinkDown: return "link-down";
    case FaultKind::kStraggler: return "straggler";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kJobKill: return "job-kill";
  }
  return "?";
}

FailureSchedule generate_schedule(const ScheduleParams& p) {
  FailureSchedule out;
  out.params = p;
  std::vector<FailureEvent>& ev = out.events;
  const uint32_t nodes = std::max(1u, p.storage_nodes);
  const uint32_t racks = std::max(1u, p.racks);
  const uint32_t nodes_per_rack = (nodes + racks - 1) / racks;
  Rng aux = domain_rng(p.seed, kAuxStream, 0);

  auto add = [&ev](FaultKind kind, uint32_t victim, SimTime at,
                   SimTime until) -> FailureEvent& {
    FailureEvent e;
    e.kind = kind;
    e.victim = victim;
    e.at = at;
    e.until = until;
    ev.push_back(e);
    return ev.back();
  };

  // Correlated extras ride a dedicated aux stream keyed on the primary
  // event, so the per-domain processes above stay stable.
  auto correlate = [&](FaultKind kind, uint32_t victim, SimTime at,
                       SimTime until) {
    if (p.rack_burst_prob > 0 && aux.uniform01() < p.rack_burst_prob) {
      // Shared PDU / ToR loss: the victim's rack siblings crash within a
      // 100 us spread, recovering (if transient) when the primary does.
      const uint32_t rack = victim / nodes_per_rack;
      for (uint32_t n = rack * nodes_per_rack;
           n < std::min(nodes, (rack + 1) * nodes_per_rack); ++n) {
        if (n == victim) continue;
        add(kind, n, at + 1 + static_cast<SimTime>(aux.uniform(100'000)),
            until);
      }
    }
    if (p.cascade_prob > 0 && aux.uniform01() < p.cascade_prob) {
      // Load-shift cascade: the next domain over fails shortly after,
      // always transiently (a secondary wobble, not a second loss).
      const SimTime lag =
          500'000 + static_cast<SimTime>(aux.uniform(2'000'000));
      const SimTime c_at = at + lag;
      if (c_at < p.horizon) {
        add(kind, (victim + 1) % nodes, c_at,
            c_at + std::max<SimTime>(1, static_cast<SimTime>(
                                            draw_repair(aux, p.target))));
      }
    }
  };

  for (uint32_t n = 0; n < nodes; ++n) {
    run_process(p.seed, kTargetStream, n, p.target, p.horizon,
                [&](SimTime at, SimTime until, Rng&) {
                  add(FaultKind::kTargetCrash, n, at, until);
                  correlate(FaultKind::kTargetCrash, n, at, until);
                });
    run_process(p.seed, kSsdStream, n, p.ssd, p.horizon,
                [&](SimTime at, SimTime until, Rng&) {
                  add(FaultKind::kSsdCrash, n, at, until);
                  correlate(FaultKind::kSsdCrash, n, at, until);
                });
    run_process(p.seed, kLinkStream, n, p.link, p.horizon,
                [&](SimTime at, SimTime until, Rng& rng) {
                  // Links always come back (flap, not loss).
                  if (until == 0) {
                    until = at + std::max<SimTime>(
                                     1, static_cast<SimTime>(
                                            draw_repair(rng, p.link)));
                  }
                  add(FaultKind::kLinkDown, n, at, until);
                });
    run_process(p.seed, kStragglerStream, n, p.straggler, p.horizon,
                [&](SimTime at, SimTime until, Rng& rng) {
                  if (until == 0) {
                    until = at + std::max<SimTime>(
                                     1, static_cast<SimTime>(
                                            draw_repair(rng, p.straggler)));
                  }
                  FailureEvent& e = add(FaultKind::kStraggler, n, at, until);
                  e.factor = p.straggler_factor_min +
                             rng.uniform01() * (p.straggler_factor_max -
                                                p.straggler_factor_min);
                });
  }
  for (uint32_t r = 0; r < racks; ++r) {
    run_process(p.seed, kPartitionStream, r, p.partition, p.horizon,
                [&](SimTime at, SimTime until, Rng& rng) {
                  if (until == 0) {
                    until = at + std::max<SimTime>(
                                     1, static_cast<SimTime>(
                                            draw_repair(rng, p.partition)));
                  }
                  add(FaultKind::kPartition, r, at, until);
                });
  }
  if (p.job_kill_prob > 0 && aux.uniform01() < p.job_kill_prob &&
      p.epochs > 0) {
    const uint32_t epoch = static_cast<uint32_t>(aux.uniform(p.epochs));
    FailureEvent& e = add(FaultKind::kJobKill, epoch, 0, 0);
    e.kill_point = kill_point_from_index(aux.next());
  }

  std::stable_sort(ev.begin(), ev.end(),
                   [](const FailureEvent& a, const FailureEvent& b) {
                     if (a.at != b.at) return a.at < b.at;
                     if (a.kind != b.kind) return a.kind < b.kind;
                     return a.victim < b.victim;
                   });
  if (ev.size() > p.max_events) ev.resize(p.max_events);
  for (uint32_t i = 0; i < ev.size(); ++i) ev[i].id = i;
  return out;
}

double schedule_mtbf(const ScheduleParams& p) {
  // Crash-class failure rate across all domains: N_nodes/target_mtbf +
  // N_nodes/ssd_mtbf + N_racks/partition_mtbf. Stragglers and link
  // flaps don't lose work the way Young/Daly's model assumes.
  double rate = 0;
  const uint32_t nodes = std::max(1u, p.storage_nodes);
  if (p.target.mtbf > 0) rate += nodes / p.target.mtbf;
  if (p.ssd.mtbf > 0) rate += nodes / p.ssd.mtbf;
  if (p.partition.mtbf > 0) rate += std::max(1u, p.racks) / p.partition.mtbf;
  if (rate <= 0) return static_cast<double>(p.horizon);
  return 1.0 / rate;
}

std::string serialize_schedule(const FailureSchedule& s) {
  std::string out = "# nvmecr chaos schedule v1\n";
  char buf[256];
  const ScheduleParams& p = s.params;
  std::snprintf(buf, sizeof(buf),
                "seed 0x%llx\nhorizon %lld\nstorage_nodes %u\nracks %u\n"
                "epochs %u\n",
                static_cast<unsigned long long>(p.seed),
                static_cast<long long>(p.horizon), p.storage_nodes, p.racks,
                p.epochs);
  out += buf;
  for (const FailureEvent& e : s.events) {
    std::snprintf(buf, sizeof(buf), "event %u %s %u %lld %lld %.6f %s\n",
                  e.id, fault_kind_name(e.kind), e.victim,
                  static_cast<long long>(e.at),
                  static_cast<long long>(e.until), e.factor,
                  workloads::kill_point_name(e.kill_point));
    out += buf;
  }
  return out;
}

StatusOr<FailureSchedule> parse_schedule(const std::string& text) {
  FailureSchedule s;
  std::istringstream in(text);
  std::string line;
  bool versioned = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line.find("chaos schedule v1") != std::string::npos)
        versioned = true;
      continue;
    }
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "seed") {
      std::string v;
      ls >> v;
      s.params.seed = std::strtoull(v.c_str(), nullptr, 0);
    } else if (key == "horizon") {
      ls >> s.params.horizon;
    } else if (key == "storage_nodes") {
      ls >> s.params.storage_nodes;
    } else if (key == "racks") {
      ls >> s.params.racks;
    } else if (key == "epochs") {
      ls >> s.params.epochs;
    } else if (key == "event") {
      FailureEvent e;
      std::string kind, kp;
      ls >> e.id >> kind >> e.victim >> e.at >> e.until >> e.factor >> kp;
      if (ls.fail() || !parse_fault_kind(kind, e.kind)) {
        return InvalidArgumentError("bad schedule event line: " + line);
      }
      e.kill_point = parse_kill_point(kp);
      s.events.push_back(e);
    } else {
      return InvalidArgumentError("unknown schedule key: " + key);
    }
  }
  if (!versioned) {
    return InvalidArgumentError("not a chaos schedule (missing v1 header)");
  }
  return s;
}

}  // namespace nvmecr::chaos
