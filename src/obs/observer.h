// The observability hookup handed to instrumented subsystems.
//
// An Observer is a set of non-owning pointers — trace collector, metrics
// registry, and the v2 profilers — any of which may be null. Subsystems
// keep a copy and guard every use:
//
//   if (obs_.trace != nullptr) { sim::TraceSpan span(obs_.trace, ...); }
//   if (write_cmds_ != nullptr) write_cmds_->add();
//   if (obs_.epoch != nullptr) obs_.epoch->record(engine, phase, d);
//
// so instrumentation costs nothing (a pointer test) when observability is
// off, which is the default everywhere. Cache raw Counter*/Gauge*
// pointers at set_observer() time, not per event: registry lookups are
// map-based and belong outside hot paths.
//
// `dispatch` and `epoch` are the deep-profiling layer (DESIGN.md §9):
// Cluster::install_observer arms the engine's dispatch profiler, flight
// recorder, and profile hooks from them.
#pragma once

#include "obs/metrics.h"

namespace nvmecr::sim {
class TraceCollector;
class DispatchProfiler;
}  // namespace nvmecr::sim

namespace nvmecr::obs {

class EpochProfiler;

struct Observer {
  sim::TraceCollector* trace = nullptr;
  MetricsRegistry* metrics = nullptr;
  /// Wall-clock dispatch cost-center profiler (armed on the engine).
  sim::DispatchProfiler* dispatch = nullptr;
  /// Checkpoint-epoch critical-path analyzer (fed by runtime layers).
  EpochProfiler* epoch = nullptr;

  bool any() const {
    return trace != nullptr || metrics != nullptr || dispatch != nullptr ||
           epoch != nullptr;
  }
};

}  // namespace nvmecr::obs
