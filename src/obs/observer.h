// The observability hookup handed to instrumented subsystems.
//
// An Observer is a pair of non-owning pointers — a trace collector and a
// metrics registry — either of which may be null. Subsystems keep a copy
// and guard every use:
//
//   if (obs_.trace != nullptr) { sim::TraceSpan span(obs_.trace, ...); }
//   if (write_cmds_ != nullptr) write_cmds_->add();
//
// so instrumentation costs nothing (a pointer test) when observability is
// off, which is the default everywhere. Cache raw Counter*/Gauge*
// pointers at set_observer() time, not per event: registry lookups are
// map-based and belong outside hot paths.
#pragma once

#include "obs/metrics.h"

namespace nvmecr::sim {
class TraceCollector;
}  // namespace nvmecr::sim

namespace nvmecr::obs {

struct Observer {
  sim::TraceCollector* trace = nullptr;
  MetricsRegistry* metrics = nullptr;

  bool any() const { return trace != nullptr || metrics != nullptr; }
};

}  // namespace nvmecr::obs
