#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "simcore/trace.h"

namespace nvmecr::obs {

double Gauge::timeline_mean() const {
  if (points_.empty()) return 0.0;
  double s = 0.0;
  for (const GaugePoint& p : points_) s += p.value;
  return s / static_cast<double>(points_.size());
}

void Gauge::record(SimTime now) {
  if (!points_.empty() && now - points_.back().at < gap_) {
    // Inside the throttle window: slide the newest point forward instead
    // of growing the timeline, so the latest level is still represented.
    points_.back().at = now;
    points_.back().value = value_;
    return;
  }
  points_.push_back(GaugePoint{now, value_});
  if (points_.size() >= kMaxPoints) {
    // Keep every other point and double the gap; repeated overflows
    // converge on a timeline whose resolution matches the run length.
    size_t w = 0;
    for (size_t r = 0; r < points_.size(); r += 2) points_[w++] = points_[r];
    points_.resize(w);
    gap_ = gap_ == 0 ? kMicrosecond : gap_ * 2;
  }
}

void Histogram::add(double v) {
  stats_.add(v);
  const double clamped = v < 0.0 ? 0.0 : v;
  const auto iv = static_cast<uint64_t>(clamped);
  const auto bucket = static_cast<size_t>(std::bit_width(iv));
  buckets_[std::min(bucket, kBuckets - 1)]++;
}

double Histogram::percentile(double p) const {
  const uint64_t n = stats_.count();
  if (n == 0) return 0.0;
  if (p <= 0.0) return stats_.min();
  if (p >= 100.0) return stats_.max();
  const auto rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(n));
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen > rank) {
      // Bucket i covers [2^(i-1), 2^i); report its midpoint clamped to
      // the exact observed range.
      const double lo = i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i) - 1);
      const double hi = std::ldexp(1.0, static_cast<int>(i));
      const double mid = (lo + hi) / 2.0;
      return std::clamp(mid, stats_.min(), stats_.max());
    }
  }
  return stats_.max();
}

Counter* MetricsRegistry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second.get() : nullptr;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second.get() : nullptr;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it != histograms_.end() ? it->second.get() : nullptr;
}

void MetricsRegistry::export_gauges_to_trace(sim::TraceCollector& trace) const {
  for (const auto& [name, gauge] : gauges_) {
    const size_t dot = name.rfind('.');
    const std::string track =
        dot == std::string::npos ? std::string("gauges") : name.substr(0, dot);
    const std::string series =
        dot == std::string::npos ? name : name.substr(dot + 1);
    for (const GaugePoint& p : gauge->timeline()) {
      trace.add_counter(track, series, p.at, p.value);
    }
  }
}

std::string MetricsRegistry::to_csv() const {
  std::string out = "kind,name,count,value,mean,min,max,p50,p95,p99\n";
  char line[512];
  for (const auto& [name, c] : counters_) {
    std::snprintf(line, sizeof(line), "counter,%s,1,%llu,,,,,,\n", name.c_str(),
                  static_cast<unsigned long long>(c->value()));
    out += line;
  }
  for (const auto& [name, g] : gauges_) {
    std::snprintf(line, sizeof(line),
                  "gauge,%s,%zu,%.17g,%.17g,,%.17g,,,\n", name.c_str(),
                  g->timeline().size(), g->value(), g->timeline_mean(),
                  g->max());
    out += line;
  }
  for (const auto& [name, h] : histograms_) {
    std::snprintf(line, sizeof(line),
                  "histogram,%s,%llu,,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g\n",
                  name.c_str(), static_cast<unsigned long long>(h->count()),
                  h->mean(), h->min(), h->max(), h->percentile(50),
                  h->percentile(95), h->percentile(99));
    out += line;
  }
  for (const auto& [name, g] : gauges_) {
    for (const GaugePoint& p : g->timeline()) {
      std::snprintf(line, sizeof(line), "sample,%s,%lld,%.17g\n", name.c_str(),
                    static_cast<long long>(p.at), p.value);
      out += line;
    }
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{\n  \"counters\": {";
  char line[512];
  bool first = true;
  for (const auto& [name, c] : counters_) {
    std::snprintf(line, sizeof(line), "%s\n    \"%s\": %llu",
                  first ? "" : ",", sim::json_escape(name).c_str(),
                  static_cast<unsigned long long>(c->value()));
    out += line;
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    std::snprintf(line, sizeof(line),
                  "%s\n    \"%s\": {\"value\": %.17g, \"max\": %.17g, "
                  "\"points\": [",
                  first ? "" : ",", sim::json_escape(name).c_str(), g->value(),
                  g->max());
    out += line;
    bool first_pt = true;
    for (const GaugePoint& p : g->timeline()) {
      std::snprintf(line, sizeof(line), "%s[%lld,%.17g]", first_pt ? "" : ",",
                    static_cast<long long>(p.at), p.value);
      out += line;
      first_pt = false;
    }
    out += "]}";
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    std::snprintf(line, sizeof(line),
                  "%s\n    \"%s\": {\"count\": %llu, \"mean\": %.17g, "
                  "\"min\": %.17g, \"max\": %.17g, \"p50\": %.17g, "
                  "\"p95\": %.17g, \"p99\": %.17g}",
                  first ? "" : ",", sim::json_escape(name).c_str(),
                  static_cast<unsigned long long>(h->count()), h->mean(),
                  h->min(), h->max(), h->percentile(50), h->percentile(95),
                  h->percentile(99));
    out += line;
    first = false;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

namespace {
bool write_string(const std::string& path, const std::string& body) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}
}  // namespace

bool MetricsRegistry::write_csv(const std::string& path) const {
  return write_string(path, to_csv());
}

bool MetricsRegistry::write_json(const std::string& path) const {
  return write_string(path, to_json());
}

}  // namespace nvmecr::obs
