#include "obs/run_report.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace nvmecr::obs {

namespace {

/// Matches "--flag PATH" / "--flag=PATH"; advances *i past a consumed
/// value argument. Returns true and fills `out` on a match.
bool match_path_flag(int argc, char** argv, int* i, const char* flag,
                     std::string* out) {
  const char* arg = argv[*i];
  const size_t flag_len = std::strlen(flag);
  if (std::strncmp(arg, flag, flag_len) != 0) return false;
  if (arg[flag_len] == '=') {
    *out = arg + flag_len + 1;
    return true;
  }
  if (arg[flag_len] == '\0' && *i + 1 < argc) {
    *out = argv[++*i];
    return true;
  }
  return false;
}

bool ends_with(const std::string& s, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

RunReport RunReport::from_args(int argc, char** argv) {
  RunReport report;
  std::string flight;
  for (int i = 1; i < argc; ++i) {
    if (match_path_flag(argc, argv, &i, "--trace", &report.trace_path_)) {
      continue;
    }
    if (match_path_flag(argc, argv, &i, "--profile", &report.profile_path_)) {
      continue;
    }
    if (match_path_flag(argc, argv, &i, "--flight", &flight)) {
      continue;
    }
    match_path_flag(argc, argv, &i, "--metrics", &report.metrics_path_);
  }
  if (!flight.empty()) {
    report.flight_events_ = std::strtoull(flight.c_str(), nullptr, 10);
    if (report.flight_events_ > 0) {
      report.trace_.set_ring_capacity(report.flight_events_);
    }
  }
  return report;
}

void RunReport::finish() {
  if (profile_enabled()) {
    dispatch_.finish();
    std::string text = "dispatch cost centers (host wall clock):\n";
    text += dispatch_.table(10);
    text += "\ncheckpoint-epoch drilldown (simulated time):\n";
    text += epoch_.drilldown_table();
    if (profile_path_ == "-") {
      std::printf("%s", text.c_str());
    } else {
      std::FILE* f = std::fopen(profile_path_.c_str(), "w");
      if (f != nullptr) {
        std::fputs(text.c_str(), f);
        std::fclose(f);
        std::printf("profile: wrote report to %s\n", profile_path_.c_str());
      } else {
        std::fprintf(stderr, "profile: failed to write %s\n",
                     profile_path_.c_str());
      }
    }
  }
  if (trace_enabled()) {
    metrics_.export_gauges_to_trace(trace_);
    if (trace_.write(trace_path_)) {
      std::printf("trace: wrote %zu events to %s\n", trace_.size(),
                  trace_path_.c_str());
    } else {
      std::fprintf(stderr, "trace: failed to write %s\n", trace_path_.c_str());
    }
  }
  if (metrics_enabled()) {
    const bool ok = ends_with(metrics_path_, ".json")
                        ? metrics_.write_json(metrics_path_)
                        : metrics_.write_csv(metrics_path_);
    if (ok) {
      std::printf("metrics: wrote %zu series to %s\n", metrics_.size(),
                  metrics_path_.c_str());
    } else {
      std::fprintf(stderr, "metrics: failed to write %s\n",
                   metrics_path_.c_str());
    }
  }
}

}  // namespace nvmecr::obs
