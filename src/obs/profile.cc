#include "obs/profile.h"

#include <algorithm>
#include <cstdio>

namespace nvmecr::obs {

const char* EpochProfiler::phase_name(Phase p) {
  switch (p) {
    case Phase::kSerialize:
      return "serialize";
    case Phase::kOplog:
      return "oplog";
    case Phase::kFabric:
      return "fabric";
    case Phase::kTargetQueue:
      return "target_queue";
    case Phase::kFlash:
      return "flash";
    case Phase::kBarrier:
      return "barrier";
    case Phase::kTargetCompute:
      return "target_compute";
    case Phase::kOther:
      return "other";
  }
  return "?";
}

void EpochProfiler::set_rank_epoch(uint32_t rank, uint32_t epoch) {
  if (rank >= rank_epoch_.size()) rank_epoch_.resize(rank + 1, 0);
  rank_epoch_[rank] = epoch;
  if (rank > max_rank_) max_rank_ = rank;
}

std::vector<uint64_t>& EpochProfiler::cell(uint32_t epoch, Phase p) {
  if (epoch >= epochs_.size()) epochs_.resize(epoch + 1);
  return epochs_[epoch].phases[static_cast<size_t>(p)];
}

void EpochProfiler::record(const sim::Engine& engine, Phase p,
                           SimDuration d) {
  if (d <= 0) return;
  const uint32_t ctx = engine.profile_ctx();
  const uint32_t rank_p1 = ctx >> sim::profile_ctx::kRankShift;
  if (rank_p1 == 0) return;  // no rank in flight: not a checkpoint op
  const uint32_t rank = rank_p1 - 1;
  // Metadata maintenance (oplog persistence) books all nested phases —
  // fabric, queueing, flash — under the oplog phase so the drilldown
  // stays an additive decomposition of each rank's blocking time.
  if ((ctx & sim::profile_ctx::kMetaBit) != 0) p = Phase::kOplog;
  const uint32_t epoch = rank < rank_epoch_.size() ? rank_epoch_[rank] : 0;
  record_rank(rank, epoch, p, d);
}

void EpochProfiler::record_rank(uint32_t rank, uint32_t epoch, Phase p,
                                SimDuration d) {
  if (d <= 0) return;
  if (rank > max_rank_) max_rank_ = rank;
  std::vector<uint64_t>& by_rank = cell(epoch, p);
  if (rank >= by_rank.size()) by_rank.resize(rank + 1, 0);
  by_rank[rank] += static_cast<uint64_t>(d);
}

uint64_t EpochProfiler::phase_total_ns(uint32_t epoch, Phase p) const {
  if (epoch >= epochs_.size()) return 0;
  uint64_t total = 0;
  for (uint64_t ns : epochs_[epoch].phases[static_cast<size_t>(p)]) {
    total += ns;
  }
  return total;
}

uint64_t EpochProfiler::rank_ns(uint32_t epoch, Phase p,
                                uint32_t rank) const {
  if (epoch >= epochs_.size()) return 0;
  const std::vector<uint64_t>& by_rank =
      epochs_[epoch].phases[static_cast<size_t>(p)];
  return rank < by_rank.size() ? by_rank[rank] : 0;
}

EpochProfiler::PhaseStats EpochProfiler::phase_stats(uint32_t epoch,
                                                     Phase p) const {
  PhaseStats s;
  if (epoch >= epochs_.size()) return s;
  const std::vector<uint64_t>& by_rank =
      epochs_[epoch].phases[static_cast<size_t>(p)];
  std::vector<uint64_t> active;
  for (uint32_t r = 0; r < by_rank.size(); ++r) {
    const uint64_t ns = by_rank[r];
    if (ns == 0) continue;
    active.push_back(ns);
    s.total_ns += ns;
    if (ns > s.max_ns) {
      s.max_ns = ns;
      s.max_rank = r;
    }
  }
  s.ranks = static_cast<uint32_t>(active.size());
  if (!active.empty()) {
    std::sort(active.begin(), active.end());
    s.median_ns = active[active.size() / 2];
  }
  return s;
}

std::string EpochProfiler::drilldown_table() const {
  std::string out;
  char line[192];
  std::snprintf(line, sizeof(line), "%-6s %-13s %11s %10s %10s %9s %9s\n",
                "epoch", "phase", "total_ms", "median_ms", "max_ms",
                "max_rank", "straggler");
  out += line;
  for (uint32_t e = 0; e < epochs_.size(); ++e) {
    for (size_t pi = 0; pi < kNumPhases; ++pi) {
      const Phase p = static_cast<Phase>(pi);
      const PhaseStats s = phase_stats(e, p);
      if (s.total_ns == 0) continue;
      std::snprintf(line, sizeof(line),
                    "%-6u %-13s %11.3f %10.3f %10.3f %9u %8.2fx\n", e,
                    phase_name(p), s.total_ns / 1e6, s.median_ns / 1e6,
                    s.max_ns / 1e6, s.max_rank, s.straggler());
      out += line;
    }
  }
  return out;
}

void EpochProfiler::reset() {
  epochs_.clear();
  rank_epoch_.clear();
  max_rank_ = 0;
}

}  // namespace nvmecr::obs
