// Metrics registry for simulation runs.
//
// Three metric kinds, all keyed by dotted names following the scheme
// "<subsystem>.<instance?>.<metric>" (see DESIGN.md §Observability):
//
//   * Counter   — monotonically increasing uint64 (events, bytes).
//   * Gauge     — instantaneous level sampled into a sim-time timeline
//                 (queue depth, pool occupancy, backlog). Sampling is
//                 event-driven and self-throttling: a run never produces
//                 more than ~kMaxPoints points per gauge regardless of
//                 update rate, so hot paths can update unconditionally.
//   * Histogram — log2-bucketed distribution with exact Welford moments
//                 (common/stats.h) and approximate percentiles; used for
//                 latencies in nanoseconds.
//
// Metric objects are owned by the registry behind stable pointers:
// instruments look a metric up once (`registry->counter("...")`) and cache
// the raw pointer, so steady-state updates are a single add/store with no
// map lookup. The registry's maps are ordered, which makes the JSON/CSV
// snapshots deterministic: two identical sim runs serialize byte-for-byte
// identically.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/units.h"

namespace nvmecr::sim {
class TraceCollector;
}  // namespace nvmecr::sim

namespace nvmecr::obs {

/// Monotonic event/byte counter.
class Counter {
 public:
  void add(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

/// One sampled point of a gauge timeline.
struct GaugePoint {
  SimTime at;
  double value;
};

/// Instantaneous level with a bounded sim-time timeline.
///
/// set()/add() always update the live value; whether a timeline point is
/// recorded is throttled by a minimum gap that starts at zero (record
/// everything) and doubles each time the point cap is hit, halving the
/// stored timeline. Updates inside the gap overwrite the newest point so
/// the final level before a quiet period is never lost.
class Gauge {
 public:
  void set(SimTime now, double v) {
    value_ = v;
    if (v > max_) max_ = v;
    record(now);
  }
  void add(SimTime now, double delta) { set(now, value_ + delta); }

  double value() const { return value_; }
  /// High-water mark over the whole run (exact, not subject to sampling).
  double max() const { return max_; }
  const std::vector<GaugePoint>& timeline() const { return points_; }

  /// Mean of the recorded timeline points (sampling-weighted, for the
  /// CSV snapshot; not a true time-weighted mean).
  double timeline_mean() const;

 private:
  static constexpr size_t kMaxPoints = 4096;

  void record(SimTime now);

  double value_ = 0.0;
  double max_ = 0.0;
  SimDuration gap_ = 0;
  std::vector<GaugePoint> points_;
};

/// Log2-bucketed distribution with exact streaming moments.
/// Values are clamped at zero; bucket i holds values v with
/// bit_width(floor(v)) == i, i.e. [2^(i-1), 2^i).
class Histogram {
 public:
  void add(double v);

  uint64_t count() const { return stats_.count(); }
  double sum() const { return stats_.sum(); }
  double mean() const { return stats_.mean(); }
  double min() const { return stats_.min(); }
  double max() const { return stats_.max(); }
  double stdev() const { return stats_.stdev(); }

  /// Percentile in [0, 100] by cumulative bucket walk; exact at the
  /// extremes (returns min()/max()), bucket-midpoint otherwise.
  double percentile(double p) const;

  const StreamingStats& stats() const { return stats_; }

 private:
  static constexpr size_t kBuckets = 64;
  StreamingStats stats_;
  std::array<uint64_t, kBuckets> buckets_{};
};

/// Owns all metrics of one run. Lookup creates on first use; returned
/// pointers stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// Read-only lookups (nullptr when absent) for tests and reports.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Converts every gauge timeline into "ph":"C" counter events so the
  /// trace shows queue depths / occupancy as Perfetto counter tracks.
  /// Track name is the gauge name up to the last '.', counter name the
  /// final component.
  void export_gauges_to_trace(sim::TraceCollector& trace) const;

  /// CSV snapshot. Summary section (one row per metric):
  ///   kind,name,count,value,mean,min,max,p50,p95,p99
  /// followed by gauge timelines:
  ///   sample,<name>,<sim_ns>,<value>
  std::string to_csv() const;

  /// JSON snapshot {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string to_json() const;

  bool write_csv(const std::string& path) const;
  bool write_json(const std::string& path) const;

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace nvmecr::obs
