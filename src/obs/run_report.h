// RunReport: command-line glue tying a TraceCollector and MetricsRegistry
// to output files for examples and bench binaries.
//
//   int main(int argc, char** argv) {
//     obs::RunReport report = obs::RunReport::from_args(argc, argv);
//     Cluster cluster(...);
//     cluster.install_observer(report.observer());
//     ... run ...
//     report.finish();   // writes --trace / --metrics outputs
//   }
//
// Recognised flags (both "--flag PATH" and "--flag=PATH" forms):
//   --trace PATH     write a Perfetto-loadable trace JSON
//   --metrics PATH   write a metrics snapshot (CSV, or JSON when PATH
//                    ends in ".json")
//
// When neither flag is given, observer() is all-null and instrumentation
// throughout the stack stays disabled.
#pragma once

#include <string>

#include "obs/metrics.h"
#include "obs/observer.h"
#include "simcore/trace.h"

namespace nvmecr::obs {

class RunReport {
 public:
  /// Scans argv for --trace / --metrics. Unrecognised arguments are left
  /// for the caller to interpret.
  static RunReport from_args(int argc, char** argv);

  bool trace_enabled() const { return !trace_path_.empty(); }
  bool metrics_enabled() const { return !metrics_path_.empty(); }
  bool enabled() const { return trace_enabled() || metrics_enabled(); }

  /// Pointers into this report's collector/registry, or nulls for any
  /// output that was not requested.
  Observer observer() {
    Observer o;
    if (trace_enabled()) o.trace = &trace_;
    if (metrics_enabled() || trace_enabled()) o.metrics = &metrics_;
    return o;
  }

  sim::TraceCollector& trace() { return trace_; }
  MetricsRegistry& metrics() { return metrics_; }

  /// Exports gauge timelines into the trace as counter tracks, then
  /// writes any requested files. Prints one line per file written (or a
  /// warning on failure). Safe to call when nothing was requested.
  void finish();

 private:
  std::string trace_path_;
  std::string metrics_path_;
  sim::TraceCollector trace_;
  MetricsRegistry metrics_;
};

}  // namespace nvmecr::obs
