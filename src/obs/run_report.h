// RunReport: command-line glue tying a TraceCollector and MetricsRegistry
// to output files for examples and bench binaries.
//
//   int main(int argc, char** argv) {
//     obs::RunReport report = obs::RunReport::from_args(argc, argv);
//     Cluster cluster(...);
//     cluster.install_observer(report.observer());
//     ... run ...
//     report.finish();   // writes --trace / --metrics outputs
//   }
//
// Recognised flags (both "--flag PATH" and "--flag=PATH" forms):
//   --trace PATH     write a Perfetto-loadable trace JSON
//   --metrics PATH   write a metrics snapshot (CSV, or JSON when PATH
//                    ends in ".json")
//   --profile PATH   run the deep profilers (dispatch cost centers +
//                    checkpoint-epoch drilldown) and write their tables
//                    to PATH ("-" prints to stdout)
//   --flight N       keep only the last N trace events (flight-recorder
//                    ring). Arms tracing even without --trace so the
//                    deadlock/failover dumps have a tail to print; the
//                    ring is only written to a file when --trace is also
//                    given.
//
// When no flag is given, observer() is all-null and instrumentation
// throughout the stack stays disabled.
#pragma once

#include <string>

#include "obs/metrics.h"
#include "obs/observer.h"
#include "obs/profile.h"
#include "simcore/profile.h"
#include "simcore/trace.h"

namespace nvmecr::obs {

class RunReport {
 public:
  /// Scans argv for --trace / --metrics. Unrecognised arguments are left
  /// for the caller to interpret.
  static RunReport from_args(int argc, char** argv);

  bool trace_enabled() const { return !trace_path_.empty(); }
  bool metrics_enabled() const { return !metrics_path_.empty(); }
  bool profile_enabled() const { return !profile_path_.empty(); }
  bool flight_enabled() const { return flight_events_ > 0; }
  bool enabled() const {
    return trace_enabled() || metrics_enabled() || profile_enabled() ||
           flight_enabled();
  }

  /// Pointers into this report's collector/registry/profilers, or nulls
  /// for any output that was not requested.
  Observer observer() {
    Observer o;
    if (trace_enabled() || flight_enabled()) o.trace = &trace_;
    if (metrics_enabled() || trace_enabled()) o.metrics = &metrics_;
    if (profile_enabled()) {
      o.dispatch = &dispatch_;
      o.epoch = &epoch_;
    }
    return o;
  }

  sim::TraceCollector& trace() { return trace_; }
  MetricsRegistry& metrics() { return metrics_; }
  sim::DispatchProfiler& dispatch_profiler() { return dispatch_; }
  EpochProfiler& epoch_profiler() { return epoch_; }

  /// Exports gauge timelines into the trace as counter tracks, then
  /// writes any requested files. Prints one line per file written (or a
  /// warning on failure). Safe to call when nothing was requested.
  void finish();

 private:
  std::string trace_path_;
  std::string metrics_path_;
  std::string profile_path_;
  uint64_t flight_events_ = 0;
  sim::TraceCollector trace_;
  MetricsRegistry metrics_;
  sim::DispatchProfiler dispatch_;
  EpochProfiler epoch_;
};

}  // namespace nvmecr::obs
