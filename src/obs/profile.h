// Checkpoint-epoch critical-path analyzer (DESIGN.md §9) — the runtime-
// produced analogue of the paper's Figure 7(d) layer decomposition.
//
// Instrumented layers (runtime/microfs → nvmf → hw) report how much
// *simulated* time each blocking step of a checkpoint op spent in a
// phase:
//
//   serialize    rank-side CPU: compression, CRC, FS op overhead,
//                NVMf initiator command build
//   oplog        metadata persistence (any device/fabric time reached
//                under a ProfileMetaScope is folded here)
//   fabric       NVMe-oF command/data/completion transfer time
//   target_queue target poll-group backlog + SSD controller queueing
//   flash        channel/flash service time inside the SSD
//   barrier      inter-rank synchronization waits (app layer)
//   target_compute  offloaded work (digest, decompress, compaction,
//                parity XOR) charged on the target's compute pool
//
// Deep layers don't know which rank or epoch they serve; they call
// record(engine, phase, d) and the analyzer decodes the rank from the
// engine's profile context (stamped by ProfileRankScope in the workload)
// and looks up that rank's current epoch (stamped by set_rank_epoch).
// The app layer, which knows both, uses record_rank directly.
//
// The drilldown reports, per epoch and phase, the cross-rank total /
// median / max and which rank was the straggler — max-vs-median is the
// straggler amplification the paper attributes to metadata contention.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "simcore/engine.h"
#include "simcore/profile.h"

namespace nvmecr::obs {

class EpochProfiler {
 public:
  enum class Phase : uint8_t {
    kSerialize = 0,
    kOplog,
    kFabric,
    kTargetQueue,
    kFlash,
    kBarrier,
    kTargetCompute,
    kOther,
  };
  static constexpr size_t kNumPhases = 8;
  static const char* phase_name(Phase p);

  /// Declares that `rank` is now working on checkpoint epoch `epoch`
  /// (the restart pass counts as one more epoch after the last
  /// checkpoint). Subsequent ctx-decoded record() calls for the rank
  /// book into this epoch.
  void set_rank_epoch(uint32_t rank, uint32_t epoch);

  /// Books `d` of phase `p` for the rank encoded in `engine`'s profile
  /// context (no-op when no rank is stamped — i.e. profiling off or the
  /// event is outside any rank's op). Under a ProfileMetaScope the time
  /// is redirected to the oplog phase regardless of `p`.
  void record(const sim::Engine& engine, Phase p, SimDuration d);

  /// Books `d` directly when the caller knows rank and epoch (app
  /// layer: barrier waits, compression).
  void record_rank(uint32_t rank, uint32_t epoch, Phase p, SimDuration d);

  size_t epoch_count() const { return epochs_.size(); }
  uint32_t rank_count() const { return max_rank_ + 1; }

  /// Total ns booked for (epoch, phase) across ranks; 0 if out of range.
  uint64_t phase_total_ns(uint32_t epoch, Phase p) const;
  /// Ns booked for (epoch, phase, rank); 0 if out of range.
  uint64_t rank_ns(uint32_t epoch, Phase p, uint32_t rank) const;

  struct PhaseStats {
    uint64_t total_ns = 0;
    uint64_t median_ns = 0;  // across ranks that touched the phase
    uint64_t max_ns = 0;
    uint32_t max_rank = 0;
    uint32_t ranks = 0;  // ranks with nonzero time in the phase
    /// Straggler amplification: max / median (0 when median is 0).
    double straggler() const {
      return median_ns ? static_cast<double>(max_ns) / median_ns : 0.0;
    }
  };
  PhaseStats phase_stats(uint32_t epoch, Phase p) const;

  /// The fig07d table: one row per (epoch, phase) with nonzero time —
  /// totals, median/max across ranks, straggler rank and amplification.
  std::string drilldown_table() const;

  void reset();

 private:
  struct EpochData {
    // phases[p] indexed by rank; ns of simulated time booked.
    std::array<std::vector<uint64_t>, kNumPhases> phases;
  };

  std::vector<uint64_t>& cell(uint32_t epoch, Phase p);

  std::vector<EpochData> epochs_;
  std::vector<uint32_t> rank_epoch_;  // current epoch per rank
  uint32_t max_rank_ = 0;
};

}  // namespace nvmecr::obs
