#include "redundancy/engine.h"

#include <algorithm>

#include "common/crc.h"
#include "common/log.h"
#include "common/rng.h"
#include "obs/profile.h"
#include "simcore/profile.h"
#include "simcore/trace.h"

namespace nvmecr::redundancy {

uint64_t content_word(uint32_t rank, const std::string& path, uint64_t chunk) {
  return mix64(fnv1a(path.data(), path.size()) ^
               (static_cast<uint64_t>(rank) + 1) * 0x9E3779B97F4A7C15ull ^
               mix64(chunk + 0x517CC1B727220A95ull));
}

uint64_t stream_digest(uint64_t bytes, const std::vector<uint64_t>& words) {
  uint64_t d = crc64(&bytes, sizeof(bytes));
  if (!words.empty()) {
    d = crc64(words.data(), words.size() * sizeof(uint64_t), d);
  }
  return d;
}

namespace {
std::vector<uint64_t> words_for(uint32_t rank, const std::string& path,
                                uint64_t bytes, uint64_t chunk) {
  const uint64_t n = ceil_div(bytes, chunk);
  std::vector<uint64_t> words;
  words.reserve(n);
  for (uint64_t c = 0; c < n; ++c) words.push_back(content_word(rank, path, c));
  return words;
}
}  // namespace

// ---------------------------------------------------------------------------
// RedundantSystem

RedundantSystem::RedundantSystem(nvmecr_rt::Cluster& cluster,
                                 baselines::StorageSystem& primary,
                                 std::unique_ptr<nvmecr_rt::NvmecrSystem> store,
                                 RedundancyPlan plan, RedundancyOptions opts,
                                 uint32_t nranks)
    : cluster_(cluster),
      primary_(primary),
      store_(std::move(store)),
      plan_(std::move(plan)),
      opts_(opts),
      background_idle_(cluster.engine()) {
  NVMECR_CHECK(opts_.scheme == Scheme::kNone || store_ != nullptr);
  ranks_.reserve(nranks);
  for (uint32_t r = 0; r < nranks; ++r) {
    ranks_.push_back(std::make_unique<RankState>(cluster.engine()));
  }
  background_idle_.set();
  if (obs::MetricsRegistry* m = cluster_.observer().metrics) {
    replica_bytes_ctr_ = m->counter("redundancy.replica_bytes");
    parity_bytes_ctr_ = m->counter("redundancy.parity_bytes");
    degraded_ctr_ = m->counter("redundancy.degraded");
    encode_ns_ = m->histogram("redundancy.encode_ns");
  }
}

RedundantSystem::~RedundantSystem() = default;

sim::Task<StatusOr<std::unique_ptr<baselines::StorageClient>>>
RedundantSystem::connect(int rank) {
  NVMECR_CHECK(rank >= 0 && static_cast<size_t>(rank) < ranks_.size());
  auto pc = co_await primary_.connect(rank);
  if (!pc.ok()) co_return pc.status();
  RankState& st = rank_state(static_cast<uint32_t>(rank));
  if (store_ != nullptr) {
    // The store runtime formats the replica/parity partition on connect,
    // exactly like the primary. Reconnecting a rank therefore wipes its
    // redundant data — restart must reuse live sessions (Reconstructor
    // goes through the client registry, never through connect()).
    auto sc = co_await store_->connect(rank);
    if (!sc.ok()) co_return sc.status();
    st.store_client = std::move(*sc);
  }
  auto client = std::make_unique<RedundantClient>(
      *this, static_cast<uint32_t>(rank), std::move(*pc));
  st.client = client.get();
  co_return std::unique_ptr<baselines::StorageClient>(std::move(client));
}

sim::Task<void> RedundantSystem::quiesce() {
  for (auto& st : ranks_) {
    (void)co_await st->joiner.join();
  }
  while (background_outstanding_ > 0) {
    co_await background_idle_.wait();
  }
}

const FileManifest* RedundantSystem::manifest(uint32_t rank,
                                              const std::string& path) const {
  if (rank >= ranks_.size()) return nullptr;
  const auto& files = ranks_[rank]->files;
  auto it = files.find(path);
  return it == files.end() ? nullptr : &it->second;
}

RedundantSystem::SetProgress& RedundantSystem::set_progress(uint32_t set,
                                                            uint64_t seq) {
  const uint64_t key = (static_cast<uint64_t>(set) << 32) | (seq & 0xffffffff);
  auto& slot = set_progress_[key];
  if (slot == nullptr) slot = std::make_unique<SetProgress>(cluster_.engine());
  return *slot;
}

void RedundantSystem::note_degraded() {
  ++degraded_;
  if (degraded_ctr_ != nullptr) degraded_ctr_->add();
}

sim::Task<void> RedundantSystem::run_background(sim::Task<void> task) {
  co_await std::move(task);
  if (--background_outstanding_ == 0) background_idle_.set();
}

void RedundantSystem::spawn_background(sim::Task<void> task) {
  ++background_outstanding_;
  background_idle_.reset();
  cluster_.engine().spawn(run_background(std::move(task)));
}

sim::Task<void> RedundantSystem::encode_parity(uint32_t rank, std::string path,
                                               uint32_t set, uint64_t seq) {
  const uint32_t k = plan_.set_size;
  SetProgress& sp = set_progress(set, seq);
  while (sp.member_paths.size() < k) {
    co_await sp.done.wait();
  }

  const std::vector<uint32_t>& members = plan_.set_members[set];
  std::vector<const FileManifest*> ms;
  uint64_t max_bytes = 0;
  for (uint32_t m : members) {
    auto pit = sp.member_paths.find(m);
    const FileManifest* f =
        pit == sp.member_paths.end() ? nullptr : manifest(m, pit->second);
    if (f == nullptr || !f->complete) {
      // A member's file vanished (unlink) or failed before parity could
      // cover the wave; the set's checkpoints stay unprotected.
      note_degraded();
      co_return;
    }
    ms.push_back(f);
    max_bytes = std::max(max_bytes, f->bytes);
  }

  const uint64_t q = opts_.digest_chunk;
  const uint64_t c_max = ceil_div(max_bytes, q);
  const uint64_t t_words =
      std::max<uint64_t>(1, ceil_div(c_max, static_cast<uint64_t>(k - 1)));
  uint32_t my = 0;
  while (members[my] != rank) ++my;

  // P_my[t] = XOR over the other members i of word sigma(i, my) in row t
  // of their stream; sigma spreads each member's k-1 word groups over
  // the k-1 other members' segments so any single member's loss leaves
  // every parity input it needs on a survivor (DESIGN.md §10).
  ParitySegment seg;
  seg.words.assign(t_words, 0);
  for (uint32_t i = 0; i < members.size(); ++i) {
    if (i == my) continue;
    const uint32_t sigma = (my + k - i - 1) % k;  // in [0, k-2]
    const uint64_t ci = ceil_div(ms[i]->bytes, q);
    for (uint64_t t = 0; t < t_words; ++t) {
      const uint64_t c = t * (k - 1) + sigma;
      if (c >= ci) continue;  // shorter streams pad with zero words
      seg.words[t] ^=
          content_word(members[i], sp.member_paths[members[i]], c);
    }
  }
  seg.device_bytes = t_words * q;
  seg.member_paths = sp.member_paths;

  RankState& st = rank_state(rank);
  if (st.store_client == nullptr) {
    note_degraded();
    co_return;
  }
  sim::Engine& eng = cluster_.engine();
  const SimTime t0 = eng.now();
  sim::TraceSpan span(cluster_.observer().trace,
                      "redundancy/rank" + std::to_string(rank),
                      "parity_encode", eng);
  const auto work = static_cast<SimDuration>(
      opts_.xor_ns_per_byte * static_cast<double>((k - 1) * seg.device_bytes));
  if (opts_.scheme == Scheme::kXorTarget) {
    // Target-side fold (DESIGN.md "Offload pipeline"): the NVMe-oF target
    // holding this member's parity segment XORs the survivors'
    // already-landed data itself. The host ships no parity bytes; the
    // only fabric traffic is an east-west digest-word exchange from the
    // other members' primary targets, and the fold's CPU lands on the
    // parity target's compute pool instead of the member's host core.
    const fabric::NodeId parity_node =
        plan_.assignment.ssd_nodes[plan_.assignment.ssd_of_rank[rank]];
    nvmf::NvmfTarget& pt =
        cluster_.target(cluster_.storage_ssd_index(parity_node));
    if (!pt.alive(eng.now())) {
      note_degraded();
      co_return;
    }
    for (uint32_t i = 0; i < members.size(); ++i) {
      if (i == my) continue;
      Status ts = co_await cluster_.network().try_transfer(
          plan_.primary_node_of_rank[members[i]], parity_node,
          t_words * sizeof(uint64_t));
      if (!ts.ok()) {
        note_degraded();
        co_return;
      }
    }
    sim::ProfileTagScope tag_scope(eng, pt.offload_tag());
    const SimTime fold_done = pt.reserve_compute(eng.now(), work);
    if (obs::EpochProfiler* ep = cluster_.observer().epoch) {
      ep->record(eng, obs::EpochProfiler::Phase::kTargetCompute,
                 fold_done - eng.now());
    }
    co_await eng.sleep_until(fold_done);
    if (!pt.alive(eng.now())) {
      note_degraded();
      co_return;
    }
  } else {
    // Single-core XOR over (k-1) input streams of one segment each, on
    // the member's host.
    co_await eng.delay(work);
    host_encode_ns_ += static_cast<uint64_t>(work);
  }

  co_await st.repl_mutex.lock();
  Status s = OkStatus();
  auto fd = co_await st.store_client->create(parity_path(path));
  if (!fd.ok()) {
    s = fd.status();
  } else {
    s = co_await st.store_client->write(*fd, seg.device_bytes);
    if (s.ok()) s = co_await st.store_client->fsync(*fd);
    Status cs = co_await st.store_client->close(*fd);
    if (s.ok()) s = cs;
  }
  st.repl_mutex.unlock();

  if (!s.ok()) {
    note_degraded();
    co_return;
  }
  // The file may have been unlinked while we encoded; drop the segment.
  auto fit = st.files.find(path);
  if (fit == st.files.end()) co_return;
  redundant_bytes_ += seg.device_bytes;
  if (parity_bytes_ctr_ != nullptr) parity_bytes_ctr_->add(seg.device_bytes);
  if (encode_ns_ != nullptr) {
    encode_ns_->add(static_cast<double>(cluster_.engine().now() - t0));
  }
  seg.ok = true;
  st.parity[path] = std::move(seg);
  fit->second.parity_ok = true;
}

// ---------------------------------------------------------------------------
// RedundantClient

RedundantClient::RedundantClient(
    RedundantSystem& sys, uint32_t rank,
    std::unique_ptr<baselines::StorageClient> primary)
    : sys_(sys), rank_(rank), primary_(std::move(primary)) {}

RedundantClient::~RedundantClient() {
  RedundantSystem::RankState& st = sys_.rank_state(rank_);
  if (st.client == this) st.client = nullptr;
}

sim::Task<StatusOr<int>> RedundantClient::create(const std::string& path) {
  auto fd = co_await primary_->create(path);
  if (!fd.ok()) co_return fd;
  open_[*fd] = OpenFile{path, /*writing=*/true};
  RedundantSystem::RankState& st = sys_.rank_state(rank_);
  st.files[path] = FileManifest{};
  if (sys_.opts_.scheme == Scheme::kPartner && st.store_client != nullptr) {
    st.joiner.spawn(replicate_create(sys_, rank_, path));
  }
  co_return fd;
}

sim::Task<StatusOr<int>> RedundantClient::open_read(const std::string& path) {
  auto fd = co_await primary_->open_read(path);
  if (fd.ok()) open_[*fd] = OpenFile{path, /*writing=*/false};
  co_return fd;
}

sim::Task<Status> RedundantClient::write(int fd, uint64_t len) {
  Status s = co_await primary_->write(fd, len);
  if (!s.ok()) co_return s;
  auto it = open_.find(fd);
  if (it != open_.end() && it->second.writing) {
    RedundantSystem::RankState& st = sys_.rank_state(rank_);
    auto fit = st.files.find(it->second.path);
    if (fit != st.files.end()) fit->second.bytes += len;
    if (sys_.opts_.scheme == Scheme::kPartner && st.store_client != nullptr) {
      st.joiner.spawn(replicate_write(sys_, rank_, it->second.path, len));
    }
  }
  co_return s;
}

sim::Task<Status> RedundantClient::read(int fd, uint64_t len) {
  return primary_->read(fd, len);
}

sim::Task<Status> RedundantClient::fsync(int fd) {
  Status s = co_await primary_->fsync(fd);
  auto it = open_.find(fd);
  if (it != open_.end() && it->second.writing &&
      sys_.opts_.scheme == Scheme::kPartner) {
    RedundantSystem::RankState& st = sys_.rank_state(rank_);
    if (st.store_client != nullptr) {
      st.joiner.spawn(replicate_fsync(sys_, rank_, it->second.path));
    }
    // Durability point: the checkpoint is not "synced" until the replica
    // stream caught up too (the streams overlap until here).
    (void)co_await st.joiner.join();
  }
  co_return s;
}

sim::Task<Status> RedundantClient::close(int fd) {
  auto it = open_.find(fd);
  const bool writing = it != open_.end() && it->second.writing;
  const std::string path = it != open_.end() ? it->second.path : std::string();
  open_.erase(fd);
  Status s = co_await primary_->close(fd);
  if (!writing) co_return s;

  RedundantSystem::RankState& st = sys_.rank_state(rank_);
  auto fit = st.files.find(path);
  if (fit != st.files.end()) {
    FileManifest& f = fit->second;
    f.complete = s.ok();
    f.digest = stream_digest(
        f.bytes, words_for(rank_, path, f.bytes, sys_.opts_.digest_chunk));
  }

  switch (sys_.opts_.scheme) {
    case Scheme::kNone:
      break;
    case Scheme::kPartner:
      if (st.store_client != nullptr) {
        st.joiner.spawn(replicate_close(sys_, rank_, path));
        (void)co_await st.joiner.join();
      }
      break;
    case Scheme::kXor:
    case Scheme::kXorTarget: {
      const uint32_t set = sys_.plan_.set_of_rank[rank_];
      const uint64_t seq = st.xor_seq++;
      RedundantSystem::SetProgress& sp = sys_.set_progress(set, seq);
      sp.member_paths[rank_] = path;
      if (sp.member_paths.size() == sys_.plan_.set_size) sp.done.set();
      // Encode runs in the background once the whole set has closed this
      // wave — it overlaps the application's next phase rather than
      // extending the checkpoint (quiesce() waits for stragglers).
      sys_.spawn_background(sys_.encode_parity(rank_, path, set, seq));
      break;
    }
  }
  co_return s;
}

sim::Task<Status> RedundantClient::unlink(const std::string& path) {
  Status s = co_await primary_->unlink(path);
  RedundantSystem::RankState& st = sys_.rank_state(rank_);
  if (st.store_client != nullptr) {
    if (sys_.opts_.scheme == Scheme::kPartner) {
      co_await st.repl_mutex.lock();
      auto rit = st.replica_fds.find(path);
      if (rit != st.replica_fds.end()) {
        (void)co_await st.store_client->close(rit->second);
        st.replica_fds.erase(path);
      }
      (void)co_await st.store_client->unlink(path);
      st.repl_mutex.unlock();
    } else if (is_xor(sys_.opts_.scheme) && st.parity.count(path) != 0) {
      co_await st.repl_mutex.lock();
      (void)co_await st.store_client->unlink(sys_.parity_path(path));
      st.repl_mutex.unlock();
      st.parity.erase(path);
    }
  }
  st.files.erase(path);
  co_return s;
}

// ---------------------------------------------------------------------------
// Background replication (kPartner)

sim::Task<Status> RedundantClient::replicate_create(RedundantSystem& sys,
                                                    uint32_t rank,
                                                    std::string path) {
  RedundantSystem::RankState& st = sys.rank_state(rank);
  co_await st.repl_mutex.lock();
  auto fd = co_await st.store_client->create(path);
  st.repl_mutex.unlock();
  if (!fd.ok()) {
    auto fit = st.files.find(path);
    if (fit != st.files.end() && !fit->second.replica_failed) {
      fit->second.replica_failed = true;
      sys.note_degraded();
    }
    co_return fd.status();
  }
  st.replica_fds[path] = *fd;
  co_return OkStatus();
}

sim::Task<Status> RedundantClient::replicate_write(RedundantSystem& sys,
                                                   uint32_t rank,
                                                   std::string path,
                                                   uint64_t len) {
  RedundantSystem::RankState& st = sys.rank_state(rank);
  co_await st.repl_mutex.lock();
  Status s;
  auto rit = st.replica_fds.find(path);
  if (rit == st.replica_fds.end()) {
    s = IoError("replica stream unavailable");
  } else {
    s = co_await st.store_client->write(rit->second, len);
  }
  st.repl_mutex.unlock();
  auto fit = st.files.find(path);
  if (fit != st.files.end()) {
    if (s.ok()) {
      fit->second.replica_bytes += len;
      sys.redundant_bytes_ += len;
      if (sys.replica_bytes_ctr_ != nullptr) sys.replica_bytes_ctr_->add(len);
    } else if (!fit->second.replica_failed) {
      fit->second.replica_failed = true;
      sys.note_degraded();
    }
  }
  co_return s;
}

sim::Task<Status> RedundantClient::replicate_fsync(RedundantSystem& sys,
                                                   uint32_t rank,
                                                   std::string path) {
  RedundantSystem::RankState& st = sys.rank_state(rank);
  co_await st.repl_mutex.lock();
  Status s;
  auto rit = st.replica_fds.find(path);
  if (rit == st.replica_fds.end()) {
    s = IoError("replica stream unavailable");
  } else {
    s = co_await st.store_client->fsync(rit->second);
  }
  st.repl_mutex.unlock();
  co_return s;
}

sim::Task<Status> RedundantClient::replicate_close(RedundantSystem& sys,
                                                   uint32_t rank,
                                                   std::string path) {
  RedundantSystem::RankState& st = sys.rank_state(rank);
  co_await st.repl_mutex.lock();
  Status s;
  auto rit = st.replica_fds.find(path);
  if (rit == st.replica_fds.end()) {
    s = IoError("replica stream unavailable");
  } else {
    s = co_await st.store_client->close(rit->second);
    st.replica_fds.erase(path);
  }
  st.repl_mutex.unlock();
  auto fit = st.files.find(path);
  if (fit != st.files.end()) {
    FileManifest& f = fit->second;
    f.replica_digest = stream_digest(
        f.replica_bytes,
        words_for(rank, path, f.replica_bytes, sys.opts_.digest_chunk));
    // "Byte-identical" in the sim's content model: same length, same
    // word stream, clean close on both sides.
    f.replica_ok = s.ok() && !f.replica_failed && f.complete &&
                   f.replica_digest == f.digest;
    if (!f.replica_ok && !f.replica_failed) {
      f.replica_failed = true;
      sys.note_degraded();
    }
  }
  co_return s;
}

// ---------------------------------------------------------------------------
// Deployment

StatusOr<RedundantDeployment> deploy_redundancy(
    nvmecr_rt::Cluster& cluster, nvmecr_rt::Scheduler& scheduler,
    baselines::StorageSystem& primary,
    const nvmecr_rt::JobAllocation& primary_job, const RedundancyOptions& opts,
    nvmecr_rt::RuntimeConfig store_config) {
  RedundantDeployment dep;
  NVMECR_ASSIGN_OR_RETURN(
      dep.plan,
      plan_redundancy(cluster.topology(), primary_job.assignment,
                      primary_job.rank_nodes, cluster.storage_nodes(), opts));
  const auto nranks = static_cast<uint32_t>(primary_job.rank_nodes.size());
  std::unique_ptr<nvmecr_rt::NvmecrSystem> store;
  if (opts.scheme != Scheme::kNone) {
    // Partner replicas need full-size partitions; XOR parity segments
    // only ~1/(K-1), plus slack for padding and fs metadata.
    uint64_t part = primary_job.partition_bytes;
    if (is_xor(opts.scheme)) {
      const uint64_t k = std::max<uint32_t>(2, opts.xor_set_size);
      part = ceil_div(part, k - 1) + 2 * opts.digest_chunk + 64_MiB;
      // Partition slots stack back to back inside the namespace, so an
      // unaligned size would misalign every slot but the first.
      part = ceil_div(part, 1_MiB) * 1_MiB;
    }
    // kXorTarget writes parity through target-local sessions: each rank's
    // store session "runs" on the storage node that holds its parity
    // segment, so segment writes ride the network's loopback path and
    // never cross the fabric (the whole point of offloading the fold).
    std::vector<fabric::NodeId> store_rank_nodes = primary_job.rank_nodes;
    if (opts.scheme == Scheme::kXorTarget) {
      const auto& a = dep.plan.assignment;
      for (uint32_t r = 0; r < store_rank_nodes.size(); ++r) {
        store_rank_nodes[r] = a.ssd_nodes[a.ssd_of_rank[r]];
      }
    }
    NVMECR_ASSIGN_OR_RETURN(
        dep.store_job,
        scheduler.allocate_with_assignment(dep.plan.assignment,
                                           store_rank_nodes,
                                           primary_job.procs_per_node, part));
    store = std::make_unique<nvmecr_rt::NvmecrSystem>(cluster, dep.store_job,
                                                      store_config);
  }
  dep.system = std::make_unique<RedundantSystem>(
      cluster, primary, std::move(store), dep.plan, opts, nranks);
  return dep;
}

}  // namespace nvmecr::redundancy
