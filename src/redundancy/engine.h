// The redundancy engine: wraps a deployed storage system and mirrors
// every fast-tier checkpoint stream into a second failure domain,
// per the scheme (see scheme.h).
//
// Layering (one RedundantClient per rank, like the runtime itself):
//
//        application rank
//              |
//        RedundantClient ----------------.
//              | foreground              | background (overlapped)
//        primary NvmecrClient      store NvmecrClient (partner SSD)
//              |                         |
//        primary namespace         replica / parity namespace
//
// Replication is asynchronous: replica writes are spawned as engine
// tasks that ride behind the foreground write and are joined at
// fsync/close, so the checkpoint is only "done" once its redundancy
// is established — but the two streams overlap rather than serialize.
// XOR parity is encoded per erasure set once every member has closed
// its file (the SCR-style collective encode), running concurrently
// with whatever the application does next; quiesce() awaits stragglers.
//
// Content identity: the simulation carries no real payload bytes
// (microfs verifies tagged patterns device-side), so each stream is
// summarized by one 64-bit word per `digest_chunk` bytes plus a CRC64
// digest over the word stream. Parity segments store genuinely XOR'ed
// words; reconstruction re-derives the lost stream's words from the
// K-1 survivors + parity and proves byte-identity by matching the
// recorded digest. A replica is only trusted when its stream digest
// equals the primary's.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/storage_api.h"
#include "nvmecr/cluster.h"
#include "nvmecr/runtime.h"
#include "redundancy/placement.h"
#include "redundancy/scheme.h"
#include "simcore/sync.h"

namespace nvmecr::redundancy {

class RedundantClient;

/// Digest word standing in for `digest_chunk` bytes of checkpoint
/// content: deterministic in (rank, path, chunk index), the same
/// content model as the device-side tagged patterns.
uint64_t content_word(uint32_t rank, const std::string& path, uint64_t chunk);

/// CRC64 digest of a stream = (length, word sequence).
uint64_t stream_digest(uint64_t bytes, const std::vector<uint64_t>& words);

/// Bookkeeping for one fast-tier file of one rank.
struct FileManifest {
  uint64_t bytes = 0;
  uint64_t digest = 0;   // stream digest, set at close
  bool complete = false;

  // kPartner: replica stream health (replica_ok requires digest match).
  uint64_t replica_bytes = 0;
  uint64_t replica_digest = 0;
  bool replica_ok = false;
  bool replica_failed = false;  // background replication hit an error

  // kXor: this member's parity segment has been encoded + written.
  bool parity_ok = false;
};

/// One member's encoded parity segment (kXor), keyed by the member's
/// own file path.
struct ParitySegment {
  std::vector<uint64_t> words;             // P_m
  uint64_t device_bytes = 0;
  /// The erasure set's file-per-rank at encode time — decode uses this
  /// to locate the matching segment for a lost member's path.
  std::map<uint32_t, std::string> member_paths;
  bool ok = false;
};

class RedundantSystem final : public baselines::StorageSystem {
 public:
  /// `store` holds the replica/parity namespaces (placed per `plan`);
  /// null for Scheme::kNone. `primary` must outlive this system.
  RedundantSystem(nvmecr_rt::Cluster& cluster,
                  baselines::StorageSystem& primary,
                  std::unique_ptr<nvmecr_rt::NvmecrSystem> store,
                  RedundancyPlan plan, RedundancyOptions opts,
                  uint32_t nranks);
  ~RedundantSystem() override;

  std::string name() const override {
    return primary_.name() + "+" + scheme_name(opts_.scheme);
  }
  sim::Task<StatusOr<std::unique_ptr<baselines::StorageClient>>> connect(
      int rank) override;

  // Efficiency denominators stay the primary deployment's: redundancy
  // is overhead against the same hardware budget.
  uint64_t hardware_peak_write_bw() const override {
    return primary_.hardware_peak_write_bw();
  }
  uint64_t hardware_peak_read_bw() const override {
    return primary_.hardware_peak_read_bw();
  }
  std::vector<uint64_t> bytes_per_server() const override {
    return primary_.bytes_per_server();
  }
  uint64_t metadata_bytes() const override {
    return primary_.metadata_bytes() +
           (store_ != nullptr ? store_->metadata_bytes() : 0);
  }
  SimDuration kernel_time() const override {
    return primary_.kernel_time() +
           (store_ != nullptr ? store_->kernel_time() : 0);
  }

  /// Waits until no background replication/parity work is outstanding
  /// (call before injecting faults or tearing down).
  sim::Task<void> quiesce();

  const RedundancyOptions& options() const { return opts_; }
  const RedundancyPlan& plan() const { return plan_; }
  nvmecr_rt::Cluster& cluster() { return cluster_; }
  nvmecr_rt::NvmecrSystem* store() { return store_.get(); }

  /// Device bytes written to the redundancy store (replica + parity) —
  /// the write-overhead numerator of the Table-II-style comparison.
  uint64_t redundant_bytes() const { return redundant_bytes_; }
  /// Background replication/encode failures that degraded (not failed)
  /// a checkpoint.
  uint64_t degraded_files() const { return degraded_; }
  /// Host CPU burned encoding parity (kXor only; kXorTarget folds on
  /// the target's compute pool instead — see NvmfTarget::compute_busy_ns).
  uint64_t host_encode_ns() const { return host_encode_ns_; }

  /// Manifest of rank's file, nullptr when unknown.
  const FileManifest* manifest(uint32_t rank, const std::string& path) const;

 private:
  friend class RedundantClient;
  friend class Reconstructor;
  friend class RecoveryClient;

  struct RankState {
    explicit RankState(sim::Engine& e) : repl_mutex(e), joiner(e) {}
    std::unique_ptr<baselines::StorageClient> store_client;
    sim::FifoMutex repl_mutex;  // serializes ops on store_client
    sim::StatusJoiner joiner;   // foreground join point (fsync/close)
    RedundantClient* client = nullptr;  // live session, for reconstruction
    uint64_t xor_seq = 0;               // per-rank closed-file ordinal
    std::map<std::string, FileManifest> files;
    std::map<std::string, int> replica_fds;       // kPartner, open streams
    std::map<std::string, ParitySegment> parity;  // kXor
  };

  /// One checkpoint "wave" of an erasure set: members report their
  /// closed file here; the last close releases the parity encoders.
  struct SetProgress {
    explicit SetProgress(sim::Engine& e) : done(e) {}
    std::map<uint32_t, std::string> member_paths;  // rank -> path
    sim::Event done;
  };

  RankState& rank_state(uint32_t rank) { return *ranks_[rank]; }
  SetProgress& set_progress(uint32_t set, uint64_t seq);
  /// Parity file for `path` on the store namespace. Flat (slashes become
  /// underscores): microfs creates need an existing parent directory.
  std::string parity_path(const std::string& path) const {
    std::string p = "/xor";
    for (char c : path) p += c == '/' ? '_' : c;
    return p;
  }

  /// Background task: encode + write member `rank`'s parity segment for
  /// the set wave identified by (set, seq), once all members closed.
  sim::Task<void> encode_parity(uint32_t rank, std::string path,
                                uint32_t set, uint64_t seq);
  /// Wraps a background task with outstanding-count bookkeeping.
  sim::Task<void> run_background(sim::Task<void> task);
  void spawn_background(sim::Task<void> task);
  void note_degraded();

  nvmecr_rt::Cluster& cluster_;
  baselines::StorageSystem& primary_;
  std::unique_ptr<nvmecr_rt::NvmecrSystem> store_;
  RedundancyPlan plan_;
  RedundancyOptions opts_;

  std::vector<std::unique_ptr<RankState>> ranks_;
  std::map<uint64_t, std::unique_ptr<SetProgress>> set_progress_;

  uint64_t redundant_bytes_ = 0;
  uint64_t degraded_ = 0;
  uint64_t host_encode_ns_ = 0;
  int background_outstanding_ = 0;
  sim::Event background_idle_;

  // Cached metric instruments (null when observability is off).
  obs::Counter* replica_bytes_ctr_ = nullptr;
  obs::Counter* parity_bytes_ctr_ = nullptr;
  obs::Counter* degraded_ctr_ = nullptr;
  obs::Histogram* encode_ns_ = nullptr;
};

/// Per-rank client: foreground ops go to the primary runtime; the
/// redundancy stream rides behind them.
class RedundantClient final : public baselines::StorageClient {
 public:
  RedundantClient(RedundantSystem& sys, uint32_t rank,
                  std::unique_ptr<baselines::StorageClient> primary);
  ~RedundantClient() override;

  sim::Task<StatusOr<int>> create(const std::string& path) override;
  sim::Task<StatusOr<int>> open_read(const std::string& path) override;
  sim::Task<Status> write(int fd, uint64_t len) override;
  sim::Task<Status> read(int fd, uint64_t len) override;
  sim::Task<Status> fsync(int fd) override;
  sim::Task<Status> close(int fd) override;
  sim::Task<Status> unlink(const std::string& path) override;

  baselines::StorageClient& primary() { return *primary_; }
  uint32_t rank() const { return rank_; }

 private:
  struct OpenFile {
    std::string path;
    bool writing = false;
  };

  // Static (sys + rank, no `this`): replication tasks are owned by the
  // engine and must stay valid even if the client that spawned them is
  // torn down before they run.
  static sim::Task<Status> replicate_create(RedundantSystem& sys,
                                            uint32_t rank, std::string path);
  static sim::Task<Status> replicate_write(RedundantSystem& sys,
                                           uint32_t rank, std::string path,
                                           uint64_t len);
  static sim::Task<Status> replicate_fsync(RedundantSystem& sys,
                                           uint32_t rank, std::string path);
  static sim::Task<Status> replicate_close(RedundantSystem& sys,
                                           uint32_t rank, std::string path);

  RedundantSystem& sys_;
  uint32_t rank_;
  std::unique_ptr<baselines::StorageClient> primary_;
  std::map<int, OpenFile> open_;
};

/// Everything a redundant job needs, built in one call.
struct RedundantDeployment {
  RedundancyPlan plan;
  nvmecr_rt::JobAllocation store_job;  // empty for kNone
  std::unique_ptr<RedundantSystem> system;
};

/// Plans replica/parity placement against `primary_job`, carves the
/// store namespaces through the scheduler (partner: full-size
/// partitions; xor: ~1/(K-1)-size), deploys the store runtime, and
/// wires up the RedundantSystem.
StatusOr<RedundantDeployment> deploy_redundancy(
    nvmecr_rt::Cluster& cluster, nvmecr_rt::Scheduler& scheduler,
    baselines::StorageSystem& primary,
    const nvmecr_rt::JobAllocation& primary_job,
    const RedundancyOptions& opts,
    nvmecr_rt::RuntimeConfig store_config = {});

}  // namespace nvmecr::redundancy
