#include "redundancy/reconstruct.h"

#include <algorithm>

#include "simcore/profile.h"
#include "simcore/trace.h"

namespace nvmecr::redundancy {

Reconstructor::Reconstructor(RedundantSystem& system) : sys_(system) {
  if (obs::MetricsRegistry* m = sys_.cluster().observer().metrics) {
    reconstructions_ = m->counter("redundancy.reconstructions");
    read_bytes_ctr_ = m->counter("redundancy.reconstruct_read_bytes");
    reconstruct_ns_ = m->histogram("redundancy.reconstruct_ns");
  }
}

std::unique_ptr<baselines::StorageClient> Reconstructor::client(
    uint32_t rank) {
  return std::make_unique<RecoveryClient>(*this, rank);
}

const RecoveryReport* Reconstructor::find_report(
    uint32_t rank, const std::string& path) const {
  for (auto it = reports_.rbegin(); it != reports_.rend(); ++it) {
    if (it->rank == rank && it->path == path) return &*it;
  }
  return nullptr;
}

sim::Task<Status> RecoveryClient::read_all(baselines::StorageClient& c,
                                           const std::string& path,
                                           uint64_t bytes, uint64_t chunk) {
  auto fd = co_await c.open_read(path);
  if (!fd.ok()) co_return fd.status();
  Status s = OkStatus();
  uint64_t off = 0;
  while (off < bytes && s.ok()) {
    const uint64_t n = std::min(chunk, bytes - off);
    s = co_await c.read(*fd, n);
    off += n;
  }
  Status cs = co_await c.close(*fd);
  if (s.ok()) s = cs;
  co_return s;
}

sim::Task<Status> RecoveryClient::materialize_partner(const FileManifest& m,
                                                      const std::string& path,
                                                      RecoveryReport& r) {
  RedundantSystem& sys = owner_.sys_;
  if (!m.replica_ok || m.replica_digest != m.digest) {
    co_return UnavailableError("no trusted partner replica");
  }
  RedundantSystem::RankState& st = sys.rank_state(rank_);
  if (st.store_client == nullptr) {
    co_return UnavailableError("replica session gone");
  }
  co_await st.repl_mutex.lock();
  Status s = co_await read_all(*st.store_client, path, m.replica_bytes,
                               sys.options().digest_chunk);
  st.repl_mutex.unlock();
  NVMECR_CO_RETURN_IF_ERROR(s);
  r.source = RecoverySource::kPartner;
  r.bytes_read = m.replica_bytes;
  r.digest_ok = true;  // replica_ok == digest matched at close
  co_return OkStatus();
}

sim::Task<Status> RecoveryClient::decode_xor(const FileManifest& m,
                                             const std::string& path,
                                             RecoveryReport& r) {
  RedundantSystem& sys = owner_.sys_;
  const RedundancyPlan& plan = sys.plan();
  if (!is_xor(plan.scheme)) {
    co_return UnavailableError("no xor erasure sets provisioned");
  }
  const uint32_t set = plan.set_of_rank[rank_];
  const std::vector<uint32_t>& members = plan.set_members[set];
  const uint32_t k = plan.set_size;
  const uint64_t q = sys.options().digest_chunk;

  // Locate, on every survivor, the parity segment covering this wave
  // (identified by it recording `path` as the lost member's file).
  std::map<uint32_t, const ParitySegment*> segs;     // member -> segment
  std::map<uint32_t, std::string> seg_paths;         // member -> its file
  for (uint32_t mm : members) {
    if (mm == rank_) continue;
    RedundantSystem::RankState& pst = sys.rank_state(mm);
    for (const auto& [p, seg] : pst.parity) {
      auto it = seg.member_paths.find(rank_);
      if (seg.ok && it != seg.member_paths.end() && it->second == path) {
        segs[mm] = &seg;
        seg_paths[mm] = p;
        break;
      }
    }
    if (segs.count(mm) == 0) {
      co_return UnavailableError("xor parity segment missing on survivor");
    }
  }
  const std::map<uint32_t, std::string>& paths =
      segs.begin()->second->member_paths;

  // Read the K-1 survivors' files (verification read through their live
  // primary sessions) and their parity segments off the store SSDs.
  uint64_t read_bytes = 0;
  for (uint32_t mm : members) {
    if (mm == rank_) continue;
    RedundantSystem::RankState& pst = sys.rank_state(mm);
    const FileManifest* mf = sys.manifest(mm, paths.at(mm));
    if (mf == nullptr || !mf->complete) {
      co_return UnavailableError("survivor manifest incomplete");
    }
    if (pst.client == nullptr || pst.store_client == nullptr) {
      co_return UnavailableError("survivor session gone");
    }
    NVMECR_CO_RETURN_IF_ERROR(
        co_await read_all(pst.client->primary(), paths.at(mm), mf->bytes, q));
    read_bytes += mf->bytes;

    const ParitySegment& seg = *segs.at(mm);
    co_await pst.repl_mutex.lock();
    Status ps = co_await read_all(*pst.store_client,
                                  sys.parity_path(seg_paths.at(mm)),
                                  seg.device_bytes, q);
    pst.repl_mutex.unlock();
    NVMECR_CO_RETURN_IF_ERROR(ps);
    read_bytes += seg.device_bytes;
  }

  // The XOR algebra: for each of the lost member's word groups j, the
  // covering parity word lives on member (lost+1+j) mod K; XOR out the
  // other survivors' contributions to get the lost word back.
  uint32_t lost_i = 0;
  while (members[lost_i] != rank_) ++lost_i;
  uint64_t max_bytes = m.bytes;
  for (uint32_t mm : members) {
    if (mm == rank_) continue;
    max_bytes = std::max(max_bytes, sys.manifest(mm, paths.at(mm))->bytes);
  }
  const uint64_t c_max = ceil_div(max_bytes, q);
  const uint64_t t_words =
      std::max<uint64_t>(1, ceil_div(c_max, static_cast<uint64_t>(k - 1)));
  std::vector<uint64_t> words(ceil_div(m.bytes, q), 0);
  for (uint32_t j = 0; j + 1 < k; ++j) {
    const uint32_t h = (lost_i + 1 + j) % k;  // holder of group j's parity
    const ParitySegment& hseg = *segs.at(members[h]);
    for (uint64_t t = 0; t < t_words; ++t) {
      const uint64_t c = t * (k - 1) + j;
      if (c >= words.size()) continue;
      uint64_t w = t < hseg.words.size() ? hseg.words[t] : 0;
      for (uint32_t i2 = 0; i2 < members.size(); ++i2) {
        if (i2 == h || i2 == lost_i) continue;
        const uint32_t sigma2 = (h + k - i2 - 1) % k;
        const uint64_t c2 = t * (k - 1) + sigma2;
        const uint64_t ci2 =
            ceil_div(sys.manifest(members[i2], paths.at(members[i2]))->bytes,
                     q);
        if (c2 < ci2) {
          w ^= content_word(members[i2], paths.at(members[i2]), c2);
        }
      }
      words[c] = w;
    }
  }
  // Decode CPU: XOR of k-1 input streams of one segment each. With
  // target-side offload the decode runs on the lost member's store-node
  // target (the one holding its parity segment) when that target is
  // still alive; otherwise fall back to the restarting host's core.
  sim::Engine& eng = sys.cluster().engine();
  const auto decode_work = static_cast<SimDuration>(
      sys.options().xor_ns_per_byte *
      static_cast<double>((k - 1) * t_words * q));
  bool decoded_on_target = false;
  if (plan.scheme == Scheme::kXorTarget) {
    const fabric::NodeId store_node =
        plan.assignment.ssd_nodes[plan.assignment.ssd_of_rank[rank_]];
    nvmf::NvmfTarget& dt =
        sys.cluster().target(sys.cluster().storage_ssd_index(store_node));
    if (dt.alive(eng.now())) {
      sim::ProfileTagScope tag_scope(eng, dt.offload_tag());
      co_await eng.sleep_until(dt.reserve_compute(eng.now(), decode_work));
      decoded_on_target = true;
    }
  }
  if (!decoded_on_target) {
    co_await eng.delay(decode_work);
  }

  // Byte-identity proof: the rebuilt word stream must reproduce the
  // digest recorded when the lost file was closed.
  if (stream_digest(m.bytes, words) != m.digest) {
    co_return CorruptionError("xor decode digest mismatch");
  }
  r.source = RecoverySource::kXor;
  r.bytes_read = read_bytes;
  r.digest_ok = true;
  co_return OkStatus();
}

sim::Task<StatusOr<int>> RecoveryClient::open_read(const std::string& path) {
  RedundantSystem& sys = owner_.sys_;
  const FileManifest* m = sys.manifest(rank_, path);
  if (m == nullptr || !m->complete) {
    co_return NotFoundError("no manifest for " + path);
  }
  const SimTime t0 = sys.cluster().engine().now();
  sim::TraceSpan span(sys.cluster().observer().trace,
                      "redundancy/rank" + std::to_string(rank_), "reconstruct",
                      sys.cluster().engine());
  RecoveryReport r;
  r.rank = rank_;
  r.path = path;
  r.bytes = m->bytes;

  // 1. Fast tier: a full verification read through the live primary
  // session (device-side tagged-content checks catch corruption).
  Status s = UnavailableError("no live primary session");
  RedundantSystem::RankState& st = sys.rank_state(rank_);
  if (st.client != nullptr) {
    s = co_await read_all(st.client->primary(), path, m->bytes,
                          sys.options().digest_chunk);
    if (s.ok()) {
      r.source = RecoverySource::kFastTier;
      r.bytes_read = m->bytes;
      r.digest_ok = true;
    }
  }
  // 2. Partner replica.
  if (!s.ok() && sys.options().scheme == Scheme::kPartner) {
    s = co_await materialize_partner(*m, path, r);
  }
  // 3. XOR decode from the K-1 survivors.
  if (!s.ok() && is_xor(sys.options().scheme)) {
    s = co_await decode_xor(*m, path, r);
  }
  if (!s.ok()) {
    co_return IoError("fast tier lost and no redundancy source for " + path +
                      " (" + s.to_string() + ")");
  }

  r.took = sys.cluster().engine().now() - t0;
  if (r.source != RecoverySource::kFastTier) {
    if (owner_.reconstructions_ != nullptr) owner_.reconstructions_->add();
    if (owner_.read_bytes_ctr_ != nullptr) {
      owner_.read_bytes_ctr_->add(r.bytes_read);
    }
    if (owner_.reconstruct_ns_ != nullptr) {
      owner_.reconstruct_ns_->add(static_cast<double>(r.took));
    }
  }
  owner_.reports_.push_back(r);
  const int fd = next_fd_++;
  open_[fd] = OpenImage{m->bytes, 0};
  co_return fd;
}

sim::Task<Status> RecoveryClient::read(int fd, uint64_t len) {
  auto it = open_.find(fd);
  if (it == open_.end()) co_return BadFdError("recovery fd");
  // The image is DRAM-resident after materialization.
  co_await owner_.sys_.cluster().engine().delay(
      transfer_time(len, owner_.sys_.options().dram_bw));
  it->second.cursor = std::min(it->second.cursor + len, it->second.bytes);
  co_return OkStatus();
}

sim::Task<Status> RecoveryClient::close(int fd) {
  open_.erase(fd);
  co_return OkStatus();
}

sim::Task<StatusOr<int>> RecoveryClient::create(const std::string&) {
  co_return PermissionError("recovery client is read-only");
}
sim::Task<Status> RecoveryClient::write(int, uint64_t) {
  co_return PermissionError("recovery client is read-only");
}
sim::Task<Status> RecoveryClient::fsync(int) {
  co_return PermissionError("recovery client is read-only");
}
sim::Task<Status> RecoveryClient::unlink(const std::string&) {
  co_return PermissionError("recovery client is read-only");
}

}  // namespace nvmecr::redundancy
