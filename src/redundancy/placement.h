// Replica / parity placement for the redundancy engine.
//
// Placement reuses the balancer's failure-domain machinery
// (StorageBalancer::partner_domains) but solves a different problem:
// the primary assignment decides where a rank's *checkpoint data*
// lives; the redundancy plan decides where the *second copy* (partner
// replica or XOR parity segment) lives, such that no single failure
// domain holds both.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "fabric/topology.h"
#include "nvmecr/balancer.h"
#include "redundancy/scheme.h"

namespace nvmecr::redundancy {

using nvmecr_rt::BalancerAssignment;

/// Where each rank's redundant data goes, in the same shape the
/// scheduler consumes (Scheduler::allocate_with_assignment carves one
/// namespace per distinct store SSD).
struct RedundancyPlan {
  Scheme scheme = Scheme::kNone;
  uint32_t set_size = 0;  // K, kXor only

  /// Store placement: for rank r, assignment.ssd_nodes[assignment
  /// .ssd_of_rank[r]] is the SSD holding r's replica (kPartner) or r's
  /// parity segment (kXor). Empty for kNone.
  BalancerAssignment assignment;

  /// kXor: erasure-set id per rank and member ranks per set (members'
  /// primary SSDs span pairwise-distinct failure domains).
  std::vector<uint32_t> set_of_rank;
  std::vector<std::vector<uint32_t>> set_members;

  /// Primary SSD node per rank, copied from the primary assignment so
  /// downstream consumers (target-side parity encode, reconstruction)
  /// can resolve fabric endpoints without re-threading the primary job.
  std::vector<fabric::NodeId> primary_node_of_rank;
};

/// Plans redundant placement against an existing primary assignment.
///
/// kPartner invariants: a rank's replica SSD is in a different failure
/// domain than both its primary SSD and its compute node (nearest
/// eligible partner domain, least-loaded node within it).
///
/// kXor invariants: sets of exactly K ranks whose primary SSDs span K
/// distinct failure domains (requires nranks % K == 0 and at least K
/// storage domains); member m's parity segment lives in a domain
/// outside the whole set's primary domains when one exists, else in
/// m's own primary domain — either way a single domain loss destroys
/// at most one member's data share and never a parity segment needed
/// to rebuild it.
///
/// Fails with kInvalidArgument when the topology cannot satisfy the
/// scheme (e.g. a single storage rack and !opts.allow_same_domain).
StatusOr<RedundancyPlan> plan_redundancy(
    const fabric::Topology& topo, const BalancerAssignment& primary,
    const std::vector<fabric::NodeId>& rank_nodes,
    const std::vector<fabric::NodeId>& storage_nodes,
    const RedundancyOptions& opts);

}  // namespace nvmecr::redundancy
