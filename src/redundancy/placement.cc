#include "redundancy/placement.h"

#include <algorithm>
#include <map>
#include <set>

namespace nvmecr::redundancy {

using nvmecr_rt::StorageBalancer;

namespace {

/// Picks the least-loaded storage node whose failure domain is in
/// `allowed` (load = store partitions assigned so far; ties by node id).
/// Returns -1 when no candidate exists.
int pick_store_node(const fabric::Topology& topo,
                    const std::vector<fabric::NodeId>& storage_nodes,
                    const std::set<fabric::RackId>& allowed,
                    const std::map<fabric::NodeId, uint32_t>& load) {
  int best = -1;
  uint32_t best_load = UINT32_MAX;
  for (fabric::NodeId n : storage_nodes) {
    if (allowed.count(topo.failure_domain(n)) == 0) continue;
    const auto it = load.find(n);
    const uint32_t l = it == load.end() ? 0 : it->second;
    if (best < 0 || l < best_load) {
      best = static_cast<int>(n);
      best_load = l;
    }
  }
  return best;
}

/// Appends rank r -> store node n to the plan's assignment, reusing an
/// existing ssd_nodes entry for n when present.
void assign_rank(RedundancyPlan& plan, uint32_t rank, fabric::NodeId node) {
  auto& a = plan.assignment;
  uint32_t s = 0;
  for (; s < a.ssd_nodes.size(); ++s) {
    if (a.ssd_nodes[s] == node) break;
  }
  if (s == a.ssd_nodes.size()) {
    a.ssd_nodes.push_back(node);
    a.ranks_per_ssd.push_back(0);
  }
  a.ssd_of_rank[rank] = s;
  a.slot_of_rank[rank] = a.ranks_per_ssd[s]++;
}

StatusOr<RedundancyPlan> plan_partner(
    const fabric::Topology& topo, const BalancerAssignment& primary,
    const std::vector<fabric::NodeId>& rank_nodes,
    const std::vector<fabric::NodeId>& storage_nodes,
    const RedundancyOptions& opts) {
  RedundancyPlan plan;
  plan.scheme = Scheme::kPartner;
  const auto nranks = static_cast<uint32_t>(rank_nodes.size());
  plan.assignment.ssd_of_rank.resize(nranks);
  plan.assignment.slot_of_rank.resize(nranks);

  std::map<fabric::NodeId, uint32_t> load;
  for (uint32_t r = 0; r < nranks; ++r) {
    const fabric::NodeId primary_node =
        primary.ssd_nodes[primary.ssd_of_rank[r]];
    const fabric::RackId primary_domain = topo.failure_domain(primary_node);
    const fabric::RackId compute_domain = topo.failure_domain(rank_nodes[r]);

    // Nearest partner domain of the primary that is also outside the
    // rank's compute domain: losing any one domain leaves either the
    // primary copy or the replica (and, with the balancer's own
    // partner-placement, the process) intact.
    std::set<fabric::RackId> allowed;
    for (fabric::RackId d :
         StorageBalancer::partner_domains(topo, primary_domain,
                                          storage_nodes)) {
      if (d != compute_domain) allowed.insert(d);
    }
    if (allowed.empty() && opts.allow_same_domain) {
      allowed.insert(primary_domain);
    }
    int node = pick_store_node(topo, storage_nodes, allowed, load);
    if (node < 0) {
      return InvalidArgumentError(
          "partner replication needs a storage failure domain outside the "
          "primary's (ClusterSpec.storage_racks >= 2), or allow_same_domain");
    }
    // Never co-locate replica and primary on the same device, even in
    // allow_same_domain mode, unless it is the only device there is.
    if (static_cast<fabric::NodeId>(node) == primary_node &&
        storage_nodes.size() > 1) {
      std::set<fabric::RackId> all;
      for (fabric::NodeId n : storage_nodes) all.insert(topo.failure_domain(n));
      std::map<fabric::NodeId, uint32_t> shadow = load;
      shadow[primary_node] = UINT32_MAX - 1;
      node = pick_store_node(topo, storage_nodes, all, shadow);
    }
    assign_rank(plan, r, static_cast<fabric::NodeId>(node));
    ++load[static_cast<fabric::NodeId>(node)];
  }
  return plan;
}

StatusOr<RedundancyPlan> plan_xor(
    const fabric::Topology& topo, const BalancerAssignment& primary,
    const std::vector<fabric::NodeId>& rank_nodes,
    const std::vector<fabric::NodeId>& storage_nodes,
    const RedundancyOptions& opts) {
  const uint32_t k = opts.xor_set_size;
  const auto nranks = static_cast<uint32_t>(rank_nodes.size());
  if (k < 2) {
    return InvalidArgumentError("xor_set_size must be >= 2");
  }
  if (nranks % k != 0) {
    return InvalidArgumentError(
        "nranks must be a multiple of xor_set_size so every erasure set "
        "has exactly K members");
  }

  RedundancyPlan plan;
  plan.scheme = Scheme::kXor;
  plan.set_size = k;
  plan.assignment.ssd_of_rank.resize(nranks);
  plan.assignment.slot_of_rank.resize(nranks);
  plan.set_of_rank.resize(nranks);

  // Bucket ranks by their primary SSD's failure domain, then form sets
  // by drawing one rank from the K fullest buckets — members of a set
  // always span K distinct domains, so a single domain loss destroys at
  // most one member's data share.
  std::map<fabric::RackId, std::vector<uint32_t>> buckets;
  for (uint32_t r = 0; r < nranks; ++r) {
    const fabric::NodeId pnode = primary.ssd_nodes[primary.ssd_of_rank[r]];
    buckets[topo.failure_domain(pnode)].push_back(r);
  }
  if (buckets.size() < k && !opts.allow_same_domain) {
    return InvalidArgumentError(
        "xor erasure sets need at least K distinct storage failure domains "
        "(raise ClusterSpec.storage_racks or lower xor_set_size)");
  }
  for (uint32_t set = 0; set < nranks / k; ++set) {
    // K fullest buckets (ties by domain id, for determinism).
    std::vector<fabric::RackId> order;
    for (const auto& [d, ranks] : buckets) {
      if (!ranks.empty()) order.push_back(d);
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](fabric::RackId a, fabric::RackId b) {
                       return buckets[a].size() > buckets[b].size();
                     });
    std::vector<uint32_t> members;
    if (order.size() >= k) {
      for (uint32_t i = 0; i < k; ++i) {
        members.push_back(buckets[order[i]].back());
        buckets[order[i]].pop_back();
      }
    } else if (opts.allow_same_domain) {
      // Degraded mode: fill the set round-robin over whatever domains
      // remain (survives device loss, not domain loss).
      uint32_t i = 0;
      while (members.size() < k && !order.empty()) {
        fabric::RackId d = order[i % order.size()];
        if (buckets[d].empty()) {
          order.erase(order.begin() + static_cast<long>(i % order.size()));
          continue;
        }
        members.push_back(buckets[d].back());
        buckets[d].pop_back();
        ++i;
      }
    }
    if (members.size() != k) {
      return InvalidArgumentError(
          "cannot form xor erasure sets spanning distinct failure domains");
    }
    std::sort(members.begin(), members.end());
    for (uint32_t m : members) plan.set_of_rank[m] = set;
    plan.set_members.push_back(std::move(members));
  }

  // Parity placement per member: prefer a domain outside the whole
  // set's primary domains (then even a parity-domain loss costs
  // nothing); fall back to the member's OWN primary domain — safe,
  // because a loss there takes the member's data and its parity
  // segment, and the segment is recomputable from the K-1 survivors
  // while the data is covered by parity segments held elsewhere.
  std::map<fabric::NodeId, uint32_t> load;
  for (const auto& members : plan.set_members) {
    std::set<fabric::RackId> set_domains;
    for (uint32_t m : members) {
      set_domains.insert(topo.failure_domain(
          primary.ssd_nodes[primary.ssd_of_rank[m]]));
    }
    std::set<fabric::RackId> outside;
    for (fabric::NodeId n : storage_nodes) {
      const fabric::RackId d = topo.failure_domain(n);
      if (set_domains.count(d) == 0) outside.insert(d);
    }
    for (uint32_t m : members) {
      const fabric::NodeId pnode = primary.ssd_nodes[primary.ssd_of_rank[m]];
      std::set<fabric::RackId> allowed = outside;
      if (allowed.empty()) allowed.insert(topo.failure_domain(pnode));
      int node = pick_store_node(topo, storage_nodes, allowed, load);
      if (node < 0) {
        return InvalidArgumentError("no storage node for xor parity segment");
      }
      if (static_cast<fabric::NodeId>(node) == pnode &&
          storage_nodes.size() > 1) {
        std::map<fabric::NodeId, uint32_t> shadow = load;
        shadow[pnode] = UINT32_MAX - 1;
        std::set<fabric::RackId> all;
        for (fabric::NodeId n : storage_nodes) {
          all.insert(topo.failure_domain(n));
        }
        node = pick_store_node(topo, storage_nodes,
                               opts.allow_same_domain ? all : allowed, shadow);
      }
      assign_rank(plan, m, static_cast<fabric::NodeId>(node));
      ++load[static_cast<fabric::NodeId>(node)];
    }
  }
  return plan;
}

}  // namespace

StatusOr<RedundancyPlan> plan_redundancy(
    const fabric::Topology& topo, const BalancerAssignment& primary,
    const std::vector<fabric::NodeId>& rank_nodes,
    const std::vector<fabric::NodeId>& storage_nodes,
    const RedundancyOptions& opts) {
  if (rank_nodes.empty()) {
    return InvalidArgumentError("plan_redundancy: rank_nodes is empty");
  }
  if (primary.ssd_of_rank.size() != rank_nodes.size()) {
    return InvalidArgumentError(
        "plan_redundancy: primary assignment does not cover all ranks");
  }
  const auto finish = [&](RedundancyPlan plan) {
    plan.primary_node_of_rank.reserve(rank_nodes.size());
    for (uint32_t r = 0; r < rank_nodes.size(); ++r) {
      plan.primary_node_of_rank.push_back(
          primary.ssd_nodes[primary.ssd_of_rank[r]]);
    }
    return plan;
  };
  switch (opts.scheme) {
    case Scheme::kNone: {
      RedundancyPlan plan;
      plan.scheme = Scheme::kNone;
      return finish(std::move(plan));
    }
    case Scheme::kPartner: {
      NVMECR_ASSIGN_OR_RETURN(
          RedundancyPlan plan,
          plan_partner(topo, primary, rank_nodes, storage_nodes, opts));
      return finish(std::move(plan));
    }
    case Scheme::kXor:
    case Scheme::kXorTarget: {
      // Same geometry; only the encode site differs.
      NVMECR_ASSIGN_OR_RETURN(
          RedundancyPlan plan,
          plan_xor(topo, primary, rank_nodes, storage_nodes, opts));
      plan.scheme = opts.scheme;
      return finish(std::move(plan));
    }
  }
  return InvalidArgumentError("unknown redundancy scheme");
}

}  // namespace nvmecr::redundancy
