// Reconstruct-on-restart: the read side of the redundancy engine.
//
// After a failure-domain loss, a rank's fast-tier checkpoint may be
// gone (device failed) or damaged (media corruption). The Reconstructor
// hands out per-rank read-only clients whose open_read() materializes
// the requested checkpoint from the best surviving source:
//
//   1. fast tier — the primary copy, verified by reading it back;
//   2. partner replica — the full copy in the partner domain (kPartner),
//      trusted only when its stream digest matched at close;
//   3. XOR decode — re-derive the lost stream's digest words from the
//      K-1 surviving members' files plus their parity segments (kXor),
//      then check them against the manifest's CRC64 digest;
//
// and fails otherwise, at which point the restart path walks on to the
// PFS tier via MultiLevelRouter::recovery_chain(). Materialization
// charges the real device reads (survivor files + parity segments) and
// decode CPU; subsequent read()s stream the DRAM-resident image at
// RedundancyOptions::dram_bw.
//
// Reconstruction is an *online* rebuild: it reads survivors through the
// live client sessions registered with the RedundantSystem (a
// reconnect would reformat partitions — see runtime.h), so it must run
// while the surviving ranks' clients are still alive.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "redundancy/engine.h"

namespace nvmecr::redundancy {

enum class RecoverySource : uint8_t { kFastTier, kPartner, kXor };

inline const char* recovery_source_name(RecoverySource s) {
  switch (s) {
    case RecoverySource::kFastTier:
      return "fast-tier";
    case RecoverySource::kPartner:
      return "partner-replica";
    case RecoverySource::kXor:
      return "xor-decode";
  }
  return "?";
}

struct RecoveryReport {
  uint32_t rank = 0;
  std::string path;
  RecoverySource source = RecoverySource::kFastTier;
  uint64_t bytes = 0;       // checkpoint size served to the application
  uint64_t bytes_read = 0;  // device bytes read to materialize it
  bool digest_ok = false;   // stream digest matched the manifest
  SimDuration took = 0;     // open_read() materialization time
};

class Reconstructor {
 public:
  explicit Reconstructor(RedundantSystem& system);

  /// Read-only client for `rank`; plug it into
  /// MultiLevelRouter::set_reconstructed() for the fallback chain.
  std::unique_ptr<baselines::StorageClient> client(uint32_t rank);

  /// Every successful materialization, in completion order.
  const std::vector<RecoveryReport>& reports() const { return reports_; }
  /// Latest report for (rank, path); nullptr when never recovered.
  const RecoveryReport* find_report(uint32_t rank,
                                    const std::string& path) const;

 private:
  friend class RecoveryClient;

  RedundantSystem& sys_;
  std::vector<RecoveryReport> reports_;
  obs::Counter* reconstructions_ = nullptr;
  obs::Counter* read_bytes_ctr_ = nullptr;
  obs::Histogram* reconstruct_ns_ = nullptr;
};

/// One rank's restart session. Only open_read/read/close are legal.
class RecoveryClient final : public baselines::StorageClient {
 public:
  RecoveryClient(Reconstructor& owner, uint32_t rank)
      : owner_(owner), rank_(rank) {}

  sim::Task<StatusOr<int>> create(const std::string& path) override;
  sim::Task<StatusOr<int>> open_read(const std::string& path) override;
  sim::Task<Status> write(int fd, uint64_t len) override;
  sim::Task<Status> read(int fd, uint64_t len) override;
  sim::Task<Status> fsync(int fd) override;
  sim::Task<Status> close(int fd) override;
  sim::Task<Status> unlink(const std::string& path) override;

 private:
  struct OpenImage {
    uint64_t bytes = 0;
    uint64_t cursor = 0;
  };

  /// Full verification read of `path` through `c` (device-charged).
  static sim::Task<Status> read_all(baselines::StorageClient& c,
                                    const std::string& path, uint64_t bytes,
                                    uint64_t chunk);
  sim::Task<Status> materialize_partner(const FileManifest& m,
                                        const std::string& path,
                                        RecoveryReport& r);
  sim::Task<Status> decode_xor(const FileManifest& m, const std::string& path,
                               RecoveryReport& r);

  Reconstructor& owner_;
  uint32_t rank_;
  int next_fd_ = 1;
  std::map<int, OpenImage> open_;
};

}  // namespace nvmecr::redundancy
