// Redundancy schemes for fast-tier checkpoints (§III-F resilience,
// Table II trade space).
//
// The paper's balancer already places a rank's checkpoint data in a
// partner failure domain, so a single domain loss never takes out a
// process *and* its data. What it does not give is durability of the
// data itself: a fast-tier checkpoint written between PFS intervals
// simply vanishes with its domain. The redundancy engine adds the two
// classic intermediate levels between "none" and "full PFS copy"
// (SCR/JASS-style multi-level schemes):
//
//   kNone     baseline — fast-tier data has one copy; domain loss falls
//             back to the (older) PFS checkpoint.
//   kPartner  full replica of every fast-tier file on an SSD in a
//             partner failure domain (2x write volume, instant rebuild).
//   kXor      RAID-5-style parity across erasure sets of K ranks whose
//             primary SSDs span distinct failure domains; each member
//             stores a parity segment of ~1/(K-1) of its checkpoint on
//             a partner SSD. Any single member's loss is rebuilt from
//             the K-1 survivors plus the parity segments.
//   kXorTarget  same erasure geometry, but the parity fold is offloaded
//             to the NVMe-oF target holding the segment (DESIGN.md
//             "Offload pipeline"): hosts ship no parity bytes — the
//             target XORs already-landed data, paying target compute
//             plus a tiny east-west digest-word exchange, and writes
//             the segment through a target-local (loopback) session.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/units.h"

namespace nvmecr::redundancy {

using namespace nvmecr::literals;

enum class Scheme : uint8_t { kNone, kPartner, kXor, kXorTarget };

/// Both XOR variants share placement, parity algebra, and decode; they
/// differ in *where* the encode runs and what crosses the fabric.
inline bool is_xor(Scheme s) {
  return s == Scheme::kXor || s == Scheme::kXorTarget;
}

inline const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kNone:
      return "none";
    case Scheme::kPartner:
      return "partner";
    case Scheme::kXor:
      return "xor";
    case Scheme::kXorTarget:
      return "xor-target";
  }
  return "?";
}

/// Parses the --redundancy=none|partner|xor|xor-target knob.
inline std::optional<Scheme> parse_scheme(std::string_view name) {
  if (name == "none") return Scheme::kNone;
  if (name == "partner") return Scheme::kPartner;
  if (name == "xor") return Scheme::kXor;
  if (name == "xor-target") return Scheme::kXorTarget;
  return std::nullopt;
}

struct RedundancyOptions {
  Scheme scheme = Scheme::kNone;

  /// Erasure-set size K for kXor (K-1 data shares per parity share, so
  /// the write overhead is ~1/(K-1)). Needs at least K distinct storage
  /// failure domains.
  uint32_t xor_set_size = 4;

  /// Content-fingerprint granularity: one 64-bit digest word summarizes
  /// this many bytes (the simulation's stand-in for a data block; XOR
  /// parity and reconstruction operate on these words, CRC64-validated
  /// via common/crc.h).
  uint64_t digest_chunk = 4_MiB;

  /// Single-core XOR encode/decode CPU cost per input byte.
  double xor_ns_per_byte = 0.15;

  /// Bandwidth for serving a reconstructed (DRAM-buffered) checkpoint
  /// back to the restarting application.
  uint64_t dram_bw = 8_GBps;

  /// Single-rack testbeds: allow replica/parity placement inside the
  /// primary's failure domain (redundancy then only survives device —
  /// not domain — loss).
  bool allow_same_domain = false;
};

}  // namespace nvmecr::redundancy
