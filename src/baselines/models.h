// The concrete comparator systems (§IV): GlusterFS-like, OrangeFS-like,
// Crail-like, and the Lustre-like PFS used as the second checkpoint
// level. Calibration constants are chosen to land each system at the
// efficiency the paper measures on the same hardware model; the mapping
// is documented per-experiment in EXPERIMENTS.md.
#pragma once

#include "baselines/consistent_hash.h"
#include "baselines/dfs_base.h"
#include "nvmf/target.h"

namespace nvmecr::baselines {

/// GlusterFS-like: whole-file placement by consistent hashing (elastic
/// DHT), XFS bricks underneath, creates serialized through the server
/// holding the parent directory. Peaks near 84% of hardware bandwidth
/// (Figure 1) because the brick writeback pipeline is the kernel-FS
/// path; load CoV is high at low file counts (Figure 7(b)).
class GlusterFsModel final : public DfsSystem {
 public:
  GlusterFsModel(Cluster& cluster, uint32_t nranks, uint32_t procs_per_node)
      : DfsSystem(cluster, nranks, procs_per_node, brick_params(), costs()) {}

  std::string name() const override { return "GlusterFS"; }

 protected:
  std::vector<uint32_t> data_servers(const std::string& path) override {
    // GlusterFS DHT: the directory layout splits the hash space into
    // equal per-brick ranges; whole files land on one brick. The load
    // imbalance the paper measures (Figure 7(b)) is the multinomial
    // file-count variance, highest when files-per-brick is small.
    const uint64_t h = mix64(fnv1a(path.data(), path.size()));
    return {static_cast<uint32_t>(h % servers_.size())};
  }
  uint32_t dir_server(const std::string& path) override {
    // The common parent directory hashes to one brick; every create
    // serializes there (§IV-G).
    const std::string dir = parent_dir(path);
    return static_cast<uint32_t>(mix64(fnv1a(dir.data(), dir.size())) %
                                 servers_.size());
  }

 private:
  static kernelfs::LocalFsParams brick_params() {
    kernelfs::LocalFsParams p = kernelfs::LocalFsParams::xfs();
    p.writeback_bw = 2000_MBps;  // ~91% of the 2.2 GB/s device
    return p;
  }
  static DfsCosts costs() {
    DfsCosts c;
    c.client_per_op = 8_us;    // FUSE + DHT translator stack
    c.server_md_op = 70_us;    // dentry + xattr update under the lock
    c.md_fixed_bytes = 3_MiB;  // brick xattr store baseline (Table I)
    c.md_per_file_bytes = 1_KiB;
    return c;
  }
  static std::string parent_dir(const std::string& path) {
    const size_t pos = path.find_last_of('/');
    return pos == 0 || pos == std::string::npos ? "/" : path.substr(0, pos);
  }
};

/// OrangeFS-like: files striped across all servers (64 KiB stripes),
/// ext4-backed Trove storage, heavier metadata (dirents + stripe maps in
/// a per-server DB — the 2.6 GB/node of Table I). Peaks near 41% of
/// hardware bandwidth (Figure 1): the Trove/ext4 pipeline plus
/// per-stripe request overhead.
class OrangeFsModel final : public DfsSystem {
 public:
  OrangeFsModel(Cluster& cluster, uint32_t nranks, uint32_t procs_per_node)
      : DfsSystem(cluster, nranks, procs_per_node, trove_params(), costs()) {}

  std::string name() const override { return "OrangeFS"; }

 protected:
  std::vector<uint32_t> data_servers(const std::string& path) override {
    // All servers, stripe start rotated by file hash.
    const auto n = static_cast<uint32_t>(servers_.size());
    const auto start = static_cast<uint32_t>(
        mix64(fnv1a(path.data(), path.size())) % n);
    std::vector<uint32_t> order(n);
    for (uint32_t i = 0; i < n; ++i) order[i] = (start + i) % n;
    return order;
  }
  uint32_t dir_server(const std::string& path) override {
    // The common parent directory lives on one metadata server; every
    // create serializes there (§IV-G: "both must add file entries to a
    // single common directory file").
    const size_t pos = path.find_last_of('/');
    const std::string dir =
        pos == 0 || pos == std::string::npos ? "/" : path.substr(0, pos);
    return static_cast<uint32_t>(
        mix64(fnv1a(dir.data(), dir.size()) ^ 0x44495221ull) %
        servers_.size());
  }
  uint64_t stripe_unit() const override { return 64_KiB; }

 private:
  static kernelfs::LocalFsParams trove_params() {
    kernelfs::LocalFsParams p = kernelfs::LocalFsParams::ext4();
    p.writeback_bw = 950_MBps;  // Trove sync DB + ext4 journaling
    return p;
  }
  static DfsCosts costs() {
    DfsCosts c;
    c.client_per_op = 10_us;
    c.server_md_op = 170_us;       // dirent + keyval DB ops, 2 round trips
    c.md_fixed_bytes = 2300_MiB;   // Berkeley DB preallocation per server
    c.md_per_file_bytes = 900_KiB; // stripe maps + keyval pages
    return c;
  }
};

/// DeltaFS-like (§II-B: "microfs is most related to the design of
/// DeltaFS"; §IV-A: the authors could not get DeltaFS running on their
/// cluster — this model stands in): serverless, client-funded metadata
/// (no shared-directory serialization, like microfs) but a conventional
/// kernel-FS data path on the servers and no userspace NVMf. Expected
/// placement between GlusterFS and NVMe-CR: metadata scales, data plane
/// pays the POSIX stack.
class DeltaFsModel final : public DfsSystem {
 public:
  DeltaFsModel(Cluster& cluster, uint32_t nranks, uint32_t procs_per_node)
      : DfsSystem(cluster, nranks, procs_per_node, backing_params(),
                  costs()) {}

  std::string name() const override { return "DeltaFS"; }

 protected:
  std::vector<uint32_t> data_servers(const std::string& path) override {
    // Deterministic per-file placement (applications construct their own
    // namespace view; the balanced case is hash placement).
    const uint64_t h = mix64(fnv1a(path.data(), path.size()));
    return {static_cast<uint32_t>(h % servers_.size())};
  }
  uint32_t dir_server(const std::string& path) override {
    // With client-funded metadata the "directory server" is just where
    // this file's own records live — same as its data server.
    return data_servers(path)[0];
  }

 private:
  static kernelfs::LocalFsParams backing_params() {
    // DeltaFS deployments typically sit on XFS/Lustre-style backends.
    return kernelfs::LocalFsParams::xfs();
  }
  static DfsCosts costs() {
    DfsCosts c;
    c.client_per_op = 6_us;      // library call, no FUSE
    c.server_md_op = 0;          // no serialized md service
    c.serverless_metadata = true;
    c.md_fixed_bytes = 1_MiB;
    c.md_per_file_bytes = 2_KiB;  // LSM md-log records + manifests
    return c;
  }
};

/// Crail-like: SPDK/NVMf userspace data plane (same transport NVMe-CR
/// uses) but a single metadata server that every create/open/close and
/// block-group allocation must consult — the §IV-F 5-10% gap and the
/// reason multi-server runs are not supported.
class CrailModel final : public StorageSystem {
 public:
  CrailModel(Cluster& cluster, uint32_t nranks, uint32_t procs_per_node,
             uint64_t partition_bytes);
  ~CrailModel() override;

  std::string name() const override { return "Crail"; }
  sim::Task<StatusOr<std::unique_ptr<StorageClient>>> connect(
      int rank) override;

  uint64_t hardware_peak_write_bw() const override {
    return cluster_.spec().ssd.write_bw;  // single NVMe server
  }
  uint64_t hardware_peak_read_bw() const override {
    return cluster_.spec().ssd.read_bw;
  }
  std::vector<uint64_t> bytes_per_server() const override;
  uint64_t metadata_bytes() const override { return md_bytes_; }

 private:
  friend class CrailClient;

  /// Single-threaded metadata server: FIFO service, fixed cost per op.
  sim::Task<void> metadata_rpc(fabric::NodeId client);

  Cluster& cluster_;
  uint32_t nranks_;
  uint32_t procs_per_node_;
  uint64_t partition_bytes_;
  uint32_t nsid_ = 0;
  fabric::NodeId md_node_ = 0;
  sim::FifoMutex md_lock_;
  SimDuration md_service_ = 12_us;
  /// Block-group size: one metadata round trip per this many bytes
  /// written (Crail allocates storage blocks through the namenode,
  /// 1 MiB blocks).
  uint64_t alloc_group_ = 1_MiB;
  /// Datanode staging pipeline: Crail's storage tier moves data through
  /// its buffered block layer before it reaches the SPDK path, unlike
  /// NVMe-CR whose target never touches payload. Calibrated to land the
  /// §IV-F 5-10%% gap on this hardware model (see EXPERIMENTS.md).
  std::unique_ptr<sim::BandwidthResource> staging_;
  uint64_t md_bytes_ = 0;
  uint64_t next_slot_ = 0;
};

/// Lustre-like parallel filesystem (§IV-A: 4 OSS, one 12 Gb/s RAID
/// controller each) — the second checkpoint level in Table II. Kernel
/// client, single MDS, 1 MiB stripes over the OSS RAID pipes.
class LustreModel final : public StorageSystem {
 public:
  explicit LustreModel(Cluster& cluster, uint32_t procs_per_node = 28);

  std::string name() const override { return "Lustre"; }
  sim::Task<StatusOr<std::unique_ptr<StorageClient>>> connect(
      int rank) override;

  uint64_t hardware_peak_write_bw() const override {
    return cluster_.spec().pfs_servers * cluster_.spec().pfs_server_bw;
  }
  uint64_t hardware_peak_read_bw() const override {
    return hardware_peak_write_bw();
  }
  std::vector<uint64_t> bytes_per_server() const override;
  uint64_t metadata_bytes() const override { return md_bytes_; }
  SimDuration kernel_time() const override { return kernel_time_; }

 private:
  friend class LustreClient;

  Cluster& cluster_;
  uint32_t procs_per_node_;
  fabric::NodeId mds_node_;
  sim::FifoMutex mds_lock_;
  SimDuration mds_service_ = 80_us;
  std::vector<std::unique_ptr<sim::BandwidthResource>> oss_pipes_;
  std::vector<uint64_t> oss_bytes_;
  uint64_t md_bytes_ = 0;
  SimDuration kernel_time_ = 0;
  kernelfs::KernelCosts kcosts_;
};

}  // namespace nvmecr::baselines
