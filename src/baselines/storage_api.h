// Common client API every storage system under evaluation implements —
// NVMe-CR itself, the kernel filesystems, and the distributed-FS
// comparator models. The CoMD workload driver is written once against
// this surface and reruns identically over each system, which is what
// makes the efficiency/figure comparisons apples-to-apples.
//
// Semantics mirror the intercepted POSIX subset (§III-C): N-N checkpoint
// streams are created, appended with bulk payload, fsync'ed, closed, and
// later re-opened and read back (with content verification where the
// backend can provide it).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "simcore/task.h"

namespace nvmecr::baselines {

/// One process's session with a storage system.
class StorageClient {
 public:
  virtual ~StorageClient() = default;

  /// creat(2): makes (or truncates) the file, open for writing.
  virtual sim::Task<StatusOr<int>> create(const std::string& path) = 0;
  /// open(2) read-only.
  virtual sim::Task<StatusOr<int>> open_read(const std::string& path) = 0;
  /// Appends `len` bulk checkpoint bytes.
  virtual sim::Task<Status> write(int fd, uint64_t len) = 0;
  /// Reads `len` bytes at the read cursor (verifying where supported).
  virtual sim::Task<Status> read(int fd, uint64_t len) = 0;
  virtual sim::Task<Status> fsync(int fd) = 0;
  virtual sim::Task<Status> close(int fd) = 0;
  virtual sim::Task<Status> unlink(const std::string& path) = 0;
};

/// A deployed storage system: hands out per-rank clients and exposes the
/// accounting the figures need.
class StorageSystem {
 public:
  virtual ~StorageSystem() = default;

  virtual std::string name() const = 0;

  /// Establishes rank `rank`'s session. Called once per process during
  /// job initialization (the only coordinated step, §III-C).
  virtual sim::Task<StatusOr<std::unique_ptr<StorageClient>>> connect(
      int rank) = 0;

  /// Peak hardware bandwidth this deployment could theoretically deliver
  /// (denominator of the paper's efficiency metric, §IV-H).
  virtual uint64_t hardware_peak_write_bw() const = 0;
  virtual uint64_t hardware_peak_read_bw() const = 0;

  /// Bytes stored per storage server (Figure 7(b) load CoV).
  virtual std::vector<uint64_t> bytes_per_server() const = 0;

  /// Device bytes attributable to metadata (Table I).
  virtual uint64_t metadata_bytes() const = 0;

  /// Simulated time the system's clients spent inside kernel code
  /// (§IV-D); zero for pure-userspace systems.
  virtual SimDuration kernel_time() const { return 0; }

  /// Size of a target-side materialized restart image covering `path`
  /// for `rank`, or 0 when none exists and restart must replay the
  /// delta chain itself. Only offload-capable systems (delta-compaction
  /// stage) return nonzero; the default keeps every other backend on
  /// the replay path.
  virtual uint64_t restart_image_bytes(int rank, const std::string& path) {
    (void)rank;
    (void)path;
    return 0;
  }
};

}  // namespace nvmecr::baselines
