#include "baselines/dfs_base.h"

namespace nvmecr::baselines {

/// Client session: forwards ops to servers per the system's placement.
class DfsClient final : public StorageClient {
 public:
  DfsClient(DfsSystem& system, int rank, fabric::NodeId node)
      : system_(system), rank_(rank), node_(node) {}

  sim::Task<StatusOr<int>> create(const std::string& path) override {
    using Result = StatusOr<int>;
    sim::Engine& eng = system_.cluster_.engine();
    co_await eng.delay(system_.costs_.client_per_op);

    if (system_.costs_.serverless_metadata) {
      // DeltaFS-style client-funded metadata: append a record to this
      // client's own metadata log on the file's data server — parallel
      // across clients, no shared-directory critical section.
      const uint32_t ds = system_.dir_server(path);
      DfsServer& dir = *system_.servers_[ds];
      co_await system_.cluster_.network().transfer(
          node_, server_node(ds), system_.costs_.rpc_request + 160);
      Status ws = co_await append_md_log(ds);
      if (!ws.ok()) co_return Result(ws);
      dir.md_bytes += system_.costs_.md_per_file_bytes;
      ++dir.files;
      co_await system_.cluster_.network().transfer(
          server_node(ds), node_, system_.costs_.rpc_response);
    } else {
      // Namespace op: RPC to the directory server, serialized under its
      // shared-directory lock (every rank's create lands here — the
      // Figure 8(b) bottleneck).
      const uint32_t ds = system_.dir_server(path);
      DfsServer& dir = *system_.servers_[ds];
      co_await system_.cluster_.network().transfer(
          node_, server_node(ds), system_.costs_.rpc_request);
      co_await dir.dir_lock.lock();
      co_await eng.delay(system_.costs_.server_md_op);
      dir.md_bytes += system_.costs_.md_per_file_bytes;
      ++dir.files;
      dir.dir_lock.unlock();
      co_await system_.cluster_.network().transfer(
          server_node(ds), node_, system_.costs_.rpc_response);
    }

    // Create the backing object(s) on the data server(s).
    const std::vector<uint32_t> data = system_.data_servers(path);
    std::vector<int> server_fds(system_.servers_.size(), -1);
    for (uint32_t s : data) {
      auto fd = co_await system_.servers_[s]->fs.open(
          object_name(path), /*create=*/true);
      if (!fd.ok()) co_return Result(fd.status());
      server_fds[s] = *fd;
    }

    const int fd = next_fd_++;
    open_files_[fd] = OpenFile{path, data, std::move(server_fds), 0, 0};
    co_return Result(fd);
  }

  sim::Task<StatusOr<int>> open_read(const std::string& path) override {
    using Result = StatusOr<int>;
    sim::Engine& eng = system_.cluster_.engine();
    co_await eng.delay(system_.costs_.client_per_op);

    // Lookup RPC to the directory server (reads contend with creates on
    // the same metadata service).
    const uint32_t ds = system_.dir_server(path);
    DfsServer& dir = *system_.servers_[ds];
    co_await system_.cluster_.network().transfer(
        node_, server_node(ds), system_.costs_.rpc_request);
    co_await dir.dir_lock.lock();
    co_await eng.delay(system_.costs_.server_md_op / 2);  // lookup is lighter
    dir.dir_lock.unlock();
    co_await system_.cluster_.network().transfer(
        server_node(ds), node_, system_.costs_.rpc_response);

    const std::vector<uint32_t> data = system_.data_servers(path);
    std::vector<int> server_fds(system_.servers_.size(), -1);
    for (uint32_t s : data) {
      auto fd = co_await system_.servers_[s]->fs.open(object_name(path),
                                                      /*create=*/false);
      if (!fd.ok()) co_return Result(fd.status());
      server_fds[s] = *fd;
    }
    const int fd = next_fd_++;
    open_files_[fd] = OpenFile{path, data, std::move(server_fds), 0, 0};
    co_return Result(fd);
  }

  sim::Task<Status> write(int fd, uint64_t len) override {
    auto it = open_files_.find(fd);
    if (it == open_files_.end()) co_return BadFdError();
    OpenFile& of = it->second;
    sim::Engine& eng = system_.cluster_.engine();

    // Data flows in stripe_unit pieces round-robin over the data
    // servers (one entry for whole-file placement). Per-stripe client
    // CPU is charged in aggregate and the payload moves per-server in
    // one transfer — bandwidth-exact, and it keeps the event count
    // independent of the stripe size.
    const uint64_t unit = of.servers.size() > 1
                              ? system_.stripe_unit()
                              : system_.costs_.data_chunk;
    const uint64_t stripes = ceil_div(len, unit);
    co_await eng.delay(system_.costs_.client_per_op *
                       static_cast<SimDuration>(stripes));
    for (size_t i = 0; i < of.servers.size(); ++i) {
      const uint64_t share = server_share(of.write_off, len, unit, i,
                                          of.servers.size());
      if (share == 0) continue;
      const uint32_t s = of.servers[i];
      const uint64_t stripes_s = ceil_div(share, unit);
      co_await system_.cluster_.network().transfer(
          node_, server_node(s),
          system_.costs_.rpc_request * stripes_s + share);
      Status st =
          co_await system_.servers_[s]->fs.write(of.server_fds[s], share);
      if (!st.ok()) co_return st;
      system_.servers_[s]->data_bytes += share;
      co_await system_.cluster_.network().transfer(
          server_node(s), node_, system_.costs_.rpc_response * stripes_s);
    }
    of.write_off += len;
    co_return OkStatus();
  }

  sim::Task<Status> read(int fd, uint64_t len) override {
    auto it = open_files_.find(fd);
    if (it == open_files_.end()) co_return BadFdError();
    OpenFile& of = it->second;
    sim::Engine& eng = system_.cluster_.engine();
    const uint64_t unit = of.servers.size() > 1
                              ? system_.stripe_unit()
                              : system_.costs_.data_chunk;
    const uint64_t stripes = ceil_div(len, unit);
    co_await eng.delay(system_.costs_.client_per_op *
                       static_cast<SimDuration>(stripes));
    for (size_t i = 0; i < of.servers.size(); ++i) {
      const uint64_t share =
          server_share(of.read_off, len, unit, i, of.servers.size());
      if (share == 0) continue;
      const uint32_t s = of.servers[i];
      const uint64_t stripes_s = ceil_div(share, unit);
      co_await system_.cluster_.network().transfer(
          node_, server_node(s), system_.costs_.rpc_request * stripes_s);
      Status st =
          co_await system_.servers_[s]->fs.read(of.server_fds[s], share);
      if (!st.ok()) co_return st;
      co_await system_.cluster_.network().transfer(
          server_node(s), node_,
          system_.costs_.rpc_response * stripes_s + share);
    }
    of.read_off += len;
    co_return OkStatus();
  }

  /// Bytes of [off, off+len) that land on the i-th entry of a round-
  /// robin striping over `nservers` servers with the given unit.
  static uint64_t server_share(uint64_t off, uint64_t len, uint64_t unit,
                               size_t index, size_t nservers) {
    if (nservers == 1) return index == 0 ? len : 0;
    uint64_t share = 0;
    const uint64_t first = off / unit;
    const uint64_t last = (off + len - 1) / unit;
    for (uint64_t stripe = first; stripe <= last; ++stripe) {
      if (stripe % nservers != index) continue;
      const uint64_t s_start = std::max(off, stripe * unit);
      const uint64_t s_end = std::min(off + len, (stripe + 1) * unit);
      share += s_end - s_start;
    }
    return share;
  }

  sim::Task<Status> fsync(int fd) override {
    auto it = open_files_.find(fd);
    if (it == open_files_.end()) co_return BadFdError();
    OpenFile& of = it->second;
    co_await system_.cluster_.engine().delay(system_.costs_.client_per_op);
    for (uint32_t s : of.servers) {
      co_await system_.cluster_.network().rpc(
          node_, server_node(s), system_.costs_.rpc_request,
          system_.costs_.rpc_response);
      Status st = co_await system_.servers_[s]->fs.fsync(of.server_fds[s]);
      if (!st.ok()) co_return st;
    }
    co_return OkStatus();
  }

  sim::Task<Status> close(int fd) override {
    auto it = open_files_.find(fd);
    if (it == open_files_.end()) co_return BadFdError();
    for (uint32_t s : it->second.servers) {
      Status st =
          co_await system_.servers_[s]->fs.close(it->second.server_fds[s]);
      if (!st.ok()) co_return st;
    }
    open_files_.erase(it);
    co_return OkStatus();
  }

  sim::Task<Status> unlink(const std::string& path) override {
    sim::Engine& eng = system_.cluster_.engine();
    co_await eng.delay(system_.costs_.client_per_op);
    const uint32_t ds = system_.dir_server(path);
    DfsServer& dir = *system_.servers_[ds];
    co_await system_.cluster_.network().transfer(
        node_, server_node(ds), system_.costs_.rpc_request);
    co_await dir.dir_lock.lock();
    co_await eng.delay(system_.costs_.server_md_op);
    if (dir.md_bytes >= system_.costs_.md_per_file_bytes) {
      dir.md_bytes -= system_.costs_.md_per_file_bytes;
    }
    if (dir.files > 0) --dir.files;
    dir.dir_lock.unlock();
    co_await system_.cluster_.network().transfer(
        server_node(ds), node_, system_.costs_.rpc_response);
    for (uint32_t s : system_.data_servers(path)) {
      Status st = co_await system_.servers_[s]->fs.unlink(object_name(path));
      if (!st.ok() && st.code() != ErrorCode::kNotFound) co_return st;
    }
    co_return OkStatus();
  }

 private:
  struct OpenFile {
    std::string path;
    std::vector<uint32_t> servers;   // data servers
    std::vector<int> server_fds;     // indexed by server
    uint64_t write_off = 0;
    uint64_t read_off = 0;
  };

  fabric::NodeId server_node(uint32_t s) const {
    return system_.cluster_.storage_nodes()[s];
  }

  /// Appends this client's metadata-log record through the server's
  /// kernel filesystem (DeltaFS writes its LSM-style md logs as plain
  /// files on the shared storage).
  sim::Task<Status> append_md_log(uint32_t s) {
    if (md_log_fd_ < 0) {
      auto fd = co_await system_.servers_[s]->fs.open(
          "/.mdlog.rank" + std::to_string(rank_), /*create=*/true);
      if (!fd.ok()) co_return fd.status();
      md_log_fd_ = *fd;
      md_log_server_ = s;
    }
    co_return co_await system_.servers_[md_log_server_]->fs.write(md_log_fd_,
                                                                  160);
  }
  /// Per-client object name so server-side files don't collide between
  /// ranks even for shared paths.
  std::string object_name(const std::string& path) const { return path; }

  DfsSystem& system_;
  int rank_;
  fabric::NodeId node_;
  std::map<int, OpenFile> open_files_;
  int next_fd_ = 3;
  int md_log_fd_ = -1;
  uint32_t md_log_server_ = 0;
};

DfsSystem::DfsSystem(Cluster& cluster, uint32_t nranks,
                     uint32_t procs_per_node,
                     kernelfs::LocalFsParams fs_params, DfsCosts costs)
    : cluster_(cluster),
      nranks_(nranks),
      procs_per_node_(procs_per_node),
      costs_(costs) {
  for (uint32_t s = 0; s < cluster.storage_nodes().size(); ++s) {
    hw::NvmeSsd& ssd = cluster.storage_ssd(s);
    const uint64_t size = ssd.free_capacity() / 2;
    auto nsid = ssd.create_namespace(size);
    NVMECR_CHECK(nsid.ok());
    server_nsids_.push_back(*nsid);
    servers_.push_back(std::make_unique<DfsServer>(cluster.engine(), ssd,
                                                   *nsid, fs_params));
    servers_.back()->md_bytes = costs.md_fixed_bytes;
  }
}

DfsSystem::~DfsSystem() {
  for (uint32_t s = 0; s < servers_.size(); ++s) {
    servers_[s].reset();
    (void)cluster_.storage_ssd(s).delete_namespace(server_nsids_[s]);
  }
}

sim::Task<StatusOr<std::unique_ptr<StorageClient>>> DfsSystem::connect(
    int rank) {
  using Result = StatusOr<std::unique_ptr<StorageClient>>;
  const fabric::NodeId node = cluster_.node_of_rank(
      static_cast<uint32_t>(rank), procs_per_node_);
  co_return Result(std::unique_ptr<StorageClient>(
      new DfsClient(*this, rank, node)));
}

std::vector<uint64_t> DfsSystem::bytes_per_server() const {
  // "Load (size of data stored) on each storage server" (§IV-C)
  // includes the server-resident metadata store.
  std::vector<uint64_t> out;
  for (const auto& s : servers_) out.push_back(s->data_bytes + s->md_bytes);
  return out;
}

std::vector<uint64_t> DfsSystem::metadata_bytes_per_server() const {
  std::vector<uint64_t> out;
  for (const auto& s : servers_) out.push_back(s->md_bytes);
  return out;
}

uint64_t DfsSystem::metadata_bytes() const {
  uint64_t total = 0;
  for (const auto& s : servers_) total += s->md_bytes;
  return total;
}

SimDuration DfsSystem::kernel_time() const {
  SimDuration total = 0;
  for (const auto& s : servers_) total += s->fs.kernel_time();
  return total;
}

}  // namespace nvmecr::baselines
