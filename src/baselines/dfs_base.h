// Shared chassis for the distributed-filesystem comparator models
// (OrangeFS-like, GlusterFS-like). Each storage node runs a server with
// a kernel filesystem underneath (the "multiple software layers over
// POSIX filesystems" the paper calls out, §I) plus a metadata service
// whose shared-directory critical section serializes creates (the
// Figure 8(b) effect). Placement policy and costs are the subclass's
// business.
//
// These are behavioural models calibrated to reproduce the paper's
// measured efficiencies, not reimplementations of either codebase; the
// calibration constants are documented in EXPERIMENTS.md.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/storage_api.h"
#include "kernelfs/localfs.h"
#include "nvmecr/cluster.h"
#include "simcore/sync.h"

namespace nvmecr::baselines {

using namespace nvmecr::literals;
using nvmecr_rt::Cluster;

struct DfsCosts {
  /// Client-side FUSE/libc + protocol cost per operation.
  SimDuration client_per_op = 8_us;
  /// Server metadata critical section per namespace op (under the
  /// directory lock of the server owning the parent directory).
  SimDuration server_md_op = 60_us;
  /// RPC envelope sizes.
  uint64_t rpc_request = 256;
  uint64_t rpc_response = 128;
  /// Transfer chunk for data RPCs.
  uint64_t data_chunk = 1_MiB;
  /// Fixed + per-file metadata storage charged to the owning server
  /// (Table I accounting).
  uint64_t md_fixed_bytes = 0;
  uint64_t md_per_file_bytes = 4_KiB;

  /// Serverless (client-funded) metadata, DeltaFS-style: namespace ops
  /// never serialize on a shared directory service; each client appends
  /// a record to its own metadata log on its data server instead.
  bool serverless_metadata = false;
};

/// One storage server: kernel FS over the node's SSD + a directory lock.
struct DfsServer {
  DfsServer(sim::Engine& engine, hw::NvmeSsd& ssd, uint32_t nsid,
            kernelfs::LocalFsParams params)
      : fs(engine, ssd, nsid, params), dir_lock(engine) {}
  kernelfs::LocalFs fs;
  sim::FifoMutex dir_lock;
  uint64_t data_bytes = 0;
  uint64_t md_bytes = 0;
  uint64_t files = 0;
};

class DfsSystem : public StorageSystem {
 public:
  /// Deploys one server per storage node, each owning a namespace over
  /// its whole SSD, running `fs_params` underneath.
  DfsSystem(Cluster& cluster, uint32_t nranks, uint32_t procs_per_node,
            kernelfs::LocalFsParams fs_params, DfsCosts costs);
  ~DfsSystem() override;

  sim::Task<StatusOr<std::unique_ptr<StorageClient>>> connect(
      int rank) override;

  uint64_t hardware_peak_write_bw() const override {
    return cluster_.peak_write_bw(
        static_cast<uint32_t>(servers_.size()));
  }
  uint64_t hardware_peak_read_bw() const override {
    return cluster_.peak_read_bw(static_cast<uint32_t>(servers_.size()));
  }
  std::vector<uint64_t> bytes_per_server() const override;
  uint64_t metadata_bytes() const override;
  SimDuration kernel_time() const override;

  /// Metadata bytes per server (Table I is reported per storage node).
  std::vector<uint64_t> metadata_bytes_per_server() const;

  uint32_t server_count() const { return static_cast<uint32_t>(servers_.size()); }

 protected:
  friend class DfsClient;

  /// Where a file's data goes: list of (server, share-of-bytes weight).
  /// Whole-file policies return one entry; striping returns all servers.
  virtual std::vector<uint32_t> data_servers(const std::string& path) = 0;

  /// Server owning the (shared) parent directory of `path`.
  virtual uint32_t dir_server(const std::string& path) = 0;

  /// Stripe unit when data_servers returns several entries.
  virtual uint64_t stripe_unit() const { return 64_KiB; }

  Cluster& cluster_;
  uint32_t nranks_;
  uint32_t procs_per_node_;
  DfsCosts costs_;
  std::vector<std::unique_ptr<DfsServer>> servers_;
  std::vector<uint32_t> server_nsids_;
};

}  // namespace nvmecr::baselines
