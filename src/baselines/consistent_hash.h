// Consistent hashing ring with virtual nodes — the GlusterFS-style
// placement policy (elastic hashing). The paper attributes GlusterFS's
// load imbalance at low concurrency to exactly this (§I, §IV-C, citing
// Lamping & Veach): with few files, the ring assigns markedly uneven
// shares; the variance shrinks as the file count grows.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace nvmecr::baselines {

class ConsistentHashRing {
 public:
  /// `vnodes` virtual points per server; more points = lower variance
  /// (GlusterFS's DHT is comparatively coarse, so the default is small).
  explicit ConsistentHashRing(uint32_t servers, uint32_t vnodes = 16) {
    NVMECR_CHECK(servers > 0);
    for (uint32_t s = 0; s < servers; ++s) {
      for (uint32_t v = 0; v < vnodes; ++v) {
        ring_.emplace(mix64((static_cast<uint64_t>(s) << 32) | v), s);
      }
    }
  }

  /// Server responsible for `key`.
  uint32_t place(const std::string& key) const {
    const uint64_t h = mix64(fnv1a(key.data(), key.size()));
    auto it = ring_.lower_bound(h);
    if (it == ring_.end()) it = ring_.begin();
    return it->second;
  }

  size_t points() const { return ring_.size(); }

 private:
  std::map<uint64_t, uint32_t> ring_;  // point -> server
};

}  // namespace nvmecr::baselines
