#include "baselines/models.h"

#include "hw/block_device.h"
#include "nvmf/spdk.h"

namespace nvmecr::baselines {

// ---------------------------------------------------------------------
// Crail
// ---------------------------------------------------------------------

class CrailClient final : public StorageClient {
 public:
  CrailClient(CrailModel& system, int rank, fabric::NodeId node,
              std::unique_ptr<hw::BlockDevice> dev, uint64_t base,
              uint64_t length)
      : system_(system), rank_(rank), node_(node), dev_(std::move(dev)),
        base_(base), length_(length) {}

  sim::Task<StatusOr<int>> create(const std::string& path) override {
    // Namenode round trip for the create.
    co_await system_.metadata_rpc(node_);
    const int fd = next_fd_++;
    files_[fd] = File{path, 0, 0, mix64(fnv1a(path.data(), path.size()))};
    co_return StatusOr<int>(fd);
  }

  sim::Task<StatusOr<int>> open_read(const std::string& path) override {
    co_await system_.metadata_rpc(node_);
    const int fd = next_fd_++;
    files_[fd] = File{path, 0, 0, mix64(fnv1a(path.data(), path.size()))};
    co_return StatusOr<int>(fd);
  }

  sim::Task<Status> write(int fd, uint64_t len) override {
    auto it = files_.find(fd);
    if (it == files_.end()) co_return BadFdError();
    // Block allocation through the namenode, once per alloc group.
    uint64_t pos = 0;
    while (pos < len) {
      const uint64_t in_group =
          system_.alloc_group_ -
          (it->second.write_off + pos) % system_.alloc_group_;
      const uint64_t piece = std::min(len - pos, in_group);
      if ((it->second.write_off + pos) % system_.alloc_group_ == 0) {
        co_await system_.metadata_rpc(node_);
      }
      const uint64_t dev_off =
          (base_ + (it->second.write_off + pos) % length_) /
          dev_->hw_block_size() * dev_->hw_block_size();
      const uint64_t aligned =
          round_up(piece, dev_->hw_block_size());
      const auto subcmds = static_cast<uint32_t>(
          ceil_div(aligned, 64_KiB));  // Crail's fixed 64 KiB buffers
      co_await system_.staging_->transfer_fair(aligned, 1_MiB);
      Status s = co_await dev_->write_tagged_batch(
          std::min(dev_off, dev_->capacity() - aligned), aligned,
          it->second.seed, subcmds);
      if (!s.ok()) co_return s;
      pos += piece;
    }
    it->second.write_off += len;
    co_return OkStatus();
  }

  sim::Task<Status> read(int fd, uint64_t len) override {
    auto it = files_.find(fd);
    if (it == files_.end()) co_return BadFdError();
    co_await system_.metadata_rpc(node_);  // block lookup
    const uint64_t aligned = round_up(len, dev_->hw_block_size());
    const uint64_t dev_off =
        (base_ + it->second.read_off % length_) / dev_->hw_block_size() *
        dev_->hw_block_size();
    co_await system_.staging_->transfer_fair(aligned, 1_MiB);
    auto tag = co_await dev_->read_tagged_batch(
        std::min(dev_off, dev_->capacity() - aligned), aligned,
        static_cast<uint32_t>(ceil_div(aligned, 64_KiB)));
    if (!tag.ok()) co_return tag.status();
    it->second.read_off += len;
    co_return OkStatus();
  }

  sim::Task<Status> fsync(int fd) override {
    if (files_.find(fd) == files_.end()) co_return BadFdError();
    co_return co_await dev_->flush();
  }

  sim::Task<Status> close(int fd) override {
    if (files_.erase(fd) == 0) co_return BadFdError();
    co_await system_.metadata_rpc(node_);  // close updates file size
    co_return OkStatus();
  }

  sim::Task<Status> unlink(const std::string& path) override {
    (void)path;
    co_await system_.metadata_rpc(node_);
    co_return OkStatus();
  }

 private:
  struct File {
    std::string path;
    uint64_t write_off = 0;
    uint64_t read_off = 0;
    uint64_t seed = 0;
  };

  CrailModel& system_;
  int rank_;
  fabric::NodeId node_;
  std::unique_ptr<hw::BlockDevice> dev_;
  uint64_t base_;
  uint64_t length_;
  std::map<int, File> files_;
  int next_fd_ = 3;
};

CrailModel::CrailModel(Cluster& cluster, uint32_t nranks,
                       uint32_t procs_per_node, uint64_t partition_bytes)
    : cluster_(cluster),
      nranks_(nranks),
      procs_per_node_(procs_per_node),
      partition_bytes_(partition_bytes),
      md_lock_(cluster.engine()) {
  // Single NVMe server: storage node 0 hosts both data and metadata.
  md_node_ = cluster.storage_nodes().front();
  staging_ = std::make_unique<sim::BandwidthResource>(cluster.engine(),
                                                      1980_MBps);
  auto nsid = cluster.storage_ssd(0).create_namespace(
      partition_bytes * nranks);
  NVMECR_CHECK(nsid.ok());
  nsid_ = *nsid;
}

CrailModel::~CrailModel() {
  (void)cluster_.storage_ssd(0).delete_namespace(nsid_);
}

sim::Task<void> CrailModel::metadata_rpc(fabric::NodeId client) {
  co_await cluster_.network().transfer(client, md_node_, 128);
  co_await md_lock_.lock();  // single-threaded namenode
  co_await cluster_.engine().delay(md_service_);
  md_bytes_ += 256;
  md_lock_.unlock();
  co_await cluster_.network().transfer(md_node_, client, 96);
}

sim::Task<StatusOr<std::unique_ptr<StorageClient>>> CrailModel::connect(
    int rank) {
  using Result = StatusOr<std::unique_ptr<StorageClient>>;
  const fabric::NodeId node = cluster_.node_of_rank(
      static_cast<uint32_t>(rank), procs_per_node_);
  auto dev = cluster_.target(0).connect(node, nsid_);
  if (!dev.ok()) co_return Result(dev.status());
  const uint64_t slot = next_slot_++;
  co_return Result(std::unique_ptr<StorageClient>(new CrailClient(
      *this, rank, node, std::move(dev).value(), slot * partition_bytes_,
      partition_bytes_)));
}

std::vector<uint64_t> CrailModel::bytes_per_server() const {
  return {const_cast<Cluster&>(cluster_).storage_ssd(0)
              .namespace_bytes_written(nsid_)};
}

// ---------------------------------------------------------------------
// Lustre
// ---------------------------------------------------------------------

class LustreClient final : public StorageClient {
 public:
  LustreClient(LustreModel& system, int rank, fabric::NodeId node)
      : system_(system), rank_(rank), node_(node) {}

  sim::Task<StatusOr<int>> create(const std::string& path) override {
    co_await syscall_enter();
    co_await mds_op(system_.mds_service_);
    system_.md_bytes_ += 4_KiB;
    const int fd = next_fd_++;
    files_[fd] = File{path, 0, 0};
    syscall_exit();
    co_return StatusOr<int>(fd);
  }

  sim::Task<StatusOr<int>> open_read(const std::string& path) override {
    co_await syscall_enter();
    co_await mds_op(system_.mds_service_ / 2);
    const int fd = next_fd_++;
    files_[fd] = File{path, 0, 0};
    syscall_exit();
    co_return StatusOr<int>(fd);
  }

  sim::Task<Status> write(int fd, uint64_t len) override {
    auto it = files_.find(fd);
    if (it == files_.end()) co_return BadFdError();
    co_await syscall_enter();
    // 1 MiB stripes round-robin across the OSS RAID pipes; the client
    // pays the kernel block path per RPC.
    uint64_t pos = 0;
    while (pos < len) {
      const uint64_t piece = std::min<uint64_t>(1_MiB, len - pos);
      const auto oss = static_cast<uint32_t>(
          ((it->second.write_off + pos) / 1_MiB) % system_.oss_pipes_.size());
      co_await system_.cluster_.engine().delay(
          system_.kcosts_.block_layer_per_req);
      co_await system_.cluster_.network().transfer(
          node_, oss_node(oss), piece + 256);
      co_await system_.oss_pipes_[oss]->transfer(piece);
      system_.oss_bytes_[oss] += piece;
      co_await system_.cluster_.network().transfer(oss_node(oss), node_, 128);
      pos += piece;
    }
    it->second.write_off += len;
    syscall_exit();
    co_return OkStatus();
  }

  sim::Task<Status> read(int fd, uint64_t len) override {
    auto it = files_.find(fd);
    if (it == files_.end()) co_return BadFdError();
    co_await syscall_enter();
    uint64_t pos = 0;
    while (pos < len) {
      const uint64_t piece = std::min<uint64_t>(1_MiB, len - pos);
      const auto oss = static_cast<uint32_t>(
          ((it->second.read_off + pos) / 1_MiB) % system_.oss_pipes_.size());
      co_await system_.cluster_.engine().delay(
          system_.kcosts_.block_layer_per_req);
      co_await system_.cluster_.network().transfer(node_, oss_node(oss), 256);
      co_await system_.oss_pipes_[oss]->transfer(piece);
      co_await system_.cluster_.network().transfer(oss_node(oss), node_,
                                                   piece + 128);
      pos += piece;
    }
    it->second.read_off += len;
    syscall_exit();
    co_return OkStatus();
  }

  sim::Task<Status> fsync(int fd) override {
    if (files_.find(fd) == files_.end()) co_return BadFdError();
    co_await syscall_enter();
    co_await mds_op(system_.mds_service_ / 4);
    syscall_exit();
    co_return OkStatus();
  }

  sim::Task<Status> close(int fd) override {
    if (files_.erase(fd) == 0) co_return BadFdError();
    co_await syscall_enter();
    co_await mds_op(system_.mds_service_ / 4);
    syscall_exit();
    co_return OkStatus();
  }

  sim::Task<Status> unlink(const std::string& path) override {
    (void)path;
    co_await syscall_enter();
    co_await mds_op(system_.mds_service_);
    if (system_.md_bytes_ >= 4_KiB) system_.md_bytes_ -= 4_KiB;
    syscall_exit();
    co_return OkStatus();
  }

 private:
  struct File {
    std::string path;
    uint64_t write_off = 0;
    uint64_t read_off = 0;
  };

  fabric::NodeId oss_node(uint32_t oss) const {
    // OSS daemons live on the last pfs_servers storage nodes.
    const auto& nodes = system_.cluster_.storage_nodes();
    return nodes[nodes.size() - system_.oss_pipes_.size() + oss];
  }

  sim::Task<void> syscall_enter() {
    syscall_start_ = system_.cluster_.engine().now();
    co_await system_.cluster_.engine().delay(system_.kcosts_.syscall_trap +
                                             system_.kcosts_.vfs_per_op);
  }
  void syscall_exit() {
    system_.kernel_time_ +=
        system_.cluster_.engine().now() - syscall_start_;
  }

  sim::Task<void> mds_op(SimDuration service) {
    co_await system_.cluster_.network().transfer(node_, system_.mds_node_,
                                                 256);
    co_await system_.mds_lock_.lock();
    co_await system_.cluster_.engine().delay(service);
    system_.mds_lock_.unlock();
    co_await system_.cluster_.network().transfer(system_.mds_node_, node_,
                                                 128);
  }

  LustreModel& system_;
  int rank_;
  fabric::NodeId node_;
  std::map<int, File> files_;
  int next_fd_ = 3;
  SimTime syscall_start_ = 0;
};

LustreModel::LustreModel(Cluster& cluster, uint32_t procs_per_node)
    : cluster_(cluster),
      procs_per_node_(procs_per_node),
      mds_node_(cluster.storage_nodes().front()),
      mds_lock_(cluster.engine()) {
  oss_bytes_.assign(cluster.spec().pfs_servers, 0);
  for (uint32_t i = 0; i < cluster.spec().pfs_servers; ++i) {
    oss_pipes_.push_back(std::make_unique<sim::BandwidthResource>(
        cluster.engine(), cluster.spec().pfs_server_bw));
  }
}

sim::Task<StatusOr<std::unique_ptr<StorageClient>>> LustreModel::connect(
    int rank) {
  using Result = StatusOr<std::unique_ptr<StorageClient>>;
  const fabric::NodeId node = cluster_.node_of_rank(
      static_cast<uint32_t>(rank), procs_per_node_);
  co_return Result(std::unique_ptr<StorageClient>(
      new LustreClient(*this, rank, node)));
}

std::vector<uint64_t> LustreModel::bytes_per_server() const {
  return oss_bytes_;
}

}  // namespace nvmecr::baselines
