// Application workload family (DESIGN.md §16).
//
// The paper evaluates NVMe-CR against CoMD-style checkpoint streams
// only; the miniFE/NPB checkpoint exemplars set a stronger bar — a
// restarted run must *reproduce the same residual* and pass
// verification, not merely land bytes on flash. This module provides
// the application side of that bar: small deterministic solver states
// (one per rank) whose per-epoch evolution couples all ranks through
// global reductions, so any restore corruption anywhere perturbs every
// rank's digest and every subsequent residual.
//
// Three shapes, sharing one epoch protocol:
//   * miniFE-CG  — conjugate-gradient solve over a per-rank SPD
//     tridiagonal block; large static mesh (matrix + rhs, regenerated
//     from the seed, never serialized) and small dynamic vectors
//     (x, r, p and the global rho scalar). Residual = ||r||.
//   * NPB-SP     — time-stepped stencil: uniform per-step diffusion
//     update plus relaxation toward the global mean. Residual = RMS of
//     the per-step delta.
//   * CoMD       — particle positions/velocities under anchored springs
//     with a global kinetic-energy thermostat. Residual = RMS radius.
//
// The epoch protocol is exactly two global sum-reductions (what
// minimpi::Comm::allreduce_sum provides):
//
//   l1 = state.compute(epoch)        // local phase-1 contribution
//   g1 = allreduce_sum(l1)
//   l2 = state.fold(epoch, g1)       // apply g1, local phase-2 term
//   g2 = allreduce_sum(l2)
//   res = state.finish(epoch, g2)    // apply g2 -> epoch residual
//
// All arithmetic is plain IEEE double +,*,/,sqrt in a fixed order, so
// the residual stream and the serialized state are bit-reproducible:
// the digest contract is CRC64 over the serialized dynamic state,
// seeded per rank, and restart verification is digest equality plus
// residual-at-epoch-N bit-equality against an uninterrupted golden run.
//
// The registry below replaces the old ComdParams-only ProxyAppPreset
// table: every app (the three modeled shapes plus the ECP profile-only
// presets mapped onto them) is selected by name, carries its IO/compute
// profile, and can mint per-rank solver states.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "workloads/comd.h"

namespace nvmecr::workloads {

using namespace nvmecr::literals;

/// One rank's share of an application's solution state. Construction is
/// deterministic in (rank, nranks, seed, elems); the dynamic part round-
/// trips through serialize/deserialize and is fingerprinted by digest().
class AppRankState {
 public:
  virtual ~AppRankState() = default;

  /// Phase 1 of epoch `epoch`: advance local state, return this rank's
  /// contribution to the first global sum.
  virtual double compute(uint32_t epoch) = 0;
  /// Phase 2: apply the first global sum, return the contribution to
  /// the second.
  virtual double fold(uint32_t epoch, double global1) = 0;
  /// Epoch end: apply the second global sum, return the epoch residual
  /// (identical on every rank — it is a function of global scalars).
  virtual double finish(uint32_t epoch, double global2) = 0;

  /// Appends the dynamic state (checkpoint image) to `out`.
  virtual void serialize(std::vector<std::byte>& out) const = 0;
  /// Restores the dynamic state from a serialize() image.
  virtual Status deserialize(std::span<const std::byte> image) = 0;

  /// CRC64 over the serialized dynamic state, seeded per rank.
  uint64_t digest() const;
  uint64_t digest_seed() const { return digest_seed_; }

 protected:
  explicit AppRankState(uint64_t digest_seed) : digest_seed_(digest_seed) {}

 private:
  uint64_t digest_seed_;
};

/// The modeled state-evolution shapes. ECP presets without a dedicated
/// model reuse the closest shape (solver / stencil / particles) with
/// their own IO + duty-cycle profile.
enum class AppKind : uint8_t { kComd, kCg, kSp };

/// Registry entry: name, modeled shape, and the §IV-A IO/compute
/// profile (state per rank, dump granularity, timestep duty cycle,
/// load jitter) that sizes the simulated checkpoint streams.
struct AppSpec {
  const char* name;
  AppKind kind;
  uint64_t bytes_per_rank;         // serialized state per checkpoint
  uint64_t io_chunk;               // dump stream granularity
  SimDuration compute_per_period;  // timestepping between checkpoints
  double jitter;                   // load imbalance across ranks
};

/// Every registered application, modeled shapes first (CoMD, miniFE-CG,
/// NPB-SP — the restart-verification trio), then the remaining ECP
/// proxy-suite profiles (§IV-A: AMG, Ember, ExaMiniMD, miniAMR).
const std::vector<AppSpec>& app_registry();

/// Lookup by name (exact match); nullptr when unknown.
const AppSpec* find_app(std::string_view name);

/// Mints rank `rank`'s solver state for `spec`'s shape. `elems` is the
/// dynamic problem size per rank in doubles — the *real* computed state,
/// deliberately decoupled from the simulated checkpoint size
/// (spec.bytes_per_rank), which models the full serialized image.
std::unique_ptr<AppRankState> make_rank_state(const AppSpec& spec,
                                              uint32_t rank, uint32_t nranks,
                                              uint64_t seed, uint32_t elems);

/// ComdParams (IO sizes, duty cycle) for `spec` at the given scale —
/// the same numbers the old params_from_preset produced.
ComdParams io_params_for(const AppSpec& spec, uint32_t nranks);

}  // namespace nvmecr::workloads
