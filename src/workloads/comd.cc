#include "workloads/comd.h"

#include <algorithm>
#include <utility>

#include "common/rng.h"
#include "obs/profile.h"
#include "simcore/event.h"
#include "simcore/profile.h"
#include "simcore/sync.h"

namespace nvmecr::workloads {

namespace {

std::string checkpoint_path(uint32_t step, uint32_t rank) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "/comd.step%04u.rank%05u.ckpt", step, rank);
  return buf;
}

/// Shared state of one job run: phase clocks recorded by rank 0 between
/// barriers, error capture from any rank.
struct RunState {
  explicit RunState(sim::Engine& engine, uint32_t nranks)
      : barrier(engine, static_cast<int>(nranks)),
        rank_ckpt_io(nranks, 0),
        rank_recovery_io(nranks, 0),
        rank_recovery_bytes(nranks, 0) {}
  sim::Barrier barrier;
  Status first_error;
  std::vector<SimTime> phase_marks;
  std::vector<SimDuration> rank_ckpt_io;      // fast-tier only
  std::vector<SimDuration> rank_recovery_io;
  std::vector<uint64_t> rank_recovery_bytes;  // actual restart reads
  Samples create_latency;  // ns, all ranks (single-threaded engine)
  Samples write_latency;

  void record_error(const Status& s) {
    if (first_error.ok() && !s.ok()) first_error = s;
  }
};

/// One rank's life: connect, then per period [compute, barrier,
/// checkpoint, barrier], then the restart phase.
sim::Task<void> rank_task(nvmecr_rt::Cluster& cluster,
                          baselines::StorageSystem& system,
                          baselines::StorageSystem* pfs,
                          uint32_t pfs_interval, ComdParams params,
                          uint32_t rank, RunState& state) {
  sim::Engine& eng = cluster.engine();
  Rng rng(0xC03D ^ (static_cast<uint64_t>(rank) << 20));

  // Dispatch/epoch attribution. The rank scope stamps this rank into the
  // engine's profile context once; every event this coroutine chain
  // schedules captures it, and each dispatch restores it, so deep layers
  // (microfs/nvmf/hw) can decode the rank from the context. Barrier
  // wakeups are the exception — they are scheduled by the last-arriving
  // rank — so barrier waits and compression CPU are recorded with the
  // explicit rank below, and the barrier tag scope's destructor (which
  // runs after the resume) restores this rank's context. All of this is
  // inert (tags 0, hooks off) when no profiler is installed.
  obs::EpochProfiler* const ep = cluster.observer().epoch;
  sim::ProfileRankScope rank_scope(eng, rank);
  const uint16_t tag_compute = eng.profile_tag("comd/compute");
  const uint16_t tag_barrier = eng.profile_tag("comd/barrier");

  auto client_or = co_await system.connect(static_cast<int>(rank));
  if (!client_or.ok()) {
    state.record_error(client_or.status());
    co_return;
  }
  auto client = std::move(client_or).value();
  std::unique_ptr<baselines::StorageClient> pfs_client;
  if (pfs != nullptr) {
    auto p = co_await pfs->connect(static_cast<int>(rank));
    if (!p.ok()) {
      state.record_error(p.status());
      co_return;
    }
    pfs_client = std::move(p).value();
  }
  nvmecr_rt::MultiLevelPolicy policy(pfs_interval);

  // Setup complete; everyone starts the timestep loop together. (Not
  // recorded as barrier time: it measures connect skew, not BSP waits.)
  {
    sim::ProfileTagScope barrier_scope(eng, tag_barrier);
    co_await state.barrier.arrive_and_wait();
  }
  if (rank == 0) state.phase_marks.push_back(eng.now());

  const uint64_t full_body = params.atoms_per_rank * params.bytes_per_atom;
  for (uint32_t step = 0; step < params.checkpoints; ++step) {
    if (ep != nullptr) ep->set_rank_epoch(rank, step);
    // Incremental checkpointing: later checkpoints dump only the dirty
    // fraction of the atom data.
    const uint64_t body =
        step == 0 ? full_body
                  : static_cast<uint64_t>(static_cast<double>(full_body) *
                                          params.incremental_fraction);
    // Compute phase (BSP: the barrier at the end models the halo
    // exchange synchronization).
    const double jitter = rng.jitter(params.compute_jitter);
    {
      sim::ProfileTagScope compute_scope(eng, tag_compute);
      co_await eng.delay(static_cast<SimDuration>(
          static_cast<double>(params.compute_per_period) * jitter));
    }
    {
      const SimTime b0 = eng.now();
      sim::ProfileTagScope barrier_scope(eng, tag_barrier);
      co_await state.barrier.arrive_and_wait();
      if (ep != nullptr) {
        ep->record_rank(rank, step, obs::EpochProfiler::Phase::kBarrier,
                        eng.now() - b0);
      }
    }
    if (rank == 0) state.phase_marks.push_back(eng.now());

    // Checkpoint phase (N-N: one private file per rank).
    const bool on_pfs =
        pfs_client != nullptr && policy.is_pfs_checkpoint(step);
    baselines::StorageClient& target = on_pfs ? *pfs_client : *client;
    const SimTime io_start = eng.now();
    const std::string path = checkpoint_path(step, rank);
    auto fd = co_await target.create(path);
    if (!fd.ok()) {
      state.record_error(fd.status());
      co_return;
    }
    state.create_latency.add(static_cast<double>(eng.now() - io_start));
    Status s = co_await target.write(*fd, params.header_bytes);
    uint64_t written = 0;
    while (s.ok() && written < body) {
      const uint64_t piece = std::min(params.io_chunk, body - written);
      if (params.compression_ratio > 1.0) {
        // Compress the chunk (CPU) before shipping the smaller payload.
        const SimDuration comp = static_cast<SimDuration>(
            params.compression_ns_per_byte * static_cast<double>(piece));
        co_await eng.delay(comp);
        if (ep != nullptr) {
          ep->record_rank(rank, step, obs::EpochProfiler::Phase::kSerialize,
                          comp);
        }
      }
      const uint64_t wire =
          params.compression_ratio > 1.0
              ? static_cast<uint64_t>(static_cast<double>(piece) /
                                      params.compression_ratio)
              : piece;
      const SimTime w0 = eng.now();
      s = co_await target.write(*fd, std::max<uint64_t>(wire, 1));
      state.write_latency.add(static_cast<double>(eng.now() - w0));
      written += piece;
    }
    if (s.ok()) s = co_await target.fsync(*fd);
    if (s.ok()) s = co_await target.close(*fd);
    if (!on_pfs) state.rank_ckpt_io[rank] += eng.now() - io_start;
    // Retire checkpoints beyond the retention window (same tier).
    if (s.ok() && step + 1 > params.keep_last) {
      const uint32_t old_step = step - params.keep_last;
      const bool old_on_pfs =
          pfs_client != nullptr && policy.is_pfs_checkpoint(old_step);
      baselines::StorageClient& old_tier =
          old_on_pfs ? *pfs_client : *client;
      s = co_await old_tier.unlink(checkpoint_path(old_step, rank));
    }
    if (!s.ok()) {
      state.record_error(s);
      co_return;
    }
    {
      const SimTime b0 = eng.now();
      sim::ProfileTagScope barrier_scope(eng, tag_barrier);
      co_await state.barrier.arrive_and_wait();
      if (ep != nullptr) {
        ep->record_rank(rank, step, obs::EpochProfiler::Phase::kBarrier,
                        eng.now() - b0);
      }
    }
    if (rank == 0) state.phase_marks.push_back(eng.now());
  }

  if (params.do_recovery && params.checkpoints > 0) {
    // The restart phase is its own drilldown epoch, one past the last
    // checkpoint step.
    if (ep != nullptr) ep->set_rank_epoch(rank, params.checkpoints);
    // Restart: read the newest checkpoint back (always on the tier that
    // holds it). With incremental checkpointing restart still needs the
    // full state; the legacy model charges a full restore against the
    // newest increment's size. `replay_increments` models it honestly:
    // replay the retained delta chain plus a host-side merge — unless
    // the system offers a target-side materialized image (the offload
    // pipeline's delta-compaction stage), read as one full stream.
    const uint32_t last = params.checkpoints - 1;
    const bool last_on_pfs =
        pfs_client != nullptr && policy.is_pfs_checkpoint(last);
    const uint64_t inc_body =
        params.checkpoints == 1
            ? full_body
            : static_cast<uint64_t>(static_cast<double>(full_body) *
                                    params.incremental_fraction);
    std::vector<std::pair<uint32_t, uint64_t>> plan{{last, inc_body}};
    bool merge = false;
    if (params.replay_increments && params.incremental_fraction < 1.0 &&
        params.checkpoints > 1 && !last_on_pfs) {
      const uint64_t image = system.restart_image_bytes(
          static_cast<int>(rank), checkpoint_path(last, rank));
      if (image > 0) {
        plan.back().second = image;  // one materialized full image
      } else {
        // Chain-replay the retained checkpoints oldest-to-newest.
        plan.clear();
        const uint32_t first =
            last + 1 > params.keep_last ? last + 1 - params.keep_last : 0;
        for (uint32_t old = first; old <= last; ++old) {
          plan.emplace_back(old, old == 0 ? full_body : inc_body);
        }
        merge = true;
      }
    }
    const SimTime io_start = eng.now();
    uint64_t replayed = 0;
    Status s = OkStatus();
    for (const auto& [step2, body] : plan) {
      baselines::StorageClient& tier =
          (pfs_client != nullptr && policy.is_pfs_checkpoint(step2))
              ? *pfs_client
              : *client;
      auto fd = co_await tier.open_read(checkpoint_path(step2, rank));
      if (!fd.ok()) {
        s = fd.status();
        break;
      }
      s = co_await tier.read(*fd, params.header_bytes);
      uint64_t got = 0;
      while (s.ok() && got < body) {
        const uint64_t piece = std::min(params.io_chunk, body - got);
        s = co_await tier.read(*fd, piece);
        got += piece;
      }
      if (s.ok()) s = co_await tier.close(*fd);
      if (!s.ok()) break;
      replayed += body;
      state.rank_recovery_bytes[rank] += params.header_bytes + body;
    }
    if (s.ok() && merge && params.merge_ns_per_byte > 0) {
      // Fold the replayed deltas into the restored state on the host.
      const auto mw = static_cast<SimDuration>(
          params.merge_ns_per_byte * static_cast<double>(replayed));
      co_await eng.delay(mw);
      if (ep != nullptr) {
        ep->record_rank(rank, params.checkpoints,
                        obs::EpochProfiler::Phase::kSerialize, mw);
      }
    }
    state.rank_recovery_io[rank] += eng.now() - io_start;
    if (!s.ok()) {
      state.record_error(s);
      co_return;
    }
    {
      const SimTime b0 = eng.now();
      sim::ProfileTagScope barrier_scope(eng, tag_barrier);
      co_await state.barrier.arrive_and_wait();
      if (ep != nullptr) {
        ep->record_rank(rank, params.checkpoints,
                        obs::EpochProfiler::Phase::kBarrier, eng.now() - b0);
      }
    }
    if (rank == 0) state.phase_marks.push_back(eng.now());
  }
}

namespace {
double mean_ns(const std::vector<SimDuration>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (SimDuration x : xs) sum += static_cast<double>(x);
  return sum / static_cast<double>(xs.size());
}
}  // namespace

}  // namespace

double JobMetrics::checkpoint_efficiency() const {
  const double mean_io = mean_ns(rank_ckpt_io_time);
  if (mean_io <= 0 || hw_peak_write == 0 || fast_checkpoints == 0) {
    return checkpoint_efficiency_makespan();
  }
  // Per-rank perceived bandwidth, aggregated over all ranks.
  const double rank_bytes =
      static_cast<double>(bytes_per_checkpoint) /
      static_cast<double>(rank_ckpt_io_time.size()) * fast_checkpoints;
  const double per_rank_bw = rank_bytes / (mean_io / 1e9);
  return per_rank_bw * static_cast<double>(rank_ckpt_io_time.size()) /
         static_cast<double>(hw_peak_write);
}

double JobMetrics::checkpoint_efficiency_makespan() const {
  SimDuration fast_time = 0;
  uint64_t fast_bytes = 0;
  for (size_t i = 0; i < checkpoint_times.size(); ++i) {
    if (i < checkpoint_on_pfs.size() && checkpoint_on_pfs[i]) continue;
    fast_time += checkpoint_times[i];
    fast_bytes += bytes_per_checkpoint;
  }
  if (fast_time <= 0 || hw_peak_write == 0) return 0.0;
  return bandwidth_bps(fast_bytes, fast_time) /
         static_cast<double>(hw_peak_write);
}

double JobMetrics::recovery_efficiency() const {
  const double mean_io = mean_ns(rank_recovery_io_time);
  if (mean_io > 0 && hw_peak_read > 0) {
    const double rank_bytes = static_cast<double>(recovery_bytes) /
                              static_cast<double>(rank_recovery_io_time.size());
    const double per_rank_bw = rank_bytes / (mean_io / 1e9);
    return per_rank_bw * static_cast<double>(rank_recovery_io_time.size()) /
           static_cast<double>(hw_peak_read);
  }
  if (recovery_time <= 0 || hw_peak_read == 0) return 0.0;
  return bandwidth_bps(recovery_bytes, recovery_time) /
         static_cast<double>(hw_peak_read);
}

double JobMetrics::load_cov() const {
  StreamingStats stats;
  for (uint64_t b : server_bytes) stats.add(static_cast<double>(b));
  return stats.cov();
}

StatusOr<JobMetrics> ComdDriver::run(nvmecr_rt::Cluster& cluster,
                                     baselines::StorageSystem& system,
                                     const ComdParams& params,
                                     baselines::StorageSystem* pfs,
                                     uint32_t pfs_interval) {
  sim::Engine& eng = cluster.engine();
  RunState state(eng, params.nranks);

  for (uint32_t r = 0; r < params.nranks; ++r) {
    eng.spawn(rank_task(cluster, system, pfs, pfs_interval, params, r,
                        state));
  }
  eng.run();
  cluster.export_run_metrics();
  if (!state.first_error.ok()) return state.first_error;
  NVMECR_CHECK(eng.live_roots() == 0);

  // Phase marks: start, then per checkpoint [compute_end, ckpt_end],
  // then recovery_end.
  JobMetrics m;
  const auto& marks = state.phase_marks;
  const size_t expected = 1 + 2 * params.checkpoints +
                          (params.do_recovery && params.checkpoints ? 1 : 0);
  NVMECR_CHECK(marks.size() == expected);
  nvmecr_rt::MultiLevelPolicy policy(pfs_interval);
  for (uint32_t step = 0; step < params.checkpoints; ++step) {
    const SimTime compute_end = marks[1 + 2 * step];
    const SimTime ckpt_end = marks[2 + 2 * step];
    const SimTime phase_start = marks[2 * step];
    m.compute_time += compute_end - phase_start;
    m.checkpoint_times.push_back(ckpt_end - compute_end);
    m.checkpoint_on_pfs.push_back(pfs != nullptr &&
                                  policy.is_pfs_checkpoint(step));
    m.checkpoint_time += ckpt_end - compute_end;
  }
  if (params.do_recovery && params.checkpoints > 0) {
    m.recovery_time = marks.back() - marks[marks.size() - 2];
    // Sum what the ranks actually read (replay chains and materialized
    // images make the per-rank amounts config- and runtime-dependent).
    for (uint64_t b : state.rank_recovery_bytes) m.recovery_bytes += b;
  }
  m.total_time = marks.back() - marks.front() - m.recovery_time;
  m.bytes_per_checkpoint = params.job_checkpoint_bytes();
  m.rank_ckpt_io_time = state.rank_ckpt_io;
  m.rank_recovery_io_time = state.rank_recovery_io;
  m.create_latency = std::move(state.create_latency);
  m.write_latency = std::move(state.write_latency);
  for (bool on_pfs : m.checkpoint_on_pfs) m.fast_checkpoints += !on_pfs;
  m.hw_peak_write = system.hardware_peak_write_bw();
  m.hw_peak_read = system.hardware_peak_read_bw();
  m.server_bytes = system.bytes_per_server();
  m.kernel_time = system.kernel_time();
  return m;
}

}  // namespace nvmecr::workloads
