// AppDriver: the common application driver behind restart verification
// (DESIGN.md §16).
//
// Generalizes the ComdDriver pattern — BSP epochs of compute + N-N
// checkpointing through the minimpi + runtime stack — into a driver any
// registered AppSpec runs under, with the two pieces ComdDriver never
// had:
//
//   * real application state. Each rank owns an AppRankState advanced
//     by two global reductions per epoch (minimpi::allreduce_sum); the
//     simulated checkpoint stream still carries the profile's bytes
//     (the storage API is length-only), while the *actual* serialized
//     solver state + CRC64 digest + epoch residual are recorded in a
//     per-driver CheckpointLedger, committed only when the stream's
//     close() succeeded on the device.
//
//   * kill-and-restore. run() can kill the application at a configured
//     epoch — before, in the middle of (half the stream written, fd
//     abandoned), or after its checkpoint. A kill ends the rank
//     coroutines but keeps the driver's storage sessions alive, exactly
//     modeling a process crash: memory is lost, flash is not. (Sessions
//     must survive — NvmecrClient::init() reformats the partition on
//     connect, so a reconnect would wipe the fast tier; see runtime.h
//     and the Reconstructor's online-rebuild contract.) restart() then
//     probes the newest epoch committed by *every* rank against a
//     tier-tagged restore chain (fast session / failover view /
//     XOR-reconstruction / PFS — nvmecr_rt::RestoreSource), replays the
//     checkpoint read, rebuilds the solver state from the ledger
//     snapshot, verifies its digest, and resumes compute to the end.
//
// Verification contract (verify_restart): a restored run must finish
// with every rank's state digest and every post-restore residual
// bit-identical to an uninterrupted golden run of the same spec + seed.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/storage_api.h"
#include "minimpi/comm.h"
#include "nvmecr/cluster.h"
#include "nvmecr/multilevel.h"
#include "workloads/apps.h"

namespace nvmecr::workloads {

/// Where in an epoch the application dies. Kills are global — every
/// rank stops at the same point, the way a job-wide SIGKILL lands
/// between collectives — which keeps minimpi's rendezvous balanced.
enum class KillPoint : uint8_t {
  kNone,
  kBeforeCheckpoint,  // after the epoch's compute + reductions
  kMidCheckpoint,     // half the checkpoint stream written, fd abandoned
  kAfterCheckpoint,   // checkpoint committed, then death
};

struct KillSpec {
  uint32_t epoch = 0;
  KillPoint point = KillPoint::kNone;
  bool armed() const { return point != KillPoint::kNone; }
};

const char* kill_point_name(KillPoint p);

/// What the application-layer side channel records per (rank, epoch).
/// The simulation's storage API carries no payload bytes, so the real
/// serialized solver state lives here — the stand-in for what a
/// checkpoint library would read back from the verified stream.
struct CheckpointRecord {
  uint64_t digest = 0;   // CRC64 of `snapshot`, rank-seeded
  double residual = 0.0; // epoch residual at checkpoint time
  bool on_pfs = false;   // routed to the PFS tier (multi-level policy)
  bool committed = false;  // close() succeeded; cleared on unlink
  std::vector<std::byte> snapshot;
};

class CheckpointLedger {
 public:
  CheckpointRecord& entry(uint32_t rank, uint32_t epoch) {
    return entries_[key(rank, epoch)];
  }
  const CheckpointRecord* find(uint32_t rank, uint32_t epoch) const {
    auto it = entries_.find(key(rank, epoch));
    return it == entries_.end() ? nullptr : &it->second;
  }
  CheckpointRecord* find_mutable(uint32_t rank, uint32_t epoch) {
    auto it = entries_.find(key(rank, epoch));
    return it == entries_.end() ? nullptr : &it->second;
  }
  /// Epochs committed (and still retained) by every one of `nranks`
  /// ranks, newest first — the restart candidates.
  std::vector<uint32_t> committed_epochs(uint32_t nranks) const;

 private:
  static uint64_t key(uint32_t rank, uint32_t epoch) {
    return (static_cast<uint64_t>(rank) << 32) | epoch;
  }
  std::map<uint64_t, CheckpointRecord> entries_;
};

struct AppRunParams {
  /// IO profile + schedule: nranks, epoch count (io.checkpoints), per-
  /// epoch compute + jitter, checkpoint stream sizes, retention window.
  /// (do_recovery is ignored — restart is the driver's own phase.)
  ComdParams io;
  uint64_t seed = 0x5EED;
  /// Real solver state per rank, in doubles. Deliberately independent
  /// of the simulated stream size (io profile).
  uint32_t elems = 192;
  /// Every `pfs_interval`-th checkpoint routes to the PFS system passed
  /// to the constructor (0 = fast tier only).
  uint32_t pfs_interval = 0;
  /// Hang detector (chaos campaigns): when nonzero, run()/restart() stop
  /// advancing the simulation `deadline` ns after they start. Rank
  /// coroutines still pending at the cutoff — with no typed error
  /// recorded — make the call fail with kDeadlineExceeded instead of
  /// spinning forever. The engine is poisoned after a hit (stuck frames
  /// reclaimed only by its destructor): discard the whole stack. Any
  /// background daemons sharing the engine (heartbeat/healer) must be
  /// bounded by a horizon shorter than the deadline, or they read as
  /// hung application ranks.
  SimDuration deadline = 0;
};

inline constexpr uint32_t kNoRestoreEpoch = UINT32_MAX;

struct AppRunResult {
  std::string app;
  /// Epoch residuals[0] belongs to (0 for a fresh run, restored
  /// epoch + 1 after a restart).
  uint32_t first_epoch = 0;
  std::vector<double> residuals;
  /// Final per-rank state digests and their job-level CRC64 rollup;
  /// empty/0 when the run was killed.
  std::vector<uint64_t> rank_digests;
  uint64_t job_digest = 0;
  bool killed = false;
  bool restored = false;      // produced by restart()
  bool from_initial = false;  // no committed checkpoint: restarted fresh
  uint32_t restored_epoch = kNoRestoreEpoch;
  SimDuration total_time = 0;
};

/// How restart() finds checkpoint data. Default (`chain` unset): the
/// rank's live fast-tier session, then its PFS session. Tests inject
/// failover views and reconstruction clients here. `pfs_tier` of each
/// source must match the ledger entry's placement (see
/// nvmecr_rt::RestoreSource for why probing cannot span tiers).
struct RestorePlan {
  std::function<std::vector<nvmecr_rt::RestoreSource>(uint32_t rank)> chain;
  /// Write checkpoints while resuming. Turn off when the fast tier is
  /// gone for good (e.g. restoring via XOR decode after a domain loss).
  bool resume_checkpoints = true;
};

class AppDriver {
 public:
  /// `fast` serves the fast-tier sessions; `pfs` (optional) the PFS
  /// sessions used when params.pfs_interval > 0. Both must outlive the
  /// driver. The driver connects one session per rank on first use and
  /// holds them for its lifetime — across kills and restarts.
  AppDriver(nvmecr_rt::Cluster& cluster, baselines::StorageSystem& fast,
            const AppSpec& spec, AppRunParams params,
            baselines::StorageSystem* pfs = nullptr);
  ~AppDriver();

  /// One fresh run from initial state (the golden run when `kill` is
  /// unset). With `kill` armed the returned result has killed = true
  /// and the driver retains everything restart() needs.
  StatusOr<AppRunResult> run(const KillSpec& kill = {});

  /// Restores the newest fully-committed checkpoint through `plan`'s
  /// chain, resumes compute, and runs to the end (or to the next kill,
  /// for back-to-back cycle tests). Falls back to a fresh initial-state
  /// start when no epoch was ever committed by all ranks.
  StatusOr<AppRunResult> restart(const RestorePlan& plan = {},
                                 const KillSpec& kill = {});

  const AppSpec& spec() const { return spec_; }
  const AppRunParams& params() const { return params_; }
  CheckpointLedger& ledger() { return ledger_; }
  /// Rank's live fast-tier session (nullptr before the first run).
  baselines::StorageClient* session(uint32_t rank);
  baselines::StorageClient* pfs_session(uint32_t rank);

 private:
  struct RunCtx;

  Status ensure_connected();
  sim::Task<void> connect_task(Status& out);
  sim::Task<void> probe_task(const RestorePlan& plan,
                             std::vector<nvmecr_rt::RestoreSource>& chosen,
                             uint32_t& epoch_out, bool& done);
  /// Runs the engine for the current phase: to quiescence, or — when
  /// params_.deadline is set — at most deadline ns past `started`.
  /// Returns kDeadlineExceeded if root tasks are still pending at the
  /// cutoff without a recorded typed error.
  Status run_engine_phase(SimTime started, const Status& first_error,
                          const char* phase);
  sim::Task<void> epoch_loop(uint32_t rank, uint32_t start, RunCtx& ctx);
  sim::Task<Status> write_checkpoint(uint32_t rank, uint32_t epoch,
                                     double residual, bool mid_kill);
  sim::Task<void> restore_and_resume(uint32_t rank, uint32_t epoch,
                                     nvmecr_rt::RestoreSource source,
                                     RunCtx& ctx);
  StatusOr<AppRunResult> finish_run(RunCtx& ctx);
  std::vector<nvmecr_rt::RestoreSource> default_chain(uint32_t rank);

  nvmecr_rt::Cluster& cluster_;
  baselines::StorageSystem& fast_;
  baselines::StorageSystem* pfs_;
  AppSpec spec_;
  AppRunParams params_;

  std::unique_ptr<minimpi::Comm> comm_;
  std::vector<std::unique_ptr<baselines::StorageClient>> sessions_;
  std::vector<std::unique_ptr<baselines::StorageClient>> pfs_sessions_;
  std::vector<std::unique_ptr<AppRankState>> states_;
  CheckpointLedger ledger_;
  bool connected_ = false;
};

/// Checkpoint path for (app, epoch, rank): flat (microfs creates need an
/// existing parent directory), one private file per rank per epoch.
std::string app_checkpoint_path(const AppSpec& spec, uint32_t epoch,
                                uint32_t rank);

/// Post-restore residuals must be bit-identical to the golden run's at
/// the same epochs. Works for killed runs too (prefix up to the kill).
Status verify_residuals(const AppRunResult& golden,
                        const AppRunResult& restored);

/// Full restart verification: residual bit-equality on the resumed
/// range plus per-rank and job digest equality at the end of the run.
Status verify_restart(const AppRunResult& golden,
                      const AppRunResult& restored);

}  // namespace nvmecr::workloads
