// CoMD proxy workload (§IV-A).
//
// ECP CoMD is a classical molecular-dynamics proxy app; for storage
// purposes its behaviour is: BSP timestep loop (compute phases separated
// by communication barriers) with periodic application-level N-N
// checkpointing — every rank serializes its atoms into a private file
// (header + bulk body), fsyncs, closes. Restart opens the newest
// checkpoint and reads it back. This module reproduces exactly that IO
// pattern (sizes, concurrency, sequence) against any StorageSystem and
// collects the metrics the paper's figures report: per-checkpoint times,
// efficiency (perceived bandwidth / hardware peak, §IV-H), recovery
// efficiency, application progress rate (§I footnote), and per-server
// load for the CoV figure.
#pragma once

#include <memory>
#include <vector>

#include "baselines/storage_api.h"
#include "common/stats.h"
#include "nvmecr/cluster.h"
#include "nvmecr/multilevel.h"

namespace nvmecr::workloads {

using namespace nvmecr::literals;

struct ComdParams {
  uint32_t nranks = 28;
  uint32_t procs_per_node = 28;

  /// Atoms per rank and serialized bytes per atom determine the per-rank
  /// checkpoint size. (The paper's strong-scaling section implies
  /// ~525 B/atom and its weak-scaling section ~4.8 KiB/atom; each bench
  /// sets these to match the stated totals — see DESIGN.md §4.)
  uint64_t atoms_per_rank = 32768;
  uint64_t bytes_per_atom = 4883;

  /// Periodic checkpoints per run (the paper takes 10).
  uint32_t checkpoints = 10;
  /// Compute phase between checkpoints (±jitter per rank/period).
  SimDuration compute_per_period = 2900 * kMillisecond;
  double compute_jitter = 0.03;

  /// Application write/read granularity (CoMD streams through stdio
  /// buffers) and the small header record preceding the atom dump —
  /// the misalignment source for hugeblock padding.
  uint64_t io_chunk = 4_MiB;
  uint64_t header_bytes = 256;

  /// Old checkpoints beyond this many are unlinked (bounded partitions).
  uint32_t keep_last = 2;

  /// Incremental checkpointing (§II-B, libhashckpt-style): the first
  /// checkpoint is full; later ones write only this fraction of the
  /// atom data (the dirty pages). 1.0 = every checkpoint full.
  double incremental_fraction = 1.0;

  /// Checkpoint compression (§II-B): data shrinks by this factor before
  /// it is written, at `compression_ns_per_byte` of CPU per input byte.
  /// 1.0 = off.
  double compression_ratio = 1.0;
  double compression_ns_per_byte = 0.3;  // ~3.3 GB/s single-core LZ4-class

  /// Honest incremental-restart accounting: instead of charging a full
  /// restore against the newest increment's size (the legacy shortcut),
  /// restart replays the retained delta chain — reading every kept
  /// checkpoint oldest-to-newest and paying `merge_ns_per_byte` of host
  /// CPU per replayed body byte — unless the storage system offers a
  /// target-side materialized image (StorageSystem::restart_image_bytes,
  /// the offload pipeline's delta-compaction stage), which is read as
  /// one full-size stream with no merge.
  bool replay_increments = false;
  double merge_ns_per_byte = 0.05;

  /// Run the restart phase after the checkpoint phase.
  bool do_recovery = true;

  uint64_t rank_checkpoint_bytes() const {
    return header_bytes + atoms_per_rank * bytes_per_atom;
  }
  uint64_t job_checkpoint_bytes() const {
    return rank_checkpoint_bytes() * nranks;
  }
};

struct JobMetrics {
  std::vector<SimDuration> checkpoint_times;  // barrier-to-barrier per ckpt
  std::vector<bool> checkpoint_on_pfs;
  /// Per-rank time spent inside fast-tier checkpoint IO (sum over fast
  /// checkpoints) and inside restart reads — the application-visible
  /// bandwidth the paper's efficiency metric uses (§IV-H).
  std::vector<SimDuration> rank_ckpt_io_time;
  std::vector<SimDuration> rank_recovery_io_time;
  uint32_t fast_checkpoints = 0;
  SimDuration total_time = 0;
  SimDuration compute_time = 0;   // sum of compute phases (slowest rank)
  SimDuration checkpoint_time = 0;
  SimDuration recovery_time = 0;
  uint64_t bytes_per_checkpoint = 0;
  uint64_t recovery_bytes = 0;
  uint64_t hw_peak_write = 0;
  uint64_t hw_peak_read = 0;
  /// Per-server stored bytes after the run (Figure 7(b)).
  std::vector<uint64_t> server_bytes;
  SimDuration kernel_time = 0;  // across all clients/servers
  /// Per-operation latency samples across all ranks (ns).
  Samples create_latency;
  Samples write_latency;

  /// Fast-tier checkpoint efficiency (§IV-H): the application-perceived
  /// aggregate bandwidth — per-rank bytes over the *mean* per-rank IO
  /// time — relative to the hardware peak. (Stragglers from placement
  /// imbalance lower every rank's barrier wait but not the bandwidth the
  /// application perceives while writing.)
  double checkpoint_efficiency() const;
  double recovery_efficiency() const;
  /// Conservative variant using barrier-to-barrier makespans (what the
  /// Table II wall-clock times are built from).
  double checkpoint_efficiency_makespan() const;
  /// Compute / total (§I footnote 1).
  double progress_rate() const {
    return total_time > 0
               ? static_cast<double>(compute_time) /
                     static_cast<double>(total_time)
               : 0.0;
  }
  /// Coefficient of variation of per-server load.
  double load_cov() const;
  /// Fraction of aggregate process time spent in the kernel (§IV-D).
  double kernel_fraction(uint32_t nranks) const {
    return total_time > 0 ? static_cast<double>(kernel_time) /
                                (static_cast<double>(total_time) * nranks)
                          : 0.0;
  }
};

// The ECP proxy-app presets (§IV-A: AMG, Ember, ExaMiniMD, miniAMR, ...)
// used to live here as CoMD-shaped ProxyAppPreset profiles. They moved
// into the application registry — workloads/apps.h: app_registry(),
// find_app(), io_params_for() — where each preset also carries a modeled
// state-evolution shape for restart verification.

class ComdDriver {
 public:
  /// Runs the checkpoint (and optionally restart) phases of one job on
  /// `system`. When `pfs` is non-null, every `pfs_interval`-th
  /// checkpoint routes to it (Table II's multi-level configuration).
  static StatusOr<JobMetrics> run(nvmecr_rt::Cluster& cluster,
                                  baselines::StorageSystem& system,
                                  const ComdParams& params,
                                  baselines::StorageSystem* pfs = nullptr,
                                  uint32_t pfs_interval = 0);
};

}  // namespace nvmecr::workloads
