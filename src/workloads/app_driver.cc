#include "workloads/app_driver.h"

#include <algorithm>
#include <bit>
#include <cctype>
#include <cstdio>
#include <utility>

#include "common/crc.h"
#include "common/rng.h"

namespace nvmecr::workloads {

const char* kill_point_name(KillPoint p) {
  switch (p) {
    case KillPoint::kNone:
      return "none";
    case KillPoint::kBeforeCheckpoint:
      return "before-checkpoint";
    case KillPoint::kMidCheckpoint:
      return "mid-checkpoint";
    case KillPoint::kAfterCheckpoint:
      return "after-checkpoint";
  }
  return "?";
}

std::string app_checkpoint_path(const AppSpec& spec, uint32_t epoch,
                                uint32_t rank) {
  std::string app;
  for (const char* c = spec.name; *c != '\0'; ++c) {
    const auto uc = static_cast<unsigned char>(*c);
    app += std::isalnum(uc) ? static_cast<char>(std::tolower(uc)) : '-';
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf), "/%s.e%04u.r%05u.ckpt", app.c_str(), epoch,
                rank);
  return buf;
}

std::vector<uint32_t> CheckpointLedger::committed_epochs(
    uint32_t nranks) const {
  std::map<uint32_t, uint32_t> count;
  for (const auto& [k, rec] : entries_) {
    if (rec.committed) ++count[static_cast<uint32_t>(k & 0xFFFFFFFFu)];
  }
  std::vector<uint32_t> out;
  for (auto it = count.rbegin(); it != count.rend(); ++it) {
    if (it->second == nranks) out.push_back(it->first);
  }
  return out;
}

/// Shared state of one run/restart invocation: kill configuration,
/// residuals recorded by rank 0, error capture from any rank.
struct AppDriver::RunCtx {
  KillSpec kill;
  bool checkpoints = true;
  uint32_t first_epoch = 0;
  SimTime started = 0;
  Status first_error;
  std::vector<double> residuals;
  bool killed = false;

  void record_error(const Status& s) {
    if (first_error.ok() && !s.ok()) first_error = s;
  }
};

AppDriver::AppDriver(nvmecr_rt::Cluster& cluster,
                     baselines::StorageSystem& fast, const AppSpec& spec,
                     AppRunParams params, baselines::StorageSystem* pfs)
    : cluster_(cluster),
      fast_(fast),
      pfs_(pfs),
      spec_(spec),
      params_(std::move(params)) {
  NVMECR_CHECK(params_.io.nranks > 0);
  comm_ = minimpi::Comm::world(cluster_.engine(),
                               static_cast<int>(params_.io.nranks));
}

AppDriver::~AppDriver() = default;

baselines::StorageClient* AppDriver::session(uint32_t rank) {
  return rank < sessions_.size() ? sessions_[rank].get() : nullptr;
}

baselines::StorageClient* AppDriver::pfs_session(uint32_t rank) {
  return rank < pfs_sessions_.size() ? pfs_sessions_[rank].get() : nullptr;
}

Status AppDriver::ensure_connected() {
  if (connected_) return OkStatus();
  Status out = InternalError("connect task never ran");
  cluster_.engine().run_task(connect_task(out));
  if (out.ok()) connected_ = true;
  return out;
}

sim::Task<void> AppDriver::connect_task(Status& out) {
  const uint32_t nranks = params_.io.nranks;
  sessions_.resize(nranks);
  for (uint32_t r = 0; r < nranks; ++r) {
    auto c = co_await fast_.connect(static_cast<int>(r));
    if (!c.ok()) {
      out = c.status();
      co_return;
    }
    sessions_[r] = std::move(*c);
  }
  if (pfs_ != nullptr && params_.pfs_interval > 0) {
    pfs_sessions_.resize(nranks);
    for (uint32_t r = 0; r < nranks; ++r) {
      auto c = co_await pfs_->connect(static_cast<int>(r));
      if (!c.ok()) {
        out = c.status();
        co_return;
      }
      pfs_sessions_[r] = std::move(*c);
    }
  }
  out = OkStatus();
}

std::vector<nvmecr_rt::RestoreSource> AppDriver::default_chain(uint32_t rank) {
  std::vector<nvmecr_rt::RestoreSource> chain;
  chain.push_back({sessions_[rank].get(), false, "fast"});
  if (rank < pfs_sessions_.size()) {
    chain.push_back({pfs_sessions_[rank].get(), true, "pfs"});
  }
  return chain;
}

sim::Task<Status> AppDriver::write_checkpoint(uint32_t rank, uint32_t epoch,
                                              double residual,
                                              bool mid_kill) {
  nvmecr_rt::MultiLevelPolicy policy(params_.pfs_interval);
  const bool on_pfs =
      !pfs_sessions_.empty() && policy.is_pfs_checkpoint(epoch);
  baselines::StorageClient& tier =
      on_pfs ? *pfs_sessions_[rank] : *sessions_[rank];
  const std::string path = app_checkpoint_path(spec_, epoch, rank);
  const uint64_t body =
      params_.io.atoms_per_rank * params_.io.bytes_per_atom;

  auto fd = co_await tier.create(path);
  NVMECR_CO_RETURN_IF_ERROR(fd.status());
  Status s = co_await tier.write(*fd, params_.io.header_bytes);
  uint64_t written = 0;
  while (s.ok() && written < body) {
    const uint64_t piece = std::min(params_.io.io_chunk, body - written);
    s = co_await tier.write(*fd, piece);
    written += piece;
    if (mid_kill && s.ok() && written * 2 >= body) {
      // Death mid-stream: the fd is abandoned un-fsynced, and the
      // ledger never commits this epoch — restart must not trust it.
      co_return OkStatus();
    }
  }
  if (s.ok()) s = co_await tier.fsync(*fd);
  if (s.ok()) s = co_await tier.close(*fd);
  NVMECR_CO_RETURN_IF_ERROR(s);

  // Commit point: the stream is durable, record the real application
  // state behind it.
  CheckpointRecord& rec = ledger_.entry(rank, epoch);
  rec.snapshot.clear();
  states_[rank]->serialize(rec.snapshot);
  rec.digest = crc64(rec.snapshot.data(), rec.snapshot.size(),
                     states_[rank]->digest_seed());
  rec.residual = residual;
  rec.on_pfs = on_pfs;
  rec.committed = true;

  // Retire checkpoints beyond the retention window (same tier), and
  // uncommit their ledger entries so restart never probes for them.
  if (epoch + 1 > params_.io.keep_last) {
    const uint32_t old_epoch = epoch - params_.io.keep_last;
    CheckpointRecord* old_rec = ledger_.find_mutable(rank, old_epoch);
    if (old_rec != nullptr && old_rec->committed) {
      baselines::StorageClient& old_tier =
          old_rec->on_pfs ? *pfs_sessions_[rank] : *sessions_[rank];
      NVMECR_CO_RETURN_IF_ERROR(
          co_await old_tier.unlink(app_checkpoint_path(spec_, old_epoch,
                                                       rank)));
      old_rec->committed = false;
    }
  }
  co_return OkStatus();
}

sim::Task<void> AppDriver::epoch_loop(uint32_t rank, uint32_t start,
                                      RunCtx& ctx) {
  sim::Engine& eng = cluster_.engine();
  Rng rng(mix64(params_.seed ^ 0xA44DD81FEull) ^
          (static_cast<uint64_t>(rank) << 20));
  const uint32_t epochs = params_.io.checkpoints;
  for (uint32_t epoch = start; epoch < epochs; ++epoch) {
    // Compute phase (jitter models per-rank load imbalance; it moves
    // sim time only — the state advance below is time-independent, so
    // restarted runs recompute bit-identical residuals).
    const double jitter = rng.jitter(params_.io.compute_jitter);
    co_await eng.delay(static_cast<SimDuration>(
        static_cast<double>(params_.io.compute_per_period) * jitter));

    // Two-reduction epoch protocol (apps.h).
    const double l1 = states_[rank]->compute(epoch);
    const double g1 =
        co_await comm_->allreduce_sum(static_cast<int>(rank), l1);
    const double l2 = states_[rank]->fold(epoch, g1);
    const double g2 =
        co_await comm_->allreduce_sum(static_cast<int>(rank), l2);
    const double res = states_[rank]->finish(epoch, g2);
    if (rank == 0) ctx.residuals.push_back(res);

    const bool kill_here = ctx.kill.armed() && epoch == ctx.kill.epoch;
    if (kill_here && ctx.kill.point == KillPoint::kBeforeCheckpoint) {
      ctx.killed = true;
      co_return;
    }
    if (ctx.checkpoints) {
      const bool mid_kill =
          kill_here && ctx.kill.point == KillPoint::kMidCheckpoint;
      Status s = co_await write_checkpoint(rank, epoch, res, mid_kill);
      if (!s.ok()) {
        ctx.record_error(s);
        co_return;
      }
      if (mid_kill) {
        ctx.killed = true;
        co_return;
      }
    }
    if (kill_here) {  // kMidCheckpoint (checkpoints off) or kAfter
      ctx.killed = true;
      co_return;
    }
    co_await comm_->barrier(static_cast<int>(rank));
  }
}

sim::Task<void> AppDriver::probe_task(
    const RestorePlan& plan, std::vector<nvmecr_rt::RestoreSource>& chosen,
    uint32_t& epoch_out, bool& done) {
  const uint32_t nranks = params_.io.nranks;
  for (uint32_t e : ledger_.committed_epochs(nranks)) {
    bool all = true;
    for (uint32_t r = 0; r < nranks && all; ++r) {
      const CheckpointRecord* rec = ledger_.find(r, e);
      auto sources = plan.chain ? plan.chain(r) : default_chain(r);
      bool found = false;
      for (const auto& src : sources) {
        // Tier classes must match: the PFS model's open_read cannot
        // report ENOENT, so only ledger-confirmed placements are
        // probed against it (multilevel.h).
        if (src.client == nullptr || src.pfs_tier != rec->on_pfs) continue;
        auto fd =
            co_await src.client->open_read(app_checkpoint_path(spec_, e, r));
        if (!fd.ok()) continue;
        co_await src.client->close(*fd);
        chosen[r] = src;
        found = true;
        break;
      }
      all = found;
    }
    if (all) {
      epoch_out = e;
      done = true;
      co_return;
    }
  }
  epoch_out = kNoRestoreEpoch;
  done = true;
}

Status AppDriver::run_engine_phase(SimTime started, const Status& first_error,
                                   const char* phase) {
  sim::Engine& eng = cluster_.engine();
  if (params_.deadline <= 0) {
    eng.run();
    return OkStatus();
  }
  eng.run_until(started + params_.deadline);
  // Pending roots at the cutoff with no typed error are a hang — either
  // the deadline fired mid-flight or the queue drained with coroutines
  // parked on an event that never comes. A recorded typed error instead
  // means one rank failed and its peers are parked at a collective the
  // dead rank will never join: that is the typed-failure outcome, not a
  // hang, and finish_run reports it.
  if (eng.live_roots() > 0 && first_error.ok()) {
    return DeadlineExceededError(
        std::string(phase) + " exceeded deadline with " +
        std::to_string(eng.live_roots()) + " tasks pending");
  }
  return OkStatus();
}

sim::Task<void> AppDriver::restore_and_resume(uint32_t rank, uint32_t epoch,
                                              nvmecr_rt::RestoreSource source,
                                              RunCtx& ctx) {
  const CheckpointRecord* rec = ledger_.find(rank, epoch);
  NVMECR_CHECK(rec != nullptr && source.client != nullptr);
  const std::string path = app_checkpoint_path(spec_, epoch, rank);
  const uint64_t body =
      params_.io.atoms_per_rank * params_.io.bytes_per_atom;

  // Replay the checkpoint read through the chosen source (reconstruction
  // and failover sources charge their own materialization costs here).
  auto fd = co_await source.client->open_read(path);
  if (!fd.ok()) {
    ctx.record_error(fd.status());
    co_return;
  }
  Status s = co_await source.client->read(*fd, params_.io.header_bytes);
  uint64_t got = 0;
  while (s.ok() && got < body) {
    const uint64_t piece = std::min(params_.io.io_chunk, body - got);
    s = co_await source.client->read(*fd, piece);
    got += piece;
  }
  if (s.ok()) s = co_await source.client->close(*fd);
  if (!s.ok()) {
    ctx.record_error(s);
    co_return;
  }

  // Rebuild the solver state from the committed snapshot and prove it
  // is the state the digest was taken over.
  auto st = make_rank_state(spec_, rank, params_.io.nranks, params_.seed,
                            params_.elems);
  s = st->deserialize(
      std::span<const std::byte>(rec->snapshot.data(), rec->snapshot.size()));
  if (s.ok() && st->digest() != rec->digest) {
    s = CorruptionError("restored state digest mismatch for " + path);
  }
  if (!s.ok()) {
    ctx.record_error(s);
    co_return;
  }
  states_[rank] = std::move(st);
  co_await epoch_loop(rank, epoch + 1, ctx);
}

StatusOr<AppRunResult> AppDriver::finish_run(RunCtx& ctx) {
  if (!ctx.first_error.ok()) return ctx.first_error;
  AppRunResult res;
  res.app = spec_.name;
  res.first_epoch = ctx.first_epoch;
  res.residuals = std::move(ctx.residuals);
  res.killed = ctx.killed;
  res.total_time = cluster_.engine().now() - ctx.started;
  if (!res.killed) {
    for (const auto& st : states_) res.rank_digests.push_back(st->digest());
    res.job_digest =
        crc64(res.rank_digests.data(),
              res.rank_digests.size() * sizeof(uint64_t), 0x4A0BD16E57ull);
  }
  return res;
}

StatusOr<AppRunResult> AppDriver::run(const KillSpec& kill) {
  Status s = ensure_connected();
  if (!s.ok()) return s;
  sim::Engine& eng = cluster_.engine();
  const uint32_t nranks = params_.io.nranks;

  states_.clear();
  states_.resize(nranks);
  for (uint32_t r = 0; r < nranks; ++r) {
    states_[r] =
        make_rank_state(spec_, r, nranks, params_.seed, params_.elems);
  }
  RunCtx ctx;
  ctx.kill = kill;
  ctx.started = eng.now();
  for (uint32_t r = 0; r < nranks; ++r) eng.spawn(epoch_loop(r, 0, ctx));
  s = run_engine_phase(ctx.started, ctx.first_error, "run");
  if (!s.ok()) return s;
  return finish_run(ctx);
}

StatusOr<AppRunResult> AppDriver::restart(const RestorePlan& plan,
                                          const KillSpec& kill) {
  Status s = ensure_connected();
  if (!s.ok()) return s;
  sim::Engine& eng = cluster_.engine();
  const uint32_t nranks = params_.io.nranks;

  std::vector<nvmecr_rt::RestoreSource> chosen(nranks);
  uint32_t epoch = kNoRestoreEpoch;
  bool probed = false;
  if (params_.deadline > 0) {
    // A hung probe must surface as kDeadlineExceeded, not abort the
    // process the way run_task's deadlock check would.
    const SimTime probe_started = eng.now();
    eng.spawn(probe_task(plan, chosen, epoch, probed));
    eng.run_until(probe_started + params_.deadline);
    if (!probed) return DeadlineExceededError("restore probe exceeded deadline");
  } else {
    eng.run_task(probe_task(plan, chosen, epoch, probed));
  }

  RunCtx ctx;
  ctx.kill = kill;
  ctx.checkpoints = plan.resume_checkpoints;
  ctx.started = eng.now();
  states_.clear();
  states_.resize(nranks);
  if (epoch == kNoRestoreEpoch) {
    // Nothing was ever committed by every rank (e.g. killed before the
    // first checkpoint completed): restart from initial state.
    for (uint32_t r = 0; r < nranks; ++r) {
      states_[r] =
          make_rank_state(spec_, r, nranks, params_.seed, params_.elems);
      eng.spawn(epoch_loop(r, 0, ctx));
    }
  } else {
    ctx.first_epoch = epoch + 1;
    for (uint32_t r = 0; r < nranks; ++r) {
      eng.spawn(restore_and_resume(r, epoch, chosen[r], ctx));
    }
  }
  s = run_engine_phase(ctx.started, ctx.first_error, "restart");
  if (!s.ok()) return s;
  auto res = finish_run(ctx);
  if (!res.ok()) return res;
  res->restored = true;
  res->from_initial = epoch == kNoRestoreEpoch;
  res->restored_epoch = epoch;
  return res;
}

Status verify_residuals(const AppRunResult& golden,
                        const AppRunResult& restored) {
  for (size_t i = 0; i < restored.residuals.size(); ++i) {
    const uint32_t epoch = restored.first_epoch + static_cast<uint32_t>(i);
    if (epoch < golden.first_epoch) continue;
    const size_t gi = epoch - golden.first_epoch;
    if (gi >= golden.residuals.size()) {
      return InvalidArgumentError("golden run has no residual for epoch " +
                                  std::to_string(epoch));
    }
    const double g = golden.residuals[gi];
    const double r = restored.residuals[i];
    if (std::bit_cast<uint64_t>(g) != std::bit_cast<uint64_t>(r)) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "residual diverged at epoch %u: golden=%.17g "
                    "restored=%.17g",
                    epoch, g, r);
      return CorruptionError(buf);
    }
  }
  return OkStatus();
}

Status verify_restart(const AppRunResult& golden,
                      const AppRunResult& restored) {
  if (golden.killed) return InvalidArgumentError("golden run was killed");
  if (restored.killed) {
    return InvalidArgumentError("restored run did not run to completion");
  }
  Status s = verify_residuals(golden, restored);
  if (!s.ok()) return s;
  if (golden.rank_digests.size() != restored.rank_digests.size()) {
    return CorruptionError("rank digest count mismatch");
  }
  for (size_t r = 0; r < golden.rank_digests.size(); ++r) {
    if (golden.rank_digests[r] != restored.rank_digests[r]) {
      return CorruptionError("state digest mismatch on rank " +
                             std::to_string(r));
    }
  }
  if (golden.job_digest != restored.job_digest) {
    return CorruptionError("job digest mismatch");
  }
  return OkStatus();
}

}  // namespace nvmecr::workloads
