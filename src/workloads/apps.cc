#include "workloads/apps.h"

#include <cmath>
#include <cstring>

#include "common/crc.h"
#include "common/rng.h"

namespace nvmecr::workloads {

namespace {

constexpr double kTiny = 1e-300;

/// Denominator guards: CG freezes once a direction goes singular
/// (converged to machine precision) instead of dividing by ~0.
double safe_div(double num, double den) {
  return den > kTiny || den < -kTiny ? num / den : 0.0;
}

/// Deterministic unit noise in [-1, 1): pure integer mixing, no RNG
/// stream position to track across restarts.
double unit_noise(uint64_t seed, uint64_t index) {
  const uint64_t w = mix64(seed ^ mix64(index + 1));
  return 2.0 * (static_cast<double>(w >> 11) * 0x1.0p-53) - 1.0;
}

// --- serialization helpers (raw in-process byte images) -------------------

void put_u64(std::vector<std::byte>& out, uint64_t v) {
  const size_t at = out.size();
  out.resize(at + sizeof(v));
  std::memcpy(out.data() + at, &v, sizeof(v));
}

void put_f64(std::vector<std::byte>& out, double v) {
  uint64_t w;
  std::memcpy(&w, &v, sizeof(w));
  put_u64(out, w);
}

void put_f64_vec(std::vector<std::byte>& out, const std::vector<double>& v) {
  for (double x : v) put_f64(out, x);
}

class ImageReader {
 public:
  explicit ImageReader(std::span<const std::byte> image) : image_(image) {}

  bool u64(uint64_t* out) {
    if (off_ + sizeof(*out) > image_.size()) return false;
    std::memcpy(out, image_.data() + off_, sizeof(*out));
    off_ += sizeof(*out);
    return true;
  }
  bool f64(double* out) {
    uint64_t w;
    if (!u64(&w)) return false;
    std::memcpy(out, &w, sizeof(*out));
    return true;
  }
  bool f64_vec(std::vector<double>* out, size_t n) {
    out->resize(n);
    for (double& x : *out) {
      if (!f64(&x)) return false;
    }
    return true;
  }
  bool exhausted() const { return off_ == image_.size(); }

 private:
  std::span<const std::byte> image_;
  size_t off_ = 0;
};

Status truncated() {
  return InvalidArgumentError("truncated or oversized app checkpoint image");
}
Status bad_header(const char* app) {
  return InvalidArgumentError(std::string("checkpoint image is not a ") +
                              app + " image for this rank");
}

uint64_t rank_digest_seed(uint64_t seed, uint32_t rank) {
  return mix64(seed + 0x9E3779B97F4A7C15ull * (rank + 1));
}

uint64_t rank_stream_seed(uint64_t seed, uint64_t salt, uint32_t rank) {
  return mix64(seed ^ salt) ^ (0xBF58476D1CE4E5B9ull * (rank + 1));
}

// --- miniFE-CG ------------------------------------------------------------
//
// Conjugate gradient over a block-diagonal SPD system: each rank owns an
// independent tridiagonal block (diagonally dominant by construction),
// but alpha/beta/rho are *global* scalars, so the solve is one global CG
// whose convergence couples every rank. Epoch 0 bootstraps the global
// rho = ||b||^2; each later epoch is one textbook two-reduction CG
// iteration (pq = p'Ap, then rr = r'r).

constexpr uint64_t kCgMagic = 0x43472D4D696E6946ull;  // "CG-MiniF"

class CgState final : public AppRankState {
 public:
  CgState(uint32_t rank, uint32_t nranks, uint64_t seed, uint32_t n)
      : AppRankState(rank_digest_seed(seed, rank)),
        rank_(rank),
        nranks_(nranks),
        n_(n) {
    Rng rng(rank_stream_seed(seed, 0xC61FEC61FEull, rank));
    diag_.resize(n_);
    off_.resize(n_);
    b_.resize(n_);
    for (uint32_t i = 0; i < n_; ++i) {
      diag_[i] = 4.0 + 2.0 * rng.uniform01();
      off_[i] = 0.5 * (2.0 * rng.uniform01() - 1.0);
      b_[i] = 2.0 * rng.uniform01() - 1.0;
    }
    x_.assign(n_, 0.0);
    r_ = b_;
    p_.assign(n_, 0.0);
    q_.assign(n_, 0.0);
  }

  double compute(uint32_t) override {
    if (!bootstrapped_) return dot(r_, r_);
    apply_a(p_, q_);
    return dot(p_, q_);
  }

  double fold(uint32_t, double g1) override {
    if (!bootstrapped_) {
      rho_ = g1;
      p_ = r_;
      return 0.0;
    }
    const double alpha = safe_div(rho_, g1);
    for (uint32_t i = 0; i < n_; ++i) {
      x_[i] += alpha * p_[i];
      r_[i] -= alpha * q_[i];
    }
    return dot(r_, r_);
  }

  double finish(uint32_t, double g2) override {
    ++t_;
    if (!bootstrapped_) {
      bootstrapped_ = true;
      return std::sqrt(rho_ > 0.0 ? rho_ : 0.0);
    }
    const double beta = safe_div(g2, rho_);
    rho_ = g2;
    for (uint32_t i = 0; i < n_; ++i) p_[i] = r_[i] + beta * p_[i];
    return std::sqrt(g2 > 0.0 ? g2 : 0.0);
  }

  void serialize(std::vector<std::byte>& out) const override {
    put_u64(out, kCgMagic);
    put_u64(out, (static_cast<uint64_t>(rank_) << 32) | nranks_);
    put_u64(out, (static_cast<uint64_t>(n_) << 32) | t_);
    put_u64(out, bootstrapped_ ? 1 : 0);
    put_f64(out, rho_);
    put_f64_vec(out, x_);
    put_f64_vec(out, r_);
    put_f64_vec(out, p_);
  }

  Status deserialize(std::span<const std::byte> image) override {
    ImageReader rd(image);
    uint64_t magic, ids, dims, boot;
    if (!rd.u64(&magic) || !rd.u64(&ids) || !rd.u64(&dims) || !rd.u64(&boot))
      return truncated();
    if (magic != kCgMagic ||
        ids != ((static_cast<uint64_t>(rank_) << 32) | nranks_) ||
        (dims >> 32) != n_)
      return bad_header("miniFE-CG");
    t_ = static_cast<uint32_t>(dims);
    bootstrapped_ = boot != 0;
    if (!rd.f64(&rho_) || !rd.f64_vec(&x_, n_) || !rd.f64_vec(&r_, n_) ||
        !rd.f64_vec(&p_, n_) || !rd.exhausted())
      return truncated();
    return OkStatus();
  }

 private:
  double dot(const std::vector<double>& a, const std::vector<double>& b) {
    double s = 0.0;
    for (uint32_t i = 0; i < n_; ++i) s += a[i] * b[i];
    return s;
  }
  void apply_a(const std::vector<double>& v, std::vector<double>& out) {
    for (uint32_t i = 0; i < n_; ++i) {
      double y = diag_[i] * v[i];
      if (i > 0) y += off_[i - 1] * v[i - 1];
      if (i + 1 < n_) y += off_[i] * v[i + 1];
      out[i] = y;
    }
  }

  uint32_t rank_, nranks_, n_;
  // Static mesh (regenerated from the seed; never serialized).
  std::vector<double> diag_, off_, b_;
  // Dynamic solver state (the checkpoint image).
  std::vector<double> x_, r_, p_;
  double rho_ = 0.0;
  uint32_t t_ = 0;
  bool bootstrapped_ = false;
  // Per-epoch scratch (recomputed inside each epoch; never persisted).
  std::vector<double> q_;
};

// --- NPB-SP ---------------------------------------------------------------
//
// Time-stepped stencil: every epoch applies one uniform diffusion sweep
// (periodic within the rank) plus a small deterministic forcing term and
// a relaxation toward the *global* mean (the cross-rank coupling).
// Residual = global RMS of the per-step delta.

constexpr uint64_t kSpMagic = 0x53502D4E50422121ull;  // "SP-NPB!!"

class SpState final : public AppRankState {
 public:
  SpState(uint32_t rank, uint32_t nranks, uint64_t seed, uint32_t n)
      : AppRankState(rank_digest_seed(seed, rank)),
        rank_(rank),
        nranks_(nranks),
        n_(n),
        noise_seed_(rank_stream_seed(seed, 0x5BAD5EEDull, rank)) {
    Rng rng(rank_stream_seed(seed, 0x5B57A7Eull, rank));
    u_.resize(n_);
    for (double& x : u_) x = 2.0 * rng.uniform01() - 1.0;
    du_.assign(n_, 0.0);
  }

  double compute(uint32_t) override {
    double sum = 0.0;
    for (uint32_t i = 0; i < n_; ++i) {
      const double left = u_[i == 0 ? n_ - 1 : i - 1];
      const double right = u_[i + 1 == n_ ? 0 : i + 1];
      du_[i] = 0.25 * (left - 2.0 * u_[i] + right) +
               0.001 * unit_noise(noise_seed_,
                                  static_cast<uint64_t>(t_) * n_ + i);
      sum += u_[i];
    }
    return sum;
  }

  double fold(uint32_t, double g1) override {
    const double mean = g1 / (static_cast<double>(n_) * nranks_);
    double s = 0.0;
    for (uint32_t i = 0; i < n_; ++i) {
      u_[i] += du_[i] + 0.02 * (mean - u_[i]);
      s += du_[i] * du_[i];
    }
    return s;
  }

  double finish(uint32_t, double g2) override {
    ++t_;
    const double ms = g2 / (static_cast<double>(n_) * nranks_);
    return std::sqrt(ms > 0.0 ? ms : 0.0);
  }

  void serialize(std::vector<std::byte>& out) const override {
    put_u64(out, kSpMagic);
    put_u64(out, (static_cast<uint64_t>(rank_) << 32) | nranks_);
    put_u64(out, (static_cast<uint64_t>(n_) << 32) | t_);
    put_f64_vec(out, u_);
  }

  Status deserialize(std::span<const std::byte> image) override {
    ImageReader rd(image);
    uint64_t magic, ids, dims;
    if (!rd.u64(&magic) || !rd.u64(&ids) || !rd.u64(&dims))
      return truncated();
    if (magic != kSpMagic ||
        ids != ((static_cast<uint64_t>(rank_) << 32) | nranks_) ||
        (dims >> 32) != n_)
      return bad_header("NPB-SP");
    t_ = static_cast<uint32_t>(dims);
    if (!rd.f64_vec(&u_, n_) || !rd.exhausted()) return truncated();
    du_.assign(n_, 0.0);
    return OkStatus();
  }

 private:
  uint32_t rank_, nranks_, n_;
  uint64_t noise_seed_;
  std::vector<double> u_;   // dynamic grid (the checkpoint image)
  std::vector<double> du_;  // per-epoch delta (scratch, recomputed)
  uint32_t t_ = 0;
};

// --- CoMD -----------------------------------------------------------------
//
// Particles under springs to deterministic anchors with a small forcing
// kick; a global kinetic-energy thermostat (the cross-rank coupling)
// rescales velocities toward a target temperature every epoch.
// Residual = global RMS radius.

constexpr uint64_t kMdMagic = 0x4D442D436F4D4421ull;  // "MD-CoMD!"

class MdState final : public AppRankState {
 public:
  MdState(uint32_t rank, uint32_t nranks, uint64_t seed, uint32_t n)
      : AppRankState(rank_digest_seed(seed, rank)),
        rank_(rank),
        nranks_(nranks),
        n_(n),
        noise_seed_(rank_stream_seed(seed, 0xC03DBADull, rank)) {
    Rng rng(rank_stream_seed(seed, 0xC03D1417ull, rank));
    pos_.resize(n_);
    vel_.resize(n_);
    anchor_.resize(n_);
    for (uint32_t i = 0; i < n_; ++i) {
      pos_[i] = 2.0 * rng.uniform01() - 1.0;
      vel_[i] = 0.1 * (2.0 * rng.uniform01() - 1.0);
      anchor_[i] = 2.0 * rng.uniform01() - 1.0;
    }
  }

  double compute(uint32_t) override {
    double ke = 0.0;
    for (uint32_t i = 0; i < n_; ++i) {
      const double f = -(pos_[i] - anchor_[i]) +
                       0.01 * unit_noise(noise_seed_,
                                         static_cast<uint64_t>(t_) * n_ + i);
      vel_[i] += kDt * f;
      ke += vel_[i] * vel_[i];
    }
    return ke;
  }

  double fold(uint32_t, double g1) override {
    const double target = 0.01 * static_cast<double>(n_) * nranks_;
    const double scale = g1 > kTiny ? std::sqrt(target / g1) : 1.0;
    const double lambda = 1.0 + 0.1 * (scale - 1.0);
    double s = 0.0;
    for (uint32_t i = 0; i < n_; ++i) {
      vel_[i] *= lambda;
      pos_[i] += kDt * vel_[i];
      s += pos_[i] * pos_[i];
    }
    return s;
  }

  double finish(uint32_t, double g2) override {
    ++t_;
    const double ms = g2 / (static_cast<double>(n_) * nranks_);
    return std::sqrt(ms > 0.0 ? ms : 0.0);
  }

  void serialize(std::vector<std::byte>& out) const override {
    put_u64(out, kMdMagic);
    put_u64(out, (static_cast<uint64_t>(rank_) << 32) | nranks_);
    put_u64(out, (static_cast<uint64_t>(n_) << 32) | t_);
    put_f64_vec(out, pos_);
    put_f64_vec(out, vel_);
  }

  Status deserialize(std::span<const std::byte> image) override {
    ImageReader rd(image);
    uint64_t magic, ids, dims;
    if (!rd.u64(&magic) || !rd.u64(&ids) || !rd.u64(&dims))
      return truncated();
    if (magic != kMdMagic ||
        ids != ((static_cast<uint64_t>(rank_) << 32) | nranks_) ||
        (dims >> 32) != n_)
      return bad_header("CoMD");
    t_ = static_cast<uint32_t>(dims);
    if (!rd.f64_vec(&pos_, n_) || !rd.f64_vec(&vel_, n_) || !rd.exhausted())
      return truncated();
    return OkStatus();
  }

 private:
  static constexpr double kDt = 0.05;

  uint32_t rank_, nranks_, n_;
  uint64_t noise_seed_;
  std::vector<double> pos_, vel_;  // dynamic (the checkpoint image)
  std::vector<double> anchor_;     // static, regenerated from the seed
  uint32_t t_ = 0;
};

}  // namespace

uint64_t AppRankState::digest() const {
  std::vector<std::byte> buf;
  serialize(buf);
  return crc64(buf.data(), buf.size(), digest_seed_);
}

const std::vector<AppSpec>& app_registry() {
  // The restart-verification trio first, then the remaining §IV-A ECP
  // profiles mapped onto the nearest modeled shape (AMG is a solver,
  // Ember/miniAMR are stencil/grid codes, ExaMiniMD is MD).
  static const std::vector<AppSpec> kApps = {
      // name          kind           state/rank chunk    compute           jitter
      {"CoMD", AppKind::kComd, 156_MiB, 4_MiB, 2900 * kMillisecond, 0.03},
      {"miniFE-CG", AppKind::kCg, 112_MiB, 2_MiB, 2400 * kMillisecond, 0.05},
      {"NPB-SP", AppKind::kSp, 80_MiB, 1_MiB, 2000 * kMillisecond, 0.06},
      {"AMG", AppKind::kCg, 96_MiB, 2_MiB, 2200 * kMillisecond, 0.08},
      {"Ember", AppKind::kSp, 48_MiB, 1_MiB, 1500 * kMillisecond, 0.02},
      {"ExaMiniMD", AppKind::kComd, 128_MiB, 4_MiB, 2600 * kMillisecond, 0.04},
      {"miniAMR", AppKind::kSp, 64_MiB, 512_KiB, 1800 * kMillisecond, 0.12},
  };
  return kApps;
}

const AppSpec* find_app(std::string_view name) {
  for (const AppSpec& spec : app_registry()) {
    if (name == spec.name) return &spec;
  }
  return nullptr;
}

std::unique_ptr<AppRankState> make_rank_state(const AppSpec& spec,
                                              uint32_t rank, uint32_t nranks,
                                              uint64_t seed, uint32_t elems) {
  NVMECR_CHECK(elems > 1);
  switch (spec.kind) {
    case AppKind::kComd:
      return std::make_unique<MdState>(rank, nranks, seed, elems);
    case AppKind::kCg:
      return std::make_unique<CgState>(rank, nranks, seed, elems);
    case AppKind::kSp:
      return std::make_unique<SpState>(rank, nranks, seed, elems);
  }
  return nullptr;
}

ComdParams io_params_for(const AppSpec& spec, uint32_t nranks) {
  ComdParams p;
  p.nranks = nranks;
  p.procs_per_node = 28;
  p.bytes_per_atom = 512;
  p.atoms_per_rank = spec.bytes_per_rank / p.bytes_per_atom;
  p.io_chunk = spec.io_chunk;
  p.compute_per_period = spec.compute_per_period;
  p.compute_jitter = spec.jitter;
  p.checkpoints = 5;
  return p;
}

}  // namespace nvmecr::workloads
