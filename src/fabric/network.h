// RDMA network model.
//
// Each node gets a full-duplex NIC (independent tx/rx FIFO bandwidth
// resources at the EDR rate). A transfer books the sender's tx pipe and
// the receiver's rx pipe, chunked so concurrent flows share fairly, and
// pays a propagation latency proportional to switch hops. The non-
// blocking switch fabric itself is not a bottleneck (EDR fat trees are
// provisioned that way), so only NICs limit bandwidth.
//
// rpc() models a request/response exchange (metadata server models,
// NVMf command+completion).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include <string>

#include "common/status.h"
#include "common/units.h"
#include "fabric/topology.h"
#include "obs/observer.h"
#include "simcore/engine.h"
#include "simcore/resource.h"

namespace nvmecr::fabric {

using namespace nvmecr::literals;

struct NetworkParams {
  /// Per-direction NIC bandwidth. 100 Gbps EDR ≈ 12.5 GB/s.
  uint64_t nic_bw = 12500_MBps;
  /// Base one-way latency (NIC + PCIe + first switch).
  SimDuration base_latency = 1_us;
  /// Added latency per switch hop.
  SimDuration per_hop_latency = 150;  // ns
  /// Chunk size for fair sharing of a NIC among concurrent flows.
  uint64_t fair_chunk = 256_KiB;
  /// Time an initiator waits on a dead link before reporting a transport
  /// timeout (models the RDMA QP retry/ack timeout, not a sim deadline).
  SimDuration transport_timeout = 500_us;
};

class Network {
 public:
  Network(sim::Engine& engine, const Topology& topology,
          NetworkParams params = {})
      : engine_(engine), topology_(topology), params_(params) {
    nics_.reserve(topology.node_count());
    for (uint32_t n = 0; n < topology.node_count(); ++n) {
      nics_.push_back(Nic{
          sim::BandwidthResource(engine, params_.nic_bw),
          sim::BandwidthResource(engine, params_.nic_bw),
      });
    }
  }

  const Topology& topology() const { return topology_; }
  const NetworkParams& params() const { return params_; }

  /// One-way latency between two nodes.
  SimDuration latency(NodeId src, NodeId dst) const {
    if (src == dst) return 0;  // loopback: no wire
    return params_.base_latency +
           static_cast<SimDuration>(topology_.hops(src, dst)) *
               params_.per_hop_latency;
  }

  /// Sentinel "window never closes" end time for link faults.
  static constexpr SimTime kForever = std::numeric_limits<SimTime>::max();

  /// Declares `node`'s link down for sim-time [from, until). Windows are
  /// part of the deterministic fault schedule: arm them before (or
  /// during) the run and every transfer touching the node inside the
  /// window fails with a transport timeout.
  void add_link_down(NodeId node, SimTime from, SimTime until = kForever) {
    nics_[node].down_windows.push_back({from, until});
  }

  /// Partitions a set of nodes off the fabric from `from` (until `until`,
  /// default forever). Convenience over per-node add_link_down.
  void partition(const std::vector<NodeId>& nodes, SimTime from,
                 SimTime until = kForever) {
    for (NodeId n : nodes) add_link_down(n, from, until);
  }

  /// True when `node`'s link is up at time `t`.
  bool link_up(NodeId node, SimTime t) const {
    for (const auto& w : nics_[node].down_windows) {
      if (t >= w.from && t < w.until) return false;
    }
    return true;
  }

  /// Fallible transfer: if either endpoint's link is down at submission,
  /// or goes down before the last byte lands (completion ack lost), the
  /// initiator burns the transport timeout and gets kTimedOut. Loopback
  /// never fails (no wire).
  sim::Task<Status> try_transfer(NodeId src, NodeId dst, uint64_t bytes) {
    if (src == dst) co_return OkStatus();
    if (!link_up(src, engine_.now()) || !link_up(dst, engine_.now())) {
      co_await engine_.delay(params_.transport_timeout);
      co_return TimedOutError("link down: node " + std::to_string(src) +
                              " -> node " + std::to_string(dst));
    }
    // The move itself is inlined from transfer() rather than awaited as a
    // sub-task: this is the NVMf capsule/completion hot path (two
    // try_transfers per IO), and the extra frame per call was measurable.
    // The pacing loop must stay chunk-by-chunk — the reservation
    // interleaving among concurrent flows is part of the model.
    if (bytes > 0) {
      Nic& s = nics_[src];
      Nic& d = nics_[dst];
      account_transfer(s, d, bytes);
      const uint64_t chunk = params_.fair_chunk;
      SimTime arrive = engine_.now();
      uint64_t left = bytes;
      while (left > 0) {
        const uint64_t piece = left < chunk ? left : chunk;
        const SimTime tx_done = s.tx.reserve(piece);
        arrive = d.rx.reserve_after(tx_done, piece);
        left -= piece;
        if (left > 0) co_await engine_.sleep_until(tx_done);
      }
      if (s.tx_backlog != nullptr) {
        s.tx_backlog->set(engine_.now(), static_cast<double>(s.tx.backlog()));
      }
      // Last-byte arrival and wire latency folded into one wakeup.
      co_await engine_.sleep_until(arrive + latency(src, dst));
    } else {
      co_await engine_.delay(latency(src, dst));
    }
    if (!link_up(src, engine_.now()) || !link_up(dst, engine_.now())) {
      // The wire dropped mid-flight; the sender only learns via timeout.
      co_await engine_.delay(params_.transport_timeout);
      co_return TimedOutError("link flapped during transfer: node " +
                              std::to_string(src) + " -> node " +
                              std::to_string(dst));
    }
    co_return OkStatus();
  }

  /// Fallible request/response exchange (see rpc()).
  sim::Task<Status> try_rpc(NodeId client, NodeId server,
                            uint64_t request_bytes, uint64_t response_bytes) {
    NVMECR_CO_RETURN_IF_ERROR(
        co_await try_transfer(client, server, request_bytes));
    NVMECR_CO_RETURN_IF_ERROR(
        co_await try_transfer(server, client, response_bytes));
    co_return OkStatus();
  }

  /// Moves `bytes` from `src` to `dst`; completes when the last byte has
  /// arrived. Same-node transfers are free (shared memory).
  sim::Task<void> transfer(NodeId src, NodeId dst, uint64_t bytes) {
    if (src == dst || bytes == 0) {
      if (bytes == 0 && src != dst) co_await engine_.delay(latency(src, dst));
      co_return;
    }
    Nic& s = nics_[src];
    Nic& d = nics_[dst];
    account_transfer(s, d, bytes);
    const uint64_t chunk = params_.fair_chunk;
    SimTime arrive = engine_.now();
    uint64_t left = bytes;
    while (left > 0) {
      const uint64_t piece = left < chunk ? left : chunk;
      const SimTime tx_done = s.tx.reserve(piece);
      arrive = d.rx.reserve_after(tx_done, piece);
      left -= piece;
      // Pace on the tx pipe (suspending per chunk lets concurrent flows
      // interleave their reservations — fair sharing); the rx side
      // pipelines: chunk k is received while chunk k+1 transmits.
      if (left > 0) co_await engine_.sleep_until(tx_done);
    }
    if (s.tx_backlog != nullptr) {
      s.tx_backlog->set(engine_.now(), static_cast<double>(s.tx.backlog()));
    }
    // Last-byte arrival and wire latency are one wakeup, not two: the
    // completion sleep already knows the latency, so batching them
    // halves this path's event count.
    co_await engine_.sleep_until(arrive + latency(src, dst));
  }

  /// Request/response exchange; completes at the requester when the
  /// response has fully arrived. Server-side processing time is the
  /// callee's business (co_await between the halves if needed) — this
  /// convenience assumes zero server time.
  sim::Task<void> rpc(NodeId client, NodeId server, uint64_t request_bytes,
                      uint64_t response_bytes) {
    co_await transfer(client, server, request_bytes);
    co_await transfer(server, client, response_bytes);
  }

  /// Bytes a NIC has currently queued for transmit, as drain time.
  SimDuration tx_backlog(NodeId node) const {
    return nics_[node].tx.backlog();
  }

  /// Fabric-wide byte totals across all NICs, counted unconditionally
  /// (observer or not). Loopback moves are excluded — they never touch a
  /// wire — which is exactly what makes target-local offload traffic
  /// visible as fabric savings.
  uint64_t total_bytes_sent() const { return total_bytes_sent_; }
  uint64_t total_bytes_received() const { return total_bytes_received_; }

  /// Installs per-NIC byte counters ("fabric.node<i>.{tx,rx}_bytes") and
  /// transmit-backlog gauges. Pass {} to detach.
  void set_observer(const obs::Observer& o) {
    for (Nic& nic : nics_) {
      nic.tx_bytes = nullptr;
      nic.rx_bytes = nullptr;
      nic.tx_backlog = nullptr;
    }
    if (o.metrics == nullptr) return;
    for (size_t n = 0; n < nics_.size(); ++n) {
      const std::string prefix = "fabric.node" + std::to_string(n) + ".";
      nics_[n].tx_bytes = o.metrics->counter(prefix + "tx_bytes");
      nics_[n].rx_bytes = o.metrics->counter(prefix + "rx_bytes");
      nics_[n].tx_backlog = o.metrics->gauge(prefix + "tx_backlog_ns");
    }
  }

 private:
  struct DownWindow {
    SimTime from;
    SimTime until;
  };

  struct Nic;

  /// Byte accounting shared by transfer() and the inlined try_transfer
  /// path (counted unconditionally, observer or not).
  void account_transfer(Nic& s, Nic& d, uint64_t bytes) {
    total_bytes_sent_ += bytes;
    total_bytes_received_ += bytes;
    if (s.tx_bytes != nullptr) s.tx_bytes->add(bytes);
    if (d.rx_bytes != nullptr) d.rx_bytes->add(bytes);
  }

  struct Nic {
    sim::BandwidthResource tx;
    sim::BandwidthResource rx;
    // Cached metric slots (null when observability is off).
    obs::Counter* tx_bytes = nullptr;
    obs::Counter* rx_bytes = nullptr;
    obs::Gauge* tx_backlog = nullptr;
    // Scheduled link-fault windows (empty on the fault-free fast path).
    std::vector<DownWindow> down_windows = {};
  };

  sim::Engine& engine_;
  const Topology& topology_;
  NetworkParams params_;
  std::vector<Nic> nics_;
  uint64_t total_bytes_sent_ = 0;
  uint64_t total_bytes_received_ = 0;
};

}  // namespace nvmecr::fabric
