// Cluster topology: racks of nodes joined by a two-level fat tree
// (top-of-rack switches + spine), as in the paper's testbed (§IV-A: one
// compute rack, one storage rack, EDR InfiniBand).
//
// The storage balancer consumes this to (a) derive failure domains —
// nodes sharing a rack/PDU fail together — and (b) order partner domains
// by switch hop distance (§III-F).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace nvmecr::fabric {

/// Index of a node within the cluster.
using NodeId = uint32_t;
/// Index of a rack (also the failure-domain id: nodes in one rack share
/// a ToR switch and a power distribution unit).
using RackId = uint32_t;

enum class NodeRole { kCompute, kStorage };

struct NodeInfo {
  NodeId id = 0;
  RackId rack = 0;
  NodeRole role = NodeRole::kCompute;
  std::string name;
};

class Topology {
 public:
  /// Adds a rack of `count` nodes with the given role; returns its id.
  RackId add_rack(uint32_t count, NodeRole role,
                  const std::string& prefix = "node") {
    const RackId rack = static_cast<RackId>(rack_count_++);
    for (uint32_t i = 0; i < count; ++i) {
      NodeInfo info;
      info.id = static_cast<NodeId>(nodes_.size());
      info.rack = rack;
      info.role = role;
      info.name = prefix + std::to_string(info.id);
      nodes_.push_back(std::move(info));
    }
    return rack;
  }

  uint32_t node_count() const { return static_cast<uint32_t>(nodes_.size()); }
  uint32_t rack_count() const { return rack_count_; }

  const NodeInfo& node(NodeId id) const {
    NVMECR_CHECK(id < nodes_.size());
    return nodes_[id];
  }
  RackId rack_of(NodeId id) const { return node(id).rack; }

  std::vector<NodeId> nodes_in_rack(RackId rack) const {
    std::vector<NodeId> out;
    for (const auto& n : nodes_) {
      if (n.rack == rack) out.push_back(n.id);
    }
    return out;
  }

  std::vector<NodeId> nodes_with_role(NodeRole role) const {
    std::vector<NodeId> out;
    for (const auto& n : nodes_) {
      if (n.role == role) out.push_back(n.id);
    }
    return out;
  }

  /// Switch hops between two nodes in the two-level tree:
  /// 0 (same node), 2 (same rack, via the ToR), 4 (via the spine).
  uint32_t hops(NodeId a, NodeId b) const {
    if (a == b) return 0;
    return rack_of(a) == rack_of(b) ? 2 : 4;
  }

  /// Hop distance between two racks (0 = same rack, 4 = via spine); the
  /// storage balancer sorts partner domains by this.
  uint32_t rack_distance(RackId a, RackId b) const { return a == b ? 0 : 4; }

  /// Failure domain of a node: its rack (shared ToR + PDU, §III-F).
  RackId failure_domain(NodeId id) const { return rack_of(id); }

  /// The paper's testbed: 16 compute nodes in one rack, 8 storage nodes
  /// in another.
  static Topology paper_testbed() {
    Topology t;
    t.add_rack(16, NodeRole::kCompute, "compute");
    t.add_rack(8, NodeRole::kStorage, "storage");
    return t;
  }

 private:
  std::vector<NodeInfo> nodes_;
  uint32_t rack_count_ = 0;
};

}  // namespace nvmecr::fabric
