#include "metrics/report.h"

#include "common/table.h"

namespace nvmecr::metrics {

void ScalingReport::print_table(FILE* out) const {
  std::fprintf(out, "\n== %s ==\n", title_.c_str());
  TablePrinter table({"config", "ckpt eff", "ckpt eff (makespan)",
                      "recovery eff", "ckpt time (s)", "recovery (s)",
                      "progress", "load CoV"});
  for (const Row& row : rows_) {
    const auto& m = row.metrics;
    table.add_row({row.label,
                   TablePrinter::num(m.checkpoint_efficiency(), 3),
                   TablePrinter::num(m.checkpoint_efficiency_makespan(), 3),
                   TablePrinter::num(m.recovery_efficiency(), 3),
                   TablePrinter::num(to_seconds(m.checkpoint_time), 3),
                   TablePrinter::num(to_seconds(m.recovery_time), 3),
                   TablePrinter::num(m.progress_rate(), 3),
                   TablePrinter::num(m.load_cov(), 4)});
  }
  table.print(out);
}

std::string ScalingReport::to_csv() const {
  std::string csv =
      "config,ckpt_eff,ckpt_eff_makespan,recovery_eff,ckpt_time_s,"
      "recovery_time_s,progress_rate,load_cov\n";
  char line[256];
  for (const Row& row : rows_) {
    const auto& m = row.metrics;
    std::snprintf(line, sizeof(line), "%s,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.5f\n",
                  row.label.c_str(), m.checkpoint_efficiency(),
                  m.checkpoint_efficiency_makespan(), m.recovery_efficiency(),
                  to_seconds(m.checkpoint_time), to_seconds(m.recovery_time),
                  m.progress_rate(), m.load_cov());
    csv += line;
  }
  return csv;
}

bool ScalingReport::write_csv(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string csv = to_csv();
  const bool ok = std::fwrite(csv.data(), 1, csv.size(), f) == csv.size();
  std::fclose(f);
  return ok;
}

}  // namespace nvmecr::metrics
