// Reporting helpers: uniform rendering of job metrics as tables and
// machine-readable CSV, used by the examples and available to the bench
// binaries (which print the paper-style rows directly).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "workloads/comd.h"

namespace nvmecr::metrics {

/// One measured configuration: a label plus its job metrics.
struct Row {
  std::string label;
  workloads::JobMetrics metrics;
};

/// Collects rows across a sweep and renders them once.
class ScalingReport {
 public:
  explicit ScalingReport(std::string title) : title_(std::move(title)) {}

  void add(std::string label, workloads::JobMetrics metrics) {
    rows_.push_back(Row{std::move(label), std::move(metrics)});
  }

  /// Paper-style aligned table on stdout.
  void print_table(FILE* out = stdout) const;

  /// CSV (header + one line per row) for plotting; returns the text.
  std::string to_csv() const;

  /// Writes the CSV next to the binary (best effort; returns false on
  /// IO failure — benches treat the CSV as optional).
  bool write_csv(const std::string& path) const;

  const std::vector<Row>& rows() const { return rows_; }

 private:
  std::string title_;
  std::vector<Row> rows_;
};

}  // namespace nvmecr::metrics
