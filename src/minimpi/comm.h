// Minimal MPI-like communicator for simulated processes.
//
// The paper uses MPI only for runtime initialization/finalization
// coordination and identification (§III-C): building MPI_COMM_CR per
// shared SSD (§III-F, Figure 6) and barriers around setup. This module
// provides exactly that surface: rank/size, barrier, allgather, bcast,
// and split — executed as rendezvous collectives among coroutines, with
// a log2(P) latency cost per collective round.
//
// Methods take the caller's rank explicitly (a simulated process *is* a
// coroutine, so identity is an argument rather than ambient state).
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/units.h"
#include "simcore/engine.h"
#include "simcore/event.h"

namespace nvmecr::minimpi {

using namespace nvmecr::literals;

class Comm {
 public:
  /// Creates the world communicator for `size` ranks.
  static std::unique_ptr<Comm> world(sim::Engine& engine, int size,
                                     SimDuration hop_latency = 2_us) {
    return std::unique_ptr<Comm>(new Comm(engine, size, hop_latency));
  }

  int size() const { return size_; }

  /// Collective: all ranks must call; completes when the last arrives,
  /// plus a log2(P) message-round cost.
  sim::Task<void> barrier(int rank) {
    co_await allgather(rank, 0);
  }

  /// Collective: gathers one value per rank, returned to every rank in
  /// rank order.
  sim::Task<std::vector<uint64_t>> allgather(int rank, uint64_t value);

  /// Collective: every rank receives root's value.
  sim::Task<uint64_t> bcast(int rank, uint64_t value, int root) {
    auto all = co_await allgather(rank, value);
    co_return all[static_cast<size_t>(root)];
  }

  /// Collective: global sum of one double per rank (what the app
  /// workloads' residual reductions need). Contributions travel as bit
  /// patterns and are summed in rank order on every rank, so the result
  /// is bit-identical regardless of arrival order.
  sim::Task<double> allreduce_sum(int rank, double value) {
    auto all = co_await allgather(rank, std::bit_cast<uint64_t>(value));
    double sum = 0.0;
    for (uint64_t w : all) sum += std::bit_cast<double>(w);
    co_return sum;
  }

  /// Collective: partitions ranks by `color`; returns the caller's
  /// sub-communicator and its rank within it (ordered by parent rank,
  /// matching key == rank MPI usage). Sub-communicators live as long as
  /// the parent.
  struct SplitResult {
    Comm* comm = nullptr;
    int rank = -1;
  };
  sim::Task<SplitResult> split(int rank, int color);

 private:
  Comm(sim::Engine& engine, int size, SimDuration hop_latency)
      : engine_(engine),
        size_(size),
        hop_latency_(hop_latency),
        done_(engine) {
    NVMECR_CHECK(size > 0);
    contributions_.resize(static_cast<size_t>(size));
  }

  /// One collective round cost: a binomial-tree sweep up and down.
  SimDuration collective_cost() const {
    int rounds = 0;
    for (int p = 1; p < size_; p <<= 1) ++rounds;
    return 2 * rounds * hop_latency_;
  }

  sim::Engine& engine_;
  int size_;
  SimDuration hop_latency_;

  // Rendezvous state for the current collective generation.
  int arrived_ = 0;
  uint64_t generation_ = 0;
  std::vector<uint64_t> contributions_;
  std::vector<uint64_t> result_;
  sim::Event done_;

  // split() bookkeeping: children created by the releasing rank.
  std::vector<std::unique_ptr<Comm>> children_;
  std::vector<Comm*> split_comm_of_rank_;
  std::vector<int> split_rank_of_rank_;
  uint64_t split_generation_ = UINT64_MAX;
};

inline sim::Task<std::vector<uint64_t>> Comm::allgather(int rank,
                                                        uint64_t value) {
  NVMECR_CHECK(rank >= 0 && rank < size_);
  const uint64_t my_generation = generation_;
  contributions_[static_cast<size_t>(rank)] = value;
  if (++arrived_ == size_) {
    arrived_ = 0;
    ++generation_;
    result_ = contributions_;
    done_.set();
    done_.reset();
  } else {
    while (generation_ == my_generation) co_await done_.wait();
  }
  co_await engine_.delay(collective_cost());
  co_return result_;
}

inline sim::Task<Comm::SplitResult> Comm::split(int rank, int color) {
  auto colors = co_await allgather(rank, static_cast<uint64_t>(color));
  // The first rank to resume after the gather builds the children once
  // per generation; detect by checking whether our color already has a
  // communicator assigned for this split.
  if (split_comm_of_rank_.size() != static_cast<size_t>(size_) ||
      split_generation_ != generation_) {
    split_comm_of_rank_.assign(static_cast<size_t>(size_), nullptr);
    split_rank_of_rank_.assign(static_cast<size_t>(size_), -1);
    // Group ranks by color in rank order.
    std::vector<uint64_t> unique_colors = colors;
    std::sort(unique_colors.begin(), unique_colors.end());
    unique_colors.erase(
        std::unique(unique_colors.begin(), unique_colors.end()),
        unique_colors.end());
    for (uint64_t c : unique_colors) {
      int members = 0;
      for (int r = 0; r < size_; ++r) {
        if (colors[static_cast<size_t>(r)] == c) ++members;
      }
      children_.push_back(
          std::unique_ptr<Comm>(new Comm(engine_, members, hop_latency_)));
      Comm* child = children_.back().get();
      int next = 0;
      for (int r = 0; r < size_; ++r) {
        if (colors[static_cast<size_t>(r)] == c) {
          split_comm_of_rank_[static_cast<size_t>(r)] = child;
          split_rank_of_rank_[static_cast<size_t>(r)] = next++;
        }
      }
    }
    split_generation_ = generation_;
  }
  co_return SplitResult{split_comm_of_rank_[static_cast<size_t>(rank)],
                        split_rank_of_rank_[static_cast<size_t>(rank)]};
}

}  // namespace nvmecr::minimpi
