// Discrete-event simulation engine.
//
// The engine owns the set of scheduled coroutine resumptions keyed by
// (simulated time, insertion sequence). Simulated entities are
// coroutines (sim::Task) that co_await timing awaitables:
//
//   co_await eng.delay(10 * kMicrosecond);   // charge CPU / device time
//   co_await eng.sleep_until(t);
//
// Determinism: ties in time resume in insertion order; no wall-clock or
// thread scheduling is involved anywhere.
//
// Three-tier scheduler (DESIGN.md §11):
//
//   1. Now ring — resumptions scheduled *at the current time*
//      (schedule_now(), yield(), zero delays, same-time wakeups from
//      queue arbitration) go to a FIFO ring with O(1) push/pop.
//   2. Calendar — strictly-future timestamps within a sliding window of
//      kCalBuckets fixed-width buckets land in their bucket with an O(1)
//      unsorted append; a bucket is sorted once when it matures and then
//      drained as one contiguous FIFO. This is where the bulk of a real
//      run's events live (e2e.ring_hit_frac measured 0.0023 — almost
//      everything is a real future timestamp).
//   3. Binary min-heap — timestamps beyond the calendar window. The
//      window rotates onto the heap's earliest bucket whenever the
//      calendar drains, pulling everything below the new window limit
//      back down into buckets.
//
// The global insertion sequence keeps the dispatch order bit-identical
// to a single (time, seq) priority queue across all three tiers:
//   - heap entries are always >= the calendar window limit, which is
//     strictly greater than every calendar timestamp, so the calendar
//     front (when present) is the global future minimum;
//   - within the calendar, drained items live in buckets <= the drain
//     bucket and bucket items in buckets beyond it, so the sorted drain
//     buffer's front is the calendar minimum; late arrivals that land at
//     or behind the drain bucket are sorted-inserted behind the cursor;
//   - ring entries are always newer (larger seq) than any future entry
//     that matured to the same timestamp, and the dispatch loop drains
//     matured future entries first.
// set_calendar_enabled(false) collapses tiers 2–3 back into the plain
// heap — the in-process baseline arm for perf_suite, asserted
// schedule-identical by perf_determinism_test.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "simcore/task.h"

namespace nvmecr::sim {

class DispatchProfiler;
class TraceCollector;

class Engine {
 public:
  Engine() {
    heap_.reserve(kInitialCapacity);
    ring_.resize(kInitialCapacity);
    cal_buckets_.resize(kCalBuckets);
  }
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time (ns).
  SimTime now() const { return now_; }

  /// Schedules `h` to resume at absolute time `t` (clamped to now). The
  /// current profile context is captured with the event so the dispatch
  /// profiler can attribute the resumption to the scheduling scope.
  void schedule_at(SimTime t, std::coroutine_handle<> h) {
    if (t <= now_) {
      if (now_ring_enabled_) {
        ring_push(Ready{seq_++, h, profile_ctx_});
        return;
      }
      t = now_;
    }
    future_push(Item{t, seq_++, h, profile_ctx_});
  }

  /// Schedules `h` to resume at the current time, after already-queued
  /// same-time items.
  void schedule_now(std::coroutine_handle<> h) { schedule_at(now_, h); }

  /// Awaitable: suspend for `d` nanoseconds of simulated time.
  auto delay(SimDuration d) { return SleepAwaiter{this, now_ + (d > 0 ? d : 0)}; }

  /// Awaitable: suspend until absolute simulated time `t`.
  auto sleep_until(SimTime t) { return SleepAwaiter{this, t}; }

  /// Awaitable: yield to other same-time events, then continue.
  auto yield() { return SleepAwaiter{this, now_}; }

  /// Starts a detached root task. The engine keeps the coroutine alive
  /// until it finishes; the task begins at the current simulated time
  /// once the run loop reaches it.
  void spawn(Task<void> task);

  /// Runs until no scheduled events remain. Returns the final time.
  SimTime run();

  /// Runs until `deadline` (events at exactly `deadline` still fire).
  SimTime run_until(SimTime deadline);

  /// Spawns `task`, runs the engine to quiescence, and returns the task's
  /// result. Aborts with scheduler context if the task deadlocks (engine
  /// drained while the task is still pending).
  template <typename T>
  T run_task(Task<T> task) {
    std::optional<T> out;
    spawn(capture_result(std::move(task), out));
    run();
    if (!out.has_value()) die_deadlocked("run_task<T>");
    return std::move(*out);
  }
  void run_task(Task<void> task) {
    bool done = false;
    spawn(mark_done(std::move(task), done));
    run();
    if (!done) die_deadlocked("run_task<void>");
  }

  /// Like run_task, but a deadlocked task returns nullopt instead of
  /// aborting the process. The crash-exploration harness uses this: a
  /// recover() that hangs on a mangled image is a reportable finding,
  /// not a reason to kill the whole enumeration. The stuck frame is
  /// reclaimed by the engine destructor, so the caller must treat the
  /// engine as poisoned (discard it) after a nullopt.
  template <typename T>
  std::optional<T> try_run_task(Task<T> task) {
    std::optional<T> out;
    spawn(capture_result(std::move(task), out));
    run();
    return out;
  }

  /// Number of spawned root tasks that have not yet completed. Nonzero
  /// after run() returns means a deadlock (task awaiting an event that
  /// never fires).
  int live_roots() const { return live_roots_; }

  /// Internal: root_wrapper reports its own frame here when the root
  /// completes; the run loop destroys it at the next dispatch boundary
  /// (the frame is parked at final_suspend by then). Bounds peak frame
  /// memory on long runs — finished roots no longer wait for a sweep.
  void on_root_finished(std::coroutine_handle<> h) {
    finished_roots_.push_back(h);
  }

  // --- host-performance observability ---------------------------------
  /// Total resumptions dispatched by the run loop.
  uint64_t events_dispatched() const { return events_dispatched_; }
  /// Dispatches served from the O(1) now ring (vs calendar/heap).
  uint64_t now_ring_hits() const { return now_ring_hits_; }
  /// Dispatches served from a matured calendar bucket (vs the heap).
  uint64_t calendar_hits() const { return calendar_hits_; }

  /// Disables the now ring so every event goes through the future tiers
  /// — the pre-two-tier dispatch path. The schedule must be
  /// bit-identical either way; perf_suite uses this as its in-process
  /// baseline and the determinism regression test asserts the
  /// equivalence. Only call on a quiescent engine (empty ring).
  void set_now_ring_enabled(bool enabled) {
    NVMECR_CHECK(ring_size_ == 0);
    now_ring_enabled_ = enabled;
  }
  bool now_ring_enabled() const { return now_ring_enabled_; }

  /// Disables the calendar tier so every future event goes through the
  /// binary heap — the pre-calendar dispatch path. Schedule-neutral by
  /// construction (perf_determinism_test pins it); perf_suite's e2e
  /// baseline arm runs with both this and the frame pool off. Only call
  /// on a quiescent calendar (no calendar-resident events); toggling
  /// resets the window so a stale limit can never misroute an insert.
  void set_calendar_enabled(bool enabled) {
    NVMECR_CHECK(cal_count_ == 0);
    calendar_enabled_ = enabled;
    cal_limit_ = 0;  // window re-engages on the next rotation
  }
  bool calendar_enabled() const { return calendar_enabled_; }

  /// Test hook: called once per dispatched event with (time, seq) before
  /// the resumption runs. Used by the determinism golden-trace test;
  /// null (the default) costs one branch per event.
  void set_dispatch_probe(std::function<void(SimTime, uint64_t)> probe) {
    dispatch_probe_ = std::move(probe);
  }

  // --- wall-clock dispatch profiling (simcore/profile.h) ---------------
  /// Arms (or disarms, with null) the per-event wall-clock profiler. The
  /// profiler only reads host clocks and writes its own buckets — it can
  /// never perturb the simulated schedule. Not owned.
  void set_profiler(DispatchProfiler* profiler) { profiler_ = profiler; }
  DispatchProfiler* profiler() const { return profiler_; }

  /// Interns `name` as a cost-center tag on the armed profiler. Returns
  /// 0 when no profiler is armed, which turns every ProfileTagScope
  /// built from the result into a no-op — call sites cache the tag once
  /// and pay nothing when profiling is off.
  uint16_t profile_tag(const char* name);

  /// Enables the rank/meta context-stamping hooks (ProfileRankScope /
  /// ProfileMetaScope). Off by default so un-profiled runs skip even the
  /// context arithmetic; the perf_suite overhead gate measures exactly
  /// this flag's cost.
  void set_profile_hooks(bool enabled) { profile_hooks_ = enabled; }
  bool profile_hooks() const { return profile_hooks_; }

  /// Raw profile-context word (see simcore/profile.h for the encoding).
  /// Scopes save/restore it; the epoch analyzer decodes rank + meta bit.
  uint32_t profile_ctx() const { return profile_ctx_; }
  void set_profile_ctx(uint32_t ctx) { profile_ctx_ = ctx; }

  /// Registers a trace collector as this engine's flight recorder: the
  /// deadlock CHECK dumps its tail (alongside the top dispatch cost
  /// centers) so hangs are diagnosable from the failure log alone. Works
  /// best with a ring-mode collector (TraceCollector::set_ring_capacity)
  /// but any collector's tail is printable. Not owned.
  void set_flight_recorder(const TraceCollector* flight) { flight_ = flight; }

 private:
  static constexpr size_t kInitialCapacity = 256;
  // Calendar geometry: 4096 ns buckets x 2048 buckets ≈ an 8.4 ms
  // window, sized so a checkpoint epoch's fabric/SSD completions (µs to
  // low ms ahead of now) land in buckets while rare long sleeps
  // (health-monitor periods, PFS drains) overflow to the heap.
  static constexpr int kCalShift = 14;        // log2(bucket width in ns)
  static constexpr size_t kCalBuckets = 512;  // power of two
  static constexpr size_t kCalWords = kCalBuckets / 64;

  struct Item {
    SimTime time;
    uint64_t seq;
    std::coroutine_handle<> handle;
    uint32_t ctx;  // profile context captured at schedule time
    /// Min order: earliest time first, FIFO within a time.
    bool earlier_than(const Item& other) const {
      if (time != other.time) return time < other.time;
      return seq < other.seq;
    }
  };

  struct Ready {
    uint64_t seq;
    std::coroutine_handle<> handle;
    uint32_t ctx;  // profile context captured at schedule time
  };

  struct SleepAwaiter {
    Engine* engine;
    SimTime wake_at;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const {
      engine->schedule_at(wake_at, h);
    }
    void await_resume() const noexcept {}
  };

  template <typename T>
  static Task<void> capture_result(Task<T> task, std::optional<T>& out) {
    out.emplace(co_await std::move(task));
  }
  static Task<void> mark_done(Task<void> task, bool& done) {
    co_await std::move(task);
    done = true;
  }

  // --- future tiers: calendar + intrusive binary min-heap --------------
  /// Routes a strictly-future (or clamped-to-now, ring-disabled) event
  /// to the calendar when it falls inside the window, else to the heap.
  void future_push(Item item) {
    if (calendar_enabled_ && item.time < cal_limit_) {
      cal_push(item);
    } else {
      heap_push(item);
    }
  }

  /// Earliest future event across calendar + heap, or null when none.
  /// Matures calendar buckets / rotates the window as a side effect, so
  /// call it immediately before pop_future().
  const Item* future_front() {
    if (calendar_enabled_) {
      if (cal_pos_ != cal_cur_.size()) return &cal_cur_[cal_pos_];
      if (cal_count_ != 0 || !heap_.empty()) {
        cal_settle();
        if (cal_pos_ != cal_cur_.size()) return &cal_cur_[cal_pos_];
      }
    }
    return heap_.empty() ? nullptr : &heap_.front();
  }

  /// Pops the event future_front() just returned.
  Item pop_future() {
    if (calendar_enabled_ && cal_pos_ != cal_cur_.size()) {
      ++calendar_hits_;
      --cal_count_;
      return cal_cur_[cal_pos_++];
    }
    return heap_pop();
  }

  void cal_push(Item item) {
    const int64_t b = item.time >> kCalShift;
    if (b > cal_cur_bucket_) {
      const size_t slot = static_cast<size_t>(b) & (kCalBuckets - 1);
      cal_buckets_[slot].push_back(item);
      cal_bitmap_[slot >> 6] |= 1ull << (slot & 63);
      ++cal_count_;
      return;
    }
    cal_insert_sorted(item);  // lands at/behind the drain cursor (rare)
  }

  void cal_settle();             // refill cal_cur_ from buckets / heap
  void cal_mature_next();        // sort the next occupied bucket into cal_cur_
  void cal_rotate();             // re-window onto the heap's earliest bucket
  void cal_insert_sorted(Item item);

  // (std::priority_queue hides its container, which prevents reserving
  // and costs an extra indirection on the hottest host path.)
  void heap_push(Item item);
  Item heap_pop();

  // --- growable circular FIFO for same-time resumptions ----------------
  void ring_push(Ready r);
  Ready ring_pop() {
    Ready r = ring_[ring_head_];
    ring_head_ = (ring_head_ + 1) & (ring_.size() - 1);
    --ring_size_;
    return r;
  }
  void ring_grow();

  /// Defined in engine.cc (needs the complete DispatchProfiler type);
  /// still inlined into the run loop, its only caller.
  void dispatch(SimTime t, uint64_t seq, std::coroutine_handle<> h,
                uint32_t ctx, bool from_ring);

  /// Destroys root frames reported by on_root_finished() (parked at
  /// final_suspend) and drops them from the live-root registry. Called
  /// at the dispatch boundary; the run loop pays one emptiness branch.
  void destroy_finished_roots();

  [[noreturn]] void die_deadlocked(const char* where) const;

  std::vector<Item> heap_;          // binary min-heap, beyond the window
  std::vector<Ready> ring_;         // power-of-two circular buffer
  size_t ring_head_ = 0;
  size_t ring_size_ = 0;
  std::vector<std::coroutine_handle<>> pending_destroy_;  // live root frames
  std::vector<std::coroutine_handle<>> finished_roots_;
  // Calendar state. cal_cur_ is the sorted drain buffer for the bucket
  // most recently matured (cal_cur_bucket_); cal_count_ counts every
  // undispatched calendar-resident event (buckets + drain tail).
  // cal_limit_ is the exclusive window end: heap times are always >= it.
  // It starts at 0 (calendar disengaged) until the first rotation.
  std::vector<std::vector<Item>> cal_buckets_;
  uint64_t cal_bitmap_[kCalWords] = {};
  std::vector<Item> cal_cur_;
  size_t cal_pos_ = 0;
  size_t cal_count_ = 0;
  int64_t cal_base_bucket_ = 0;
  int64_t cal_cur_bucket_ = -1;
  SimTime cal_limit_ = 0;
  SimTime now_ = 0;
  uint64_t seq_ = 0;
  int live_roots_ = 0;
  bool now_ring_enabled_ = true;
  bool calendar_enabled_ = true;
  uint64_t events_dispatched_ = 0;
  uint64_t now_ring_hits_ = 0;
  uint64_t calendar_hits_ = 0;
  std::function<void(SimTime, uint64_t)> dispatch_probe_;
  DispatchProfiler* profiler_ = nullptr;      // not owned
  const TraceCollector* flight_ = nullptr;    // not owned
  uint32_t profile_ctx_ = 0;
  bool profile_hooks_ = false;
};

}  // namespace nvmecr::sim
