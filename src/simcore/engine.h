// Discrete-event simulation engine.
//
// The engine owns a priority queue of scheduled coroutine resumptions
// keyed by (simulated time, insertion sequence). Simulated entities are
// coroutines (sim::Task) that co_await timing awaitables:
//
//   co_await eng.delay(10 * kMicrosecond);   // charge CPU / device time
//   co_await eng.sleep_until(t);
//
// Determinism: ties in time resume in insertion order; no wall-clock or
// thread scheduling is involved anywhere.
#pragma once

#include <coroutine>
#include <cstdint>
#include <queue>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "simcore/task.h"

namespace nvmecr::sim {

class Engine {
 public:
  Engine() = default;
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time (ns).
  SimTime now() const { return now_; }

  /// Schedules `h` to resume at absolute time `t` (clamped to now).
  void schedule_at(SimTime t, std::coroutine_handle<> h) {
    if (t < now_) t = now_;
    queue_.push(Item{t, seq_++, h});
  }

  /// Schedules `h` to resume at the current time, after already-queued
  /// same-time items.
  void schedule_now(std::coroutine_handle<> h) { schedule_at(now_, h); }

  /// Awaitable: suspend for `d` nanoseconds of simulated time.
  auto delay(SimDuration d) { return SleepAwaiter{this, now_ + (d > 0 ? d : 0)}; }

  /// Awaitable: suspend until absolute simulated time `t`.
  auto sleep_until(SimTime t) { return SleepAwaiter{this, t}; }

  /// Awaitable: yield to other same-time events, then continue.
  auto yield() { return SleepAwaiter{this, now_}; }

  /// Starts a detached root task. The engine keeps the coroutine alive
  /// until it finishes; the task begins at the current simulated time
  /// once the run loop reaches it.
  void spawn(Task<void> task);

  /// Runs until no scheduled events remain. Returns the final time.
  SimTime run();

  /// Runs until `deadline` (events at exactly `deadline` still fire).
  SimTime run_until(SimTime deadline);

  /// Spawns `task`, runs the engine to quiescence, and returns the task's
  /// result. CHECK-fails if the task deadlocks (engine drained while the
  /// task is still pending).
  template <typename T>
  T run_task(Task<T> task) {
    std::optional<T> out;
    spawn(capture_result(std::move(task), out));
    run();
    NVMECR_CHECK(out.has_value());
    return std::move(*out);
  }
  void run_task(Task<void> task) {
    bool done = false;
    spawn(mark_done(std::move(task), done));
    run();
    NVMECR_CHECK(done);
  }

  /// Number of spawned root tasks that have not yet completed. Nonzero
  /// after run() returns means a deadlock (task awaiting an event that
  /// never fires).
  int live_roots() const { return live_roots_; }

 private:
  struct Item {
    SimTime time;
    uint64_t seq;
    std::coroutine_handle<> handle;
    bool operator>(const Item& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  struct SleepAwaiter {
    Engine* engine;
    SimTime wake_at;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const {
      engine->schedule_at(wake_at, h);
    }
    void await_resume() const noexcept {}
  };

  template <typename T>
  static Task<void> capture_result(Task<T> task, std::optional<T>& out) {
    out.emplace(co_await std::move(task));
  }
  static Task<void> mark_done(Task<void> task, bool& done) {
    co_await std::move(task);
    done = true;
  }

  /// Destroys frames of completed root tasks (they park at final_suspend
  /// with no continuation).
  void reap_finished_roots();

  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> queue_;
  std::vector<std::coroutine_handle<>> pending_destroy_;
  SimTime now_ = 0;
  uint64_t seq_ = 0;
  int live_roots_ = 0;
};

}  // namespace nvmecr::sim
