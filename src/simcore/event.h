// One-shot / resettable broadcast event and a join counter for structured
// fan-out, both engine-scheduled (waiters resume through the run loop so
// same-time ordering stays deterministic).
#pragma once

#include <coroutine>
#include <vector>

#include "simcore/engine.h"

namespace nvmecr::sim {

/// Broadcast event. wait() suspends until set() is called; set() wakes all
/// current waiters. reset() re-arms the event.
class Event {
 public:
  explicit Event(Engine& engine) : engine_(engine) {}

  bool is_set() const { return set_; }

  void set() {
    if (set_) return;
    set_ = true;
    for (auto h : waiters_) engine_.schedule_now(h);
    waiters_.clear();
  }

  void reset() { set_ = false; }

  auto wait() {
    struct Awaiter {
      Event* event;
      bool await_ready() const noexcept { return event->set_; }
      void await_suspend(std::coroutine_handle<> h) {
        event->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  Engine& engine_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Join counter for fan-out/fan-in: arms with `add()` per child, children
/// call `done()`, the parent co_awaits `wait()` until the count drains.
class JoinCounter {
 public:
  explicit JoinCounter(Engine& engine) : engine_(engine), event_(engine) {}

  void add(int n = 1) {
    pending_ += n;
    if (pending_ > 0) event_.reset();
  }

  void done() {
    NVMECR_CHECK(pending_ > 0);
    if (--pending_ == 0) event_.set();
  }

  /// Spawns `task` as an engine root and counts it toward this joiner.
  void spawn(Task<void> task) {
    add();
    engine_.spawn(notify_when_done(std::move(task), this));
  }

  auto wait() {
    if (pending_ == 0) event_.set();
    return event_.wait();
  }

  int pending() const { return pending_; }

 private:
  static Task<void> notify_when_done(Task<void> task, JoinCounter* self) {
    co_await std::move(task);
    self->done();
  }

  Engine& engine_;
  Event event_;
  int pending_ = 0;
};

}  // namespace nvmecr::sim
