#include "simcore/trace.h"

#include <map>

#include "simcore/engine.h"

namespace nvmecr::sim {

std::string TraceCollector::to_json() const {
  // Stable tid assignment per track, in first-appearance order.
  std::map<std::string, int> tids;
  for (const Event& e : events_) {
    tids.emplace(e.track, static_cast<int>(tids.size()) + 1);
  }

  std::string out = "[\n";
  char line[512];
  bool first = true;
  for (const auto& [track, tid] : tids) {
    std::snprintf(line, sizeof(line),
                  "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%d,\"args\":{\"name\":\"%s\"}}",
                  first ? "" : ",\n", tid, track.c_str());
    out += line;
    first = false;
  }
  for (const Event& e : events_) {
    const double ts_us = static_cast<double>(e.start) / 1e3;
    if (e.end > e.start) {
      const double dur_us = static_cast<double>(e.end - e.start) / 1e3;
      std::snprintf(line, sizeof(line),
                    "%s{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,"
                    "\"ts\":%.3f,\"dur\":%.3f}",
                    first ? "" : ",\n", e.name.c_str(), tids.at(e.track),
                    ts_us, dur_us);
    } else {
      std::snprintf(line, sizeof(line),
                    "%s{\"name\":\"%s\",\"ph\":\"i\",\"pid\":1,\"tid\":%d,"
                    "\"ts\":%.3f,\"s\":\"t\"}",
                    first ? "" : ",\n", e.name.c_str(), tids.at(e.track),
                    ts_us);
    }
    out += line;
    first = false;
  }
  out += "\n]\n";
  return out;
}

bool TraceCollector::write(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

TraceSpan::TraceSpan(TraceCollector* collector, std::string track,
                     std::string name, const Engine& engine)
    : collector_(collector),
      track_(std::move(track)),
      name_(std::move(name)),
      engine_(engine),
      start_(engine.now()) {}

TraceSpan::~TraceSpan() {
  if (collector_ != nullptr) {
    collector_->add_span(track_, name_, start_, engine_.now());
  }
}

}  // namespace nvmecr::sim
