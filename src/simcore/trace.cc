#include "simcore/trace.h"

#include <map>

#include "simcore/engine.h"

namespace nvmecr::sim {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string TraceCollector::to_json() const {
  // Stable tid assignment per track, in first-appearance order (for a
  // wrapped ring, first appearance among the retained tail).
  std::map<std::string, int> tids;
  for (size_t i = 0; i < events_.size(); ++i) {
    const Event& e = chrono(i);
    tids.emplace(e.track, static_cast<int>(tids.size()) + 1);
  }

  std::string out = "[\n";
  char line[256];
  bool first = true;
  for (const auto& [track, tid] : tids) {
    std::snprintf(line, sizeof(line),
                  "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%d,\"args\":{\"name\":\"",
                  first ? "" : ",\n", tid);
    out += line;
    out += json_escape(track);
    out += "\"}}";
    first = false;
  }
  for (size_t i = 0; i < events_.size(); ++i) {
    const Event& e = chrono(i);
    const double ts_us = static_cast<double>(e.start) / 1e3;
    out += first ? "" : ",\n";
    out += "{\"name\":\"";
    out += json_escape(e.name);
    out += "\"";
    switch (e.kind) {
      case Kind::kSpan: {
        const double dur_us = static_cast<double>(e.end - e.start) / 1e3;
        std::snprintf(line, sizeof(line),
                      ",\"ph\":\"X\",\"pid\":1,\"tid\":%d,"
                      "\"ts\":%.3f,\"dur\":%.3f",
                      tids.at(e.track), ts_us, dur_us);
        out += line;
        if (!e.args.empty()) {
          out += ",\"args\":{";
          bool first_arg = true;
          for (const auto& [key, value] : e.args) {
            out += first_arg ? "\"" : ",\"";
            out += json_escape(key);
            std::snprintf(line, sizeof(line), "\":%.17g", value);
            out += line;
            first_arg = false;
          }
          out += "}";
        }
        break;
      }
      case Kind::kInstant:
        std::snprintf(line, sizeof(line),
                      ",\"ph\":\"i\",\"pid\":1,\"tid\":%d,"
                      "\"ts\":%.3f,\"s\":\"t\"",
                      tids.at(e.track), ts_us);
        out += line;
        break;
      case Kind::kCounter:
        std::snprintf(line, sizeof(line),
                      ",\"ph\":\"C\",\"pid\":1,\"tid\":%d,"
                      "\"ts\":%.3f,\"args\":{\"value\":%.17g}",
                      tids.at(e.track), ts_us, e.value);
        out += line;
        break;
    }
    out += "}";
    first = false;
  }
  out += "\n]\n";
  return out;
}

void TraceCollector::dump_tail(std::FILE* out, size_t max_events) const {
  const size_t n = events_.size();
  const size_t shown = n < max_events ? n : max_events;
  if (total_added_ > shown) {
    std::fprintf(out, "  ... %llu earlier events not retained ...\n",
                 static_cast<unsigned long long>(total_added_ - shown));
  }
  for (size_t i = n - shown; i < n; ++i) {
    const Event& e = chrono(i);
    const double ts_us = static_cast<double>(e.start) / 1e3;
    switch (e.kind) {
      case Kind::kSpan:
        std::fprintf(out, "  [%12.3f us] %-16s span    %s (%.3f us)\n", ts_us,
                     e.track.c_str(), e.name.c_str(),
                     static_cast<double>(e.end - e.start) / 1e3);
        break;
      case Kind::kInstant:
        std::fprintf(out, "  [%12.3f us] %-16s instant %s\n", ts_us,
                     e.track.c_str(), e.name.c_str());
        break;
      case Kind::kCounter:
        std::fprintf(out, "  [%12.3f us] %-16s counter %s=%g\n", ts_us,
                     e.track.c_str(), e.name.c_str(), e.value);
        break;
    }
  }
}

bool TraceCollector::write(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

TraceSpan::TraceSpan(TraceCollector* collector, std::string track,
                     std::string name, const Engine& engine)
    : collector_(collector),
      track_(std::move(track)),
      name_(std::move(name)),
      engine_(engine),
      start_(engine.now()) {}

TraceSpan::~TraceSpan() {
  if (collector_ != nullptr) {
    collector_->add_span(track_, name_, start_, engine_.now());
  }
}

}  // namespace nvmecr::sim
