// Host wall-clock dispatch profiler for the DES engine (DESIGN.md §9).
//
// Answers "where does the simulator's wall time go" by attributing the
// host nanoseconds between consecutive dispatches to the *cost center*
// of the event being left: every scheduled resumption carries a 32-bit
// profile context captured at schedule time, and the run loop hands it
// to the profiler on dispatch. One steady_clock read per event (the
// interval [dispatch N, dispatch N+1) is charged to event N's tag), so
// an armed profiler costs a single clock read plus two array updates
// per event — and an unarmed one costs one branch.
//
// The context word encodes three orthogonal facts:
//
//   bits  0..14  cost-center tag (intern()ed name; 0 = untagged)
//   bit      15  metadata flag: the event belongs to oplog maintenance
//                (the epoch analyzer redirects nested device phases)
//   bits 16..31  rank + 1 (0 = no rank) for per-rank phase attribution
//
// RAII scopes stamp the current context; because the engine restores
// each event's *captured* context on dispatch, a scope held across
// co_await attributes exactly the events its coroutine schedules —
// interleaved tasks cannot bleed into each other's cost centers.
//
// Wall-clock readings live only inside the profiler's buckets, never in
// simulation state: arming it cannot perturb the event schedule (the
// perf_determinism golden fingerprint pins this).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace nvmecr::sim {

namespace profile_ctx {
inline constexpr uint32_t kTagMask = 0x7fff;
inline constexpr uint32_t kMetaBit = 0x8000;
inline constexpr uint32_t kRankShift = 16;
}  // namespace profile_ctx

class DispatchProfiler {
 public:
  DispatchProfiler();

  /// Registers (or finds) a cost-center name; returns its tag. Tag 0 is
  /// reserved for untagged events. Call at setup time, not per event.
  uint16_t intern(std::string_view name);

  /// Hot path, called by Engine::dispatch on every event: charges the
  /// wall time since the previous call to the *previous* event's tag,
  /// then opens the accounting window for this one.
  void begin_event(uint32_t ctx, bool from_ring) {
    const uint64_t now = now_ns();
    if (open_) buckets_[last_tag_].wall_ns += now - last_ns_;
    open_ = true;
    last_ns_ = now;
    uint16_t tag = static_cast<uint16_t>(ctx & profile_ctx::kTagMask);
    if (tag >= buckets_.size()) tag = 0;
    last_tag_ = tag;
    Bucket& b = buckets_[tag];
    ++b.dispatches;
    b.ring_hits += from_ring ? 1 : 0;
  }

  /// Closes the open attribution window (call when the run loop exits;
  /// time spent outside the loop is nobody's cost center).
  void finish() {
    if (open_) buckets_[last_tag_].wall_ns += now_ns() - last_ns_;
    open_ = false;
  }

  /// Drops all samples and re-bases the frame-allocation delta. Interned
  /// names survive (cached tags at call sites stay valid).
  void reset();

  struct CostCenter {
    std::string name;
    uint64_t wall_ns = 0;
    uint64_t dispatches = 0;
    uint64_t ring_hits = 0;  // dispatches served from the O(1) now ring
  };

  /// Cost centers sorted by wall_ns descending; zero-sample tags are
  /// omitted, untagged events appear as "(untagged)".
  std::vector<CostCenter> ranked() const;

  /// Human-readable ranked table (top `top_n` rows) with wall-time
  /// shares, dispatch counts, ring-hit fractions, and a footer with
  /// totals and the coroutine-frame allocation delta.
  std::string table(size_t top_n) const;

  uint64_t total_wall_ns() const;
  uint64_t total_dispatches() const;
  uint64_t total_ring_hits() const;
  /// Coroutine frames allocated since construction / reset().
  uint64_t frame_allocations() const;

 private:
  struct Bucket {
    uint64_t wall_ns = 0;
    uint64_t dispatches = 0;
    uint64_t ring_hits = 0;
  };

  static uint64_t now_ns();

  std::vector<Bucket> buckets_;     // index = tag; [0] = untagged
  std::vector<std::string> names_;  // names_[tag - 1]
  uint64_t frame_allocs_base_ = 0;
  uint64_t last_ns_ = 0;
  uint16_t last_tag_ = 0;
  bool open_ = false;
};

}  // namespace nvmecr::sim

#include "simcore/engine.h"

namespace nvmecr::sim {

/// Stamps cost-center `tag` (from Engine::profile_tag / intern) into the
/// engine's profile context for the scope's lifetime. A zero tag — the
/// value profile_tag returns when no profiler is armed — makes the scope
/// a no-op beyond the save/restore of one word. Safe to hold across
/// co_await: each scheduled event captures the context at schedule time
/// and dispatch restores it, so suspension cannot leak the tag into
/// other tasks.
class ProfileTagScope {
 public:
  ProfileTagScope(Engine& engine, uint16_t tag)
      : engine_(engine), saved_(engine.profile_ctx()) {
    if (tag != 0) {
      engine.set_profile_ctx((saved_ & ~profile_ctx::kTagMask) | tag);
    }
  }
  ~ProfileTagScope() { engine_.set_profile_ctx(saved_); }
  ProfileTagScope(const ProfileTagScope&) = delete;
  ProfileTagScope& operator=(const ProfileTagScope&) = delete;

 private:
  Engine& engine_;
  uint32_t saved_;
};

/// Stamps `rank` into the context's high half so the epoch critical-path
/// analyzer can attribute nested device/fabric phases to the rank whose
/// operation is in flight. No-op unless profile hooks are armed.
class ProfileRankScope {
 public:
  ProfileRankScope(Engine& engine, uint32_t rank)
      : engine_(engine), saved_(engine.profile_ctx()) {
    if (engine.profile_hooks()) {
      engine.set_profile_ctx((saved_ & 0xffffu) |
                             ((rank + 1) << profile_ctx::kRankShift));
    }
  }
  ~ProfileRankScope() { engine_.set_profile_ctx(saved_); }
  ProfileRankScope(const ProfileRankScope&) = delete;
  ProfileRankScope& operator=(const ProfileRankScope&) = delete;

 private:
  Engine& engine_;
  uint32_t saved_;
};

/// Marks the scope as oplog/metadata maintenance (context bit 15): the
/// epoch analyzer books nested fabric/queue/flash time under the oplog
/// phase instead of double-counting it as data-plane IO. No-op unless
/// profile hooks are armed.
class ProfileMetaScope {
 public:
  explicit ProfileMetaScope(Engine& engine)
      : engine_(engine), saved_(engine.profile_ctx()) {
    if (engine.profile_hooks()) {
      engine.set_profile_ctx(saved_ | profile_ctx::kMetaBit);
    }
  }
  ~ProfileMetaScope() { engine_.set_profile_ctx(saved_); }
  ProfileMetaScope(const ProfileMetaScope&) = delete;
  ProfileMetaScope& operator=(const ProfileMetaScope&) = delete;

 private:
  Engine& engine_;
  uint32_t saved_;
};

}  // namespace nvmecr::sim
