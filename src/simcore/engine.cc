#include "simcore/engine.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "simcore/profile.h"
#include "simcore/trace.h"

namespace nvmecr::sim {

namespace {

/// Awaiter that hands a coroutine its own handle (suspends, records the
/// handle, resumes immediately).
struct SelfHandle {
  std::coroutine_handle<> handle;
  bool await_ready() noexcept { return false; }
  bool await_suspend(std::coroutine_handle<> h) noexcept {
    handle = h;
    return false;  // never actually suspend
  }
  std::coroutine_handle<> await_resume() noexcept { return handle; }
};

/// Wrapper that owns a detached root task's frame, decrements the
/// engine's live-root counter on completion, and reports its own frame
/// for destruction at the next dispatch boundary. A non-capturing lambda
/// coroutine would also work; a named function is clearer.
Task<void> root_wrapper(Engine* eng, Task<void> inner, int* live_roots) {
  const std::coroutine_handle<> self = co_await SelfHandle{};
  co_await std::move(inner);
  --*live_roots;
  // After co_return this frame parks at final_suspend (no continuation),
  // control returns to the run loop, and the loop destroys it.
  eng->on_root_finished(self);
}

}  // namespace

void Engine::spawn(Task<void> task) {
  ++live_roots_;
  Task<void> wrapper = root_wrapper(this, std::move(task), &live_roots_);
  // Transfer frame ownership to the engine: the run loop resumes the
  // wrapper; on completion it reports itself via on_root_finished() and
  // is destroyed eagerly. pending_destroy_ tracks frames that never got
  // there (deadlocked or never-started roots) for the destructor.
  std::coroutine_handle<> handle = wrapper.release();
  pending_destroy_.push_back(handle);
  schedule_now(handle);
}

void Engine::heap_push(Item item) {
  heap_.push_back(item);
  // Sift up.
  size_t i = heap_.size() - 1;
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!heap_[i].earlier_than(heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

Engine::Item Engine::heap_pop() {
  Item top = heap_.front();
  Item last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    // Sift down.
    size_t i = 0;
    const size_t n = heap_.size();
    for (;;) {
      const size_t l = 2 * i + 1;
      if (l >= n) break;
      const size_t r = l + 1;
      const size_t child =
          (r < n && heap_[r].earlier_than(heap_[l])) ? r : l;
      if (!heap_[child].earlier_than(last)) break;
      heap_[i] = heap_[child];
      i = child;
    }
    heap_[i] = last;
  }
  return top;
}

void Engine::ring_push(Ready r) {
  if (ring_size_ == ring_.size()) ring_grow();
  ring_[(ring_head_ + ring_size_) & (ring_.size() - 1)] = r;
  ++ring_size_;
}

void Engine::ring_grow() {
  // Double the power-of-two storage, unrolling the wrapped contents into
  // the front of the new buffer.
  std::vector<Ready> bigger(ring_.size() * 2);
  for (size_t i = 0; i < ring_size_; ++i) {
    bigger[i] = ring_[(ring_head_ + i) & (ring_.size() - 1)];
  }
  ring_ = std::move(bigger);
  ring_head_ = 0;
}

void Engine::cal_insert_sorted(Item item) {
  // A late arrival whose bucket is at or behind the drain bucket: its
  // dispatch slot is inside (or before) the buffer being drained. Keep
  // the buffer sorted by inserting behind the cursor; already-dispatched
  // entries (before cal_pos_) all have smaller (time, seq).
  ++cal_count_;
  // Chained short sleeps (a resumption re-arming within the drain
  // bucket) carry a fresh seq and usually the latest time too, so the
  // common case is an append — skip the search and the memmove.
  if (cal_cur_.empty() || !item.earlier_than(cal_cur_.back())) {
    cal_cur_.push_back(item);
    return;
  }
  auto it = std::lower_bound(
      cal_cur_.begin() + static_cast<ptrdiff_t>(cal_pos_), cal_cur_.end(),
      item,
      [](const Item& a, const Item& b) { return a.earlier_than(b); });
  cal_cur_.insert(it, item);
}

void Engine::cal_settle() {
  while (cal_pos_ == cal_cur_.size()) {
    cal_cur_.clear();
    cal_pos_ = 0;
    if (cal_count_ != 0) {
      cal_mature_next();
      continue;
    }
    if (heap_.empty()) return;
    cal_rotate();  // re-window onto now; loop matures anything captured
    if (cal_count_ == 0) return;  // heap min beyond the window: serve heap
  }
}

void Engine::cal_mature_next() {
  // Scan the occupancy bitmap for the first set bit at or after the
  // bucket following the drain bucket, in absolute-bucket order (the
  // window is exactly kCalBuckets wide, so slot order starting from the
  // scan origin *is* absolute order).
  const int64_t from = cal_cur_bucket_ + 1;
  const size_t origin = static_cast<size_t>(from) & (kCalBuckets - 1);
  size_t word = origin >> 6;
  uint64_t bits = cal_bitmap_[word] & (~0ull << (origin & 63));
  for (size_t scanned = 0;; ++scanned) {
    NVMECR_CHECK(scanned <= kCalWords);  // cal_count_ != 0 guarantees a hit
    if (bits != 0) {
      const size_t slot =
          (word << 6) | static_cast<size_t>(std::countr_zero(bits));
      const int64_t bucket =
          from + static_cast<int64_t>((slot - origin) & (kCalBuckets - 1));
      cal_cur_.swap(cal_buckets_[slot]);  // recycles both capacities
      std::sort(cal_cur_.begin(), cal_cur_.end(),
                [](const Item& a, const Item& b) { return a.earlier_than(b); });
      cal_bitmap_[slot >> 6] &= ~(1ull << (slot & 63));
      cal_cur_bucket_ = bucket;
      return;
    }
    word = (word + 1) & (kCalWords - 1);
    bits = cal_bitmap_[word];
  }
}

void Engine::cal_rotate() {
  // The calendar drained; re-anchor the window at the *current time*, so
  // near-future inserts — the common case — keep landing in buckets
  // ahead of the drain cursor. Anchoring at the heap minimum instead
  // would park the window arbitrarily far ahead whenever only long
  // timers remain (a barrier quiescing into a health-monitor sleep), and
  // every near insert until then would degenerate into a sorted insert
  // behind the cursor — O(buffer) memmove per event.
  const int64_t base = now_ >> kCalShift;
  cal_base_bucket_ = base;
  cal_cur_bucket_ = base - 1;
  cal_limit_ = (base + static_cast<int64_t>(kCalBuckets)) << kCalShift;
  if (heap_.front().time >= cal_limit_) return;  // nothing to capture
  // Pull everything below the new limit down into buckets. Linear
  // partition + re-heapify beats popping each mover individually.
  size_t keep = 0;
  for (size_t i = 0; i < heap_.size(); ++i) {
    if (heap_[i].time < cal_limit_) {
      cal_push(heap_[i]);
    } else {
      heap_[keep++] = heap_[i];
    }
  }
  heap_.resize(keep);
  std::make_heap(heap_.begin(), heap_.end(),
                 [](const Item& a, const Item& b) { return b.earlier_than(a); });
}

uint16_t Engine::profile_tag(const char* name) {
  return profiler_ ? profiler_->intern(name) : 0;
}

inline void Engine::dispatch(SimTime t, uint64_t seq,
                             std::coroutine_handle<> h, uint32_t ctx,
                             bool from_ring) {
  ++events_dispatched_;
  // Restore the context captured at schedule time: while this resumption
  // runs (and in anything it schedules), the profile scopes that were
  // live when it was scheduled are in effect again.
  profile_ctx_ = ctx;
  if (profiler_) profiler_->begin_event(ctx, from_ring);
  if (dispatch_probe_) dispatch_probe_(t, seq);
  if (!h.done()) h.resume();
  if (!finished_roots_.empty()) destroy_finished_roots();
}

SimTime Engine::run() { return run_until(INT64_MAX); }

SimTime Engine::run_until(SimTime deadline) {
  for (;;) {
    if (ring_size_ != 0 && now_ <= deadline) {
      // A future entry that matured to the current time was inserted
      // before now_ advanced here, so it carries a smaller seq than
      // every ring entry (pushed while now_ == current time) and must
      // dispatch first to preserve global (time, seq) order.
      const Item* f = future_front();
      if (f != nullptr && f->time <= now_ && f->seq < ring_[ring_head_].seq) {
        Item item = pop_future();
        dispatch(now_, item.seq, item.handle, item.ctx, /*from_ring=*/false);
      } else {
        Ready r = ring_pop();
        ++now_ring_hits_;
        dispatch(now_, r.seq, r.handle, r.ctx, /*from_ring=*/true);
      }
      continue;
    }
    const Item* f = future_front();
    if (f != nullptr && f->time <= deadline) {
      Item item = pop_future();
      if (item.time > now_) now_ = item.time;
      dispatch(now_, item.seq, item.handle, item.ctx, /*from_ring=*/false);
      continue;
    }
    break;
  }
  return now_;
}

void Engine::destroy_finished_roots() {
  // Rare relative to dispatches (once per completed root); the run loop
  // only calls in when the list is nonempty.
  for (std::coroutine_handle<> h : finished_roots_) {
    auto it = std::find(pending_destroy_.begin(), pending_destroy_.end(), h);
    NVMECR_CHECK(it != pending_destroy_.end());
    *it = pending_destroy_.back();
    pending_destroy_.pop_back();
    h.destroy();
  }
  finished_roots_.clear();
}

void Engine::die_deadlocked(const char* where) const {
  std::fprintf(stderr,
               "Engine::%s deadlock: engine drained but the task never "
               "completed (live_roots=%d, sim_time=%" PRId64
               " ns, events_dispatched=%" PRIu64
               ") — a root is awaiting an event that never fires\n",
               where, live_roots_, now_, events_dispatched_);
  // Post-mortem context so CI logs alone are enough to diagnose a hang:
  // the most recent trace events and where the host time went.
  if (flight_ != nullptr && flight_->size() > 0) {
    std::fprintf(stderr, "flight recorder tail (last events before hang):\n");
    flight_->dump_tail(stderr, 32);
  }
  if (profiler_ != nullptr) {
    std::fprintf(stderr, "top dispatch cost centers:\n%s",
                 profiler_->table(5).c_str());
  }
  std::abort();
}

Engine::~Engine() {
  // Deadlocked or never-finished roots; finished ones were already
  // destroyed at the dispatch boundary and removed from this registry.
  for (auto h : pending_destroy_) h.destroy();
}

}  // namespace nvmecr::sim
