#include "simcore/engine.h"

namespace nvmecr::sim {

namespace {

/// Wrapper that owns a detached root task's frame and decrements the
/// engine's live-root counter on completion. A non-capturing lambda
/// coroutine would also work; a named function is clearer.
Task<void> root_wrapper(Task<void> inner, int* live_roots) {
  co_await std::move(inner);
  --*live_roots;
}

}  // namespace

void Engine::spawn(Task<void> task) {
  ++live_roots_;
  Task<void> wrapper = root_wrapper(std::move(task), &live_roots_);
  // Transfer frame ownership to the engine: the run loop resumes the
  // wrapper; on completion it parks at final_suspend (done() == true) and
  // is destroyed by reap_finished_roots().
  std::coroutine_handle<> handle = wrapper.release();
  pending_destroy_.push_back(handle);
  schedule_now(handle);
}

SimTime Engine::run() { return run_until(INT64_MAX); }

SimTime Engine::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.top().time <= deadline) {
    Item item = queue_.top();
    queue_.pop();
    now_ = item.time;
    if (!item.handle.done()) item.handle.resume();
  }
  if (queue_.empty()) reap_finished_roots();
  return now_;
}

void Engine::reap_finished_roots() {
  for (auto it = pending_destroy_.begin(); it != pending_destroy_.end();) {
    if (it->done()) {
      it->destroy();
      it = pending_destroy_.erase(it);
    } else {
      ++it;
    }
  }
}

Engine::~Engine() {
  for (auto h : pending_destroy_) h.destroy();
}

}  // namespace nvmecr::sim
