#include "simcore/engine.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "simcore/profile.h"
#include "simcore/trace.h"

namespace nvmecr::sim {

namespace {

/// Wrapper that owns a detached root task's frame and decrements the
/// engine's live-root counter on completion. A non-capturing lambda
/// coroutine would also work; a named function is clearer.
Task<void> root_wrapper(Task<void> inner, int* live_roots) {
  co_await std::move(inner);
  --*live_roots;
}

}  // namespace

void Engine::spawn(Task<void> task) {
  ++live_roots_;
  Task<void> wrapper = root_wrapper(std::move(task), &live_roots_);
  // Transfer frame ownership to the engine: the run loop resumes the
  // wrapper; on completion it parks at final_suspend (done() == true) and
  // is destroyed by reap_finished_roots().
  std::coroutine_handle<> handle = wrapper.release();
  pending_destroy_.push_back(handle);
  schedule_now(handle);
}

void Engine::heap_push(Item item) {
  heap_.push_back(item);
  // Sift up.
  size_t i = heap_.size() - 1;
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!heap_[i].earlier_than(heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

Engine::Item Engine::heap_pop() {
  Item top = heap_.front();
  Item last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    // Sift down.
    size_t i = 0;
    const size_t n = heap_.size();
    for (;;) {
      const size_t l = 2 * i + 1;
      if (l >= n) break;
      const size_t r = l + 1;
      const size_t child =
          (r < n && heap_[r].earlier_than(heap_[l])) ? r : l;
      if (!heap_[child].earlier_than(last)) break;
      heap_[i] = heap_[child];
      i = child;
    }
    heap_[i] = last;
  }
  return top;
}

void Engine::ring_push(Ready r) {
  if (ring_size_ == ring_.size()) ring_grow();
  ring_[(ring_head_ + ring_size_) & (ring_.size() - 1)] = r;
  ++ring_size_;
}

void Engine::ring_grow() {
  // Double the power-of-two storage, unrolling the wrapped contents into
  // the front of the new buffer.
  std::vector<Ready> bigger(ring_.size() * 2);
  for (size_t i = 0; i < ring_size_; ++i) {
    bigger[i] = ring_[(ring_head_ + i) & (ring_.size() - 1)];
  }
  ring_ = std::move(bigger);
  ring_head_ = 0;
}

uint16_t Engine::profile_tag(const char* name) {
  return profiler_ ? profiler_->intern(name) : 0;
}

inline void Engine::dispatch(SimTime t, uint64_t seq,
                             std::coroutine_handle<> h, uint32_t ctx,
                             bool from_ring) {
  ++events_dispatched_;
  // Restore the context captured at schedule time: while this resumption
  // runs (and in anything it schedules), the profile scopes that were
  // live when it was scheduled are in effect again.
  profile_ctx_ = ctx;
  if (profiler_) profiler_->begin_event(ctx, from_ring);
  if (dispatch_probe_) dispatch_probe_(t, seq);
  if (!h.done()) h.resume();
}

SimTime Engine::run() { return run_until(INT64_MAX); }

SimTime Engine::run_until(SimTime deadline) {
  for (;;) {
    if (ring_size_ != 0 && now_ <= deadline) {
      // A heap entry that matured to the current time was inserted
      // before now_ advanced here, so it carries a smaller seq than
      // every ring entry (pushed while now_ == current time) and must
      // dispatch first to preserve global (time, seq) order.
      if (!heap_.empty() && heap_.front().time <= now_ &&
          heap_.front().seq < ring_[ring_head_].seq) {
        Item item = heap_pop();
        dispatch(now_, item.seq, item.handle, item.ctx, /*from_ring=*/false);
      } else {
        Ready r = ring_pop();
        ++now_ring_hits_;
        dispatch(now_, r.seq, r.handle, r.ctx, /*from_ring=*/true);
      }
      continue;
    }
    if (!heap_.empty() && heap_.front().time <= deadline) {
      Item item = heap_pop();
      if (item.time > now_) now_ = item.time;
      dispatch(now_, item.seq, item.handle, item.ctx, /*from_ring=*/false);
      continue;
    }
    break;
  }
  if (heap_.empty() && ring_size_ == 0) reap_finished_roots();
  return now_;
}

void Engine::reap_finished_roots() {
  for (auto it = pending_destroy_.begin(); it != pending_destroy_.end();) {
    if (it->done()) {
      it->destroy();
      it = pending_destroy_.erase(it);
    } else {
      ++it;
    }
  }
}

void Engine::die_deadlocked(const char* where) const {
  std::fprintf(stderr,
               "Engine::%s deadlock: engine drained but the task never "
               "completed (live_roots=%d, sim_time=%" PRId64
               " ns, events_dispatched=%" PRIu64
               ") — a root is awaiting an event that never fires\n",
               where, live_roots_, now_, events_dispatched_);
  // Post-mortem context so CI logs alone are enough to diagnose a hang:
  // the most recent trace events and where the host time went.
  if (flight_ != nullptr && flight_->size() > 0) {
    std::fprintf(stderr, "flight recorder tail (last events before hang):\n");
    flight_->dump_tail(stderr, 32);
  }
  if (profiler_ != nullptr) {
    std::fprintf(stderr, "top dispatch cost centers:\n%s",
                 profiler_->table(5).c_str());
  }
  std::abort();
}

Engine::~Engine() {
  for (auto h : pending_destroy_) h.destroy();
}

}  // namespace nvmecr::sim
