// Simulation trace export (chrome://tracing / Perfetto JSON).
//
// Actors annotate spans around interesting operations; the collector
// writes the standard Trace Event Format so a run can be inspected
// visually (device occupancy, per-rank checkpoint phases, metadata
// stalls). Tracing is opt-in and zero-cost when no collector is
// installed.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/units.h"

namespace nvmecr::sim {

class TraceCollector {
 public:
  /// Records a complete span (microsecond granularity in the output;
  /// the engine's nanoseconds are preserved as fractional us).
  void add_span(const std::string& track, const std::string& name,
                SimTime start, SimTime end) {
    events_.push_back(Event{track, name, start, end});
  }

  /// Instantaneous marker.
  void add_instant(const std::string& track, const std::string& name,
                   SimTime at) {
    events_.push_back(Event{track, name, at, at});
  }

  size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  /// Serializes to the Trace Event Format (JSON array of "X"/"i"
  /// events; "pid" 1, one "tid" per distinct track in insertion order).
  std::string to_json() const;

  /// Writes to_json() to `path`; best effort.
  bool write(const std::string& path) const;

 private:
  struct Event {
    std::string track;
    std::string name;
    SimTime start;
    SimTime end;
  };
  std::vector<Event> events_;
};

/// RAII span helper:
///   { TraceSpan span(collector, "rank3", "checkpoint", engine); ... }
class TraceSpan {
 public:
  TraceSpan(TraceCollector* collector, std::string track, std::string name,
            const class Engine& engine);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceCollector* collector_;
  std::string track_;
  std::string name_;
  const Engine& engine_;
  SimTime start_;
};

}  // namespace nvmecr::sim
