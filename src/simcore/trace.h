// Simulation trace export (chrome://tracing / Perfetto JSON).
//
// Actors annotate spans around interesting operations; the collector
// writes the standard Trace Event Format so a run can be inspected
// visually (device occupancy, per-rank checkpoint phases, metadata
// stalls). Three event kinds are supported:
//   * complete spans   ("ph":"X")  — an operation with a duration
//   * instant markers  ("ph":"i")  — a point event
//   * counter samples  ("ph":"C")  — a named time series Perfetto renders
//                                    as a counter track (queue depths,
//                                    pool occupancy, backlog)
// Spans may carry numeric args ({"bytes":..., "cmds":...}) shown in the
// Perfetto detail pane. All names and track labels are JSON-escaped, so
// hostile names (quotes, backslashes, control characters) still produce
// a loadable trace. Tracing is opt-in and zero-cost when no collector is
// installed.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/units.h"

namespace nvmecr::sim {

/// Escapes `s` for embedding inside a JSON string literal (quotes,
/// backslashes, and control characters).
std::string json_escape(const std::string& s);

class TraceCollector {
 public:
  /// Numeric key/value pairs attached to a span ("args" in the event).
  using Args = std::vector<std::pair<std::string, double>>;

  /// Records a complete span (microsecond granularity in the output;
  /// the engine's nanoseconds are preserved as fractional us).
  void add_span(const std::string& track, const std::string& name,
                SimTime start, SimTime end) {
    push(Event{Kind::kSpan, track, name, start, end, 0.0, {}});
  }
  void add_span(const std::string& track, const std::string& name,
                SimTime start, SimTime end, Args args) {
    push(Event{Kind::kSpan, track, name, start, end, 0.0, std::move(args)});
  }

  /// Instantaneous marker.
  void add_instant(const std::string& track, const std::string& name,
                   SimTime at) {
    push(Event{Kind::kInstant, track, name, at, at, 0.0, {}});
  }

  /// Counter sample: one point of the time series `name` on `track`.
  /// Consecutive samples of the same name form a counter track.
  void add_counter(const std::string& track, const std::string& name,
                   SimTime at, double value) {
    push(Event{Kind::kCounter, track, name, at, at, value, {}});
  }

  /// Flight-recorder mode: keep only the most recent `capacity` events,
  /// overwriting the oldest once full (capacity 0 restores unbounded
  /// collection). Resets the current contents. The engine's deadlock
  /// CHECK and the resilience failover path dump the retained tail.
  void set_ring_capacity(size_t capacity) {
    ring_capacity_ = capacity;
    clear();
  }
  bool is_ring() const { return ring_capacity_ > 0; }

  /// Events currently retained (≤ ring capacity in ring mode).
  size_t size() const { return events_.size(); }
  /// Events ever recorded, including those overwritten by the ring.
  uint64_t total_added() const { return total_added_; }
  void clear() {
    events_.clear();
    ring_start_ = 0;
    total_added_ = 0;
  }

  /// Serializes to the Trace Event Format (JSON array of "X"/"i"/"C"
  /// events; "pid" 1, one "tid" per distinct track in insertion order).
  /// In ring mode only the retained tail is emitted, oldest first.
  std::string to_json() const;

  /// Writes to_json() to `path`; best effort.
  bool write(const std::string& path) const;

  /// Prints a human-readable listing of the last `max_events` retained
  /// events (oldest first) to `out` — the flight-recorder post-mortem.
  void dump_tail(std::FILE* out, size_t max_events) const;

 private:
  enum class Kind { kSpan, kInstant, kCounter };

  struct Event {
    Kind kind;
    std::string track;
    std::string name;
    SimTime start;
    SimTime end;
    double value;  // counter events only
    Args args;     // span events only
  };

  void push(Event e) {
    ++total_added_;
    if (ring_capacity_ == 0 || events_.size() < ring_capacity_) {
      events_.push_back(std::move(e));
      return;
    }
    // Ring full: overwrite the oldest slot.
    events_[ring_start_] = std::move(e);
    ring_start_ = (ring_start_ + 1) % ring_capacity_;
  }

  /// The i-th retained event in chronological (insertion) order.
  const Event& chrono(size_t i) const {
    return events_[(ring_start_ + i) % events_.size()];
  }

  std::vector<Event> events_;
  size_t ring_capacity_ = 0;  // 0 = unbounded
  size_t ring_start_ = 0;     // oldest retained event when ring is full
  uint64_t total_added_ = 0;
};

/// RAII span helper:
///   { TraceSpan span(collector, "rank3", "checkpoint", engine); ... }
/// A null collector makes the span a no-op (the strings are still moved
/// in, so guard construction in hot paths when tracing is off).
class TraceSpan {
 public:
  TraceSpan(TraceCollector* collector, std::string track, std::string name,
            const class Engine& engine);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceCollector* collector_;
  std::string track_;
  std::string name_;
  const Engine& engine_;
  SimTime start_;
};

}  // namespace nvmecr::sim
