// Lazy coroutine task type for the discrete-event simulation.
//
// A sim::Task<T> is a coroutine that suspends at creation and starts when
// first awaited (or when spawned onto an Engine). Completion resumes the
// awaiting coroutine via symmetric transfer, so deep call chains
// (app -> runtime -> NVMf initiator -> device) cost no OS threads and no
// stack growth.
//
// Tasks are single-owner move-only handles; destroying a Task that never
// ran destroys the coroutine frame.
#pragma once

#include <coroutine>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>

namespace nvmecr::sim {

template <typename T>
class Task;

namespace detail {

/// Process-wide count of coroutine frames allocated (the simulation is
/// single-threaded, so a plain counter suffices). Surfaced by the
/// dispatch profiler: frame churn is a prime suspect for e2e slowdown.
inline uint64_t g_frame_allocations = 0;

/// Common promise functionality: stores the continuation to resume when
/// the task completes.
struct PromiseBase {
  std::coroutine_handle<> continuation;

  static void* operator new(size_t bytes) {
    ++g_frame_allocations;
    return ::operator new(bytes);
  }
  static void operator delete(void* ptr) { ::operator delete(ptr); }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto cont = h.promise().continuation;
      // Tasks awaited by nobody (fire-and-forget roots are wrapped by the
      // engine, so this only happens for orphaned tasks) just stop here.
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept {
    // The simulation is exception-free by design (Status-based errors);
    // an escaped exception is a programming error.
    std::fprintf(stderr, "sim::Task: unhandled exception\n");
    std::abort();
  }
};

template <typename T>
struct Promise : PromiseBase {
  std::optional<T> result;
  Task<T> get_return_object() noexcept;
  void return_value(T value) { result.emplace(std::move(value)); }
};

template <>
struct Promise<void> : PromiseBase {
  Task<void> get_return_object() noexcept;
  void return_void() noexcept {}
};

}  // namespace detail

/// Total coroutine frames ever allocated in this process (monotonic).
/// Diff two readings to count frames created by a region of code.
inline uint64_t frame_allocations() { return detail::g_frame_allocations; }

/// A lazily-started coroutine returning T. Await it exactly once.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::Promise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return handle_ && handle_.done(); }

  /// Awaiting a task starts it; the awaiter resumes when it completes.
  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> awaiting) noexcept {
        handle.promise().continuation = awaiting;
        return handle;  // symmetric transfer: start the child now
      }
      T await_resume() {
        if constexpr (!std::is_void_v<T>) {
          return std::move(*handle.promise().result);
        }
      }
    };
    return Awaiter{handle_};
  }

  /// Releases ownership of the coroutine handle (used by the engine's
  /// detached-spawn wrapper, which manages the frame lifetime itself).
  Handle release() { return std::exchange(handle_, {}); }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  Handle handle_;
};

namespace detail {

template <typename T>
Task<T> Promise<T>::get_return_object() noexcept {
  return Task<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}

inline Task<void> Promise<void>::get_return_object() noexcept {
  return Task<void>(std::coroutine_handle<Promise<void>>::from_promise(*this));
}

}  // namespace detail

}  // namespace nvmecr::sim
