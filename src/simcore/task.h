// Lazy coroutine task type for the discrete-event simulation.
//
// A sim::Task<T> is a coroutine that suspends at creation and starts when
// first awaited (or when spawned onto an Engine). Completion resumes the
// awaiting coroutine via symmetric transfer, so deep call chains
// (app -> runtime -> NVMf initiator -> device) cost no OS threads and no
// stack growth.
//
// Tasks are single-owner move-only handles; destroying a Task that never
// ran destroys the coroutine frame.
//
// Frame pooling (DESIGN.md §11): a run allocates millions of short-lived
// task frames (one per awaited sub-operation), which made the global
// allocator the single hottest host cost in the e2e dispatch profile.
// PromiseBase therefore routes frame storage through a process-wide
// size-class freelist arena: slots are carved from 256 KiB slabs on
// first use and recycled through per-class freelists forever after, so
// steady-state frame churn never touches the global heap. The pool is
// single-threaded like the rest of the simulation. Under AddressSanitizer
// builds (-DNVMECR_SANITIZE=address) freed slots are poisoned so a
// use-after-destroy of a frame still traps exactly as it would with the
// global allocator.
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>

#if defined(__SANITIZE_ADDRESS__)
#define NVMECR_FRAME_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define NVMECR_FRAME_ASAN 1
#endif
#endif
#ifndef NVMECR_FRAME_ASAN
#define NVMECR_FRAME_ASAN 0
#endif
#if NVMECR_FRAME_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace nvmecr::sim {

template <typename T>
class Task;

namespace detail {

/// Process-wide count of coroutine frames allocated (the simulation is
/// single-threaded, so a plain counter suffices). Surfaced by the
/// dispatch profiler: frame churn is a prime suspect for e2e slowdown.
inline uint64_t g_frame_allocations = 0;
/// Of those, how many were served from a pool freelist instead of the
/// global allocator (a recycled slot).
inline uint64_t g_frames_recycled = 0;
/// Frames currently alive (allocated minus destroyed) — a cheap leak
/// probe for tests: after an engine is torn down the delta must be zero.
inline uint64_t g_frames_live = 0;
/// Runtime kill switch (perf_suite's in-process baseline arm and the
/// determinism tests flip it). Toggling is always safe mid-run: every
/// allocation carries an origin header, so frames allocated under one
/// setting are freed correctly under the other.
inline bool g_frame_pooling = true;

/// Size-class freelist arena for coroutine frames. Each slot is a
/// 16-byte header (size class + freelist link) followed by the payload
/// the coroutine frame lives in. Slabs are allocated once and retained
/// for the life of the process (reachable from the pool, so LSan is
/// happy); frames larger than the largest class — none exist today —
/// fall through to the global allocator, tagged so deallocation routes
/// correctly.
class FramePool {
 public:
  static constexpr size_t kHeaderBytes = 16;
  static constexpr size_t kGranularity = 64;     // class width, bytes
  static constexpr size_t kMaxPooledBytes = 2048;
  static constexpr size_t kClassCount = kMaxPooledBytes / kGranularity;
  static constexpr size_t kSlabBytes = 256 * 1024;

  void* allocate(size_t bytes) {
    if (!g_frame_pooling || bytes > kMaxPooledBytes) {
      return global_alloc(bytes);
    }
    const uint32_t cls =
        static_cast<uint32_t>((bytes + kGranularity - 1) / kGranularity - 1);
    Header* h = free_[cls];
    if (h != nullptr) {
      free_[cls] = h->next;
      ++g_frames_recycled;
      unpoison(payload(h), payload_bytes(cls));
      return payload(h);
    }
    const size_t slot = kHeaderBytes + payload_bytes(cls);
    if (static_cast<size_t>(slab_end_ - bump_) < slot) new_slab();
    h = reinterpret_cast<Header*>(bump_);
    bump_ += slot;
    h->cls = cls;
    return payload(h);
  }

  void deallocate(void* p) {
    Header* h = header_of(p);
    if (h->cls == kGlobalClass) {
      ::operator delete(h);
      return;
    }
    h->next = free_[h->cls];
    free_[h->cls] = h;
    poison(payload(h), payload_bytes(h->cls));
  }

 private:
  struct Header {
    uint32_t cls;  // size class index, or kGlobalClass
    uint32_t reserved;
    Header* next;  // freelist link, meaningful only while free
  };
  static_assert(sizeof(Header) == kHeaderBytes);
  static constexpr uint32_t kGlobalClass = 0xffffffffu;

  static size_t payload_bytes(uint32_t cls) {
    return (static_cast<size_t>(cls) + 1) * kGranularity;
  }
  static Header* header_of(void* p) {
    return reinterpret_cast<Header*>(static_cast<std::byte*>(p) -
                                     kHeaderBytes);
  }
  static void* payload(Header* h) {
    return reinterpret_cast<std::byte*>(h) + kHeaderBytes;
  }

  static void* global_alloc(size_t bytes) {
    auto* h = static_cast<Header*>(::operator new(kHeaderBytes + bytes));
    h->cls = kGlobalClass;
    return payload(h);
  }

  void new_slab() {
    // First pointer of a slab links to the previous slab; slabs are
    // retained forever (steady-state frame churn stays in the arena).
    void* slab = ::operator new(kSlabBytes);
    *static_cast<void**>(slab) = slabs_;
    slabs_ = slab;
    bump_ = static_cast<std::byte*>(slab) + kHeaderBytes;
    slab_end_ = static_cast<std::byte*>(slab) + kSlabBytes;
  }

  static void poison(void* p, size_t n) {
#if NVMECR_FRAME_ASAN
    __asan_poison_memory_region(p, n);
#else
    (void)p;
    (void)n;
#endif
  }
  static void unpoison(void* p, size_t n) {
#if NVMECR_FRAME_ASAN
    __asan_unpoison_memory_region(p, n);
#else
    (void)p;
    (void)n;
#endif
  }

  Header* free_[kClassCount] = {};
  std::byte* bump_ = nullptr;
  std::byte* slab_end_ = nullptr;
  void* slabs_ = nullptr;
};

/// The process-wide pool. Constant-initialized, trivially destructible:
/// safe to use from any static-lifetime coroutine.
inline FramePool g_frame_pool;

/// Common promise functionality: stores the continuation to resume when
/// the task completes.
struct PromiseBase {
  std::coroutine_handle<> continuation;

  static void* operator new(size_t bytes) {
    ++g_frame_allocations;
    ++g_frames_live;
    return g_frame_pool.allocate(bytes);
  }
  static void operator delete(void* ptr) {
    --g_frames_live;
    g_frame_pool.deallocate(ptr);
  }
  static void operator delete(void* ptr, size_t) {
    --g_frames_live;
    g_frame_pool.deallocate(ptr);
  }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto cont = h.promise().continuation;
      // Tasks awaited by nobody (fire-and-forget roots are wrapped by the
      // engine, so this only happens for orphaned tasks) just stop here.
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept {
    // The simulation is exception-free by design (Status-based errors);
    // an escaped exception is a programming error.
    std::fprintf(stderr, "sim::Task: unhandled exception\n");
    std::abort();
  }
};

template <typename T>
struct Promise : PromiseBase {
  std::optional<T> result;
  Task<T> get_return_object() noexcept;
  void return_value(T value) { result.emplace(std::move(value)); }
};

template <>
struct Promise<void> : PromiseBase {
  Task<void> get_return_object() noexcept;
  void return_void() noexcept {}
};

}  // namespace detail

/// Total coroutine frames ever allocated in this process (monotonic).
/// Diff two readings to count frames created by a region of code.
inline uint64_t frame_allocations() { return detail::g_frame_allocations; }

/// Frames served from a pool freelist (recycled) rather than fresh arena
/// or global-allocator storage. Monotonic; diff two readings.
inline uint64_t frames_recycled() { return detail::g_frames_recycled; }

/// Coroutine frames currently alive. A region that creates and fully
/// drains tasks leaves this unchanged.
inline uint64_t frames_live() { return detail::g_frames_live; }

/// Enables/disables the frame pool for *future* allocations (frames
/// already alive free back to wherever they came from). The baseline arm
/// of bench/perf_suite and the determinism tests use this; pooling can
/// never change simulated results, only host speed.
inline void set_frame_pooling(bool enabled) {
  detail::g_frame_pooling = enabled;
}
inline bool frame_pooling() { return detail::g_frame_pooling; }

/// A lazily-started coroutine returning T. Await it exactly once.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::Promise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return handle_ && handle_.done(); }

  /// Awaiting a task starts it; the awaiter resumes when it completes.
  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> awaiting) noexcept {
        handle.promise().continuation = awaiting;
        return handle;  // symmetric transfer: start the child now
      }
      T await_resume() {
        if constexpr (!std::is_void_v<T>) {
          return std::move(*handle.promise().result);
        }
      }
    };
    return Awaiter{handle_};
  }

  /// Releases ownership of the coroutine handle (used by the engine's
  /// detached-spawn wrapper, which manages the frame lifetime itself).
  Handle release() { return std::exchange(handle_, {}); }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  Handle handle_;
};

namespace detail {

template <typename T>
Task<T> Promise<T>::get_return_object() noexcept {
  return Task<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}

inline Task<void> Promise<void>::get_return_object() noexcept {
  return Task<void>(std::coroutine_handle<Promise<void>>::from_promise(*this));
}

}  // namespace detail

}  // namespace nvmecr::sim
