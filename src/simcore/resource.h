// Rate-limited FIFO resources.
//
// BandwidthResource models a serial pipe (flash channel, NIC port, RAID
// controller) with a fixed byte rate. Reservations are virtual-clock
// based: each reservation starts at max(now, busy_until) and extends
// busy_until. Because a reservation is pure arithmetic (no suspension
// between read and update), concurrent coroutines compose exactly.
//
// transfer_fair() chunks large transfers so concurrent flows interleave
// at chunk granularity, approximating the fair sharing a real full-duplex
// link or SSD channel arbiter provides.
#pragma once

#include <cstdint>

#include "common/units.h"
#include "simcore/engine.h"

namespace nvmecr::sim {

class BandwidthResource {
 public:
  /// `bytes_per_sec` == 0 means infinitely fast (instant resource).
  BandwidthResource(Engine& engine, uint64_t bytes_per_sec)
      : engine_(engine), rate_(bytes_per_sec) {}

  uint64_t rate() const { return rate_; }
  SimTime busy_until() const { return busy_until_; }

  /// Books `bytes` of service and returns the completion time without
  /// suspending. Callers that need to overlap several resources (e.g. an
  /// SSD striping one command across channels) reserve on each and sleep
  /// until the max.
  SimTime reserve(uint64_t bytes) {
    const SimTime start =
        busy_until_ > engine_.now() ? busy_until_ : engine_.now();
    busy_until_ = start + transfer_time(bytes, rate_);
    return busy_until_;
  }

  /// Books `bytes` starting no earlier than `earliest` (pipeline coupling
  /// between stages, e.g. NIC then flash).
  SimTime reserve_after(SimTime earliest, uint64_t bytes) {
    SimTime start = busy_until_ > engine_.now() ? busy_until_ : engine_.now();
    if (earliest > start) start = earliest;
    busy_until_ = start + transfer_time(bytes, rate_);
    return busy_until_;
  }

  /// Transfers `bytes` as one unit: waits for the queue, then the
  /// transfer time.
  Task<void> transfer(uint64_t bytes) {
    const SimTime finish = reserve(bytes);
    co_await engine_.sleep_until(finish);
  }

  /// Transfers `bytes` in `chunk`-sized pieces, re-queueing between
  /// pieces so concurrent flows share the resource round-robin.
  Task<void> transfer_fair(uint64_t bytes, uint64_t chunk) {
    if (chunk == 0 || chunk >= bytes) {
      co_await transfer(bytes);
      co_return;
    }
    uint64_t left = bytes;
    while (left > 0) {
      const uint64_t piece = left < chunk ? left : chunk;
      const SimTime finish = reserve(piece);
      co_await engine_.sleep_until(finish);
      left -= piece;
    }
  }

  /// Idle-aware utilization probe: bytes currently queued ahead,
  /// expressed as time until the resource drains.
  SimDuration backlog() const {
    const SimTime now = engine_.now();
    return busy_until_ > now ? busy_until_ - now : 0;
  }

 private:
  Engine& engine_;
  uint64_t rate_;
  SimTime busy_until_ = 0;
};

}  // namespace nvmecr::sim
