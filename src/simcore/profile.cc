#include "simcore/profile.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "simcore/task.h"

namespace nvmecr::sim {

uint64_t DispatchProfiler::now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

DispatchProfiler::DispatchProfiler() : buckets_(1) {
  frame_allocs_base_ = sim::frame_allocations();
}

uint16_t DispatchProfiler::intern(std::string_view name) {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<uint16_t>(i + 1);
  }
  if (names_.size() >= profile_ctx::kTagMask) return 0;  // tag space full
  names_.emplace_back(name);
  buckets_.resize(names_.size() + 1);
  return static_cast<uint16_t>(names_.size());
}

void DispatchProfiler::reset() {
  for (Bucket& b : buckets_) b = Bucket{};
  frame_allocs_base_ = sim::frame_allocations();
  open_ = false;
  last_tag_ = 0;
}

std::vector<DispatchProfiler::CostCenter> DispatchProfiler::ranked() const {
  std::vector<CostCenter> out;
  for (size_t tag = 0; tag < buckets_.size(); ++tag) {
    const Bucket& b = buckets_[tag];
    if (b.dispatches == 0 && b.wall_ns == 0) continue;
    CostCenter c;
    c.name = tag == 0 ? "(untagged)" : names_[tag - 1];
    c.wall_ns = b.wall_ns;
    c.dispatches = b.dispatches;
    c.ring_hits = b.ring_hits;
    out.push_back(std::move(c));
  }
  std::sort(out.begin(), out.end(), [](const CostCenter& a,
                                       const CostCenter& b) {
    if (a.wall_ns != b.wall_ns) return a.wall_ns > b.wall_ns;
    return a.name < b.name;  // stable tie-break for determinism of output
  });
  return out;
}

uint64_t DispatchProfiler::total_wall_ns() const {
  uint64_t t = 0;
  for (const Bucket& b : buckets_) t += b.wall_ns;
  return t;
}

uint64_t DispatchProfiler::total_dispatches() const {
  uint64_t t = 0;
  for (const Bucket& b : buckets_) t += b.dispatches;
  return t;
}

uint64_t DispatchProfiler::total_ring_hits() const {
  uint64_t t = 0;
  for (const Bucket& b : buckets_) t += b.ring_hits;
  return t;
}

uint64_t DispatchProfiler::frame_allocations() const {
  return sim::frame_allocations() - frame_allocs_base_;
}

std::string DispatchProfiler::table(size_t top_n) const {
  const std::vector<CostCenter> rows = ranked();
  const uint64_t total_ns = total_wall_ns();
  const uint64_t total_disp = total_dispatches();
  const uint64_t total_ring = total_ring_hits();

  std::string out;
  char line[192];
  std::snprintf(line, sizeof(line), "%-4s %-18s %12s %7s %12s %6s\n", "rank",
                "cost center", "wall_ms", "share", "dispatches", "ring%");
  out += line;
  size_t shown = 0;
  for (const CostCenter& c : rows) {
    if (shown >= top_n) break;
    const double share =
        total_ns ? 100.0 * static_cast<double>(c.wall_ns) / total_ns : 0.0;
    const double ringpct =
        c.dispatches
            ? 100.0 * static_cast<double>(c.ring_hits) / c.dispatches
            : 0.0;
    std::snprintf(line, sizeof(line),
                  "%3zu. %-18s %12.3f %6.1f%% %12" PRIu64 " %5.1f%%\n",
                  shown + 1, c.name.c_str(), c.wall_ns / 1e6, share,
                  c.dispatches, ringpct);
    out += line;
    ++shown;
  }
  std::snprintf(line, sizeof(line),
                "total: %.3f ms over %" PRIu64
                " dispatches (%.1f%% now-ring), %" PRIu64
                " coroutine frames allocated\n",
                total_ns / 1e6, total_disp,
                total_disp ? 100.0 * static_cast<double>(total_ring) /
                                 total_disp
                           : 0.0,
                frame_allocations());
  out += line;
  return out;
}

}  // namespace nvmecr::sim
