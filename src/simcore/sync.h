// Synchronization primitives for simulated processes: counting semaphore
// with FIFO wakeup, a mutex built on it, and a reusable cyclic barrier
// (used by the mini-MPI collectives and device queue arbitration).
#pragma once

#include <coroutine>
#include <deque>

#include "simcore/engine.h"
#include "simcore/event.h"

namespace nvmecr::sim {

/// Counting semaphore with strict FIFO grant order.
class Semaphore {
 public:
  Semaphore(Engine& engine, int64_t initial)
      : engine_(engine), count_(initial) {}

  /// Awaitable acquire of one permit.
  auto acquire() {
    struct Awaiter {
      Semaphore* sem;
      bool await_ready() const noexcept {
        if (sem->count_ > 0 && sem->waiters_.empty()) {
          --sem->count_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        sem->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  /// Releases one permit; wakes the oldest waiter if any.
  void release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      // The permit transfers directly to the waiter (count_ unchanged).
      engine_.schedule_now(h);
    } else {
      ++count_;
    }
  }

  int64_t available() const { return count_; }
  size_t waiting() const { return waiters_.size(); }

 private:
  Engine& engine_;
  int64_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// FIFO mutex. Scoped use:
///   co_await mutex.lock();  ...  mutex.unlock();
class FifoMutex {
 public:
  explicit FifoMutex(Engine& engine) : sem_(engine, 1) {}
  auto lock() { return sem_.acquire(); }
  void unlock() { sem_.release(); }
  size_t waiting() const { return sem_.waiting(); }

 private:
  Semaphore sem_;
};

/// Joins a dynamic group of Task<Status> children, capturing the first
/// error (like JoinCounter, but for status-returning background work —
/// e.g. replication tasks overlapped behind foreground writes).
class StatusJoiner {
 public:
  explicit StatusJoiner(Engine& engine) : engine_(engine), event_(engine) {}

  /// Spawns `task` as an engine root counted toward this joiner.
  void spawn(Task<Status> task) {
    ++pending_;
    event_.reset();
    engine_.spawn(notify_when_done(std::move(task), this));
  }

  /// Waits for every spawned task; returns the first error seen across
  /// the whole joiner lifetime (sticky — later joins keep reporting it).
  Task<Status> join() {
    if (pending_ == 0) event_.set();
    while (pending_ > 0) {
      co_await event_.wait();
    }
    co_return first_error_;
  }

  int pending() const { return pending_; }
  const Status& first_error() const { return first_error_; }

 private:
  static Task<void> notify_when_done(Task<Status> task, StatusJoiner* self) {
    Status s = co_await std::move(task);
    if (self->first_error_.ok() && !s.ok()) self->first_error_ = s;
    if (--self->pending_ == 0) self->event_.set();
  }

  Engine& engine_;
  Event event_;
  int pending_ = 0;
  Status first_error_;
};

/// Cyclic barrier for `parties` coroutines; reusable across generations.
class Barrier {
 public:
  Barrier(Engine& engine, int parties)
      : engine_(engine), parties_(parties), event_(engine) {
    NVMECR_CHECK(parties > 0);
  }

  /// All `parties` coroutines must co_await this; the last arrival
  /// releases everyone and re-arms the barrier.
  Task<void> arrive_and_wait() {
    const uint64_t my_generation = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      event_.set();
      event_.reset();
      co_return;
    }
    // Wait for this generation to complete. The event is set+reset by the
    // releaser, so waiters registered before release are woken; anyone
    // arriving later belongs to the next generation.
    while (generation_ == my_generation) {
      co_await event_.wait();
    }
  }

  int parties() const { return parties_; }

 private:
  Engine& engine_;
  int parties_;
  int arrived_ = 0;
  uint64_t generation_ = 0;
  Event event_;
};

}  // namespace nvmecr::sim
