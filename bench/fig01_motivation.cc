// Figure 1 — Weak-scaling checkpoint bandwidth of OrangeFS and GlusterFS
// on NVMe SSDs vs the available hardware IO bandwidth (§I).
//
// Paper shape: at best OrangeFS reaches ~41% and GlusterFS ~84% of the
// peak hardware bandwidth; GlusterFS underdelivers at low process counts
// because consistent hashing balances poorly with few files.
#include "bench_util.h"

int main() {
  using namespace nvmecr;
  using namespace nvmecr::bench;

  print_banner("Figure 1", "weak-scaling checkpoint bandwidth vs HW peak");
  TablePrinter table({"procs", "system", "bandwidth (GB/s)", "HW peak (GB/s)",
                      "fraction of peak"});
  double best_orange = 0.0, best_gluster = 0.0;
  for (uint32_t nranks : {28u, 56u, 112u, 224u, 448u}) {
    ComdParams params = weak_scaling_params(nranks);
    params.checkpoints = 5;  // bandwidth measurement needs fewer periods
    params.do_recovery = false;
    for (const char* name : {"OrangeFS", "GlusterFS"}) {
      const JobMetrics m = run_dfs(name, params);
      const double frac = m.checkpoint_efficiency();
      const double peak = static_cast<double>(m.hw_peak_write) / 1e9;
      table.add_row({TablePrinter::num(nranks) + " " + name, name,
                     TablePrinter::num(frac * peak, 2),
                     TablePrinter::num(peak, 1), pct(frac)});
      if (std::string(name) == "OrangeFS") {
        best_orange = std::max(best_orange, frac);
      } else {
        best_gluster = std::max(best_gluster, frac);
      }
    }
  }
  table.print();
  std::printf(
      "\nBest fraction of peak: OrangeFS %s, GlusterFS %s "
      "(paper: ~41%% and ~84%%)\n",
      pct(best_orange).c_str(), pct(best_gluster).c_str());
  return 0;
}
