// Figure 7(a) — Checkpoint times for different hugeblock sizes (§IV-B).
//
// 512 MB checkpoint per process, full-subscription (28 processes) on one
// node against remote NVMe. Paper shape: 32 KiB is optimal (~7% faster
// than 4 KiB); smaller blocks pay per-command and per-block metadata
// overhead, larger blocks pay queue-granularity and hugeblock-padding
// costs on the unaligned application stream.
#include "bench_util.h"

int main() {
  using namespace nvmecr;
  using namespace nvmecr::bench;

  print_banner("Figure 7(a)", "checkpoint time vs hugeblock size");
  TablePrinter table({"hugeblock", "ckpt time (s)", "vs 32KiB",
                      "device bytes / payload"});

  ComdParams params;
  params.nranks = 28;
  params.procs_per_node = 28;
  params.atoms_per_rank = 1u << 20;
  params.bytes_per_atom = 512;  // 512 MiB per rank
  params.checkpoints = 2;
  params.compute_per_period = 100 * kMillisecond;
  params.io_chunk = 1_MiB;   // CoMD's stdio stream granularity
  params.header_bytes = 256; // misaligns every subsequent chunk
  params.keep_last = 1;
  params.do_recovery = false;

  struct Point {
    uint64_t size;
    double seconds;
    double amplification;
  };
  std::vector<Point> points;
  for (uint64_t hb : {4_KiB, 8_KiB, 16_KiB, 32_KiB, 64_KiB, 128_KiB,
                      256_KiB, 512_KiB, 1_MiB}) {
    Cluster cluster;
    Scheduler sched(cluster);
    auto job = sched.allocate(params.nranks, 28, partition_for(params), 1);
    NVMECR_CHECK(job.ok());
    RuntimeConfig config = default_runtime_config();
    config.fs.hugeblock_size = hb;
    config.fs.io_batch_hugeblocks = static_cast<uint32_t>(
        std::max<uint64_t>(1, 4_MiB / hb));
    nvmecr_rt::NvmecrSystem system(cluster, *job, config);
    auto m = ComdDriver::run(cluster, system, params);
    NVMECR_CHECK(m.ok());
    const double amp =
        static_cast<double>(system.aggregated_stats().data_bytes_written) /
        static_cast<double>(system.aggregated_stats().payload_bytes_written);
    points.push_back({hb, to_seconds(m->checkpoint_time), amp});
  }
  double t32k = 0;
  for (const auto& p : points) {
    if (p.size == 32_KiB) t32k = p.seconds;
  }
  for (const auto& p : points) {
    table.add_row({TablePrinter::num(p.size >> 10) + " KiB",
                   TablePrinter::num(p.seconds, 3),
                   pct(p.seconds / t32k - 1.0, 1),
                   TablePrinter::num(p.amplification, 3)});
  }
  table.print();
  std::printf(
      "\nPaper reference: 32 KiB optimal; 4 KiB ~7%% slower; larger sizes "
      "degrade again.\n");
  return 0;
}
