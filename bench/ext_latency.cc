// Extension — per-operation latency distributions.
//
// The paper reports throughput-level metrics; this bench exposes the
// latency view underneath them: create and write percentiles per system
// at 112 processes. NVMe-CR's run-to-completion path keeps tails tight;
// the comparators' shared-directory serialization shows up as create
// tail latency orders of magnitude above the median.
#include "bench_util.h"

int main() {
  using namespace nvmecr;
  using namespace nvmecr::bench;

  print_banner("Extension: operation latency percentiles",
               "CoMD 112 procs; create and 4 MiB write latencies");
  TablePrinter table({"system", "create p50 (us)", "create p99 (us)",
                      "write p50 (ms)", "write p99 (ms)"});
  ComdParams params = weak_scaling_params(112);
  params.checkpoints = 5;

  struct Row {
    std::string name;
    JobMetrics m;
  };
  std::vector<Row> rows;
  rows.push_back({"NVMe-CR", run_nvmecr(params)});
  rows.push_back({"GlusterFS", run_dfs("GlusterFS", params)});
  rows.push_back({"OrangeFS", run_dfs("OrangeFS", params)});
  for (auto& row : rows) {
    table.add_row(
        {row.name,
         TablePrinter::num(row.m.create_latency.percentile(50) / 1e3, 1),
         TablePrinter::num(row.m.create_latency.percentile(99) / 1e3, 1),
         TablePrinter::num(row.m.write_latency.percentile(50) / 1e6, 2),
         TablePrinter::num(row.m.write_latency.percentile(99) / 1e6, 2)});
  }
  table.print();
  std::printf(
      "\nPrivate namespaces keep NVMe-CR's create tail near its median; "
      "the comparators' p99 creates queue behind the shared directory.\n"
      "(Comparator write latencies look low because their writes only "
      "buffer in the server page cache — the cost lands on fsync; "
      "NVMe-CR writes are durable when they complete.)\n");
  return 0;
}
