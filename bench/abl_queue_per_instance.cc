// Ablation — dedicated hardware queue per microfs instance (Principle 3).
//
// A small metadata write (an operation-log record) issued while a large
// data command is in flight: on its own hardware queue it completes in
// microseconds; chained in-order behind the data on a shared queue it
// waits for the data transfer. This is why NVMe-CR gives every instance
// its own queue — and why very large hugeblocks hurt (Figure 7(a)'s
// right side): they coarsen what anything sharing the queue waits for.
#include "bench_util.h"

#include "simcore/event.h"

namespace nvmecr::bench {
namespace {

SimDuration small_write_latency(bool own_queue, uint64_t data_cmd_bytes) {
  sim::Engine eng;
  hw::NvmeSsd ssd(eng, hw::SsdSpec{});
  const uint32_t nsid = ssd.create_namespace(4_GiB).value();
  const uint32_t q0 = ssd.alloc_queue().value();
  const uint32_t q1 = own_queue ? ssd.alloc_queue().value() : q0;
  auto data_dev = ssd.open_queue(nsid, q0);
  auto meta_dev = ssd.open_queue(nsid, q1);
  SimDuration latency = 0;
  sim::JoinCounter join(eng);
  join.spawn([](hw::BlockDevice& d, uint64_t bytes) -> sim::Task<void> {
    NVMECR_CHECK((co_await d.write_tagged(0, bytes, 1)).ok());
  }(*data_dev, data_cmd_bytes));
  join.spawn([](sim::Engine& e, hw::BlockDevice& d,
                SimDuration& out) -> sim::Task<void> {
    co_await e.yield();  // let the data command submit first
    const SimTime start = e.now();
    std::vector<std::byte> record(192, std::byte{0x5a});
    NVMECR_CHECK((co_await d.write(1_GiB, record)).ok());
    out = e.now() - start;
  }(eng, *meta_dev, latency));
  eng.run();
  return latency;
}

}  // namespace
}  // namespace nvmecr::bench

int main() {
  using namespace nvmecr;
  using namespace nvmecr::bench;

  print_banner("Ablation: dedicated hardware queue per instance",
               "log-record write latency behind an in-flight data command");
  TablePrinter table({"data command", "shared queue (us)", "own queue (us)",
                      "head-of-line factor"});
  for (uint64_t kb : {32u, 256u, 1024u, 4096u, 16384u}) {
    const uint64_t bytes = static_cast<uint64_t>(kb) << 10;
    const double shared =
        static_cast<double>(small_write_latency(false, bytes)) / 1000.0;
    const double own =
        static_cast<double>(small_write_latency(true, bytes)) / 1000.0;
    table.add_row({TablePrinter::num(kb) + " KiB",
                   TablePrinter::num(shared, 1), TablePrinter::num(own, 1),
                   TablePrinter::num(shared / own, 1) + "x"});
  }
  table.print();
  std::printf(
      "\nPrinciple 3: per-instance queues make completion ordering free "
      "and keep control-plane records out of other instances' data "
      "shadows.\n");
  return 0;
}
