// Ablation — log record coalescing (Figure 5 mechanism, §III-E/§IV-I).
//
// Quantifies what coalescing buys: log fill rate (slots consumed per
// checkpoint => forced state-checkpoint frequency) and recovery replay
// length (records replayed at mount => near-instant runtime recovery).
#include "bench_util.h"

#include "hw/ram_device.h"
#include "microfs/microfs.h"

namespace nvmecr::bench {
namespace {

struct Point {
  uint64_t appended = 0;
  uint64_t coalesced = 0;
  uint64_t state_checkpoints = 0;
  uint64_t replayed = 0;
};

Point run(uint32_t window, uint32_t log_slots) {
  sim::Engine eng;
  hw::RamDevice dev(4_GiB, 4096);
  microfs::Options options;
  options.coalesce_window = window;
  options.log_slots = log_slots;
  Point p;
  {
    auto fs = eng.run_task(microfs::MicroFs::format(eng, dev, options))
                  .value();
    eng.run_task([](microfs::MicroFs& m) -> sim::Task<void> {
      // Ten checkpoints of 128 MiB, written in 1 MiB chunks (the
      // sequential N-N stream coalescing exploits).
      for (int step = 0; step < 10; ++step) {
        auto fd = co_await m.creat("/ckpt" + std::to_string(step));
        NVMECR_CHECK(fd.ok());
        for (int i = 0; i < 128; ++i) {
          NVMECR_CHECK((co_await m.write_tagged(*fd, 1_MiB)).ok());
        }
        NVMECR_CHECK((co_await m.close(*fd)).ok());
        if (step >= 2) {
          NVMECR_CHECK(
              (co_await m.unlink("/ckpt" + std::to_string(step - 2))).ok());
        }
      }
    }(*fs));
    eng.run();
    p.appended = fs->log_counters().appended;
    p.coalesced = fs->log_counters().coalesced;
    p.state_checkpoints = fs->stats().state_checkpoints;
  }
  auto recovered =
      eng.run_task(microfs::MicroFs::recover(eng, dev, options)).value();
  p.replayed = recovered->stats().replayed_records;
  return p;
}

}  // namespace
}  // namespace nvmecr::bench

int main() {
  using namespace nvmecr;
  using namespace nvmecr::bench;

  print_banner("Ablation: log record coalescing",
               "log fill rate and recovery replay length "
               "(10 x 128 MiB checkpoints, 1 MiB writes)");
  TablePrinter table({"config", "slots consumed", "in-place updates",
                      "state ckpts", "records replayed at mount"});
  struct Config {
    const char* name;
    uint32_t window;
    uint32_t slots;
  };
  for (const Config& c : {Config{"coalescing on (window 64)", 64, 4096},
                          Config{"coalescing on, tiny log", 64, 64},
                          Config{"coalescing off", 0, 4096},
                          Config{"coalescing off, tiny log", 0, 64}}) {
    const Point p = run(c.window, c.slots);
    table.add_row({c.name, TablePrinter::num(p.appended),
                   TablePrinter::num(p.coalesced),
                   TablePrinter::num(p.state_checkpoints),
                   TablePrinter::num(p.replayed)});
  }
  table.print();
  std::printf(
      "\nMechanism behind §IV-I: coalescing keeps the replay set to a "
      "handful of records (near-instant runtime recovery, 3.6 s vs ~4 s "
      "in the paper) and the fill rate low enough that the background "
      "state checkpointer rarely runs.\n");
  return 0;
}
