// Extension — N-1 vs N-N checkpoint pattern on NVMe-CR (§III-E).
//
// The paper targets N-N (90% of runs per [39]) and notes N-1 as the
// other prevalent pattern. This bench shows that the PLFS-style
// translation (private segment + index per process, nvmecr/n1_adapter)
// brings N-1 to within a hair of N-N on NVMe-CR: the shared logical
// file costs one extra index write per process — no coordination, no
// shared-file serialization.
#include "bench_util.h"

#include "hw/block_device.h"
#include "nvmecr/n1_adapter.h"
#include "simcore/event.h"

namespace nvmecr::bench {
namespace {

constexpr uint32_t kRanks = 28;
constexpr uint64_t kBlock = 1_MiB;
constexpr uint32_t kRounds = 64;  // 64 MiB per rank

struct Run {
  double seconds = 0;
  uint64_t index_entries = 0;
  uint64_t index_bytes = 0;
};

/// Per-rank microfs instances over partitions of one shared namespace —
/// the runtime's exact layout (Figure 6), wired directly.
struct MiniDeployment {
  sim::Engine eng;
  hw::NvmeSsd ssd{eng, hw::SsdSpec{}};
  uint32_t nsid = ssd.create_namespace(kRanks * 512_MiB).value();
  std::vector<std::unique_ptr<hw::BlockDevice>> queues;
  std::vector<std::unique_ptr<hw::PartitionView>> parts;
  std::vector<std::unique_ptr<microfs::MicroFs>> fs;

  MiniDeployment() {
    for (uint32_t r = 0; r < kRanks; ++r) {
      // Queues are shared past the controller budget, as on the target.
      const uint32_t q = r < ssd.spec().max_queues
                             ? ssd.alloc_queue().value()
                             : r % ssd.spec().max_queues;
      queues.push_back(ssd.open_queue(nsid, q));
      parts.push_back(std::make_unique<hw::PartitionView>(
          *queues.back(), r * 512_MiB, 512_MiB));
      microfs::Options options;
      options.io_batch_hugeblocks = 128;
      fs.push_back(
          eng.run_task(microfs::MicroFs::format(eng, *parts.back(), options))
              .value());
    }
  }
};

Run run_nn() {
  MiniDeployment d;
  sim::JoinCounter join(d.eng);
  for (uint32_t r = 0; r < kRanks; ++r) {
    join.spawn([](microfs::MicroFs& m) -> sim::Task<void> {
      auto fd = (co_await m.creat("/ckpt")).value();
      for (uint32_t i = 0; i < kRounds; ++i) {
        NVMECR_CHECK((co_await m.write_tagged(fd, kBlock)).ok());
      }
      NVMECR_CHECK((co_await m.fsync(fd)).ok());
      NVMECR_CHECK((co_await m.close(fd)).ok());
    }(*d.fs[r]));
  }
  d.eng.run();
  return Run{to_seconds(d.eng.now()), 0, 0};
}

Run run_n1() {
  MiniDeployment d;
  sim::JoinCounter join(d.eng);
  std::vector<uint64_t> entries(kRanks), bytes(kRanks);
  for (uint32_t r = 0; r < kRanks; ++r) {
    join.spawn([](microfs::MicroFs& m, uint32_t rank, uint64_t& out_entries,
                  uint64_t& out_bytes) -> sim::Task<void> {
      // Strided N-1: rank writes logical blocks rank, rank+P, ...
      auto writer =
          (co_await nvmecr_rt::N1Writer::create(m, "/shared")).value();
      for (uint32_t i = 0; i < kRounds; ++i) {
        const uint64_t logical =
            (static_cast<uint64_t>(i) * kRanks + rank) * kBlock;
        NVMECR_CHECK((co_await writer->write_at(logical, kBlock)).ok());
      }
      out_entries = writer->index_entries();
      NVMECR_CHECK((co_await writer->close()).ok());
      out_bytes = m.stat("/shared.idx")->size;
    }(*d.fs[r], r, entries[r], bytes[r]));
  }
  d.eng.run();
  Run run{to_seconds(d.eng.now()), 0, 0};
  for (uint32_t r = 0; r < kRanks; ++r) {
    run.index_entries += entries[r];
    run.index_bytes += bytes[r];
  }
  return run;
}

}  // namespace
}  // namespace nvmecr::bench

int main() {
  using namespace nvmecr;
  using namespace nvmecr::bench;

  print_banner("Extension: N-1 vs N-N",
               "28 processes x 64 MiB, one SSD; N-1 via the PLFS-style "
               "segment+index translation");
  const Run nn = run_nn();
  const Run n1 = run_n1();
  TablePrinter table({"pattern", "checkpoint time (s)", "index entries",
                      "index bytes (total)"});
  table.add_row({"N-N (one file per process)", TablePrinter::num(nn.seconds, 3),
                 "-", "-"});
  table.add_row({"N-1 (shared logical file)", TablePrinter::num(n1.seconds, 3),
                 TablePrinter::num(n1.index_entries),
                 TablePrinter::num(n1.index_bytes)});
  table.print();
  std::printf(
      "\nN-1 overhead over N-N: %s — the translation costs one index "
      "write per process and zero coordination.\n",
      pct(n1.seconds / nn.seconds - 1.0).c_str());
  return 0;
}
