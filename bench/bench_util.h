// Shared helpers for the figure/table reproduction binaries: canonical
// workload parameterizations (matching §IV's stated totals) and runners
// that deploy a system on a fresh cluster and execute the CoMD job.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "baselines/models.h"
#include "common/table.h"
#include "nvmecr/runtime.h"
#include "obs/observer.h"
#include "workloads/comd.h"

namespace nvmecr::bench {

using namespace nvmecr::literals;
using baselines::StorageSystem;
using nvmecr_rt::Cluster;
using nvmecr_rt::ClusterSpec;
using nvmecr_rt::JobAllocation;
using nvmecr_rt::RuntimeConfig;
using nvmecr_rt::Scheduler;
using workloads::ComdDriver;
using workloads::ComdParams;
using workloads::JobMetrics;

/// Weak scaling (§IV-H): 32K atoms/process; 10 checkpoints totalling
/// 700 GB at 448 processes => ~156 MiB per rank per checkpoint
/// (~4.77 KiB per atom; see DESIGN.md on the paper's bytes-per-atom
/// inconsistency).
inline ComdParams weak_scaling_params(uint32_t nranks) {
  ComdParams p;
  p.nranks = nranks;
  p.procs_per_node = 28;
  p.atoms_per_rank = 32768;
  p.bytes_per_atom = 4772;
  p.checkpoints = 10;
  p.compute_per_period = 2900 * kMillisecond;
  p.io_chunk = 4_MiB;
  return p;
}

/// Strong scaling (§IV-H): 16,384K atoms total, 86 GB over 10
/// checkpoints => 8.6 GB per checkpoint (~525 B per atom).
inline ComdParams strong_scaling_params(uint32_t nranks) {
  ComdParams p;
  p.nranks = nranks;
  p.procs_per_node = 28;
  p.atoms_per_rank = 16384 * 1024 / nranks;
  p.bytes_per_atom = 525;
  p.checkpoints = 10;
  p.compute_per_period = 2900 * kMillisecond;
  p.io_chunk = 4_MiB;
  return p;
}

/// NVMe-CR runtime configuration used by the headline experiments
/// (32 KiB hugeblocks, provenance + coalescing on, userspace NVMf).
inline RuntimeConfig default_runtime_config() {
  RuntimeConfig config;
  config.fs.io_batch_hugeblocks = 256;  // simulation batching only
  return config;
}

/// Partition size covering keep_last+1 checkpoints plus metadata.
inline uint64_t partition_for(const ComdParams& p) {
  return round_up((p.keep_last + 1) * p.rank_checkpoint_bytes() + 64_MiB,
                  64_MiB);
}

/// Deploys NVMe-CR for `params` on a fresh cluster and runs the job.
/// `observer` (optional) instruments the whole stack — pass
/// obs::RunReport::observer() to capture a trace/metrics snapshot of the
/// run. `force_profile_hooks` arms the engine's profile-context hooks
/// without any profiler consuming them — the configuration the
/// obs-overhead gate measures (DESIGN.md §9).
inline JobMetrics run_nvmecr(const ComdParams& params,
                             RuntimeConfig config = default_runtime_config(),
                             StorageSystem** out_system = nullptr,
                             uint32_t num_ssds = 8,
                             const obs::Observer& observer = {},
                             bool force_profile_hooks = false) {
  Cluster cluster;
  if (observer.any()) cluster.install_observer(observer);
  if (force_profile_hooks) cluster.engine().set_profile_hooks(true);
  Scheduler sched(cluster);
  auto job = sched.allocate(params.nranks, params.procs_per_node,
                            partition_for(params), num_ssds);
  NVMECR_CHECK(job.ok());
  nvmecr_rt::NvmecrSystem system(cluster, *job, config);
  auto m = ComdDriver::run(cluster, system, params);
  NVMECR_CHECK(m.ok());
  if (out_system != nullptr) *out_system = nullptr;  // system is scoped
  return *m;
}

/// Runs one of the named comparator systems ("GlusterFS", "OrangeFS")
/// for `params` on a fresh cluster.
inline JobMetrics run_dfs(const std::string& name, const ComdParams& params) {
  Cluster cluster;
  std::unique_ptr<StorageSystem> system;
  if (name == "GlusterFS") {
    system = std::make_unique<baselines::GlusterFsModel>(
        cluster, params.nranks, params.procs_per_node);
  } else if (name == "OrangeFS") {
    system = std::make_unique<baselines::OrangeFsModel>(
        cluster, params.nranks, params.procs_per_node);
  } else {
    NVMECR_CHECK(false && "unknown system");
  }
  auto m = ComdDriver::run(cluster, *system, params);
  NVMECR_CHECK(m.ok());
  return *m;
}

inline std::string pct(double x, int precision = 1) {
  return TablePrinter::num(100.0 * x, precision) + "%";
}

}  // namespace nvmecr::bench
