// Extension — DRAM cache layer over NVMe-CR (§V future work).
//
// Measures restart read time with a per-process cache sized to hold the
// newest checkpoint (warm restart in place), an undersized cache, and
// no cache. The cache never weakens durability (write-through); it
// converts the restart read of a still-warm checkpoint into DRAM copies.
#include "bench_util.h"

#include "nvmecr/cache.h"
#include "simcore/event.h"

namespace nvmecr::bench {
namespace {

constexpr uint32_t kRanks = 56;
constexpr uint64_t kCkptPerRank = 64_MiB;

struct Run {
  double write_s = 0;
  double read_s = 0;
  double hit_rate = 0;
};

Run run_with_cache(uint64_t cache_capacity) {
  Cluster cluster;
  Scheduler sched(cluster);
  auto job = sched.allocate(kRanks, 28, 256_MiB, 1);
  NVMECR_CHECK(job.ok());
  nvmecr_rt::NvmecrSystem system(cluster, *job, default_runtime_config());

  sim::Engine& eng = cluster.engine();
  sim::Barrier barrier(eng, kRanks);
  std::vector<SimTime> marks(3, 0);
  std::vector<double> hit_rates(kRanks, 0);
  sim::JoinCounter join(eng);
  for (uint32_t r = 0; r < kRanks; ++r) {
    join.spawn([](sim::Engine& e, nvmecr_rt::NvmecrSystem& sys,
                  sim::Barrier& b, std::vector<SimTime>& m, uint32_t rank,
                  uint64_t capacity, double& hit_rate) -> sim::Task<void> {
      auto inner = (co_await sys.connect(static_cast<int>(rank))).value();
      std::unique_ptr<baselines::StorageClient> client;
      nvmecr_rt::CachedClient* cache = nullptr;
      if (capacity > 0) {
        auto wrapped = std::make_unique<nvmecr_rt::CachedClient>(
            e, std::move(inner), capacity);
        cache = wrapped.get();
        client = std::move(wrapped);
      } else {
        client = std::move(inner);
      }
      co_await b.arrive_and_wait();
      if (rank == 0) m[0] = e.now();
      auto fd = (co_await client->create("/ckpt")).value();
      for (uint64_t off = 0; off < kCkptPerRank; off += 4_MiB) {
        NVMECR_CHECK((co_await client->write(fd, 4_MiB)).ok());
      }
      NVMECR_CHECK((co_await client->fsync(fd)).ok());
      NVMECR_CHECK((co_await client->close(fd)).ok());
      co_await b.arrive_and_wait();
      if (rank == 0) m[1] = e.now();
      // Warm restart: read the checkpoint straight back.
      auto rfd = (co_await client->open_read("/ckpt")).value();
      for (uint64_t off = 0; off < kCkptPerRank; off += 4_MiB) {
        NVMECR_CHECK((co_await client->read(rfd, 4_MiB)).ok());
      }
      NVMECR_CHECK((co_await client->close(rfd)).ok());
      co_await b.arrive_and_wait();
      if (rank == 0) m[2] = e.now();
      if (cache != nullptr) hit_rate = cache->stats().hit_rate();
    }(eng, system, barrier, marks, r, cache_capacity, hit_rates[r]));
  }
  eng.run();
  Run run;
  run.write_s = to_seconds(marks[1] - marks[0]);
  run.read_s = to_seconds(marks[2] - marks[1]);
  for (double h : hit_rates) run.hit_rate += h / kRanks;
  return run;
}

}  // namespace
}  // namespace nvmecr::bench

int main() {
  using namespace nvmecr;
  using namespace nvmecr::bench;

  print_banner("Extension: cache layer over NVMe-CR",
               "56 procs x 64 MiB on one SSD; warm-restart read time");
  TablePrinter table({"per-process cache", "checkpoint (s)", "restart read (s)",
                      "read hit rate"});
  struct Config {
    const char* name;
    uint64_t capacity;
  };
  for (const Config& c :
       {Config{"none", 0}, Config{"32 MiB (undersized)", 32_MiB},
        Config{"96 MiB (fits newest ckpt)", 96_MiB}}) {
    const Run r = run_with_cache(c.capacity);
    table.add_row({c.name, TablePrinter::num(r.write_s, 3),
                   TablePrinter::num(r.read_s, 3),
                   c.capacity ? pct(r.hit_rate) : std::string("-")});
  }
  table.print();
  std::printf(
      "\nA cache sized for the newest checkpoint turns warm restart into "
      "DRAM copies (the paper's proposed future work, quantified).\n");
  return 0;
}
