// Table II — CoMD with multi-level checkpointing at 448 processes:
// one checkpoint in ten goes to the Lustre-like PFS; first level is
// OrangeFS, GlusterFS, or NVMe-CR (§IV-I).
//
// Paper: checkpoint time 85.9 / 44.5 / 39.5 s, recovery time 3.6 / 4.5 /
// 3.6 s, progress rate 0.252 / 0.402 / 0.423 (OrangeFS / GlusterFS /
// NVMe-CR); without log record coalescing NVMe-CR recovery rises to ~4 s.
#include "bench_util.h"

namespace nvmecr::bench {
namespace {

workloads::JobMetrics run_with_pfs(const char* name, const ComdParams& params,
                                   bool coalescing = true) {
  Cluster cluster;
  baselines::LustreModel pfs(cluster);
  if (std::string(name) == "NVMe-CR") {
    Scheduler sched(cluster);
    auto job = sched.allocate(params.nranks, params.procs_per_node,
                              partition_for(params), 8);
    NVMECR_CHECK(job.ok());
    RuntimeConfig config = default_runtime_config();
    if (!coalescing) config.fs.coalesce_window = 0;
    nvmecr_rt::NvmecrSystem system(cluster, *job, config);
    auto m = ComdDriver::run(cluster, system, params, &pfs, 10);
    NVMECR_CHECK(m.ok());
    return *m;
  }
  std::unique_ptr<baselines::StorageSystem> system;
  if (std::string(name) == "GlusterFS") {
    system = std::make_unique<baselines::GlusterFsModel>(
        cluster, params.nranks, params.procs_per_node);
  } else {
    system = std::make_unique<baselines::OrangeFsModel>(
        cluster, params.nranks, params.procs_per_node);
  }
  auto m = ComdDriver::run(cluster, *system, params, &pfs, 10);
  NVMECR_CHECK(m.ok());
  return *m;
}

}  // namespace
}  // namespace nvmecr::bench

int main() {
  using namespace nvmecr;
  using namespace nvmecr::bench;

  print_banner("Table II",
               "CoMD with multi-level checkpointing at 448 processes "
               "(1-in-10 checkpoints to the Lustre-like PFS)");

  ComdParams params = weak_scaling_params(448);

  TablePrinter table({"metric", "OrangeFS", "GlusterFS", "NVMe-CR"});
  const workloads::JobMetrics orange = run_with_pfs("OrangeFS", params);
  const workloads::JobMetrics gluster = run_with_pfs("GlusterFS", params);
  const workloads::JobMetrics nvmecr = run_with_pfs("NVMe-CR", params);
  table.add_row({"Checkpoint Time (s)",
                 TablePrinter::num(to_seconds(orange.checkpoint_time), 1),
                 TablePrinter::num(to_seconds(gluster.checkpoint_time), 1),
                 TablePrinter::num(to_seconds(nvmecr.checkpoint_time), 1)});
  table.add_row({"Recovery Time (s)",
                 TablePrinter::num(to_seconds(orange.recovery_time), 1),
                 TablePrinter::num(to_seconds(gluster.recovery_time), 1),
                 TablePrinter::num(to_seconds(nvmecr.recovery_time), 1)});
  table.add_row({"Progress Rate",
                 TablePrinter::num(orange.progress_rate(), 3),
                 TablePrinter::num(gluster.progress_rate(), 3),
                 TablePrinter::num(nvmecr.progress_rate(), 3)});
  table.print();

  // The §IV-I remark: log record coalescing and recovery. See
  // bench/abl_coalescing for the replay-length mechanism behind the
  // paper's "recovery takes 4 s without coalescing" note.
  const workloads::JobMetrics no_coal = run_with_pfs("NVMe-CR", params,
                                                     /*coalescing=*/false);
  std::printf(
      "\nNVMe-CR recovery: %.2f s with coalescing, %.2f s without "
      "(paper: 3.6 s vs ~4.0 s; the replay-length mechanism is "
      "quantified by bench/abl_coalescing).\n",
      to_seconds(nvmecr.recovery_time), to_seconds(no_coal.recovery_time));
  std::printf(
      "Paper reference: ckpt 85.9/44.5/39.5 s, recovery 3.6/4.5/3.6 s, "
      "progress 0.252/0.402/0.423.\n");
  return 0;
}
