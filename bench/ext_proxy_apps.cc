// Extension — the §IV-A claim: "Most applications in the ECP application
// suite, including AMG, Ember, ExaMiniMD, and miniAMR have similar
// behavior and are likely to show similar improvements as CoMD."
//
// Runs every registered app profile (different state sizes, IO
// granularities, duty cycles, load jitter — workloads/apps.h) at 224
// processes on NVMe-CR and GlusterFS and reports the improvement factor
// — it should hold across the suite.
#include "bench_util.h"
#include "workloads/apps.h"

int main() {
  using namespace nvmecr;
  using namespace nvmecr::bench;

  print_banner("Extension: ECP proxy-app suite",
               "checkpoint efficiency across proxy apps (224 procs)");
  TablePrinter table({"app", "state/rank", "NVMe-CR eff", "GlusterFS eff",
                      "ckpt speedup", "progress NVMe-CR", "progress GlusterFS"});
  for (const auto& preset : workloads::app_registry()) {
    const ComdParams params = workloads::io_params_for(preset, 224);
    const JobMetrics nv = run_nvmecr(params);
    const JobMetrics gl = run_dfs("GlusterFS", params);
    table.add_row(
        {preset.name,
         TablePrinter::num(preset.bytes_per_rank >> 20) + " MiB",
         TablePrinter::num(nv.checkpoint_efficiency(), 3),
         TablePrinter::num(gl.checkpoint_efficiency(), 3),
         TablePrinter::num(to_seconds(gl.checkpoint_time) /
                               to_seconds(nv.checkpoint_time),
                           2) +
             "x",
         TablePrinter::num(nv.progress_rate(), 3),
         TablePrinter::num(gl.progress_rate(), 3)});
  }
  table.print();
  std::printf(
      "\nThe improvement holds across the suite (§IV-A's expectation): "
      "the N-N checkpoint pattern, not the application physics, decides "
      "the outcome.\n");
  return 0;
}
