// Ablation — capacitor-backed device RAM (§III-D "Data Durability").
//
// NVMe-CR writes into device RAM and relies on power-loss capacitors
// for durability instead of buffering in host memory. This ablation
// shows what the device RAM buys: burst absorption for checkpoints that
// fit (acknowledge at RAM speed) and graceful degradation to flash
// bandwidth once they don't.
#include "bench_util.h"

namespace nvmecr::bench {
namespace {

double run_burst(uint64_t device_ram, uint64_t bytes_per_proc,
                 bool settle_fsync) {
  ClusterSpec spec;
  spec.ssd.device_ram = device_ram;
  Cluster cluster(spec);
  Scheduler sched(cluster);
  ComdParams params;
  params.nranks = 28;
  params.procs_per_node = 28;
  params.atoms_per_rank = bytes_per_proc / 512;
  params.bytes_per_atom = 512;
  params.checkpoints = 2;
  params.compute_per_period = 2000 * kMillisecond;  // RAM drains between
  params.io_chunk = 1_MiB;
  params.keep_last = 1;
  params.do_recovery = false;
  auto job = sched.allocate(28, 28, partition_for(params), 1);
  NVMECR_CHECK(job.ok());
  RuntimeConfig config = default_runtime_config();
  config.fs.fsync_settles_device = settle_fsync;
  nvmecr_rt::NvmecrSystem system(cluster, *job, config);
  auto m = ComdDriver::run(cluster, system, params);
  NVMECR_CHECK(m.ok());
  return bandwidth_bps(2 * m->bytes_per_checkpoint, m->checkpoint_time) / 1e9;
}

}  // namespace
}  // namespace nvmecr::bench

int main() {
  using namespace nvmecr;
  using namespace nvmecr::bench;

  print_banner("Ablation: device RAM burst absorption",
               "perceived checkpoint bandwidth (GB/s), 28 procs, 1 SSD "
               "(flash sustains 2.2 GB/s)");
  TablePrinter table({"burst size (total)", "no device RAM",
                      "256 MiB RAM", "256 MiB RAM, fsync=noop"});
  for (uint64_t mb_per_proc : {4u, 8u, 16u, 64u}) {
    const uint64_t bytes = static_cast<uint64_t>(mb_per_proc) << 20;
    table.add_row({TablePrinter::num(28 * mb_per_proc) + " MB",
                   TablePrinter::num(run_burst(0, bytes, true), 2),
                   TablePrinter::num(run_burst(256_MiB, bytes, true), 2),
                   TablePrinter::num(run_burst(256_MiB, bytes, false), 2)});
  }
  table.print();
  std::printf(
      "\nWith fsync settling the pipeline, measurements see sustained "
      "flash bandwidth; with pure no-op fsync (the durability argument "
      "of §III-D), bursts within the RAM are absorbed at RAM speed.\n");
  return 0;
}
