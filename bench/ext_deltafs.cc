// Extension — DeltaFS-like comparison (§IV-A: "We were also unable to
// compare with DeltaFS; despite significant effort, we were unable to
// run it on our cluster"). This bench runs the comparison the paper
// wanted, against our DeltaFS-like model: serverless client-funded
// metadata (the property microfs extends, §II-B) over a conventional
// kernel-FS data path.
//
// Expectation: DeltaFS-like creates scale like NVMe-CR's (no shared
// directory), orders beyond GlusterFS; its *data* efficiency sits at the
// kernel-backend ceiling, between GlusterFS and NVMe-CR.
#include "bench_util.h"

#include "simcore/event.h"

namespace nvmecr::bench {
namespace {

double create_rate(Cluster& cluster, baselines::StorageSystem& system,
                   uint32_t nranks) {
  sim::Engine& eng = cluster.engine();
  sim::Barrier barrier(eng, static_cast<int>(nranks));
  sim::JoinCounter join(eng);
  SimTime t0 = 0, t1 = 0;
  for (uint32_t r = 0; r < nranks; ++r) {
    join.spawn([](sim::Engine& e, baselines::StorageSystem& sys,
                  sim::Barrier& b, uint32_t rank, SimTime& start,
                  SimTime& end) -> sim::Task<void> {
      auto client = (co_await sys.connect(static_cast<int>(rank))).value();
      co_await b.arrive_and_wait();
      if (rank == 0) start = e.now();
      for (int f = 0; f < 16; ++f) {
        auto fd = co_await client->create("/s.r" + std::to_string(rank) +
                                          ".f" + std::to_string(f));
        NVMECR_CHECK(fd.ok());
        NVMECR_CHECK((co_await client->close(*fd)).ok());
      }
      co_await b.arrive_and_wait();
      if (rank == 0) end = e.now();
    }(eng, system, barrier, r, t0, t1));
  }
  eng.run();
  return static_cast<double>(nranks) * 16 / to_seconds(t1 - t0);
}

}  // namespace
}  // namespace nvmecr::bench

int main() {
  using namespace nvmecr;
  using namespace nvmecr::bench;

  print_banner("Extension: DeltaFS-like comparison",
               "the comparison §IV-A could not run");

  // Create scaling (the control-plane property both systems share).
  TablePrinter creates({"procs", "NVMe-CR (cr/s)", "DeltaFS-like (cr/s)",
                        "GlusterFS (cr/s)"});
  for (uint32_t nranks : {112u, 448u}) {
    double nv = 0, dl = 0, gl = 0;
    {
      Cluster cluster;
      Scheduler sched(cluster);
      auto job = sched.allocate(nranks, 28, 256_MiB, 8);
      NVMECR_CHECK(job.ok());
      nvmecr_rt::NvmecrSystem system(cluster, *job, default_runtime_config());
      nv = create_rate(cluster, system, nranks);
    }
    {
      Cluster cluster;
      baselines::DeltaFsModel system(cluster, nranks, 28);
      dl = create_rate(cluster, system, nranks);
    }
    {
      Cluster cluster;
      baselines::GlusterFsModel system(cluster, nranks, 28);
      gl = create_rate(cluster, system, nranks);
    }
    creates.add_row({TablePrinter::num(nranks), TablePrinter::num(nv, 0),
                     TablePrinter::num(dl, 0), TablePrinter::num(gl, 0)});
  }
  creates.print();

  // Checkpoint efficiency (the data-plane property they do not share).
  std::printf("\n");
  TablePrinter eff({"procs", "NVMe-CR eff", "DeltaFS-like eff",
                    "GlusterFS eff"});
  for (uint32_t nranks : {112u, 448u}) {
    ComdParams params = weak_scaling_params(nranks);
    params.checkpoints = 5;
    params.do_recovery = false;
    const JobMetrics nv = run_nvmecr(params);
    JobMetrics dl, gl;
    {
      Cluster cluster;
      baselines::DeltaFsModel system(cluster, nranks, 28);
      dl = *ComdDriver::run(cluster, system, params);
    }
    {
      Cluster cluster;
      baselines::GlusterFsModel system(cluster, nranks, 28);
      gl = *ComdDriver::run(cluster, system, params);
    }
    eff.add_row({TablePrinter::num(nranks),
                 TablePrinter::num(nv.checkpoint_efficiency(), 3),
                 TablePrinter::num(dl.checkpoint_efficiency(), 3),
                 TablePrinter::num(gl.checkpoint_efficiency(), 3)});
  }
  eff.print();
  std::printf(
      "\nServerless metadata closes the create gap; without the "
      "userspace NVMf data plane, DeltaFS-like efficiency stays at the "
      "kernel-backend ceiling — microfs needs both halves (§II-B).\n");
  return 0;
}
