// Host wall-clock performance suite + regression gate (DESIGN.md §11).
//
// Measures the hot paths this repo's scale story depends on and writes
// BENCH_PERF.json:
//
//   des      — same-time-heavy DES microbenchmark, events/sec with the
//              two-tier now ring enabled vs disabled (the pre-rework
//              heap-only scheduler, kept as an in-process baseline).
//   crc64    — slice-by-16 vs byte-at-a-time MB/s on a 1 MiB buffer.
//   payload  — PayloadStore sequential pattern-write rate and cached
//              whole-extent tag reads.
//   e2e      — a fig07-style CoMD run (weak scaling) under wall-clock
//              timing, fast paths on vs off (calendar tier + frame pool
//              bypassed): host events/sec, ring/calendar hit fractions,
//              coroutine frames per event, oplog group commits.
//   degraded — the same CoMD job run healthy vs with 1 of 8 storage
//              targets dead from the start (every IO of the affected
//              ranks fails over to a partner-domain spare). Reports the
//              simulated-time overhead ratio of degraded operation;
//              informational, not gated (it is a model property, not a
//              host-performance one).
//
// The gate compares the *speedup ratios* (new path vs in-process old
// path) against a checked-in baseline, so it is stable across machines:
// absolute events/sec vary with the host, the ratio does not (much).
//
//   perf_suite [--quick] [--out PATH] [--check BASELINE]
//
// --quick shrinks iteration counts for CI smoke; --check exits nonzero
// if any gated ratio regresses more than 25% below the baseline value.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "chaos/campaign.h"
#include "common/crc.h"
#include "common/rng.h"
#include "hw/payload_store.h"
#include "obs/metrics.h"
#include "obs/observer.h"
#include "obs/profile.h"
#include "offload/pipeline.h"
#include "redundancy/engine.h"
#include "resilience/failover.h"
#include "resilience/health.h"
#include "resilience/retry.h"
#include "simcore/engine.h"
#include "simcore/profile.h"

namespace nvmecr::bench {
namespace {

double now_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---------------------------------------------------------------------
// DES microbenchmark: same-time-heavy coroutine churn.
// ---------------------------------------------------------------------

sim::Task<void> churn_task(sim::Engine& eng, uint32_t iters) {
  for (uint32_t i = 0; i < iters; ++i) {
    if ((i & 63u) == 63u) {
      co_await eng.delay(1);  // keep the heap exercised too (~1.5%)
    } else {
      co_await eng.yield();
    }
  }
}

struct DesResult {
  double events_per_sec = 0;
  double ns_per_event = 0;
  uint64_t events = 0;
  double ring_hit_frac = 0;
  double wall_sec = 0;
};

DesResult run_des(bool ring_enabled, uint32_t tasks, uint32_t iters) {
  sim::Engine eng;
  eng.set_now_ring_enabled(ring_enabled);
  for (uint32_t t = 0; t < tasks; ++t) eng.spawn(churn_task(eng, iters));
  const double t0 = now_sec();
  eng.run();
  const double t1 = now_sec();
  DesResult r;
  r.events = eng.events_dispatched();
  r.wall_sec = t1 - t0;
  r.events_per_sec = static_cast<double>(r.events) / r.wall_sec;
  r.ns_per_event = 1e9 * r.wall_sec / static_cast<double>(r.events);
  r.ring_hit_frac = static_cast<double>(eng.now_ring_hits()) /
                    static_cast<double>(r.events);
  return r;
}

// ---------------------------------------------------------------------
// CRC64 microbenchmark.
// ---------------------------------------------------------------------

struct CrcResult {
  double mb_per_sec = 0;
  double baseline_mb_per_sec = 0;
  double speedup = 0;
};

CrcResult run_crc(size_t buf_bytes, uint32_t reps) {
  std::vector<unsigned char> buf(buf_bytes);
  for (size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<unsigned char>(mix64(i) & 0xff);
  }
  uint64_t sink = 0;
  // Warm caches/branch predictors so the timed region measures steady
  // state on both paths.
  sink ^= crc64(buf.data(), buf.size(), 1);
  sink ^= detail::crc64_reference(buf.data(), buf.size(), 1);
  const double t0 = now_sec();
  for (uint32_t r = 0; r < reps; ++r) {
    sink ^= crc64(buf.data(), buf.size(), r);
  }
  const double t1 = now_sec();
  for (uint32_t r = 0; r < reps; ++r) {
    sink ^= detail::crc64_reference(buf.data(), buf.size(), r);
  }
  const double t2 = now_sec();
  // Identical seeds: the two passes XOR-cancel to 0 iff the
  // implementations agree — a free equivalence check that also defeats
  // dead-code elimination.
  NVMECR_CHECK(sink == 0);
  const double mb = static_cast<double>(buf_bytes) * reps / 1e6;
  CrcResult r;
  r.mb_per_sec = mb / (t1 - t0);
  r.baseline_mb_per_sec = mb / (t2 - t1);
  r.speedup = r.mb_per_sec / r.baseline_mb_per_sec;
  return r;
}

// ---------------------------------------------------------------------
// PayloadStore microbenchmark.
// ---------------------------------------------------------------------

struct PayloadResult {
  double write_gb_per_sec = 0;   // conceptual (pattern) bytes per wall sec
  double tag_reads_per_sec = 0;  // cached whole-range tag reads
  uint64_t tag_cache_hits = 0;
  size_t extents = 0;
};

PayloadResult run_payload(uint64_t total_bytes, uint32_t tag_reps) {
  constexpr uint32_t kBlock = 32768;  // paper hugeblock
  constexpr uint64_t kChunk = 4_MiB;
  hw::PayloadStore store(kBlock);
  const double t0 = now_sec();
  for (uint64_t off = 0; off < total_bytes; off += kChunk) {
    NVMECR_CHECK(store.write_pattern(off, kChunk, /*seed=*/7).ok());
  }
  const double t1 = now_sec();
  uint64_t sink = 0;
  for (uint32_t r = 0; r < tag_reps; ++r) {
    auto tag = store.read_combined_tag(0, total_bytes);
    NVMECR_CHECK(tag.ok());
    sink ^= *tag;
  }
  const double t2 = now_sec();
  NVMECR_CHECK(sink == 0 || tag_reps % 2 == 1);
  PayloadResult r;
  r.write_gb_per_sec = static_cast<double>(total_bytes) / 1e9 / (t1 - t0);
  r.tag_reads_per_sec = tag_reps / (t2 - t1);
  r.tag_cache_hits = store.tag_cache_hits();
  r.extents = store.extent_count();
  return r;
}

// ---------------------------------------------------------------------
// End-to-end fig07-style run under wall-clock timing.
// ---------------------------------------------------------------------

struct E2eResult {
  double wall_sec = 0;
  double events_per_sec = 0;
  uint64_t events = 0;
  double ring_hit_frac = 0;
  double calendar_hit_frac = 0;  // timer dispatches served by the calendar
  uint64_t frames = 0;           // coroutine frames allocated during the run
  double frames_per_event = 0;   // host frame churn per dispatched event
  double frames_recycled_frac = 0;
  uint64_t group_commits = 0;
  uint64_t tag_cache_hits = 0;
  uint64_t tag_cache_fills = 0;
  uint64_t tag_reads = 0;
  uint64_t fabric_bytes = 0;  // real fabric crossings during the run
  double sim_efficiency = 0;
};

/// One fig07-style run with the host fast paths on (default) or off
/// (`fast_paths=false` bypasses the calendar tier and the frame pool —
/// the in-process "PR-7 scheduler" baseline arm the e2e.speedup gate
/// compares against). Simulated results are identical either way; only
/// the host wall clock moves.
E2eResult run_e2e(uint32_t nranks, uint32_t checkpoints,
                  bool fast_paths = true) {
  ComdParams params = weak_scaling_params(nranks);
  params.checkpoints = checkpoints;
  obs::MetricsRegistry metrics;
  obs::Observer o;
  o.metrics = &metrics;
  sim::set_frame_pooling(fast_paths);
  Cluster cluster;
  cluster.engine().set_calendar_enabled(fast_paths);
  cluster.install_observer(o);
  Scheduler sched(cluster);
  auto job = sched.allocate(params.nranks, params.procs_per_node,
                            partition_for(params), /*num_ssds=*/8);
  NVMECR_CHECK(job.ok());
  nvmecr_rt::NvmecrSystem system(cluster, *job, default_runtime_config());
  const double t0 = now_sec();
  auto run = ComdDriver::run(cluster, system, params);
  const double t1 = now_sec();
  sim::set_frame_pooling(true);
  NVMECR_CHECK(run.ok());
  const JobMetrics& m = *run;
  E2eResult r;
  r.wall_sec = t1 - t0;
  r.events = metrics.counter("engine.events_dispatched")->value();
  r.events_per_sec = static_cast<double>(r.events) / r.wall_sec;
  r.ring_hit_frac = static_cast<double>(
                        metrics.counter("engine.now_ring_hits")->value()) /
                    static_cast<double>(r.events);
  r.calendar_hit_frac =
      static_cast<double>(metrics.counter("engine.calendar_hits")->value()) /
      static_cast<double>(r.events);
  r.frames = metrics.counter("engine.frames_allocated")->value();
  r.frames_per_event =
      static_cast<double>(r.frames) / static_cast<double>(r.events);
  r.frames_recycled_frac =
      static_cast<double>(metrics.counter("engine.frames_recycled")->value()) /
      static_cast<double>(r.frames);
  r.group_commits = metrics.counter("microfs.oplog.group_commits")->value();
  r.tag_cache_hits = metrics.counter("payload.tag_cache_hits")->value();
  r.tag_cache_fills = metrics.counter("payload.tag_cache_fills")->value();
  r.tag_reads = metrics.counter("payload.tag_reads")->value();
  r.fabric_bytes = metrics.counter("fabric.bytes_sent")->value();
  r.sim_efficiency = m.checkpoint_efficiency();
  // Regression guard for the e2e tag-cache shape: adjacent same-seed
  // pattern writes merge into one giant extent per rank file, and the
  // restart phase reads it back in io_chunk-sized pieces, so the
  // whole-extent tag cache never engages end to end — zero hits with
  // nonzero tag reads is the *correct* steady state, not a wiring bug
  // (the microbench above shows the cache working when reads do cover
  // whole extents). If either side of this ever flips, the caching
  // story changed and this suite needs to re-derive the expectation.
  NVMECR_CHECK(r.tag_reads > 0);
  NVMECR_CHECK(r.tag_cache_hits == 0);
  return r;
}

// ---------------------------------------------------------------------
// Observability overhead: the same small CoMD job timed with (a) no
// observability at all, (b) profile hooks armed but nothing consuming
// them — the always-compiled cost the <1% gate bounds — and (c) the
// full profiling stack. Arms are interleaved and min-of-N so the gate
// compares best-case wall clocks on equal footing.
// ---------------------------------------------------------------------

struct OverheadResult {
  double plain_sec = 0;
  double hooks_sec = 0;
  double profiled_sec = 0;
  double disabled_frac = 0;   // (hooks - plain) / plain, clamped at 0
  double profiled_frac = 0;   // (profiled - plain) / plain, clamped at 0
};

double time_e2e_arm(const ComdParams& params, int arm) {
  sim::DispatchProfiler prof;
  obs::EpochProfiler ep;
  obs::Observer o;
  if (arm == 2) {
    o.dispatch = &prof;
    o.epoch = &ep;
  }
  const double t0 = now_sec();
  run_nvmecr(params, default_runtime_config(), nullptr, /*num_ssds=*/8, o,
             /*force_profile_hooks=*/arm == 1);
  return now_sec() - t0;
}

OverheadResult run_overhead(uint32_t nranks, uint32_t checkpoints,
                            uint32_t reps) {
  ComdParams params = weak_scaling_params(nranks);
  params.checkpoints = checkpoints;
  (void)time_e2e_arm(params, 0);  // warmup (allocator, page cache)
  double best[3] = {1e300, 1e300, 1e300};
  for (uint32_t i = 0; i < reps; ++i) {
    for (int arm = 0; arm < 3; ++arm) {
      const double t = time_e2e_arm(params, arm);
      if (t < best[arm]) best[arm] = t;
    }
  }
  OverheadResult r;
  r.plain_sec = best[0];
  r.hooks_sec = best[1];
  r.profiled_sec = best[2];
  r.disabled_frac = std::max(0.0, (best[1] - best[0]) / best[0]);
  r.profiled_frac = std::max(0.0, (best[2] - best[0]) / best[0]);
  return r;
}

// ---------------------------------------------------------------------
// --profile: one fully profiled e2e run; prints the ranked dispatch
// cost-center table (where the host wall clock goes — the 55x
// microbench-vs-e2e gap) and the checkpoint-epoch drilldown (where the
// *simulated* time goes, per phase per rank, with straggler
// attribution).
// ---------------------------------------------------------------------

void run_profiled_e2e(uint32_t nranks, uint32_t checkpoints) {
  ComdParams params = weak_scaling_params(nranks);
  params.checkpoints = checkpoints;
  sim::DispatchProfiler prof;
  obs::EpochProfiler ep;
  obs::MetricsRegistry metrics;
  obs::Observer o;
  o.metrics = &metrics;
  o.dispatch = &prof;
  o.epoch = &ep;
  const double t0 = now_sec();
  run_nvmecr(params, default_runtime_config(), nullptr, /*num_ssds=*/8, o);
  const double t1 = now_sec();
  prof.finish();
  std::printf("\n[profile] e2e CoMD %u ranks x %u checkpoints, wall %.2f s\n",
              nranks, checkpoints, t1 - t0);
  std::printf("\ndispatch cost centers (host wall clock):\n%s\n",
              prof.table(10).c_str());
  std::printf("checkpoint-epoch drilldown (simulated time; epoch %u = "
              "restart):\n%s\n",
              checkpoints, ep.drilldown_table().c_str());
}

// ---------------------------------------------------------------------
// Degraded-mode scenario: 1 of 8 targets dead, resilience layer active.
// ---------------------------------------------------------------------

struct DegradedResult {
  SimDuration healthy_sim = 0;    // simulated job time, all targets up
  SimDuration degraded_sim = 0;   // same job, 1 target dead from t=0
  double overhead_ratio = 0;      // degraded / healthy
  uint64_t failovers = 0;
};

// One CoMD run through the full resilience stack (retrying device
// wrapper + health monitor + ResilientSystem). `kill_first` crashes the
// first allocated target before the job starts, so every IO of its
// ranks pivots to a partner-domain spare. Simulated time is
// deterministic — the ratio needs no repetitions.
SimDuration run_resilient(const ComdParams& params, bool kill_first,
                          uint64_t* failovers) {
  nvmecr_rt::ClusterSpec spec;
  spec.compute_nodes = 8;
  spec.storage_nodes = 8;
  spec.storage_racks = 4;
  Cluster cluster(spec);
  Scheduler sched(cluster);
  auto job = sched.allocate(params.nranks, params.procs_per_node,
                            partition_for(params), /*num_ssds=*/8);
  NVMECR_CHECK(job.ok());

  resilience::HealthMonitor monitor(cluster.engine(), cluster.topology());
  RuntimeConfig config = default_runtime_config();
  config.device_wrapper = resilience::make_retry_wrapper(
      cluster.engine(), monitor, resilience::RetryPolicy{}, /*seed=*/42);
  nvmecr_rt::NvmecrSystem primary(cluster, *job, config);
  resilience::ResilientSystem sys(cluster, sched, primary, monitor, *job,
                                  config);
  if (kill_first) {
    const fabric::NodeId victim = job->assignment.ssd_nodes[0];
    const uint32_t idx = cluster.storage_ssd_index(victim);
    cluster.storage_ssd(idx).schedule_crash(0);
    cluster.target(idx).schedule_crash(0);
    monitor.note_exhausted(victim);  // detection already converged
  }
  auto m = ComdDriver::run(cluster, sys, params);
  NVMECR_CHECK(m.ok());
  if (failovers != nullptr) *failovers = sys.failovers();
  return m->total_time;
}

DegradedResult run_degraded(uint32_t nranks, uint32_t checkpoints) {
  ComdParams params;
  params.nranks = nranks;
  params.procs_per_node = 1;
  params.atoms_per_rank = 8192;
  params.bytes_per_atom = 512;  // 4 MiB per rank: IO-dominated job
  params.io_chunk = 1_MiB;
  params.checkpoints = checkpoints;
  params.compute_per_period = 2 * kMillisecond;
  params.keep_last = checkpoints;

  DegradedResult r;
  r.healthy_sim = run_resilient(params, /*kill_first=*/false, nullptr);
  r.degraded_sim = run_resilient(params, /*kill_first=*/true, &r.failovers);
  r.overhead_ratio = static_cast<double>(r.degraded_sim) /
                     static_cast<double>(r.healthy_sim);
  return r;
}

// ---------------------------------------------------------------------
// Offload: (a) disabled-wrapper overhead — routing the e2e job through
// OffloadSystem with no stages granted and no codec must cost ~nothing
// on the host wall clock; (b) host-XOR vs target-XOR checkpoint fabric
// bytes on a fig07-style CoMD job (the offload pipeline's headline).
// Simulated byte counts are deterministic; only (a) needs min-of-N.
// ---------------------------------------------------------------------

struct OffloadPerfResult {
  double plain_sec = 0;
  double wrapped_sec = 0;
  double disabled_frac = 0;        // (wrapped - plain) / plain, >= 0
  uint64_t host_xor_fabric = 0;    // checkpoint-phase fabric bytes
  uint64_t target_xor_fabric = 0;
  double fabric_savings_frac = 0;  // 1 - target/host
};

double time_offload_arm(const ComdParams& params, bool wrapped) {
  Cluster cluster;
  Scheduler sched(cluster);
  auto job = sched.allocate(params.nranks, params.procs_per_node,
                            partition_for(params), /*num_ssds=*/8);
  NVMECR_CHECK(job.ok());
  nvmecr_rt::NvmecrSystem inner(cluster, *job, default_runtime_config());
  offload::OffloadOptions opts;
  opts.stages = 0;
  opts.digest_checks = false;  // pure pass-through wrapper
  offload::OffloadSystem off(cluster, inner, *job, opts);
  baselines::StorageSystem& sys =
      wrapped ? static_cast<baselines::StorageSystem&>(off)
              : static_cast<baselines::StorageSystem&>(inner);
  const double t0 = now_sec();
  NVMECR_CHECK(ComdDriver::run(cluster, sys, params).ok());
  return now_sec() - t0;
}

uint64_t run_xor_fabric(const ComdParams& params, redundancy::Scheme scheme) {
  nvmecr_rt::ClusterSpec spec;
  spec.compute_nodes = 8;
  spec.storage_nodes = 8;
  spec.storage_racks = 8;
  Cluster cluster(spec);
  Scheduler sched(cluster);
  auto job = sched.allocate(params.nranks, params.procs_per_node,
                            partition_for(params) * 2, /*num_ssds=*/4);
  NVMECR_CHECK(job.ok());
  nvmecr_rt::NvmecrSystem primary(cluster, *job, default_runtime_config());
  redundancy::RedundancyOptions ropts;
  ropts.scheme = scheme;
  ropts.xor_set_size = 4;
  auto dep = redundancy::deploy_redundancy(cluster, sched, primary, *job,
                                           ropts);
  NVMECR_CHECK(dep.ok());
  const uint64_t fabric0 = cluster.network().total_bytes_sent();
  NVMECR_CHECK(ComdDriver::run(cluster, *dep->system, params).ok());
  return cluster.network().total_bytes_sent() - fabric0;
}

OffloadPerfResult run_offload_perf(uint32_t reps, bool quick) {
  ComdParams params = weak_scaling_params(28);
  params.checkpoints = 2;
  (void)time_offload_arm(params, false);  // warmup
  double best[2] = {1e300, 1e300};
  for (uint32_t i = 0; i < reps; ++i) {
    for (int arm = 0; arm < 2; ++arm) {
      const double t = time_offload_arm(params, arm == 1);
      if (t < best[arm]) best[arm] = t;
    }
  }
  OffloadPerfResult r;
  r.plain_sec = best[0];
  r.wrapped_sec = best[1];
  r.disabled_frac = std::max(0.0, (best[1] - best[0]) / best[0]);

  ComdParams xp = weak_scaling_params(8);
  xp.procs_per_node = 1;
  xp.checkpoints = quick ? 2 : 3;
  xp.do_recovery = false;
  r.host_xor_fabric = run_xor_fabric(xp, redundancy::Scheme::kXor);
  r.target_xor_fabric = run_xor_fabric(xp, redundancy::Scheme::kXorTarget);
  r.fabric_savings_frac =
      1.0 - static_cast<double>(r.target_xor_fabric) /
                static_cast<double>(r.host_xor_fabric);
  return r;
}

// ---------------------------------------------------------------------
// Baseline gate: flat {"key": number} JSON, 25% regression tolerance.
// ---------------------------------------------------------------------

/// JSON number formatting: exact integers print without an exponent so
/// counters stay greppable; everything else gets 6 significant digits.
std::string json_num(double v) {
  char buf[64];
  if (v == std::floor(v) && std::fabs(v) < 9e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  return buf;
}

bool read_baseline(const std::string& path,
                   std::vector<std::pair<std::string, double>>& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  size_t pos = 0;
  while ((pos = text.find('"', pos)) != std::string::npos) {
    const size_t end = text.find('"', pos + 1);
    if (end == std::string::npos) break;
    const std::string key = text.substr(pos + 1, end - pos - 1);
    size_t colon = text.find(':', end);
    if (colon == std::string::npos) break;
    size_t vpos = text.find_first_not_of(" \t\n", colon + 1);
    if (vpos == std::string::npos) break;
    if (text[vpos] == '"') {
      // String value (e.g. the "comment" field): skip past its closing
      // quote so internal commas and periods cannot desync the scan.
      pos = text.find('"', vpos + 1);
      if (pos == std::string::npos) break;
      ++pos;
      continue;
    }
    out.emplace_back(key, std::strtod(text.c_str() + vpos, nullptr));
    pos = text.find(',', vpos);
    if (pos == std::string::npos) break;
  }
  return true;
}

}  // namespace
}  // namespace nvmecr::bench

int main(int argc, char** argv) {
  using namespace nvmecr;
  using namespace nvmecr::bench;

  bool quick = false;
  bool profile = false;
  std::string out_path = "BENCH_PERF.json";
  std::string check_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--check" && i + 1 < argc) {
      check_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: perf_suite [--quick] [--profile] [--out PATH] "
                   "[--check BASELINE]\n");
      return 2;
    }
  }

  // DES: 256 tasks ping-ponging at the same sim time.
  const uint32_t des_iters = quick ? 4096 : 16384;
  std::printf("[des] %u tasks x %u iters...\n", 256u, des_iters);
  const DesResult des_old = run_des(/*ring=*/false, 256, des_iters);
  const DesResult des_new = run_des(/*ring=*/true, 256, des_iters);
  const double des_speedup = des_new.events_per_sec / des_old.events_per_sec;
  std::printf("[des] ring on: %.1f Mev/s (%.1f ns/ev, ring %.0f%%)  "
              "ring off: %.1f Mev/s  speedup %.2fx\n",
              des_new.events_per_sec / 1e6, des_new.ns_per_event,
              100 * des_new.ring_hit_frac, des_old.events_per_sec / 1e6,
              des_speedup);

  // CRC64: 1 MiB buffer.
  const uint32_t crc_reps = quick ? 64 : 512;
  std::printf("[crc64] 1 MiB x %u reps...\n", crc_reps);
  const CrcResult crc = run_crc(1_MiB, crc_reps);
  std::printf("[crc64] slice16: %.0f MB/s  bytewise: %.0f MB/s  "
              "speedup %.2fx\n",
              crc.mb_per_sec, crc.baseline_mb_per_sec, crc.speedup);

  // PayloadStore: sequential pattern stream + cached tag reads.
  const uint64_t pay_bytes = quick ? 1_GiB : 8_GiB;
  const uint32_t tag_reps = quick ? 1000 : 10000;
  std::printf("[payload] %.0f GiB stream, %u tag reads...\n",
              static_cast<double>(pay_bytes) / (1_GiB), tag_reps);
  const PayloadResult pay = run_payload(pay_bytes, tag_reps);
  std::printf("[payload] write %.1f GB/s (conceptual)  tag reads "
              "%.2g/s  cache hits %llu  extents %zu\n",
              pay.write_gb_per_sec, pay.tag_reads_per_sec,
              static_cast<unsigned long long>(pay.tag_cache_hits),
              pay.extents);

  // End-to-end fig07-style run, fast paths on vs off (the in-process
  // baseline arm: calendar tier bypassed, frame pool bypassed).
  const uint32_t e2e_ranks = quick ? 56 : 112;
  const uint32_t e2e_ckpts = quick ? 2 : 5;
  std::printf("[e2e] CoMD weak scaling, %u ranks, %u checkpoints...\n",
              e2e_ranks, e2e_ckpts);
  // Warmup run (discarded): the first run in a process pays the kernel
  // page faults for the allocator arenas and device models; without it
  // whichever arm runs first loses ~20% and the comparison is garbage.
  run_e2e(e2e_ranks, e2e_ckpts);
  // Interleaved best-of-2 per arm, same footing as the overhead benches.
  E2eResult e2e = run_e2e(e2e_ranks, e2e_ckpts);
  E2eResult e2e_base = run_e2e(e2e_ranks, e2e_ckpts, /*fast_paths=*/false);
  {
    const E2eResult fast2 = run_e2e(e2e_ranks, e2e_ckpts);
    if (fast2.events_per_sec > e2e.events_per_sec) e2e = fast2;
    const E2eResult base2 =
        run_e2e(e2e_ranks, e2e_ckpts, /*fast_paths=*/false);
    if (base2.events_per_sec > e2e_base.events_per_sec) e2e_base = base2;
  }
  const double e2e_speedup = e2e.events_per_sec / e2e_base.events_per_sec;
  std::printf("[e2e] wall %.2f s  %.1f Mev/s  ring %.0f%%  calendar %.0f%%  "
              "frames/ev %.2f (recycled %.0f%%)\n",
              e2e.wall_sec, e2e.events_per_sec / 1e6,
              100 * e2e.ring_hit_frac, 100 * e2e.calendar_hit_frac,
              e2e.frames_per_event, 100 * e2e.frames_recycled_frac);
  std::printf("[e2e] baseline (no calendar, no pool): %.1f Mev/s  "
              "speedup %.2fx  group_commits %llu  tag hits %llu  "
              "efficiency %.3f\n",
              e2e_base.events_per_sec / 1e6, e2e_speedup,
              static_cast<unsigned long long>(e2e.group_commits),
              static_cast<unsigned long long>(e2e.tag_cache_hits),
              e2e.sim_efficiency);

  // Observability overhead: hooks-armed vs plain, min-of-N interleaved.
  // Full mode doubles the per-rep work for finer resolution on the
  // sub-percent bound.
  const uint32_t obs_reps = quick ? 5 : 9;
  const uint32_t obs_ckpts = quick ? 2 : 4;
  std::printf("[obs] overhead, CoMD 28 ranks x %u checkpoints, 3 arms x "
              "%u reps...\n", obs_ckpts, obs_reps);
  const OverheadResult ovh =
      run_overhead(/*nranks=*/28, obs_ckpts, obs_reps);
  std::printf("[obs] plain %.3f s  hooks-only %.3f s (+%.2f%%)  profiled "
              "%.3f s (+%.2f%%)\n",
              ovh.plain_sec, ovh.hooks_sec, 100 * ovh.disabled_frac,
              ovh.profiled_sec, 100 * ovh.profiled_frac);

  // Optional deep profile of the e2e run (tables only; not in the JSON).
  if (profile) run_profiled_e2e(e2e_ranks, e2e_ckpts);

  // Offload: disabled-wrapper overhead + host/target XOR fabric bytes.
  const uint32_t off_reps = quick ? 3 : 5;
  std::printf("[offload] pass-through wrapper x %u reps + XOR fabric "
              "sweep...\n", off_reps);
  const OffloadPerfResult off = run_offload_perf(off_reps, quick);
  std::printf("[offload] plain %.3f s  wrapped %.3f s (+%.2f%%)  "
              "xor fabric host %.2f GiB -> target %.2f GiB (-%.1f%%)\n",
              off.plain_sec, off.wrapped_sec, 100 * off.disabled_frac,
              static_cast<double>(off.host_xor_fabric) / (1ull << 30),
              static_cast<double>(off.target_xor_fabric) / (1ull << 30),
              100 * off.fabric_savings_frac);

  // Degraded-mode overhead: 1 of 8 targets dead, resilience active.
  const uint32_t deg_ranks = 8;
  const uint32_t deg_ckpts = quick ? 2 : 3;
  std::printf("[degraded] CoMD %u ranks, %u checkpoints, 1/8 targets "
              "dead...\n", deg_ranks, deg_ckpts);
  const DegradedResult deg = run_degraded(deg_ranks, deg_ckpts);
  std::printf("[degraded] healthy %.2f ms  degraded %.2f ms  overhead "
              "%.3fx  failovers %llu\n",
              static_cast<double>(deg.healthy_sim) / 1e6,
              static_cast<double>(deg.degraded_sim) / 1e6,
              deg.overhead_ratio,
              static_cast<unsigned long long>(deg.failovers));

  // Chaos campaign absorption: fraction of seeded failure schedules the
  // resilient stack carries to digest-identical completion. A model
  // property like `degraded`, so informational, not gated (DESIGN.md
  // §17; bench/ext_chaos runs the full interval sweep).
  const uint32_t campaign_n = quick ? 6 : 16;
  std::printf("[campaign] chaos survival, %u pinned-seed schedules...\n",
              campaign_n);
  chaos::CampaignRunner campaign{chaos::CampaignConfig{}};
  const chaos::CampaignResult camp =
      campaign.run_campaign(campaign_n, /*shrink=*/false);
  const double campaign_eff =
      camp.runs > 0 ? static_cast<double>(camp.completed) / camp.runs : 0;
  std::printf("[campaign] %u/%u completed digest-identical, %u typed "
              "failures, %u violations\n",
              camp.completed, camp.runs, camp.typed_failures,
              camp.hangs + camp.corruptions + camp.divergences + camp.infra);

  // BENCH_PERF.json: one flat key/value list drives both the JSON file
  // and the --check delta table, so adding a metric is a one-liner.
  const std::vector<std::pair<std::string, double>> results = {
      {"des.events_per_sec", des_new.events_per_sec},
      {"des.ns_per_event", des_new.ns_per_event},
      {"des.ring_hit_frac", des_new.ring_hit_frac},
      {"des.baseline_events_per_sec", des_old.events_per_sec},
      {"des.speedup", des_speedup},
      {"crc64.mb_per_sec", crc.mb_per_sec},
      {"crc64.baseline_mb_per_sec", crc.baseline_mb_per_sec},
      {"crc64.speedup", crc.speedup},
      {"payload.write_gb_per_sec", pay.write_gb_per_sec},
      {"payload.tag_reads_per_sec", pay.tag_reads_per_sec},
      {"payload.tag_cache_hits", static_cast<double>(pay.tag_cache_hits)},
      {"e2e.wall_sec", e2e.wall_sec},
      {"e2e.events_per_sec", e2e.events_per_sec},
      {"e2e.baseline_events_per_sec", e2e_base.events_per_sec},
      {"e2e.speedup", e2e_speedup},
      {"e2e.ring_hit_frac", e2e.ring_hit_frac},
      {"e2e.calendar_hit_frac", e2e.calendar_hit_frac},
      {"e2e.frames_per_event", e2e.frames_per_event},
      {"e2e.frames_recycled_frac", e2e.frames_recycled_frac},
      {"e2e.oplog_group_commits", static_cast<double>(e2e.group_commits)},
      {"e2e.payload_tag_cache_hits", static_cast<double>(e2e.tag_cache_hits)},
      {"e2e.payload_tag_cache_fills",
       static_cast<double>(e2e.tag_cache_fills)},
      {"e2e.payload_tag_reads", static_cast<double>(e2e.tag_reads)},
      {"e2e.fabric_bytes", static_cast<double>(e2e.fabric_bytes)},
      {"e2e.sim_efficiency", e2e.sim_efficiency},
      {"campaign.efficiency", campaign_eff},
      {"obs.disabled_overhead_frac", ovh.disabled_frac},
      {"obs.profile_overhead_frac", ovh.profiled_frac},
      {"offload.disabled_overhead_frac", off.disabled_frac},
      {"offload.host_xor_fabric_bytes",
       static_cast<double>(off.host_xor_fabric)},
      {"offload.target_xor_fabric_bytes",
       static_cast<double>(off.target_xor_fabric)},
      {"offload.fabric_savings_frac", off.fabric_savings_frac},
      {"degraded.healthy_sim_ms",
       static_cast<double>(deg.healthy_sim) / 1e6},
      {"degraded.sim_ms", static_cast<double>(deg.degraded_sim) / 1e6},
      {"degraded.overhead_ratio", deg.overhead_ratio},
      {"degraded.failovers", static_cast<double>(deg.failovers)},
  };
  {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "perf_suite: cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << "{\n  \"schema\": \"nvmecr-perf-suite-v1\",\n  \"quick\": "
        << (quick ? "true" : "false");
    for (const auto& [key, value] : results) {
      out << ",\n  \"" << key << "\": " << json_num(value);
    }
    out << "\n}\n";
    std::printf("wrote %s\n", out_path.c_str());
  }

  // Regression gate: ratios only (machine-independent).
  if (!check_path.empty()) {
    std::vector<std::pair<std::string, double>> baseline;
    if (!read_baseline(check_path, baseline)) {
      std::fprintf(stderr, "perf_suite: cannot read baseline %s\n",
                   check_path.c_str());
      return 1;
    }
    // Delta table: every baselined metric next to this run's value, so a
    // PR's perf impact is visible in the CI log without downloading the
    // artifact. Gates below only act on the machine-independent subset.
    std::printf("%-34s %14s %14s %9s\n", "metric", "baseline", "current",
                "delta");
    for (const auto& [key, want] : baseline) {
      const auto it =
          std::find_if(results.begin(), results.end(),
                       [&key = key](const auto& kv) { return kv.first == key; });
      if (it == results.end()) continue;
      const double got = it->second;
      if (want != 0) {
        std::printf("%-34s %14s %14s %+8.1f%%\n", key.c_str(),
                    json_num(want).c_str(), json_num(got).c_str(),
                    100 * (got - want) / want);
      } else {
        std::printf("%-34s %14s %14s %9s\n", key.c_str(),
                    json_num(want).c_str(), json_num(got).c_str(), "-");
      }
    }
    constexpr double kTolerance = 0.75;  // fail on >25% regression
    bool ok = true;
    for (const auto& [key, want] : baseline) {
      // Upper-bound gate: the profiling layer must stay below the
      // baselined overhead fraction when disabled. Short wall clocks are
      // noisier under --quick CI load, so the quick bound is looser and
      // an over-limit sample earns one re-measure before failing.
      if (key == "obs.disabled_overhead_frac") {
        const double limit = quick ? 0.10 : want;
        double got = ovh.disabled_frac;
        if (got > limit) {
          const OverheadResult retry =
              run_overhead(/*nranks=*/28, obs_ckpts, obs_reps);
          got = std::min(got, retry.disabled_frac);
        }
        if (got > limit) {
          std::fprintf(stderr,
                       "PERF REGRESSION: %s = %.4f exceeds limit %.4f\n",
                       key.c_str(), got, limit);
          ok = false;
        } else {
          std::printf("gate ok: %s = %.4f (limit %.4f)\n", key.c_str(),
                      got, limit);
        }
        continue;
      }
      // The disabled offload wrapper must stay under the baselined
      // overhead fraction (same shape as the obs gate: looser quick
      // bound, one re-measure before failing).
      if (key == "offload.disabled_overhead_frac") {
        const double limit = quick ? 0.15 : want;
        double got = off.disabled_frac;
        if (got > limit) {
          const OffloadPerfResult retry = run_offload_perf(off_reps, quick);
          got = std::min(got, retry.disabled_frac);
        }
        if (got > limit) {
          std::fprintf(stderr,
                       "PERF REGRESSION: %s = %.4f exceeds limit %.4f\n",
                       key.c_str(), got, limit);
          ok = false;
        } else {
          std::printf("gate ok: %s = %.4f (limit %.4f)\n", key.c_str(),
                      got, limit);
        }
        continue;
      }
      // Deterministic simulated quantity: target-side XOR must keep
      // saving at least the baselined fraction of checkpoint fabric
      // bytes (the offload pipeline acceptance headline).
      if (key == "offload.fabric_savings_frac") {
        if (off.fabric_savings_frac < want) {
          std::fprintf(stderr,
                       "PERF REGRESSION: %s = %.4f below floor %.4f\n",
                       key.c_str(), off.fabric_savings_frac, want);
          ok = false;
        } else {
          std::printf("gate ok: %s = %.4f (floor %.4f)\n", key.c_str(),
                      off.fabric_savings_frac, want);
        }
        continue;
      }
      // Frames per dispatched event is a structural quantity (how many
      // coroutine frames the nvmf data path allocates per unit of
      // simulation progress) — a creeping increase means someone re-split
      // the flattened fast paths. Gate it with 10% headroom.
      if (key == "e2e.frames_per_event") {
        const double limit = want * 1.10;
        if (e2e.frames_per_event > limit) {
          std::fprintf(stderr,
                       "PERF REGRESSION: %s = %.3f exceeds limit %.3f\n",
                       key.c_str(), e2e.frames_per_event, limit);
          ok = false;
        } else {
          std::printf("gate ok: %s = %.3f (limit %.3f)\n", key.c_str(),
                      e2e.frames_per_event, limit);
        }
        continue;
      }
      double got = -1;
      if (key == "des.speedup") got = des_speedup;
      else if (key == "crc64.speedup") got = crc.speedup;
      else if (key == "e2e.speedup") got = e2e_speedup;
      else continue;  // informational keys are not gated
      if (got < want * kTolerance) {
        std::fprintf(stderr,
                     "PERF REGRESSION: %s = %.3f, baseline %.3f "
                     "(floor %.3f)\n",
                     key.c_str(), got, want, want * kTolerance);
        ok = false;
      } else {
        std::printf("gate ok: %s = %.3f (baseline %.3f)\n", key.c_str(), got,
                    want);
      }
    }
    if (!ok) return 1;
  }
  return 0;
}
