// Figure 7(b) — Load imbalance (coefficient of variation of per-server
// stored bytes) for NVMe-CR, OrangeFS and GlusterFS running CoMD at
// different process counts (§IV-C).
//
// Paper shape: GlusterFS's consistent hashing has high CoV at low
// concurrency and improves with file count; OrangeFS's striping is much
// better at low concurrency with visible overhead at higher counts;
// NVMe-CR's round-robin balancer is ~0 everywhere.
#include "bench_util.h"

int main() {
  using namespace nvmecr;
  using namespace nvmecr::bench;

  print_banner("Figure 7(b)", "load CoV (stdev/mean of per-server bytes)");
  TablePrinter table({"procs", "NVMe-CR", "OrangeFS", "GlusterFS"});

  for (uint32_t nranks : {28u, 56u, 112u, 224u, 448u}) {
    ComdParams params = weak_scaling_params(nranks);
    params.checkpoints = 3;
    params.keep_last = 3;  // keep everything: CoV over stored data
    params.do_recovery = false;

    // SSD count per the paper's process:SSD guidance (one SSD per 56
    // processes) so partial round-robin rounds don't appear as imbalance.
    const JobMetrics nv = run_nvmecr(params, default_runtime_config(),
                                     nullptr, /*num_ssds=*/0);
    const JobMetrics orange = run_dfs("OrangeFS", params);
    const JobMetrics gluster = run_dfs("GlusterFS", params);
    table.add_row({TablePrinter::num(nranks),
                   TablePrinter::num(nv.load_cov(), 4),
                   TablePrinter::num(orange.load_cov(), 4),
                   TablePrinter::num(gluster.load_cov(), 4)});
  }
  table.print();
  std::printf(
      "\nPaper reference: NVMe-CR ~0 at every scale; GlusterFS worst at "
      "low concurrency; OrangeFS in between.\n");
  return 0;
}
