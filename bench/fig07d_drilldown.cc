// Figure 7(d) — Drilldown evaluation: impact of the individual NVMe-CR
// optimizations on CoMD checkpoint time, single compute node, 1..28
// processes (§IV-E).
//
// Configurations are cumulative:
//   base          : kernel IO path + global namespace + full-inode
//                   journaling + 4 KiB blocks (a conventional FS shape)
//   +user/priv    : userspace direct access + private namespaces
//   +provenance   : compact operation log instead of inode writeback
//   +hugeblocks   : 32 KiB hugeblocks
//
// Paper shape: userspace+private up to 44% over base (more at scale);
// provenance up to 17% on top; hugeblocks up to 62% on top (mostly at
// low concurrency where software overhead dominates).
#include "bench_util.h"

namespace nvmecr::bench {
namespace {

RuntimeConfig make_config(int stage) {
  RuntimeConfig config = default_runtime_config();
  config.userspace = stage >= 1;
  config.private_namespace = stage >= 1;
  config.fs.metadata_provenance = stage >= 2;
  config.fs.hugeblock_size = stage >= 3 ? 32_KiB : 4_KiB;
  config.fs.io_batch_hugeblocks =
      static_cast<uint32_t>(4_MiB / config.fs.hugeblock_size);
  return config;
}

double run_stage(uint32_t nranks, int stage) {
  ComdParams params;
  params.nranks = nranks;
  params.procs_per_node = 28;
  params.atoms_per_rank = 128 * 1024;
  params.bytes_per_atom = 512;  // 64 MiB per rank
  params.checkpoints = 2;
  params.compute_per_period = 50 * kMillisecond;
  params.io_chunk = 1_MiB;
  params.keep_last = 1;
  params.do_recovery = false;

  Cluster cluster;
  Scheduler sched(cluster);
  auto job = sched.allocate(params.nranks, 28, partition_for(params), 1);
  NVMECR_CHECK(job.ok());
  nvmecr_rt::NvmecrSystem system(cluster, *job, make_config(stage));
  auto m = ComdDriver::run(cluster, system, params);
  NVMECR_CHECK(m.ok());
  return to_seconds(m->checkpoint_time);
}

}  // namespace
}  // namespace nvmecr::bench

int main() {
  using namespace nvmecr;
  using namespace nvmecr::bench;

  print_banner("Figure 7(d)",
               "drilldown: CoMD checkpoint time per configuration (64 MiB "
               "per process, single node)");
  TablePrinter table({"procs", "base (s)", "+user/priv (s)", "+provenance (s)",
                      "+hugeblocks (s)", "user/priv gain", "provenance gain",
                      "hugeblock gain"});
  for (uint32_t nranks : {7u, 14u, 28u}) {
    double t[4];
    for (int stage = 0; stage < 4; ++stage) t[stage] = run_stage(nranks, stage);
    table.add_row({TablePrinter::num(nranks),
                   TablePrinter::num(t[0], 3), TablePrinter::num(t[1], 3),
                   TablePrinter::num(t[2], 3), TablePrinter::num(t[3], 3),
                   pct(1.0 - t[1] / t[0]), pct(1.0 - t[2] / t[1]),
                   pct(1.0 - t[3] / t[2])});
  }
  table.print();
  std::printf(
      "\nPaper reference: +userspace/private up to 44%%; +provenance up to "
      "17%%; +hugeblocks up to 62%% (largest at low concurrency).\n");
  return 0;
}
