// Extension — checkpoint-interval optimization under failure schedules
// (DESIGN.md §17): computes the Young/Daly optimal interval from the
// failure process MTBF and the *measured* per-epoch checkpoint overhead
// δ, then validates it empirically. For each interval on a geometric
// grid around the Daly point, kill-and-restart cycles are driven
// through AppDriver with failures drawn from a seeded exponential
// stream (common random numbers across intervals), and efficiency =
// useful-compute / total-sim-time is measured. The acceptance gate: the
// empirical efficiency argmax must land within one grid step of the
// computed optimum.
//
// A second section runs a quick chaos campaign and reports the verdict
// tally — the fraction of schedules fully absorbed by the resilience
// stack (the `campaign.efficiency` number perf_suite records as an
// informational key).
//
// Run:  ./build/bench/ext_chaos [--csv FILE] [--schedules N]
#include <cstdio>
#include <cstring>
#include <string>

#include "chaos/campaign.h"
#include "chaos/daly.h"
#include "common/table.h"

using namespace nvmecr;
using namespace nvmecr::chaos;

int main(int argc, char** argv) {
  std::string csv_path = "ext_chaos.csv";
  uint32_t schedules = 20;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[++i];
    } else if (std::strcmp(argv[i], "--schedules") == 0 && i + 1 < argc) {
      schedules = static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 0));
    } else {
      std::fprintf(stderr, "usage: %s [--csv FILE] [--schedules N]\n",
                   argv[0]);
      return kExitUsage;
    }
  }

  std::printf("=== checkpoint-interval sweep (Young/Daly validation) ===\n");
  SweepParams sp;
  const SweepResult sweep = interval_sweep(sp);
  std::printf("MTBF M = %.2f ms, measured ckpt overhead δ = %.3f ms\n",
              sweep.mtbf / kMillisecond, sweep.delta / kMillisecond);
  std::printf("Young interval sqrt(2δM)   = %.3f ms\n",
              sweep.young / kMillisecond);
  std::printf("Daly interval (2nd order)  = %.3f ms\n\n",
              sweep.daly / kMillisecond);

  TablePrinter table({"interval_ms", "epochs", "efficiency", "failures",
                      "mark"});
  std::FILE* csv = std::fopen(csv_path.c_str(), "w");
  if (csv != nullptr) {
    std::fprintf(csv, "interval_ms,epochs,efficiency,failures,is_daly,"
                 "is_best\n");
  }
  for (size_t k = 0; k < sweep.points.size(); ++k) {
    const SweepPoint& pt = sweep.points[k];
    const bool is_daly = static_cast<int>(k) == sweep.computed_index;
    const bool is_best = static_cast<int>(k) == sweep.best_index;
    std::string mark;
    if (is_daly) mark += " <- Daly";
    if (is_best) mark += " <- best";
    table.add_row({TablePrinter::num(pt.interval / kMillisecond, 3),
                   TablePrinter::num(pt.epochs),
                   TablePrinter::num(pt.efficiency, 4),
                   TablePrinter::num(pt.failures), mark});
    if (csv != nullptr) {
      std::fprintf(csv, "%.6f,%u,%.6f,%u,%d,%d\n",
                   pt.interval / kMillisecond, pt.epochs, pt.efficiency,
                   pt.failures, is_daly ? 1 : 0, is_best ? 1 : 0);
    }
  }
  table.print();
  std::printf("\nempirical argmax at grid index %d, computed optimum at %d: "
              "%s\n",
              sweep.best_index, sweep.computed_index,
              sweep.within_one_step() ? "within one grid step — OK"
                                      : "MORE THAN ONE STEP APART");

  std::printf("\n=== quick chaos campaign (%u schedules) ===\n", schedules);
  CampaignConfig cfg;
  CampaignRunner runner(cfg);
  const CampaignResult res = runner.run_campaign(schedules);
  const double absorbed =
      res.runs > 0 ? static_cast<double>(res.completed) / res.runs : 0;
  std::printf("verdicts: %u completed, %u typed failures, %u hangs, "
              "%u corruptions, %u divergences\n",
              res.completed, res.typed_failures, res.hangs, res.corruptions,
              res.divergences);
  std::printf("campaign.efficiency (completed fraction): %.3f\n", absorbed);
  if (csv != nullptr) {
    std::fprintf(csv, "# campaign.efficiency,%.6f\n", absorbed);
    std::fclose(csv);
    std::printf("csv: %s\n", csv_path.c_str());
  }

  if (!res.clean()) {
    std::fprintf(stderr, "FAIL: campaign violation: %s\n",
                 verdict_name(res.first_violation->verdict));
    return res.exit_code();
  }
  if (!sweep.within_one_step()) {
    std::fprintf(stderr, "FAIL: empirical optimum more than one grid step "
                 "from the Daly interval\n");
    return kExitInfra;
  }
  std::printf("ext_chaos: OK\n");
  return kExitOk;
}
