// Micro-benchmarks (google-benchmark) for the real data structures the
// control plane runs on: the DRAM B+Tree, the circular hugeblock pool,
// and operation-log record encode/append (with and without coalescing).
// These measure host CPU, not simulated time — they justify the
// control-plane cost constants used by the simulation.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "hw/ram_device.h"
#include "microfs/block_pool.h"
#include "microfs/bptree.h"
#include "microfs/oplog.h"
#include "simcore/engine.h"

namespace nvmecr::microfs {
namespace {

using namespace nvmecr::literals;

void BM_BpTreeInsert(benchmark::State& state) {
  const auto n = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    BpTree<uint64_t, uint64_t> tree;
    state.ResumeTiming();
    for (uint64_t i = 0; i < n; ++i) tree.insert(mix64(i), i);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_BpTreeInsert)->Arg(1024)->Arg(16384)->Arg(131072);

void BM_BpTreeLookup(benchmark::State& state) {
  const auto n = static_cast<uint64_t>(state.range(0));
  BpTree<uint64_t, uint64_t> tree;
  for (uint64_t i = 0; i < n; ++i) tree.insert(mix64(i), i);
  uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.find(mix64(key++ % n)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BpTreeLookup)->Arg(16384)->Arg(131072);

void BM_BpTreePathLookup(benchmark::State& state) {
  // String-keyed lookups as the microfs namespace uses them.
  BpTree<std::string, uint64_t> tree;
  std::vector<std::string> paths;
  for (int i = 0; i < 4096; ++i) {
    paths.push_back("/ckpt/step0007/rank" + std::to_string(i) + ".ckpt");
    tree.insert(paths.back(), static_cast<uint64_t>(i));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.find(paths[i++ % paths.size()]));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BpTreePathLookup);

void BM_BlockPoolAllocFree(benchmark::State& state) {
  BlockPool pool(1u << 20);
  for (auto _ : state) {
    const uint64_t b = pool.alloc().value();
    benchmark::DoNotOptimize(b);
    NVMECR_CHECK(pool.free(b).ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BlockPoolAllocFree);

void BM_LogRecordEncode(benchmark::State& state) {
  LogRecord rec;
  rec.type = OpType::kWrite;
  rec.ino = 42;
  rec.a = 123456789;
  rec.b = 4 << 20;
  std::vector<std::byte> buf;
  for (auto _ : state) {
    OpLog::encode_record(rec, buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          OpLog::kRecordBytes);
}
BENCHMARK(BM_LogRecordEncode);

sim::Task<void> far_future_timer(sim::Engine& eng, uint32_t id,
                                 uint32_t hops) {
  // Deterministic per-task delay stream, skewed so most timers land past
  // the calendar window (~8.4 ms) and exercise window rotation + the
  // heap spill tier rather than the bucketed fast path.
  uint64_t seed = mix64(id + 1);
  for (uint32_t i = 0; i < hops; ++i) {
    seed = mix64(seed);
    const SimDuration delay =
        (i % 8 == 0) ? static_cast<SimDuration>(100 + seed % 4000)
                     : static_cast<SimDuration>(1'000'000 + seed % 40'000'000);
    co_await eng.sleep_until(eng.now() + delay);
  }
}

sim::Task<void> near_timer(sim::Engine& eng, uint32_t id, uint32_t hops) {
  // e2e-shaped delays: fabric hops (1-8 us), device service (20-200 us),
  // with an occasional epoch-scale pause. This is the distribution the
  // calendar tier actually serves in a CoMD run.
  uint64_t seed = mix64(id + 1);
  for (uint32_t i = 0; i < hops; ++i) {
    seed = mix64(seed);
    SimDuration delay;
    if (i % 16 == 15) {
      delay = static_cast<SimDuration>(1'000'000 + seed % 4'000'000);
    } else if (i % 3 == 0) {
      delay = static_cast<SimDuration>(1'000 + seed % 7'000);
    } else {
      delay = static_cast<SimDuration>(20'000 + seed % 180'000);
    }
    co_await eng.sleep_until(eng.now() + delay);
  }
}

void BM_SchedulerNearTimer(benchmark::State& state) {
  const bool calendar = state.range(0) != 0;
  uint64_t events = 0;
  for (auto _ : state) {
    sim::Engine eng;
    eng.set_calendar_enabled(calendar);
    for (uint32_t id = 0; id < 256; ++id) {
      eng.spawn(near_timer(eng, id, 128));
    }
    eng.run();
    events += eng.events_dispatched();
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
  state.SetLabel(calendar ? "calendar" : "heap-only");
}
BENCHMARK(BM_SchedulerNearTimer)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_SchedulerFarFuture(benchmark::State& state) {
  // Worst case for the calendar tier: far-future-skewed timers that
  // mostly bypass the buckets. Arg(1) vs Arg(0) shows what the calendar
  // costs (or saves) when it cannot absorb the load — the honest
  // counterpart to the near-timer-heavy e2e numbers in perf_suite.
  const bool calendar = state.range(0) != 0;
  uint64_t events = 0;
  for (auto _ : state) {
    sim::Engine eng;
    eng.set_calendar_enabled(calendar);
    for (uint32_t id = 0; id < 64; ++id) {
      eng.spawn(far_future_timer(eng, id, 128));
    }
    eng.run();
    events += eng.events_dispatched();
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
  state.SetLabel(calendar ? "calendar" : "heap-only");
}
BENCHMARK(BM_SchedulerFarFuture)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_OpLogAppend(benchmark::State& state) {
  const bool coalesce = state.range(0) != 0;
  sim::Engine eng;
  hw::RamDevice dev(64_MiB);
  OpLog log(dev, 0, 8192, coalesce ? 64 : 0);
  uint64_t off = 0;
  for (auto _ : state) {
    LogRecord rec;
    rec.type = OpType::kWrite;
    rec.ino = 7;
    rec.a = off;
    rec.b = 1_MiB;
    off += 1_MiB;
    eng.run_task([](OpLog& l, LogRecord r) -> sim::Task<void> {
      NVMECR_CHECK((co_await l.append(r)).ok());
    }(log, rec));
    if (!coalesce && log.free_slots() == 0) {
      state.PauseTiming();
      log.truncate_before(log.begin_epoch());
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_OpLogAppend)->Arg(0)->Arg(1);

}  // namespace
}  // namespace nvmecr::microfs

BENCHMARK_MAIN();
