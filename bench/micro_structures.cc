// Micro-benchmarks (google-benchmark) for the real data structures the
// control plane runs on: the DRAM B+Tree, the circular hugeblock pool,
// and operation-log record encode/append (with and without coalescing).
// These measure host CPU, not simulated time — they justify the
// control-plane cost constants used by the simulation.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "hw/ram_device.h"
#include "microfs/block_pool.h"
#include "microfs/bptree.h"
#include "microfs/oplog.h"
#include "simcore/engine.h"

namespace nvmecr::microfs {
namespace {

using namespace nvmecr::literals;

void BM_BpTreeInsert(benchmark::State& state) {
  const auto n = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    BpTree<uint64_t, uint64_t> tree;
    state.ResumeTiming();
    for (uint64_t i = 0; i < n; ++i) tree.insert(mix64(i), i);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_BpTreeInsert)->Arg(1024)->Arg(16384)->Arg(131072);

void BM_BpTreeLookup(benchmark::State& state) {
  const auto n = static_cast<uint64_t>(state.range(0));
  BpTree<uint64_t, uint64_t> tree;
  for (uint64_t i = 0; i < n; ++i) tree.insert(mix64(i), i);
  uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.find(mix64(key++ % n)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BpTreeLookup)->Arg(16384)->Arg(131072);

void BM_BpTreePathLookup(benchmark::State& state) {
  // String-keyed lookups as the microfs namespace uses them.
  BpTree<std::string, uint64_t> tree;
  std::vector<std::string> paths;
  for (int i = 0; i < 4096; ++i) {
    paths.push_back("/ckpt/step0007/rank" + std::to_string(i) + ".ckpt");
    tree.insert(paths.back(), static_cast<uint64_t>(i));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.find(paths[i++ % paths.size()]));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BpTreePathLookup);

void BM_BlockPoolAllocFree(benchmark::State& state) {
  BlockPool pool(1u << 20);
  for (auto _ : state) {
    const uint64_t b = pool.alloc().value();
    benchmark::DoNotOptimize(b);
    NVMECR_CHECK(pool.free(b).ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BlockPoolAllocFree);

void BM_LogRecordEncode(benchmark::State& state) {
  LogRecord rec;
  rec.type = OpType::kWrite;
  rec.ino = 42;
  rec.a = 123456789;
  rec.b = 4 << 20;
  std::vector<std::byte> buf;
  for (auto _ : state) {
    OpLog::encode_record(rec, buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          OpLog::kRecordBytes);
}
BENCHMARK(BM_LogRecordEncode);

void BM_OpLogAppend(benchmark::State& state) {
  const bool coalesce = state.range(0) != 0;
  sim::Engine eng;
  hw::RamDevice dev(64_MiB);
  OpLog log(dev, 0, 8192, coalesce ? 64 : 0);
  uint64_t off = 0;
  for (auto _ : state) {
    LogRecord rec;
    rec.type = OpType::kWrite;
    rec.ino = 7;
    rec.a = off;
    rec.b = 1_MiB;
    off += 1_MiB;
    eng.run_task([](OpLog& l, LogRecord r) -> sim::Task<void> {
      NVMECR_CHECK((co_await l.append(r)).ok());
    }(log, rec));
    if (!coalesce && log.free_slots() == 0) {
      state.PauseTiming();
      log.truncate_before(log.begin_epoch());
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_OpLogAppend)->Arg(0)->Arg(1);

}  // namespace
}  // namespace nvmecr::microfs

BENCHMARK_MAIN();
