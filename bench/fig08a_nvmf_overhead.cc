// Figure 8(a) — NVMf overhead: full-subscription (28 processes)
// checkpoint time on a local SSD vs a remote SSD over NVMf, plus Crail
// on the same remote SSD (§IV-F).
//
// Paper shape: remote adds < 3.5% across checkpoint sizes; Crail
// (userspace NVMf data plane but a central metadata server, no
// provenance) runs 5-10% behind NVMe-CR.
#include "bench_util.h"

namespace nvmecr::bench {
namespace {

constexpr uint32_t kProcs = 28;

ComdParams size_params(uint64_t bytes_per_proc) {
  ComdParams params;
  params.nranks = kProcs;
  params.procs_per_node = 28;
  params.atoms_per_rank = bytes_per_proc / 512;
  params.bytes_per_atom = 512;
  params.checkpoints = 2;
  params.compute_per_period = 50 * kMillisecond;
  params.io_chunk = 1_MiB;
  params.keep_last = 1;
  params.do_recovery = false;
  return params;
}

double run_nvmecr_mode(uint64_t bytes_per_proc, bool remote) {
  ClusterSpec spec;
  spec.local_ssds = !remote;
  Cluster cluster(spec);
  Scheduler sched(cluster);
  const ComdParams params = size_params(bytes_per_proc);
  auto job = sched.allocate(kProcs, 28, partition_for(params), 1);
  NVMECR_CHECK(job.ok());
  RuntimeConfig config = default_runtime_config();
  config.remote = remote;
  nvmecr_rt::NvmecrSystem system(cluster, *job, config);
  auto m = ComdDriver::run(cluster, system, params);
  NVMECR_CHECK(m.ok());
  return to_seconds(m->checkpoint_time);
}

double run_crail(uint64_t bytes_per_proc) {
  Cluster cluster;
  const ComdParams params = size_params(bytes_per_proc);
  baselines::CrailModel system(cluster, kProcs, 28, partition_for(params));
  auto m = ComdDriver::run(cluster, system, params);
  NVMECR_CHECK(m.ok());
  return to_seconds(m->checkpoint_time);
}

}  // namespace
}  // namespace nvmecr::bench

int main() {
  using namespace nvmecr;
  using namespace nvmecr::bench;

  print_banner("Figure 8(a)",
               "NVMf overhead: local vs remote checkpoint time (28 procs)");
  TablePrinter table({"ckpt size/proc", "local (s)", "remote (s)",
                      "remote overhead", "Crail remote (s)",
                      "Crail vs NVMe-CR"});
  for (uint64_t mb : {64u, 128u, 256u, 512u}) {
    const uint64_t bytes = static_cast<uint64_t>(mb) << 20;
    const double local = run_nvmecr_mode(bytes, /*remote=*/false);
    const double remote = run_nvmecr_mode(bytes, /*remote=*/true);
    const double crail = run_crail(bytes);
    table.add_row({TablePrinter::num(mb) + " MB",
                   TablePrinter::num(local, 3), TablePrinter::num(remote, 3),
                   pct(remote / local - 1.0),
                   TablePrinter::num(crail, 3),
                   pct(crail / remote - 1.0)});
  }
  table.print();
  std::printf(
      "\nPaper reference: remote overhead < 3.5%% at every size; Crail "
      "5-10%% behind NVMe-CR.\n");
  return 0;
}
