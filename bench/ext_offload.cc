// Extension — target-side computation offload (DESIGN.md "Offload
// pipeline"): where is each stage cheapest to run, the host or the
// NVMe-oF target?
//
// Sweeps the host-CPU / target-CPU / fabric-bytes tradeoff per stage:
//
//   digest       host CRC before shipping vs target CRC after landing
//   compression  who decompresses on restart (wire bytes vs host CPU)
//   compaction   replaying the incremental delta chain on restart vs
//                reading the target's materialized full image
//   parity       host-XOR (parity crosses the fabric) vs target-XOR
//                (folded from landed data; loopback writes) — headline
//
// Emits a machine-readable tradeoff CSV (--csv PATH) next to the tables
// so CI can archive the sweep. --quick shrinks scales for smoke runs.
#include <cstring>
#include <fstream>
#include <vector>

#include "bench_util.h"
#include "offload/pipeline.h"
#include "redundancy/engine.h"

namespace {

using namespace nvmecr;
using namespace nvmecr::bench;
using offload::OffloadOptions;
using offload::OffloadSystem;

struct RunResult {
  JobMetrics m;
  uint64_t fabric_bytes = 0;    // real fabric crossings during the run
  uint64_t host_ns = 0;         // offload stages that ran host-side
  uint64_t target_ns = 0;       // compute booked on target offload cores
  uint64_t host_encode_ns = 0;  // redundancy host parity encode
};

uint64_t total_target_busy(Cluster& cluster) {
  uint64_t busy = 0;
  for (uint32_t i = 0; i < cluster.storage_nodes().size(); ++i) {
    busy += cluster.target(i).compute_busy_ns();
  }
  return busy;
}

/// CoMD through NVMe-CR wrapped in the offload pipeline.
RunResult run_offload(const ComdParams& params, const OffloadOptions& opts) {
  Cluster cluster;
  Scheduler sched(cluster);
  auto job = sched.allocate(params.nranks, params.procs_per_node,
                            partition_for(params), /*num_ssds=*/8);
  NVMECR_CHECK(job.ok());
  nvmecr_rt::NvmecrSystem inner(cluster, *job, default_runtime_config());
  OffloadSystem system(cluster, inner, *job, opts);
  const uint64_t fabric0 = cluster.network().total_bytes_sent();
  auto m = ComdDriver::run(cluster, system, params);
  NVMECR_CHECK(m.ok());
  RunResult r;
  r.m = *m;
  r.fabric_bytes = cluster.network().total_bytes_sent() - fabric0;
  r.host_ns = system.host_compute_ns();
  r.target_ns = total_target_busy(cluster);
  return r;
}

/// CoMD through NVMe-CR + XOR redundancy (fig07-style placement: one
/// failure domain per storage node so the parity set spans domains).
RunResult run_xor(const ComdParams& params, redundancy::Scheme scheme) {
  ClusterSpec spec;
  spec.compute_nodes = 8;
  spec.storage_nodes = 8;
  spec.storage_racks = 8;
  Cluster cluster(spec);
  Scheduler sched(cluster);
  auto job = sched.allocate(params.nranks, params.procs_per_node,
                            partition_for(params) * 2, /*num_ssds=*/4);
  NVMECR_CHECK(job.ok());
  nvmecr_rt::NvmecrSystem primary(cluster, *job, default_runtime_config());
  redundancy::RedundancyOptions ropts;
  ropts.scheme = scheme;
  ropts.xor_set_size = 4;
  auto dep = redundancy::deploy_redundancy(cluster, sched, primary, *job,
                                           ropts);
  NVMECR_CHECK(dep.ok());
  const uint64_t fabric0 = cluster.network().total_bytes_sent();
  auto m = ComdDriver::run(cluster, *dep->system, params);
  NVMECR_CHECK(m.ok());
  RunResult r;
  r.m = *m;
  r.fabric_bytes = cluster.network().total_bytes_sent() - fabric0;
  r.target_ns = total_target_busy(cluster);
  r.host_encode_ns = dep->system->host_encode_ns();
  return r;
}

std::string gib(uint64_t bytes) {
  return TablePrinter::num(static_cast<double>(bytes) / (1ull << 30), 2);
}
std::string cpu_ms(uint64_t ns) {
  return TablePrinter::num(static_cast<double>(ns) / 1e6, 1);
}

struct CsvWriter {
  explicit CsvWriter(const std::string& path) : out(path) {
    out << "section,variant,ckpt_s,restart_s,fabric_gib,host_cpu_ms,"
           "target_cpu_ms\n";
  }
  void row(const char* section, const std::string& variant,
           const RunResult& r) {
    out << section << ',' << variant << ','
        << to_seconds(r.m.checkpoint_time) << ','
        << to_seconds(r.m.recovery_time) << ','
        << static_cast<double>(r.fabric_bytes) / (1ull << 30) << ','
        << static_cast<double>(r.host_ns + r.host_encode_ns) / 1e6 << ','
        << static_cast<double>(r.target_ns) / 1e6 << '\n';
  }
  std::ofstream out;
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string csv_path = "offload_tradeoff.csv";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: ext_offload [--quick] [--csv PATH]\n");
      return 1;
    }
  }
  CsvWriter csv(csv_path);

  print_banner("Extension: target-side offload",
               "host CPU vs target CPU vs fabric bytes, per stage");

  // --- digest -----------------------------------------------------------
  {
    ComdParams params = weak_scaling_params(quick ? 56 : 112);
    params.checkpoints = quick ? 2 : 3;
    params.do_recovery = false;
    TablePrinter t({"digest", "ckpt phase (s)", "fabric (GiB)",
                    "host CPU (ms)", "target CPU (ms)"});
    OffloadOptions host;
    host.stages = 0;  // CRC on the host before shipping
    const RunResult h = run_offload(params, host);
    OffloadOptions tgt;
    tgt.stages = nvmf::kOffloadDigest;  // CRC on the target's cores
    const RunResult g = run_offload(params, tgt);
    t.add_row({"host", TablePrinter::num(to_seconds(h.m.checkpoint_time), 2),
               gib(h.fabric_bytes), cpu_ms(h.host_ns), cpu_ms(h.target_ns)});
    t.add_row({"target", TablePrinter::num(to_seconds(g.m.checkpoint_time), 2),
               gib(g.fabric_bytes), cpu_ms(g.host_ns), cpu_ms(g.target_ns)});
    t.print();
    csv.row("digest", "host", h);
    csv.row("digest", "target", g);
  }

  // --- compression ------------------------------------------------------
  {
    ComdParams params = weak_scaling_params(quick ? 56 : 112);
    params.checkpoints = quick ? 2 : 3;
    params.do_recovery = true;
    TablePrinter t({"codec / decode side", "ckpt (s)", "restart (s)",
                    "fabric (GiB)", "host CPU (ms)", "target CPU (ms)"});
    for (const char* codec_name : {"lz4-class", "zstd-class"}) {
      for (const bool target_decode : {false, true}) {
        OffloadOptions opts;
        opts.digest_checks = false;
        opts.codec = *offload::find_codec(codec_name);
        opts.stages = target_decode ? nvmf::kOffloadCompress : 0u;
        const RunResult r = run_offload(params, opts);
        const std::string variant =
            std::string(codec_name) + (target_decode ? " / target" : " / host");
        t.add_row({variant,
                   TablePrinter::num(to_seconds(r.m.checkpoint_time), 2),
                   TablePrinter::num(to_seconds(r.m.recovery_time), 2),
                   gib(r.fabric_bytes), cpu_ms(r.host_ns),
                   cpu_ms(r.target_ns)});
        csv.row("compression", variant, r);
      }
    }
    t.print();
    std::printf(
        "Compressed bytes cross the fabric and land on flash either way; "
        "the grant moves the restart inflate (and its raw-byte surplus) "
        "to the target.\n\n");
  }

  // --- delta compaction -------------------------------------------------
  {
    // Half-dirty increments with a 4-deep retained chain: restart must
    // replay 4 x 0.5 = 2 full-state equivalents unless the target has
    // folded them into one image.
    ComdParams params = weak_scaling_params(quick ? 28 : 56);
    params.checkpoints = 6;
    params.keep_last = 4;
    params.incremental_fraction = 0.5;
    params.replay_increments = true;  // honest chain-replay restart
    params.do_recovery = true;
    TablePrinter t({"restart source", "restart (s)", "recovery (GiB)",
                    "host CPU (ms)", "target CPU (ms)"});
    OffloadOptions replay;
    replay.stages = 0;
    replay.digest_checks = false;
    const RunResult h = run_offload(params, replay);
    OffloadOptions compact;
    compact.stages = nvmf::kOffloadCompact;
    compact.digest_checks = false;
    const RunResult g = run_offload(params, compact);
    t.add_row({"replay delta chain",
               TablePrinter::num(to_seconds(h.m.recovery_time), 2),
               gib(h.m.recovery_bytes), cpu_ms(h.host_ns),
               cpu_ms(h.target_ns)});
    t.add_row({"materialized image",
               TablePrinter::num(to_seconds(g.m.recovery_time), 2),
               gib(g.m.recovery_bytes), cpu_ms(g.host_ns),
               cpu_ms(g.target_ns)});
    t.print();
    csv.row("compaction", "replay", h);
    csv.row("compaction", "image", g);
    std::printf(
        "The target folds each delta in background sim-time; restart "
        "reads one full image instead of %u retained increments.\n\n",
        params.keep_last);
  }

  // --- parity (headline) ------------------------------------------------
  {
    ComdParams params = weak_scaling_params(8);
    params.procs_per_node = 1;
    params.checkpoints = quick ? 2 : 3;
    params.keep_last = 2;
    params.do_recovery = false;
    TablePrinter t({"XOR parity", "ckpt phase (s)", "fabric (GiB)",
                    "host encode (ms)", "target CPU (ms)"});
    const RunResult h = run_xor(params, redundancy::Scheme::kXor);
    const RunResult g = run_xor(params, redundancy::Scheme::kXorTarget);
    t.add_row({"host (ships parity)",
               TablePrinter::num(to_seconds(h.m.checkpoint_time), 2),
               gib(h.fabric_bytes), cpu_ms(h.host_encode_ns),
               cpu_ms(h.target_ns)});
    t.add_row({"target (folds landed data)",
               TablePrinter::num(to_seconds(g.m.checkpoint_time), 2),
               gib(g.fabric_bytes), cpu_ms(g.host_encode_ns),
               cpu_ms(g.target_ns)});
    t.print();
    csv.row("parity", "host-xor", h);
    csv.row("parity", "target-xor", g);
    const double savings =
        1.0 - static_cast<double>(g.fabric_bytes) /
                  static_cast<double>(h.fabric_bytes);
    std::printf(
        "Target-side XOR ships no parity over the fabric: %s fewer "
        "checkpoint fabric bytes at K=4 (1/K of traffic plus loopback "
        "parity writes), for ~%s ms of target compute.\n",
        pct(savings).c_str(), cpu_ms(g.target_ns).c_str());
  }

  std::printf("\ntradeoff CSV: %s\n", csv_path.c_str());
  return 0;
}
