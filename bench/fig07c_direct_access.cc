// Figure 7(c) + §IV-D — Direct-access evaluation: full-subscription
// (28 processes) checkpoint dump times on a LOCAL NVMe SSD for NVMe-CR,
// XFS, ext4, and raw SPDK, across checkpoint sizes; plus the percentage
// of benchmark time spent in the kernel.
//
// Paper shape: NVMe-CR ~= SPDK (no measurable software overhead); at
// 512 MB NVMe-CR is ~19% faster than XFS and ~83% faster than ext4;
// kernel-time fractions ~10% (NVMe-CR) vs 76.5% (XFS) vs 79% (ext4).
#include "bench_util.h"

#include "kernelfs/localfs.h"
#include "nvmf/spdk.h"
#include "simcore/event.h"

namespace nvmecr::bench {
namespace {

constexpr uint32_t kProcs = 28;
// The benchmark's user-side work: serializing/formatting the checkpoint
// image before it is written (~4.5 ns per byte, the CoMD dump routine's
// pace). It is part of "benchmark time" for the kernel-time fractions
// but not of the dump-time comparison.
constexpr double kGenNsPerByte = 4.5;
// Application-side (non-IO) kernel time: stdio/malloc/page faults while
// producing the image — charged identically for every system (~1.8 ns
// per byte reproduces the paper's ~10%% for a system whose IO path never
// enters the kernel).
constexpr double kAppKernelNsPerByte = 1.8;

struct Result {
  double seconds = 0;
  double kernel_fraction = 0;
};

/// NVMe-CR on the local SSD (userspace direct access).
Result run_nvmecr_local(uint64_t bytes_per_proc) {
  ClusterSpec spec;
  spec.local_ssds = true;
  Cluster cluster(spec);
  Scheduler sched(cluster);
  ComdParams params;
  params.nranks = kProcs;
  params.atoms_per_rank = bytes_per_proc / 512;
  params.bytes_per_atom = 512;
  params.checkpoints = 1;
  params.compute_per_period = kMillisecond;
  params.io_chunk = 1_MiB;
  params.do_recovery = false;
  auto job = sched.allocate(kProcs, kProcs, partition_for(params), 1);
  NVMECR_CHECK(job.ok());
  RuntimeConfig config = default_runtime_config();
  config.remote = false;
  nvmecr_rt::NvmecrSystem system(cluster, *job, config);
  auto m = ComdDriver::run(cluster, system, params);
  NVMECR_CHECK(m.ok());
  Result r;
  r.seconds = to_seconds(m->checkpoint_time);
  const double app_kernel =
      kAppKernelNsPerByte * static_cast<double>(bytes_per_proc) * kProcs;
  const double benchmark_time =
      static_cast<double>(m->checkpoint_time) +
      kGenNsPerByte * static_cast<double>(bytes_per_proc);
  r.kernel_fraction =
      (static_cast<double>(m->kernel_time) + app_kernel) /
      (benchmark_time * kProcs);
  return r;
}

/// ext4/XFS over the same local SSD: 28 processes write+fsync.
Result run_kernel_fs(kernelfs::LocalFsParams params, uint64_t bytes_per_proc) {
  sim::Engine eng;
  hw::NvmeSsd ssd(eng, hw::SsdSpec{});
  const uint32_t nsid = ssd.create_namespace(300_GiB).value();
  kernelfs::LocalFs fs(eng, ssd, nsid, params);
  sim::JoinCounter join(eng);
  for (uint32_t p = 0; p < kProcs; ++p) {
    join.spawn([](kernelfs::LocalFs& f, uint32_t rank,
                  uint64_t bytes) -> sim::Task<void> {
      auto fd = co_await f.open("/ckpt.rank" + std::to_string(rank), true);
      NVMECR_CHECK(fd.ok());
      uint64_t left = bytes;
      while (left > 0) {
        const uint64_t piece = std::min<uint64_t>(1_MiB, left);
        NVMECR_CHECK((co_await f.write(*fd, piece)).ok());
        left -= piece;
      }
      NVMECR_CHECK((co_await f.fsync(*fd)).ok());
      NVMECR_CHECK((co_await f.close(*fd)).ok());
    }(fs, p, bytes_per_proc));
  }
  eng.run();
  Result r;
  r.seconds = to_seconds(eng.now());
  const double app_kernel =
      kAppKernelNsPerByte * static_cast<double>(bytes_per_proc) * kProcs;
  const double benchmark_time =
      static_cast<double>(eng.now()) +
      kGenNsPerByte * static_cast<double>(bytes_per_proc);
  r.kernel_fraction =
      (static_cast<double>(fs.kernel_time()) + app_kernel) /
      (benchmark_time * kProcs);
  return r;
}

/// Raw SPDK: each process a namespace + queue, hugeblock-sized writes.
Result run_spdk_raw(uint64_t bytes_per_proc) {
  sim::Engine eng;
  hw::NvmeSsd ssd(eng, hw::SsdSpec{});
  sim::JoinCounter join(eng);
  for (uint32_t p = 0; p < kProcs; ++p) {
    const uint32_t nsid =
        ssd.create_namespace(bytes_per_proc + 64_MiB).value();
    join.spawn([](hw::NvmeSsd& dev_ssd, uint32_t ns,
                  uint64_t bytes) -> sim::Task<void> {
      auto dev = nvmf::SpdkLocalDevice::open(dev_ssd, ns).value();
      uint64_t off = 0;
      while (off < bytes) {
        const uint64_t piece = std::min<uint64_t>(1_MiB, bytes - off);
        NVMECR_CHECK((co_await dev->write_tagged_batch(
                          off, round_up(piece, 32_KiB), 7,
                          static_cast<uint32_t>(piece / 32_KiB)))
                         .ok());
        off += piece;
      }
      NVMECR_CHECK((co_await dev->flush()).ok());
    }(ssd, nsid, bytes_per_proc));
  }
  eng.run();
  Result r;
  r.seconds = to_seconds(eng.now());
  const double app_kernel =
      kAppKernelNsPerByte * static_cast<double>(bytes_per_proc) * kProcs;
  const double benchmark_time =
      static_cast<double>(eng.now()) +
      kGenNsPerByte * static_cast<double>(bytes_per_proc);
  r.kernel_fraction = app_kernel / (benchmark_time * kProcs);
  return r;
}

}  // namespace
}  // namespace nvmecr::bench

int main() {
  using namespace nvmecr;
  using namespace nvmecr::bench;

  print_banner("Figure 7(c)",
               "local direct access: dump time (28 procs, write+fsync)");
  TablePrinter table({"ckpt size/proc", "NVMe-CR (s)", "SPDK (s)", "XFS (s)",
                      "ext4 (s)", "XFS vs NVMe-CR", "ext4 vs NVMe-CR"});
  Result last_nv, last_xfs, last_ext4, last_spdk;
  for (uint64_t mb : {64u, 128u, 256u, 512u}) {
    const uint64_t bytes = static_cast<uint64_t>(mb) << 20;
    const Result nv = run_nvmecr_local(bytes);
    const Result spdk = run_spdk_raw(bytes);
    const Result xfs = run_kernel_fs(kernelfs::LocalFsParams::xfs(), bytes);
    const Result ext4 = run_kernel_fs(kernelfs::LocalFsParams::ext4(), bytes);
    table.add_row({TablePrinter::num(mb) + " MB",
                   TablePrinter::num(nv.seconds, 3),
                   TablePrinter::num(spdk.seconds, 3),
                   TablePrinter::num(xfs.seconds, 3),
                   TablePrinter::num(ext4.seconds, 3),
                   pct(xfs.seconds / nv.seconds - 1.0),
                   pct(ext4.seconds / nv.seconds - 1.0)});
    last_nv = nv;
    last_xfs = xfs;
    last_ext4 = ext4;
    last_spdk = spdk;
  }
  table.print();

  print_banner("§IV-D", "percentage of benchmark time in the kernel (512 MB)");
  TablePrinter ktable({"system", "kernel time"});
  ktable.add_row({"NVMe-CR", pct(last_nv.kernel_fraction)});
  ktable.add_row({"SPDK", pct(last_spdk.kernel_fraction)});
  ktable.add_row({"XFS", pct(last_xfs.kernel_fraction)});
  ktable.add_row({"ext4", pct(last_ext4.kernel_fraction)});
  ktable.print();
  std::printf(
      "\nPaper reference: at 512 MB, NVMe-CR ~19%% faster than XFS, ~83%% "
      "faster than ext4, ~= SPDK; kernel time 10%% vs 76.5%% vs 79%%.\n");
  return 0;
}
