// Figure 8(b) — File create throughput under the N-N pattern for
// NVMe-CR, OrangeFS, and GlusterFS at different job scales (§IV-G).
//
// Paper shape: NVMe-CR's private namespaces let every process create in
// parallel (bounded by hardware, not software); both comparator systems
// funnel every create through a shared directory, serializing them.
// The paper reports 7x (vs GlusterFS) and 18x (vs OrangeFS) at 448
// processes; our serialization model is harsher on the comparators, so
// the measured ratios are larger — the ordering and growth with scale
// are the reproduced shape (see EXPERIMENTS.md).
#include "bench_util.h"

#include "simcore/event.h"

namespace nvmecr::bench {
namespace {

constexpr int kFilesPerRank = 16;

/// Creates kFilesPerRank files per rank (storm), returns creates/sec.
double create_storm(Cluster& cluster, baselines::StorageSystem& system,
                    uint32_t nranks) {
  sim::Engine& eng = cluster.engine();
  sim::JoinCounter join(eng);
  SimTime start = 0, end = 0;
  sim::Barrier barrier(eng, static_cast<int>(nranks));
  for (uint32_t r = 0; r < nranks; ++r) {
    join.spawn([](sim::Engine& e, baselines::StorageSystem& sys,
                  sim::Barrier& b, uint32_t rank, SimTime& t0,
                  SimTime& t1) -> sim::Task<void> {
      auto client = (co_await sys.connect(static_cast<int>(rank))).value();
      co_await b.arrive_and_wait();
      if (rank == 0) t0 = e.now();
      for (int f = 0; f < kFilesPerRank; ++f) {
        auto fd = co_await client->create(
            "/storm.rank" + std::to_string(rank) + ".f" + std::to_string(f));
        NVMECR_CHECK(fd.ok());
        NVMECR_CHECK((co_await client->close(*fd)).ok());
      }
      co_await b.arrive_and_wait();
      if (rank == 0) t1 = e.now();
    }(eng, system, barrier, r, start, end));
  }
  eng.run();
  const double seconds = to_seconds(end - start);
  return static_cast<double>(nranks) * kFilesPerRank / seconds;
}

}  // namespace
}  // namespace nvmecr::bench

int main() {
  using namespace nvmecr;
  using namespace nvmecr::bench;

  print_banner("Figure 8(b)", "file creates per second (N-N storm)");
  TablePrinter table({"procs", "NVMe-CR (creates/s)", "GlusterFS (creates/s)",
                      "OrangeFS (creates/s)", "vs GlusterFS", "vs OrangeFS"});
  for (uint32_t nranks : {56u, 112u, 224u, 448u}) {
    double nv = 0, gl = 0, of = 0;
    {
      Cluster cluster;
      Scheduler sched(cluster);
      auto job = sched.allocate(nranks, 28, 256_MiB, 8);
      NVMECR_CHECK(job.ok());
      nvmecr_rt::NvmecrSystem system(cluster, *job,
                                     default_runtime_config());
      nv = create_storm(cluster, system, nranks);
    }
    {
      Cluster cluster;
      baselines::GlusterFsModel system(cluster, nranks, 28);
      gl = create_storm(cluster, system, nranks);
    }
    {
      Cluster cluster;
      baselines::OrangeFsModel system(cluster, nranks, 28);
      of = create_storm(cluster, system, nranks);
    }
    table.add_row({TablePrinter::num(nranks), TablePrinter::num(nv, 0),
                   TablePrinter::num(gl, 0), TablePrinter::num(of, 0),
                   TablePrinter::num(nv / gl, 1) + "x",
                   TablePrinter::num(nv / of, 1) + "x"});
  }
  table.print();
  std::printf(
      "\nPaper reference at 448 procs: 7x over GlusterFS, 18x over "
      "OrangeFS (ratios grow with scale).\n");
  return 0;
}
