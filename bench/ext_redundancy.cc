// Extension — redundancy engine overhead vs recoverability (Table-II
// style, but for the fast tier's own redundancy schemes instead of the
// PFS second level).
//
// Scenario: 8 ranks checkpoint twice to the fast tier (the first round
// is also mirrored to the Lustre-like PFS, the usual 1-in-N multi-level
// policy), then one storage failure domain — the rack holding rank 0's
// primary SSD — dies before restart. Per scheme:
//
//   kNone     the newest checkpoint is gone; every rank restarts from
//             the older PFS copy (lost progress + slow PFS read).
//   kPartner  full replicas on partner-domain SSDs; lost ranks restore
//             byte-identical from their replica (2x write overhead).
//   kXor      RAID-5-style parity across K-rank erasure sets; lost
//             ranks rebuild from the K-1 survivors + parity
//             (~1/(K-1) write overhead, higher reconstruct cost).
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/models.h"
#include "bench_util.h"
#include "redundancy/engine.h"
#include "redundancy/reconstruct.h"

namespace nvmecr::bench {
namespace {

using redundancy::RecoverySource;
using redundancy::RedundancyOptions;
using redundancy::Scheme;

constexpr uint32_t kRanks = 8;
constexpr uint32_t kXorSetSize = 4;
constexpr uint64_t kCkptBytes = 64_MiB;  // per rank per checkpoint

struct SchemeResult {
  double ckpt_s = 0;            // both fast-tier rounds + quiesce
  uint64_t payload = 0;         // fast-tier checkpoint bytes
  uint64_t redundant = 0;       // replica/parity device bytes
  bool latest_recovered = false;
  std::string sources;          // where restart data came from
  double recovery_s = 0;
  uint64_t degraded = 0;
};

// No co_await inside ternaries here: gcc's coroutine frame handling
// miscompiles conditional-expression awaits (double-destroys the
// temporary Status), so keep each co_await a full statement.
sim::Task<Status> stream_file(baselines::StorageClient& c, std::string path,
                              uint64_t bytes, bool write) {
  StatusOr<int> fd = BadFdError("unopened");
  if (write) {
    fd = co_await c.create(path);
  } else {
    fd = co_await c.open_read(path);
  }
  NVMECR_CO_RETURN_IF_ERROR(fd.status());
  for (uint64_t off = 0; off < bytes; off += 4_MiB) {
    const uint64_t n = std::min<uint64_t>(4_MiB, bytes - off);
    Status s;
    if (write) {
      s = co_await c.write(*fd, n);
    } else {
      s = co_await c.read(*fd, n);
    }
    NVMECR_CO_RETURN_IF_ERROR(s);
  }
  if (write) NVMECR_CO_RETURN_IF_ERROR(co_await c.fsync(*fd));
  co_return co_await c.close(*fd);
}

SchemeResult run_scheme(Scheme scheme) {
  ClusterSpec spec;
  spec.compute_nodes = kRanks;
  spec.storage_nodes = 8;
  spec.storage_racks = 8;  // one failure domain per storage node
  Cluster cluster(spec);
  Scheduler sched(cluster);
  auto job = sched.allocate(kRanks, /*procs_per_node=*/1, 256_MiB,
                            /*num_ssds=*/kXorSetSize);
  NVMECR_CHECK(job.ok());
  nvmecr_rt::NvmecrSystem primary(cluster, *job, {});
  baselines::LustreModel pfs(cluster);

  RedundancyOptions opts;
  opts.scheme = scheme;
  opts.xor_set_size = kXorSetSize;
  auto dep = redundancy::deploy_redundancy(cluster, sched, primary, *job,
                                           opts);
  NVMECR_CHECK(dep.ok());
  redundancy::RedundantSystem& sys = *dep->system;

  SchemeResult res;
  std::vector<std::unique_ptr<baselines::StorageClient>> fast(kRanks);
  std::vector<std::unique_ptr<baselines::StorageClient>> slow(kRanks);
  sim::Engine& eng = cluster.engine();

  // Checkpoint phase: round 0 (fast + PFS mirror), round 1 (fast only).
  eng.run_task([](sim::Engine& e, redundancy::RedundantSystem& s,
                  baselines::LustreModel& p,
                  std::vector<std::unique_ptr<baselines::StorageClient>>& fc,
                  std::vector<std::unique_ptr<baselines::StorageClient>>& sc,
                  SchemeResult& r) -> sim::Task<void> {
    for (uint32_t rank = 0; rank < kRanks; ++rank) {
      auto c = co_await s.connect(static_cast<int>(rank));
      auto pc = co_await p.connect(static_cast<int>(rank));
      NVMECR_CHECK(c.ok() && pc.ok());
      fc[rank] = std::move(*c);
      sc[rank] = std::move(*pc);
    }
    const SimTime t0 = e.now();
    sim::StatusJoiner joiner(e);
    for (uint32_t rank = 0; rank < kRanks; ++rank) {
      joiner.spawn(stream_file(*fc[rank], "/ckpt0", kCkptBytes, true));
      joiner.spawn(stream_file(*sc[rank], "/ckpt0", kCkptBytes, true));
    }
    NVMECR_CHECK((co_await joiner.join()).ok());
    for (uint32_t rank = 0; rank < kRanks; ++rank) {
      joiner.spawn(stream_file(*fc[rank], "/ckpt1", kCkptBytes, true));
    }
    NVMECR_CHECK((co_await joiner.join()).ok());
    co_await s.quiesce();
    r.ckpt_s = to_seconds(e.now() - t0);
  }(eng, sys, pfs, fast, slow, res));

  res.payload = 2ull * kRanks * kCkptBytes;
  res.redundant = sys.redundant_bytes();
  res.degraded = sys.degraded_files();

  // Fault: the failure domain holding rank 0's primary SSD dies.
  const fabric::RackId lost = cluster.topology().failure_domain(
      job->assignment.ssd_nodes[job->assignment.ssd_of_rank[0]]);
  for (fabric::NodeId n : cluster.storage_nodes()) {
    if (cluster.topology().failure_domain(n) == lost) {
      cluster.storage_ssd(cluster.storage_ssd_index(n)).fail_device();
    }
  }

  // Restart: every rank tries the newest checkpoint through the
  // reconstruction view; if any rank cannot get it, the job must roll
  // back to the older PFS checkpoint on every rank.
  redundancy::Reconstructor recon(sys);
  std::vector<std::unique_ptr<baselines::StorageClient>> rcs;
  for (uint32_t rank = 0; rank < kRanks; ++rank) {
    rcs.push_back(recon.client(rank));
  }
  eng.run_task(
      [](sim::Engine& e, redundancy::Reconstructor& rc,
         std::vector<std::unique_ptr<baselines::StorageClient>>& views,
         std::vector<std::unique_ptr<baselines::StorageClient>>& sc,
         SchemeResult& r) -> sim::Task<void> {
        const SimTime t0 = e.now();
        sim::StatusJoiner joiner(e);
        for (uint32_t rank = 0; rank < kRanks; ++rank) {
          joiner.spawn(stream_file(*views[rank], "/ckpt1", kCkptBytes, false));
        }
        r.latest_recovered = (co_await joiner.join()).ok();
        if (!r.latest_recovered) {
          // Roll back: all ranks re-read the older copy from the PFS.
          sim::StatusJoiner fallback(e);
          for (uint32_t rank = 0; rank < kRanks; ++rank) {
            fallback.spawn(
                stream_file(*sc[rank], "/ckpt0", kCkptBytes, false));
          }
          NVMECR_CHECK((co_await fallback.join()).ok());
          r.sources = "PFS (older ckpt0)";
        } else {
          uint32_t from_fast = 0, from_partner = 0, from_xor = 0;
          for (uint32_t rank = 0; rank < kRanks; ++rank) {
            const redundancy::RecoveryReport* rep =
                rc.find_report(rank, "/ckpt1");
            NVMECR_CHECK(rep != nullptr && rep->digest_ok);
            switch (rep->source) {
              case RecoverySource::kFastTier: ++from_fast; break;
              case RecoverySource::kPartner: ++from_partner; break;
              case RecoverySource::kXor: ++from_xor; break;
            }
          }
          r.sources = std::to_string(from_fast) + " fast";
          if (from_partner > 0) {
            r.sources += " + " + std::to_string(from_partner) + " partner";
          }
          if (from_xor > 0) {
            r.sources += " + " + std::to_string(from_xor) + " xor";
          }
        }
        r.recovery_s = to_seconds(e.now() - t0);
      }(eng, recon, rcs, slow, res));
  return res;
}

}  // namespace
}  // namespace nvmecr::bench

int main() {
  using namespace nvmecr;
  using namespace nvmecr::bench;

  print_banner("EXT redundancy",
               "Write overhead vs recoverability of the fast-tier "
               "redundancy schemes (8 ranks x 2 x 64 MiB checkpoints; one "
               "storage failure domain lost before restart)");

  TablePrinter table({"metric", "none", "partner", "xor(K=4)"});
  const SchemeResult none = run_scheme(Scheme::kNone);
  const SchemeResult partner = run_scheme(Scheme::kPartner);
  const SchemeResult xr = run_scheme(Scheme::kXor);

  auto row = [&](const char* name, auto get) {
    table.add_row({name, get(none), get(partner), get(xr)});
  };
  row("Checkpoint Time (s)", [](const SchemeResult& r) {
    return TablePrinter::num(r.ckpt_s, 2);
  });
  row("Redundant Bytes (MiB)", [](const SchemeResult& r) {
    return TablePrinter::num(static_cast<double>(r.redundant) / (1_MiB), 0);
  });
  row("Write Overhead", [](const SchemeResult& r) {
    return pct(static_cast<double>(r.redundant) /
               static_cast<double>(r.payload));
  });
  row("Newest Ckpt Recovered", [](const SchemeResult& r) {
    return std::string(r.latest_recovered ? "yes" : "no (rollback)");
  });
  row("Restart Served By", [](const SchemeResult& r) { return r.sources; });
  row("Recovery Time (s)", [](const SchemeResult& r) {
    return TablePrinter::num(r.recovery_s, 2);
  });
  table.print();

  std::printf(
      "\nkNone loses the newest checkpoint with the failure domain and "
      "rolls every rank back to the older PFS copy; kPartner pays ~100%% "
      "write overhead for replica-speed restart; kXor pays ~%.0f%% for "
      "parity-decode restart (K=%u).\n",
      100.0 / (kXorSetSize - 1), kXorSetSize);
  return 0;
}
