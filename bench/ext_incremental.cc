// Extension — incremental checkpointing on top of NVMe-CR (§II-B:
// "complementary to the designs proposed in this paper and can be
// combined for improved performance").
//
// The first checkpoint is full; subsequent ones dump only the dirty
// fraction. Progress rate rises accordingly — the techniques compose
// because NVMe-CR never buffers: smaller dumps directly shorten the
// checkpoint phases.
#include "bench_util.h"

int main() {
  using namespace nvmecr;
  using namespace nvmecr::bench;

  print_banner("Extension: incremental checkpointing",
               "CoMD 112 procs, 10 checkpoints; dirty fraction sweep");
  TablePrinter table({"dirty fraction", "ckpt phase total (s)",
                      "progress rate", "vs full"});
  double full_time = 0;
  for (double frac : {1.0, 0.5, 0.25, 0.1}) {
    ComdParams params = weak_scaling_params(112);
    params.incremental_fraction = frac;
    const JobMetrics m = run_nvmecr(params);
    const double t = to_seconds(m.checkpoint_time);
    if (frac == 1.0) full_time = t;
    table.add_row({TablePrinter::num(frac, 2), TablePrinter::num(t, 2),
                   TablePrinter::num(m.progress_rate(), 3),
                   pct(1.0 - t / full_time)});
  }
  table.print();
  std::printf(
      "\nIncremental dumps shrink the checkpoint phases almost "
      "proportionally — NVMe-CR's unbuffered data plane has no fixed "
      "per-checkpoint floor beyond the create+log records.\n");
  return 0;
}
