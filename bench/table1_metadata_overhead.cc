// Table I — Metadata + checkpoint storage overhead with CoMD at 448
// processes, plus the per-instance DRAM footprint (§IV-G).
//
// Paper: OrangeFS ~2686 MB per storage node (keyval DB + stripe maps),
// GlusterFS ~3.5 MB per storage node (xattrs), NVMe-CR ~445 MB per
// runtime instance (reserved log ring + internal-state checkpoint
// regions); NVMe-CR DRAM < 512 MB per instance. The NVMe-CR number is
// dominated by the reserved regions, so this bench configures the
// reservation the way a production deployment sized for the paper's
// DRAM state would (2 x ~222 MiB regions + log ring).
#include "bench_util.h"

int main() {
  using namespace nvmecr;
  using namespace nvmecr::bench;

  print_banner("Table I", "metadata overhead with CoMD (448 processes)");

  ComdParams params = weak_scaling_params(448);
  params.checkpoints = 3;  // stored-metadata measurement, not bandwidth

  // NVMe-CR with production-sized state-checkpoint reservations.
  double nvmecr_mb_per_runtime = 0;
  double nvmecr_dram_mb = 0;
  uint64_t reserved = 0;
  {
    Cluster cluster;
    Scheduler sched(cluster);
    RuntimeConfig config = default_runtime_config();
    config.fs.ckpt_region_bytes = 222_MiB;
    ComdParams p = params;
    auto job = sched.allocate(p.nranks, 28,
                              partition_for(p) + 2 * 222_MiB + 16_MiB, 8);
    NVMECR_CHECK(job.ok());
    nvmecr_rt::NvmecrSystem system(cluster, *job, config);
    auto m = ComdDriver::run(cluster, system, p);
    NVMECR_CHECK(m.ok());
    // Per-runtime overhead = reserved metadata regions + dynamic
    // metadata bytes actually written, averaged per instance.
    const double dynamic_mb =
        to_mib(system.metadata_bytes()) / p.nranks;
    // Reserved regions are identical across instances; read one off the
    // configuration.
    reserved = round_up(static_cast<uint64_t>(448) * 192, 4096) /* log */ +
               2 * 222_MiB;
    nvmecr_mb_per_runtime = to_mib(reserved) + dynamic_mb;
    nvmecr_dram_mb = to_mib(system.peak_client_dram());
  }

  // Comparator systems: metadata per storage node.
  double orange_mb_per_node = 0, gluster_mb_per_node = 0;
  {
    Cluster cluster;
    baselines::OrangeFsModel system(cluster, params.nranks, 28);
    auto m = ComdDriver::run(cluster, system, params);
    NVMECR_CHECK(m.ok());
    const auto per_server = system.metadata_bytes_per_server();
    double total = 0;
    for (uint64_t b : per_server) total += to_mib(b);
    orange_mb_per_node = total / static_cast<double>(per_server.size());
  }
  {
    Cluster cluster;
    baselines::GlusterFsModel system(cluster, params.nranks, 28);
    auto m = ComdDriver::run(cluster, system, params);
    NVMECR_CHECK(m.ok());
    const auto per_server = system.metadata_bytes_per_server();
    double total = 0;
    for (uint64_t b : per_server) total += to_mib(b);
    gluster_mb_per_node = total / static_cast<double>(per_server.size());
  }

  TablePrinter table({"system", "metadata overhead (MB)", "unit"});
  table.add_row({"OrangeFS", TablePrinter::num(orange_mb_per_node, 2),
                 "per storage node"});
  table.add_row({"GlusterFS", TablePrinter::num(gluster_mb_per_node, 2),
                 "per storage node"});
  table.add_row({"NVMe-CR", TablePrinter::num(nvmecr_mb_per_runtime, 2),
                 "per runtime instance"});
  table.print();
  std::printf(
      "\nNVMe-CR measured DRAM footprint: %.1f MB per instance "
      "(paper: < 512 MB; 404 MB inodes + 102 MB B+Tree with "
      "production-preallocated pools — ours is demand-allocated).\n"
      "Paper reference: OrangeFS 2686.25, GlusterFS 3.5, NVMe-CR 445.25.\n",
      nvmecr_dram_mb);
  return 0;
}
