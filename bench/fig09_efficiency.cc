// Figure 9 — Efficiency of storage systems during checkpoint and
// recovery of the CoMD application state (§IV-H).
//
// (a)/(b): strong scaling — 16,384K atoms fixed, 86 GB over 10
//          checkpoints, 56..448 processes.
// (c)/(d): weak scaling — 32K atoms/process, 700 GB total at 448
//          processes.
//
// Paper shape: NVMe-CR best everywhere; at 448 processes it reaches
// ~0.96 checkpoint / ~0.99 recovery efficiency (weak scaling);
// GlusterFS trails NVMe-CR by ~13% on checkpoints and dips on recovery
// at 448 (metadata-server read influx); OrangeFS collapses under the
// concurrent metadata burden.
#include "bench_util.h"
#include "obs/run_report.h"

namespace nvmecr::bench {
namespace {

void run_scaling(const char* title,
                 ComdParams (*make_params)(uint32_t nranks)) {
  print_banner(title, "checkpoint / recovery efficiency vs processes");
  TablePrinter table({"procs", "system", "ckpt eff", "ckpt eff (makespan)",
                      "recovery eff", "ckpt time (s)", "recovery time (s)"});
  for (uint32_t nranks : {56u, 112u, 224u, 448u}) {
    const ComdParams params = make_params(nranks);
    struct Row {
      std::string name;
      JobMetrics m;
    };
    std::vector<Row> rows;
    rows.push_back({"NVMe-CR", run_nvmecr(params)});
    rows.push_back({"GlusterFS", run_dfs("GlusterFS", params)});
    rows.push_back({"OrangeFS", run_dfs("OrangeFS", params)});
    for (const auto& row : rows) {
      table.add_row(
          {TablePrinter::num(nranks) + " " + row.name, row.name,
           TablePrinter::num(row.m.checkpoint_efficiency(), 3),
           TablePrinter::num(row.m.checkpoint_efficiency_makespan(), 3),
           TablePrinter::num(row.m.recovery_efficiency(), 3),
           TablePrinter::num(to_seconds(row.m.checkpoint_time), 2),
           TablePrinter::num(to_seconds(row.m.recovery_time), 2)});
    }
  }
  table.print();
}

}  // namespace
}  // namespace nvmecr::bench

int main(int argc, char** argv) {
  using namespace nvmecr::bench;
  run_scaling("Figure 9(a,b) [strong scaling]", strong_scaling_params);
  run_scaling("Figure 9(c,d) [weak scaling]", weak_scaling_params);
  std::printf(
      "\nPaper reference: NVMe-CR ~0.96 ckpt / ~0.99 recovery at 448 "
      "(weak); GlusterFS ~13%% lower ckpt; OrangeFS lowest.\n");

  // With --trace/--metrics, repeat one representative configuration
  // (weak scaling, 112 processes) fully instrumented and export the
  // observability artifacts for that run.
  nvmecr::obs::RunReport report =
      nvmecr::obs::RunReport::from_args(argc, argv);
  if (report.enabled()) {
    std::printf("\ninstrumented rerun: weak scaling, 112 processes\n");
    run_nvmecr(weak_scaling_params(112), default_runtime_config(),
               /*out_system=*/nullptr, /*num_ssds=*/8, report.observer());
    report.finish();
  }
  return 0;
}
