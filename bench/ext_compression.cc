// Extension — checkpoint compression on top of NVMe-CR (§II-B: listed
// as complementary; this quantifies when it helps).
//
// Compression trades per-rank CPU for wire/device bytes. With NVMe-CR
// already near hardware bandwidth, fast codecs win as long as their
// throughput comfortably exceeds each rank's share of the device; slow
// codecs turn the checkpoint CPU-bound.
#include "bench_util.h"

int main() {
  using namespace nvmecr;
  using namespace nvmecr::bench;

  print_banner("Extension: checkpoint compression",
               "CoMD 112 procs, 10 checkpoints; codec sweep");
  TablePrinter table({"codec model", "ratio", "CPU (GB/s)",
                      "ckpt phase total (s)", "progress rate", "vs none"});
  struct Codec {
    const char* name;
    double ratio;
    double ns_per_byte;
  };
  double base_time = 0;
  for (const Codec& c :
       {Codec{"none", 1.0, 0.0}, Codec{"lz4-class", 2.0, 0.3},
        Codec{"zstd-class", 3.0, 1.2}, Codec{"slow/deep", 4.0, 6.0}}) {
    ComdParams params = weak_scaling_params(112);
    params.compression_ratio = c.ratio;
    params.compression_ns_per_byte = c.ns_per_byte;
    const JobMetrics m = run_nvmecr(params);
    const double t = to_seconds(m.checkpoint_time);
    if (c.ratio == 1.0) base_time = t;
    table.add_row({c.name, TablePrinter::num(c.ratio, 1),
                   c.ns_per_byte > 0
                       ? TablePrinter::num(1.0 / c.ns_per_byte, 1)
                       : std::string("-"),
                   TablePrinter::num(t, 2),
                   TablePrinter::num(m.progress_rate(), 3),
                   pct(1.0 - t / base_time)});
  }
  table.print();
  std::printf(
      "\nFast codecs compound with NVMe-CR's bandwidth efficiency; the "
      "slow/deep point shows the CPU-bound crossover (§II-B's "
      "\"complementary techniques\" quantified).\n");
  return 0;
}
