// Extension — checkpoint compression on top of NVMe-CR (§II-B: listed
// as complementary; this quantifies when it helps).
//
// Compression trades per-rank CPU for wire/device bytes. With NVMe-CR
// already near hardware bandwidth, fast codecs win as long as their
// throughput comfortably exceeds each rank's share of the device; slow
// codecs turn the checkpoint CPU-bound. Codec models are shared with
// the offload pipeline (src/offload/codec.h) — ext_offload sweeps the
// same presets with the restart inflate moved to the target.
#include "bench_util.h"
#include "offload/codec.h"

int main() {
  using namespace nvmecr;
  using namespace nvmecr::bench;

  print_banner("Extension: checkpoint compression",
               "CoMD 112 procs, 10 checkpoints; codec sweep");
  TablePrinter table({"codec model", "ratio", "CPU (GB/s)",
                      "ckpt phase total (s)", "progress rate", "vs none"});
  double base_time = 0;
  for (const offload::Codec& c : offload::codec_presets()) {
    ComdParams params = weak_scaling_params(112);
    params.compression_ratio = c.ratio;
    params.compression_ns_per_byte = c.compress_ns_per_byte;
    const JobMetrics m = run_nvmecr(params);
    const double t = to_seconds(m.checkpoint_time);
    if (c.ratio == 1.0) base_time = t;
    table.add_row({c.name, TablePrinter::num(c.ratio, 1),
                   c.compress_ns_per_byte > 0
                       ? TablePrinter::num(1.0 / c.compress_ns_per_byte, 1)
                       : std::string("-"),
                   TablePrinter::num(t, 2),
                   TablePrinter::num(m.progress_rate(), 3),
                   pct(1.0 - t / base_time)});
  }
  table.print();
  std::printf(
      "\nFast codecs compound with NVMe-CR's bandwidth efficiency; the "
      "slow/deep point shows the CPU-bound crossover (§II-B's "
      "\"complementary techniques\" quantified).\n");
  return 0;
}
