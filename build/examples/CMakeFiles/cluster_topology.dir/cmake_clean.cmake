file(REMOVE_RECURSE
  "CMakeFiles/cluster_topology.dir/cluster_topology.cpp.o"
  "CMakeFiles/cluster_topology.dir/cluster_topology.cpp.o.d"
  "cluster_topology"
  "cluster_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
