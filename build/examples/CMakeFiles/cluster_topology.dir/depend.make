# Empty dependencies file for cluster_topology.
# This may be replaced when dependencies are built.
