
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/comd_checkpoint.cpp" "examples/CMakeFiles/comd_checkpoint.dir/comd_checkpoint.cpp.o" "gcc" "examples/CMakeFiles/comd_checkpoint.dir/comd_checkpoint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/nvmecr_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/nvmecr_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/nvmecr_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/nvmecr/CMakeFiles/nvmecr_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/kernelfs/CMakeFiles/nvmecr_kernelfs.dir/DependInfo.cmake"
  "/root/repo/build/src/nvmf/CMakeFiles/nvmecr_nvmf.dir/DependInfo.cmake"
  "/root/repo/build/src/microfs/CMakeFiles/nvmecr_microfs.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/nvmecr_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/nvmecr_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nvmecr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
