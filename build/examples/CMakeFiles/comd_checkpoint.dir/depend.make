# Empty dependencies file for comd_checkpoint.
# This may be replaced when dependencies are built.
