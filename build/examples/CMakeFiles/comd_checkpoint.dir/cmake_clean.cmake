file(REMOVE_RECURSE
  "CMakeFiles/comd_checkpoint.dir/comd_checkpoint.cpp.o"
  "CMakeFiles/comd_checkpoint.dir/comd_checkpoint.cpp.o.d"
  "comd_checkpoint"
  "comd_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comd_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
