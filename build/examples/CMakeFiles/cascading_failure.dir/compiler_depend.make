# Empty compiler generated dependencies file for cascading_failure.
# This may be replaced when dependencies are built.
