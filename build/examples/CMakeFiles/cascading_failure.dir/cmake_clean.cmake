file(REMOVE_RECURSE
  "CMakeFiles/cascading_failure.dir/cascading_failure.cpp.o"
  "CMakeFiles/cascading_failure.dir/cascading_failure.cpp.o.d"
  "cascading_failure"
  "cascading_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cascading_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
