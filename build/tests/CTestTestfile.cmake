# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;9;nvmecr_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(simcore_test "/root/repo/build/tests/simcore_test")
set_tests_properties(simcore_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;10;nvmecr_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(hw_test "/root/repo/build/tests/hw_test")
set_tests_properties(hw_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;11;nvmecr_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(fabric_nvmf_test "/root/repo/build/tests/fabric_nvmf_test")
set_tests_properties(fabric_nvmf_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;nvmecr_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(kernelfs_minimpi_test "/root/repo/build/tests/kernelfs_minimpi_test")
set_tests_properties(kernelfs_minimpi_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;13;nvmecr_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(bptree_test "/root/repo/build/tests/bptree_test")
set_tests_properties(bptree_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;14;nvmecr_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(microfs_structures_test "/root/repo/build/tests/microfs_structures_test")
set_tests_properties(microfs_structures_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;15;nvmecr_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(microfs_fs_test "/root/repo/build/tests/microfs_fs_test")
set_tests_properties(microfs_fs_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;16;nvmecr_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(runtime_test "/root/repo/build/tests/runtime_test")
set_tests_properties(runtime_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;17;nvmecr_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(fault_injection_test "/root/repo/build/tests/fault_injection_test")
set_tests_properties(fault_injection_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;18;nvmecr_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(microfs_param_test "/root/repo/build/tests/microfs_param_test")
set_tests_properties(microfs_param_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;19;nvmecr_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(extensions_test "/root/repo/build/tests/extensions_test")
set_tests_properties(extensions_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;20;nvmecr_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(multijob_test "/root/repo/build/tests/multijob_test")
set_tests_properties(multijob_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;21;nvmecr_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(stress_test "/root/repo/build/tests/stress_test")
set_tests_properties(stress_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;22;nvmecr_add_test;/root/repo/tests/CMakeLists.txt;0;")
