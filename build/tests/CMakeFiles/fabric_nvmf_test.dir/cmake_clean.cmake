file(REMOVE_RECURSE
  "CMakeFiles/fabric_nvmf_test.dir/fabric_nvmf_test.cc.o"
  "CMakeFiles/fabric_nvmf_test.dir/fabric_nvmf_test.cc.o.d"
  "fabric_nvmf_test"
  "fabric_nvmf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_nvmf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
