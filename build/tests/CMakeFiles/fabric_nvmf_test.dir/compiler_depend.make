# Empty compiler generated dependencies file for fabric_nvmf_test.
# This may be replaced when dependencies are built.
