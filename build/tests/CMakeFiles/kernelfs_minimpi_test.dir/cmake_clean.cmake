file(REMOVE_RECURSE
  "CMakeFiles/kernelfs_minimpi_test.dir/kernelfs_minimpi_test.cc.o"
  "CMakeFiles/kernelfs_minimpi_test.dir/kernelfs_minimpi_test.cc.o.d"
  "kernelfs_minimpi_test"
  "kernelfs_minimpi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernelfs_minimpi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
