# Empty dependencies file for kernelfs_minimpi_test.
# This may be replaced when dependencies are built.
