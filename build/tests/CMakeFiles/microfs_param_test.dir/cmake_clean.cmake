file(REMOVE_RECURSE
  "CMakeFiles/microfs_param_test.dir/microfs_param_test.cc.o"
  "CMakeFiles/microfs_param_test.dir/microfs_param_test.cc.o.d"
  "microfs_param_test"
  "microfs_param_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microfs_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
