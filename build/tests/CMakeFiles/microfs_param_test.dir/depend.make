# Empty dependencies file for microfs_param_test.
# This may be replaced when dependencies are built.
