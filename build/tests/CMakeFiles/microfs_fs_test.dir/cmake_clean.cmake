file(REMOVE_RECURSE
  "CMakeFiles/microfs_fs_test.dir/microfs_fs_test.cc.o"
  "CMakeFiles/microfs_fs_test.dir/microfs_fs_test.cc.o.d"
  "microfs_fs_test"
  "microfs_fs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microfs_fs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
