# Empty dependencies file for microfs_fs_test.
# This may be replaced when dependencies are built.
