file(REMOVE_RECURSE
  "CMakeFiles/microfs_structures_test.dir/microfs_structures_test.cc.o"
  "CMakeFiles/microfs_structures_test.dir/microfs_structures_test.cc.o.d"
  "microfs_structures_test"
  "microfs_structures_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microfs_structures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
