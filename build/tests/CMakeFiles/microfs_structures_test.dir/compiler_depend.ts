# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for microfs_structures_test.
