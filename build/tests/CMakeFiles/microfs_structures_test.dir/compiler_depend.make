# Empty compiler generated dependencies file for microfs_structures_test.
# This may be replaced when dependencies are built.
