file(REMOVE_RECURSE
  "CMakeFiles/multijob_test.dir/multijob_test.cc.o"
  "CMakeFiles/multijob_test.dir/multijob_test.cc.o.d"
  "multijob_test"
  "multijob_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multijob_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
