# Empty dependencies file for nvmecr_metrics.
# This may be replaced when dependencies are built.
