file(REMOVE_RECURSE
  "libnvmecr_metrics.a"
)
