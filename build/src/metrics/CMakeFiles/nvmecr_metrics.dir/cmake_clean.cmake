file(REMOVE_RECURSE
  "CMakeFiles/nvmecr_metrics.dir/report.cc.o"
  "CMakeFiles/nvmecr_metrics.dir/report.cc.o.d"
  "libnvmecr_metrics.a"
  "libnvmecr_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvmecr_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
