# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("simcore")
subdirs("hw")
subdirs("fabric")
subdirs("nvmf")
subdirs("kernelfs")
subdirs("minimpi")
subdirs("microfs")
subdirs("nvmecr")
subdirs("baselines")
subdirs("workloads")
subdirs("metrics")
