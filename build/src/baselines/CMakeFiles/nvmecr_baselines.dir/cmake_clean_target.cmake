file(REMOVE_RECURSE
  "libnvmecr_baselines.a"
)
