# Empty dependencies file for nvmecr_baselines.
# This may be replaced when dependencies are built.
