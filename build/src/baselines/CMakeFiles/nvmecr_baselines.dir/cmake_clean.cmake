file(REMOVE_RECURSE
  "CMakeFiles/nvmecr_baselines.dir/dfs_base.cc.o"
  "CMakeFiles/nvmecr_baselines.dir/dfs_base.cc.o.d"
  "CMakeFiles/nvmecr_baselines.dir/models.cc.o"
  "CMakeFiles/nvmecr_baselines.dir/models.cc.o.d"
  "libnvmecr_baselines.a"
  "libnvmecr_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvmecr_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
