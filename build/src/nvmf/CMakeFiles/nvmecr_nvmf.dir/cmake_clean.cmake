file(REMOVE_RECURSE
  "CMakeFiles/nvmecr_nvmf.dir/target.cc.o"
  "CMakeFiles/nvmecr_nvmf.dir/target.cc.o.d"
  "libnvmecr_nvmf.a"
  "libnvmecr_nvmf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvmecr_nvmf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
