file(REMOVE_RECURSE
  "libnvmecr_nvmf.a"
)
