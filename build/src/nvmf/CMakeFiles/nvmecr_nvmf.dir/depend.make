# Empty dependencies file for nvmecr_nvmf.
# This may be replaced when dependencies are built.
