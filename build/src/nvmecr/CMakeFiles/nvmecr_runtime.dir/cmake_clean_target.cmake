file(REMOVE_RECURSE
  "libnvmecr_runtime.a"
)
