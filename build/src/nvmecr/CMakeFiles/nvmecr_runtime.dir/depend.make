# Empty dependencies file for nvmecr_runtime.
# This may be replaced when dependencies are built.
