file(REMOVE_RECURSE
  "CMakeFiles/nvmecr_runtime.dir/balancer.cc.o"
  "CMakeFiles/nvmecr_runtime.dir/balancer.cc.o.d"
  "CMakeFiles/nvmecr_runtime.dir/cluster.cc.o"
  "CMakeFiles/nvmecr_runtime.dir/cluster.cc.o.d"
  "CMakeFiles/nvmecr_runtime.dir/n1_adapter.cc.o"
  "CMakeFiles/nvmecr_runtime.dir/n1_adapter.cc.o.d"
  "CMakeFiles/nvmecr_runtime.dir/posix_shim.cc.o"
  "CMakeFiles/nvmecr_runtime.dir/posix_shim.cc.o.d"
  "CMakeFiles/nvmecr_runtime.dir/runtime.cc.o"
  "CMakeFiles/nvmecr_runtime.dir/runtime.cc.o.d"
  "libnvmecr_runtime.a"
  "libnvmecr_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvmecr_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
