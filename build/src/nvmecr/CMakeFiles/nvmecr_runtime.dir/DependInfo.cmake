
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nvmecr/balancer.cc" "src/nvmecr/CMakeFiles/nvmecr_runtime.dir/balancer.cc.o" "gcc" "src/nvmecr/CMakeFiles/nvmecr_runtime.dir/balancer.cc.o.d"
  "/root/repo/src/nvmecr/cluster.cc" "src/nvmecr/CMakeFiles/nvmecr_runtime.dir/cluster.cc.o" "gcc" "src/nvmecr/CMakeFiles/nvmecr_runtime.dir/cluster.cc.o.d"
  "/root/repo/src/nvmecr/n1_adapter.cc" "src/nvmecr/CMakeFiles/nvmecr_runtime.dir/n1_adapter.cc.o" "gcc" "src/nvmecr/CMakeFiles/nvmecr_runtime.dir/n1_adapter.cc.o.d"
  "/root/repo/src/nvmecr/posix_shim.cc" "src/nvmecr/CMakeFiles/nvmecr_runtime.dir/posix_shim.cc.o" "gcc" "src/nvmecr/CMakeFiles/nvmecr_runtime.dir/posix_shim.cc.o.d"
  "/root/repo/src/nvmecr/runtime.cc" "src/nvmecr/CMakeFiles/nvmecr_runtime.dir/runtime.cc.o" "gcc" "src/nvmecr/CMakeFiles/nvmecr_runtime.dir/runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/microfs/CMakeFiles/nvmecr_microfs.dir/DependInfo.cmake"
  "/root/repo/build/src/nvmf/CMakeFiles/nvmecr_nvmf.dir/DependInfo.cmake"
  "/root/repo/build/src/kernelfs/CMakeFiles/nvmecr_kernelfs.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/nvmecr_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/nvmecr_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nvmecr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
