# CMake generated Testfile for 
# Source directory: /root/repo/src/microfs
# Build directory: /root/repo/build/src/microfs
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
