file(REMOVE_RECURSE
  "CMakeFiles/nvmecr_microfs.dir/block_pool.cc.o"
  "CMakeFiles/nvmecr_microfs.dir/block_pool.cc.o.d"
  "CMakeFiles/nvmecr_microfs.dir/microfs.cc.o"
  "CMakeFiles/nvmecr_microfs.dir/microfs.cc.o.d"
  "CMakeFiles/nvmecr_microfs.dir/oplog.cc.o"
  "CMakeFiles/nvmecr_microfs.dir/oplog.cc.o.d"
  "libnvmecr_microfs.a"
  "libnvmecr_microfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvmecr_microfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
