file(REMOVE_RECURSE
  "libnvmecr_microfs.a"
)
