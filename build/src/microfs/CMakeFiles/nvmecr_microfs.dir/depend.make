# Empty dependencies file for nvmecr_microfs.
# This may be replaced when dependencies are built.
