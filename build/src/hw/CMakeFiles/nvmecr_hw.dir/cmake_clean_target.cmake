file(REMOVE_RECURSE
  "libnvmecr_hw.a"
)
