file(REMOVE_RECURSE
  "CMakeFiles/nvmecr_hw.dir/nvme_ssd.cc.o"
  "CMakeFiles/nvmecr_hw.dir/nvme_ssd.cc.o.d"
  "CMakeFiles/nvmecr_hw.dir/payload_store.cc.o"
  "CMakeFiles/nvmecr_hw.dir/payload_store.cc.o.d"
  "libnvmecr_hw.a"
  "libnvmecr_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvmecr_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
