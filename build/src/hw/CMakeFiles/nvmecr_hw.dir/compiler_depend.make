# Empty compiler generated dependencies file for nvmecr_hw.
# This may be replaced when dependencies are built.
