
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/nvme_ssd.cc" "src/hw/CMakeFiles/nvmecr_hw.dir/nvme_ssd.cc.o" "gcc" "src/hw/CMakeFiles/nvmecr_hw.dir/nvme_ssd.cc.o.d"
  "/root/repo/src/hw/payload_store.cc" "src/hw/CMakeFiles/nvmecr_hw.dir/payload_store.cc.o" "gcc" "src/hw/CMakeFiles/nvmecr_hw.dir/payload_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simcore/CMakeFiles/nvmecr_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nvmecr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
