file(REMOVE_RECURSE
  "libnvmecr_common.a"
)
