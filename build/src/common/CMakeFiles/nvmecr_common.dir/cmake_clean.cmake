file(REMOVE_RECURSE
  "CMakeFiles/nvmecr_common.dir/log.cc.o"
  "CMakeFiles/nvmecr_common.dir/log.cc.o.d"
  "CMakeFiles/nvmecr_common.dir/status.cc.o"
  "CMakeFiles/nvmecr_common.dir/status.cc.o.d"
  "libnvmecr_common.a"
  "libnvmecr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvmecr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
